file(REMOVE_RECURSE
  "CMakeFiles/memq.dir/memq.cpp.o"
  "CMakeFiles/memq.dir/memq.cpp.o.d"
  "memq"
  "memq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
