# Empty compiler generated dependencies file for memq.
# This may be replaced when dependencies are built.
