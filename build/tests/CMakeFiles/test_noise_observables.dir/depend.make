# Empty dependencies file for test_noise_observables.
# This may be replaced when dependencies are built.
