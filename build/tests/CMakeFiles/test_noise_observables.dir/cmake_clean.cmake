file(REMOVE_RECURSE
  "CMakeFiles/test_noise_observables.dir/test_noise_observables.cpp.o"
  "CMakeFiles/test_noise_observables.dir/test_noise_observables.cpp.o.d"
  "test_noise_observables"
  "test_noise_observables.pdb"
  "test_noise_observables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_observables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
