file(REMOVE_RECURSE
  "CMakeFiles/test_engine_features.dir/test_engine_features.cpp.o"
  "CMakeFiles/test_engine_features.dir/test_engine_features.cpp.o.d"
  "test_engine_features"
  "test_engine_features.pdb"
  "test_engine_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
