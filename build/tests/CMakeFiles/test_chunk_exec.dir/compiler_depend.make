# Empty compiler generated dependencies file for test_chunk_exec.
# This may be replaced when dependencies are built.
