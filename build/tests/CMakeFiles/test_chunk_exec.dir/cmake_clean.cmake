file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_exec.dir/test_chunk_exec.cpp.o"
  "CMakeFiles/test_chunk_exec.dir/test_chunk_exec.cpp.o.d"
  "test_chunk_exec"
  "test_chunk_exec.pdb"
  "test_chunk_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
