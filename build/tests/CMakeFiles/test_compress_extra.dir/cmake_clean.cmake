file(REMOVE_RECURSE
  "CMakeFiles/test_compress_extra.dir/test_compress_extra.cpp.o"
  "CMakeFiles/test_compress_extra.dir/test_compress_extra.cpp.o.d"
  "test_compress_extra"
  "test_compress_extra.pdb"
  "test_compress_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
