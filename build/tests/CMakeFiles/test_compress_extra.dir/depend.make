# Empty dependencies file for test_compress_extra.
# This may be replaced when dependencies are built.
