# Empty dependencies file for test_qubit_layout.
# This may be replaced when dependencies are built.
