file(REMOVE_RECURSE
  "CMakeFiles/test_qubit_layout.dir/test_qubit_layout.cpp.o"
  "CMakeFiles/test_qubit_layout.dir/test_qubit_layout.cpp.o.d"
  "test_qubit_layout"
  "test_qubit_layout.pdb"
  "test_qubit_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qubit_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
