file(REMOVE_RECURSE
  "CMakeFiles/test_byte_buffer.dir/test_byte_buffer.cpp.o"
  "CMakeFiles/test_byte_buffer.dir/test_byte_buffer.cpp.o.d"
  "test_byte_buffer"
  "test_byte_buffer.pdb"
  "test_byte_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byte_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
