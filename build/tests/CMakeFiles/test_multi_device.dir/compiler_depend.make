# Empty compiler generated dependencies file for test_multi_device.
# This may be replaced when dependencies are built.
