file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_edge.dir/test_qasm_edge.cpp.o"
  "CMakeFiles/test_qasm_edge.dir/test_qasm_edge.cpp.o.d"
  "test_qasm_edge"
  "test_qasm_edge.pdb"
  "test_qasm_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
