# Empty compiler generated dependencies file for test_qasm_edge.
# This may be replaced when dependencies are built.
