file(REMOVE_RECURSE
  "CMakeFiles/test_state_io.dir/test_state_io.cpp.o"
  "CMakeFiles/test_state_io.dir/test_state_io.cpp.o.d"
  "test_state_io"
  "test_state_io.pdb"
  "test_state_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
