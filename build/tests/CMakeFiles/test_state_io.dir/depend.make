# Empty dependencies file for test_state_io.
# This may be replaced when dependencies are built.
