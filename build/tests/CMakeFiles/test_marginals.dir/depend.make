# Empty dependencies file for test_marginals.
# This may be replaced when dependencies are built.
