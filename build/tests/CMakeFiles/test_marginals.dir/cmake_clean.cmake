file(REMOVE_RECURSE
  "CMakeFiles/test_marginals.dir/test_marginals.cpp.o"
  "CMakeFiles/test_marginals.dir/test_marginals.cpp.o.d"
  "test_marginals"
  "test_marginals.pdb"
  "test_marginals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marginals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
