# Empty dependencies file for test_cli_smoke.
# This may be replaced when dependencies are built.
