file(REMOVE_RECURSE
  "CMakeFiles/test_cli_smoke.dir/test_cli_smoke.cpp.o"
  "CMakeFiles/test_cli_smoke.dir/test_cli_smoke.cpp.o.d"
  "test_cli_smoke"
  "test_cli_smoke.pdb"
  "test_cli_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
