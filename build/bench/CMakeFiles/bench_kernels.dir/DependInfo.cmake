
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kernels.cpp" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/memq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memq_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/memq_sv.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/memq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/memq_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
