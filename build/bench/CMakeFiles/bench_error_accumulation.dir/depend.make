# Empty dependencies file for bench_error_accumulation.
# This may be replaced when dependencies are built.
