file(REMOVE_RECURSE
  "CMakeFiles/bench_error_accumulation.dir/bench_error_accumulation.cpp.o"
  "CMakeFiles/bench_error_accumulation.dir/bench_error_accumulation.cpp.o.d"
  "bench_error_accumulation"
  "bench_error_accumulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
