# Empty dependencies file for bench_compressors.
# This may be replaced when dependencies are built.
