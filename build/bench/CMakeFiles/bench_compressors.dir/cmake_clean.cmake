file(REMOVE_RECURSE
  "CMakeFiles/bench_compressors.dir/bench_compressors.cpp.o"
  "CMakeFiles/bench_compressors.dir/bench_compressors.cpp.o.d"
  "bench_compressors"
  "bench_compressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
