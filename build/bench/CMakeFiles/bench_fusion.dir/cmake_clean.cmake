file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion.dir/bench_fusion.cpp.o"
  "CMakeFiles/bench_fusion.dir/bench_fusion.cpp.o.d"
  "bench_fusion"
  "bench_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
