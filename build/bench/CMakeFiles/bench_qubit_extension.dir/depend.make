# Empty dependencies file for bench_qubit_extension.
# This may be replaced when dependencies are built.
