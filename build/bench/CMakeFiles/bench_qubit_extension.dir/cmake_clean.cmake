file(REMOVE_RECURSE
  "CMakeFiles/bench_qubit_extension.dir/bench_qubit_extension.cpp.o"
  "CMakeFiles/bench_qubit_extension.dir/bench_qubit_extension.cpp.o.d"
  "bench_qubit_extension"
  "bench_qubit_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qubit_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
