file(REMOVE_RECURSE
  "libmemq_core.a"
)
