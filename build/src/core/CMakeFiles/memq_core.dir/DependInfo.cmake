
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chunk_exec.cpp" "src/core/CMakeFiles/memq_core.dir/chunk_exec.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/chunk_exec.cpp.o.d"
  "/root/repo/src/core/chunk_store.cpp" "src/core/CMakeFiles/memq_core.dir/chunk_store.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/chunk_store.cpp.o.d"
  "/root/repo/src/core/compressed_base.cpp" "src/core/CMakeFiles/memq_core.dir/compressed_base.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/compressed_base.cpp.o.d"
  "/root/repo/src/core/dense_engine.cpp" "src/core/CMakeFiles/memq_core.dir/dense_engine.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/dense_engine.cpp.o.d"
  "/root/repo/src/core/engine_factory.cpp" "src/core/CMakeFiles/memq_core.dir/engine_factory.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/engine_factory.cpp.o.d"
  "/root/repo/src/core/memq_engine.cpp" "src/core/CMakeFiles/memq_core.dir/memq_engine.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/memq_engine.cpp.o.d"
  "/root/repo/src/core/observables.cpp" "src/core/CMakeFiles/memq_core.dir/observables.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/observables.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/core/CMakeFiles/memq_core.dir/partitioner.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/core/qubit_layout.cpp" "src/core/CMakeFiles/memq_core.dir/qubit_layout.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/qubit_layout.cpp.o.d"
  "/root/repo/src/core/wu_engine.cpp" "src/core/CMakeFiles/memq_core.dir/wu_engine.cpp.o" "gcc" "src/core/CMakeFiles/memq_core.dir/wu_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/memq_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/memq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/memq_sv.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memq_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
