file(REMOVE_RECURSE
  "CMakeFiles/memq_core.dir/chunk_exec.cpp.o"
  "CMakeFiles/memq_core.dir/chunk_exec.cpp.o.d"
  "CMakeFiles/memq_core.dir/chunk_store.cpp.o"
  "CMakeFiles/memq_core.dir/chunk_store.cpp.o.d"
  "CMakeFiles/memq_core.dir/compressed_base.cpp.o"
  "CMakeFiles/memq_core.dir/compressed_base.cpp.o.d"
  "CMakeFiles/memq_core.dir/dense_engine.cpp.o"
  "CMakeFiles/memq_core.dir/dense_engine.cpp.o.d"
  "CMakeFiles/memq_core.dir/engine_factory.cpp.o"
  "CMakeFiles/memq_core.dir/engine_factory.cpp.o.d"
  "CMakeFiles/memq_core.dir/memq_engine.cpp.o"
  "CMakeFiles/memq_core.dir/memq_engine.cpp.o.d"
  "CMakeFiles/memq_core.dir/observables.cpp.o"
  "CMakeFiles/memq_core.dir/observables.cpp.o.d"
  "CMakeFiles/memq_core.dir/partitioner.cpp.o"
  "CMakeFiles/memq_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/memq_core.dir/qubit_layout.cpp.o"
  "CMakeFiles/memq_core.dir/qubit_layout.cpp.o.d"
  "CMakeFiles/memq_core.dir/wu_engine.cpp.o"
  "CMakeFiles/memq_core.dir/wu_engine.cpp.o.d"
  "libmemq_core.a"
  "libmemq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
