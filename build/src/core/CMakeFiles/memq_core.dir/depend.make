# Empty dependencies file for memq_core.
# This may be replaced when dependencies are built.
