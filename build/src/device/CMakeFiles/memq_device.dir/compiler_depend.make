# Empty compiler generated dependencies file for memq_device.
# This may be replaced when dependencies are built.
