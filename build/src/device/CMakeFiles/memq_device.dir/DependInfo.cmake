
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/copy_engine.cpp" "src/device/CMakeFiles/memq_device.dir/copy_engine.cpp.o" "gcc" "src/device/CMakeFiles/memq_device.dir/copy_engine.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/memq_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/memq_device.dir/device.cpp.o.d"
  "/root/repo/src/device/stream.cpp" "src/device/CMakeFiles/memq_device.dir/stream.cpp.o" "gcc" "src/device/CMakeFiles/memq_device.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
