file(REMOVE_RECURSE
  "CMakeFiles/memq_device.dir/copy_engine.cpp.o"
  "CMakeFiles/memq_device.dir/copy_engine.cpp.o.d"
  "CMakeFiles/memq_device.dir/device.cpp.o"
  "CMakeFiles/memq_device.dir/device.cpp.o.d"
  "CMakeFiles/memq_device.dir/stream.cpp.o"
  "CMakeFiles/memq_device.dir/stream.cpp.o.d"
  "libmemq_device.a"
  "libmemq_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memq_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
