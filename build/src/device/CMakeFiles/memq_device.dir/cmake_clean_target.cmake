file(REMOVE_RECURSE
  "libmemq_device.a"
)
