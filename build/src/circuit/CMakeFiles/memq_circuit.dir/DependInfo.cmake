
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/memq_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/memq_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/circuit/CMakeFiles/memq_circuit.dir/gate.cpp.o" "gcc" "src/circuit/CMakeFiles/memq_circuit.dir/gate.cpp.o.d"
  "/root/repo/src/circuit/noise.cpp" "src/circuit/CMakeFiles/memq_circuit.dir/noise.cpp.o" "gcc" "src/circuit/CMakeFiles/memq_circuit.dir/noise.cpp.o.d"
  "/root/repo/src/circuit/qasm.cpp" "src/circuit/CMakeFiles/memq_circuit.dir/qasm.cpp.o" "gcc" "src/circuit/CMakeFiles/memq_circuit.dir/qasm.cpp.o.d"
  "/root/repo/src/circuit/transpile.cpp" "src/circuit/CMakeFiles/memq_circuit.dir/transpile.cpp.o" "gcc" "src/circuit/CMakeFiles/memq_circuit.dir/transpile.cpp.o.d"
  "/root/repo/src/circuit/workloads.cpp" "src/circuit/CMakeFiles/memq_circuit.dir/workloads.cpp.o" "gcc" "src/circuit/CMakeFiles/memq_circuit.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
