# Empty dependencies file for memq_circuit.
# This may be replaced when dependencies are built.
