file(REMOVE_RECURSE
  "libmemq_circuit.a"
)
