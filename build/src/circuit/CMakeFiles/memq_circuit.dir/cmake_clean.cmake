file(REMOVE_RECURSE
  "CMakeFiles/memq_circuit.dir/circuit.cpp.o"
  "CMakeFiles/memq_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/memq_circuit.dir/gate.cpp.o"
  "CMakeFiles/memq_circuit.dir/gate.cpp.o.d"
  "CMakeFiles/memq_circuit.dir/noise.cpp.o"
  "CMakeFiles/memq_circuit.dir/noise.cpp.o.d"
  "CMakeFiles/memq_circuit.dir/qasm.cpp.o"
  "CMakeFiles/memq_circuit.dir/qasm.cpp.o.d"
  "CMakeFiles/memq_circuit.dir/transpile.cpp.o"
  "CMakeFiles/memq_circuit.dir/transpile.cpp.o.d"
  "CMakeFiles/memq_circuit.dir/workloads.cpp.o"
  "CMakeFiles/memq_circuit.dir/workloads.cpp.o.d"
  "libmemq_circuit.a"
  "libmemq_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memq_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
