# Empty dependencies file for memq_common.
# This may be replaced when dependencies are built.
