file(REMOVE_RECURSE
  "libmemq_common.a"
)
