file(REMOVE_RECURSE
  "CMakeFiles/memq_common.dir/format.cpp.o"
  "CMakeFiles/memq_common.dir/format.cpp.o.d"
  "CMakeFiles/memq_common.dir/logging.cpp.o"
  "CMakeFiles/memq_common.dir/logging.cpp.o.d"
  "CMakeFiles/memq_common.dir/prng.cpp.o"
  "CMakeFiles/memq_common.dir/prng.cpp.o.d"
  "CMakeFiles/memq_common.dir/stats.cpp.o"
  "CMakeFiles/memq_common.dir/stats.cpp.o.d"
  "CMakeFiles/memq_common.dir/table.cpp.o"
  "CMakeFiles/memq_common.dir/table.cpp.o.d"
  "CMakeFiles/memq_common.dir/thread_pool.cpp.o"
  "CMakeFiles/memq_common.dir/thread_pool.cpp.o.d"
  "libmemq_common.a"
  "libmemq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
