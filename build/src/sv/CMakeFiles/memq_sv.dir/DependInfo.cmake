
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sv/kernels.cpp" "src/sv/CMakeFiles/memq_sv.dir/kernels.cpp.o" "gcc" "src/sv/CMakeFiles/memq_sv.dir/kernels.cpp.o.d"
  "/root/repo/src/sv/simulator.cpp" "src/sv/CMakeFiles/memq_sv.dir/simulator.cpp.o" "gcc" "src/sv/CMakeFiles/memq_sv.dir/simulator.cpp.o.d"
  "/root/repo/src/sv/state_vector.cpp" "src/sv/CMakeFiles/memq_sv.dir/state_vector.cpp.o" "gcc" "src/sv/CMakeFiles/memq_sv.dir/state_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/memq_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
