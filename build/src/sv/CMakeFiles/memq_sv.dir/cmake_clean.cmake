file(REMOVE_RECURSE
  "CMakeFiles/memq_sv.dir/kernels.cpp.o"
  "CMakeFiles/memq_sv.dir/kernels.cpp.o.d"
  "CMakeFiles/memq_sv.dir/simulator.cpp.o"
  "CMakeFiles/memq_sv.dir/simulator.cpp.o.d"
  "CMakeFiles/memq_sv.dir/state_vector.cpp.o"
  "CMakeFiles/memq_sv.dir/state_vector.cpp.o.d"
  "libmemq_sv.a"
  "libmemq_sv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memq_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
