file(REMOVE_RECURSE
  "libmemq_sv.a"
)
