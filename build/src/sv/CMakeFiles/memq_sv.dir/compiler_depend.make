# Empty compiler generated dependencies file for memq_sv.
# This may be replaced when dependencies are built.
