file(REMOVE_RECURSE
  "libmemq_compress.a"
)
