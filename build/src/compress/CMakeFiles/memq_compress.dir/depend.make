# Empty dependencies file for memq_compress.
# This may be replaced when dependencies are built.
