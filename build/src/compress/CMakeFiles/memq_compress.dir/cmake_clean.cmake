file(REMOVE_RECURSE
  "CMakeFiles/memq_compress.dir/bpc.cpp.o"
  "CMakeFiles/memq_compress.dir/bpc.cpp.o.d"
  "CMakeFiles/memq_compress.dir/chunk_codec.cpp.o"
  "CMakeFiles/memq_compress.dir/chunk_codec.cpp.o.d"
  "CMakeFiles/memq_compress.dir/gorilla.cpp.o"
  "CMakeFiles/memq_compress.dir/gorilla.cpp.o.d"
  "CMakeFiles/memq_compress.dir/huffman.cpp.o"
  "CMakeFiles/memq_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/memq_compress.dir/lzh.cpp.o"
  "CMakeFiles/memq_compress.dir/lzh.cpp.o.d"
  "CMakeFiles/memq_compress.dir/null_compressor.cpp.o"
  "CMakeFiles/memq_compress.dir/null_compressor.cpp.o.d"
  "CMakeFiles/memq_compress.dir/registry.cpp.o"
  "CMakeFiles/memq_compress.dir/registry.cpp.o.d"
  "CMakeFiles/memq_compress.dir/szq.cpp.o"
  "CMakeFiles/memq_compress.dir/szq.cpp.o.d"
  "libmemq_compress.a"
  "libmemq_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memq_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
