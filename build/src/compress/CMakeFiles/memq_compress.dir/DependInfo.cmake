
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bpc.cpp" "src/compress/CMakeFiles/memq_compress.dir/bpc.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/bpc.cpp.o.d"
  "/root/repo/src/compress/chunk_codec.cpp" "src/compress/CMakeFiles/memq_compress.dir/chunk_codec.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/chunk_codec.cpp.o.d"
  "/root/repo/src/compress/gorilla.cpp" "src/compress/CMakeFiles/memq_compress.dir/gorilla.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/gorilla.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/memq_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/lzh.cpp" "src/compress/CMakeFiles/memq_compress.dir/lzh.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/lzh.cpp.o.d"
  "/root/repo/src/compress/null_compressor.cpp" "src/compress/CMakeFiles/memq_compress.dir/null_compressor.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/null_compressor.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/compress/CMakeFiles/memq_compress.dir/registry.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/registry.cpp.o.d"
  "/root/repo/src/compress/szq.cpp" "src/compress/CMakeFiles/memq_compress.dir/szq.cpp.o" "gcc" "src/compress/CMakeFiles/memq_compress.dir/szq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
