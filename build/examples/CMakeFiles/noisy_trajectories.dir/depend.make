# Empty dependencies file for noisy_trajectories.
# This may be replaced when dependencies are built.
