file(REMOVE_RECURSE
  "CMakeFiles/noisy_trajectories.dir/noisy_trajectories.cpp.o"
  "CMakeFiles/noisy_trajectories.dir/noisy_trajectories.cpp.o.d"
  "noisy_trajectories"
  "noisy_trajectories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
