file(REMOVE_RECURSE
  "CMakeFiles/shor_factor15.dir/shor_factor15.cpp.o"
  "CMakeFiles/shor_factor15.dir/shor_factor15.cpp.o.d"
  "shor_factor15"
  "shor_factor15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shor_factor15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
