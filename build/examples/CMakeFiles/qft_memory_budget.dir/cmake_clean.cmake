file(REMOVE_RECURSE
  "CMakeFiles/qft_memory_budget.dir/qft_memory_budget.cpp.o"
  "CMakeFiles/qft_memory_budget.dir/qft_memory_budget.cpp.o.d"
  "qft_memory_budget"
  "qft_memory_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qft_memory_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
