# Empty compiler generated dependencies file for qft_memory_budget.
# This may be replaced when dependencies are built.
