// Plan-optimizer bench (ISSUE 8, experiment A8): QFT / Bernstein-Vazirani /
// Haar-random workloads at 25% / 50% / 100% chunk-cache budgets, with the
// locality-aware plan optimizer on vs off. For each arm we record the
// forecast (planned codec passes from the Belady replay) next to the actual
// counters, so the table doubles as a calibration check of the cost model.
//
// Success bars (exit status):
//   (a) on the QFT at the 25% budget, plan-opt on yields a higher
//       gates-per-codec-pass, fewer actual chunk loads, and lower real
//       codec seconds than plan-opt off;
//   (b) plan-opt on never does more codec passes than off on any arm;
//   (c) a small-n differential check: both arms match the dense oracle.
//
// Writes BENCH_plan_opt.json next to the binary for the driver.
//
// usage: bench_plan_opt [qft_qubits]   (default 25; pass e.g. 18 for a
//                                       smoke run — Haar stays at 16)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "sv/simulator.hpp"

namespace {

using namespace memq;

struct Arm {
  std::string workload;
  int qubits = 0;
  int budget_pct = 0;
  bool plan_opt = false;
  // Forecast (offline Belady replay).
  double planned_codec_passes = 0.0;
  bool planned_exact = true;
  double gates_per_codec_pass = 0.0;
  // Actuals.
  std::uint64_t chunk_loads = 0;
  std::uint64_t chunk_stores = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double codec_seconds = 0.0;
  double modeled_seconds = 0.0;
};

Arm run_arm(const circuit::Circuit& c, const std::string& workload,
            qubit_t chunk_qubits, int budget_pct, bool plan_opt) {
  core::EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.bound = 1e-6;
  cfg.plan_opt = plan_opt;
  const std::uint64_t chunk_bytes = kAmpBytes << chunk_qubits;
  const std::uint64_t n_chunks = dim_of(c.n_qubits()) >> chunk_qubits;
  cfg.cache_budget_bytes =
      n_chunks * chunk_bytes * static_cast<std::uint64_t>(budget_pct) / 100;

  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);

  Arm a;
  a.workload = workload;
  a.qubits = static_cast<int>(c.n_qubits());
  a.budget_pct = budget_pct;
  a.plan_opt = plan_opt;
  if (const core::StageReport* rep = engine->stage_report()) {
    a.planned_codec_passes = rep->planned.codec_passes();
    a.planned_exact = rep->planned.exact;
    a.gates_per_codec_pass = rep->plan_gates_per_codec_pass;
  }
  const auto& t = engine->telemetry();
  a.chunk_loads = t.chunk_loads;
  a.chunk_stores = t.chunk_stores;
  a.cache_hits = t.cache_hits;
  a.cache_misses = t.cache_misses;
  a.codec_seconds =
      t.cpu_phases.get("decompress") + t.cpu_phases.get("recompress");
  a.modeled_seconds = t.modeled_total_seconds;
  return a;
}

/// Small-n correctness arm: both plan-opt settings against the dense oracle.
double differential_err(const circuit::Circuit& c, bool plan_opt) {
  sv::Simulator oracle(c.n_qubits());
  oracle.run(c);
  core::EngineConfig cfg;
  cfg.chunk_qubits = static_cast<qubit_t>(c.n_qubits() - 4);
  cfg.codec.bound = 1e-7;
  cfg.plan_opt = plan_opt;
  cfg.cache_budget_bytes = 4 * (kAmpBytes << cfg.chunk_qubits);
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);
  return engine->to_dense().max_abs_diff(oracle.state());
}

}  // namespace

int main(int argc, char** argv) {
  const int qft_qubits = argc > 1 ? std::atoi(argv[1]) : 25;
  if (qft_qubits < 12 || qft_qubits > 30) {
    std::cerr << "usage: bench_plan_opt [qft_qubits in 12..30]\n";
    return 2;
  }
  const qubit_t nq = static_cast<qubit_t>(qft_qubits);
  const qubit_t haar_q = 16;

  struct Workload {
    std::string name;
    circuit::Circuit circuit;
    qubit_t chunk_qubits;
  };
  const std::vector<Workload> workloads = {
      {"qft", circuit::make_qft(nq), static_cast<qubit_t>(nq - 9)},
      {"bv", circuit::make_bernstein_vazirani(nq, 0x5a5a5a5aull &
                                                      (dim_of(nq) - 1)),
       static_cast<qubit_t>(nq - 9)},
      {"haar", circuit::make_random_circuit(haar_q, 6, 20260807, true),
       static_cast<qubit_t>(haar_q - 6)},
  };

  std::cout << "plan-opt bench — qft/bv at " << qft_qubits
            << " qubits (512 chunks), haar at " << int(haar_q)
            << " qubits (64 chunks); cache budgets 25/50/100%\n\n";

  std::vector<Arm> arms;
  bool qft25_bar = true;
  bool never_worse = true;

  for (const Workload& w : workloads) {
    TextTable table({"budget", "plan-opt", "planned passes", "gates/pass",
                     "loads", "stores", "hits", "miss", "codec cpu",
                     "modeled"});
    for (const int pct : {25, 50, 100}) {
      const Arm off = run_arm(w.circuit, w.name, w.chunk_qubits, pct, false);
      const Arm on = run_arm(w.circuit, w.name, w.chunk_qubits, pct, true);
      for (const Arm* a : {&off, &on})
        table.add_row({std::to_string(a->budget_pct) + "%",
                       a->plan_opt ? "on" : "off",
                       format_fixed(a->planned_codec_passes, 0) +
                           (a->planned_exact ? "" : "~"),
                       format_fixed(a->gates_per_codec_pass, 2),
                       std::to_string(a->chunk_loads),
                       std::to_string(a->chunk_stores),
                       std::to_string(a->cache_hits),
                       std::to_string(a->cache_misses),
                       human_seconds(a->codec_seconds),
                       human_seconds(a->modeled_seconds)});
      never_worse =
          never_worse && on.planned_codec_passes <= off.planned_codec_passes;
      if (w.name == "qft" && pct == 25) {
        qft25_bar = on.gates_per_codec_pass > off.gates_per_codec_pass &&
                    on.chunk_loads < off.chunk_loads &&
                    on.codec_seconds < off.codec_seconds;
      }
      arms.push_back(off);
      arms.push_back(on);
    }
    std::cout << w.name << "(" << int(w.circuit.n_qubits()) << "), "
              << w.circuit.size() << " gates:\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  // Small-n differential: the reorder must be invisible in the amplitudes.
  constexpr double kTolerance = 1e-3;
  bool diff_ok = true;
  for (const auto& [name, circ] :
       {std::pair<std::string, circuit::Circuit>{"qft",
                                                 circuit::make_qft(10)},
        {"bv", circuit::make_bernstein_vazirani(10, 0x2cd)},
        {"haar", circuit::make_random_circuit(10, 5, 777, true)}}) {
    for (const bool plan_opt : {false, true}) {
      const double err = differential_err(circ, plan_opt);
      diff_ok = diff_ok && err < kTolerance;
      if (err >= kTolerance)
        std::cout << "DIFFERENTIAL MISMATCH: " << name << "-10 plan-opt "
                  << (plan_opt ? "on" : "off") << " max |err| "
                  << format_sci(err, 2) << "\n";
    }
  }

  std::cout << "qft@25%: plan-opt raises gates/pass, cuts loads and real "
               "codec seconds: "
            << (qft25_bar ? "yes" : "NO") << "\n"
            << "plan-opt never predicts more codec passes than legacy: "
            << (never_worse ? "yes" : "NO") << "\n"
            << "small-n amplitudes match the dense oracle (both arms): "
            << (diff_ok ? "yes" : "NO") << "\n";

  std::ofstream json("BENCH_plan_opt.json");
  json << "{\n  \"qft_qubits\": " << qft_qubits
       << ",\n  \"haar_qubits\": " << int(haar_q) << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    json << "    {\"workload\": \"" << a.workload
         << "\", \"qubits\": " << a.qubits
         << ", \"budget_pct\": " << a.budget_pct
         << ", \"plan_opt\": " << (a.plan_opt ? "true" : "false")
         << ", \"planned_codec_passes\": " << a.planned_codec_passes
         << ", \"planned_exact\": " << (a.planned_exact ? "true" : "false")
         << ", \"gates_per_codec_pass\": " << a.gates_per_codec_pass
         << ", \"chunk_loads\": " << a.chunk_loads
         << ", \"chunk_stores\": " << a.chunk_stores
         << ", \"cache_hits\": " << a.cache_hits
         << ", \"cache_misses\": " << a.cache_misses
         << ", \"codec_seconds\": " << a.codec_seconds
         << ", \"modeled_seconds\": " << a.modeled_seconds << "}"
         << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"qft25_bar\": " << (qft25_bar ? "true" : "false")
       << ",\n  \"never_worse\": " << (never_worse ? "true" : "false")
       << ",\n  \"differential_ok\": " << (diff_ok ? "true" : "false")
       << "\n}\n";
  return (qft25_bar && never_worse && diff_ok) ? 0 : 1;
}
