// Batched throughput bench (ISSUE 10): K member circuits per codec pass vs
// the one-engine-per-member serial loop, on a cache-constrained workload
// (the cache holds 25% of the chunks, so the serial loop pays real codec
// passes for every member). Shots mode — all K members run the identical
// circuit, the regime where the fork tree shares EVERY stage and the whole
// batch costs one member's codec traffic plus the fan-out clones.
//
// Verifies the tentpole claims:
//   (a) codec passes grow sublinearly in K: the batch's measured chunk
//       loads stay within 2x of ONE serial member's loads (shared passes
//       ~= 1x serial, not Kx);
//   (b) throughput: >= 2x circuits/sec over the serial loop at K = 8;
//   (c) every member's amplitudes are BIT-identical to its own serial run
//       (null codec, so lossy round-trip counting cannot differ).
//
// Writes BENCH_batch.json next to the binary for the driver.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/batch_scheduler.hpp"
#include "core/engine.hpp"
#include "sv/state_vector.hpp"

namespace {

using namespace memq;

constexpr qubit_t kQubits = 14;
constexpr qubit_t kChunkQubits = 9;  // 32 chunks of 8 KiB raw
constexpr std::uint32_t kBatch = 8;

core::EngineConfig base_config() {
  core::EngineConfig cfg;
  cfg.chunk_qubits = kChunkQubits;
  // Null codec: lossless, so batch and serial runs are bit-identical even
  // though the cache changes how many codec round trips each chunk pays.
  cfg.codec.compressor = "null";
  // Cache-constrained: 25% of ONE member's chunks. The serial loop thrashes
  // this per member; the batch pays the thrash once for the shared pass.
  cfg.cache_budget_bytes = 8 * (kAmpBytes << kChunkQubits);
  cfg.batch_size = kBatch;
  cfg.batch_mode = core::BatchMode::kShots;
  return cfg;
}

struct SerialArm {
  double wall_seconds = 0.0;
  std::uint64_t total_loads = 0;   ///< across all K members
  std::uint64_t single_loads = 0;  ///< one member's loads
  std::vector<sv::StateVector> states;
};

SerialArm run_serial(const circuit::Circuit& c,
                     const core::EngineConfig& cfg) {
  SerialArm a;
  WallTimer wall;
  for (std::uint32_t m = 0; m < kBatch; ++m) {
    core::EngineConfig one = cfg;
    one.batch_size = 1;
    one.seed = cfg.seed + m;
    auto engine =
        core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), one);
    engine->run(c);
    const std::uint64_t loads = engine->telemetry().chunk_loads;
    a.total_loads += loads;
    if (m == 0) a.single_loads = loads;
    a.states.push_back(engine->to_dense());
  }
  a.wall_seconds = wall.seconds();
  return a;
}

}  // namespace

int main() {
  std::cout << "batch bench — " << int(kQubits) << " qubits, chunk 2^"
            << int(kChunkQubits) << " ("
            << (dim_of(kQubits) >> kChunkQubits) << " chunks), K = "
            << kBatch << " members, shots mode, 8-chunk cache (25%), "
            << "null codec\n\n";

  struct Workload {
    std::string name;
    circuit::Circuit circuit;
  };
  const std::vector<Workload> workloads = {
      {"qft", circuit::make_qft(kQubits)},
      {"haar-rand", circuit::make_random_circuit(kQubits, 8, 1010, true)},
  };

  bool sublinear_ok = true, speedup_ok = true, bit_identical = true;

  struct Row {
    std::string workload;
    std::uint64_t serial_loads = 0, serial_single_loads = 0,
                  batch_loads = 0, clone_chunks = 0;
    std::size_t total_member_stages = 0, executed_stages = 0,
                shared_stages = 0;
    double serial_wall = 0.0, batch_wall = 0.0;
    double serial_cps = 0.0, batch_cps = 0.0, speedup = 0.0;
    double amortized_mb_per_s = 0.0;
    bool members_identical = true;
  };
  std::vector<Row> rows;

  for (const Workload& w : workloads) {
    const core::EngineConfig cfg = base_config();
    const SerialArm serial = run_serial(w.circuit, cfg);

    core::BatchScheduler batch(kQubits, cfg);
    const std::vector<circuit::Circuit> members(kBatch, w.circuit);
    batch.run(members);
    const core::BatchStats& bs = batch.stats();

    Row r;
    r.workload = w.name;
    r.serial_loads = serial.total_loads;
    r.serial_single_loads = serial.single_loads;
    r.batch_loads = bs.chunk_loads;
    r.clone_chunks = bs.clone_chunks;
    r.total_member_stages = bs.total_member_stages;
    r.executed_stages = bs.executed_stages;
    r.shared_stages = bs.shared_stages;
    r.serial_wall = serial.wall_seconds;
    r.batch_wall = bs.wall_seconds;
    r.serial_cps =
        serial.wall_seconds > 0.0 ? kBatch / serial.wall_seconds : 0.0;
    r.batch_cps = bs.circuits_per_second;
    r.speedup = r.serial_cps > 0.0 ? r.batch_cps / r.serial_cps : 0.0;
    r.amortized_mb_per_s = bs.amortized_mb_per_s;

    for (std::uint32_t m = 0; m < kBatch; ++m) {
      const sv::StateVector got = batch.member_dense(m);
      if (got.max_abs_diff(serial.states[m]) != 0.0)
        r.members_identical = false;
    }

    // (a) Sublinear codec passes: the shared pass costs one member's loads,
    // plus slack for the fan-out epilogue. 2x one member << 8x serial.
    sublinear_ok =
        sublinear_ok && r.batch_loads <= 2 * r.serial_single_loads;
    // (b) >= 2x circuits/sec at K = 8.
    speedup_ok = speedup_ok && r.speedup >= 2.0;
    bit_identical = bit_identical && r.members_identical;

    TextTable table({"arm", "wall", "circuits/s", "chunk loads",
                     "stages run", "shared", "clones"});
    table.add_row({"serial x" + std::to_string(kBatch),
                   human_seconds(r.serial_wall),
                   format_fixed(r.serial_cps, 1),
                   std::to_string(r.serial_loads),
                   std::to_string(r.total_member_stages), "0", "0"});
    table.add_row({"batch", human_seconds(r.batch_wall),
                   format_fixed(r.batch_cps, 1),
                   std::to_string(r.batch_loads),
                   std::to_string(r.executed_stages),
                   std::to_string(r.shared_stages),
                   std::to_string(r.clone_chunks)});
    std::cout << w.name << "(" << int(kQubits) << "), "
              << w.circuit.size() << " gates:\n";
    table.print(std::cout);
    std::cout << "speedup: " << format_fixed(r.speedup, 2)
              << "x, amortized " << format_fixed(r.amortized_mb_per_s, 1)
              << " MB/s, members bit-identical to serial: "
              << (r.members_identical ? "yes" : "NO") << "\n\n";
    rows.push_back(std::move(r));
  }

  std::cout << "codec passes sublinear in K (batch <= 2x one serial "
               "member): "
            << (sublinear_ok ? "yes" : "NO") << "\n"
            << ">= 2x circuits/sec at K = " << kBatch << ": "
            << (speedup_ok ? "yes" : "NO") << "\n"
            << "every member bit-identical to its serial run: "
            << (bit_identical ? "yes" : "NO") << "\n";

  std::ofstream json("BENCH_batch.json");
  json << "{\n  \"qubits\": " << int(kQubits)
       << ",\n  \"chunk_qubits\": " << int(kChunkQubits)
       << ",\n  \"batch\": " << kBatch << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"workload\": \"" << r.workload
         << "\", \"serial_chunk_loads\": " << r.serial_loads
         << ", \"serial_single_member_loads\": " << r.serial_single_loads
         << ", \"batch_chunk_loads\": " << r.batch_loads
         << ", \"clone_chunks\": " << r.clone_chunks
         << ", \"total_member_stages\": " << r.total_member_stages
         << ", \"executed_stages\": " << r.executed_stages
         << ", \"shared_stages\": " << r.shared_stages
         << ", \"serial_wall_seconds\": " << r.serial_wall
         << ", \"batch_wall_seconds\": " << r.batch_wall
         << ", \"serial_circuits_per_second\": " << r.serial_cps
         << ", \"batch_circuits_per_second\": " << r.batch_cps
         << ", \"speedup\": " << r.speedup
         << ", \"amortized_mb_per_s\": " << r.amortized_mb_per_s
         << ", \"members_bit_identical\": "
         << (r.members_identical ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"sublinear_ok\": " << (sublinear_ok ? "true" : "false")
       << ",\n  \"speedup_ok\": " << (speedup_ok ? "true" : "false")
       << ",\n  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "\n}\n";
  return (sublinear_ok && speedup_ok && bit_identical) ? 0 : 1;
}
