// Codec raw-speed bench (ISSUE 6 tentpole): szq encode/decode throughput in
// MB/s of RAW amplitude bytes, swept over plane shapes × dispatch level
// (forced scalar vs the widest ISA this CPU has) × shared-dictionary mode.
// The scalar and SIMD arms encode byte-identical streams (test-enforced in
// tests/test_simd_codec.cpp), so the ratio column is pure speed.
//
// Writes BENCH_codec_speed.json next to the binary for the driver.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "compress/byte_buffer.hpp"
#include "compress/compressor.hpp"
#include "compress/dictionary.hpp"

namespace {

using namespace memq;
using compress::ByteBuffer;
using compress::DictContext;

constexpr std::size_t kPlaneLen = std::size_t{1} << 16;
constexpr double kEb = 1e-7;
// Each measured cell runs at least this long (seconds) and this many reps.
constexpr double kMinSeconds = 0.25;
constexpr int kMinReps = 3;

std::vector<double> make_plane(const std::string& kind) {
  std::vector<double> v(kPlaneLen, 0.0);
  std::mt19937_64 rng(7);
  std::normal_distribution<double> normal(0.0, 1.0);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  if (kind == "smooth") {
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = 1e-3 * std::sin(2e-4 * static_cast<double>(i));
  } else if (kind == "haar") {
    const double scale = 1.0 / std::sqrt(static_cast<double>(v.size()));
    for (auto& x : v) x = normal(rng) * scale;
  } else if (kind == "sparse") {
    for (std::size_t i = 0; i < v.size(); i += 50) v[i] = uni(rng);
  }  // "zero": leave as-is
  return v;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  double encode_mbps = 0.0;
  double decode_mbps = 0.0;
  double ratio = 0.0;  // raw bytes / encoded bytes
};

// Measures steady-state encode and decode throughput for one configuration.
// `dict` (may be null) is used as-is — callers pre-train it.
Cell measure(const compress::Compressor& comp, const std::vector<double>& plane,
             DictContext* dict) {
  const double raw_mb = static_cast<double>(plane.size() * sizeof(double)) / 1e6;

  ByteBuffer encoded;
  comp.compress(plane, kEb, encoded, dict);

  Cell cell;
  cell.ratio = static_cast<double>(plane.size() * sizeof(double)) /
               static_cast<double>(encoded.size());

  // Encode arm.
  {
    int reps = 0;
    const double t0 = now_seconds();
    double t1 = t0;
    while (reps < kMinReps || t1 - t0 < kMinSeconds) {
      ByteBuffer out;
      comp.compress(plane, kEb, out, dict);
      ++reps;
      t1 = now_seconds();
    }
    cell.encode_mbps = raw_mb * reps / (t1 - t0);
  }

  // Decode arm.
  {
    std::vector<double> out(plane.size());
    int reps = 0;
    const double t0 = now_seconds();
    double t1 = t0;
    while (reps < kMinReps || t1 - t0 < kMinSeconds) {
      comp.decompress(encoded, out, dict);
      ++reps;
      t1 = now_seconds();
    }
    cell.decode_mbps = raw_mb * reps / (t1 - t0);
  }
  return cell;
}

struct Row {
  std::string plane;
  std::string dict_mode;
  Cell scalar;
  Cell simd;
};

}  // namespace

int main() {
  const auto comp = compress::make_compressor("szq");
  const simd::IsaLevel widest = simd::detected();

  std::cout << "codec speed bench — szq, n = " << kPlaneLen
            << " doubles/plane, eb = " << format_sci(kEb, 0)
            << ", widest ISA: " << simd::name(widest) << "\n\n";

  std::vector<Row> rows;
  for (const std::string plane_kind : {"smooth", "haar", "sparse", "zero"}) {
    const auto plane = make_plane(plane_kind);
    for (const std::string dict_mode : {"off", "train"}) {
      Row row;
      row.plane = plane_kind;
      row.dict_mode = dict_mode;

      // One shared dictionary per (plane, mode) row, trained up front so
      // both dispatch arms measure the same steady state. 8 observations
      // of 64K tokens dominate the +1 alphabet smoothing.
      std::shared_ptr<DictContext> dict;
      if (dict_mode == "train") {
        dict = std::make_shared<DictContext>();
        for (int i = 0; i < 8 && dict->dict() == nullptr; ++i) {
          ByteBuffer warm;
          comp->compress(plane, kEb, warm, dict.get());
        }
        dict->train_now();
      }

      simd::force(simd::IsaLevel::kScalar);
      row.scalar = measure(*comp, plane, dict.get());
      simd::force(widest);
      row.simd = measure(*comp, plane, dict.get());
      simd::clear_force();
      rows.push_back(row);
    }
  }

  TextTable table({"plane", "dict", "ratio", "enc scalar MB/s",
                   "enc " + std::string(simd::name(widest)) + " MB/s",
                   "enc speedup", "dec scalar MB/s",
                   "dec " + std::string(simd::name(widest)) + " MB/s",
                   "dec speedup"});
  for (const Row& r : rows) {
    table.add_row({r.plane, r.dict_mode, format_fixed(r.simd.ratio, 2),
                   format_fixed(r.scalar.encode_mbps, 1),
                   format_fixed(r.simd.encode_mbps, 1),
                   format_fixed(r.simd.encode_mbps / r.scalar.encode_mbps, 2) +
                       "x",
                   format_fixed(r.scalar.decode_mbps, 1),
                   format_fixed(r.simd.decode_mbps, 1),
                   format_fixed(r.simd.decode_mbps / r.scalar.decode_mbps, 2) +
                       "x"});
  }
  table.print(std::cout);

  std::ofstream json("BENCH_codec_speed.json");
  json << "{\n  \"compressor\": \"szq\",\n  \"plane_len\": " << kPlaneLen
       << ",\n  \"eb\": " << format_sci(kEb, 0) << ",\n  \"widest_isa\": \""
       << simd::name(widest) << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"plane\": \"" << r.plane << "\", \"dict\": \""
         << r.dict_mode << "\", \"ratio\": " << r.simd.ratio
         << ", \"encode_mbps_scalar\": " << r.scalar.encode_mbps
         << ", \"encode_mbps_simd\": " << r.simd.encode_mbps
         << ", \"decode_mbps_scalar\": " << r.scalar.decode_mbps
         << ", \"decode_mbps_simd\": " << r.simd.decode_mbps << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote BENCH_codec_speed.json\n";
  return 0;
}
