// Experiment T1 — reproduces Table 1 of the paper:
//
//   "Data transfer time H2D/D2H in seconds" for three strategies of moving
//   state-vector amplitudes between CPU and GPU at 20 and 25 qubits:
//     sync   = one bulk cudaMemcpy (lower bound),
//     async  = one cudaMemcpyAsync per amplitude,
//     buffer = bulk copy into a GPU staging buffer + device-side placement.
//
// Paper values (their testbed):
//   20 qubits: sync 0.003/0.008, async 2.7/9.2,   buffer 0.003/0.004
//   25 qubits: sync 0.080/0.233, async 77.9/294.4, buffer 0.110/0.273
// Headline ratios: async/sync ~ 870x (H2D); buffer/sync ~ 1.03x.
//
// Our device is the simulated accelerator (see DESIGN.md): the per-call
// overheads and bandwidths are calibrated constants, but the RATIOS emerge
// from the strategy structure (number of API calls x per-call cost), which
// is the mechanism the paper identifies.
#include <iostream>
#include <vector>

#include "common/format.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "device/copy_engine.hpp"

namespace {

using namespace memq;
using device::CopyEngine;
using device::DeviceConfig;
using device::SimDevice;
using device::Stream;
using device::TransferStrategy;

struct Measurement {
  double h2d = 0.0;
  double d2h = 0.0;
};

Measurement measure(TransferStrategy strategy, qubit_t qubits) {
  const index_t n = dim_of(qubits);
  DeviceConfig cfg;
  cfg.memory_bytes = 2 * n * kAmpBytes + (1 << 20);
  SimDevice device(cfg);
  Stream stream(device, "xfer");
  CopyEngine engine(device, strategy);

  auto state = device.alloc(n * kAmpBytes, "state");
  auto staging = device.alloc(n * kAmpBytes, "staging");
  std::vector<amp_t> host(n, amp_t{0.5, -0.5});

  Measurement m;
  m.h2d = engine.upload(stream, state, host, {}, &staging).modeled_seconds;
  stream.synchronize();
  m.d2h = engine.download(stream, host, state, {}, &staging).modeled_seconds;
  stream.synchronize();
  return m;
}

}  // namespace

int main() {
  std::cout << "MEMQSim experiment T1 — Table 1: data transfer time H2D/D2H "
               "in seconds\n"
               "(simulated accelerator; paper testbed values in brackets)\n\n";

  struct PaperRow {
    qubit_t qubits;
    double sync_h2d, sync_d2h, async_h2d, async_d2h, buf_h2d, buf_d2h;
  };
  const PaperRow paper[] = {
      {20, 0.003, 0.008, 2.7, 9.2, 0.003, 0.004},
      {25, 0.080, 0.233, 77.9, 294.4, 0.110, 0.273},
  };

  TextTable table({"qubits", "sync H2D/D2H", "async H2D/D2H",
                   "buffer H2D/D2H", "async/sync", "buffer/sync"});
  for (const PaperRow& row : paper) {
    const Measurement sync = measure(TransferStrategy::kSync, row.qubits);
    const Measurement async_m =
        measure(TransferStrategy::kAsyncPerElement, row.qubits);
    const Measurement buf = measure(TransferStrategy::kStagedBuffer, row.qubits);

    table.add_row({std::to_string(row.qubits),
                   format_fixed(sync.h2d, 3) + "/" + format_fixed(sync.d2h, 3),
                   format_fixed(async_m.h2d, 1) + "/" +
                       format_fixed(async_m.d2h, 1),
                   format_fixed(buf.h2d, 3) + "/" + format_fixed(buf.d2h, 3),
                   format_fixed(async_m.h2d / sync.h2d, 0) + "x",
                   format_fixed(buf.h2d / sync.h2d, 2) + "x"});
    table.add_row({"  (paper)",
                   format_fixed(row.sync_h2d, 3) + "/" +
                       format_fixed(row.sync_d2h, 3),
                   format_fixed(row.async_h2d, 1) + "/" +
                       format_fixed(row.async_d2h, 1),
                   format_fixed(row.buf_h2d, 3) + "/" +
                       format_fixed(row.buf_d2h, 3),
                   format_fixed(row.async_h2d / row.sync_h2d, 0) + "x",
                   format_fixed(row.buf_h2d / row.sync_h2d, 2) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nShape check: per-element async pays the per-call overhead "
               "2^n times, so it\nsits orders of magnitude above one bulk "
               "copy; the staged buffer restores\nbulk bandwidth at the cost "
               "of one extra device buffer (~1.0x sync).\n";
  return 0;
}
