// Experiment E6 — positioning against the two baselines the paper's
// introduction names:
//   * dense state-vector backends (no compression: memory wall),
//   * Wu et al. [6]-style full-state compression (compress/decompress
//     "with high frequency ... a significant portion of the total
//     simulation time", CPU only).
//
// Reports per engine: modeled end-to-end time, real codec time, peak state
// memory, and codec pass counts, across qubit counts.
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  using namespace memq;
  std::cout << "MEMQSim experiment E6 — dense vs. Wu-style [6] vs. MEMQSim\n"
               "(workload: QFT; chunk = 2^(n-5) amps; bound 1e-5)\n\n";

  for (const qubit_t n : {qubit_t{12}, qubit_t{14}, qubit_t{16}}) {
    const circuit::Circuit c = circuit::make_qft(n);
    std::cout << "QFT(" << static_cast<int>(n) << "), " << c.size()
              << " gates, dense state " << human_bytes(state_bytes(n)) << "\n";
    TextTable table({"engine", "modeled time", "codec cpu time",
                     "chunk loads", "chunk stores", "peak state",
                     "ratio"});
    for (const auto kind : {core::EngineKind::kDense, core::EngineKind::kWu,
                            core::EngineKind::kMemQSim}) {
      core::EngineConfig cfg;
      cfg.chunk_qubits = n - 5;
      cfg.codec.bound = 1e-5;
      auto engine = core::make_engine(kind, n, cfg);
      engine->run(c);
      const auto& t = engine->telemetry();
      const double codec_time =
          t.cpu_phases.get("decompress") + t.cpu_phases.get("recompress");
      table.add_row({engine->name(),
                     human_seconds(t.modeled_total_seconds),
                     human_seconds(codec_time), std::to_string(t.chunk_loads),
                     std::to_string(t.chunk_stores),
                     human_bytes(t.peak_host_state_bytes),
                     format_fixed(t.final_compression_ratio, 1) + "x"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: the Wu-style baseline pays a decompress + "
               "recompress sweep\nper GATE; MEMQSim's stage partitioning "
               "amortizes one sweep over a whole\nlocal run and offloads the "
               "arithmetic to the accelerator, so its codec\ntime and chunk "
               "loads sit far below [6] at the same compression ratio.\n";
  return 0;
}
