// Ablation A3 — qubit-layout optimization (challenge 3, remapping form):
// placing each workload's hottest non-diagonal targets in the chunk-local
// range cuts pair stages and the device traffic they cost.
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/partitioner.hpp"
#include "core/qubit_layout.hpp"

namespace {

using namespace memq;

circuit::Circuit hot_high_qubits(qubit_t n, int reps) {
  // Ansatz-style workload whose rotations concentrate on the top qubits —
  // the adversarial case for naive low-is-local chunking.
  circuit::Circuit c(n);
  for (int i = 0; i < reps; ++i) {
    c.ry(n - 1, 0.1 * (i + 1));
    c.rx(n - 2, 0.2 * (i + 1));
    c.cx(n - 1, n - 2);
    c.rz(0, 0.3);  // cold, diagonal
  }
  return c;
}

}  // namespace

int main() {
  std::cout << "MEMQSim ablation A3 — qubit-layout optimization\n"
               "(n = 16, chunk = 2^11 amplitudes)\n\n";

  constexpr qubit_t kN = 16;
  constexpr qubit_t kChunk = 11;

  struct Workload {
    std::string name;
    circuit::Circuit circuit;
  };
  const Workload workloads[] = {
      {"hot-high-qubit ansatz", hot_high_qubits(kN, 30)},
      {"bv", circuit::make_workload("bv", kN, 3)},
      {"qft", circuit::make_qft(kN)},
      {"random", circuit::make_random_circuit(kN, 8, 5)},
  };

  TextTable table({"workload", "layout", "pair stages", "H2D traffic",
                   "chunk loads", "modeled time"});
  for (const Workload& w : workloads) {
    for (const bool opt : {false, true}) {
      core::EngineConfig cfg;
      cfg.chunk_qubits = kChunk;
      cfg.codec.bound = 1e-6;
      cfg.optimize_layout = opt;
      auto engine = core::make_engine(core::EngineKind::kMemQSim,
                                      w.circuit.n_qubits(), cfg);
      engine->run(w.circuit);
      const auto& t = engine->telemetry();
      table.add_row({w.name, opt ? "optimized" : "natural",
                     std::to_string(t.stages_pair),
                     human_bytes(t.h2d_bytes), std::to_string(t.chunk_loads),
                     human_seconds(t.modeled_total_seconds)});
    }
  }
  table.print(std::cout);
  std::cout << "\nConcentrated workloads (top-qubit ansatz, BV's ancilla) "
               "collapse to local\nstages under remapping; uniformly-hot "
               "circuits (QFT, random) cannot be\nfixed by any static layout "
               "— the honest boundary of this optimization.\n";
  return 0;
}
