// Parallel codec pipeline bench: serial (codec_threads = 1) vs. threaded
// online stage on the same workload. Reports real wall seconds, the
// speedup, and the measured peak of the bounded in-flight window, and
// verifies that (a) the results are bit-identical and (b) the window honors
// the structural (pipeline_depth + codec_threads) work-item bound.
//
// Note: speedup tracks the machine's core count — on a single-core host the
// pipeline degenerates to ~1x (the mechanism still runs, there is just no
// parallel hardware to buy time on).
//
// Writes BENCH_codec_parallel.json next to the binary for the driver.
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"

namespace {

using namespace memq;

struct Result {
  std::uint32_t threads = 1;
  double wall_seconds = 0.0;
  std::uint64_t peak_inflight = 0;
  sv::StateVector state{1};
};

Result run_arm(const circuit::Circuit& c, qubit_t chunk_q,
               std::uint32_t threads) {
  core::EngineConfig cfg;
  cfg.chunk_qubits = chunk_q;
  cfg.codec.bound = 1e-6;
  cfg.codec_threads = threads;
  auto engine = core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(),
                                  cfg);
  WallTimer t;
  engine->run(c);
  Result r;
  r.threads = threads;
  r.wall_seconds = t.seconds();
  r.peak_inflight = engine->telemetry().peak_inflight_bytes;
  r.state = engine->to_dense();
  return r;
}

}  // namespace

int main() {
  const qubit_t n = 14, chunk_q = 8;
  const circuit::Circuit c = circuit::make_workload("random", n, 3);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "codec-parallel bench — random(" << int(n) << "), " << c.size()
            << " gates, chunk = 2^" << int(chunk_q) << " amps, "
            << hw << " hardware threads\n\n";

  const Result serial = run_arm(c, chunk_q, 1);
  std::vector<Result> arms;
  for (std::uint32_t t : {2u, 4u, hw}) {
    if (t <= 1) continue;
    if (!arms.empty() && arms.back().threads == t) continue;
    arms.push_back(run_arm(c, chunk_q, t));
  }

  const std::uint64_t chunk_raw = (index_t{1} << chunk_q) * kAmpBytes;
  core::EngineConfig defaults;
  const std::uint64_t depth = defaults.device_count * defaults.device_slots + 1;

  bool all_identical = true, all_bounded = true;
  TextTable table({"codec threads", "wall", "speedup", "peak in-flight",
                   "bound", "bit-identical"});
  table.add_row({"1 (serial)", human_seconds(serial.wall_seconds), "1.00x",
                 human_bytes(serial.peak_inflight),
                 human_bytes((depth + 1) * 2 * chunk_raw), "ref"});
  for (const Result& r : arms) {
    const std::uint64_t bound = (depth + r.threads) * 2 * chunk_raw;
    const bool identical =
        std::memcmp(serial.state.amplitudes().data(),
                    r.state.amplitudes().data(),
                    serial.state.amplitudes().size() * sizeof(amp_t)) == 0;
    const bool bounded = r.peak_inflight <= bound;
    all_identical &= identical;
    all_bounded &= bounded;
    table.add_row({std::to_string(r.threads),
                   human_seconds(r.wall_seconds),
                   format_fixed(serial.wall_seconds / r.wall_seconds, 2) + "x",
                   human_bytes(r.peak_inflight), human_bytes(bound),
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nresults bit-identical across thread counts: "
            << (all_identical ? "yes" : "NO") << "\n"
            << "in-flight window within structural bound:   "
            << (all_bounded ? "yes" : "NO") << "\n";

  std::ofstream json("BENCH_codec_parallel.json");
  json << "{\n  \"qubits\": " << int(n)
       << ",\n  \"chunk_qubits\": " << int(chunk_q)
       << ",\n  \"hardware_threads\": " << hw << ",\n  \"arms\": [\n";
  json << "    {\"threads\": 1, \"wall_seconds\": " << serial.wall_seconds
       << ", \"speedup\": 1.0, \"peak_in_flight_bytes\": "
       << serial.peak_inflight << "}";
  for (const Result& r : arms) {
    json << ",\n    {\"threads\": " << r.threads
         << ", \"wall_seconds\": " << r.wall_seconds
         << ", \"speedup\": " << serial.wall_seconds / r.wall_seconds
         << ", \"peak_in_flight_bytes\": " << r.peak_inflight << "}";
  }
  json << "\n  ],\n  \"bit_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"in_flight_bounded\": " << (all_bounded ? "true" : "false")
       << "\n}\n";
  return (all_identical && all_bounded) ? 0 : 1;
}
