// Ablation A1 — the offline 1q-fusion pass (DESIGN.md §5): merging adjacent
// single-qubit gates before partitioning cuts kernel launches (each launch
// pays the fixed overhead of the device model) without touching accuracy.
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace memq;

circuit::Circuit rotation_heavy(qubit_t n, int layers) {
  circuit::Circuit c(n);
  for (int layer = 0; layer < layers; ++layer) {
    for (qubit_t q = 0; q < n; ++q) {
      c.rz(q, 0.1 * (layer + 1));
      c.ry(q, 0.2 * (q + 1));
      c.rz(q, -0.05 * (layer + 1));
    }
    for (qubit_t q = 0; q + 1 < n; q += 2) c.cx(q, q + 1);
    for (qubit_t q = 1; q + 1 < n; q += 2) c.cz(q, q + 1);
  }
  return c;
}

}  // namespace

int main() {
  std::cout << "MEMQSim ablation A1 — offline 1q-gate fusion\n\n";

  constexpr qubit_t kN = 16;
  constexpr qubit_t kChunk = 11;

  struct Workload {
    const char* name;
    circuit::Circuit circuit;
  };
  const Workload workloads[] = {
      {"rotation-heavy ansatz", rotation_heavy(kN, 4)},
      {"qft", circuit::make_qft(kN)},
      {"random", circuit::make_random_circuit(kN, 8, 5)},
  };

  TextTable table({"workload", "fusion", "gates", "kernel launches",
                   "device busy", "modeled total"});
  for (const Workload& w : workloads) {
    for (const bool fuse : {false, true}) {
      core::EngineConfig cfg;
      cfg.chunk_qubits = kChunk;
      cfg.codec.bound = 1e-6;
      cfg.fuse_single_qubit_runs = fuse;
      auto engine =
          core::make_engine(core::EngineKind::kMemQSim, kN, cfg);
      engine->run(w.circuit);
      const auto& t = engine->telemetry();
      table.add_row({w.name, fuse ? "on" : "off",
                     std::to_string(w.circuit.size()),
                     std::to_string(t.kernel_launches),
                     human_seconds(t.device_busy_seconds),
                     human_seconds(t.modeled_total_seconds)});
    }
  }
  table.print(std::cout);
  std::cout << "\nRotation chains collapse ~3:1; QFT (no adjacent 1q runs) "
               "is unchanged —\nfusion is free when it cannot help.\n";
  return 0;
}
