// Micro-benchmark M2: gate-application kernel throughput (amplitudes/s) —
// the compute side the simulated device's gate_kernel_throughput constant
// abstracts. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <vector>

#include "circuit/gate.hpp"
#include "common/prng.hpp"
#include "sv/kernels.hpp"

namespace {

using namespace memq;
using circuit::Gate;

std::vector<amp_t> make_state(qubit_t n) {
  Prng rng(1);
  std::vector<amp_t> v(dim_of(n));
  for (auto& a : v) a = rng.normal_amp();
  return v;
}

void BM_ApplyH(benchmark::State& state) {
  const auto n = static_cast<qubit_t>(state.range(0));
  auto amps = make_state(n);
  const auto m = Gate::h(0).matrix1q();
  qubit_t t = 0;
  for (auto _ : state) {
    sv::apply_matrix1(amps, t, m);
    t = (t + 1) % n;
    benchmark::DoNotOptimize(amps.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim_of(n)));
}
BENCHMARK(BM_ApplyH)->Arg(14)->Arg(18)->Arg(20);

void BM_ApplyX(benchmark::State& state) {
  const auto n = static_cast<qubit_t>(state.range(0));
  auto amps = make_state(n);
  qubit_t t = 0;
  for (auto _ : state) {
    sv::apply_x(amps, t);
    t = (t + 1) % n;
    benchmark::DoNotOptimize(amps.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim_of(n)));
}
BENCHMARK(BM_ApplyX)->Arg(14)->Arg(18)->Arg(20);

void BM_ApplyRZ_Diagonal(benchmark::State& state) {
  const auto n = static_cast<qubit_t>(state.range(0));
  auto amps = make_state(n);
  const auto m = Gate::rz(0, 0.42).matrix1q();
  for (auto _ : state) {
    sv::apply_diagonal1(amps, 3, m[0], m[3]);
    benchmark::DoNotOptimize(amps.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim_of(n)));
}
BENCHMARK(BM_ApplyRZ_Diagonal)->Arg(14)->Arg(18)->Arg(20);

void BM_ApplyCX(benchmark::State& state) {
  const auto n = static_cast<qubit_t>(state.range(0));
  auto amps = make_state(n);
  for (auto _ : state) {
    sv::apply_gate(amps, Gate::cx(1, n - 1));
    benchmark::DoNotOptimize(amps.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim_of(n)));
}
BENCHMARK(BM_ApplyCX)->Arg(14)->Arg(18)->Arg(20);

void BM_ApplySwap(benchmark::State& state) {
  const auto n = static_cast<qubit_t>(state.range(0));
  auto amps = make_state(n);
  for (auto _ : state) {
    sv::apply_swap(amps, 0, n - 1);
    benchmark::DoNotOptimize(amps.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim_of(n)));
}
BENCHMARK(BM_ApplySwap)->Arg(14)->Arg(18);

void BM_GenericU3_TargetSweep(benchmark::State& state) {
  // Cache behaviour across target qubits: low targets are stride-1, high
  // targets touch two distant halves.
  constexpr qubit_t n = 18;
  auto amps = make_state(n);
  const auto m = Gate::u3(0, 1.0, 2.0, 3.0).matrix1q();
  const auto t = static_cast<qubit_t>(state.range(0));
  for (auto _ : state) {
    sv::apply_matrix1(amps, t, m);
    benchmark::DoNotOptimize(amps.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim_of(n)));
}
BENCHMARK(BM_GenericU3_TargetSweep)->DenseRange(0, 17, 4);

}  // namespace

BENCHMARK_MAIN();
