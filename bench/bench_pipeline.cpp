// Experiment E3 — the online-stage pipeline of paper Figure 1/2
// (design challenge 1: overlapping decompression, CPU-GPU transfer, GPU
// kernels and recompression).
//
// Two device profiles:
//   * paper-class (fast PCIe + GPU): the CPU codec is the bottleneck, so
//     the pipeline hides the *device* entirely — host wait ~ 0 either way
//     and the interesting lever is CPU co-execution (paper step 5);
//   * weak device (slow link + modest accelerator): device time per chunk
//     exceeds codec time, so serialized execution stalls the host and
//     pipelining + the staged strategy recover the difference.
//
// Host wait = modeled total - charged CPU time (CPU phase seconds are
// measured raw and charged / cpu_codec_workers; see core/config.hpp).
//
// Writes BENCH_pipeline.json next to the binary for the driver, including
// the stall accounting (coordinator blocked on codec, modeled device idle)
// surfaced by the stage report.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/telemetry_json.hpp"

namespace {

using namespace memq;

struct Arm {
  const char* label;
  bool pipelined;
  device::TransferStrategy strategy;
  double offload;
};

struct Result {
  std::string profile;
  std::string workload;
  std::string label;
  double modeled_seconds = 0.0;
  double device_busy_seconds = 0.0;
  double host_wait_seconds = 0.0;
  double stall_seconds = 0.0;
  double device_idle_seconds = 0.0;
};

std::vector<Result> g_results;
std::string g_last_telemetry;  // canonical schema document of the last arm

const Arm kArms[] = {
    {"serialized + sync copy", false, device::TransferStrategy::kSync, 0.0},
    {"serialized + staged", false, device::TransferStrategy::kStagedBuffer,
     0.0},
    {"pipelined + sync copy", true, device::TransferStrategy::kSync, 0.0},
    {"pipelined + staged", true, device::TransferStrategy::kStagedBuffer, 0.0},
    {"pipelined + staged + 25% CPU", true,
     device::TransferStrategy::kStagedBuffer, 0.25},
    {"pipelined + staged + 50% CPU", true,
     device::TransferStrategy::kStagedBuffer, 0.5},
};

void run_profile(const char* profile_name, const device::DeviceConfig& dev,
                 const char* workload, qubit_t n, qubit_t chunk_q) {
  const circuit::Circuit c = circuit::make_workload(workload, n, 7);
  std::cout << profile_name << " — workload: " << workload << "(" << n
            << "), " << c.size() << " gates, chunk = 2^" << chunk_q
            << " amps\n";
  TextTable table({"configuration", "modeled total", "device busy",
                   "host wait", "stall", "dev idle", "decompress",
                   "recompress", "cpu apply"});
  for (const Arm& arm : kArms) {
    core::EngineConfig cfg;
    cfg.chunk_qubits = chunk_q;
    cfg.codec.bound = 1e-6;
    cfg.device = dev;
    cfg.pipelined = arm.pipelined;
    cfg.strategy = arm.strategy;
    cfg.cpu_offload_fraction = arm.offload;
    auto engine =
        core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
    engine->run(c);
    const auto& t = engine->telemetry();
    const double charged_cpu = t.cpu_phases.total() / cfg.cpu_codec_workers;
    const double wait = std::max(0.0, t.modeled_total_seconds - charged_cpu);
    const core::StageReport* rep = engine->stage_report();
    const double idle = rep != nullptr ? rep->total.device_idle_seconds : 0.0;
    table.add_row({arm.label, human_seconds(t.modeled_total_seconds),
                   human_seconds(t.device_busy_seconds), human_seconds(wait),
                   human_seconds(t.pipeline_stall_seconds),
                   human_seconds(idle),
                   human_seconds(t.cpu_phases.get("decompress")),
                   human_seconds(t.cpu_phases.get("recompress")),
                   human_seconds(t.cpu_phases.get("cpu_apply"))});
    g_results.push_back({profile_name, workload, arm.label,
                         t.modeled_total_seconds, t.device_busy_seconds, wait,
                         t.pipeline_stall_seconds, idle});
    // Render through the canonical serializer while the engine is alive;
    // the last arm's document lands in BENCH_pipeline_telemetry.json so the
    // driver reads the same schema here as from `memq run`.
    std::ostringstream head;
    head << "  \"bench\": \"pipeline\",\n"
         << "  \"profile\": \"" << profile_name << "\",\n"
         << "  \"workload\": \"" << workload << "\",\n"
         << "  \"configuration\": \"" << arm.label << "\",\n";
    std::ostringstream doc;
    core::write_telemetry_json(doc, t, rep, head.str(),
                               /*faults_armed=*/false);
    g_last_telemetry = doc.str();
  }
  table.print(std::cout);
  std::cout << "\n";
}

void write_json(const char* path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"pipeline\",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    const Result& r = g_results[i];
    out << "    {\"profile\": \"" << r.profile << "\", \"workload\": \""
        << r.workload << "\", \"configuration\": \"" << r.label
        << "\", \"modeled_seconds\": " << r.modeled_seconds
        << ", \"device_busy_seconds\": " << r.device_busy_seconds
        << ", \"host_wait_seconds\": " << r.host_wait_seconds
        << ", \"pipeline_stall_seconds\": " << r.stall_seconds
        << ", \"device_idle_seconds\": " << r.device_idle_seconds << "}"
        << (i + 1 < g_results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << " (" << g_results.size() << " arms)\n";
  if (!g_last_telemetry.empty()) {
    std::ofstream tf("BENCH_pipeline_telemetry.json");
    tf << g_last_telemetry;
    std::cout << "wrote BENCH_pipeline_telemetry.json (schema "
              << core::kTelemetrySchemaVersion << ")\n";
  }
}

}  // namespace

int main() {
  std::cout << "MEMQSim experiment E3 — online-stage pipelining ablation\n\n";
  metrics::arm_timing();  // latency percentiles in the telemetry document

  constexpr qubit_t kN = 16;
  constexpr qubit_t kChunk = 11;

  const device::DeviceConfig paper_class{};  // calibrated defaults

  device::DeviceConfig weak;
  weak.h2d_bandwidth = 8.0e8;           // ~PCIe-1-class link
  weak.d2h_bandwidth = 8.0e8;
  weak.gate_kernel_throughput = 1.5e8;  // modest accelerator
  weak.scatter_kernel_throughput = 1.0e9;

  for (const char* workload : {"qft", "random"}) {
    run_profile("paper-class device", paper_class, workload, kN, kChunk);
    run_profile("weak device", weak, workload, kN, kChunk);
  }

  write_json("BENCH_pipeline.json");

  std::cout
      << "Expected shape: on the paper-class device the codec binds and CPU\n"
         "co-execution is the lever; on the weak device serialized phases\n"
         "stall the host and pipelining + the staged strategy remove most\n"
         "of the wait (the overlap of paper Figure 1).\n";
  return 0;
}
