// Experiment E7 — lossy-error accumulation over circuit depth.
//
// Every recompression injects a bounded pointwise error; over a deep
// circuit those errors random-walk. This bench quantifies the end-state
// infidelity vs. depth for several bounds — the quantitative backing for
// choosing the default bound, and the honest cost side of the paper's
// memory savings.
#include <cmath>
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  using namespace memq;
  std::cout << "MEMQSim experiment E7 — lossy error accumulation vs depth\n"
               "(random circuits, n = 12, chunk = 2^7, szq codec)\n\n";

  constexpr qubit_t kN = 12;
  TextTable table({"depth", "bound", "max |err|", "infidelity", "ratio"});
  for (const std::size_t depth : {4ul, 8ul, 16ul, 32ul}) {
    const circuit::Circuit c = circuit::make_random_circuit(kN, depth, 7);
    core::EngineConfig dense_cfg;
    auto dense = core::make_engine(core::EngineKind::kDense, kN, dense_cfg);
    dense->run(c);
    const sv::StateVector reference = dense->to_dense();

    for (const double bound : {1e-3, 1e-5, 1e-7}) {
      core::EngineConfig cfg;
      cfg.chunk_qubits = 7;
      cfg.codec.bound = bound;
      auto engine = core::make_engine(core::EngineKind::kMemQSim, kN, cfg);
      engine->run(c);
      const sv::StateVector state = engine->to_dense();
      const double err = state.max_abs_diff(reference);
      const double infidelity =
          std::max(0.0, 1.0 - state.fidelity(reference) /
                                  (state.norm() * reference.norm()));
      table.add_row({std::to_string(depth), format_sci(bound, 0),
                     format_sci(err, 1), format_sci(infidelity, 1),
                     format_fixed(
                         engine->telemetry().final_compression_ratio, 1) +
                         "x"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: error grows roughly with sqrt(recompression "
               "count) x bound;\nat 1e-5 even 32 layers stay below 1e-3 "
               "infidelity while the ratio holds.\n";
  return 0;
}
