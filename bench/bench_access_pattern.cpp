// Experiment E5 — design challenge 3: "Different quantum algorithms'
// behaviors affect the access pattern on the state vector."
//
// For each workload, reports the stage structure the partitioner extracts
// (local runs vs. chunk-pair stages vs. free chunk permutations), the
// locality metric (gates per codec pass), and the resulting device traffic.
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "circuit/transpile.hpp"
#include "core/partitioner.hpp"

int main() {
  using namespace memq;
  std::cout << "MEMQSim experiment E5 — algorithm-dependent access patterns\n"
               "(n = 16, chunk = 2^11 amplitudes)\n\n";

  constexpr qubit_t kN = 16;
  constexpr qubit_t kChunk = 11;

  TextTable table({"workload", "gates", "local", "pair", "permute",
                   "gates/codec-pass", "H2D traffic", "zero-chunk skips",
                   "modeled time"});
  for (const auto& name : circuit::workload_names()) {
    const circuit::Circuit c = circuit::make_workload(name, kN, 11);
    const core::StagePlan plan = core::partition(c, kChunk);

    core::EngineConfig cfg;
    cfg.chunk_qubits = kChunk;
    cfg.codec.bound = 1e-5;
    auto engine =
        core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
    engine->run(c);
    const auto& t = engine->telemetry();

    table.add_row({name, std::to_string(circuit::executable_gate_count(c)),
                   std::to_string(plan.stats.local_stages),
                   std::to_string(plan.stats.pair_stages),
                   std::to_string(plan.stats.permute_stages),
                   format_fixed(plan.stats.gates_per_codec_pass(), 2),
                   human_bytes(t.h2d_bytes),
                   std::to_string(t.zero_chunks_skipped),
                   human_seconds(t.modeled_total_seconds)});
  }
  table.print(std::cout);

  std::cout << "\nReading: QFT's controlled-phase cascade is diagonal-heavy "
               "(long local\nruns); GHZ's CX ladder crosses the chunk "
               "boundary once per high qubit\n(permutes, zero codec work); "
               "random circuits hit every high qubit every\nlayer (pair-stage "
               "dominated -> the streaming-bound case).\n";
  return 0;
}
