// Redundancy-aware storage bench (ISSUE 7): --dedup on vs off on
// redundancy-heavy early-depth states — an H-wall into a QFT prefix keeps
// long runs of byte-identical (often constant) chunks live, which is
// exactly the regime content-hashed dedup and the constant-chunk fast path
// target. Both arms run the file backend at 25% of the dedup-off RAM
// arm's peak compressed footprint with a modest chunk cache (alias hits
// need somewhere to live). Verifies the tentpole claims:
//   (a) amplitudes are BIT-identical between the arms (dedup is a storage-
//       plane property, never a numerics one);
//   (b) dedup cuts peak resident blob bytes by >= 40% on this workload;
//   (c) dedup measurably cuts real codec seconds (constant fills skip the
//       codec; cache alias hits skip decodes of shared blobs).
//
// Writes BENCH_dedup.json next to the binary for the driver.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

namespace {

using namespace memq;

constexpr qubit_t kQubits = 16;
constexpr qubit_t kChunkQubits = 10;  // 64 chunks of 16 KiB raw

struct Arm {
  std::string workload;
  bool dedup = false;
  std::uint64_t budget_bytes = 0;
  std::uint64_t peak_resident = 0;
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t dedup_bytes_saved = 0;
  std::uint64_t cow_breaks = 0;
  std::uint64_t constant_chunks_stored = 0;
  std::uint64_t constant_chunks_materialized = 0;
  std::uint64_t cache_alias_hits = 0;
  std::uint64_t codec_memo_hits = 0;
  std::uint64_t h2d_bytes = 0;
  double codec_seconds = 0.0;
  double modeled_seconds = 0.0;
  double max_abs_err = 0.0;
  std::optional<sv::StateVector> state;  // move-only, no 0-qubit ctor
};

core::EngineConfig base_config() {
  core::EngineConfig cfg;
  cfg.chunk_qubits = kChunkQubits;
  cfg.codec.bound = 1e-6;
  cfg.elide_swaps = true;
  cfg.cache_budget_bytes = 8 * (kAmpBytes << kChunkQubits);  // 8 chunks
  return cfg;
}

/// H-wall then the first `prefix_gates` gates of a QFT: the uniform state
/// and its early QFT evolutions are maximally chunk-redundant.
circuit::Circuit make_redundant_workload(qubit_t n, std::size_t prefix_gates) {
  circuit::Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) c.h(q);
  const circuit::Circuit qft = circuit::make_qft(n);
  const std::size_t take = std::min(prefix_gates, qft.size());
  for (std::size_t g = 0; g < take; ++g) c.append(qft.gates()[g]);
  return c;
}

Arm run_arm(const circuit::Circuit& c, const sv::StateVector& reference,
            const std::string& workload, bool dedup, std::uint64_t budget) {
  core::EngineConfig cfg = base_config();
  cfg.dedup = dedup;
  cfg.store_backend = core::StoreBackend::kFile;
  cfg.host_blob_budget_bytes = budget;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);

  Arm a;
  a.workload = workload;
  a.dedup = dedup;
  a.budget_bytes = budget;
  a.state = engine->to_dense();
  a.max_abs_err = a.state->max_abs_diff(reference);

  const auto& t = engine->telemetry();
  a.peak_resident = t.peak_resident_blob_bytes;
  a.spill_bytes_written = t.spill_bytes_written;
  a.dedup_hits = t.dedup_hits;
  a.dedup_bytes_saved = t.dedup_bytes_saved;
  a.cow_breaks = t.cow_breaks;
  a.constant_chunks_stored = t.constant_chunks_stored;
  a.constant_chunks_materialized = t.constant_chunks_materialized;
  a.cache_alias_hits = t.cache_alias_hits;
  a.codec_memo_hits = t.codec_memo_hits;
  a.h2d_bytes = t.h2d_bytes;
  a.codec_seconds =
      t.cpu_phases.get("decompress") + t.cpu_phases.get("recompress");
  a.modeled_seconds = t.modeled_total_seconds;
  return a;
}

std::uint64_t ram_peak(const circuit::Circuit& c) {
  core::EngineConfig cfg = base_config();
  cfg.dedup = false;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);
  return engine->telemetry().peak_resident_blob_bytes;
}

}  // namespace

int main() {
  std::cout << "dedup bench — " << int(kQubits) << " qubits, chunk 2^"
            << int(kChunkQubits) << " ("
            << (dim_of(kQubits) >> kChunkQubits)
            << " chunks), file backend at 25% budget, 8-chunk cache\n\n";

  constexpr double kTolerance = 1e-3;

  struct Workload {
    std::string name;
    circuit::Circuit circuit;
  };
  const std::vector<Workload> workloads = {
      {"hwall-qft-prefix",
       make_redundant_workload(kQubits, std::size_t{kQubits} * 2)},
      {"hwall-local-rand", [] {
         // Tensor product: H-wall on the high (inter-chunk) qubits times a
         // random circuit on the low (intra-chunk) qubits. Every chunk is
         // an identical NON-constant copy, so dedup collapses 64 blobs to
         // one and cache alias hits replace real szq decodes — the
         // codec-seconds saver the constant fast path can't reach.
         circuit::Circuit c(kQubits);
         for (qubit_t q = kChunkQubits; q < kQubits; ++q) c.h(q);
         const auto low =
             circuit::make_random_circuit(kChunkQubits, 8, 4242, true);
         for (const auto& g : low.gates()) c.append(g);
         return c;
       }()},
  };

  std::vector<Arm> arms;
  bool bit_identical = true, accuracy_ok = true;
  bool resident_bar = true;
  double codec_off_total = 0.0, codec_on_total = 0.0;

  for (const Workload& w : workloads) {
    sv::Simulator oracle(kQubits);
    oracle.run(w.circuit);

    const std::uint64_t peak = ram_peak(w.circuit);
    const std::uint64_t budget = peak / 4;  // the 25% pressure point

    Arm off = run_arm(w.circuit, oracle.state(), w.name, false, budget);
    Arm on = run_arm(w.circuit, oracle.state(), w.name, true, budget);

    bit_identical =
        bit_identical && on.state->max_abs_diff(*off.state) == 0.0;
    accuracy_ok = accuracy_ok && off.max_abs_err < kTolerance &&
                  on.max_abs_err < kTolerance;
    const double resident_cut =
        off.peak_resident > 0
            ? 1.0 - static_cast<double>(on.peak_resident) /
                        static_cast<double>(off.peak_resident)
            : 0.0;
    resident_bar = resident_bar && resident_cut >= 0.40;
    codec_off_total += off.codec_seconds;
    codec_on_total += on.codec_seconds;

    TextTable table({"dedup", "peak resident", "spill out", "codec cpu",
                     "h2d", "hits", "saved", "const", "alias", "memo", "max |err|"});
    for (const Arm* a : {&off, &on})
      table.add_row({a->dedup ? "on" : "off", human_bytes(a->peak_resident),
                     human_bytes(a->spill_bytes_written),
                     human_seconds(a->codec_seconds),
                     human_bytes(a->h2d_bytes),
                     std::to_string(a->dedup_hits),
                     human_bytes(a->dedup_bytes_saved),
                     std::to_string(a->constant_chunks_stored),
                     std::to_string(a->cache_alias_hits),
                     std::to_string(a->codec_memo_hits),
                     format_sci(a->max_abs_err, 2)});
    std::cout << w.name << "(" << int(kQubits) << "), " << w.circuit.size()
              << " gates — budget " << human_bytes(budget)
              << " (25% of RAM peak " << human_bytes(peak) << "):\n";
    table.print(std::cout);
    std::cout << "peak resident cut: "
              << format_fixed(100.0 * resident_cut, 1) << "%\n\n";
    arms.push_back(std::move(off));
    arms.push_back(std::move(on));
  }

  const bool codec_bar = codec_on_total < codec_off_total;
  std::cout << "arms bit-identical (dedup on == off): "
            << (bit_identical ? "yes" : "NO") << "\n"
            << "all arms match the dense reference within "
            << format_sci(kTolerance, 0) << ": "
            << (accuracy_ok ? "yes" : "NO") << "\n"
            << "dedup cuts peak resident blob bytes >= 40%: "
            << (resident_bar ? "yes" : "NO") << "\n"
            << "dedup cuts real codec seconds ("
            << human_seconds(codec_on_total) << " vs "
            << human_seconds(codec_off_total)
            << " total): " << (codec_bar ? "yes" : "NO") << "\n";

  std::ofstream json("BENCH_dedup.json");
  json << "{\n  \"qubits\": " << int(kQubits)
       << ",\n  \"chunk_qubits\": " << int(kChunkQubits)
       << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    json << "    {\"workload\": \"" << a.workload << "\", \"dedup\": "
         << (a.dedup ? "true" : "false")
         << ", \"budget_bytes\": " << a.budget_bytes
         << ", \"peak_resident_blob_bytes\": " << a.peak_resident
         << ", \"spill_bytes_written\": " << a.spill_bytes_written
         << ", \"dedup_hits\": " << a.dedup_hits
         << ", \"dedup_bytes_saved\": " << a.dedup_bytes_saved
         << ", \"cow_breaks\": " << a.cow_breaks
         << ", \"constant_chunks_stored\": " << a.constant_chunks_stored
         << ", \"constant_chunks_materialized\": "
         << a.constant_chunks_materialized
         << ", \"cache_alias_hits\": " << a.cache_alias_hits
         << ", \"codec_memo_hits\": " << a.codec_memo_hits
         << ", \"h2d_bytes\": " << a.h2d_bytes
         << ", \"codec_seconds\": " << a.codec_seconds
         << ", \"modeled_seconds\": " << a.modeled_seconds
         << ", \"max_abs_err\": " << a.max_abs_err << "}"
         << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n  \"accuracy_ok\": " << (accuracy_ok ? "true" : "false")
       << ",\n  \"resident_cut_ok\": " << (resident_bar ? "true" : "false")
       << ",\n  \"codec_cut_ok\": " << (codec_bar ? "true" : "false")
       << "\n}\n";
  return (bit_identical && accuracy_ok && resident_bar && codec_bar) ? 0 : 1;
}
