// Ablation A2 — multi-accelerator sharding (the paper's outlook: MEMQSim as
// a plugin for multi-GPU backends like SV-Sim). Chunks fan out round-robin;
// each device's virtual timeline advances in parallel against one host
// clock, so modeled device wait shrinks toward the host-bound floor.
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  using namespace memq;
  std::cout << "MEMQSim ablation A2 — device-count scaling\n"
               "(random(16), chunk 2^11, deliberately device-bound profile)\n\n";

  constexpr qubit_t kN = 16;
  const circuit::Circuit c = circuit::make_random_circuit(kN, 8, 5);

  TextTable table({"devices", "codec", "modeled total", "device busy (sum)",
                   "host wait", "speedup vs 1"});
  double t1 = 0.0;
  for (const char* codec : {"null", "szq"}) {
   for (const std::uint32_t devices : {1u, 2u, 4u, 8u}) {
    core::EngineConfig cfg;
    cfg.chunk_qubits = 11;
    cfg.codec.compressor = codec;
    cfg.codec.bound = 1e-6;
    cfg.device_count = devices;
    // Device-bound profile so the scaling is visible past the codec floor.
    cfg.device.gate_kernel_throughput = 1.5e8;
    cfg.device.h2d_bandwidth = 8e8;
    cfg.device.d2h_bandwidth = 8e8;
    auto engine = core::make_engine(core::EngineKind::kMemQSim, kN, cfg);
    engine->run(c);
    const auto& t = engine->telemetry();
    const double wait =
        std::max(0.0, t.modeled_total_seconds -
                          t.cpu_phases.total() / cfg.cpu_codec_workers);
    if (devices == 1) t1 = t.modeled_total_seconds;
    table.add_row({std::to_string(devices), codec,
                   human_seconds(t.modeled_total_seconds),
                   human_seconds(t.device_busy_seconds),
                   human_seconds(wait),
                   format_fixed(t1 / t.modeled_total_seconds, 2) + "x"});
   }
  }
  table.print(std::cout);
  std::cout << "\nWith the null codec the run is device-bound and sharding "
               "scales; with szq\nthe CPU codec is the floor and extra "
               "devices buy little — the same\nbottleneck the paper's step "
               "(5) attacks with idle-core co-execution.\n";
  return 0;
}
