// Blob-backend bench: RAM baseline vs. the disk-spilling file backend at
// budgets of {100, 50, 25, 12.5}% of the RAM arm's measured peak compressed
// footprint, over QFT and a random circuit. Reports spill traffic, peak
// resident compressed bytes, and modeled time, and verifies the tentpole
// claims:
//   (a) every file arm holds its peak resident compressed bytes <= budget
//       (the budget is a hard cap, not a hint);
//   (b) every arm's final amplitudes match the dense reference within the
//       codec tolerance — spilling moves bytes, never corrupts them;
//   (c) the file backend at 100% pays zero spill reads during the run's
//       steady state only if nothing exceeds the budget — below 100%,
//       spill traffic must actually appear (the backend is exercised).
//
// Writes BENCH_store_backend.json next to the binary for the driver.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "sv/simulator.hpp"

namespace {

using namespace memq;

constexpr qubit_t kQubits = 14;
constexpr qubit_t kChunkQubits = 8;  // 64 chunks of 4 KiB raw

struct Arm {
  std::string workload;
  std::string backend;
  double budget_percent = 0.0;  // of the RAM arm's peak compressed bytes
  std::uint64_t budget_bytes = 0;
  std::uint64_t peak_resident = 0;
  std::uint64_t spill_writes = 0;
  std::uint64_t spill_reads = 0;
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t spill_bytes_read = 0;
  double modeled_seconds = 0.0;
  double max_abs_err = 0.0;
  bool within_budget = true;
};

core::EngineConfig base_config() {
  core::EngineConfig cfg;
  cfg.chunk_qubits = kChunkQubits;
  cfg.codec.bound = 1e-6;
  cfg.elide_swaps = true;  // bench codec traffic, not the bit-reversal tail
  return cfg;
}

Arm run_arm(const circuit::Circuit& c, const sv::StateVector& reference,
            const std::string& workload, core::StoreBackend backend,
            double percent, std::uint64_t budget) {
  core::EngineConfig cfg = base_config();
  cfg.store_backend = backend;
  cfg.host_blob_budget_bytes = budget;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);

  Arm a;
  a.workload = workload;
  a.backend = backend == core::StoreBackend::kFile ? "file" : "ram";
  a.budget_percent = percent;
  a.budget_bytes = budget;
  a.max_abs_err = engine->to_dense().max_abs_diff(reference);

  const auto& t = engine->telemetry();
  a.peak_resident = t.peak_resident_blob_bytes;
  a.spill_writes = t.spill_writes;
  a.spill_reads = t.spill_reads;
  a.spill_bytes_written = t.spill_bytes_written;
  a.spill_bytes_read = t.spill_bytes_read;
  a.modeled_seconds = t.modeled_total_seconds;
  a.within_budget = backend != core::StoreBackend::kFile ||
                    a.peak_resident <= budget;
  return a;
}

}  // namespace

int main() {
  std::cout << "blob-backend bench — " << int(kQubits) << " qubits, chunk 2^"
            << int(kChunkQubits) << " ("
            << human_bytes(dim_of(kQubits) * kAmpBytes) << " raw state, "
            << (dim_of(kQubits) >> kChunkQubits) << " chunks)\n\n";

  // The codec tolerance bound: value-range-relative 1e-6 per chunk, loose
  // slack for accumulation across the circuit depth.
  constexpr double kTolerance = 1e-3;

  std::vector<Arm> arms;
  bool budgets_ok = true, accuracy_ok = true, spill_exercised = false;

  for (const std::string workload : {"qft", "random"}) {
    const circuit::Circuit c =
        circuit::make_workload(workload, kQubits, 2025);
    sv::Simulator oracle(kQubits);
    oracle.run(c);

    // RAM arm first: its peak compressed footprint anchors the budget sweep.
    const Arm ram = run_arm(c, oracle.state(), workload,
                            core::StoreBackend::kRam, 100.0, 0);
    arms.push_back(ram);
    const std::uint64_t peak = ram.peak_resident;

    TextTable table({"backend", "budget", "peak resident", "spill out",
                     "spill in", "modeled", "max |err|", "<= budget"});
    table.add_row({"ram", "-", human_bytes(ram.peak_resident), "-", "-",
                   human_seconds(ram.modeled_seconds),
                   format_sci(ram.max_abs_err, 2), "-"});

    for (const double percent : {100.0, 50.0, 25.0, 12.5}) {
      const auto budget = static_cast<std::uint64_t>(
          static_cast<double>(peak) * percent / 100.0);
      const Arm a = run_arm(c, oracle.state(), workload,
                            core::StoreBackend::kFile, percent, budget);
      arms.push_back(a);
      budgets_ok = budgets_ok && a.within_budget;
      accuracy_ok = accuracy_ok && a.max_abs_err < kTolerance;
      if (percent < 100.0 && a.spill_writes > 0) spill_exercised = true;
      table.add_row({"file", format_fixed(percent, 1) + "%",
                     human_bytes(a.peak_resident),
                     human_bytes(a.spill_bytes_written),
                     human_bytes(a.spill_bytes_read),
                     human_seconds(a.modeled_seconds),
                     format_sci(a.max_abs_err, 2),
                     a.within_budget ? "yes" : "NO"});
    }
    accuracy_ok = accuracy_ok && ram.max_abs_err < kTolerance;

    std::cout << workload << "(" << int(kQubits) << "), " << c.size()
              << " gates — RAM peak compressed " << human_bytes(peak)
              << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "file backend holds peak resident <= budget on every arm: "
            << (budgets_ok ? "yes" : "NO") << "\n"
            << "all arms match the dense reference within "
            << format_sci(kTolerance, 0) << ": " << (accuracy_ok ? "yes" : "NO")
            << "\n"
            << "sub-100% budgets actually spill: "
            << (spill_exercised ? "yes" : "NO") << "\n";

  std::ofstream json("BENCH_store_backend.json");
  json << "{\n  \"qubits\": " << int(kQubits)
       << ",\n  \"chunk_qubits\": " << int(kChunkQubits)
       << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    json << "    {\"workload\": \"" << a.workload << "\", \"backend\": \""
         << a.backend << "\", \"budget_percent\": " << a.budget_percent
         << ", \"budget_bytes\": " << a.budget_bytes
         << ", \"peak_resident_blob_bytes\": " << a.peak_resident
         << ", \"spill_writes\": " << a.spill_writes
         << ", \"spill_reads\": " << a.spill_reads
         << ", \"spill_bytes_written\": " << a.spill_bytes_written
         << ", \"spill_bytes_read\": " << a.spill_bytes_read
         << ", \"modeled_seconds\": " << a.modeled_seconds
         << ", \"max_abs_err\": " << a.max_abs_err
         << ", \"within_budget\": " << (a.within_budget ? "true" : "false")
         << "}" << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"budgets_ok\": " << (budgets_ok ? "true" : "false")
       << ",\n  \"accuracy_ok\": " << (accuracy_ok ? "true" : "false")
       << ",\n  \"spill_exercised\": " << (spill_exercised ? "true" : "false")
       << "\n}\n";
  return (budgets_ok && accuracy_ok && spill_exercised) ? 0 : 1;
}
