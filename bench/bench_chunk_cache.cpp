// Chunk-cache bench: budget sweep {0, 12.5, 25, 50, 100}% of the raw state
// over QFT / random / Grover. Reports real codec seconds (decompress +
// recompress), modeled end-to-end time, hit rate, chunk-store traffic and
// peak footprint, and verifies the tentpole claims:
//   (a) at a 25%-of-raw-state budget, QFT's total codec seconds drop by
//       >= 30% vs. budget 0 (hot early-stage chunks stop round-tripping);
//   (b) the peak in-flight footprint stays within budget + the structural
//       pipeline window;
//   (c) budget 0 runs the historical path (zero cache activity).
//
// Writes BENCH_chunk_cache.json next to the binary for the driver.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"

namespace {

using namespace memq;

constexpr qubit_t kQubits = 16;
constexpr qubit_t kChunkQubits = 10;  // 64 chunks of 16 KiB raw

struct Arm {
  std::string workload;
  double budget_percent = 0.0;
  std::uint64_t budget_bytes = 0;
  double codec_seconds = 0.0;
  double modeled_seconds = 0.0;
  double stall_seconds = 0.0;
  double device_idle_seconds = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t peak_inflight = 0;
  std::uint64_t peak_host = 0;
  std::uint64_t peak_cache = 0;

  double hit_rate() const {
    return hits + misses == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(hits + misses);
  }
};

Arm run_arm(const circuit::Circuit& c, const std::string& workload,
            double percent, std::uint64_t budget) {
  core::EngineConfig cfg;
  cfg.chunk_qubits = kChunkQubits;
  cfg.codec.bound = 1e-6;
  cfg.cache_budget_bytes = budget;
  // All arms (including budget 0) elide SWAPs: the bit-reversal tail is
  // pure data movement, and benching the cache against a pipeline that
  // round-trips it through the codec would flatter every budget equally.
  cfg.elide_swaps = true;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);
  (void)engine->norm();  // the post-run sweep every experiment pays

  const auto& t = engine->telemetry();
  Arm a;
  a.workload = workload;
  a.budget_percent = percent;
  a.budget_bytes = budget;
  a.codec_seconds =
      t.cpu_phases.get("decompress") + t.cpu_phases.get("recompress");
  a.modeled_seconds = t.modeled_total_seconds;
  a.stall_seconds = t.pipeline_stall_seconds;
  if (const core::StageReport* rep = engine->stage_report())
    a.device_idle_seconds = rep->total.device_idle_seconds;
  a.hits = t.cache_hits;
  a.misses = t.cache_misses;
  a.loads = t.chunk_loads;
  a.stores = t.chunk_stores;
  a.peak_inflight = t.peak_inflight_bytes;
  a.peak_host = t.peak_host_state_bytes;
  a.peak_cache = t.peak_cache_resident_bytes;
  return a;
}

}  // namespace

int main() {
  const std::uint64_t raw_state = dim_of(kQubits) * kAmpBytes;
  const std::uint64_t chunk_raw = (index_t{1} << kChunkQubits) * kAmpBytes;
  core::EngineConfig defaults;
  const std::uint64_t depth =
      defaults.device_count * defaults.device_slots + 1;
  // Serial mode: 1 codec thread, so the structural window is depth + 1
  // two-chunk work items on top of whatever the cache holds.
  const std::uint64_t window = (depth + 1) * 2 * chunk_raw;

  std::cout << "chunk-cache bench — " << int(kQubits) << " qubits, chunk 2^"
            << int(kChunkQubits) << " (" << human_bytes(raw_state)
            << " raw state, " << (dim_of(kQubits) >> kChunkQubits)
            << " chunks)\n\n";

  const std::vector<double> budgets_percent = {0.0, 12.5, 25.0, 50.0, 100.0};
  std::vector<Arm> arms;
  bool footprint_ok = true, budget0_clean = true;
  double qft_base = 0.0, qft_quarter = 0.0;

  for (const std::string workload : {"qft", "random", "grover"}) {
    const circuit::Circuit c =
        circuit::make_workload(workload, kQubits, 2024);
    TextTable table({"budget", "codec cpu", "modeled", "hit rate",
                     "loads+stores", "peak in-flight", "peak host"});
    for (const double percent : budgets_percent) {
      const auto budget = static_cast<std::uint64_t>(
          static_cast<double>(raw_state) * percent / 100.0);
      const Arm a = run_arm(c, workload, percent, budget);
      arms.push_back(a);

      if (budget == 0 && (a.hits | a.misses | a.peak_cache) != 0)
        budget0_clean = false;
      if (budget > 0 && a.peak_inflight > budget + window)
        footprint_ok = false;
      if (workload == "qft" && percent == 0.0) qft_base = a.codec_seconds;
      if (workload == "qft" && percent == 25.0)
        qft_quarter = a.codec_seconds;

      table.add_row(
          {percent == 0.0 ? "off" : format_fixed(percent, 1) + "%",
           human_seconds(a.codec_seconds), human_seconds(a.modeled_seconds),
           budget == 0 ? "-" : format_fixed(100.0 * a.hit_rate(), 1) + "%",
           std::to_string(a.loads + a.stores), human_bytes(a.peak_inflight),
           human_bytes(a.peak_host)});
    }
    std::cout << workload << "(" << int(kQubits) << "), " << c.size()
              << " gates:\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  const double qft_reduction =
      qft_base > 0.0 ? 1.0 - qft_quarter / qft_base : 0.0;
  const bool reduction_ok = qft_reduction >= 0.30;
  std::cout << "qft codec seconds at 25% budget: "
            << human_seconds(qft_quarter) << " vs " << human_seconds(qft_base)
            << " off (" << format_fixed(100.0 * qft_reduction, 1)
            << "% reduction, need >= 30%): " << (reduction_ok ? "yes" : "NO")
            << "\n"
            << "peak in-flight within budget + pipeline window: "
            << (footprint_ok ? "yes" : "NO") << "\n"
            << "budget 0 keeps the historical path (no cache activity): "
            << (budget0_clean ? "yes" : "NO") << "\n";

  std::ofstream json("BENCH_chunk_cache.json");
  json << "{\n  \"qubits\": " << int(kQubits)
       << ",\n  \"chunk_qubits\": " << int(kChunkQubits)
       << ",\n  \"raw_state_bytes\": " << raw_state << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    json << "    {\"workload\": \"" << a.workload
         << "\", \"budget_percent\": " << a.budget_percent
         << ", \"budget_bytes\": " << a.budget_bytes
         << ", \"codec_seconds\": " << a.codec_seconds
         << ", \"modeled_seconds\": " << a.modeled_seconds
         << ", \"pipeline_stall_seconds\": " << a.stall_seconds
         << ", \"device_idle_seconds\": " << a.device_idle_seconds
         << ", \"hit_rate\": " << a.hit_rate()
         << ", \"chunk_loads\": " << a.loads
         << ", \"chunk_stores\": " << a.stores
         << ", \"peak_inflight_bytes\": " << a.peak_inflight
         << ", \"peak_host_state_bytes\": " << a.peak_host
         << ", \"peak_cache_resident_bytes\": " << a.peak_cache << "}"
         << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"qft_codec_reduction_at_25pct\": " << qft_reduction
       << ",\n  \"qft_reduction_ok\": " << (reduction_ok ? "true" : "false")
       << ",\n  \"footprint_within_bound\": "
       << (footprint_ok ? "true" : "false")
       << ",\n  \"budget0_historical\": "
       << (budget0_clean ? "true" : "false") << "\n}\n";
  return (reduction_ok && footprint_ok && budget0_clean) ? 0 : 1;
}
