// Experiment E2 — the paper's headline claim:
//
//   "By employing the state-of-the-art data compressor, we extrapolate that
//    on average 5 more qubits to simulate can be achieved without slowing
//    down the original quantum circuit simulation."
//
// For each workload and error bound we run MEMQSim, record the peak
// compressed state footprint, and report extra_qubits = log2(dense bytes /
// peak compressed bytes): how many more qubits the same host memory holds.
// The slowdown column compares the modeled end-to-end time against the
// uncompressed-codec ("null") configuration of the same engine.
#include <cmath>
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace memq;

struct Result {
  double ratio;
  double extra_qubits;
  double modeled_seconds;
};

Result run_once(const std::string& workload, qubit_t n, double bound,
                const std::string& compressor) {
  const circuit::Circuit c = circuit::make_workload(workload, n, 42);
  core::EngineConfig cfg;
  cfg.chunk_qubits = n > 8 ? n - 8 : 1;  // 256 chunks: working buffers small
  cfg.codec.compressor = compressor;
  cfg.codec.bound = bound;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);
  const auto& t = engine->telemetry();
  Result r;
  r.ratio = t.final_compression_ratio;
  r.extra_qubits =
      std::log2(static_cast<double>(state_bytes(c.n_qubits())) /
                static_cast<double>(t.peak_host_state_bytes));
  r.modeled_seconds = t.modeled_total_seconds;
  return r;
}

}  // namespace

int main() {
  std::cout << "MEMQSim experiment E2 — qubit extension under a fixed memory "
               "budget\n(paper claim: ~5 extra qubits on average without "
               "slowdown)\n\n";

  constexpr qubit_t kN = 18;
  const char* workloads[] = {"ghz", "qft", "grover", "bv", "qaoa", "w", "qpe",
                             "random"};

  TextTable table({"workload", "bound", "final ratio", "extra qubits",
                   "slowdown vs null"});
  RunningStats extra_at_1e4;
  for (const char* w : workloads) {
    const Result base = run_once(w, kN, 1e-4, "null");
    for (const double bound : {1e-2, 1e-4, 1e-6}) {
      const Result r = run_once(w, kN, bound, "szq");
      table.add_row({w, format_sci(bound, 0), format_fixed(r.ratio, 1) + "x",
                     format_fixed(r.extra_qubits, 1),
                     format_fixed(r.modeled_seconds / base.modeled_seconds, 2) +
                         "x"});
      if (bound == 1e-4) extra_at_1e4.add(r.extra_qubits);
    }
  }
  table.print(std::cout);

  std::cout << "\nmean extra qubits at bound 1e-4 across workloads: "
            << format_fixed(extra_at_1e4.mean(), 1) << " (paper: ~5)\n";
  std::cout << "min/max: " << format_fixed(extra_at_1e4.min(), 1) << " / "
            << format_fixed(extra_at_1e4.max(), 1) << "\n";
  std::cout << "\nStructured states (GHZ/BV/W/Grover) compress far beyond 5 "
               "qubits;\ndense unstructured states (random RQC) are the hard "
               "floor — the paper's\naverage sits between those regimes.\n";
  return 0;
}
