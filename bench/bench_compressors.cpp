// Micro-benchmark M1: compressor throughput and ratio on state-vector-like
// data — the CPU-side costs that the pipeline must overlap (paper complaint
// (1) about prior work: codec time dominating). google-benchmark binary.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/prng.hpp"
#include "compress/compressor.hpp"

namespace {

using namespace memq;
using namespace memq::compress;

enum class Data { kSmooth, kHaar, kSparse };

std::vector<double> make_plane(Data kind, std::size_t n) {
  Prng rng(7);
  std::vector<double> v(n);
  switch (kind) {
    case Data::kSmooth:
      for (std::size_t i = 0; i < n; ++i)
        v[i] = 1e-3 * std::sin(2e-4 * static_cast<double>(i));
      break;
    case Data::kHaar: {
      // Normalized random state plane: N(0, 1/sqrt(2*2^n)).
      const double sigma = 1.0 / std::sqrt(2.0 * static_cast<double>(n));
      for (auto& x : v) x = rng.normal() * sigma;
      break;
    }
    case Data::kSparse:
      for (auto& x : v) x = rng.uniform() < 0.02 ? rng.normal() * 0.1 : 0.0;
      break;
  }
  return v;
}

const char* data_name(Data d) {
  switch (d) {
    case Data::kSmooth: return "smooth";
    case Data::kHaar: return "haar";
    case Data::kSparse: return "sparse";
  }
  return "?";
}

void BM_Compress(benchmark::State& state, const std::string& codec_name,
                 Data data_kind) {
  const auto codec = make_compressor(codec_name);
  const auto data = make_plane(data_kind, 1 << 16);
  ByteBuffer out;
  for (auto _ : state) {
    out.clear();
    codec->compress(data, 1e-4 * 1e-3, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size() * 8));
  state.counters["ratio"] =
      static_cast<double>(data.size() * 8) / static_cast<double>(out.size());
}

void BM_Decompress(benchmark::State& state, const std::string& codec_name,
                   Data data_kind) {
  const auto codec = make_compressor(codec_name);
  const auto data = make_plane(data_kind, 1 << 16);
  ByteBuffer compressed;
  codec->compress(data, 1e-4 * 1e-3, compressed);
  std::vector<double> back(data.size());
  for (auto _ : state) {
    codec->decompress(compressed, back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size() * 8));
}

void register_all() {
  for (const auto& name : compressor_names()) {
    for (const Data d : {Data::kSmooth, Data::kHaar, Data::kSparse}) {
      benchmark::RegisterBenchmark(
          ("BM_Compress/" + name + "/" + data_name(d)).c_str(),
          [name, d](benchmark::State& st) { BM_Compress(st, name, d); });
      benchmark::RegisterBenchmark(
          ("BM_Decompress/" + name + "/" + data_name(d)).c_str(),
          [name, d](benchmark::State& st) { BM_Decompress(st, name, d); });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
