// Experiment E4 — design challenge 2: compression granularity.
//
//   "a coarser granularity could precipitate a significant memory footprint
//    issue, while excessively fine granularity could lead to a lower
//    compression ratio" (and more codec invocations).
//
// Sweeps the chunk size for fixed workloads and reports compression ratio,
// peak working footprint, codec pass counts and modeled time.
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  using namespace memq;
  std::cout << "MEMQSim experiment E4 — chunk-granularity sweep\n\n";

  constexpr qubit_t kN = 16;
  for (const char* workload : {"qft", "ghz", "random"}) {
    const circuit::Circuit c = circuit::make_workload(workload, kN, 9);
    std::cout << "workload: " << workload << "(" << kN << "), " << c.size()
              << " gates\n";
    TextTable table({"chunk amps", "ratio", "peak state", "loads", "stores",
                     "stages L/P/X", "modeled time"});
    for (qubit_t chunk_q = 6; chunk_q <= 14; chunk_q += 2) {
      core::EngineConfig cfg;
      cfg.chunk_qubits = chunk_q;
      cfg.codec.bound = 1e-5;
      auto engine =
          core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
      engine->run(c);
      const auto& t = engine->telemetry();
      table.add_row(
          {"2^" + std::to_string(chunk_q),
           format_fixed(t.final_compression_ratio, 1) + "x",
           human_bytes(t.peak_host_state_bytes),
           std::to_string(t.chunk_loads), std::to_string(t.chunk_stores),
           std::to_string(t.stages_local) + "/" +
               std::to_string(t.stages_pair) + "/" +
               std::to_string(t.stages_permute),
           human_seconds(t.modeled_total_seconds)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: small chunks -> worse ratio (per-chunk header "
               "/ model\ncosts) and more pair stages; large chunks -> better "
               "ratio but bigger\nworking buffers (the footprint spike the "
               "paper warns about).\n";
  return 0;
}
