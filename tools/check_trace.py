#!/usr/bin/env python3
"""Validate a memq Chrome trace-event file (as written by --trace).

Checks, in order:
  1. the file parses as JSON and has a traceEvents array;
  2. every B has a matching E on its (pid, tid) track, and no track ends
     with open spans;
  3. modeled-device lanes (pid 1) carry only complete ('X') events with
     monotonically nondecreasing timestamps per lane;
  4. spans cover at least --min-subsystems distinct categories (default 4),
     so a hollowed-out instrumentation path fails CI instead of shipping.

Exit code 0 on success, 1 with a diagnostic on any violation.
Usage: check_trace.py TRACE.json [--min-subsystems N]
"""

import argparse
import collections
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace JSON file written by memq --trace")
    ap.add_argument("--min-subsystems", type=int, default=4)
    args = ap.parse_args()

    with open(args.trace, "r", encoding="utf-8") as f:
        root = json.load(f)
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"FAIL: {args.trace}: no traceEvents array", file=sys.stderr)
        return 1

    depth = collections.Counter()
    lane_last = {}
    cats = set()
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue
        track = (e["pid"], e["tid"])
        if ph != "E":
            cats.add(e["cat"])
        if ph == "B":
            depth[track] += 1
        elif ph == "E":
            depth[track] -= 1
            if depth[track] < 0:
                print(f"FAIL: event {i}: E without B on {track}",
                      file=sys.stderr)
                return 1
        if e["pid"] == 1:
            if ph != "X":
                print(f"FAIL: event {i}: pid 1 lane has ph={ph!r}, "
                      "expected complete ('X') events only", file=sys.stderr)
                return 1
            if e["ts"] < lane_last.get(e["tid"], float("-inf")):
                print(f"FAIL: event {i}: lane {e['tid']} timestamp went "
                      "backwards", file=sys.stderr)
                return 1
            lane_last[e["tid"]] = e["ts"]

    open_tracks = {t: d for t, d in depth.items() if d != 0}
    if open_tracks:
        print(f"FAIL: unbalanced B/E on tracks {open_tracks}",
              file=sys.stderr)
        return 1
    if len(cats) < args.min_subsystems:
        print(f"FAIL: only {len(cats)} subsystem categories ({sorted(cats)}),"
              f" need >= {args.min_subsystems}", file=sys.stderr)
        return 1

    n = sum(1 for e in events if e.get("ph") != "M")
    print(f"OK: {args.trace}: {n} events, {len(depth)} host tracks, "
          f"{len(lane_last)} device lanes, subsystems {sorted(cats)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
