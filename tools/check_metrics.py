#!/usr/bin/env python3
"""Validate a memq metrics time-series (as written by --metrics-out).

The file is JSONL: one sampler tick per line, each an object with
  t_ms      milliseconds since the sampler started (monotone nondecreasing)
  wall_ms   wall-clock epoch milliseconds (monotone nondecreasing)
  counters  {name: value} — every counter must never decrease across ticks
  gauges    {name: {value, peak}} — peak must never decrease and must
            always be >= 0 (values may move both ways; that is the point)
  hists     {name: {count, sum, max, p50, p95, p99, buckets: [[idx, n]..]}}
            with count/sum monotone, sparse bucket counts summing to count,
            and p50 <= p95 <= p99 <= max whenever count > 0.

Exit code 0 on success, 1 with a diagnostic on any violation.
Usage: check_metrics.py METRICS.jsonl [--min-ticks N]
"""

import argparse
import json
import sys


def fail(msg: str) -> int:
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def check_hist(path: str, line_no: int, name: str, h: dict) -> str | None:
    count = h.get("count", 0)
    buckets = h.get("buckets", [])
    bucket_sum = sum(n for _, n in buckets)
    if bucket_sum != count:
        return (f"{path}:{line_no}: hist {name}: bucket sum {bucket_sum}"
                f" != count {count}")
    if any(n <= 0 for _, n in buckets):
        return f"{path}:{line_no}: hist {name}: empty bucket emitted"
    idxs = [i for i, _ in buckets]
    if idxs != sorted(idxs) or len(set(idxs)) != len(idxs):
        return f"{path}:{line_no}: hist {name}: bucket indices not ascending"
    if count > 0:
        p50, p95, p99 = h.get("p50", 0), h.get("p95", 0), h.get("p99", 0)
        hmax = h.get("max", 0)
        if not (p50 <= p95 <= p99 <= hmax):
            return (f"{path}:{line_no}: hist {name}: percentiles not ordered:"
                    f" p50={p50} p95={p95} p99={p99} max={hmax}")
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("jsonl", help="metrics JSONL written by --metrics-out")
    ap.add_argument("--min-ticks", type=int, default=1,
                    help="require at least N sampler ticks (default 1)")
    args = ap.parse_args()

    ticks = []
    with open(args.jsonl, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ticks.append((line_no, json.loads(line)))
            except json.JSONDecodeError as e:
                return fail(f"{args.jsonl}:{line_no}: bad JSON: {e}")

    if len(ticks) < args.min_ticks:
        return fail(f"{args.jsonl}: {len(ticks)} ticks, "
                    f"need >= {args.min_ticks}")

    prev = None
    prev_no = 0
    names = set()
    for line_no, t in ticks:
        for key in ("t_ms", "wall_ms", "counters", "gauges", "hists"):
            if key not in t:
                return fail(f"{args.jsonl}:{line_no}: missing '{key}'")
        names.update(t["counters"])
        for name, h in t["hists"].items():
            msg = check_hist(args.jsonl, line_no, name, h)
            if msg is not None:
                return fail(msg)
        if prev is not None:
            for key in ("t_ms", "wall_ms"):
                if t[key] < prev[key]:
                    return fail(f"{args.jsonl}:{line_no}: {key} went back in "
                                f"time ({prev[key]} -> {t[key]})")
            for name, value in prev["counters"].items():
                if t["counters"].get(name, 0) < value:
                    return fail(
                        f"{args.jsonl}:{line_no}: counter {name} decreased "
                        f"({value} at line {prev_no} -> "
                        f"{t['counters'].get(name, 0)})")
            for name, g in prev["gauges"].items():
                now = t["gauges"].get(name)
                if now is None:
                    return fail(f"{args.jsonl}:{line_no}: gauge {name} "
                                f"vanished")
                if now["peak"] < g["peak"]:
                    return fail(f"{args.jsonl}:{line_no}: gauge {name} peak "
                                f"decreased ({g['peak']} -> {now['peak']})")
            for name, h in prev["hists"].items():
                now = t["hists"].get(name)
                if now is None:
                    return fail(f"{args.jsonl}:{line_no}: hist {name} "
                                f"vanished")
                for key in ("count", "sum", "max"):
                    if now[key] < h[key]:
                        return fail(
                            f"{args.jsonl}:{line_no}: hist {name} {key} "
                            f"decreased ({h[key]} -> {now[key]})")
        prev = t
        prev_no = line_no

    print(f"OK: {args.jsonl}: {len(ticks)} ticks, {len(names)} counters, "
          f"{len(prev['gauges'])} gauges, {len(prev['hists'])} histograms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
