// memq — command-line front end to the MEMQSim stack.
//
//   memq info
//   memq workload <name> --qubits N [--seed S] [--out file.qasm] [--stats]
//   memq run <file.qasm> [--engine dense|wu|memqsim] [--shots N]
//            [--chunk-qubits C] [--bound B] [--compressor NAME]
//            [--devices D] [--codec-threads T] [--cache-budget BYTES]
//            [--layout] [--fuse] [--elide-swaps]
//            [--marginal q0,q1,...] [--expect PAULISTRING]
//            [--checkpoint out.ckpt] [--restore in.ckpt]
//   memq compress <file.qasm> [--chunk-qubits C] [--bound B]
//            (final-state compression ratio for every registered codec)
//   memq transfer --qubits N
//            (Table-1-style sync/async/staged transfer comparison)
#include <cctype>
#include <chrono>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/noise.hpp"
#include "circuit/qasm.hpp"
#include "circuit/transpile.hpp"
#include "circuit/workloads.hpp"
#include "common/cpu_features.hpp"
#include "common/faultpoint.hpp"
#include "common/format.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "compress/compressor.hpp"
#include "core/batch_scheduler.hpp"
#include "core/engine.hpp"
#include "core/memq_engine.hpp"
#include "core/partitioner.hpp"
#include "core/telemetry_json.hpp"
#include "device/copy_engine.hpp"

namespace {

using namespace memq;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage:\n"
      "  memq info\n"
      "  memq workload <name> --qubits N [--seed S] [--out f.qasm] [--stats]\n"
      "  memq run <file.qasm> [--engine dense|wu|memqsim] [--shots N]\n"
      "           [--chunk-qubits C] [--bound B] [--compressor NAME]\n"
      "           [--devices D] [--codec-threads T]\n"
      "           [--cache-budget BYTES[K|M|G]] [--layout] [--fuse]\n"
      "           [--elide-swaps] [--plan-opt on|off]\n"
      "           [--store-backend ram|file] [--blob-budget BYTES[K|M|G]]\n"
      "           [--dedup on|off] [--codec-dict off|train] [--no-simd]\n"
      "           [--marginal q0,q1,..] [--expect PAULIS]\n"
      "           [--checkpoint f] [--restore f] [--telemetry-json f.json]\n"
      "           [--trace f.json] [--stage-report] [--faults SPEC]\n"
      "           [--metrics-interval MS] [--metrics-out f.jsonl]\n"
      "           [--metrics-prom f.txt] [--progress]\n"
      "           [--batch K] [--batch-mode circuits|shots|sweep|trajectories]\n"
      "           [--noise-1q P] [--noise-2q P] [--bit-flip P]\n"
      "           [--phase-flip P]\n"
      "  (--faults: deterministic fault injection, e.g.\n"
      "   'blob.read.eio@3,codec.decode.corrupt%5,seed=7' — see DESIGN.md)\n"
      "  (--metrics-out: background sampler JSONL time-series every\n"
      "   --metrics-interval ms; --metrics-prom: Prometheus text snapshot;\n"
      "   --progress: live actual-vs-plan codec-pass line on stderr)\n"
      "  (--batch: K member circuits per run, codec passes shared across\n"
      "   members — mode 'circuits' takes K .qasm files, 'shots' samples K\n"
      "   members of one circuit, 'sweep' scales rotation params, \n"
      "   'trajectories' inserts seeded Pauli noise per --noise-* flags)\n"
      "  memq compress <file.qasm> [--chunk-qubits C] [--bound B]\n"
      "  memq transfer --qubits N\n";
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;
  std::vector<std::string> flags;

  bool has_flag(const std::string& name) const {
    for (const auto& f : flags)
      if (f == name) return true;
    return false;
  }
  std::string option(const std::string& name, const std::string& dflt) const {
    for (const auto& [k, v] : options)
      if (k == name) return v;
    return dflt;
  }
};

/// Checked numeric parsing: the whole token must be a number in range, or
/// the flag's name is reported with a usage error — no more std::atoi
/// silently turning "--codec-threads garbage" into 0.
std::uint64_t parse_u64(const std::string& flag, const std::string& text,
                        std::uint64_t max_value =
                            std::numeric_limits<std::uint64_t>::max()) {
  if (text.empty() || text[0] == '-' || !std::isdigit(
          static_cast<unsigned char>(text[0])))
    usage(("--" + flag + " expects a non-negative integer, got '" + text +
           "'").c_str());
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0')
    usage(("--" + flag + " expects a non-negative integer, got '" + text +
           "'").c_str());
  if (v > max_value)
    usage(("--" + flag + " value " + text + " exceeds the maximum " +
           std::to_string(max_value)).c_str());
  return static_cast<std::uint64_t>(v);
}

double parse_double(const std::string& flag, const std::string& text) {
  if (text.empty())
    usage(("--" + flag + " expects a number, got ''").c_str());
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end == text.c_str() || *end != '\0')
    usage(("--" + flag + " expects a number, got '" + text + "'").c_str());
  return v;
}

/// Byte sizes with optional binary suffix: "1048576", "64K", "16M", "1G".
std::uint64_t parse_bytes(const std::string& flag, const std::string& text) {
  std::string digits = text;
  std::uint64_t scale = 1;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'k': case 'K': scale = std::uint64_t{1} << 10; break;
      case 'm': case 'M': scale = std::uint64_t{1} << 20; break;
      case 'g': case 'G': scale = std::uint64_t{1} << 30; break;
      default: break;
    }
    if (scale != 1) digits.pop_back();
  }
  const std::uint64_t v = parse_u64(flag, digits);
  if (scale != 1 && v > std::numeric_limits<std::uint64_t>::max() / scale)
    usage(("--" + flag + " value " + text + " overflows").c_str());
  return v * scale;
}

Args parse_args(int argc, char** argv, int start,
                const std::vector<std::string>& flag_names) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string name = a.substr(2);
      bool is_flag = false;
      for (const auto& f : flag_names)
        if (f == name) is_flag = true;
      if (is_flag) {
        args.flags.push_back(name);
      } else {
        if (i + 1 >= argc) usage(("missing value for --" + name).c_str());
        args.options.emplace_back(name, argv[++i]);
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

core::EngineConfig config_from(const Args& args, qubit_t n) {
  core::EngineConfig cfg;
  cfg.chunk_qubits = static_cast<qubit_t>(parse_u64(
      "chunk-qubits",
      args.option("chunk-qubits", std::to_string(n > 6 ? n - 6 : 1)), 62));
  cfg.chunk_qubits = std::min<qubit_t>(cfg.chunk_qubits, n);
  cfg.codec.bound = parse_double("bound", args.option("bound", "1e-6"));
  cfg.codec.compressor = args.option("compressor", "szq");
  cfg.device_count = static_cast<std::uint32_t>(
      parse_u64("devices", args.option("devices", "1"), 1024));
  cfg.codec_threads = static_cast<std::uint32_t>(parse_u64(
      "codec-threads", args.option("codec-threads", "1"), 1 << 16));
  cfg.cache_budget_bytes =
      parse_bytes("cache-budget", args.option("cache-budget", "0"));
  const std::string backend = args.option("store-backend", "ram");
  if (backend == "ram") {
    cfg.store_backend = core::StoreBackend::kRam;
  } else if (backend == "file") {
    cfg.store_backend = core::StoreBackend::kFile;
  } else {
    usage(("--store-backend expects 'ram' or 'file', got '" + backend +
           "'").c_str());
  }
  cfg.host_blob_budget_bytes =
      parse_bytes("blob-budget", args.option("blob-budget", "0"));
  const std::string dedup = args.option("dedup", "on");
  if (dedup == "on") {
    cfg.dedup = true;
  } else if (dedup == "off") {
    cfg.dedup = false;
  } else {
    usage(("--dedup expects 'on' or 'off', got '" + dedup + "'").c_str());
  }
  const std::string dict = args.option("codec-dict", "off");
  if (dict == "train") {
    cfg.codec.dict_mode = compress::DictMode::kTrain;
  } else if (dict != "off") {
    usage(("--codec-dict expects 'off' or 'train', got '" + dict +
           "'").c_str());
  }
  // Process-wide: pins every codec worker to the scalar kernels (the
  // bit-identical reference paths for the SIMD dispatch).
  if (args.has_flag("no-simd")) simd::force(simd::IsaLevel::kScalar);
  cfg.optimize_layout = args.has_flag("layout");
  cfg.fuse_single_qubit_runs = args.has_flag("fuse");
  cfg.elide_swaps = args.has_flag("elide-swaps");
  const std::string plan_opt = args.option("plan-opt", "on");
  if (plan_opt == "on") {
    cfg.plan_opt = true;
  } else if (plan_opt == "off") {
    cfg.plan_opt = false;
  } else {
    usage(("--plan-opt expects 'on' or 'off', got '" + plan_opt +
           "'").c_str());
  }
  cfg.batch_size = static_cast<std::uint32_t>(
      parse_u64("batch", args.option("batch", "1"), 4096));
  if (cfg.batch_size == 0) usage("--batch expects K >= 1");
  const std::string bmode = args.option("batch-mode", "shots");
  if (bmode == "circuits") {
    cfg.batch_mode = core::BatchMode::kCircuits;
  } else if (bmode == "shots") {
    cfg.batch_mode = core::BatchMode::kShots;
  } else if (bmode == "sweep") {
    cfg.batch_mode = core::BatchMode::kSweep;
  } else if (bmode == "trajectories") {
    cfg.batch_mode = core::BatchMode::kTrajectories;
  } else {
    usage(("--batch-mode expects circuits|shots|sweep|trajectories, got '" +
           bmode + "'").c_str());
  }
  return cfg;
}

circuit::NoiseModel noise_from(const Args& args, core::BatchMode mode) {
  circuit::NoiseModel noise;
  noise.depolarizing_1q =
      parse_double("noise-1q", args.option("noise-1q", "0"));
  noise.depolarizing_2q =
      parse_double("noise-2q", args.option("noise-2q", "0"));
  noise.bit_flip = parse_double("bit-flip", args.option("bit-flip", "0"));
  noise.phase_flip =
      parse_double("phase-flip", args.option("phase-flip", "0"));
  // Trajectory mode without explicit noise still needs a channel, or every
  // trajectory is the base circuit and the mode is a slow 'shots'.
  if (mode == core::BatchMode::kTrajectories && !noise.enabled())
    noise.depolarizing_1q = 0.01;
  return noise;
}

int cmd_info() {
  std::cout << "MEMQSim " << "0.1.0" << "\n\n";
  std::cout << "engines:     dense, wu, memqsim\n";
  std::cout << "compressors:";
  for (const auto& name : compress::compressor_names())
    std::cout << " " << name;
  std::cout << "\nworkloads:  ";
  for (const auto& name : circuit::workload_names())
    std::cout << " " << name;
  std::cout << "\n\ndefault engine config:\n";
  core::EngineConfig cfg;
  std::cout << "  chunk_qubits        " << cfg.chunk_qubits << "\n";
  std::cout << "  codec               " << cfg.codec.compressor << " @ "
            << format_sci(cfg.codec.bound, 0) << " (value-range relative)\n";
  std::cout << "  transfer strategy   "
            << device::strategy_name(cfg.strategy) << "\n";
  std::cout << "  device slots        " << cfg.device_slots << "\n";
  std::cout << "  device memory       " << human_bytes(cfg.device.memory_bytes)
            << "\n";
  std::cout << "  cpu codec workers   " << cfg.cpu_codec_workers << "\n";
  std::cout << "  codec threads       " << cfg.codec_threads
            << " (0 = hardware concurrency)\n";
  return 0;
}

int cmd_workload(int argc, char** argv) {
  if (argc < 3) usage("workload needs a name");
  const Args args = parse_args(argc, argv, 3, {"stats"});
  const std::string name = argv[2];
  const auto n = static_cast<qubit_t>(
      parse_u64("qubits", args.option("qubits", "12"), 62));
  const auto seed = parse_u64("seed", args.option("seed", "42"));

  circuit::Circuit c = circuit::make_workload(name, n, seed);
  std::cout << "workload '" << name << "': " << c.n_qubits() << " qubits, "
            << c.size() << " gates, depth " << c.stats().depth << "\n";
  if (args.has_flag("stats")) {
    const auto st = c.stats();
    TextTable table({"gate", "count"});
    for (const auto& [g, cnt] : st.by_name)
      table.add_row({g, std::to_string(cnt)});
    table.print(std::cout);
    const auto plan = core::partition(c, c.n_qubits() > 6 ? c.n_qubits() - 6
                                                          : 1);
    std::cout << "stages at chunk 2^" << (c.n_qubits() - 6) << ": local "
              << plan.stats.local_stages << ", pair " << plan.stats.pair_stages
              << ", permute " << plan.stats.permute_stages
              << "; gates/codec-pass "
              << format_fixed(plan.stats.gates_per_codec_pass(), 2) << "\n";
  }
  const std::string out = args.option("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::cerr << "cannot write " << out << "\n";
      return 1;
    }
    f << circuit::to_qasm(c);
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

/// One row per stage: counter deltas + stall / modeled-idle accounting.
void print_stage_report(const core::StageReport& rep) {
  TextTable table({"stage", "kind", "gates", "loads", "stores", "hits",
                   "miss", "evict", "wb", "h2d", "d2h", "kern", "dec MB/s",
                   "enc MB/s", "stall", "modeled", "idle"});
  const auto rate = [](std::uint64_t bytes, double seconds) {
    if (seconds <= 0.0 || bytes == 0) return std::string("-");
    return format_fixed(static_cast<double>(bytes) / seconds / 1e6, 0);
  };
  const auto row_cells = [&](const core::StageRow& r, const std::string& id) {
    return std::vector<std::string>{
        id, r.kind, std::to_string(r.gates), std::to_string(r.chunk_loads),
        std::to_string(r.chunk_stores), std::to_string(r.cache_hits),
        std::to_string(r.cache_misses), std::to_string(r.cache_evictions),
        std::to_string(r.cache_writebacks), human_bytes(r.h2d_bytes),
        human_bytes(r.d2h_bytes), std::to_string(r.kernel_launches),
        rate(r.codec_decode_bytes, r.decompress_seconds),
        rate(r.codec_encode_bytes, r.recompress_seconds),
        human_seconds(r.stall_seconds), human_seconds(r.modeled_seconds),
        human_seconds(r.device_idle_seconds)};
  };
  for (const core::StageRow& r : rep.rows)
    table.add_row(row_cells(r, std::to_string(r.index)));
  table.add_row(row_cells(rep.total, "total"));
  table.print(std::cout);
  const core::PlanCost& p = rep.planned;
  std::cout << "plan (" << (rep.plan_optimized ? "optimized" : "legacy")
            << (p.exact ? "" : ", approx") << "): predicted "
            << p.chunk_loads << " loads / " << p.chunk_stores
            << " stores, " << p.cache_hits << " hits / " << p.cache_misses
            << " misses, " << p.codec_encodes << " encodes, "
            << human_bytes(p.h2d_bytes) << " h2d; actual "
            << rep.total.chunk_loads << " loads / " << rep.total.chunk_stores
            << " stores, " << rep.total.cache_hits << " hits / "
            << rep.total.cache_misses << " misses; stages "
            << rep.plan_local_stages << " local / " << rep.plan_pair_stages
            << " pair / " << rep.plan_permute_stages << " permute / "
            << rep.plan_measure_stages << " measure; "
            << format_fixed(rep.plan_gates_per_codec_pass, 2)
            << " gates per codec pass\n";
  if (!rep.latency.empty()) {
    const auto ns = [](std::uint64_t v) {
      return human_seconds(static_cast<double>(v) / 1e9);
    };
    TextTable lat({"latency", "count", "p50", "p95", "p99", "max", "mean"});
    for (const auto& [name, l] : rep.latency)
      lat.add_row({name, std::to_string(l.count), ns(l.p50_ns), ns(l.p95_ns),
                   ns(l.p99_ns), ns(l.max_ns), ns(static_cast<std::uint64_t>(
                                                   l.mean_ns))});
    std::cout << "\nhot-path latency (bucketed percentile upper bounds):\n";
    lat.print(std::cout);
  }
}

/// Top sample counts of one (member) register, bit-string formatted.
void print_counts(const std::map<index_t, std::uint64_t>& counts, qubit_t n,
                  std::size_t limit, const char* indent) {
  std::size_t shown = 0;
  for (const auto& [basis, count] : counts) {
    if (++shown > limit) {
      std::cout << indent << "... (" << counts.size() - limit << " more)\n";
      break;
    }
    std::string bits(n, '0');
    for (qubit_t q = 0; q < n; ++q)
      if ((basis >> q) & 1) bits[n - 1 - q] = '1';
    std::cout << indent << bits << "  " << count << "\n";
  }
}

/// The --batch K path: expands members, runs them through the batch
/// scheduler (memqsim) or the no-sharing serial loop (dense/wu), prints
/// per-member results and emits the schema-8 telemetry document.
int run_batch(const Args& args, const core::EngineConfig& cfg,
              core::EngineKind kind,
              const std::vector<circuit::Circuit>& inputs) {
  const qubit_t n = inputs.front().n_qubits();
  const circuit::NoiseModel noise = noise_from(args, cfg.batch_mode);

  std::vector<circuit::Circuit> members;
  if (cfg.batch_mode == core::BatchMode::kCircuits && inputs.size() > 1) {
    members = inputs;
    if (members.size() != cfg.batch_size)
      usage(("--batch-mode circuits with --batch " +
             std::to_string(cfg.batch_size) + " needs exactly that many "
             ".qasm files, got " + std::to_string(members.size())).c_str());
  } else {
    members =
        core::BatchScheduler::expand_members(inputs.front(), cfg, noise);
  }

  const auto shots = parse_u64("shots", args.option("shots", "1024"));

  if (kind != core::EngineKind::kMemQSim) {
    // The prior-work engines have no fan-out machinery: their batch is the
    // documented no-sharing loop (one fresh engine per member).
    WallTimer wall;
    const auto counts = core::run_batch_serial(kind, n, cfg, members, shots);
    const double secs = wall.seconds();
    std::cout << "batch of " << members.size() << " members (serial, "
              << core::engine_kind_name(kind) << "): "
              << format_fixed(secs > 0.0 ? static_cast<double>(members.size())
                                               / secs
                                         : 0.0, 2)
              << " circuits/sec\n";
    for (std::size_t m = 0; m < counts.size(); ++m) {
      std::cout << "member " << m << ":\n";
      print_counts(counts[m], n, 4, "  ");
    }
    return 0;
  }

  core::BatchScheduler sched(n, cfg);
  sched.run(members);
  const core::BatchStats& bs = sched.stats();
  std::cout << "batch of " << bs.members << " members (+"
            << static_cast<unsigned>(bs.member_index_qubits)
            << " index qubits): " << bs.executed_stages << " of "
            << bs.total_member_stages << " member stages executed ("
            << bs.shared_stages << " shared), " << bs.clone_chunks
            << " chunks fanned out, " << bs.chunk_loads << " loads / "
            << bs.chunk_stores << " stores\n";
  std::cout << "throughput: "
            << format_fixed(bs.circuits_per_second, 2) << " circuits/sec, "
            << format_fixed(bs.amortized_mb_per_s, 1)
            << " amortized MB/s\n";
  for (std::uint32_t m = 0; m < bs.members; ++m) {
    if (sched.member_aborted(m)) {
      std::cout << "member " << m << ": aborted (fault injection)\n";
      continue;
    }
    std::cout << "member " << m << ":\n";
    if (shots > 0) print_counts(sched.member_counts(m, shots), n, 4, "  ");
  }
  if (fault::armed()) {
    std::cout << "fault injection: " << fault::total_fires() << " fires\n";
    for (const std::string& line : fault::summary())
      std::cout << "  " << line << "\n";
  }

  const std::string json_path = args.option("telemetry-json", "");
  if (!json_path.empty()) {
    std::ofstream jf(json_path);
    if (!jf) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    const auto& t = sched.engine().telemetry();
    std::ostringstream head;
    head << "  \"engine\": \"" << sched.engine().name() << "\",\n"
         << "  \"qubits\": " << n << ",\n"
         << "  \"dedup\": " << (cfg.dedup ? "true" : "false") << ",\n";
    core::write_telemetry_json(jf, t, nullptr, head.str(), fault::armed(),
                               &bs);
    std::cout << "telemetry written to " << json_path << "\n";
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) usage("run needs a .qasm file");
  const Args args = parse_args(argc, argv, 3,
                               {"layout", "fuse", "elide-swaps",
                                "stage-report", "no-simd", "progress"});
  std::string trace_path = args.option("trace", "");
  if (!trace_path.empty() && !trace::enabled()) {
    trace::start(trace_path);  // before engine construction: workers register
  } else if (trace_path.empty() && trace::enabled()) {
    const char* env = std::getenv("MEMQ_TRACE");
    if (env != nullptr) trace_path = env;
  }
  const std::string faults_spec = args.option("faults", "");
  if (!faults_spec.empty())
    fault::arm(faults_spec);  // InvalidArgument on a bad spec → exit 1
  const circuit::QasmProgram prog = circuit::parse_qasm_file(argv[2]);
  const qubit_t n = prog.circuit.n_qubits();
  std::cout << "parsed " << argv[2] << ": " << n << " qubits, "
            << prog.circuit.size() << " gates\n";

  const std::string engine_name = args.option("engine", "memqsim");
  core::EngineKind kind = core::EngineKind::kMemQSim;
  if (engine_name == "dense") kind = core::EngineKind::kDense;
  else if (engine_name == "wu") kind = core::EngineKind::kWu;
  else if (engine_name != "memqsim") usage("unknown engine");

  const core::EngineConfig cfg = config_from(args, n);

  if (cfg.batch_size > 1) {
    // Batched throughput mode: --batch-mode circuits reads the extra
    // positional .qasm files as the remaining members.
    std::vector<circuit::Circuit> inputs{prog.circuit};
    for (const std::string& extra : args.positional)
      inputs.push_back(circuit::parse_qasm_file(extra).circuit);
    if (!args.option("telemetry-json", "").empty()) metrics::arm_timing();
    return run_batch(args, cfg, kind, inputs);
  }

  const std::string json_path = args.option("telemetry-json", "");
  const std::string metrics_out = args.option("metrics-out", "");
  const std::string metrics_prom = args.option("metrics-prom", "");
  const bool progress = args.has_flag("progress");
  // Validated even when no sampler sink consumes it, so a typo'd value
  // fails loudly instead of being dropped on the floor.
  const std::uint64_t metrics_interval_ms =
      parse_u64("metrics-interval", args.option("metrics-interval", "250"));
  // Latency timestamps cost two clock reads per site, so they stay off
  // unless some surface will actually report them.
  if (args.has_flag("stage-report") || !json_path.empty() ||
      !metrics_out.empty() || !metrics_prom.empty() || progress)
    metrics::arm_timing();

  auto engine = core::make_engine(kind, n, cfg);

  const std::string restore = args.option("restore", "");
  if (!restore.empty()) {
    engine->load_state(restore);
    std::cout << "restored state from " << restore << "\n";
  }
  metrics::Sampler sampler;
  if (!metrics_out.empty() || !metrics_prom.empty() || progress) {
    metrics::SamplerOptions sopts;
    sopts.interval = std::chrono::milliseconds(metrics_interval_ms);
    sopts.jsonl_path = metrics_out;
    sopts.prom_path = metrics_prom;
    sopts.progress = progress;
    sampler.start(sopts);  // after restore: counters only grow from here
  }

  engine->run(prog.circuit);

  const auto shots = parse_u64("shots", args.option("shots", "1024"));
  if (shots > 0) {
    std::cout << "\n" << shots << " shots:\n";
    const auto counts = engine->sample_counts(shots);
    std::size_t shown = 0;
    for (const auto& [basis, count] : counts) {
      if (++shown > 32) {
        std::cout << "  ... (" << counts.size() - 32 << " more)\n";
        break;
      }
      std::string bits(n, '0');
      for (qubit_t q = 0; q < n; ++q)
        if ((basis >> q) & 1) bits[n - 1 - q] = '1';
      std::cout << "  " << bits << "  " << count << "\n";
    }
  }

  const std::string expect = args.option("expect", "");
  if (!expect.empty())
    std::cout << "<" << expect << "> = "
              << format_fixed(engine->expectation({expect}), 6) << "\n";

  const std::string marginal = args.option("marginal", "");
  if (!marginal.empty()) {
    std::vector<qubit_t> qs;
    std::stringstream ss(marginal);
    std::string tok;
    while (std::getline(ss, tok, ','))
      qs.push_back(static_cast<qubit_t>(parse_u64("marginal", tok, n - 1)));
    const auto m = engine->marginal_probabilities(qs);
    std::cout << "marginal over {" << marginal << "}:\n";
    for (std::size_t b = 0; b < m.size(); ++b)
      if (m[b] > 1e-9)
        std::cout << "  " << b << " : " << format_fixed(m[b], 6) << "\n";
  }

  const std::string checkpoint = args.option("checkpoint", "");
  if (!checkpoint.empty()) {
    engine->save_state(checkpoint);
    std::cout << "checkpoint written to " << checkpoint << "\n";
  }

  sampler.stop();  // final sample covers the post-run queries above

  const auto& t = engine->telemetry();
  std::cout << "\npeak state memory " << human_bytes(t.peak_host_state_bytes)
            << ", ratio " << format_fixed(t.final_compression_ratio, 1)
            << "x, modeled time " << human_seconds(t.modeled_total_seconds)
            << "\n";
  if (t.pipeline_stall_seconds > 0.0)
    std::cout << "pipeline stall (coordinator blocked on codec): "
              << human_seconds(t.pipeline_stall_seconds) << " wall\n";
  if (args.has_flag("stage-report")) {
    const core::StageReport* rep = engine->stage_report();
    if (rep == nullptr) {
      std::cout << "(--stage-report: engine '" << engine->name()
                << "' has no stage plan)\n";
    } else {
      std::cout << "\nper-stage report:\n";
      print_stage_report(*rep);
    }
  }
  if (t.cache_hits + t.cache_misses > 0) {
    const double rate = 100.0 * static_cast<double>(t.cache_hits) /
                        static_cast<double>(t.cache_hits + t.cache_misses);
    std::cout << "chunk cache: " << t.cache_hits << " hits / "
              << t.cache_misses << " misses (" << format_fixed(rate, 1)
              << "%), " << t.cache_evictions << " evictions ("
              << t.cache_clean_evictions << " clean), "
              << human_bytes(t.cache_codec_bytes_avoided)
              << " codec bytes avoided\n";
  }
  if (cfg.store_backend == core::StoreBackend::kFile) {
    std::cout << "blob store: file backend, budget "
              << human_bytes(cfg.host_blob_budget_bytes) << ", peak resident "
              << human_bytes(t.peak_resident_blob_bytes) << "; spilled "
              << t.spill_writes << " blobs / "
              << human_bytes(t.spill_bytes_written) << " out, " << t.spill_reads
              << " blobs / " << human_bytes(t.spill_bytes_read)
              << " read back\n";
  }
  if (cfg.dedup &&
      (t.dedup_hits + t.cow_breaks + t.constant_chunks_stored > 0)) {
    std::cout << "dedup: " << t.dedup_hits << " hits / "
              << human_bytes(t.dedup_bytes_saved) << " saved, "
              << t.cow_breaks << " CoW breaks, " << t.constant_chunks_stored
              << " constant chunks stored ("
              << t.constant_chunks_materialized << " fills), "
              << t.cache_alias_hits << " cache alias hits, "
              << t.codec_memo_hits << " codec memo hits\n";
  }
  if (fault::armed()) {
    std::cout << "fault injection: " << fault::total_fires() << " fires";
    if (t.io_retries > 0) std::cout << ", " << t.io_retries << " I/O retries";
    if (t.degraded_to_ram != 0) std::cout << ", degraded to RAM residency";
    std::cout << "\n";
    for (const std::string& line : fault::summary())
      std::cout << "  " << line << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream jf(json_path);
    if (!jf) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    // CLI-only configuration lines; everything else is the shared schema.
    std::ostringstream head;
    head << "  \"engine\": \"" << engine->name() << "\",\n"
         << "  \"simd\": \"" << simd::name(simd::active()) << "\",\n"
         << "  \"codec_dict\": \""
         << (cfg.codec.dict_mode == compress::DictMode::kTrain ? "train"
                                                               : "off")
         << "\",\n"
         << "  \"qubits\": " << n << ",\n"
         << "  \"store_backend\": \""
         << (cfg.store_backend == core::StoreBackend::kFile ? "file" : "ram")
         << "\",\n"
         << "  \"blob_budget_bytes\": " << cfg.host_blob_budget_bytes
         << ",\n"
         << "  \"dedup\": " << (cfg.dedup ? "true" : "false") << ",\n";
    core::write_telemetry_json(jf, t, engine->stage_report(), head.str(),
                               fault::armed());
    std::cout << "telemetry written to " << json_path << "\n";
  }

  if (trace::enabled()) {
    engine.reset();  // join codec workers so async write-backs settle first
    const std::size_t n_events = trace::stop();
    std::cout << "trace: " << n_events << " events written to "
              << (trace_path.empty() ? "MEMQ_TRACE target" : trace_path)
              << "\n";
  }
  return 0;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 3) usage("compress needs a .qasm file");
  const Args args = parse_args(argc, argv, 3, {"no-simd"});
  const circuit::QasmProgram prog = circuit::parse_qasm_file(argv[2]);
  const qubit_t n = prog.circuit.n_qubits();

  TextTable table({"codec", "final ratio", "peak state", "codec cpu time"});
  for (const auto& codec : compress::compressor_names()) {
    core::EngineConfig cfg = config_from(args, n);
    cfg.codec.compressor = codec;
    auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
    engine->run(prog.circuit);
    const auto& t = engine->telemetry();
    table.add_row({codec, format_fixed(t.final_compression_ratio, 1) + "x",
                   human_bytes(t.peak_host_state_bytes),
                   human_seconds(t.cpu_phases.get("decompress") +
                                 t.cpu_phases.get("recompress"))});
  }
  std::cout << "final-state compression of " << argv[2] << " (" << n
            << " qubits, bound " << args.option("bound", "1e-6") << "):\n";
  table.print(std::cout);
  return 0;
}

int cmd_transfer(int argc, char** argv) {
  const Args args = parse_args(argc, argv, 2, {});
  const auto n = static_cast<qubit_t>(
      parse_u64("qubits", args.option("qubits", "20"), 40));
  const index_t amps = dim_of(n);

  TextTable table({"strategy", "H2D", "D2H", "API calls"});
  for (const auto strategy :
       {device::TransferStrategy::kSync,
        device::TransferStrategy::kAsyncPerElement,
        device::TransferStrategy::kStagedBuffer}) {
    device::DeviceConfig dcfg;
    dcfg.memory_bytes = 2 * amps * kAmpBytes + (1 << 20);
    device::SimDevice dev(dcfg);
    device::Stream stream(dev, "xfer");
    device::CopyEngine engine(dev, strategy);
    auto buf = dev.alloc(amps * kAmpBytes, "state");
    auto staging = dev.alloc(amps * kAmpBytes, "staging");
    std::vector<amp_t> host(amps);
    const auto up = engine.upload(stream, buf, host, {}, &staging);
    stream.synchronize();
    const auto down = engine.download(stream, host, buf, {}, &staging);
    stream.synchronize();
    table.add_row({device::strategy_name(strategy),
                   human_seconds(up.modeled_seconds),
                   human_seconds(down.modeled_seconds),
                   std::to_string(up.api_calls + down.api_calls)});
  }
  std::cout << "modeled state-vector transfer at " << n << " qubits ("
            << human_bytes(amps * kAmpBytes) << "):\n";
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  memq::trace::init_from_env();  // MEMQ_TRACE=file.json enables capture
  try {
    memq::fault::init_from_env();  // MEMQ_FAULTS=SPEC arms fault injection
    if (cmd == "info") return cmd_info();
    if (cmd == "workload") return cmd_workload(argc, argv);
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "compress") return cmd_compress(argc, argv);
    if (cmd == "transfer") return cmd_transfer(argc, argv);
    usage(("unknown command '" + cmd + "'").c_str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
