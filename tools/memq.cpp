// memq — command-line front end to the MEMQSim stack.
//
//   memq info
//   memq workload <name> --qubits N [--seed S] [--out file.qasm] [--stats]
//   memq run <file.qasm> [--engine dense|wu|memqsim] [--shots N]
//            [--chunk-qubits C] [--bound B] [--compressor NAME]
//            [--devices D] [--codec-threads T] [--layout] [--fuse]
//            [--marginal q0,q1,...] [--expect PAULISTRING]
//            [--checkpoint out.ckpt] [--restore in.ckpt]
//   memq compress <file.qasm> [--chunk-qubits C] [--bound B]
//            (final-state compression ratio for every registered codec)
//   memq transfer --qubits N
//            (Table-1-style sync/async/staged transfer comparison)
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/qasm.hpp"
#include "circuit/transpile.hpp"
#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "compress/compressor.hpp"
#include "core/engine.hpp"
#include "core/memq_engine.hpp"
#include "core/partitioner.hpp"
#include "device/copy_engine.hpp"

namespace {

using namespace memq;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage:\n"
      "  memq info\n"
      "  memq workload <name> --qubits N [--seed S] [--out f.qasm] [--stats]\n"
      "  memq run <file.qasm> [--engine dense|wu|memqsim] [--shots N]\n"
      "           [--chunk-qubits C] [--bound B] [--compressor NAME]\n"
      "           [--devices D] [--codec-threads T] [--layout] [--fuse]\n"
      "           [--marginal q0,q1,..] [--expect PAULIS]\n"
      "           [--checkpoint f] [--restore f]\n"
      "  memq compress <file.qasm> [--chunk-qubits C] [--bound B]\n"
      "  memq transfer --qubits N\n";
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;
  std::vector<std::string> flags;

  bool has_flag(const std::string& name) const {
    for (const auto& f : flags)
      if (f == name) return true;
    return false;
  }
  std::string option(const std::string& name, const std::string& dflt) const {
    for (const auto& [k, v] : options)
      if (k == name) return v;
    return dflt;
  }
};

Args parse_args(int argc, char** argv, int start,
                const std::vector<std::string>& flag_names) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string name = a.substr(2);
      bool is_flag = false;
      for (const auto& f : flag_names)
        if (f == name) is_flag = true;
      if (is_flag) {
        args.flags.push_back(name);
      } else {
        if (i + 1 >= argc) usage(("missing value for --" + name).c_str());
        args.options.emplace_back(name, argv[++i]);
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

core::EngineConfig config_from(const Args& args, qubit_t n) {
  core::EngineConfig cfg;
  cfg.chunk_qubits = static_cast<qubit_t>(
      std::atoi(args.option("chunk-qubits",
                            std::to_string(n > 6 ? n - 6 : 1)).c_str()));
  cfg.chunk_qubits = std::min<qubit_t>(cfg.chunk_qubits, n);
  cfg.codec.bound = std::atof(args.option("bound", "1e-6").c_str());
  cfg.codec.compressor = args.option("compressor", "szq");
  cfg.device_count =
      static_cast<std::uint32_t>(std::atoi(args.option("devices", "1").c_str()));
  cfg.codec_threads = static_cast<std::uint32_t>(
      std::atoi(args.option("codec-threads", "1").c_str()));
  cfg.optimize_layout = args.has_flag("layout");
  cfg.fuse_single_qubit_runs = args.has_flag("fuse");
  return cfg;
}

int cmd_info() {
  std::cout << "MEMQSim " << "0.1.0" << "\n\n";
  std::cout << "engines:     dense, wu, memqsim\n";
  std::cout << "compressors:";
  for (const auto& name : compress::compressor_names())
    std::cout << " " << name;
  std::cout << "\nworkloads:  ";
  for (const auto& name : circuit::workload_names())
    std::cout << " " << name;
  std::cout << "\n\ndefault engine config:\n";
  core::EngineConfig cfg;
  std::cout << "  chunk_qubits        " << cfg.chunk_qubits << "\n";
  std::cout << "  codec               " << cfg.codec.compressor << " @ "
            << format_sci(cfg.codec.bound, 0) << " (value-range relative)\n";
  std::cout << "  transfer strategy   "
            << device::strategy_name(cfg.strategy) << "\n";
  std::cout << "  device slots        " << cfg.device_slots << "\n";
  std::cout << "  device memory       " << human_bytes(cfg.device.memory_bytes)
            << "\n";
  std::cout << "  cpu codec workers   " << cfg.cpu_codec_workers << "\n";
  std::cout << "  codec threads       " << cfg.codec_threads
            << " (0 = hardware concurrency)\n";
  return 0;
}

int cmd_workload(int argc, char** argv) {
  if (argc < 3) usage("workload needs a name");
  const Args args = parse_args(argc, argv, 3, {"stats"});
  const std::string name = argv[2];
  const auto n =
      static_cast<qubit_t>(std::atoi(args.option("qubits", "12").c_str()));
  const auto seed = std::strtoull(args.option("seed", "42").c_str(), nullptr, 10);

  circuit::Circuit c = circuit::make_workload(name, n, seed);
  std::cout << "workload '" << name << "': " << c.n_qubits() << " qubits, "
            << c.size() << " gates, depth " << c.stats().depth << "\n";
  if (args.has_flag("stats")) {
    const auto st = c.stats();
    TextTable table({"gate", "count"});
    for (const auto& [g, cnt] : st.by_name)
      table.add_row({g, std::to_string(cnt)});
    table.print(std::cout);
    const auto plan = core::partition(c, c.n_qubits() > 6 ? c.n_qubits() - 6
                                                          : 1);
    std::cout << "stages at chunk 2^" << (c.n_qubits() - 6) << ": local "
              << plan.stats.local_stages << ", pair " << plan.stats.pair_stages
              << ", permute " << plan.stats.permute_stages
              << "; gates/codec-pass "
              << format_fixed(plan.stats.gates_per_codec_pass(), 2) << "\n";
  }
  const std::string out = args.option("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::cerr << "cannot write " << out << "\n";
      return 1;
    }
    f << circuit::to_qasm(c);
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) usage("run needs a .qasm file");
  const Args args = parse_args(argc, argv, 3, {"layout", "fuse"});
  const circuit::QasmProgram prog = circuit::parse_qasm_file(argv[2]);
  const qubit_t n = prog.circuit.n_qubits();
  std::cout << "parsed " << argv[2] << ": " << n << " qubits, "
            << prog.circuit.size() << " gates\n";

  const std::string engine_name = args.option("engine", "memqsim");
  core::EngineKind kind = core::EngineKind::kMemQSim;
  if (engine_name == "dense") kind = core::EngineKind::kDense;
  else if (engine_name == "wu") kind = core::EngineKind::kWu;
  else if (engine_name != "memqsim") usage("unknown engine");

  auto engine = core::make_engine(kind, n, config_from(args, n));

  const std::string restore = args.option("restore", "");
  if (!restore.empty()) {
    engine->load_state(restore);
    std::cout << "restored state from " << restore << "\n";
  }
  engine->run(prog.circuit);

  const auto shots = std::strtoull(args.option("shots", "1024").c_str(),
                                   nullptr, 10);
  if (shots > 0) {
    std::cout << "\n" << shots << " shots:\n";
    const auto counts = engine->sample_counts(shots);
    std::size_t shown = 0;
    for (const auto& [basis, count] : counts) {
      if (++shown > 32) {
        std::cout << "  ... (" << counts.size() - 32 << " more)\n";
        break;
      }
      std::string bits(n, '0');
      for (qubit_t q = 0; q < n; ++q)
        if ((basis >> q) & 1) bits[n - 1 - q] = '1';
      std::cout << "  " << bits << "  " << count << "\n";
    }
  }

  const std::string expect = args.option("expect", "");
  if (!expect.empty())
    std::cout << "<" << expect << "> = "
              << format_fixed(engine->expectation({expect}), 6) << "\n";

  const std::string marginal = args.option("marginal", "");
  if (!marginal.empty()) {
    std::vector<qubit_t> qs;
    std::stringstream ss(marginal);
    std::string tok;
    while (std::getline(ss, tok, ','))
      qs.push_back(static_cast<qubit_t>(std::atoi(tok.c_str())));
    const auto m = engine->marginal_probabilities(qs);
    std::cout << "marginal over {" << marginal << "}:\n";
    for (std::size_t b = 0; b < m.size(); ++b)
      if (m[b] > 1e-9)
        std::cout << "  " << b << " : " << format_fixed(m[b], 6) << "\n";
  }

  const std::string checkpoint = args.option("checkpoint", "");
  if (!checkpoint.empty()) {
    engine->save_state(checkpoint);
    std::cout << "checkpoint written to " << checkpoint << "\n";
  }

  const auto& t = engine->telemetry();
  std::cout << "\npeak state memory " << human_bytes(t.peak_host_state_bytes)
            << ", ratio " << format_fixed(t.final_compression_ratio, 1)
            << "x, modeled time " << human_seconds(t.modeled_total_seconds)
            << "\n";
  return 0;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 3) usage("compress needs a .qasm file");
  const Args args = parse_args(argc, argv, 3, {});
  const circuit::QasmProgram prog = circuit::parse_qasm_file(argv[2]);
  const qubit_t n = prog.circuit.n_qubits();

  TextTable table({"codec", "final ratio", "peak state", "codec cpu time"});
  for (const auto& codec : compress::compressor_names()) {
    core::EngineConfig cfg = config_from(args, n);
    cfg.codec.compressor = codec;
    auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
    engine->run(prog.circuit);
    const auto& t = engine->telemetry();
    table.add_row({codec, format_fixed(t.final_compression_ratio, 1) + "x",
                   human_bytes(t.peak_host_state_bytes),
                   human_seconds(t.cpu_phases.get("decompress") +
                                 t.cpu_phases.get("recompress"))});
  }
  std::cout << "final-state compression of " << argv[2] << " (" << n
            << " qubits, bound " << args.option("bound", "1e-6") << "):\n";
  table.print(std::cout);
  return 0;
}

int cmd_transfer(int argc, char** argv) {
  const Args args = parse_args(argc, argv, 2, {});
  const auto n =
      static_cast<qubit_t>(std::atoi(args.option("qubits", "20").c_str()));
  const index_t amps = dim_of(n);

  TextTable table({"strategy", "H2D", "D2H", "API calls"});
  for (const auto strategy :
       {device::TransferStrategy::kSync,
        device::TransferStrategy::kAsyncPerElement,
        device::TransferStrategy::kStagedBuffer}) {
    device::DeviceConfig dcfg;
    dcfg.memory_bytes = 2 * amps * kAmpBytes + (1 << 20);
    device::SimDevice dev(dcfg);
    device::Stream stream(dev, "xfer");
    device::CopyEngine engine(dev, strategy);
    auto buf = dev.alloc(amps * kAmpBytes, "state");
    auto staging = dev.alloc(amps * kAmpBytes, "staging");
    std::vector<amp_t> host(amps);
    const auto up = engine.upload(stream, buf, host, {}, &staging);
    stream.synchronize();
    const auto down = engine.download(stream, host, buf, {}, &staging);
    stream.synchronize();
    table.add_row({device::strategy_name(strategy),
                   human_seconds(up.modeled_seconds),
                   human_seconds(down.modeled_seconds),
                   std::to_string(up.api_calls + down.api_calls)});
  }
  std::cout << "modeled state-vector transfer at " << n << " qubits ("
            << human_bytes(amps * kAmpBytes) << "):\n";
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return cmd_info();
    if (cmd == "workload") return cmd_workload(argc, argv);
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "compress") return cmd_compress(argc, argv);
    if (cmd == "transfer") return cmd_transfer(argc, argv);
    usage(("unknown command '" + cmd + "'").c_str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
