// Grover search through the full engine stack: builds the oracle + diffusion
// circuit, runs it on both the dense backend and MEMQSim, and verifies that
// the compressed engine finds the marked item with the same success
// probability at a fraction of the state memory.
//
//   ./examples/grover_search [n_qubits] [marked_item]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
  using namespace memq;

  const qubit_t n = argc > 1 ? static_cast<qubit_t>(std::atoi(argv[1])) : 12;
  const index_t marked =
      argc > 2 ? static_cast<index_t>(std::atoll(argv[2]))
               : (dim_of(n) * 2) / 3;

  std::cout << "Searching " << dim_of(n) << " items for |" << marked
            << "> with Grover's algorithm\n";
  const circuit::Circuit grover = circuit::make_grover(n, marked);
  std::cout << "circuit: " << grover.size() << " gates\n\n";

  core::EngineConfig config;
  config.chunk_qubits = n > 6 ? n - 6 : 1;
  config.codec.bound = 1e-7;

  for (const auto kind : {core::EngineKind::kDense, core::EngineKind::kMemQSim}) {
    auto engine = core::make_engine(kind, n, config);
    engine->run(grover);
    const double p_success = std::norm(engine->amplitude(marked));
    const auto counts = engine->sample_counts(100);
    std::uint64_t hits = 0;
    const auto it = counts.find(marked);
    if (it != counts.end()) hits = it->second;

    const auto& t = engine->telemetry();
    std::cout << engine->name() << ":\n";
    std::cout << "  P(marked)        = " << format_fixed(p_success, 4) << "\n";
    std::cout << "  hits in 100 shots: " << hits << "\n";
    std::cout << "  peak state memory: " << human_bytes(t.peak_host_state_bytes)
              << "\n";
    if (kind == core::EngineKind::kMemQSim) {
      std::cout << "  compression ratio: "
                << format_fixed(t.final_compression_ratio, 1) << "x\n";
      std::cout << "  modeled time     : "
                << human_seconds(t.modeled_total_seconds) << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
