// OpenQASM 2.0 runner: loads a .qasm file, simulates it on a chosen engine
// and prints the measurement distribution.
//
//   ./examples/qasm_runner <file.qasm> [--engine dense|wu|memqsim]
//                          [--shots N] [--chunk-qubits C] [--bound B]
//                          [--compressor szq|bpc|gorilla|null]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "circuit/qasm.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"

namespace {

void usage() {
  std::cerr << "usage: qasm_runner <file.qasm> [--engine dense|wu|memqsim]\n"
               "                   [--shots N] [--chunk-qubits C]\n"
               "                   [--bound B] [--compressor NAME]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace memq;
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path = argv[1];
  std::string engine_name = "memqsim";
  std::size_t shots = 1024;
  core::EngineConfig config;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--engine") engine_name = next();
    else if (arg == "--shots") shots = std::strtoull(next(), nullptr, 10);
    else if (arg == "--chunk-qubits")
      config.chunk_qubits = static_cast<qubit_t>(std::atoi(next()));
    else if (arg == "--bound") config.codec.bound = std::atof(next());
    else if (arg == "--compressor") config.codec.compressor = next();
    else {
      usage();
      return 2;
    }
  }

  try {
    const circuit::QasmProgram prog = circuit::parse_qasm_file(path);
    const qubit_t n = prog.circuit.n_qubits();
    config.chunk_qubits = std::min<qubit_t>(config.chunk_qubits, n);
    std::cout << "parsed " << path << ": " << n << " qubits, "
              << prog.circuit.size() << " gates\n";

    core::EngineKind kind = core::EngineKind::kMemQSim;
    if (engine_name == "dense") kind = core::EngineKind::kDense;
    else if (engine_name == "wu") kind = core::EngineKind::kWu;
    else if (engine_name != "memqsim") {
      usage();
      return 2;
    }

    auto engine = core::make_engine(kind, n, config);
    engine->run(prog.circuit);

    std::cout << "\n" << shots << " shots on " << engine->name() << ":\n";
    const auto counts = engine->sample_counts(shots);
    for (const auto& [basis, count] : counts) {
      std::string bits(n, '0');
      for (qubit_t q = 0; q < n; ++q)
        if ((basis >> q) & 1) bits[n - 1 - q] = '1';
      std::cout << "  " << bits << "  " << count << "\n";
      if (counts.size() > 32 && count < shots / 100) continue;
    }
    const auto& t = engine->telemetry();
    std::cout << "\npeak state memory: " << human_bytes(t.peak_host_state_bytes)
              << "  modeled time: " << human_seconds(t.modeled_total_seconds)
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
