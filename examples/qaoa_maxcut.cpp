// QAOA MaxCut on a random 3-regular-ish graph, with a small grid search over
// (gamma, beta) executed entirely on the MEMQSim engine — a realistic
// variational workload where the same ansatz runs many times, exactly the
// use case where a memory-frugal simulator lets a laptop explore more qubits.
//
//   ./examples/qaoa_maxcut [n_qubits]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "sv/simulator.hpp"

namespace {

using namespace memq;

double expected_cut(core::Engine& engine, qubit_t n,
                    const std::vector<std::pair<qubit_t, qubit_t>>& edges) {
  // <C> = sum_edges (1 - <Z_a Z_b>)/2, evaluated chunk-wise on the engine —
  // the dense state is never materialized, so this scales with the
  // compressed footprint, not 2^n.
  double cut = 0.0;
  for (const auto& [a, b] : edges) {
    std::string ops(n, 'I');
    ops[a] = 'Z';
    ops[b] = 'Z';
    cut += 0.5 * (1.0 - engine.expectation({ops}));
  }
  return cut;
}

}  // namespace

int main(int argc, char** argv) {
  const qubit_t n = argc > 1 ? static_cast<qubit_t>(std::atoi(argv[1])) : 12;

  // Ring + random chords graph.
  Prng rng(2023);
  std::vector<std::pair<qubit_t, qubit_t>> edges;
  for (qubit_t q = 0; q < n; ++q) edges.emplace_back(q, (q + 1) % n);
  for (qubit_t q = 0; q < n; ++q) {
    const auto r = static_cast<qubit_t>(rng.uniform_index(n));
    if (r != q && r != (q + 1) % n && q != (r + 1) % n)
      edges.emplace_back(std::min(q, r), std::max(q, r));
  }
  std::cout << "MaxCut on " << n << " vertices, " << edges.size()
            << " edges; p = 1 QAOA grid search on memqsim\n\n";

  core::EngineConfig cfg;
  cfg.chunk_qubits = n > 6 ? n - 6 : 1;
  cfg.codec.bound = 1e-6;

  TextTable table({"gamma", "beta", "<cut>", "modeled time"});
  double best_cut = 0.0, best_gamma = 0.0, best_beta = 0.0;
  for (const double gamma : {0.3, 0.6, 0.9}) {
    for (const double beta : {0.2, 0.4, 0.6}) {
      circuit::QaoaParams params;
      params.edges = edges;
      params.gammas = {gamma};
      params.betas = {beta};
      auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
      engine->run(circuit::make_qaoa_maxcut(n, params));
      const double cut = expected_cut(*engine, n, edges);
      table.add_row(
          {format_fixed(gamma, 1), format_fixed(beta, 1),
           format_fixed(cut, 3),
           human_seconds(engine->telemetry().modeled_total_seconds)});
      if (cut > best_cut) {
        best_cut = cut;
        best_gamma = gamma;
        best_beta = beta;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nbest: <cut> = " << format_fixed(best_cut, 3) << " at gamma="
            << best_gamma << ", beta=" << best_beta << " (random cut would "
            << "average " << format_fixed(edges.size() * 0.5, 1) << ")\n";
  return 0;
}
