// Shor's algorithm factoring 15 end-to-end on the MEMQSim engine:
// order finding by phase estimation over compiled modular multiplication,
// then classical continued-fraction post-processing.
//
//   ./examples/shor_factor15 [a] [n_counting_qubits]
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
  using namespace memq;

  const std::uint64_t a = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const qubit_t n_count =
      argc > 2 ? static_cast<qubit_t>(std::atoi(argv[2])) : 8;

  std::cout << "Factoring N = 15 with base a = " << a << " (" << n_count
            << " counting qubits)\n";
  const circuit::Circuit c = circuit::make_shor15_order_finding(a, n_count);
  std::cout << "order-finding circuit: " << c.n_qubits() << " qubits, "
            << c.size() << " gates\n\n";

  core::EngineConfig cfg;
  cfg.chunk_qubits = c.n_qubits() - 4;
  cfg.codec.bound = 1e-7;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);

  const index_t dim_count = index_t{1} << n_count;
  const auto counts = engine->sample_counts(64);
  std::cout << "sampled counting-register values and inferred periods:\n";
  bool done = false;
  for (const auto& [basis, cnt] : counts) {
    const index_t s = basis & (dim_count - 1);
    std::cout << "  s = " << s << " (" << cnt << " shots)";
    if (s == 0) {
      std::cout << "  [uninformative]\n";
      continue;
    }
    const index_t g = std::gcd(s, dim_count);
    const index_t r = dim_count / g;
    std::cout << "  -> s/2^n = " << s << "/" << dim_count
              << " -> candidate period r = " << r;
    if (r % 2 == 0) {
      std::uint64_t half = 1;
      for (index_t i = 0; i < r / 2; ++i) half = (half * a) % 15;
      const std::uint64_t f1 = std::gcd(half + 1, std::uint64_t{15});
      const std::uint64_t f2 = std::gcd(half - 1, std::uint64_t{15});
      if (f1 > 1 && f1 < 15 && f2 > 1 && f2 < 15 && !done) {
        std::cout << "  => 15 = " << f1 << " x " << f2;
        done = true;
      }
    }
    std::cout << "\n";
  }
  std::cout << "\nclassical check: order of " << a << " mod 15 = "
            << circuit::order_mod15(a) << "\n";
  const auto& t = engine->telemetry();
  std::cout << "peak state memory: " << human_bytes(t.peak_host_state_bytes)
            << ", modeled time: " << human_seconds(t.modeled_total_seconds)
            << "\n";
  return done ? 0 : 1;
}
