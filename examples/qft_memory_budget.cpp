// Memory-budget study: how many qubits fit when the state must stay under a
// host-memory cap? Runs the QFT under decreasing lossy error bounds and
// reports footprint, fidelity proxy, and the extra qubits the compression
// buys — the paper's headline "5 more qubits" experiment at example scale.
//
//   ./examples/qft_memory_budget [n_qubits]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
  using namespace memq;

  const qubit_t n = argc > 1 ? static_cast<qubit_t>(std::atoi(argv[1])) : 16;
  std::cout << "QFT(" << n << ") under lossy compression; dense state = "
            << human_bytes(state_bytes(n)) << "\n\n";

  // Oracle for fidelity (dense run).
  core::EngineConfig dense_cfg;
  auto dense = core::make_engine(core::EngineKind::kDense, n, dense_cfg);
  dense->run(circuit::make_qft(n));
  const sv::StateVector reference = dense->to_dense();

  TextTable table({"error bound", "peak state", "ratio", "extra qubits",
                   "max |err|", "modeled time"});
  for (const double bound : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    core::EngineConfig cfg;
    cfg.chunk_qubits = n > 6 ? n - 6 : 1;
    cfg.codec.bound = bound;
    auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
    engine->run(circuit::make_qft(n));

    const auto& t = engine->telemetry();
    const double err = engine->to_dense().max_abs_diff(reference);
    const double extra =
        std::log2(static_cast<double>(state_bytes(n)) /
                  static_cast<double>(t.peak_host_state_bytes));
    table.add_row({format_sci(bound, 0),
                   human_bytes(t.peak_host_state_bytes),
                   format_fixed(t.final_compression_ratio, 1) + "x",
                   format_fixed(extra, 1), format_sci(err, 1),
                   human_seconds(t.modeled_total_seconds)});
  }
  table.print(std::cout);
  std::cout << "\n'extra qubits' = log2(dense bytes / peak compressed state):"
            << "\nhow much farther the same host memory stretches.\n";
  return 0;
}
