// Phase estimation of p(2*pi*5/16) with a 4-bit counting register,
// written with a user-defined IQFT gate to exercise the gate-definition
// parser.
OPENQASM 2.0;
include "qelib1.inc";
gate iqft4 a, b, c, d {
  swap b, c;
  swap a, d;
  h a;
  cu1(-pi/2) a, b;
  h b;
  cu1(-pi/4) a, c;
  cu1(-pi/2) b, c;
  h c;
  cu1(-pi/8) a, d;
  cu1(-pi/4) b, d;
  cu1(-pi/2) c, d;
  h d;
}
qreg q[4];
qreg eig[1];
creg c[4];
x eig[0];
h q;
cu1(2*pi*5/16) q[0], eig[0];
cu1(2*pi*10/16) q[1], eig[0];
cu1(2*pi*20/16) q[2], eig[0];
cu1(2*pi*40/16) q[3], eig[0];
iqft4 q[0], q[1], q[2], q[3];
measure q -> c;
