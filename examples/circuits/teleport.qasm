// Teleportation with deferred (coherent) corrections.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
u3(1.1, 0.4, 2.2) q[0];
h q[1];
cx q[1], q[2];
cx q[0], q[1];
h q[0];
cx q[1], q[2];
cz q[0], q[2];
measure q[2] -> c[2];
