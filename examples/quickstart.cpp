// Quickstart: build a GHZ circuit, run it on the MEMQSim engine, and inspect
// the state, the sampling interface, and the memory/telemetry report.
//
//   ./examples/quickstart [n_qubits]
#include <cstdlib>
#include <iostream>

#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
  using namespace memq;

  const qubit_t n = argc > 1 ? static_cast<qubit_t>(std::atoi(argv[1])) : 16;

  // 1. Build a circuit (fluent API; see circuit/workloads.hpp for more).
  const circuit::Circuit ghz = circuit::make_ghz(n);
  std::cout << "Circuit: GHZ(" << n << "), " << ghz.size() << " gates, depth "
            << ghz.stats().depth << "\n\n";

  // 2. Configure the engine: chunked lossy compression on the host, staged
  //    streaming through the (simulated) GPU.
  core::EngineConfig config;
  config.chunk_qubits = n > 6 ? n - 6 : 1;  // keep several chunks at demo scale
  config.codec.compressor = "szq";
  config.codec.bound = 1e-6;

  auto engine = core::make_engine(core::EngineKind::kMemQSim, n, config);
  engine->run(ghz);

  // 3. Inspect the state.
  std::cout << "amplitude(|0...0>) = " << engine->amplitude(0) << "\n";
  std::cout << "amplitude(|1...1>) = " << engine->amplitude(dim_of(n) - 1)
            << "\n";
  std::cout << "norm               = " << engine->norm() << "\n\n";

  // 4. Sample measurement outcomes (no collapse).
  std::cout << "1000 shots:\n";
  for (const auto& [basis, count] : engine->sample_counts(1000))
    std::cout << "  |" << basis << "> : " << count << "\n";

  // 5. Memory + performance telemetry.
  const auto& t = engine->telemetry();
  std::cout << "\nTelemetry\n";
  std::cout << "  dense state size      " << human_bytes(state_bytes(n))
            << "\n";
  std::cout << "  peak host state       "
            << human_bytes(t.peak_host_state_bytes) << "\n";
  std::cout << "  peak device memory    " << human_bytes(t.peak_device_bytes)
            << "\n";
  std::cout << "  compression ratio     "
            << format_fixed(t.final_compression_ratio, 1) << "x\n";
  std::cout << "  modeled time          "
            << human_seconds(t.modeled_total_seconds) << "\n";
  std::cout << "  device busy (modeled) "
            << human_seconds(t.device_busy_seconds) << "\n";
  std::cout << "  H2D traffic           " << human_bytes(t.h2d_bytes) << " in "
            << t.h2d_calls << " calls\n";
  std::cout << "  zero chunks skipped   " << t.zero_chunks_skipped << "\n";
  return 0;
}
