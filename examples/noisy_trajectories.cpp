// Noise study via quantum trajectories: how depolarizing noise degrades a
// GHZ state's coherence, estimated by averaging the X^n parity observable
// over stochastic-Pauli trajectories — the many-cheap-runs workload where a
// memory-frugal engine lets one machine sweep larger registers.
//
//   ./examples/noisy_trajectories [n_qubits] [n_trajectories]
#include <cstdlib>
#include <iostream>

#include "circuit/noise.hpp"
#include "circuit/workloads.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
  using namespace memq;

  const qubit_t n = argc > 1 ? static_cast<qubit_t>(std::atoi(argv[1])) : 10;
  const std::uint64_t trajectories =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60;

  std::cout << "GHZ(" << n << ") coherence <X^n> under depolarizing noise, "
            << trajectories << " trajectories per point\n\n";

  const circuit::Circuit ghz = circuit::make_ghz(n);
  core::EngineConfig cfg;
  cfg.chunk_qubits = n > 6 ? n - 6 : 1;
  cfg.codec.bound = 1e-6;

  TextTable table({"p(depolarizing)", "<X^n> mean", "std err", "survival"});
  for (const double p : {0.0, 0.01, 0.03, 0.1, 0.3}) {
    circuit::NoiseModel model;
    model.depolarizing_1q = p;
    model.depolarizing_2q = p;
    RunningStats st;
    for (std::uint64_t t = 0; t < trajectories; ++t) {
      auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
      engine->run(circuit::sample_noisy_trajectory(ghz, model, 1000 + t));
      st.add(engine->expectation({std::string(n, 'X')}));
    }
    const double stderr_mean =
        st.stddev() / std::sqrt(static_cast<double>(st.count()));
    table.add_row({format_fixed(p, 2), format_fixed(st.mean(), 3),
                   format_fixed(stderr_mean, 3),
                   format_fixed(100.0 * st.mean(), 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nClean GHZ has <X^n> = 1; each inserted Pauli error breaks "
               "the parity with\nhigh probability, so coherence decays "
               "roughly as (1-p)^(gates).\n";
  return 0;
}
