// VQE for the transverse-field Ising chain on the MEMQSim engine:
// a hardware-efficient RY + CX-ring ansatz optimized with parameter-shift
// gradients. Every energy evaluation is a fresh chunked-compressed run —
// the many-cheap-runs loop where memory efficiency sets the reachable size.
//
//   ./examples/vqe_tfim [n_qubits] [iterations]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "core/observables.hpp"

namespace {

using namespace memq;

circuit::Circuit ansatz(qubit_t n, const std::vector<double>& theta) {
  // Two layers: RY rotations + CX entangler ring, then RY again.
  circuit::Circuit c(n);
  std::size_t p = 0;
  for (qubit_t q = 0; q < n; ++q) c.ry(q, theta.at(p++));
  for (qubit_t q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (qubit_t q = 0; q < n; ++q) c.ry(q, theta.at(p++));
  return c;
}

double energy(qubit_t n, const std::vector<double>& theta,
              const core::PauliSum& h, const core::EngineConfig& cfg) {
  auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
  engine->run(ansatz(n, theta));
  return core::expectation(*engine, h);
}

}  // namespace

int main(int argc, char** argv) {
  const qubit_t n = argc > 1 ? static_cast<qubit_t>(std::atoi(argv[1])) : 8;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 25;

  const auto h = core::PauliSum::tfim_chain(n, 1.0, 1.0);
  core::EngineConfig cfg;
  cfg.chunk_qubits = n > 6 ? n - 6 : 1;
  cfg.codec.bound = 1e-7;

  std::vector<double> theta(2 * static_cast<std::size_t>(n), 0.1);
  const double lr = 0.1;

  std::cout << "VQE on TFIM chain, n = " << n << " (J = h = 1), "
            << theta.size() << " parameters, parameter-shift gradients\n\n";
  double e = energy(n, theta, h, cfg);
  std::cout << "iter  0: E = " << format_fixed(e, 5) << "\n";
  for (int it = 1; it <= iters; ++it) {
    // Parameter-shift rule: dE/dt_k = (E(t_k + pi/2) - E(t_k - pi/2)) / 2.
    std::vector<double> grad(theta.size());
    for (std::size_t k = 0; k < theta.size(); ++k) {
      std::vector<double> plus = theta, minus = theta;
      plus[k] += kPi / 2;
      minus[k] -= kPi / 2;
      grad[k] = 0.5 * (energy(n, plus, h, cfg) - energy(n, minus, h, cfg));
    }
    for (std::size_t k = 0; k < theta.size(); ++k) theta[k] -= lr * grad[k];
    e = energy(n, theta, h, cfg);
    if (it % 5 == 0 || it == iters)
      std::cout << "iter " << it << ": E = " << format_fixed(e, 5) << "\n";
  }

  // Reference points for the critical TFIM chain (open boundary).
  std::cout << "\nproduct-state bounds: E(|0..0>) = " << format_fixed(-(n - 1.0), 2)
            << ", E(|+..+>) = " << format_fixed(-static_cast<double>(n), 2)
            << "\n";
  std::cout << "VQE should land below both (exact ground state is lower "
               "still).\n";
  return 0;
}
