// Gate dependency DAG with sound commutation rules — the partial order the
// plan optimizer (core/plan_opt.hpp) schedules over, replacing the implicit
// total order the partitioner consumes.
//
// Commutation is decided per wire through role classes. A controlled gate
// C_S(U) factors as P0 ⊗ I + P1 ⊗ U with P0/P1 diagonal projectors on the
// control wires, so on every wire its action lives in span{I, P} for a
// single Pauli axis P:
//   * control wires        -> Z  (projectors are diagonal)
//   * diagonal targets     -> Z  (diag(a, b) = αI + βZ)
//   * targets with m00 == m11, m01 ==  m10 -> X  (αI + βX: RX, X, SX...)
//   * targets with m00 == m11, m01 == -m10 -> Y  (αI + βY: RY, Y)
//   * scalar targets (c·I) -> Scalar (commutes with everything)
//   * anything else (H, U3, swap, measure...) -> Other (commutes with
//     nothing on that wire)
// Two gates whose wire operators commute pairwise on every shared wire
// commute as whole operators (product terms commute factor-wise, sums of
// commuting products commute). Hence: disjoint supports always commute;
// diagonal gates commute on shared wires; control-only overlap commutes
// with diagonal targets — plus the X/Y axis cases for free.
//
// DAG construction keeps, per wire, the current same-role gate group and
// the previous group, fully cross-linking adjacent groups. Ordering two
// role-incompatible gates through the chain of intermediate groups is
// transitive, so every non-commuting pair is path-connected ("edge to the
// last non-commuting gate only" is NOT sound: with A0 = CX(q->a),
// A1 = CX(q->b), C = H(q), C must be ordered after BOTH A0 and A1, not
// just A1). Measure/reset are full fences; barriers are dropped, matching
// the partitioner, which ignores them without flushing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"

namespace memq::circuit {

/// Pauli-axis class of a gate's action on one wire (see header comment).
enum class WireRole : std::uint8_t { kScalar, kZ, kX, kY, kOther };

/// Role of `gate` on `wire`; kScalar for wires the gate does not touch.
WireRole wire_role(const Gate& gate, qubit_t wire);

/// True when the two wire actions provably commute.
bool roles_commute(WireRole a, WireRole b) noexcept;

/// Sound (conservative) commutation test: true only when the gates provably
/// commute. Nonunitary gates and barriers never commute with anything.
bool gates_commute(const Gate& a, const Gate& b);

struct GateDag {
  struct Node {
    Gate gate;
    std::size_t circuit_index = 0;  ///< position in the source gate list
    std::vector<std::size_t> preds;
    std::vector<std::size_t> succs;
  };
  std::vector<Node> nodes;

  std::size_t size() const noexcept { return nodes.size(); }

  /// True iff `order` is a permutation of [0, size()) that schedules every
  /// node after all of its predecessors.
  bool is_legal_order(const std::vector<std::size_t>& order) const;
};

/// Builds the dependency DAG of `circuit`. Barriers are dropped (partitioner
/// parity); measure/reset become full fences ordered against everything
/// before and after them.
GateDag build_gate_dag(const Circuit& circuit);

}  // namespace memq::circuit
