#include "circuit/noise.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace memq::circuit {

Circuit sample_noisy_trajectory(const Circuit& circuit,
                                const NoiseModel& model, std::uint64_t seed) {
  for (const double p : {model.depolarizing_1q, model.depolarizing_2q,
                         model.bit_flip, model.phase_flip})
    MEMQ_CHECK(p >= 0.0 && p <= 1.0, "noise probability out of [0,1]: " << p);

  Prng rng(seed);
  Circuit noisy(circuit.n_qubits());
  for (const Gate& g : circuit.gates()) {
    noisy.append(g);
    if (g.is_barrier() || g.is_nonunitary()) continue;
    const auto qs = g.qubits();
    const double p_depol =
        qs.size() == 1 ? model.depolarizing_1q : model.depolarizing_2q;
    for (const qubit_t q : qs) {
      if (p_depol > 0.0 && rng.uniform() < p_depol) {
        switch (rng.uniform_index(3)) {
          case 0: noisy.x(q); break;
          case 1: noisy.y(q); break;
          default: noisy.z(q); break;
        }
      }
      if (model.bit_flip > 0.0 && rng.uniform() < model.bit_flip) noisy.x(q);
      if (model.phase_flip > 0.0 && rng.uniform() < model.phase_flip)
        noisy.z(q);
    }
  }
  return noisy;
}

}  // namespace memq::circuit
