#include "circuit/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace memq::circuit {

Circuit make_ghz(qubit_t n) {
  Circuit c(n);
  c.h(0);
  for (qubit_t q = 1; q < n; ++q) c.cx(q - 1, q);
  return c;
}

Circuit make_qft(qubit_t n) {
  Circuit c(n);
  for (qubit_t i = n; i-- > 0;) {
    c.h(i);
    for (qubit_t j = i; j-- > 0;)
      c.cp(j, i, kPi / static_cast<double>(index_t{1} << (i - j)));
  }
  for (qubit_t i = 0; i < n / 2; ++i) c.swap(i, n - 1 - i);
  return c;
}

Circuit make_iqft(qubit_t n) { return make_qft(n).inverse(); }

Circuit make_bernstein_vazirani(qubit_t n, std::uint64_t secret) {
  MEMQ_CHECK(n < 62, "BV size too large");
  MEMQ_CHECK(secret < (std::uint64_t{1} << n),
             "secret does not fit in " << n << " bits");
  Circuit c(n + 1);
  // Ancilla in |->.
  c.x(n);
  for (qubit_t q = 0; q <= n; ++q) c.h(q);
  for (qubit_t q = 0; q < n; ++q)
    if (bits::test(secret, q)) c.cx(q, n);
  for (qubit_t q = 0; q < n; ++q) c.h(q);
  return c;
}

namespace {

/// Phase-flips exactly the `marked` basis state: X-conjugated MCZ.
void append_oracle(Circuit& c, qubit_t n, std::uint64_t marked) {
  for (qubit_t q = 0; q < n; ++q)
    if (!bits::test(marked, q)) c.x(q);
  if (n == 1) {
    c.z(0);
  } else {
    std::vector<qubit_t> ctrls;
    for (qubit_t q = 0; q + 1 < n; ++q) ctrls.push_back(q);
    c.append(Gate::mcz(std::move(ctrls), n - 1));
  }
  for (qubit_t q = 0; q < n; ++q)
    if (!bits::test(marked, q)) c.x(q);
}

}  // namespace

Circuit make_grover(qubit_t n, std::uint64_t marked, int iterations) {
  MEMQ_CHECK(marked < (std::uint64_t{1} << n),
             "marked state does not fit in " << n << " qubits");
  if (iterations <= 0) {
    iterations = std::max(
        1, static_cast<int>(std::floor(
               kPi / 4.0 * std::sqrt(static_cast<double>(index_t{1} << n)))));
  }
  Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) c.h(q);
  for (int it = 0; it < iterations; ++it) {
    append_oracle(c, n, marked);
    // Diffusion: H X (MCZ) X H.
    for (qubit_t q = 0; q < n; ++q) c.h(q);
    append_oracle(c, n, 0);  // phase-flip |0..0>
    for (qubit_t q = 0; q < n; ++q) c.h(q);
  }
  return c;
}

Circuit make_qaoa_maxcut(qubit_t n, const QaoaParams& params) {
  MEMQ_CHECK(params.gammas.size() == params.betas.size(),
             "QAOA gamma/beta length mismatch");
  Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) c.h(q);
  for (std::size_t round = 0; round < params.gammas.size(); ++round) {
    const double gamma = params.gammas[round];
    for (const auto& [a, b] : params.edges) {
      // exp(-i gamma/2 Z_a Z_b) up to phase: CX, RZ, CX.
      c.cx(a, b);
      c.rz(b, gamma);
      c.cx(a, b);
    }
    const double beta = params.betas[round];
    for (qubit_t q = 0; q < n; ++q) c.rx(q, 2.0 * beta);
  }
  return c;
}

Circuit make_random_circuit(qubit_t n, std::size_t depth, std::uint64_t seed,
                            bool haar_1q) {
  Circuit c(n);
  Prng rng(seed);
  for (std::size_t layer = 0; layer < depth; ++layer) {
    for (qubit_t q = 0; q < n; ++q) {
      if (haar_1q) {
        c.u3(q, rng.uniform(0, kPi), rng.uniform(0, 2 * kPi),
             rng.uniform(0, 2 * kPi));
      } else {
        switch (rng.uniform_index(4)) {
          case 0: c.sx(q); break;
          case 1: c.ry(q, kPi / 2); break;
          case 2: c.t(q); break;
          default: c.h(q); break;
        }
      }
    }
    // Random matching for the entangling layer.
    std::vector<qubit_t> order(n);
    for (qubit_t q = 0; q < n; ++q) order[q] = q;
    std::shuffle(order.begin(), order.end(), rng);
    for (qubit_t i = 0; i + 1 < n; i += 2) {
      if (rng.uniform() < 0.5)
        c.cx(order[i], order[i + 1]);
      else
        c.cz(order[i], order[i + 1]);
    }
  }
  return c;
}

Circuit make_phase_estimation(qubit_t counting, double phase) {
  Circuit c(counting + 1);
  const qubit_t eig = counting;
  c.x(eig);  // |1> is the e^{2 pi i phase} eigenstate of the phase gate
  for (qubit_t q = 0; q < counting; ++q) c.h(q);
  for (qubit_t q = 0; q < counting; ++q) {
    // Controlled-U^{2^q}: phase gate angles add.
    const double angle = 2.0 * kPi * phase * static_cast<double>(index_t{1} << q);
    c.cp(q, eig, angle);
  }
  // IQFT on the counting register (its gates only touch qubits < counting).
  const Circuit iqft = make_iqft(counting);
  for (const Gate& g : iqft.gates()) c.append(g);
  return c;
}

Circuit make_w_state(qubit_t n) {
  MEMQ_CHECK(n >= 1, "W state needs at least one qubit");
  Circuit c(n);
  // Cascade construction: |10..0>, then at each step split the remaining
  // excitation amplitude one qubit to the right and re-point the one-hot bit.
  c.x(0);
  for (qubit_t i = 0; i + 1 < n; ++i) {
    const double theta =
        2.0 * std::acos(std::sqrt(1.0 / static_cast<double>(n - i)));
    c.append(Gate::ry(i + 1, theta).with_controls({i}));
    c.cx(i + 1, i);
  }
  return c;
}

Circuit make_adder(qubit_t n_bits) {
  MEMQ_CHECK(n_bits >= 1, "adder needs at least 1 bit");
  const qubit_t a0 = 0, b0 = n_bits;
  const qubit_t carry_in = 2 * n_bits;     // ancilla, starts |0>
  const qubit_t carry_out = 2 * n_bits + 1;
  Circuit c(2 * n_bits + 2);
  // Cuccaro MAJ / UMA ripple-carry adder (quant-ph/0410184).
  const auto maj = [&](qubit_t x, qubit_t y, qubit_t z) {
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
  };
  const auto uma = [&](qubit_t x, qubit_t y, qubit_t z) {
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
  };
  maj(carry_in, b0, a0);
  for (qubit_t i = 1; i < n_bits; ++i) maj(a0 + i - 1, b0 + i, a0 + i);
  c.cx(a0 + n_bits - 1, carry_out);
  for (qubit_t i = n_bits; i-- > 1;) uma(a0 + i - 1, b0 + i, a0 + i);
  uma(carry_in, b0, a0);
  return c;
}

Circuit make_draper_constant_adder(qubit_t n, std::uint64_t k) {
  MEMQ_CHECK(n >= 1, "adder needs at least one bit");
  Circuit c(n);
  c.append(make_qft(n));
  // In Fourier space the amplitude at |j> must gain e^{2 pi i k j / 2^n}
  // = prod_q e^{2 pi i k 2^q / 2^n} per set bit j_q: a phase gate per qubit.
  for (qubit_t q = 0; q < n; ++q) {
    const std::uint64_t wheel = std::uint64_t{1} << (n - q);
    const double angle =
        2.0 * kPi * static_cast<double>(k % wheel) / static_cast<double>(wheel);
    if (angle != 0.0) c.p(q, angle);
  }
  c.append(make_iqft(n));
  return c;
}

namespace {

/// Appends controlled multiplication-by-m (mod 15) on the 4-qubit target
/// register at `base`, controlled by `ctrl`. Every unit mod 15 decomposes
/// into a left bit-rotation (x 2^r) and an optional complement (x -1 == ~x
/// in 4 bits, since 15 - y = y XOR 0b1111).
void append_c_mult15(Circuit& c, qubit_t ctrl, qubit_t base, std::uint64_t m) {
  struct Decomp {
    int rot;
    bool complement;
  };
  Decomp d{};
  switch (m % 15) {
    case 1: d = {0, false}; break;
    case 2: d = {1, false}; break;
    case 4: d = {2, false}; break;
    case 8: d = {3, false}; break;
    case 14: d = {0, true}; break;   // -1
    case 13: d = {1, true}; break;   // -2
    case 11: d = {2, true}; break;   // -4
    case 7: d = {3, true}; break;    // -8
    default:
      MEMQ_THROW(InvalidArgument, "multiplier " << m
                                                << " is not a unit mod 15");
  }
  // Left rotation by r: bit i -> bit (i + r) mod 4, as controlled swaps.
  for (int step = 0; step < d.rot; ++step) {
    c.append(Gate::cswap(ctrl, base + 2, base + 3));
    c.append(Gate::cswap(ctrl, base + 1, base + 2));
    c.append(Gate::cswap(ctrl, base + 0, base + 1));
  }
  if (d.complement)
    for (qubit_t b = 0; b < 4; ++b) c.append(Gate::cx(ctrl, base + b));
}

}  // namespace

int order_mod15(std::uint64_t a) {
  MEMQ_CHECK(a % 15 != 0 && std::gcd(a, std::uint64_t{15}) == 1,
             "a must be coprime to 15");
  std::uint64_t x = a % 15;
  int r = 1;
  while (x != 1) {
    x = (x * a) % 15;
    ++r;
  }
  return r;
}

Circuit make_shor15_order_finding(std::uint64_t a, qubit_t n_count) {
  MEMQ_CHECK(a % 15 > 1 && std::gcd(a, std::uint64_t{15}) == 1,
             "a must be a unit mod 15, a != 1 (got " << a << ")");
  MEMQ_CHECK(n_count >= 2, "need at least two counting qubits");
  const qubit_t target = n_count;
  Circuit c(n_count + 4);
  c.x(target);  // |1> in the target register
  for (qubit_t q = 0; q < n_count; ++q) c.h(q);
  // Controlled-U^(2^q): multiply by a^(2^q) mod 15.
  std::uint64_t m = a % 15;
  for (qubit_t q = 0; q < n_count; ++q) {
    append_c_mult15(c, q, target, m);
    m = (m * m) % 15;
  }
  const Circuit iqft = make_iqft(n_count);
  for (const Gate& g : iqft.gates()) c.append(g);
  return c;
}

Circuit make_trotter_heisenberg(qubit_t n, std::size_t steps, double dt,
                                double j_coupling) {
  MEMQ_CHECK(n >= 2, "Heisenberg chain needs at least two sites");
  Circuit c(n);
  const double theta = 2.0 * j_coupling * dt;  // rotation angle per term
  const auto append_xx = [&](qubit_t a, qubit_t b) {
    // exp(-i theta/2 XX) = (H ox H) CX RZ CX (H ox H).
    c.h(a).h(b);
    c.cx(a, b);
    c.rz(b, theta);
    c.cx(a, b);
    c.h(a).h(b);
  };
  const auto append_yy = [&](qubit_t a, qubit_t b) {
    // Basis change Y -> Z via S^dagger then H.
    c.sdg(a).h(a).sdg(b).h(b);
    c.cx(a, b);
    c.rz(b, theta);
    c.cx(a, b);
    c.h(a).s(a).h(b).s(b);
  };
  const auto append_zz = [&](qubit_t a, qubit_t b) {
    c.cx(a, b);
    c.rz(b, theta);
    c.cx(a, b);
  };
  for (std::size_t step = 0; step < steps; ++step) {
    // Even bonds then odd bonds (checkerboard Trotter ordering).
    for (int parity = 0; parity < 2; ++parity) {
      for (qubit_t q = static_cast<qubit_t>(parity); q + 1 < n; q += 2) {
        append_xx(q, q + 1);
        append_yy(q, q + 1);
        append_zz(q, q + 1);
      }
    }
  }
  return c;
}

Circuit make_teleport(double theta, double phi, double lambda) {
  Circuit c(3);
  c.u3(0, theta, phi, lambda);  // state to teleport
  // Bell pair on qubits 1, 2.
  c.h(1);
  c.cx(1, 2);
  // Bell measurement basis change on 0, 1.
  c.cx(0, 1);
  c.h(0);
  // Deferred corrections (coherent instead of classically controlled).
  c.cx(1, 2);
  c.cz(0, 2);
  return c;
}

std::vector<std::string> workload_names() {
  return {"ghz", "qft", "grover", "bv", "qaoa", "random", "w", "qpe",
          "heisenberg"};
}

Circuit make_workload(const std::string& name, qubit_t n, std::uint64_t seed) {
  Prng rng(seed);
  if (name == "ghz") return make_ghz(n);
  if (name == "qft") return make_qft(n);
  if (name == "grover") {
    // Cap iterations so large-n bench circuits stay tractable.
    const int iters = std::min<int>(
        4, static_cast<int>(kPi / 4 *
                            std::sqrt(static_cast<double>(index_t{1} << n))));
    return make_grover(n, rng.uniform_index(index_t{1} << n), iters);
  }
  if (name == "bv") {
    MEMQ_CHECK(n >= 2, "bv workload needs n >= 2");
    return make_bernstein_vazirani(n - 1,
                                   rng.uniform_index(index_t{1} << (n - 1)));
  }
  if (name == "qaoa") {
    QaoaParams p;
    // Ring graph plus a few chords.
    for (qubit_t q = 0; q < n; ++q)
      p.edges.emplace_back(q, (q + 1) % n);
    for (qubit_t q = 0; q + n / 2 < n; ++q)
      if (rng.uniform() < 0.3) p.edges.emplace_back(q, q + n / 2);
    p.gammas = {0.7, 0.4};
    p.betas = {0.3, 0.6};
    return make_qaoa_maxcut(n, p);
  }
  if (name == "random") return make_random_circuit(n, 8, seed);
  if (name == "w") return make_w_state(n);
  if (name == "qpe") {
    MEMQ_CHECK(n >= 2, "qpe workload needs n >= 2");
    return make_phase_estimation(n - 1, 0.15625);
  }
  if (name == "heisenberg") return make_trotter_heisenberg(n, 4, 0.1);
  MEMQ_THROW(InvalidArgument, "unknown workload '" << name << "'");
}

}  // namespace memq::circuit
