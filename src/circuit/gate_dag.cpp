#include "circuit/gate_dag.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace memq::circuit {

namespace {

constexpr double kEps = 1e-12;

bool near(amp_t a, amp_t b) { return std::abs(a - b) <= kEps; }
bool near_zero(amp_t a) { return std::abs(a) <= kEps; }

WireRole target_role(const Gate& g) {
  switch (g.kind) {
    case GateKind::kSwap:
    case GateKind::kMeasure:
    case GateKind::kReset:
    case GateKind::kBarrier:
      return WireRole::kOther;
    default:
      break;
  }
  const Mat2 m = g.matrix1q();
  const bool diagonal = near_zero(m[1]) && near_zero(m[2]);
  if (diagonal && near(m[0], m[3])) return WireRole::kScalar;
  if (diagonal) return WireRole::kZ;
  if (near(m[0], m[3]) && near(m[1], m[2])) return WireRole::kX;
  if (near(m[0], m[3]) && near(m[1], -m[2])) return WireRole::kY;
  return WireRole::kOther;
}

}  // namespace

WireRole wire_role(const Gate& gate, qubit_t wire) {
  for (const qubit_t c : gate.controls)
    if (c == wire) return WireRole::kZ;
  for (const qubit_t t : gate.targets)
    if (t == wire) return target_role(gate);
  return WireRole::kScalar;
}

bool roles_commute(WireRole a, WireRole b) noexcept {
  if (a == WireRole::kScalar || b == WireRole::kScalar) return true;
  if (a == WireRole::kOther || b == WireRole::kOther) return false;
  return a == b;
}

bool gates_commute(const Gate& a, const Gate& b) {
  if (a.is_barrier() || b.is_barrier()) return false;
  if (a.is_nonunitary() || b.is_nonunitary()) return false;
  for (const qubit_t w : a.qubits())
    if (!roles_commute(wire_role(a, w), wire_role(b, w))) return false;
  return true;
}

GateDag build_gate_dag(const Circuit& circuit) {
  GateDag dag;
  dag.nodes.reserve(circuit.size());

  // Per-wire same-role group chain (see header: adjacent groups are fully
  // cross-linked, giving transitive paths between any role-incompatible
  // pair on the wire).
  struct WireChain {
    WireRole role = WireRole::kScalar;
    std::vector<std::size_t> cur;
    std::vector<std::size_t> prev;
  };
  std::unordered_map<qubit_t, WireChain> chains;
  std::vector<std::size_t> since_fence;
  bool have_fence = false;
  std::size_t last_fence = 0;

  const auto add_edge = [&dag](std::size_t from, std::size_t to) {
    dag.nodes[to].preds.push_back(from);
  };

  for (std::size_t gi = 0; gi < circuit.size(); ++gi) {
    const Gate& g = circuit[gi];
    if (g.is_barrier()) continue;  // partitioner parity: dropped, no flush
    const std::size_t n = dag.nodes.size();
    dag.nodes.push_back({g, gi, {}, {}});

    if (g.is_nonunitary()) {
      // Full fence: ordered after everything since the previous fence.
      for (const std::size_t m : since_fence) add_edge(m, n);
      if (have_fence) add_edge(last_fence, n);
      since_fence.clear();
      chains.clear();
      have_fence = true;
      last_fence = n;
      continue;
    }

    if (have_fence) add_edge(last_fence, n);
    since_fence.push_back(n);

    for (const qubit_t w : g.qubits()) {
      const WireRole r = wire_role(g, w);
      if (r == WireRole::kScalar) continue;  // no constraint through w
      WireChain& ch = chains[w];
      if (!ch.cur.empty() && ch.role == r && r != WireRole::kOther) {
        // Joins the current group: commutes with its members on this wire,
        // but must follow the whole previous group.
        for (const std::size_t m : ch.prev) add_edge(m, n);
        ch.cur.push_back(n);
      } else {
        ch.prev = std::move(ch.cur);
        ch.cur.clear();
        ch.cur.push_back(n);
        ch.role = r;
        for (const std::size_t m : ch.prev) add_edge(m, n);
      }
    }
  }

  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    auto& preds = dag.nodes[i].preds;
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    for (const std::size_t p : preds) dag.nodes[p].succs.push_back(i);
  }
  return dag;
}

bool GateDag::is_legal_order(const std::vector<std::size_t>& order) const {
  if (order.size() != nodes.size()) return false;
  constexpr std::size_t kUnplaced = static_cast<std::size_t>(-1);
  std::vector<std::size_t> pos(nodes.size(), kUnplaced);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= nodes.size() || pos[order[i]] != kUnplaced) return false;
    pos[order[i]] = i;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (const std::size_t p : nodes[i].preds)
      if (pos[p] >= pos[i]) return false;
  return true;
}

}  // namespace memq::circuit
