#include "circuit/transpile.hpp"

#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace memq::circuit {
namespace {

constexpr amp_t kI1{0.0, 1.0};

Mat2 rz_mat(double a) {
  return {std::exp(-kI1 * (a / 2)), amp_t{}, amp_t{}, std::exp(kI1 * (a / 2))};
}

Mat2 ry_mat(double a) {
  const double c = std::cos(a / 2), s = std::sin(a / 2);
  return {amp_t{c, 0}, amp_t{-s, 0}, amp_t{s, 0}, amp_t{c, 0}};
}

const Mat2 kIdentity{amp_t{1, 0}, amp_t{}, amp_t{}, amp_t{1, 0}};

/// Principal square root of a 2x2 unitary (normal matrix), via eigen-
/// decomposition. sqrt(U) is itself unitary.
Mat2 mat2_sqrt(const Mat2& u) {
  const amp_t a = u[0], b = u[1], c = u[2], d = u[3];
  if (std::abs(b) < 1e-14 && std::abs(c) < 1e-14) {
    return {std::sqrt(a), amp_t{}, amp_t{}, std::sqrt(d)};
  }
  const amp_t tr = a + d;
  const amp_t det = a * d - b * c;
  const amp_t disc = std::sqrt(tr * tr - 4.0 * det);
  const amp_t l1 = (tr + disc) * 0.5;
  const amp_t l2 = (tr - disc) * 0.5;
  // Eigenvectors: for a normal matrix these are orthogonal.
  amp_t v1x, v1y, v2x, v2y;
  if (std::abs(b) >= std::abs(c)) {
    v1x = b;
    v1y = l1 - a;
    v2x = b;
    v2y = l2 - a;
  } else {
    v1x = l1 - d;
    v1y = c;
    v2x = l2 - d;
    v2y = c;
  }
  const double n1 = std::sqrt(std::norm(v1x) + std::norm(v1y));
  const double n2 = std::sqrt(std::norm(v2x) + std::norm(v2y));
  v1x /= n1;
  v1y /= n1;
  v2x /= n2;
  v2y /= n2;
  const amp_t s1 = std::sqrt(l1), s2 = std::sqrt(l2);
  // U^1/2 = s1 * v1 v1^dag + s2 * v2 v2^dag.
  return {s1 * v1x * std::conj(v1x) + s2 * v2x * std::conj(v2x),
          s1 * v1x * std::conj(v1y) + s2 * v2x * std::conj(v2y),
          s1 * v1y * std::conj(v1x) + s2 * v2y * std::conj(v2x),
          s1 * v1y * std::conj(v1y) + s2 * v2y * std::conj(v2y)};
}

void emit_toffoli(Circuit& out, qubit_t a, qubit_t b, qubit_t c) {
  out.h(c);
  out.cx(b, c);
  out.tdg(c);
  out.cx(a, c);
  out.t(c);
  out.cx(b, c);
  out.tdg(c);
  out.cx(a, c);
  out.t(b);
  out.t(c);
  out.h(c);
  out.cx(a, b);
  out.t(a);
  out.tdg(b);
  out.cx(a, b);
}

void emit_lowered(Circuit& out, const Gate& g);

/// Controlled-U with exactly one control, ABC decomposition.
void emit_controlled_1q(Circuit& out, qubit_t ctrl, qubit_t tgt,
                        const Mat2& u) {
  const auto [theta, phi, lambda, alpha] = zyz_decompose(u);
  const Mat2 a_mat = mat2_mul(rz_mat(phi), ry_mat(theta / 2));
  const Mat2 b_mat =
      mat2_mul(ry_mat(-theta / 2), rz_mat(-(phi + lambda) / 2));
  const Mat2 c_mat = rz_mat((lambda - phi) / 2);
  if (!mat2_approx_equal(c_mat, kIdentity, 1e-14))
    out.append(Gate::unitary1q(tgt, c_mat));
  out.cx(ctrl, tgt);
  if (!mat2_approx_equal(b_mat, kIdentity, 1e-14))
    out.append(Gate::unitary1q(tgt, b_mat));
  out.cx(ctrl, tgt);
  if (!mat2_approx_equal(a_mat, kIdentity, 1e-14))
    out.append(Gate::unitary1q(tgt, a_mat));
  // U = e^{i delta} Rz(phi) Ry(theta) Rz(lambda) with
  // delta = alpha + (phi + lambda)/2 (u3 carries that half-angle phase).
  const double delta = alpha + (phi + lambda) / 2;
  if (std::fabs(delta) > 1e-14) out.p(ctrl, delta);
}

/// k>=2 controls on a single-target unitary: Barenco recursion.
void emit_multi_controlled_1q(Circuit& out, const std::vector<qubit_t>& ctrls,
                              qubit_t tgt, const Mat2& u) {
  if (ctrls.size() == 1) {
    emit_controlled_1q(out, ctrls[0], tgt, u);
    return;
  }
  const Mat2 v = mat2_sqrt(u);
  const qubit_t last = ctrls.back();
  const std::vector<qubit_t> rest(ctrls.begin(), ctrls.end() - 1);
  emit_controlled_1q(out, last, tgt, v);
  emit_lowered(out, Gate::mcx(rest, last));
  emit_controlled_1q(out, last, tgt, mat2_dagger(v));
  emit_lowered(out, Gate::mcx(rest, last));
  emit_multi_controlled_1q(out, rest, tgt, v);
}

void emit_lowered(Circuit& out, const Gate& g) {
  if (g.is_barrier() || g.is_nonunitary()) {
    out.append(g);
    return;
  }
  if (g.kind == GateKind::kSwap) {
    const qubit_t a = g.targets[0], b = g.targets[1];
    if (g.controls.empty()) {
      out.cx(a, b);
      out.cx(b, a);
      out.cx(a, b);
    } else {
      // cswap = cx(b,a) . c-ccx . cx(b,a), lowered recursively.
      out.cx(b, a);
      std::vector<qubit_t> ctrls = g.controls;
      ctrls.push_back(a);
      emit_lowered(out, Gate{GateKind::kX, {b}, std::move(ctrls), {}});
      out.cx(b, a);
    }
    return;
  }
  // Single-target kinds from here on.
  const qubit_t tgt = g.targets.at(0);
  if (g.controls.empty()) {
    out.append(g);
    return;
  }
  if (g.kind == GateKind::kX && g.controls.size() == 1) {
    out.cx(g.controls[0], tgt);
    return;
  }
  if (g.kind == GateKind::kX && g.controls.size() == 2) {
    emit_toffoli(out, g.controls[0], g.controls[1], tgt);
    return;
  }
  emit_multi_controlled_1q(out, g.controls, tgt, g.matrix1q());
}

}  // namespace

std::array<double, 4> zyz_decompose(const Mat2& m) {
  MEMQ_CHECK(mat2_is_unitary(m, 1e-9), "zyz_decompose: matrix not unitary");
  const double cos_half = std::abs(m[0]);
  const double sin_half = std::abs(m[2]);
  const double theta = 2.0 * std::atan2(sin_half, cos_half);
  double alpha, phi, lambda;
  constexpr double kEps = 1e-12;
  if (cos_half > kEps && sin_half > kEps) {
    alpha = std::arg(m[0]);
    phi = std::arg(m[2]) - alpha;
    lambda = std::arg(-m[1]) - alpha;
  } else if (cos_half > kEps) {
    // theta ~ 0: only phi + lambda observable.
    alpha = std::arg(m[0]);
    phi = 0.0;
    lambda = std::arg(m[3]) - alpha;
  } else {
    // theta ~ pi: only phi - lambda observable.
    alpha = std::arg(m[2]);
    phi = 0.0;
    lambda = std::arg(-m[1]) - alpha;
  }
  return {theta, phi, lambda, alpha};
}

Circuit decompose_to_cx_basis(const Circuit& circuit) {
  Circuit out(circuit.n_qubits());
  for (const Gate& g : circuit.gates()) emit_lowered(out, g);
  return out;
}

Circuit fuse_1q_runs(const Circuit& circuit) {
  Circuit out(circuit.n_qubits());
  std::vector<std::optional<Mat2>> pending(circuit.n_qubits());

  const auto flush = [&](qubit_t q) {
    if (!pending[q]) return;
    if (!mat2_approx_equal(*pending[q], kIdentity, 1e-13))
      out.append(Gate::unitary1q(q, *pending[q]));
    pending[q].reset();
  };

  for (const Gate& g : circuit.gates()) {
    const bool fusable = g.controls.empty() && g.targets.size() == 1 &&
                         !g.is_nonunitary() && !g.is_barrier();
    if (fusable) {
      const qubit_t q = g.targets[0];
      const Mat2 m = g.matrix1q();
      pending[q] = pending[q] ? mat2_mul(m, *pending[q]) : m;
      continue;
    }
    for (const qubit_t q : g.qubits()) flush(q);
    if (g.is_barrier() && g.targets.empty())
      for (qubit_t q = 0; q < circuit.n_qubits(); ++q) flush(q);
    out.append(g);
  }
  for (qubit_t q = 0; q < circuit.n_qubits(); ++q) flush(q);
  return out;
}

std::size_t executable_gate_count(const Circuit& circuit) {
  std::size_t n = 0;
  for (const Gate& g : circuit.gates())
    if (!g.is_barrier()) ++n;
  return n;
}

}  // namespace memq::circuit
