#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace memq::circuit {

Circuit::Circuit(qubit_t n_qubits) : n_qubits_(n_qubits) {
  MEMQ_CHECK(n_qubits >= 1 && n_qubits <= 62,
             "qubit count " << n_qubits << " out of supported range [1, 62]");
}

Circuit& Circuit::append(Gate gate) {
  const auto qs = gate.qubits();
  MEMQ_CHECK(!gate.targets.empty() || gate.is_barrier(),
             "gate '" << gate.base_name() << "' has no targets");
  for (const qubit_t q : qs)
    MEMQ_CHECK(q < n_qubits_, "gate " << gate.to_string() << " touches qubit "
                                      << q << " of a " << n_qubits_
                                      << "-qubit register");
  std::vector<qubit_t> sorted = qs;
  std::sort(sorted.begin(), sorted.end());
  MEMQ_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "gate " << gate.to_string() << " repeats a qubit");
  switch (gate.kind) {
    case GateKind::kSwap:
      MEMQ_CHECK(gate.targets.size() == 2, "swap needs two targets");
      break;
    case GateKind::kBarrier:
      break;
    default:
      MEMQ_CHECK(gate.targets.size() == 1,
                 "gate '" << gate.base_name() << "' needs one target");
  }
  gates_.push_back(std::move(gate));
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  MEMQ_CHECK(other.n_qubits_ == n_qubits_,
             "appending a " << other.n_qubits_ << "-qubit circuit to a "
                            << n_qubits_ << "-qubit circuit");
  for (const Gate& g : other.gates_) append(g);
  return *this;
}

Circuit Circuit::inverse() const {
  Circuit inv(n_qubits_);
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
    inv.append(it->inverse());
  return inv;
}

bool Circuit::has_nonunitary() const {
  return std::any_of(gates_.begin(), gates_.end(),
                     [](const Gate& g) { return g.is_nonunitary(); });
}

CircuitStats Circuit::stats() const {
  CircuitStats st;
  std::vector<std::size_t> layer_of(n_qubits_, 0);
  for (const Gate& g : gates_) {
    if (g.is_barrier()) {
      // A barrier synchronizes the qubits it spans (all if none listed).
      std::size_t level = 0;
      const auto qs = g.targets.empty() ? std::vector<qubit_t>{} : g.targets;
      if (qs.empty()) {
        for (const auto l : layer_of) level = std::max(level, l);
        for (auto& l : layer_of) l = level;
      } else {
        for (const qubit_t q : qs) level = std::max(level, layer_of[q]);
        for (const qubit_t q : qs) layer_of[q] = level;
      }
      continue;
    }
    ++st.n_gates;
    ++st.by_name[std::string(g.controls.size(), 'c') + g.base_name()];
    const auto qs = g.qubits();
    if (qs.size() == 1)
      ++st.n_1q;
    else if (qs.size() == 2)
      ++st.n_2q;
    else
      ++st.n_multi;
    if (g.is_diagonal()) ++st.n_diagonal;
    if (g.kind == GateKind::kMeasure) ++st.n_measure;

    std::size_t level = 0;
    for (const qubit_t q : qs) level = std::max(level, layer_of[q]);
    ++level;
    for (const qubit_t q : qs) layer_of[q] = level;
    st.depth = std::max(st.depth, level);
  }
  return st;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit(" << n_qubits_ << " qubits, " << gates_.size() << " gates)\n";
  for (const Gate& g : gates_) os << "  " << g.to_string() << '\n';
  return os.str();
}

}  // namespace memq::circuit
