// Stochastic Pauli noise via the quantum-trajectory method.
//
// The engines are pure state-vector backends, so mixed-state channels are
// simulated by sampling unitary trajectories: after every gate, each touched
// qubit suffers a random Pauli error with the configured probabilities.
// Averaging observables over trajectories converges to the channel's action
// (exact for Pauli channels). This is how NISQ-era noise studies run on
// state-vector simulators, and MEMQSim's many-cheap-runs profile is exactly
// the trajectory workload.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace memq::circuit {

struct NoiseModel {
  /// Depolarizing probability per touched qubit after each 1-qubit gate:
  /// with probability p a uniformly random Pauli (X, Y or Z) is applied.
  double depolarizing_1q = 0.0;
  /// Same, after each multi-qubit (controlled / swap) gate.
  double depolarizing_2q = 0.0;
  /// Independent bit-flip (X) probability per touched qubit per gate.
  double bit_flip = 0.0;
  /// Independent phase-flip (Z) probability per touched qubit per gate.
  double phase_flip = 0.0;

  bool enabled() const noexcept {
    return depolarizing_1q > 0 || depolarizing_2q > 0 || bit_flip > 0 ||
           phase_flip > 0;
  }
};

/// Samples one noisy trajectory: a copy of `circuit` with Pauli errors
/// inserted after gates according to `model`. Deterministic in `seed`;
/// measure/reset/barrier gates pass through without attached noise.
Circuit sample_noisy_trajectory(const Circuit& circuit,
                                const NoiseModel& model, std::uint64_t seed);

}  // namespace memq::circuit
