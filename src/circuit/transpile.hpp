// Circuit transformation passes.
//
// The engines apply controlled/multi-qubit gates natively, so these passes
// exist for (a) interoperability with restricted-basis backends, (b) the
// 1q-fusion optimization the pipeline uses to shrink local stages, and
// (c) QASM emission (ZYZ angles for fused unitaries).
#pragma once

#include <array>

#include "circuit/circuit.hpp"

namespace memq::circuit {

/// ZYZ Euler angles of a 2x2 unitary: returns {theta, phi, lambda, alpha}
/// such that U = e^{i alpha} * u3(theta, phi, lambda).
std::array<double, 4> zyz_decompose(const Mat2& m);

/// Lowers every gate to the {1-qubit unitary, CX} basis:
///   swap -> 3 CX; ccx -> the standard 6-CX Toffoli network;
///   cswap -> cx + ccx + cx, then the ccx lowered;
///   controlled-1q (one control) -> ABC decomposition (2 CX + 1q gates);
///   gates with >= 2 controls on non-X targets are lowered recursively via
///   a controlled-sqrt(U) construction (no ancillas, gate count O(3^k)).
/// Barriers are preserved; measure/reset pass through.
Circuit decompose_to_cx_basis(const Circuit& circuit);

/// Merges maximal runs of adjacent uncontrolled 1-qubit gates on the same
/// qubit into single kUnitary1q gates (matrix product), dropping the runs
/// that multiply out to identity. Order of non-commuting neighbours is
/// preserved: a run is broken by any gate touching the qubit.
Circuit fuse_1q_runs(const Circuit& circuit);

/// Total gates whose application the engines must execute (excludes
/// barriers); convenience for before/after comparisons in benches.
std::size_t executable_gate_count(const Circuit& circuit);

}  // namespace memq::circuit
