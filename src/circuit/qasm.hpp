// OpenQASM 2.0 front end.
//
// Supports the full OpenQASM 2.0 gate model: qreg/creg declarations,
// `include "qelib1.inc"` (built in), user `gate` definitions with parameter
// expressions, whole-register broadcast, measure/reset/barrier, and the
// standard expression grammar (+ - * / ^, pi, sin/cos/tan/exp/ln/sqrt).
// Classical conditionals (`if (c==n)`) are rejected with a ParseError: the
// simulation engines are pure state-vector backends.
//
// Registers are flattened into one qubit index space in declaration order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace memq::circuit {

struct RegisterInfo {
  qubit_t offset = 0;  ///< first flat index
  qubit_t size = 0;
};

struct QasmProgram {
  Circuit circuit;
  std::map<std::string, RegisterInfo> qregs;
  std::map<std::string, RegisterInfo> cregs;
  /// (flat qubit, flat clbit) pairs in program order.
  std::vector<std::pair<qubit_t, qubit_t>> measurements;
};

/// Parses OpenQASM 2.0 source text. Throws ParseError with line/column info.
QasmProgram parse_qasm(const std::string& source);

/// Parses a .qasm file from disk.
QasmProgram parse_qasm_file(const std::string& path);

/// Serializes a circuit back to OpenQASM 2.0 (single register "q").
/// Unitary1q gates are emitted as u3 via ZYZ decomposition.
std::string to_qasm(const Circuit& circuit);

}  // namespace memq::circuit
