#include "circuit/gate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace memq::circuit {

namespace {

constexpr amp_t kI1{0.0, 1.0};

Mat2 rotation_x(double th) {
  const double c = std::cos(th / 2), s = std::sin(th / 2);
  return {amp_t{c, 0}, amp_t{0, -s}, amp_t{0, -s}, amp_t{c, 0}};
}

Mat2 rotation_y(double th) {
  const double c = std::cos(th / 2), s = std::sin(th / 2);
  return {amp_t{c, 0}, amp_t{-s, 0}, amp_t{s, 0}, amp_t{c, 0}};
}

Mat2 rotation_z(double th) {
  return {std::exp(-kI1 * (th / 2)), amp_t{0, 0}, amp_t{0, 0},
          std::exp(kI1 * (th / 2))};
}

Mat2 u3_matrix(double th, double ph, double lam) {
  const double c = std::cos(th / 2), s = std::sin(th / 2);
  return {amp_t{c, 0}, -std::exp(kI1 * lam) * s, std::exp(kI1 * ph) * s,
          std::exp(kI1 * (ph + lam)) * c};
}

}  // namespace

Gate Gate::unitary1q(qubit_t q, const Mat2& m) {
  MEMQ_CHECK(mat2_is_unitary(m, 1e-9), "unitary1q matrix is not unitary");
  Gate g{GateKind::kUnitary1q, {q}, {}, {}};
  g.params.reserve(8);
  for (const amp_t& e : m) {
    g.params.push_back(e.real());
    g.params.push_back(e.imag());
  }
  return g;
}

Mat2 Gate::matrix1q() const {
  static constexpr double kInvSqrt2 = 0.70710678118654752440;
  switch (kind) {
    case GateKind::kI:
      return {amp_t{1, 0}, amp_t{}, amp_t{}, amp_t{1, 0}};
    case GateKind::kX:
      return {amp_t{}, amp_t{1, 0}, amp_t{1, 0}, amp_t{}};
    case GateKind::kY:
      return {amp_t{}, amp_t{0, -1}, amp_t{0, 1}, amp_t{}};
    case GateKind::kZ:
      return {amp_t{1, 0}, amp_t{}, amp_t{}, amp_t{-1, 0}};
    case GateKind::kH:
      return {amp_t{kInvSqrt2, 0}, amp_t{kInvSqrt2, 0}, amp_t{kInvSqrt2, 0},
              amp_t{-kInvSqrt2, 0}};
    case GateKind::kS:
      return {amp_t{1, 0}, amp_t{}, amp_t{}, amp_t{0, 1}};
    case GateKind::kSdg:
      return {amp_t{1, 0}, amp_t{}, amp_t{}, amp_t{0, -1}};
    case GateKind::kT:
      return {amp_t{1, 0}, amp_t{}, amp_t{}, std::exp(kI1 * (kPi / 4))};
    case GateKind::kTdg:
      return {amp_t{1, 0}, amp_t{}, amp_t{}, std::exp(-kI1 * (kPi / 4))};
    case GateKind::kSX:
      return {amp_t{0.5, 0.5}, amp_t{0.5, -0.5}, amp_t{0.5, -0.5},
              amp_t{0.5, 0.5}};
    case GateKind::kRX:
      return rotation_x(params.at(0));
    case GateKind::kRY:
      return rotation_y(params.at(0));
    case GateKind::kRZ:
      return rotation_z(params.at(0));
    case GateKind::kPhase:
      return {amp_t{1, 0}, amp_t{}, amp_t{}, std::exp(kI1 * params.at(0))};
    case GateKind::kU3:
      return u3_matrix(params.at(0), params.at(1), params.at(2));
    case GateKind::kUnitary1q: {
      MEMQ_CHECK(params.size() == 8, "unitary1q needs 8 params");
      return {amp_t{params[0], params[1]}, amp_t{params[2], params[3]},
              amp_t{params[4], params[5]}, amp_t{params[6], params[7]}};
    }
    default:
      MEMQ_THROW(InvalidArgument,
                 "gate '" << base_name() << "' has no 1-qubit matrix");
  }
}

Mat4 Gate::matrix2q() const {
  if (kind == GateKind::kSwap) {
    Mat4 m{};
    m[0 * 4 + 0] = 1;
    m[1 * 4 + 2] = 1;
    m[2 * 4 + 1] = 1;
    m[3 * 4 + 3] = 1;
    return m;
  }
  MEMQ_THROW(InvalidArgument,
             "gate '" << base_name() << "' has no 2-qubit matrix");
}

bool Gate::is_diagonal() const noexcept {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kBarrier:
      return true;
    default:
      return false;
  }
}

std::vector<qubit_t> Gate::qubits() const {
  std::vector<qubit_t> qs = targets;
  qs.insert(qs.end(), controls.begin(), controls.end());
  return qs;
}

qubit_t Gate::max_qubit() const {
  qubit_t m = 0;
  for (const qubit_t q : targets) m = std::max(m, q);
  for (const qubit_t q : controls) m = std::max(m, q);
  return m;
}

Gate Gate::inverse() const {
  MEMQ_CHECK(!is_nonunitary(), "measure/reset have no inverse");
  Gate g = *this;
  switch (kind) {
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kSwap:
    case GateKind::kBarrier:
      return g;  // self-inverse
    case GateKind::kS:
      g.kind = GateKind::kSdg;
      return g;
    case GateKind::kSdg:
      g.kind = GateKind::kS;
      return g;
    case GateKind::kT:
      g.kind = GateKind::kTdg;
      return g;
    case GateKind::kTdg:
      g.kind = GateKind::kT;
      return g;
    case GateKind::kSX: {
      // SX^-1 = SX^dagger, expressed as an explicit unitary.
      return unitary1q(targets.at(0), mat2_dagger(matrix1q()))
          .with_controls(controls);
    }
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
      g.params[0] = -g.params[0];
      return g;
    case GateKind::kU3:
      // U3(th, ph, lam)^-1 = U3(-th, -lam, -ph).
      g.params = {-params[0], -params[2], -params[1]};
      return g;
    case GateKind::kUnitary1q:
      return unitary1q(targets.at(0), mat2_dagger(matrix1q()))
          .with_controls(controls);
    default:
      MEMQ_THROW(InvalidArgument, "cannot invert gate " << base_name());
  }
}

std::string Gate::base_name() const {
  switch (kind) {
    case GateKind::kI: return "id";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kSX: return "sx";
    case GateKind::kRX: return "rx";
    case GateKind::kRY: return "ry";
    case GateKind::kRZ: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kU3: return "u3";
    case GateKind::kUnitary1q: return "unitary";
    case GateKind::kSwap: return "swap";
    case GateKind::kMeasure: return "measure";
    case GateKind::kReset: return "reset";
    case GateKind::kBarrier: return "barrier";
  }
  return "?";
}

std::string Gate::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < controls.size(); ++i) os << 'c';
  os << base_name();
  if (!params.empty() && kind != GateKind::kUnitary1q) {
    os << '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i) os << ", ";
      os << params[i];
    }
    os << ')';
  }
  os << ' ';
  bool first = true;
  for (const qubit_t c : controls) {
    if (!first) os << ", ";
    os << 'q' << c;
    first = false;
  }
  for (const qubit_t t : targets) {
    if (!first) os << ", ";
    os << 'q' << t;
    first = false;
  }
  return os.str();
}

Mat2 mat2_mul(const Mat2& a, const Mat2& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Mat2 mat2_dagger(const Mat2& m) {
  return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])};
}

bool mat2_approx_equal(const Mat2& a, const Mat2& b, double tol) {
  for (std::size_t i = 0; i < 4; ++i)
    if (std::abs(a[i] - b[i]) > tol) return false;
  return true;
}

bool mat2_is_unitary(const Mat2& m, double tol) {
  const Mat2 prod = mat2_mul(m, mat2_dagger(m));
  const Mat2 id{amp_t{1, 0}, {}, {}, amp_t{1, 0}};
  return mat2_approx_equal(prod, id, tol);
}

}  // namespace memq::circuit
