// Circuit IR: an ordered gate list over a fixed-width qubit register, with
// validation, statistics and structural transforms.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/types.hpp"

namespace memq::circuit {

struct CircuitStats {
  std::size_t n_gates = 0;       ///< excluding barriers
  std::size_t n_1q = 0;
  std::size_t n_2q = 0;          ///< exactly two distinct qubits involved
  std::size_t n_multi = 0;       ///< three or more qubits involved
  std::size_t n_diagonal = 0;
  std::size_t n_measure = 0;
  std::size_t depth = 0;         ///< greedy ASAP layering, barriers honored
  std::map<std::string, std::size_t> by_name;
};

class Circuit {
 public:
  explicit Circuit(qubit_t n_qubits);

  qubit_t n_qubits() const noexcept { return n_qubits_; }
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  std::size_t size() const noexcept { return gates_.size(); }
  bool empty() const noexcept { return gates_.empty(); }
  const Gate& operator[](std::size_t i) const { return gates_[i]; }

  /// Appends after validating qubit ranges and target/control disjointness.
  Circuit& append(Gate gate);

  /// Appends every gate of `other` (same register width required).
  Circuit& append(const Circuit& other);

  // Fluent sugar for the common gates, e.g. circ.h(0).cx(0, 1).
  Circuit& i(qubit_t q) { return append(Gate::i(q)); }
  Circuit& x(qubit_t q) { return append(Gate::x(q)); }
  Circuit& y(qubit_t q) { return append(Gate::y(q)); }
  Circuit& z(qubit_t q) { return append(Gate::z(q)); }
  Circuit& h(qubit_t q) { return append(Gate::h(q)); }
  Circuit& s(qubit_t q) { return append(Gate::s(q)); }
  Circuit& sdg(qubit_t q) { return append(Gate::sdg(q)); }
  Circuit& t(qubit_t q) { return append(Gate::t(q)); }
  Circuit& tdg(qubit_t q) { return append(Gate::tdg(q)); }
  Circuit& sx(qubit_t q) { return append(Gate::sx(q)); }
  Circuit& rx(qubit_t q, double a) { return append(Gate::rx(q, a)); }
  Circuit& ry(qubit_t q, double a) { return append(Gate::ry(q, a)); }
  Circuit& rz(qubit_t q, double a) { return append(Gate::rz(q, a)); }
  Circuit& p(qubit_t q, double a) { return append(Gate::phase(q, a)); }
  Circuit& u3(qubit_t q, double th, double ph, double lam) {
    return append(Gate::u3(q, th, ph, lam));
  }
  Circuit& cx(qubit_t c, qubit_t t) { return append(Gate::cx(c, t)); }
  Circuit& cy(qubit_t c, qubit_t t) { return append(Gate::cy(c, t)); }
  Circuit& cz(qubit_t c, qubit_t t) { return append(Gate::cz(c, t)); }
  Circuit& cp(qubit_t c, qubit_t t, double a) {
    return append(Gate::cp(c, t, a));
  }
  Circuit& swap(qubit_t a, qubit_t b) { return append(Gate::swap(a, b)); }
  Circuit& ccx(qubit_t c1, qubit_t c2, qubit_t t) {
    return append(Gate::ccx(c1, c2, t));
  }
  Circuit& measure(qubit_t q) { return append(Gate::measure(q)); }

  /// Adjoint circuit: gates reversed and inverted. Throws if any gate is
  /// non-unitary.
  Circuit inverse() const;

  /// Gate/depth statistics.
  CircuitStats stats() const;

  /// True if any gate measures or resets.
  bool has_nonunitary() const;

  /// Multi-line listing, one gate per line.
  std::string to_string() const;

 private:
  qubit_t n_qubits_;
  std::vector<Gate> gates_;
};

}  // namespace memq::circuit
