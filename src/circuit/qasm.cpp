#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <functional>
#include <optional>
#include <memory>
#include <sstream>

#include "circuit/transpile.hpp"
#include "common/error.hpp"

namespace memq::circuit {
namespace {

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

enum class Tok : std::uint8_t { kId, kNumber, kString, kSymbol, kEnd };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  double number = 0.0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, current_.line, current_.col);
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_.line = line_;
    current_.col = col_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::kEnd;
      current_.text.clear();
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        bump();
      current_.kind = Tok::kId;
      current_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
               (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E'))))
        bump();
      current_.kind = Tok::kNumber;
      current_.text = src_.substr(start, pos_ - start);
      try {
        current_.number = std::stod(current_.text);
      } catch (const std::exception&) {
        throw ParseError("malformed number '" + current_.text + "'", line_,
                         col_);
      }
      return;
    }
    if (c == '"') {
      bump();
      std::size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') bump();
      if (pos_ >= src_.size())
        throw ParseError("unterminated string", line_, col_);
      current_.kind = Tok::kString;
      current_.text = src_.substr(start, pos_ - start);
      bump();  // closing quote
      return;
    }
    // Multi-char symbols: -> and ==
    if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
      current_.kind = Tok::kSymbol;
      current_.text = "->";
      bump();
      bump();
      return;
    }
    if (c == '=' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '=') {
      current_.kind = Tok::kSymbol;
      current_.text = "==";
      bump();
      bump();
      return;
    }
    static const std::string kSingles = ";,(){}[]+-*/^";
    if (kSingles.find(c) != std::string::npos) {
      current_.kind = Tok::kSymbol;
      current_.text = std::string(1, c);
      bump();
      return;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", line_,
                     col_);
  }

  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])))
        bump();
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
        continue;
      }
      return;
    }
  }

  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Token current_;
};

// --------------------------------------------------------------------------
// Gate-definition AST (bodies are stored unexpanded and instantiated on use)
// --------------------------------------------------------------------------

struct ExprNode;
using ExprPtr = std::shared_ptr<ExprNode>;

struct ExprNode {
  enum class Op {
    kConst, kParam, kAdd, kSub, kMul, kDiv, kPow, kNeg,
    kSin, kCos, kTan, kExp, kLn, kSqrt
  };
  Op op;
  double value = 0.0;       // kConst
  std::size_t param = 0;    // kParam: index into the formal parameter list
  ExprPtr a, b;

  double eval(const std::vector<double>& params) const {
    switch (op) {
      case Op::kConst: return value;
      case Op::kParam: return params.at(param);
      case Op::kAdd: return a->eval(params) + b->eval(params);
      case Op::kSub: return a->eval(params) - b->eval(params);
      case Op::kMul: return a->eval(params) * b->eval(params);
      case Op::kDiv: return a->eval(params) / b->eval(params);
      case Op::kPow: return std::pow(a->eval(params), b->eval(params));
      case Op::kNeg: return -a->eval(params);
      case Op::kSin: return std::sin(a->eval(params));
      case Op::kCos: return std::cos(a->eval(params));
      case Op::kTan: return std::tan(a->eval(params));
      case Op::kExp: return std::exp(a->eval(params));
      case Op::kLn: return std::log(a->eval(params));
      case Op::kSqrt: return std::sqrt(a->eval(params));
    }
    return 0.0;
  }
};

/// One operation inside a gate body: a call on formal arguments.
struct BodyOp {
  std::string name;
  std::vector<ExprPtr> params;         // in terms of the formal parameters
  std::vector<std::size_t> args;       // indices into the formal arg list
  bool is_barrier = false;
};

struct GateDef {
  std::vector<std::string> param_names;
  std::vector<std::string> arg_names;
  std::vector<BodyOp> body;
};

// The standard library, parsed through the same `gate` machinery the user's
// definitions use. Text follows the canonical qelib1.inc.
constexpr const char* kQelib1 = R"(
gate u3(theta,phi,lambda) q { U(theta,phi,lambda) q; }
gate u2(phi,lambda) q { U(pi/2,phi,lambda) q; }
gate u1(lambda) q { U(0,0,lambda) q; }
gate cx c,t { CX c,t; }
gate id a { U(0,0,0) a; }
gate u0(gamma) q { U(0,0,0) q; }
gate x a { u3(pi,0,pi) a; }
gate y a { u3(pi,pi/2,pi/2) a; }
gate z a { u1(pi) a; }
gate h a { u2(0,pi) a; }
gate s a { u1(pi/2) a; }
gate sdg a { u1(-pi/2) a; }
gate t a { u1(pi/4) a; }
gate tdg a { u1(-pi/4) a; }
gate rx(theta) a { u3(theta,-pi/2,pi/2) a; }
gate ry(theta) a { u3(theta,0,0) a; }
gate rz(phi) a { u1(phi) a; }
gate cz a,b { h b; cx a,b; h b; }
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate ccx a,b,c { h c; cx b,c; tdg c; cx a,c; t c; cx b,c; tdg c; cx a,c; t b; t c; h c; cx a,b; t a; tdg b; cx a,b; }
gate crz(lambda) a,b { u1(lambda/2) b; cx a,b; u1(-lambda/2) b; cx a,b; }
gate cu1(lambda) a,b { u1(lambda/2) a; cx a,b; u1(-lambda/2) b; cx a,b; u1(lambda/2) b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate swap a,b { cx a,b; cx b,a; cx a,b; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate crx(theta) a,b { u1(pi/2) b; cx a,b; u3(-theta/2,0,0) b; cx a,b; u3(theta/2,-pi/2,0) b; }
gate cry(theta) a,b { ry(theta/2) b; cx a,b; ry(-theta/2) b; cx a,b; }
gate sx a { sdg a; h a; sdg a; }
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
)";

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

class Parser {
 public:
  QasmProgram parse(const std::string& source) {
    parse_source(kQelib1, /*is_stdlib=*/true);
    parse_source(source, /*is_stdlib=*/false);
    ensure_circuit();  // programs with declarations but no gates are valid
    QasmProgram out{std::move(*circuit_), std::move(qregs_), std::move(cregs_),
                    std::move(measurements_)};
    return out;
  }

 private:
  void parse_source(const std::string& text, bool is_stdlib) {
    Lexer lex(text);
    if (!is_stdlib) {
      expect_id(lex, "OPENQASM");
      const Token ver = lex.take();
      if (ver.kind != Tok::kNumber)
        throw ParseError("expected version number after OPENQASM", ver.line,
                         ver.col);
      expect_symbol(lex, ";");
    }
    while (lex.peek().kind != Tok::kEnd) statement(lex);
  }

  void statement(Lexer& lex) {
    const Token& t = lex.peek();
    if (t.kind == Tok::kId) {
      if (t.text == "include") return include_stmt(lex);
      if (t.text == "qreg") return reg_stmt(lex, /*quantum=*/true);
      if (t.text == "creg") return reg_stmt(lex, /*quantum=*/false);
      if (t.text == "gate") return gate_def(lex);
      if (t.text == "opaque") return opaque_stmt(lex);
      if (t.text == "measure") return measure_stmt(lex);
      if (t.text == "reset") return reset_stmt(lex);
      if (t.text == "barrier") return barrier_stmt(lex);
      if (t.text == "if")
        throw ParseError(
            "classical conditionals are not supported by the state-vector "
            "backends",
            t.line, t.col);
      return application_stmt(lex);
    }
    throw ParseError("unexpected token '" + t.text + "'", t.line, t.col);
  }

  void include_stmt(Lexer& lex) {
    lex.take();  // include
    const Token file = lex.take();
    if (file.kind != Tok::kString)
      throw ParseError("expected filename string after include", file.line,
                       file.col);
    expect_symbol(lex, ";");
    if (file.text == "qelib1.inc") return;  // already built in
    std::ifstream in(file.text);
    if (!in)
      throw ParseError("cannot open include file '" + file.text + "'",
                       file.line, file.col);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    parse_source(text, /*is_stdlib=*/true);
  }

  void reg_stmt(Lexer& lex, bool quantum) {
    lex.take();  // qreg/creg
    const Token name = expect_kind(lex, Tok::kId, "register name");
    expect_symbol(lex, "[");
    const Token size = expect_kind(lex, Tok::kNumber, "register size");
    expect_symbol(lex, "]");
    expect_symbol(lex, ";");
    const auto n = static_cast<qubit_t>(size.number);
    if (n == 0 || static_cast<double>(n) != size.number)
      throw ParseError("register size must be a positive integer", size.line,
                       size.col);
    auto& regs = quantum ? qregs_ : cregs_;
    if (regs.count(name.text) || (quantum ? cregs_ : qregs_).count(name.text))
      throw ParseError("register '" + name.text + "' redeclared", name.line,
                       name.col);
    auto& next = quantum ? next_qubit_ : next_clbit_;
    regs[name.text] = {next, n};
    next += n;
  }

  void opaque_stmt(Lexer& lex) {
    while (lex.peek().kind != Tok::kEnd &&
           !(lex.peek().kind == Tok::kSymbol && lex.peek().text == ";"))
      lex.take();
    expect_symbol(lex, ";");
  }

  void gate_def(Lexer& lex) {
    lex.take();  // gate
    const Token name = expect_kind(lex, Tok::kId, "gate name");
    GateDef def;
    if (lex.peek().kind == Tok::kSymbol && lex.peek().text == "(") {
      lex.take();
      if (!(lex.peek().kind == Tok::kSymbol && lex.peek().text == ")")) {
        for (;;) {
          def.param_names.push_back(
              expect_kind(lex, Tok::kId, "parameter name").text);
          if (lex.peek().kind == Tok::kSymbol && lex.peek().text == ",") {
            lex.take();
            continue;
          }
          break;
        }
      }
      expect_symbol(lex, ")");
    }
    for (;;) {
      def.arg_names.push_back(expect_kind(lex, Tok::kId, "argument name").text);
      if (lex.peek().kind == Tok::kSymbol && lex.peek().text == ",") {
        lex.take();
        continue;
      }
      break;
    }
    expect_symbol(lex, "{");
    while (!(lex.peek().kind == Tok::kSymbol && lex.peek().text == "}")) {
      def.body.push_back(body_op(lex, def));
    }
    lex.take();  // }
    // First definition wins; qelib1 re-included or user shadowing keeps the
    // earliest (native-equivalent) meaning, matching common tooling.
    gate_defs_.emplace(name.text, std::move(def));
  }

  BodyOp body_op(Lexer& lex, const GateDef& def) {
    const Token name = expect_kind(lex, Tok::kId, "gate-body operation");
    BodyOp op;
    op.name = name.text;
    if (op.name == "barrier") {
      op.is_barrier = true;
      // Consume argument list without recording (no-op for the state).
      while (!(lex.peek().kind == Tok::kSymbol && lex.peek().text == ";"))
        lex.take();
      expect_symbol(lex, ";");
      return op;
    }
    if (lex.peek().kind == Tok::kSymbol && lex.peek().text == "(") {
      lex.take();
      if (!(lex.peek().kind == Tok::kSymbol && lex.peek().text == ")")) {
        for (;;) {
          op.params.push_back(parse_expr(lex, &def.param_names));
          if (lex.peek().kind == Tok::kSymbol && lex.peek().text == ",") {
            lex.take();
            continue;
          }
          break;
        }
      }
      expect_symbol(lex, ")");
    }
    for (;;) {
      const Token arg = expect_kind(lex, Tok::kId, "gate-body argument");
      const auto it = std::find(def.arg_names.begin(), def.arg_names.end(),
                                arg.text);
      if (it == def.arg_names.end())
        throw ParseError("unknown argument '" + arg.text + "' in gate body",
                         arg.line, arg.col);
      op.args.push_back(
          static_cast<std::size_t>(it - def.arg_names.begin()));
      if (lex.peek().kind == Tok::kSymbol && lex.peek().text == ",") {
        lex.take();
        continue;
      }
      break;
    }
    expect_symbol(lex, ";");
    return op;
  }

  // -- expressions ----------------------------------------------------------

  ExprPtr parse_expr(Lexer& lex, const std::vector<std::string>* params) {
    ExprPtr lhs = parse_term(lex, params);
    while (lex.peek().kind == Tok::kSymbol &&
           (lex.peek().text == "+" || lex.peek().text == "-")) {
      const bool add = lex.take().text == "+";
      ExprPtr rhs = parse_term(lex, params);
      auto node = std::make_shared<ExprNode>();
      node->op = add ? ExprNode::Op::kAdd : ExprNode::Op::kSub;
      node->a = lhs;
      node->b = rhs;
      lhs = node;
    }
    return lhs;
  }

  ExprPtr parse_term(Lexer& lex, const std::vector<std::string>* params) {
    ExprPtr lhs = parse_unary(lex, params);
    while (lex.peek().kind == Tok::kSymbol &&
           (lex.peek().text == "*" || lex.peek().text == "/")) {
      const bool mul = lex.take().text == "*";
      ExprPtr rhs = parse_unary(lex, params);
      auto node = std::make_shared<ExprNode>();
      node->op = mul ? ExprNode::Op::kMul : ExprNode::Op::kDiv;
      node->a = lhs;
      node->b = rhs;
      lhs = node;
    }
    return lhs;
  }

  // Unary minus binds looser than '^' (-x^2 == -(x^2)), as in common math.
  ExprPtr parse_unary(Lexer& lex, const std::vector<std::string>* params) {
    if (lex.peek().kind == Tok::kSymbol && lex.peek().text == "-") {
      lex.take();
      auto node = std::make_shared<ExprNode>();
      node->op = ExprNode::Op::kNeg;
      node->a = parse_unary(lex, params);
      return node;
    }
    return parse_pow(lex, params);
  }

  ExprPtr parse_pow(Lexer& lex, const std::vector<std::string>* params) {
    ExprPtr base = parse_factor(lex, params);
    if (lex.peek().kind == Tok::kSymbol && lex.peek().text == "^") {
      lex.take();
      ExprPtr exp = parse_unary(lex, params);  // right associative
      auto node = std::make_shared<ExprNode>();
      node->op = ExprNode::Op::kPow;
      node->a = base;
      node->b = exp;
      return node;
    }
    return base;
  }

  ExprPtr parse_factor(Lexer& lex, const std::vector<std::string>* params) {
    const Token t = lex.take();
    auto node = std::make_shared<ExprNode>();
    if (t.kind == Tok::kNumber) {
      node->op = ExprNode::Op::kConst;
      node->value = t.number;
      return node;
    }
    if (t.kind == Tok::kSymbol && t.text == "-") {
      node->op = ExprNode::Op::kNeg;
      node->a = parse_unary(lex, params);
      return node;
    }
    if (t.kind == Tok::kSymbol && t.text == "(") {
      ExprPtr inner = parse_expr(lex, params);
      expect_symbol(lex, ")");
      return inner;
    }
    if (t.kind == Tok::kId) {
      if (t.text == "pi") {
        node->op = ExprNode::Op::kConst;
        node->value = kPi;
        return node;
      }
      static const std::map<std::string, ExprNode::Op> kFuncs = {
          {"sin", ExprNode::Op::kSin}, {"cos", ExprNode::Op::kCos},
          {"tan", ExprNode::Op::kTan}, {"exp", ExprNode::Op::kExp},
          {"ln", ExprNode::Op::kLn},   {"sqrt", ExprNode::Op::kSqrt}};
      const auto fit = kFuncs.find(t.text);
      if (fit != kFuncs.end()) {
        expect_symbol(lex, "(");
        node->op = fit->second;
        node->a = parse_expr(lex, params);
        expect_symbol(lex, ")");
        return node;
      }
      if (params != nullptr) {
        const auto it = std::find(params->begin(), params->end(), t.text);
        if (it != params->end()) {
          node->op = ExprNode::Op::kParam;
          node->param = static_cast<std::size_t>(it - params->begin());
          return node;
        }
      }
      throw ParseError("unknown identifier '" + t.text + "' in expression",
                       t.line, t.col);
    }
    throw ParseError("unexpected token '" + t.text + "' in expression", t.line,
                     t.col);
  }

  // -- statements touching the circuit ---------------------------------------

  /// A qubit operand: either one flat index or a whole register.
  struct Operand {
    qubit_t offset;
    qubit_t size;   // 1 for q[i]; register size for whole-register operands
    bool broadcast; // true for whole-register
  };

  Operand qubit_operand(Lexer& lex) {
    const Token name = expect_kind(lex, Tok::kId, "qubit operand");
    const auto it = qregs_.find(name.text);
    if (it == qregs_.end())
      throw ParseError("unknown quantum register '" + name.text + "'",
                       name.line, name.col);
    if (lex.peek().kind == Tok::kSymbol && lex.peek().text == "[") {
      lex.take();
      const Token idx = expect_kind(lex, Tok::kNumber, "qubit index");
      expect_symbol(lex, "]");
      const auto i = static_cast<qubit_t>(idx.number);
      if (static_cast<double>(i) != idx.number || i >= it->second.size)
        throw ParseError("index out of range for register '" + name.text + "'",
                         idx.line, idx.col);
      return {static_cast<qubit_t>(it->second.offset + i), 1, false};
    }
    return {it->second.offset, it->second.size, true};
  }

  Operand clbit_operand(Lexer& lex) {
    const Token name = expect_kind(lex, Tok::kId, "classical operand");
    const auto it = cregs_.find(name.text);
    if (it == cregs_.end())
      throw ParseError("unknown classical register '" + name.text + "'",
                       name.line, name.col);
    if (lex.peek().kind == Tok::kSymbol && lex.peek().text == "[") {
      lex.take();
      const Token idx = expect_kind(lex, Tok::kNumber, "clbit index");
      expect_symbol(lex, "]");
      const auto i = static_cast<qubit_t>(idx.number);
      if (static_cast<double>(i) != idx.number || i >= it->second.size)
        throw ParseError("index out of range for register '" + name.text + "'",
                         idx.line, idx.col);
      return {static_cast<qubit_t>(it->second.offset + i), 1, false};
    }
    return {it->second.offset, it->second.size, true};
  }

  void ensure_circuit() {
    if (!circuit_) {
      if (next_qubit_ == 0)
        throw ParseError("no quantum registers declared before first gate", 0,
                         0);
      circuit_.emplace(next_qubit_);
    }
  }

  /// Expands broadcasts and forwards each single-qubit assignment.
  void apply_broadcast(
      const std::vector<Operand>& ops, const Token& at,
      const std::function<void(const std::vector<qubit_t>&)>& emit) {
    qubit_t span = 1;
    for (const Operand& op : ops) {
      if (!op.broadcast) continue;
      if (span == 1)
        span = op.size;
      else if (span != op.size)
        throw ParseError("mismatched register sizes in broadcast", at.line,
                         at.col);
    }
    for (qubit_t rep = 0; rep < span; ++rep) {
      std::vector<qubit_t> qs;
      qs.reserve(ops.size());
      for (const Operand& op : ops)
        qs.push_back(op.broadcast ? op.offset + rep : op.offset);
      emit(qs);
    }
  }

  void measure_stmt(Lexer& lex) {
    const Token at = lex.take();  // measure
    const Operand src = qubit_operand(lex);
    expect_symbol(lex, "->");
    const Operand dst = clbit_operand(lex);
    expect_symbol(lex, ";");
    ensure_circuit();
    if (src.broadcast != dst.broadcast ||
        (src.broadcast && src.size != dst.size))
      throw ParseError("measure operand shapes differ", at.line, at.col);
    const qubit_t span = src.broadcast ? src.size : 1;
    for (qubit_t i = 0; i < span; ++i) {
      circuit_->append(Gate::measure(src.offset + i));
      measurements_.emplace_back(src.offset + i, dst.offset + i);
    }
  }

  void reset_stmt(Lexer& lex) {
    lex.take();  // reset
    const Operand op = qubit_operand(lex);
    expect_symbol(lex, ";");
    ensure_circuit();
    const qubit_t span = op.broadcast ? op.size : 1;
    for (qubit_t i = 0; i < span; ++i)
      circuit_->append(Gate::reset(op.offset + i));
  }

  void barrier_stmt(Lexer& lex) {
    lex.take();  // barrier
    std::vector<qubit_t> qs;
    for (;;) {
      const Operand op = qubit_operand(lex);
      for (qubit_t i = 0; i < (op.broadcast ? op.size : 1); ++i)
        qs.push_back(op.offset + i);
      if (lex.peek().kind == Tok::kSymbol && lex.peek().text == ",") {
        lex.take();
        continue;
      }
      break;
    }
    expect_symbol(lex, ";");
    ensure_circuit();
    circuit_->append(Gate::barrier(std::move(qs)));
  }

  void application_stmt(Lexer& lex) {
    const Token name = lex.take();
    std::vector<double> params;
    if (lex.peek().kind == Tok::kSymbol && lex.peek().text == "(") {
      lex.take();
      if (!(lex.peek().kind == Tok::kSymbol && lex.peek().text == ")")) {
        for (;;) {
          params.push_back(parse_expr(lex, nullptr)->eval({}));
          if (lex.peek().kind == Tok::kSymbol && lex.peek().text == ",") {
            lex.take();
            continue;
          }
          break;
        }
      }
      expect_symbol(lex, ")");
    }
    std::vector<Operand> ops;
    for (;;) {
      ops.push_back(qubit_operand(lex));
      if (lex.peek().kind == Tok::kSymbol && lex.peek().text == ",") {
        lex.take();
        continue;
      }
      break;
    }
    expect_symbol(lex, ";");
    ensure_circuit();
    apply_broadcast(ops, name, [&](const std::vector<qubit_t>& qs) {
      emit_gate(name, params, qs);
    });
  }

  /// Emits a named gate on concrete qubits: native kinds first, then user /
  /// qelib1 definitions expanded recursively. Bounded depth so degenerate
  /// (self- or mutually-recursive) definitions fail instead of overflowing.
  void emit_gate(const Token& name, const std::vector<double>& params,
                 const std::vector<qubit_t>& qs) {
    if (emit_native(name.text, params, qs)) return;
    if (expansion_depth_ >= 64)
      throw ParseError("gate '" + name.text +
                           "' expands recursively past depth 64",
                       name.line, name.col);
    const auto it = gate_defs_.find(name.text);
    if (it == gate_defs_.end())
      throw ParseError("unknown gate '" + name.text + "'", name.line,
                       name.col);
    const GateDef& def = it->second;
    if (params.size() != def.param_names.size())
      throw ParseError("gate '" + name.text + "' expects " +
                           std::to_string(def.param_names.size()) +
                           " parameter(s), got " + std::to_string(params.size()),
                       name.line, name.col);
    if (qs.size() != def.arg_names.size())
      throw ParseError("gate '" + name.text + "' expects " +
                           std::to_string(def.arg_names.size()) +
                           " qubit(s), got " + std::to_string(qs.size()),
                       name.line, name.col);
    ++expansion_depth_;
    for (const BodyOp& op : def.body) {
      if (op.is_barrier) continue;
      std::vector<double> sub_params;
      sub_params.reserve(op.params.size());
      for (const ExprPtr& e : op.params) sub_params.push_back(e->eval(params));
      std::vector<qubit_t> sub_qs;
      sub_qs.reserve(op.args.size());
      for (const std::size_t a : op.args) sub_qs.push_back(qs[a]);
      Token sub = name;
      sub.text = op.name;
      emit_gate(sub, sub_params, sub_qs);
    }
    --expansion_depth_;
  }

  bool emit_native(const std::string& name, const std::vector<double>& p,
                   const std::vector<qubit_t>& q) {
    const auto need = [&](std::size_t np, std::size_t nq) {
      return p.size() == np && q.size() == nq;
    };
    // One-qubit, no parameters.
    static const std::map<std::string, GateKind> k1q0p = {
        {"id", GateKind::kI},   {"x", GateKind::kX},   {"y", GateKind::kY},
        {"z", GateKind::kZ},    {"h", GateKind::kH},   {"s", GateKind::kS},
        {"sdg", GateKind::kSdg}, {"t", GateKind::kT},  {"tdg", GateKind::kTdg},
        {"sx", GateKind::kSX}};
    if (const auto it = k1q0p.find(name); it != k1q0p.end() && need(0, 1)) {
      circuit_->append(Gate{it->second, {q[0]}, {}, {}});
      return true;
    }
    if ((name == "rx") && need(1, 1)) {
      circuit_->append(Gate::rx(q[0], p[0]));
      return true;
    }
    if ((name == "ry") && need(1, 1)) {
      circuit_->append(Gate::ry(q[0], p[0]));
      return true;
    }
    if ((name == "rz") && need(1, 1)) {
      circuit_->append(Gate::rz(q[0], p[0]));
      return true;
    }
    if ((name == "p" || name == "u1") && need(1, 1)) {
      circuit_->append(Gate::phase(q[0], p[0]));
      return true;
    }
    if (name == "u2" && need(2, 1)) {
      circuit_->append(Gate::u3(q[0], kPi / 2, p[0], p[1]));
      return true;
    }
    if ((name == "u3" || name == "U" || name == "u") && need(3, 1)) {
      circuit_->append(Gate::u3(q[0], p[0], p[1], p[2]));
      return true;
    }
    if ((name == "cx" || name == "CX") && need(0, 2)) {
      circuit_->append(Gate::cx(q[0], q[1]));
      return true;
    }
    if (name == "cy" && need(0, 2)) {
      circuit_->append(Gate::cy(q[0], q[1]));
      return true;
    }
    if (name == "cz" && need(0, 2)) {
      circuit_->append(Gate::cz(q[0], q[1]));
      return true;
    }
    if (name == "ch" && need(0, 2)) {
      circuit_->append(Gate::ch(q[0], q[1]));
      return true;
    }
    if ((name == "cp" || name == "cu1") && need(1, 2)) {
      circuit_->append(Gate::cp(q[0], q[1], p[0]));
      return true;
    }
    if (name == "crz" && need(1, 2)) {
      circuit_->append(Gate::crz(q[0], q[1], p[0]));
      return true;
    }
    if (name == "swap" && need(0, 2)) {
      circuit_->append(Gate::swap(q[0], q[1]));
      return true;
    }
    if (name == "ccx" && need(0, 3)) {
      circuit_->append(Gate::ccx(q[0], q[1], q[2]));
      return true;
    }
    if (name == "cswap" && need(0, 3)) {
      circuit_->append(Gate::cswap(q[0], q[1], q[2]));
      return true;
    }
    return false;
  }

  // -- small helpers ----------------------------------------------------------

  static Token expect_kind(Lexer& lex, Tok kind, const std::string& what) {
    const Token t = lex.take();
    if (t.kind != kind)
      throw ParseError("expected " + what + ", got '" + t.text + "'", t.line,
                       t.col);
    return t;
  }

  static void expect_symbol(Lexer& lex, const std::string& sym) {
    const Token t = lex.take();
    if (t.kind != Tok::kSymbol || t.text != sym)
      throw ParseError("expected '" + sym + "', got '" + t.text + "'", t.line,
                       t.col);
  }

  static void expect_id(Lexer& lex, const std::string& id) {
    const Token t = lex.take();
    if (t.kind != Tok::kId || t.text != id)
      throw ParseError("expected '" + id + "', got '" + t.text + "'", t.line,
                       t.col);
  }

  std::map<std::string, RegisterInfo> qregs_;
  std::map<std::string, RegisterInfo> cregs_;
  std::map<std::string, GateDef> gate_defs_;
  std::vector<std::pair<qubit_t, qubit_t>> measurements_;
  std::optional<Circuit> circuit_;
  qubit_t next_qubit_ = 0;
  qubit_t next_clbit_ = 0;
  int expansion_depth_ = 0;
};

}  // namespace

QasmProgram parse_qasm(const std::string& source) {
  Parser parser;
  return parser.parse(source);
}

QasmProgram parse_qasm_file(const std::string& path) {
  std::ifstream in(path);
  MEMQ_CHECK(static_cast<bool>(in), "cannot open QASM file '" << path << "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_qasm(ss.str());
}

std::string to_qasm(const Circuit& circuit_in) {
  // qelib1 has no gate beyond two controls (ccx) or one control (the rest):
  // lower whatever exceeds that to the {1q, CX} basis first.
  const auto needs_lowering = [](const Gate& g) {
    if (g.is_barrier() || g.is_nonunitary() || g.controls.empty())
      return false;
    if (g.controls.size() >= 2) return !(g.kind == GateKind::kX &&
                                         g.controls.size() == 2);
    // One control: only the kinds qelib1 spells (cx/cy/cz/ch/crx/cry/crz/
    // cu1/cu3/cswap) survive; cs/ct/csx/... must be lowered.
    switch (g.kind) {
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
      case GateKind::kPhase:
      case GateKind::kSwap:
      case GateKind::kU3:
      case GateKind::kUnitary1q:  // emitted as cu3
        return false;
      default:
        return true;
    }
  };
  Circuit circuit(circuit_in.n_qubits());
  for (const Gate& g : circuit_in.gates()) {
    if (needs_lowering(g)) {
      Circuit one(circuit_in.n_qubits());
      one.append(g);
      circuit.append(decompose_to_cx_basis(one));
    } else {
      circuit.append(g);
    }
  }

  std::ostringstream os;
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.n_qubits() << "];\n";
  os << "creg c[" << circuit.n_qubits() << "];\n";
  std::size_t next_meas = 0;
  for (const Gate& g : circuit.gates()) {
    if (g.is_barrier()) {
      os << "barrier";
      for (std::size_t i = 0; i < g.targets.size(); ++i)
        os << (i ? ", " : " ") << "q[" << g.targets[i] << "]";
      os << ";\n";
      continue;
    }
    if (g.kind == GateKind::kMeasure) {
      os << "measure q[" << g.targets[0] << "] -> c[" << next_meas++ << "];\n";
      continue;
    }
    if (g.kind == GateKind::kReset) {
      os << "reset q[" << g.targets[0] << "];\n";
      continue;
    }
    Gate emit = g;
    if (g.kind == GateKind::kUnitary1q) {
      const auto [theta, phi, lambda, phase] = zyz_decompose(g.matrix1q());
      (void)phase;  // global phase is unobservable
      emit = Gate::u3(g.targets[0], theta, phi, lambda)
                 .with_controls(g.controls);
    }
    std::string name = emit.base_name();
    if (name == "p") name = "u1";
    MEMQ_CHECK(emit.controls.size() <= (name == "x" ? 2u : 1u),
               "to_qasm: gate " << emit.to_string()
                                << " has too many controls for qelib1");
    os << std::string(emit.controls.size(), 'c') << name;
    if (!emit.params.empty()) {
      os << '(';
      for (std::size_t i = 0; i < emit.params.size(); ++i) {
        if (i) os << ',';
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", emit.params[i]);
        os << buf;
      }
      os << ')';
    }
    bool first = true;
    for (const qubit_t c : emit.controls) {
      os << (first ? " " : ", ") << "q[" << c << "]";
      first = false;
    }
    for (const qubit_t t : emit.targets) {
      os << (first ? " " : ", ") << "q[" << t << "]";
      first = false;
    }
    os << ";\n";
  }
  return os.str();
}

}  // namespace memq::circuit
