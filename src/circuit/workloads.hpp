// Standard circuit families used by the examples, tests and the benchmark
// harness — the "different quantum algorithms" whose access patterns the
// paper's challenge (3) is about.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace memq::circuit {

/// |0..0> + |1..1> (unnormalized notation): H then a CX ladder.
Circuit make_ghz(qubit_t n);

/// Quantum Fourier transform (with the final qubit-reversal swaps).
Circuit make_qft(qubit_t n);

/// Inverse QFT.
Circuit make_iqft(qubit_t n);

/// Bernstein–Vazirani for the given secret bitstring (bit i = qubit i).
/// Uses n data qubits + 1 ancilla (qubit n).
Circuit make_bernstein_vazirani(qubit_t n, std::uint64_t secret);

/// Grover search for the marked computational basis state; `iterations` = 0
/// picks the optimal floor(pi/4 * sqrt(2^n)).
Circuit make_grover(qubit_t n, std::uint64_t marked, int iterations = 0);

/// QAOA MaxCut ansatz on the given edge list, p rounds with angles
/// (gamma_k, beta_k).
struct QaoaParams {
  std::vector<std::pair<qubit_t, qubit_t>> edges;
  std::vector<double> gammas;
  std::vector<double> betas;
};
Circuit make_qaoa_maxcut(qubit_t n, const QaoaParams& params);

/// Random circuit (RQC-flavoured): `depth` layers, each a layer of random
/// single-qubit gates from {sx, sy=ry(pi/2), t, h} or Haar-ish u3 followed
/// by a layer of CX/CZ on a random matching. Deterministic in `seed`.
Circuit make_random_circuit(qubit_t n, std::size_t depth, std::uint64_t seed,
                            bool haar_1q = false);

/// Quantum phase estimation of the phase gate diag(1, e^{2*pi*i*phase})
/// using `counting` counting qubits; the eigenstate qubit is qubit
/// `counting` and is prepared in |1>.
Circuit make_phase_estimation(qubit_t counting, double phase);

/// n-qubit W state via cascaded controlled rotations.
Circuit make_w_state(qubit_t n);

/// Cuccaro ripple-carry adder: computes b += a on two n-bit registers.
/// Layout: a = qubits [0, n), b = qubits [n, 2n), carry ancilla = 2n
/// (and the final carry-out lands on qubit 2n+1). Total 2n+2 qubits.
Circuit make_adder(qubit_t n_bits);

/// Draper adder: |x> -> |x + k mod 2^n> via QFT + phase rotations + IQFT.
/// No ancillas; the in-Fourier-space addition is all diagonal gates, which
/// makes it the chunk-friendliest arithmetic primitive in the library.
Circuit make_draper_constant_adder(qubit_t n, std::uint64_t k);

/// Compiled Shor order finding for N = 15: phase estimation over the
/// modular-multiplication unitary U_a|x> = |a x mod 15>. For N = 15 every
/// valid multiplier is a bit rotation and/or complement, so the controlled
/// powers compile to cswap/cx networks (the classic "compiled Shor").
/// Layout: counting register = qubits [0, n_count), target register =
/// qubits [n_count, n_count+4) initialized to |1>.
/// `a` must be coprime to 15 and != 1.
Circuit make_shor15_order_finding(std::uint64_t a, qubit_t n_count = 8);

/// Multiplicative order of a modulo 15 (classical reference for tests).
int order_mod15(std::uint64_t a);

/// First-order Trotterized time evolution of the isotropic Heisenberg chain
/// H = J sum_i (XX + YY + ZZ)_{i,i+1} (open boundary): `steps` steps of
/// size `dt`. Each two-site term is the standard 3x(CX - rotation - CX)
/// network. A physics workload with nearest-neighbour access pattern.
Circuit make_trotter_heisenberg(qubit_t n, std::size_t steps, double dt,
                                double j_coupling = 1.0);

/// Quantum teleportation of an arbitrary u3 state with deferred
/// (coherent) corrections; 3 qubits, qubit 2 receives the state.
Circuit make_teleport(double theta, double phi, double lambda);

/// Registry access for benches: name -> builder over {n, seed}.
std::vector<std::string> workload_names();
Circuit make_workload(const std::string& name, qubit_t n, std::uint64_t seed);

}  // namespace memq::circuit
