// Gate representation: kind + targets + controls + parameters.
//
// Controls are first-class and unbounded (CX is X with one control, CCX is X
// with two, ...). Both simulators apply controlled gates natively by masking
// the enumeration, so no ancilla decompositions are needed for correctness;
// transpile.hpp offers lowering passes for backends with restricted bases.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace memq::circuit {

/// Row-major 2x2 complex matrix.
using Mat2 = std::array<amp_t, 4>;
/// Row-major 4x4 complex matrix (basis order |t2 t1> = 00,01,10,11 with t1
/// the first target = least significant).
using Mat4 = std::array<amp_t, 16>;

enum class GateKind : std::uint8_t {
  kI = 0,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSX,        ///< sqrt(X)
  kRX,        ///< params: theta
  kRY,        ///< params: theta
  kRZ,        ///< params: theta
  kPhase,     ///< diag(1, e^{i lambda}); params: lambda
  kU3,        ///< params: theta, phi, lambda (OpenQASM U)
  kUnitary1q, ///< params: 8 doubles = row-major 2x2 (re, im interleaved)
  kSwap,      ///< two targets
  kMeasure,   ///< computational-basis measurement, collapses
  kReset,     ///< measure + conditional X to |0>
  kBarrier,   ///< scheduling fence, no-op for the state
};

struct Gate {
  GateKind kind = GateKind::kI;
  std::vector<qubit_t> targets;
  std::vector<qubit_t> controls;
  std::vector<double> params;

  // -- factories ------------------------------------------------------------
  static Gate i(qubit_t q) { return {GateKind::kI, {q}, {}, {}}; }
  static Gate x(qubit_t q) { return {GateKind::kX, {q}, {}, {}}; }
  static Gate y(qubit_t q) { return {GateKind::kY, {q}, {}, {}}; }
  static Gate z(qubit_t q) { return {GateKind::kZ, {q}, {}, {}}; }
  static Gate h(qubit_t q) { return {GateKind::kH, {q}, {}, {}}; }
  static Gate s(qubit_t q) { return {GateKind::kS, {q}, {}, {}}; }
  static Gate sdg(qubit_t q) { return {GateKind::kSdg, {q}, {}, {}}; }
  static Gate t(qubit_t q) { return {GateKind::kT, {q}, {}, {}}; }
  static Gate tdg(qubit_t q) { return {GateKind::kTdg, {q}, {}, {}}; }
  static Gate sx(qubit_t q) { return {GateKind::kSX, {q}, {}, {}}; }
  static Gate rx(qubit_t q, double th) { return {GateKind::kRX, {q}, {}, {th}}; }
  static Gate ry(qubit_t q, double th) { return {GateKind::kRY, {q}, {}, {th}}; }
  static Gate rz(qubit_t q, double th) { return {GateKind::kRZ, {q}, {}, {th}}; }
  static Gate phase(qubit_t q, double lam) {
    return {GateKind::kPhase, {q}, {}, {lam}};
  }
  static Gate u3(qubit_t q, double th, double ph, double lam) {
    return {GateKind::kU3, {q}, {}, {th, ph, lam}};
  }
  static Gate unitary1q(qubit_t q, const Mat2& m);
  static Gate swap(qubit_t a, qubit_t b) {
    return {GateKind::kSwap, {a, b}, {}, {}};
  }
  static Gate cx(qubit_t c, qubit_t t) { return {GateKind::kX, {t}, {c}, {}}; }
  static Gate cy(qubit_t c, qubit_t t) { return {GateKind::kY, {t}, {c}, {}}; }
  static Gate cz(qubit_t c, qubit_t t) { return {GateKind::kZ, {t}, {c}, {}}; }
  static Gate ch(qubit_t c, qubit_t t) { return {GateKind::kH, {t}, {c}, {}}; }
  static Gate cp(qubit_t c, qubit_t t, double lam) {
    return {GateKind::kPhase, {t}, {c}, {lam}};
  }
  static Gate crz(qubit_t c, qubit_t t, double th) {
    return {GateKind::kRZ, {t}, {c}, {th}};
  }
  static Gate ccx(qubit_t c1, qubit_t c2, qubit_t t) {
    return {GateKind::kX, {t}, {c1, c2}, {}};
  }
  static Gate cswap(qubit_t c, qubit_t a, qubit_t b) {
    return {GateKind::kSwap, {a, b}, {c}, {}};
  }
  static Gate mcx(std::vector<qubit_t> ctrls, qubit_t t) {
    return {GateKind::kX, {t}, std::move(ctrls), {}};
  }
  static Gate mcz(std::vector<qubit_t> ctrls, qubit_t t) {
    return {GateKind::kZ, {t}, std::move(ctrls), {}};
  }
  static Gate measure(qubit_t q) { return {GateKind::kMeasure, {q}, {}, {}}; }
  static Gate reset(qubit_t q) { return {GateKind::kReset, {q}, {}, {}}; }
  static Gate barrier(std::vector<qubit_t> qs) {
    return {GateKind::kBarrier, std::move(qs), {}, {}};
  }

  // -- queries --------------------------------------------------------------

  /// 2x2 unitary of a single-target gate kind. Throws for swap/measure/...
  Mat2 matrix1q() const;

  /// 4x4 unitary of the (uncontrolled) two-target action; valid for kSwap.
  Mat4 matrix2q() const;

  /// Diagonal gates commute with chunk addressing and need no pair loads.
  bool is_diagonal() const noexcept;

  /// True for measure/reset (state update is not a fixed unitary).
  bool is_nonunitary() const noexcept {
    return kind == GateKind::kMeasure || kind == GateKind::kReset;
  }

  bool is_barrier() const noexcept { return kind == GateKind::kBarrier; }

  /// All qubits the gate touches (targets then controls).
  std::vector<qubit_t> qubits() const;

  /// Highest qubit index touched.
  qubit_t max_qubit() const;

  /// Inverse gate (dagger). Throws for measure/reset.
  Gate inverse() const;

  /// Copy of this gate with the given control set.
  Gate with_controls(std::vector<qubit_t> ctrls) const {
    Gate g = *this;
    g.controls = std::move(ctrls);
    return g;
  }

  /// "cx q1, q0"-style rendering.
  std::string to_string() const;

  /// Lower-case mnemonic without controls ("x", "rz", ...).
  std::string base_name() const;

  bool operator==(const Gate& other) const = default;
};

/// Helpers for building matrices (shared with the fusion pass and tests).
Mat2 mat2_mul(const Mat2& a, const Mat2& b);
Mat2 mat2_dagger(const Mat2& m);
bool mat2_approx_equal(const Mat2& a, const Mat2& b, double tol);
bool mat2_is_unitary(const Mat2& m, double tol);

}  // namespace memq::circuit
