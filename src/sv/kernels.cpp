#include "sv/kernels.hpp"

#include <cmath>

#include "common/bit_ops.hpp"
#include "common/error.hpp"

namespace memq::sv {

using circuit::Gate;
using circuit::GateKind;
using circuit::Mat2;
using circuit::Mat4;

namespace {

qubit_t span_qubits(std::span<const amp_t> amps) {
  MEMQ_CHECK(bits::is_pow2(amps.size()), "span size must be a power of two");
  return bits::log2_floor(amps.size());
}

}  // namespace

void apply_matrix1(std::span<amp_t> amps, qubit_t target, const Mat2& m,
                   index_t control_mask) {
  const qubit_t n = span_qubits(amps);
  MEMQ_CHECK(target < n, "target " << target << " outside " << n
                                   << "-qubit span");
  const index_t bit = index_t{1} << target;
  const auto half = static_cast<std::int64_t>(amps.size() >> 1);
  const amp_t m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
#pragma omp parallel for schedule(static)
  for (std::int64_t k = 0; k < half; ++k) {
    const index_t i0 = bits::insert_zero(static_cast<index_t>(k), target);
    if ((i0 & control_mask) != control_mask) continue;
    const index_t i1 = i0 | bit;
    const amp_t a0 = amps[i0];
    const amp_t a1 = amps[i1];
    amps[i0] = m00 * a0 + m01 * a1;
    amps[i1] = m10 * a0 + m11 * a1;
  }
}

void apply_diagonal1(std::span<amp_t> amps, qubit_t target, amp_t d0, amp_t d1,
                     index_t control_mask) {
  const qubit_t n = span_qubits(amps);
  MEMQ_CHECK(target < n, "target outside span");
  const index_t bit = index_t{1} << target;
  const auto size = static_cast<std::int64_t>(amps.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < size; ++i) {
    const auto idx = static_cast<index_t>(i);
    if ((idx & control_mask) != control_mask) continue;
    amps[idx] *= (idx & bit) ? d1 : d0;
  }
}

void apply_x(std::span<amp_t> amps, qubit_t target, index_t control_mask) {
  const qubit_t n = span_qubits(amps);
  MEMQ_CHECK(target < n, "target outside span");
  const index_t bit = index_t{1} << target;
  const auto half = static_cast<std::int64_t>(amps.size() >> 1);
#pragma omp parallel for schedule(static)
  for (std::int64_t k = 0; k < half; ++k) {
    const index_t i0 = bits::insert_zero(static_cast<index_t>(k), target);
    if ((i0 & control_mask) != control_mask) continue;
    std::swap(amps[i0], amps[i0 | bit]);
  }
}

void apply_swap(std::span<amp_t> amps, qubit_t a, qubit_t b,
                index_t control_mask) {
  const qubit_t n = span_qubits(amps);
  MEMQ_CHECK(a < n && b < n && a != b, "bad swap targets");
  const qubit_t lo = std::min(a, b), hi = std::max(a, b);
  const index_t lo_bit = index_t{1} << lo;
  const index_t hi_bit = index_t{1} << hi;
  const auto quarter = static_cast<std::int64_t>(amps.size() >> 2);
#pragma omp parallel for schedule(static)
  for (std::int64_t k = 0; k < quarter; ++k) {
    // Enumerate indices with (lo=1, hi=0); partner has (lo=0, hi=1).
    const index_t base =
        bits::insert_two_zeros(static_cast<index_t>(k), lo, hi);
    if ((base & control_mask) != control_mask) continue;
    std::swap(amps[base | lo_bit], amps[base | hi_bit]);
  }
}

void apply_matrix2(std::span<amp_t> amps, qubit_t q_lo, qubit_t q_hi,
                   const Mat4& m, index_t control_mask) {
  const qubit_t n = span_qubits(amps);
  MEMQ_CHECK(q_lo < n && q_hi < n && q_lo != q_hi, "bad matrix2 targets");
  const qubit_t lo = std::min(q_lo, q_hi), hi = std::max(q_lo, q_hi);
  const index_t lo_bit = index_t{1} << q_lo;  // basis-order bit of target 0
  const index_t hi_bit = index_t{1} << q_hi;  // basis-order bit of target 1
  const auto quarter = static_cast<std::int64_t>(amps.size() >> 2);
#pragma omp parallel for schedule(static)
  for (std::int64_t k = 0; k < quarter; ++k) {
    const index_t base =
        bits::insert_two_zeros(static_cast<index_t>(k), lo, hi);
    if ((base & control_mask) != control_mask) continue;
    const index_t i00 = base;
    const index_t i01 = base | lo_bit;           // target0 = 1
    const index_t i10 = base | hi_bit;           // target1 = 1
    const index_t i11 = base | lo_bit | hi_bit;
    const amp_t a00 = amps[i00], a01 = amps[i01], a10 = amps[i10],
                a11 = amps[i11];
    amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

namespace {

index_t mask_of(std::span<const qubit_t> qs) {
  index_t m = 0;
  for (const qubit_t q : qs) m |= index_t{1} << q;
  return m;
}

void dispatch(std::span<amp_t> amps, const Gate& g, qubit_t t0,
              index_t control_mask) {
  switch (g.kind) {
    case GateKind::kI:
      return;
    case GateKind::kX:
      apply_x(amps, t0, control_mask);
      return;
    case GateKind::kZ:
      apply_diagonal1(amps, t0, amp_t{1, 0}, amp_t{-1, 0}, control_mask);
      return;
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRZ:
    case GateKind::kPhase: {
      const Mat2 m = g.matrix1q();
      apply_diagonal1(amps, t0, m[0], m[3], control_mask);
      return;
    }
    default:
      apply_matrix1(amps, t0, g.matrix1q(), control_mask);
  }
}

}  // namespace

void apply_gate(std::span<amp_t> amps, const Gate& gate) {
  if (gate.is_barrier()) return;
  MEMQ_CHECK(!gate.is_nonunitary(),
             "apply_gate cannot execute measure/reset; use the simulator");
  const index_t cmask = mask_of(gate.controls);
  if (gate.kind == GateKind::kSwap) {
    apply_swap(amps, gate.targets[0], gate.targets[1], cmask);
    return;
  }
  dispatch(amps, gate, gate.targets[0], cmask);
}

void apply_gate_mapped(std::span<amp_t> amps, const Gate& gate,
                       std::span<const qubit_t> local_of,
                       index_t extra_control_mask) {
  if (gate.is_barrier()) return;
  MEMQ_CHECK(!gate.is_nonunitary(), "mapped apply cannot execute measure");
  index_t cmask = extra_control_mask;
  for (const qubit_t c : gate.controls) cmask |= index_t{1} << local_of[c];
  if (gate.kind == GateKind::kSwap) {
    apply_swap(amps, local_of[gate.targets[0]], local_of[gate.targets[1]],
               cmask);
    return;
  }
  dispatch(amps, gate, local_of[gate.targets[0]], cmask);
}

double probability_one(std::span<const amp_t> amps, qubit_t target) {
  const qubit_t n = span_qubits(amps);
  MEMQ_CHECK(target < n, "target outside span");
  const index_t bit = index_t{1} << target;
  double s = 0.0;
  const auto size = static_cast<std::int64_t>(amps.size());
#pragma omp parallel for reduction(+ : s) schedule(static)
  for (std::int64_t i = 0; i < size; ++i)
    if (static_cast<index_t>(i) & bit)
      s += std::norm(amps[static_cast<index_t>(i)]);
  return s;
}

void collapse(std::span<amp_t> amps, qubit_t target, bool outcome,
              double scale) {
  const qubit_t n = span_qubits(amps);
  MEMQ_CHECK(target < n, "target outside span");
  const index_t bit = index_t{1} << target;
  const auto size = static_cast<std::int64_t>(amps.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < size; ++i) {
    const auto idx = static_cast<index_t>(i);
    const bool is_one = (idx & bit) != 0;
    if (is_one == outcome)
      amps[idx] *= scale;
    else
      amps[idx] = amp_t{0, 0};
  }
}

}  // namespace memq::sv
