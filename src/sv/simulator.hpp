// Dense state-vector simulator (the SV-Sim/QuEST-style backend).
//
// This is the exactness oracle for the MEMQSim engine tests and the
// uncompressed baseline in the benchmark harness.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/prng.hpp"
#include "sv/state_vector.hpp"

namespace memq::sv {

/// Pauli string for expectation values, e.g. "ZZI" (index 0 = qubit 0).
struct PauliString {
  std::string ops;  // characters from {I, X, Y, Z}
};

class Simulator {
 public:
  explicit Simulator(qubit_t n_qubits, std::uint64_t seed = 1234567);

  qubit_t n_qubits() const noexcept { return state_.n_qubits(); }
  StateVector& state() noexcept { return state_; }
  const StateVector& state() const noexcept { return state_; }

  /// Resets to |0...0>.
  void reset();

  /// Applies one gate; measure/reset gates sample via the internal PRNG and
  /// record the outcome in measurement_record().
  void apply(const circuit::Gate& gate);

  /// Applies every gate of the circuit.
  void run(const circuit::Circuit& circuit);

  /// Measures qubit q (collapses); returns the outcome.
  bool measure(qubit_t q);

  /// Outcomes of measure/reset gates, in execution order.
  const std::vector<bool>& measurement_record() const noexcept {
    return record_;
  }

  /// Draws `shots` full-register samples from the current state without
  /// collapsing it. Keys are basis indices.
  std::map<index_t, std::uint64_t> sample_counts(std::size_t shots);

  /// <psi| P |psi> for a Pauli string (real up to numerical noise).
  double expectation(const PauliString& pauli) const;

 private:
  StateVector state_;
  Prng rng_;
  std::vector<bool> record_;
};

}  // namespace memq::sv
