// Dense state vector: 2^n amplitudes in one aligned allocation.
#pragma once

#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"

namespace memq::sv {

class StateVector {
 public:
  /// Allocates 2^n amplitudes initialized to |basis>.
  explicit StateVector(qubit_t n_qubits, index_t basis = 0);

  qubit_t n_qubits() const noexcept { return n_qubits_; }
  index_t dim() const noexcept { return dim_of(n_qubits_); }

  amp_t* data() noexcept { return amps_.data(); }
  const amp_t* data() const noexcept { return amps_.data(); }
  std::span<amp_t> amplitudes() noexcept { return {amps_.data(), dim()}; }
  std::span<const amp_t> amplitudes() const noexcept {
    return {amps_.data(), dim()};
  }

  amp_t amplitude(index_t i) const;

  /// Resets to |basis>.
  void set_basis_state(index_t basis);

  /// Sum of |a_i|^2 (should stay 1 under unitaries).
  double norm() const;

  /// Rescales so norm() == 1; throws on the zero vector.
  void normalize();

  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;

  /// <this|other>.
  amp_t inner_product(const StateVector& other) const;

  /// P(qubit q = 1).
  double probability_one(qubit_t q) const;

  /// Full measurement distribution (2^n entries) — small n only.
  std::vector<double> probabilities() const;

  /// Largest |a_i - b_i| over real and imaginary parts; the metric the
  /// compression error bound is stated in.
  double max_abs_diff(const StateVector& other) const;

 private:
  qubit_t n_qubits_;
  AlignedBuffer<amp_t> amps_;
};

}  // namespace memq::sv
