// Gate-application kernels over raw amplitude spans.
//
// These are shared by the dense simulator AND by the MEMQSim pipeline (the
// "GPU kernel" the simulated device launches runs exactly this code on a
// staged buffer, with qubit indices remapped into chunk-local space).
//
// Conventions:
//  * the span holds 2^n amplitudes, qubit 0 = least-significant index bit;
//  * `control_mask` has a 1 for every (local) control qubit: an amplitude
//    pair is updated only if idx & control_mask == control_mask. Controls on
//    higher, non-local qubits are resolved by the caller before invoking.
#pragma once

#include <span>

#include "circuit/gate.hpp"
#include "common/types.hpp"

namespace memq::sv {

/// General single-qubit unitary on `target`, optionally controlled.
void apply_matrix1(std::span<amp_t> amps, qubit_t target,
                   const circuit::Mat2& m, index_t control_mask = 0);

/// Diagonal single-qubit gate diag(d0, d1): no pairing, one pass.
void apply_diagonal1(std::span<amp_t> amps, qubit_t target, amp_t d0, amp_t d1,
                     index_t control_mask = 0);

/// Pauli-X specialization (pure swap of pair halves).
void apply_x(std::span<amp_t> amps, qubit_t target, index_t control_mask = 0);

/// SWAP on two targets, optionally controlled.
void apply_swap(std::span<amp_t> amps, qubit_t a, qubit_t b,
                index_t control_mask = 0);

/// General two-qubit unitary (row-major 4x4, q_lo = first target = LSB).
void apply_matrix2(std::span<amp_t> amps, qubit_t q_lo, qubit_t q_hi,
                   const circuit::Mat4& m, index_t control_mask = 0);

/// Dispatches a circuit Gate whose qubits are all local to the span.
/// Measure/reset/barrier are rejected — callers own those flows.
void apply_gate(std::span<amp_t> amps, const circuit::Gate& gate);

/// As apply_gate, but with qubit relabeling: local_of[q] gives the local
/// bit position of circuit qubit q inside this span, and `extra_control_mask`
/// carries already-resolved (non-local) controls as an all-ones condition.
void apply_gate_mapped(std::span<amp_t> amps, const circuit::Gate& gate,
                       std::span<const qubit_t> local_of,
                       index_t extra_control_mask = 0);

/// P(target = 1) restricted to this span.
double probability_one(std::span<const amp_t> amps, qubit_t target);

/// Projects onto target == outcome (zeroing the other branch) and scales by
/// `scale` (callers pass 1/sqrt(p) to renormalize).
void collapse(std::span<amp_t> amps, qubit_t target, bool outcome,
              double scale);

}  // namespace memq::sv
