#include "sv/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sv/kernels.hpp"

namespace memq::sv {

using circuit::Gate;
using circuit::GateKind;

Simulator::Simulator(qubit_t n_qubits, std::uint64_t seed)
    : state_(n_qubits), rng_(seed) {}

void Simulator::reset() {
  state_.set_basis_state(0);
  record_.clear();
}

void Simulator::apply(const Gate& gate) {
  if (gate.is_barrier()) return;
  if (gate.kind == GateKind::kMeasure) {
    record_.push_back(measure(gate.targets.at(0)));
    return;
  }
  if (gate.kind == GateKind::kReset) {
    const bool outcome = measure(gate.targets.at(0));
    record_.push_back(outcome);
    if (outcome) apply_x(state_.amplitudes(), gate.targets[0]);
    return;
  }
  apply_gate(state_.amplitudes(), gate);
}

void Simulator::run(const circuit::Circuit& circuit) {
  MEMQ_CHECK(circuit.n_qubits() == state_.n_qubits(),
             "circuit is " << circuit.n_qubits() << " qubits, simulator is "
                           << state_.n_qubits());
  for (const Gate& g : circuit.gates()) apply(g);
}

bool Simulator::measure(qubit_t q) {
  const double p1 = probability_one(state_.amplitudes(), q);
  const bool outcome = rng_.uniform() < p1;
  const double p = outcome ? p1 : 1.0 - p1;
  MEMQ_CHECK(p > 1e-300, "measurement hit a zero-probability branch");
  collapse(state_.amplitudes(), q, outcome, 1.0 / std::sqrt(p));
  return outcome;
}

std::map<index_t, std::uint64_t> Simulator::sample_counts(std::size_t shots) {
  // Inverse-CDF sampling on sorted uniforms: one pass over the amplitudes.
  std::vector<double> u(shots);
  for (auto& x : u) x = rng_.uniform();
  std::sort(u.begin(), u.end());

  std::map<index_t, std::uint64_t> counts;
  double cumulative = 0.0;
  std::size_t next = 0;
  const auto amps = state_.amplitudes();
  for (index_t i = 0; i < amps.size() && next < shots; ++i) {
    cumulative += std::norm(amps[i]);
    while (next < shots && u[next] < cumulative) {
      ++counts[i];
      ++next;
    }
  }
  // Floating-point slack: any stragglers land on the last nonzero state.
  if (next < shots) {
    index_t last = amps.size() - 1;
    while (last > 0 && std::norm(amps[last]) == 0.0) --last;
    counts[last] += shots - next;
  }
  return counts;
}

double Simulator::expectation(const PauliString& pauli) const {
  MEMQ_CHECK(pauli.ops.size() == state_.n_qubits(),
             "Pauli string length " << pauli.ops.size() << " != qubit count "
                                    << state_.n_qubits());
  StateVector transformed = [&] {
    StateVector copy(state_.n_qubits());
    std::copy(state_.amplitudes().begin(), state_.amplitudes().end(),
              copy.amplitudes().begin());
    return copy;
  }();
  for (qubit_t q = 0; q < state_.n_qubits(); ++q) {
    switch (pauli.ops[q]) {
      case 'I':
        break;
      case 'X':
        apply_x(transformed.amplitudes(), q);
        break;
      case 'Y':
        apply_matrix1(transformed.amplitudes(), q, Gate::y(q).matrix1q());
        break;
      case 'Z':
        apply_diagonal1(transformed.amplitudes(), q, amp_t{1, 0},
                        amp_t{-1, 0});
        break;
      default:
        MEMQ_THROW(InvalidArgument,
                   "bad Pauli character '" << pauli.ops[q] << "'");
    }
  }
  return state_.inner_product(transformed).real();
}

}  // namespace memq::sv
