#include "sv/state_vector.hpp"

#include <cmath>

#include "common/error.hpp"

namespace memq::sv {

StateVector::StateVector(qubit_t n_qubits, index_t basis)
    : n_qubits_(n_qubits), amps_(dim_of(n_qubits)) {
  MEMQ_CHECK(n_qubits >= 1 && n_qubits <= 34,
             "dense state vector limited to 34 qubits (" << n_qubits
                                                          << " requested)");
  set_basis_state(basis);
}

void StateVector::set_basis_state(index_t basis) {
  MEMQ_CHECK(basis < dim(), "basis state " << basis << " out of range");
  std::fill(amps_.begin(), amps_.end(), amp_t{0, 0});
  amps_[basis] = amp_t{1, 0};
}

amp_t StateVector::amplitude(index_t i) const {
  MEMQ_CHECK(i < dim(), "amplitude index out of range");
  return amps_[i];
}

double StateVector::norm() const {
  double s = 0.0;
#pragma omp parallel for reduction(+ : s) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim()); ++i)
    s += std::norm(amps_[static_cast<index_t>(i)]);
  return s;
}

void StateVector::normalize() {
  const double n = norm();
  MEMQ_CHECK(n > 0.0, "cannot normalize the zero vector");
  const double inv = 1.0 / std::sqrt(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim()); ++i)
    amps_[static_cast<index_t>(i)] *= inv;
}

amp_t StateVector::inner_product(const StateVector& other) const {
  MEMQ_CHECK(other.n_qubits_ == n_qubits_, "inner product size mismatch");
  double re = 0.0, im = 0.0;
#pragma omp parallel for reduction(+ : re, im) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim()); ++i) {
    const amp_t p =
        std::conj(amps_[static_cast<index_t>(i)]) *
        other.amps_[static_cast<index_t>(i)];
    re += p.real();
    im += p.imag();
  }
  return {re, im};
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

double StateVector::probability_one(qubit_t q) const {
  MEMQ_CHECK(q < n_qubits_, "qubit out of range");
  double s = 0.0;
  const index_t bit = index_t{1} << q;
#pragma omp parallel for reduction(+ : s) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim()); ++i)
    if (static_cast<index_t>(i) & bit)
      s += std::norm(amps_[static_cast<index_t>(i)]);
  return s;
}

std::vector<double> StateVector::probabilities() const {
  MEMQ_CHECK(n_qubits_ <= 26, "full distribution too large beyond 26 qubits");
  std::vector<double> p(dim());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim()); ++i)
    p[static_cast<index_t>(i)] = std::norm(amps_[static_cast<index_t>(i)]);
  return p;
}

double StateVector::max_abs_diff(const StateVector& other) const {
  MEMQ_CHECK(other.n_qubits_ == n_qubits_, "size mismatch");
  double m = 0.0;
#pragma omp parallel for reduction(max : m) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim()); ++i) {
    const amp_t d =
        amps_[static_cast<index_t>(i)] - other.amps_[static_cast<index_t>(i)];
    m = std::max(m, std::fabs(d.real()));
    m = std::max(m, std::fabs(d.imag()));
  }
  return m;
}

}  // namespace memq::sv
