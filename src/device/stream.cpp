#include "device/stream.hpp"

#include "common/trace.hpp"

namespace memq::device {

Stream::Stream(SimDevice& device, std::string name)
    : device_(device), name_(std::move(name)) {}

void Stream::trace_op(const char* name, double start_s, double dur_s,
                      std::uint64_t bytes) {
  if (!trace::enabled()) return;
  if (trace_lane_ < 0) trace_lane_ = trace::lane(name_);
  trace::lane_span(trace_lane_, name, start_s, dur_s,
                   bytes > 0 ? trace::arg("bytes", bytes) : std::string{});
}

void Stream::bump_host_overhead(double seconds) {
  device_.advance_host(seconds);
}

double Stream::begin_op(double host_overhead) {
  // The host spends `host_overhead` issuing the call; the operation starts
  // no earlier than both the issue completion and the stream's prior work.
  bump_host_overhead(host_overhead);
  return std::max(tail_, device_.host_time());
}

void Stream::memcpy_h2d_sync(DeviceBuffer& dst, std::uint64_t dst_offset,
                             const void* src, std::uint64_t bytes) {
  if (dst_offset + bytes > dst.bytes())
    throw DeviceError("h2d copy overruns device buffer '" + dst.label() + "'");
  const auto& cfg = device_.config();
  const double start = begin_op(cfg.sync_copy_overhead);
  const double duration = static_cast<double>(bytes) / cfg.h2d_bandwidth;
  std::memcpy(dst.data() + dst_offset, src, bytes);
  tail_ = start + duration;
  busy_ += duration;
  trace_op("h2d", start, duration, bytes);
  ++device_.stats_.h2d_calls;
  device_.stats_.h2d_bytes += bytes;
  // Synchronous semantics: the host blocks until completion.
  device_.sync_host(*this);
}

void Stream::memcpy_d2h_sync(void* dst, const DeviceBuffer& src,
                             std::uint64_t src_offset, std::uint64_t bytes) {
  if (src_offset + bytes > src.bytes())
    throw DeviceError("d2h copy overruns device buffer '" + src.label() + "'");
  const auto& cfg = device_.config();
  const double start = begin_op(cfg.sync_copy_overhead);
  const double duration = static_cast<double>(bytes) / cfg.d2h_bandwidth;
  std::memcpy(dst, src.data() + src_offset, bytes);
  tail_ = start + duration;
  busy_ += duration;
  trace_op("d2h", start, duration, bytes);
  ++device_.stats_.d2h_calls;
  device_.stats_.d2h_bytes += bytes;
  device_.sync_host(*this);
}

void Stream::memcpy_h2d_async(DeviceBuffer& dst, std::uint64_t dst_offset,
                              const void* src, std::uint64_t bytes) {
  if (dst_offset + bytes > dst.bytes())
    throw DeviceError("h2d copy overruns device buffer '" + dst.label() + "'");
  const auto& cfg = device_.config();
  const double start = begin_op(cfg.async_copy_overhead_h2d);
  const double duration = static_cast<double>(bytes) / cfg.h2d_bandwidth;
  std::memcpy(dst.data() + dst_offset, src, bytes);
  tail_ = start + duration;
  busy_ += duration;
  trace_op("h2d", start, duration, bytes);
  ++device_.stats_.h2d_calls;
  device_.stats_.h2d_bytes += bytes;
}

void Stream::memcpy_d2h_async(void* dst, const DeviceBuffer& src,
                              std::uint64_t src_offset, std::uint64_t bytes) {
  if (src_offset + bytes > src.bytes())
    throw DeviceError("d2h copy overruns device buffer '" + src.label() + "'");
  const auto& cfg = device_.config();
  const double start = begin_op(cfg.async_copy_overhead_d2h);
  const double duration = static_cast<double>(bytes) / cfg.d2h_bandwidth;
  std::memcpy(dst, src.data() + src_offset, bytes);
  tail_ = start + duration;
  busy_ += duration;
  trace_op("d2h", start, duration, bytes);
  ++device_.stats_.d2h_calls;
  device_.stats_.d2h_bytes += bytes;
}

void Stream::launch(const std::string& label, std::uint64_t work_items,
                    const std::function<void()>& body, double throughput) {
  const auto& cfg = device_.config();
  if (throughput <= 0.0) throughput = cfg.gate_kernel_throughput;
  const double start = begin_op(cfg.kernel_launch_overhead);
  const double duration = static_cast<double>(work_items) / throughput;
  body();
  tail_ = start + duration;
  busy_ += duration;
  if (trace::enabled()) {
    if (trace_lane_ < 0) trace_lane_ = trace::lane(name_);
    trace::lane_span(trace_lane_, label.c_str(), start, duration,
                     trace::arg("work_items", work_items));
  }
  ++device_.stats_.kernel_launches;
}

void Stream::synchronize() { device_.sync_host(*this); }

}  // namespace memq::device
