// The three CPU->GPU transfer strategies of the paper's step (2) — the
// subject of Table 1.
//
//   kSync            one bulk cudaMemcpy per transfer (the lower bound the
//                    paper normalizes against),
//   kAsyncPerElement "transfer of corresponding state vector elements to the
//                    GPU memory one at a time, utilizing CUDA asynchronous
//                    copies" — one API call per amplitude,
//   kStagedBuffer    "allocating a buffer on the GPU side and shifting the
//                    data chunk from the CPU buffer to the GPU buffer.
//                    Following this, GPU threads are employed to map all
//                    these amplitudes to their appropriate positions" — one
//                    bulk copy into a staging area + a device-side scatter
//                    kernel (costs extra memory, nearly free in time).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "device/stream.hpp"

namespace memq::device {

enum class TransferStrategy : std::uint8_t {
  kSync = 0,
  kAsyncPerElement = 1,
  kStagedBuffer = 2,
};

const char* strategy_name(TransferStrategy s) noexcept;

struct TransferReport {
  double modeled_seconds = 0.0;  ///< stream time consumed by this transfer
  std::uint64_t api_calls = 0;
  std::uint64_t bytes = 0;
};

/// Executes amplitude uploads/downloads under a chosen strategy.
/// `positions` maps element i of the host span to an amplitude slot in the
/// device buffer; an empty span means the identity layout.
class CopyEngine {
 public:
  CopyEngine(SimDevice& device, TransferStrategy strategy);

  TransferStrategy strategy() const noexcept { return strategy_; }

  /// Uploads `src` into `dst` (viewed as amp_t[]) at `positions`.
  /// The staged strategy requires `staging` (same element count as src) and
  /// consumes it as the GPU-side bounce buffer.
  TransferReport upload(Stream& stream, DeviceBuffer& dst,
                        std::span<const amp_t> src,
                        std::span<const index_t> positions = {},
                        DeviceBuffer* staging = nullptr);

  /// Downloads from `src` at `positions` into `dst`.
  TransferReport download(Stream& stream, std::span<amp_t> dst,
                          const DeviceBuffer& src,
                          std::span<const index_t> positions = {},
                          DeviceBuffer* staging = nullptr);

 private:
  SimDevice& device_;
  TransferStrategy strategy_;
};

}  // namespace memq::device
