#include "device/copy_engine.hpp"

#include <cstring>

#include "common/error.hpp"

namespace memq::device {

const char* strategy_name(TransferStrategy s) noexcept {
  switch (s) {
    case TransferStrategy::kSync: return "sync";
    case TransferStrategy::kAsyncPerElement: return "async-per-element";
    case TransferStrategy::kStagedBuffer: return "staged-buffer";
  }
  return "?";
}

CopyEngine::CopyEngine(SimDevice& device, TransferStrategy strategy)
    : device_(device), strategy_(strategy) {}

namespace {

void check_positions(std::span<const index_t> positions,
                     std::uint64_t n_amps_host, std::uint64_t n_slots_dev) {
  MEMQ_CHECK(positions.empty() || positions.size() == n_amps_host,
             "position map size mismatch");
  for (const index_t p : positions)
    MEMQ_CHECK(p < n_slots_dev, "scatter position out of device buffer");
}

}  // namespace

TransferReport CopyEngine::upload(Stream& stream, DeviceBuffer& dst,
                                  std::span<const amp_t> src,
                                  std::span<const index_t> positions,
                                  DeviceBuffer* staging) {
  auto dev = dst.view<amp_t>();
  check_positions(positions, src.size(), dev.size());
  const double t0 = stream.tail();
  const auto calls0 = device_.stats().h2d_calls + device_.stats().d2h_calls +
                      device_.stats().kernel_launches;
  const std::uint64_t bytes = src.size() * sizeof(amp_t);

  switch (strategy_) {
    case TransferStrategy::kSync: {
      // Contiguous lower bound; a non-identity layout degenerates to one
      // bulk copy plus a host-side pre-permute that sync copy cannot
      // express, so we require identity here.
      MEMQ_CHECK(positions.empty(),
                 "sync strategy requires identity layout; use staged-buffer "
                 "for scattered uploads");
      stream.memcpy_h2d_sync(dst, 0, src.data(), bytes);
      break;
    }
    case TransferStrategy::kAsyncPerElement: {
      for (std::size_t i = 0; i < src.size(); ++i) {
        const index_t slot = positions.empty() ? i : positions[i];
        stream.memcpy_h2d_async(dst, slot * sizeof(amp_t), &src[i],
                                sizeof(amp_t));
      }
      break;
    }
    case TransferStrategy::kStagedBuffer: {
      MEMQ_CHECK(staging != nullptr && staging->bytes() >= bytes,
                 "staged strategy needs a staging buffer of at least "
                     << bytes << " bytes");
      // One bulk async copy into the staging area (pinned-buffer semantics:
      // the host is not serialized), then a device-side placement kernel.
      stream.memcpy_h2d_async(*staging, 0, src.data(), bytes);
      // Device-side scatter: GPU threads place amplitudes at their slots.
      auto* staging_ptr = staging;
      const std::size_t n = src.size();
      stream.launch(
          "scatter",
          n,
          [staging_ptr, &dst, positions, n] {
            auto in = staging_ptr->view<const amp_t>();
            auto out = dst.view<amp_t>();
            if (positions.empty()) {
              std::memcpy(out.data(), in.data(), n * sizeof(amp_t));
            } else {
              for (std::size_t i = 0; i < n; ++i) out[positions[i]] = in[i];
            }
          },
          device_.config().scatter_kernel_throughput);
      break;
    }
  }

  const auto calls1 = device_.stats().h2d_calls + device_.stats().d2h_calls +
                      device_.stats().kernel_launches;
  return {stream.tail() - t0, calls1 - calls0, bytes};
}

TransferReport CopyEngine::download(Stream& stream, std::span<amp_t> dst,
                                    const DeviceBuffer& src,
                                    std::span<const index_t> positions,
                                    DeviceBuffer* staging) {
  auto dev = src.view<const amp_t>();
  check_positions(positions, dst.size(), dev.size());
  const double t0 = stream.tail();
  const auto calls0 = device_.stats().h2d_calls + device_.stats().d2h_calls +
                      device_.stats().kernel_launches;
  const std::uint64_t bytes = dst.size() * sizeof(amp_t);

  switch (strategy_) {
    case TransferStrategy::kSync: {
      MEMQ_CHECK(positions.empty(),
                 "sync strategy requires identity layout; use staged-buffer "
                 "for gathered downloads");
      stream.memcpy_d2h_sync(dst.data(), src, 0, bytes);
      break;
    }
    case TransferStrategy::kAsyncPerElement: {
      for (std::size_t i = 0; i < dst.size(); ++i) {
        const index_t slot = positions.empty() ? i : positions[i];
        stream.memcpy_d2h_async(&dst[i], src, slot * sizeof(amp_t),
                                sizeof(amp_t));
      }
      break;
    }
    case TransferStrategy::kStagedBuffer: {
      MEMQ_CHECK(staging != nullptr && staging->bytes() >= bytes,
                 "staged strategy needs a staging buffer");
      // Device-side gather into the contiguous staging area, then one copy.
      auto* staging_ptr = staging;
      const std::size_t n = dst.size();
      stream.launch(
          "gather",
          n,
          [staging_ptr, &src, positions, n] {
            auto out = staging_ptr->view<amp_t>();
            auto in = src.view<const amp_t>();
            if (positions.empty()) {
              std::memcpy(out.data(), in.data(), n * sizeof(amp_t));
            } else {
              for (std::size_t i = 0; i < n; ++i) out[i] = in[positions[i]];
            }
          },
          device_.config().scatter_kernel_throughput);
      stream.memcpy_d2h_async(dst.data(), *staging, 0, bytes);
      break;
    }
  }

  const auto calls1 = device_.stats().h2d_calls + device_.stats().d2h_calls +
                      device_.stats().kernel_launches;
  return {stream.tail() - t0, calls1 - calls0, bytes};
}

}  // namespace memq::device
