#include "device/device.hpp"

#include "device/stream.hpp"

namespace memq::device {

SimDevice::SimDevice(const DeviceConfig& config,
                     std::shared_ptr<HostClock> clock)
    : config_(config),
      clock_(clock ? std::move(clock) : std::make_shared<HostClock>()) {
  MEMQ_CHECK(config.memory_bytes > 0, "device needs nonzero memory");
  MEMQ_CHECK(config.h2d_bandwidth > 0 && config.d2h_bandwidth > 0,
             "bandwidths must be positive");
}

SimDevice::~SimDevice() = default;

DeviceBuffer SimDevice::alloc(std::uint64_t bytes, const std::string& label) {
  MEMQ_CHECK(bytes > 0, "zero-byte device allocation");
  if (in_use_ + bytes > config_.memory_bytes)
    MEMQ_THROW(OutOfMemory, "device OOM: requested "
                                << bytes << " B with " << bytes_free()
                                << " B free of " << config_.memory_bytes
                                << " B (buffer '" << label << "')");
  in_use_ += bytes;
  ++live_buffers_;
  ++stats_.allocations;
  stats_.peak_bytes = std::max(stats_.peak_bytes, in_use_);
  return DeviceBuffer(this, bytes, label);
}

void SimDevice::release(std::uint64_t bytes) noexcept {
  in_use_ -= bytes;
  --live_buffers_;
}

void SimDevice::advance_host(double seconds) {
  MEMQ_CHECK(seconds >= 0.0, "cannot rewind the host clock");
  clock_->advance(seconds);
}

void SimDevice::sync_host(const Stream& stream) {
  clock_->sync_until(stream.tail());
}

DeviceBuffer::DeviceBuffer(SimDevice* device, std::uint64_t bytes,
                           std::string label)
    : device_(device),
      data_(new std::byte[bytes]()),
      bytes_(bytes),
      label_(std::move(label)) {}

DeviceBuffer::~DeviceBuffer() { free(); }

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(other.device_),
      data_(std::move(other.data_)),
      bytes_(other.bytes_),
      label_(std::move(other.label_)) {
  other.device_ = nullptr;
  other.bytes_ = 0;
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    free();
    device_ = other.device_;
    data_ = std::move(other.data_);
    bytes_ = other.bytes_;
    label_ = std::move(other.label_);
    other.device_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void DeviceBuffer::free() {
  if (data_ != nullptr && device_ != nullptr) {
    device_->release(bytes_);
    data_.reset();
    bytes_ = 0;
  }
}

}  // namespace memq::device
