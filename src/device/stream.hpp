// In-order device command queue with events — the scheduling surface the
// MEMQSim pipeline is built on (paper Figure 1: decompress / H2D / kernel /
// D2H overlapped on separate streams).
#pragma once

#include <cstring>
#include <functional>
#include <string>

#include "device/device.hpp"

namespace memq::device {

/// Marker of a point in a stream's virtual timeline.
struct Event {
  double time = 0.0;
};

class Stream {
 public:
  explicit Stream(SimDevice& device, std::string name = "stream");

  const std::string& name() const noexcept { return name_; }

  /// Virtual time at which all currently queued work completes.
  double tail() const noexcept { return tail_; }

  /// Total modeled busy seconds accumulated on this stream.
  double busy_seconds() const noexcept { return busy_; }

  // -- copies (execute the real memcpy, charge modeled time) ---------------

  /// One bulk synchronous copy (cudaMemcpy): blocks the host clock.
  void memcpy_h2d_sync(DeviceBuffer& dst, std::uint64_t dst_offset,
                       const void* src, std::uint64_t bytes);
  void memcpy_d2h_sync(void* dst, const DeviceBuffer& src,
                       std::uint64_t src_offset, std::uint64_t bytes);

  /// Asynchronous copies (cudaMemcpyAsync on this stream): enqueue and
  /// return; per-call driver overhead still burns host time.
  void memcpy_h2d_async(DeviceBuffer& dst, std::uint64_t dst_offset,
                        const void* src, std::uint64_t bytes);
  void memcpy_d2h_async(void* dst, const DeviceBuffer& src,
                        std::uint64_t src_offset, std::uint64_t bytes);

  // -- kernels ---------------------------------------------------------------

  /// Launches a "kernel": runs `body` immediately (real work) and charges
  /// launch overhead + work_items/throughput to the stream.
  /// `throughput` defaults to the gate-kernel rate; pass
  /// config().scatter_kernel_throughput for data-movement kernels.
  void launch(const std::string& label, std::uint64_t work_items,
              const std::function<void()>& body, double throughput = 0.0);

  // -- ordering ---------------------------------------------------------------

  /// Records an event at the current tail.
  Event record() const { return {tail_}; }

  /// Makes subsequent work on this stream wait for `event`.
  void wait(const Event& event) { tail_ = std::max(tail_, event.time); }

  /// Host-side synchronize: advances the host clock to the tail.
  void synchronize();

  /// Rewinds this stream's virtual timeline (engine reset).
  void reset_clock() noexcept {
    tail_ = 0.0;
    busy_ = 0.0;
  }

 private:
  void bump_host_overhead(double seconds);
  double begin_op(double host_overhead);
  /// Emits a complete event on this stream's modeled-device lane (registers
  /// the lane on first use; no-op when tracing is off).
  void trace_op(const char* name, double start_s, double dur_s,
                std::uint64_t bytes);

  SimDevice& device_;
  std::string name_;
  double tail_ = 0.0;
  double busy_ = 0.0;
  int trace_lane_ = -1;
};

}  // namespace memq::device
