// Simulated accelerator ("the GPU").
//
// This environment has no CUDA device, so MEMQSim's device side is a
// software model that reproduces the *scheduling semantics and cost
// structure* of the CUDA runtime subset the paper uses:
//
//   * device memory is a capacity-enforced allocator (real host memory, so
//     kernels compute real results);
//   * streams are in-order command queues with events for cross-stream
//     dependencies;
//   * every operation executes its real work immediately (deterministic,
//     testable) and charges *modeled time* to the stream's virtual timeline:
//       copy      = per-call overhead + bytes / bandwidth
//       kernel    = launch overhead + work / throughput
//   * a host clock advances with the CPU-side work the engine reports, so
//     "the copy cannot start before the host enqueued it" holds.
//
// The Table-1 phenomenon (per-element async copies ~870x slower than one
// bulk copy) then emerges from call-count x per-call overhead, which is the
// mechanism the paper identifies. Constants below are calibrated to the
// paper's testbed (see EXPERIMENTS.md); change them freely — the *ratios*
// the benches report are structural.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/error.hpp"

namespace memq::device {

struct DeviceConfig {
  /// Device memory capacity (default 2 GiB: a small user-level GPU).
  std::uint64_t memory_bytes = 2ull << 30;

  /// Bulk copy bandwidths, bytes/second. Asymmetric, as measured on PCIe
  /// testbeds (and consistent with the paper's Table 1 sync times).
  double h2d_bandwidth = 6.0e9;
  double d2h_bandwidth = 2.2e9;

  /// Per-API-call overheads, seconds.
  double sync_copy_overhead = 4.0e-6;
  double async_copy_overhead_h2d = 2.5e-6;
  double async_copy_overhead_d2h = 8.5e-6;
  double kernel_launch_overhead = 5.0e-6;

  /// Kernel throughputs, amplitudes/second.
  double gate_kernel_throughput = 4.0e9;
  double scatter_kernel_throughput = 1.2e10;
};

/// The host's virtual clock. One per single-device setup; SHARED between
/// SimDevices when the engine drives several accelerators from one CPU
/// (multi-device sharding): CPU work advances one timeline, while each
/// device's streams keep their own.
class HostClock {
 public:
  double now() const noexcept { return t_; }
  void advance(double seconds) noexcept { t_ += seconds; }
  void sync_until(double t) noexcept {
    if (t > t_) t_ = t;
  }
  void reset() noexcept { t_ = 0.0; }

 private:
  double t_ = 0.0;
};

struct DeviceStats {
  std::uint64_t h2d_calls = 0;
  std::uint64_t d2h_calls = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t allocations = 0;
  std::uint64_t peak_bytes = 0;
};

class DeviceBuffer;
class Stream;

class SimDevice {
 public:
  /// `clock` may be shared across devices (multi-device setups); a private
  /// clock is created when omitted.
  explicit SimDevice(const DeviceConfig& config = {},
                     std::shared_ptr<HostClock> clock = nullptr);
  ~SimDevice();

  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  const DeviceConfig& config() const noexcept { return config_; }

  /// Allocates device memory; throws OutOfMemory beyond capacity.
  DeviceBuffer alloc(std::uint64_t bytes, const std::string& label = "");

  std::uint64_t bytes_in_use() const noexcept { return in_use_; }
  std::uint64_t bytes_free() const noexcept {
    return config_.memory_bytes - in_use_;
  }

  const DeviceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Host virtual clock. The engine advances it with measured CPU work so
  /// enqueue ordering constraints hold on the modeled timeline.
  double host_time() const noexcept { return clock_->now(); }
  void advance_host(double seconds);

  /// Blocks the host clock until the stream's queued work completes
  /// (host_time = max(host_time, stream tail)).
  void sync_host(const Stream& stream);

  /// Blocks the host clock until virtual time `t` (event waits).
  void sync_host_until(double t) noexcept { clock_->sync_until(t); }

  /// Rewinds the virtual clock to zero (engine reset). Does not touch
  /// allocations or stats.
  void reset_clock() noexcept { clock_->reset(); }

  const std::shared_ptr<HostClock>& clock() const noexcept { return clock_; }

 private:
  friend class DeviceBuffer;
  friend class Stream;

  void release(std::uint64_t bytes) noexcept;

  DeviceConfig config_;
  std::uint64_t in_use_ = 0;
  std::shared_ptr<HostClock> clock_;
  DeviceStats stats_;
  std::uint64_t live_buffers_ = 0;
};

/// RAII device allocation. Backed by real host memory so kernels produce
/// real results; capacity is enforced by SimDevice.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  ~DeviceBuffer();

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;

  bool valid() const noexcept { return data_ != nullptr; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  const std::string& label() const noexcept { return label_; }

  /// Raw device pointer — only the Stream copy/kernel APIs should touch it;
  /// exposed for kernels (which run "on the device").
  std::byte* data() noexcept { return data_.get(); }
  const std::byte* data() const noexcept { return data_.get(); }

  /// Typed view of the buffer contents.
  template <typename T>
  std::span<T> view() {
    check_live();
    return {reinterpret_cast<T*>(data_.get()), bytes_ / sizeof(T)};
  }
  template <typename T>
  std::span<const T> view() const {
    check_live();
    return {reinterpret_cast<const T*>(data_.get()), bytes_ / sizeof(T)};
  }

  void free();  ///< early release; further access throws DeviceError

 private:
  friend class SimDevice;
  DeviceBuffer(SimDevice* device, std::uint64_t bytes, std::string label);

  void check_live() const {
    if (data_ == nullptr) throw DeviceError("use of freed device buffer");
  }

  SimDevice* device_ = nullptr;
  std::unique_ptr<std::byte[]> data_;
  std::uint64_t bytes_ = 0;
  std::string label_;
};

}  // namespace memq::device
