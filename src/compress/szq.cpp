// SZQ: SZ-style error-bounded lossy compressor for double arrays.
//
// v2 pipeline (decoupled grid quantization, the scheme cuSZ introduced to
// make SZ's hot loop parallel): every value is snapped *independently* to a
// global grid q = roundeven(x / 2eb) — a pure element-wise pass with no
// loop-carried float recurrence, so it runs through the SIMD kernels in
// simd_kernels.cpp — and prediction (Lorenzo vs. linear, selected per
// block) happens afterwards in exact int64 arithmetic on the grid indices.
// |2eb*q - x| <= eb holds for every grid-quantized value, so the pointwise
// error bound is identical to the classic reconstructed-history scheme.
// The remaining stages are unchanged in spirit: zero-run collapsing of
// "prediction exact" runs (dominant in sparse GHZ/Grover-style states) and
// canonical Huffman coding of the symbol stream — either with a per-chunk
// self-describing table or against the run-level shared dictionary
// (dictionary.hpp), whichever the escape heuristic says is cheaper.
//
// Stream layout (all byte-aligned sections, length-prefixed):
//   varint n | f64 eb | u8 flags | predictor bytes (ceil(n/kBlock)) |
//   [flags bit0 ? u64 dict id : huffman table] |
//   varint bitlen | symbol bitstream | varint nruns | run varints |
//   varint nexc | exception f64s
#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "compress/bitstream.hpp"
#include "compress/compressor.hpp"
#include "compress/dictionary.hpp"
#include "compress/huffman.hpp"
#include "compress/quantizer.hpp"
#include "compress/simd_kernels.hpp"

namespace memq::compress {

namespace {

constexpr std::size_t kBlock = 4096;
constexpr std::uint64_t kMinZeroRun = 8;

/// Stream flag: symbols are coded against a shared dictionary (the stream
/// stores its id instead of a table).
constexpr std::uint8_t kFlagSharedDict = 1u << 0;

/// Grid indices both sides keep as prediction history satisfy |v| < 2^51
/// (encoder invariant); the decoder rejects anything outside, which also
/// keeps the linear predictor's 2*p1 - p2 far from int64 overflow on
/// corrupt streams.
constexpr std::int64_t kGridMax = std::int64_t{1} << 51;

struct GridHistory {
  std::int64_t p1 = 0;
  std::int64_t p2 = 0;
  int have = 0;
};

inline void advance(GridHistory& h, std::int64_t v) noexcept {
  h.p2 = h.p1;
  h.p1 = v;
  h.have = h.have < 2 ? h.have + 1 : 2;
}

/// The grid index the encoder's history continues from after element i:
/// the element's own grid index when it has one, 0 for out-of-range
/// exceptions. grid_base() reproduces this on the decoder side.
inline std::int64_t history_value(std::int64_t q, std::uint8_t flags) noexcept {
  return (flags & kGridInRange) ? q : 0;
}

/// Integer cost proxy of coding [begin, end) with `kind`, starting from
/// history `h` (by value: trials must not disturb the real history).
/// Mirrors the emission pass exactly so the selected predictor is the one
/// that will actually be used.
std::uint64_t block_cost(const std::int64_t* q, const std::uint8_t* flags,
                         std::size_t begin, std::size_t end,
                         PredictorKind kind, GridHistory h) {
  std::uint64_t cost = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::int64_t qi = q[i];
    if (flags[i] & kGridQuantizable) {
      const std::int64_t d = qi - predict_grid(kind, h.p1, h.p2, h.have);
      if (d >= -kQuantRadius && d < kQuantRadius) {
        const std::int64_t mag = d < 0 ? -d : d;
        cost += static_cast<std::uint64_t>(
                    std::min<std::int64_t>(mag, std::int64_t{1} << 20)) +
                1;
        advance(h, qi);
        continue;
      }
      cost += 64;
      advance(h, qi);
      continue;
    }
    cost += 64;
    advance(h, history_value(qi, flags[i]));
  }
  return cost;
}

class SzqCompressor final : public Compressor {
 public:
  std::string name() const override { return "szq"; }
  bool lossless() const override { return false; }

  void compress(std::span<const double> in, double eb,
                ByteBuffer& out) const override {
    compress(in, eb, out, nullptr);
  }

  void decompress(std::span<const std::uint8_t> in,
                  std::span<double> out) const override {
    decompress(in, out, nullptr);
  }

  void compress(std::span<const double> in, double eb, ByteBuffer& out,
                DictContext* dict) const override {
    MEMQ_CHECK(eb > 0.0, "szq requires a positive error bound, got " << eb);
    ByteWriter w(out);
    w.varint(in.size());
    w.f64(eb);
    if (in.empty()) return;
    const std::size_t n = in.size();

    // Pass 1 (vectorized): independent grid quantization of every element.
    std::vector<std::int64_t> q(n);
    std::vector<std::uint8_t> qflags(n);
    simd_kernels::quantize_grid(in.data(), n, eb, q.data(), qflags.data());

    // Pass 2: per-block predictor selection + symbol emission, in integer
    // space. Candidates are scored on a prefix of the block (cheap), then
    // the winner emits the full block; both passes advance history the
    // same way, so encoder and decoder stay in lockstep.
    constexpr std::size_t kTrialPrefix = 512;
    const std::size_t n_blocks = (n + kBlock - 1) / kBlock;
    std::vector<std::uint8_t> predictor_of(n_blocks);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(n);
    std::vector<double> exceptions;

    GridHistory h;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlock;
      const std::size_t end = std::min(begin + kBlock, n);
      const std::size_t trial_end = std::min(begin + kTrialPrefix, end);

      const std::uint64_t cost_lo = block_cost(
          q.data(), qflags.data(), begin, trial_end, PredictorKind::kLorenzo,
          h);
      const std::uint64_t cost_li = block_cost(
          q.data(), qflags.data(), begin, trial_end, PredictorKind::kLinear,
          h);
      const PredictorKind winner = cost_li < cost_lo ? PredictorKind::kLinear
                                                     : PredictorKind::kLorenzo;
      predictor_of[b] = static_cast<std::uint8_t>(winner);

      for (std::size_t i = begin; i < end; ++i) {
        const std::int64_t qi = q[i];
        if (qflags[i] & kGridQuantizable) {
          const std::int64_t d =
              qi - predict_grid(winner, h.p1, h.p2, h.have);
          if (d >= -kQuantRadius && d < kQuantRadius) {
            symbols.push_back(static_cast<std::uint32_t>(d + kQuantRadius));
            advance(h, qi);
            continue;
          }
        }
        symbols.push_back(kSymException);
        exceptions.push_back(in[i]);
        advance(h, history_value(qi, qflags[i]));
      }
    }

    // Collapse long runs of the "prediction exact" symbol.
    std::vector<std::uint32_t> tokens;
    tokens.reserve(symbols.size());
    std::vector<std::uint64_t> runs;
    for (std::size_t i = 0; i < symbols.size();) {
      if (symbols[i] == kSymZero) {
        std::size_t j = i;
        while (j < symbols.size() && symbols[j] == kSymZero) ++j;
        const std::uint64_t run = j - i;
        if (run >= kMinZeroRun) {
          tokens.push_back(kSymZeroRun);
          runs.push_back(run);
        } else {
          tokens.insert(tokens.end(), run, kSymZero);
        }
        i = j;
      } else {
        tokens.push_back(symbols[i++]);
      }
    }

    std::vector<std::uint64_t> counts(kSzqAlphabet, 0);
    for (const auto t : tokens) ++counts[t];

    // Entropy table choice: the shared dictionary when one is trained and
    // fits this chunk's distribution, a per-chunk self-describing table
    // otherwise. While still sampling, this chunk's counts feed training.
    std::shared_ptr<const SzqDict> shared;
    if (dict != nullptr) {
      shared = dict->dict();
      if (!shared) {
        dict->observe(counts, tokens.size());
        shared = dict->dict();
      }
    }
    double entropy_bits = 0.0;
    double shared_bits = 0.0;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < counts.size(); ++s) total += counts[s];
    for (std::size_t s = 0; s < counts.size(); ++s) {
      const std::uint64_t c = counts[s];
      if (c == 0) continue;
      entropy_bits += static_cast<double>(c) *
                      std::log2(static_cast<double>(total) /
                                static_cast<double>(c));
      if (shared) {
        shared_bits += static_cast<double>(c) *
                       static_cast<double>(
                           shared->code().length_of(
                               static_cast<std::uint32_t>(s)));
      }
    }
    // Escape heuristic: a self table costs ~entropy bits plus its own
    // serialized form (~64 bytes for typical sparse alphabets). Keep the
    // shared table unless it is clearly worse than that.
    const bool use_shared =
        shared && shared_bits <= 1.08 * entropy_bits + 8.0 * 64.0;

    w.u8(use_shared ? kFlagSharedDict : 0);
    w.bytes({predictor_of.data(), predictor_of.size()});

    std::optional<HuffmanCode> self_code;
    if (!use_shared) self_code.emplace(HuffmanCode::from_counts(counts));
    const HuffmanCode& code = use_shared ? shared->code() : *self_code;
    if (use_shared) {
      w.u64(shared->id());
    } else {
      self_code->serialize(w);
    }

    // Size hint: reserve the whole payload once instead of growing the
    // buffer through the bit emitter (satellite: amortized single reserve).
    const double est_bits = use_shared ? shared_bits : entropy_bits;
    out.reserve(out.size() + static_cast<std::size_t>(est_bits / 8.0) +
                exceptions.size() * 8 + runs.size() * 2 + 64);

    ByteBuffer bits;
    BitWriter bw(bits);
    bw.reserve_bits(static_cast<std::size_t>(est_bits) + 64);
    code.encode_all(bw, tokens);
    bw.flush();
    w.varint(bits.size());
    w.bytes(bits);

    w.varint(runs.size());
    for (const auto run : runs) w.varint(run);
    w.varint(exceptions.size());
    for (const auto e : exceptions) w.f64(e);
  }

  void decompress(std::span<const std::uint8_t> in, std::span<double> out,
                  DictContext* dict) const override {
    ByteReader r(in);
    const std::uint64_t n = r.varint();
    if (n != out.size())
      throw CorruptData("szq count mismatch: stored " + std::to_string(n) +
                        ", expected " + std::to_string(out.size()));
    const double eb = r.f64();
    if (n == 0) return;
    if (!(eb > 0.0)) throw CorruptData("szq: non-positive error bound");

    const std::uint8_t stream_flags = r.u8();
    if (stream_flags & ~kFlagSharedDict)
      throw CorruptData("szq: unknown stream flags");

    const std::size_t n_blocks = (n + kBlock - 1) / kBlock;
    const auto predictor_bytes = r.bytes(n_blocks);

    std::shared_ptr<const SzqDict> shared;
    std::optional<HuffmanCode> self_code;
    if (stream_flags & kFlagSharedDict) {
      const std::uint64_t id = r.u64();
      shared = dict != nullptr ? dict->dict() : nullptr;
      if (!shared || shared->id() != id)
        throw CorruptData("szq: stream references shared dictionary " +
                          std::to_string(id) + " which is not installed");
    } else {
      self_code.emplace(HuffmanCode::deserialize(r));
    }
    const HuffmanCode& code = shared ? shared->code() : *self_code;

    const std::uint64_t bit_len = r.varint();
    const auto bit_payload = r.bytes(bit_len);

    const std::uint64_t n_runs = r.varint();
    std::vector<std::uint64_t> runs(n_runs);
    for (auto& run : runs) run = r.varint();

    const std::uint64_t n_exc = r.varint();
    std::vector<double> exceptions(n_exc);
    for (auto& e : exceptions) e = r.f64();

    // Integer token walk reproducing the encoder's grid indices, then one
    // vectorized scale pass turns them into amplitudes; exception values
    // are scattered over their slots afterwards (they are stored exactly).
    std::vector<std::int64_t> q(n);
    std::vector<std::size_t> exc_pos;
    exc_pos.reserve(n_exc);

    BitReader br(bit_payload);
    std::size_t run_cursor = 0, exc_cursor = 0;
    GridHistory h;
    std::size_t i = 0;
    std::uint64_t pending_zero = 0;
    while (i < n) {
      const auto kind =
          static_cast<PredictorKind>(predictor_bytes[i / kBlock] & 1);
      std::int64_t v;
      if (pending_zero > 0) {
        --pending_zero;
        v = predict_grid(kind, h.p1, h.p2, h.have);
      } else {
        const std::uint32_t sym = code.decode(br);
        if (sym == kSymZeroRun) {
          if (run_cursor >= runs.size())
            throw CorruptData("szq: run channel exhausted");
          pending_zero = runs[run_cursor++];
          if (pending_zero == 0) throw CorruptData("szq: zero-length run");
          continue;
        }
        if (sym == kSymException) {
          if (exc_cursor >= exceptions.size())
            throw CorruptData("szq: exception channel exhausted");
          exc_pos.push_back(i);
          v = grid_base(exceptions[exc_cursor++], eb);
        } else if (sym < 2 * kQuantRadius) {
          v = predict_grid(kind, h.p1, h.p2, h.have) +
              (static_cast<std::int64_t>(sym) - kQuantRadius);
        } else {
          throw CorruptData("szq: invalid symbol");
        }
      }
      // Encoder history always satisfies |v| < 2^51; anything else means a
      // corrupt stream (and, unchecked, would eventually overflow the
      // linear predictor).
      if (v >= kGridMax || v <= -kGridMax)
        throw CorruptData("szq: grid index out of range");
      q[i++] = v;
      advance(h, v);
    }

    simd_kernels::scale_grid(q.data(), n, 2.0 * eb, out.data());
    for (std::size_t k = 0; k < exc_pos.size(); ++k)
      out[exc_pos[k]] = exceptions[k];
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Compressor> make_szq() {
  return std::make_unique<SzqCompressor>();
}
}  // namespace detail

}  // namespace memq::compress
