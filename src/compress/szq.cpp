// SZQ: SZ-style error-bounded lossy compressor for double arrays.
//
// Pipeline (matching SZ 2.x's 1D mode, the compressor family the paper's
// "state-of-the-art data compressor" refers to):
//   1. per-block predictor selection (Lorenzo vs. linear, on reconstructed
//      history so encoder and decoder agree),
//   2. error-bounded linear-scaling quantization with exception values,
//   3. zero-run collapsing of long "prediction exact" runs (dominant in the
//      sparse state vectors of GHZ/Grover-style circuits),
//   4. canonical Huffman entropy coding of the symbol stream.
//
// Stream layout (all byte-aligned sections, length-prefixed):
//   varint n | f64 eb | predictor bytes (ceil(n/kBlock)) | huffman table |
//   varint bitlen | symbol bitstream | varint nruns | run varints |
//   varint nexc | exception f64s
#include <vector>

#include "common/error.hpp"
#include "compress/bitstream.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "compress/quantizer.hpp"

namespace memq::compress {

namespace {

constexpr std::size_t kBlock = 4096;
constexpr std::uint64_t kMinZeroRun = 8;

/// Quantizes one block with a fixed predictor, appending symbols/exceptions.
/// Returns a cost proxy (total |q| + heavy penalty per exception) and leaves
/// the reconstructed history for the *next* block in (r1, r2).
double quantize_block(std::span<const double> block, double eb,
                      PredictorKind kind, double& r1, double& r2, int& have,
                      std::vector<std::uint32_t>& symbols,
                      std::vector<double>& exceptions) {
  double cost = 0.0;
  for (const double x : block) {
    const double pred = predict(kind, r1, r2, have);
    const QuantResult qr = quantize(x, pred, eb);
    symbols.push_back(qr.symbol);
    if (qr.symbol == kSymException) {
      exceptions.push_back(x);
      cost += 64.0;
    } else {
      const auto q = static_cast<double>(
          static_cast<std::int64_t>(qr.symbol) - kQuantRadius);
      cost += std::fabs(q) + 1.0;
    }
    r2 = r1;
    r1 = qr.reconstructed;
    have = have < 2 ? have + 1 : 2;
  }
  return cost;
}

class SzqCompressor final : public Compressor {
 public:
  std::string name() const override { return "szq"; }
  bool lossless() const override { return false; }

  void compress(std::span<const double> in, double eb,
                ByteBuffer& out) const override {
    MEMQ_CHECK(eb > 0.0, "szq requires a positive error bound, got " << eb);
    ByteWriter w(out);
    w.varint(in.size());
    w.f64(eb);
    if (in.empty()) return;

    const std::size_t n_blocks = (in.size() + kBlock - 1) / kBlock;
    std::vector<std::uint8_t> predictor_of(n_blocks);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(in.size());
    std::vector<double> exceptions;

    // Per-block predictor selection on reconstructed history. Candidates
    // are scored on a prefix of the block (cheap), then the winner encodes
    // the full block once — both sides resume from the same history, so
    // encoder and decoder stay in lockstep.
    constexpr std::size_t kTrialPrefix = 512;
    double r1 = 0.0, r2 = 0.0;
    int have = 0;
    std::vector<std::uint32_t> trial;
    std::vector<double> trial_exc;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const auto block = in.subspan(
          b * kBlock, std::min(kBlock, in.size() - b * kBlock));
      const auto prefix = block.first(std::min(kTrialPrefix, block.size()));

      PredictorKind winner = PredictorKind::kLorenzo;
      {
        trial.clear();
        trial_exc.clear();
        double t1 = r1, t2 = r2;
        int th = have;
        const double cost_lo = quantize_block(
            prefix, eb, PredictorKind::kLorenzo, t1, t2, th, trial, trial_exc);
        trial.clear();
        trial_exc.clear();
        t1 = r1;
        t2 = r2;
        th = have;
        const double cost_li = quantize_block(
            prefix, eb, PredictorKind::kLinear, t1, t2, th, trial, trial_exc);
        if (cost_li < cost_lo) winner = PredictorKind::kLinear;
      }

      predictor_of[b] = static_cast<std::uint8_t>(winner);
      quantize_block(block, eb, winner, r1, r2, have, symbols, exceptions);
    }

    // Collapse long runs of the "prediction exact" symbol.
    std::vector<std::uint32_t> tokens;
    tokens.reserve(symbols.size());
    std::vector<std::uint64_t> runs;
    for (std::size_t i = 0; i < symbols.size();) {
      if (symbols[i] == kSymZero) {
        std::size_t j = i;
        while (j < symbols.size() && symbols[j] == kSymZero) ++j;
        const std::uint64_t run = j - i;
        if (run >= kMinZeroRun) {
          tokens.push_back(kSymZeroRun);
          runs.push_back(run);
        } else {
          tokens.insert(tokens.end(), run, kSymZero);
        }
        i = j;
      } else {
        tokens.push_back(symbols[i++]);
      }
    }

    std::vector<std::uint64_t> counts(kSzqAlphabet, 0);
    for (const auto t : tokens) ++counts[t];
    const HuffmanCode code = HuffmanCode::from_counts(counts);

    w.bytes({predictor_of.data(), predictor_of.size()});
    code.serialize(w);

    ByteBuffer bits;
    BitWriter bw(bits);
    for (const auto t : tokens) code.encode(bw, t);
    bw.flush();
    w.varint(bits.size());
    w.bytes(bits);

    w.varint(runs.size());
    for (const auto r : runs) w.varint(r);
    w.varint(exceptions.size());
    for (const auto e : exceptions) w.f64(e);
  }

  void decompress(std::span<const std::uint8_t> in,
                  std::span<double> out) const override {
    ByteReader r(in);
    const std::uint64_t n = r.varint();
    if (n != out.size())
      throw CorruptData("szq count mismatch: stored " + std::to_string(n) +
                        ", expected " + std::to_string(out.size()));
    const double eb = r.f64();
    if (n == 0) return;
    if (!(eb > 0.0)) throw CorruptData("szq: non-positive error bound");

    const std::size_t n_blocks = (n + kBlock - 1) / kBlock;
    const auto predictor_bytes = r.bytes(n_blocks);
    const HuffmanCode code = HuffmanCode::deserialize(r);

    const std::uint64_t bit_len = r.varint();
    const auto bit_payload = r.bytes(bit_len);

    const std::uint64_t n_runs = r.varint();
    std::vector<std::uint64_t> runs(n_runs);
    for (auto& run : runs) run = r.varint();

    const std::uint64_t n_exc = r.varint();
    std::vector<double> exceptions(n_exc);
    for (auto& e : exceptions) e = r.f64();

    BitReader br(bit_payload);
    std::size_t run_cursor = 0, exc_cursor = 0;
    double r1 = 0.0, r2 = 0.0;
    int have = 0;
    std::size_t i = 0;
    std::uint64_t pending_zero = 0;
    while (i < n) {
      const auto kind = static_cast<PredictorKind>(
          predictor_bytes[i / kBlock] & 1);
      double value;
      if (pending_zero > 0) {
        --pending_zero;
        value = predict(kind, r1, r2, have);
      } else {
        const std::uint32_t sym = code.decode(br);
        if (sym == kSymZeroRun) {
          if (run_cursor >= runs.size())
            throw CorruptData("szq: run channel exhausted");
          pending_zero = runs[run_cursor++];
          if (pending_zero == 0) throw CorruptData("szq: zero-length run");
          continue;
        }
        if (sym == kSymException) {
          if (exc_cursor >= exceptions.size())
            throw CorruptData("szq: exception channel exhausted");
          value = exceptions[exc_cursor++];
        } else if (sym < 2 * kQuantRadius) {
          value = dequantize(sym, predict(kind, r1, r2, have), eb);
        } else {
          throw CorruptData("szq: invalid symbol");
        }
      }
      out[i++] = value;
      r2 = r1;
      r1 = value;
      have = have < 2 ? have + 1 : 2;
    }
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Compressor> make_szq() {
  return std::make_unique<SzqCompressor>();
}
}  // namespace detail

}  // namespace memq::compress
