// BPC: error-bounded embedded bit-plane codec (ZFP-family alternative to the
// predictive SZQ codec — the second lossy arm of the compressor ablation).
//
// Values are processed in blocks of 64. Each block is converted to sign +
// fixed-point magnitude relative to the block's maximum exponent, then
// magnitude bit-planes are coded MSB-first with significance flags (flat
// EZW-style): per plane, already-significant values emit a refinement bit;
// insignificant values emit a significance bit and, on becoming significant,
// a sign bit. Planes below the error bound are simply not coded, which is
// where the compression comes from.
//
// Pointwise guarantee: |x̂ - x| <= eb, provided eb is not below half an ulp
// of the block maximum (2^(emax-53)); below that the codec stores every
// plane and the residual is the fixed-point rounding error (~exact).
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "compress/bitstream.hpp"
#include "compress/compressor.hpp"

namespace memq::compress {

namespace {

constexpr std::size_t kBlock = 64;
constexpr int kPrecision = 54;  // magnitude bits kept per value

class BpcCompressor final : public Compressor {
 public:
  std::string name() const override { return "bpc"; }
  bool lossless() const override { return false; }

  void compress(std::span<const double> in, double eb,
                ByteBuffer& out) const override {
    MEMQ_CHECK(eb > 0.0, "bpc requires a positive error bound, got " << eb);
    ByteWriter w(out);
    w.varint(in.size());
    w.f64(eb);
    if (in.empty()) return;

    ByteBuffer bits;
    BitWriter bw(bits);
    ByteBuffer side;  // per-block emax values, byte-aligned
    ByteWriter sw(side);

    for (std::size_t base = 0; base < in.size(); base += kBlock) {
      const auto block =
          in.subspan(base, std::min(kBlock, in.size() - base));
      encode_block(block, eb, bw, sw);
    }
    bw.flush();
    w.varint(side.size());
    w.bytes(side);
    w.varint(bits.size());
    w.bytes(bits);
  }

  void decompress(std::span<const std::uint8_t> in,
                  std::span<double> out) const override {
    ByteReader r(in);
    const std::uint64_t n = r.varint();
    if (n != out.size())
      throw CorruptData("bpc count mismatch: stored " + std::to_string(n));
    const double eb = r.f64();
    if (n == 0) return;
    if (!(eb > 0.0)) throw CorruptData("bpc: non-positive error bound");

    const std::uint64_t side_len = r.varint();
    ByteReader side(r.bytes(side_len));
    const std::uint64_t bit_len = r.varint();
    BitReader br(r.bytes(bit_len));

    for (std::size_t base = 0; base < n; base += kBlock) {
      const auto block = out.subspan(base, std::min(kBlock, n - base));
      decode_block(block, eb, br, side);
    }
  }

 private:
  /// Lowest plane index (inclusive) that must be coded for bound `eb` given
  /// block scale 2^(emax - kPrecision + 1) per plane-0 bit.
  static int min_plane(int emax, double eb) {
    // A bit in plane b is worth 2^(emax - kPrecision + 1 + b). All uncoded
    // planes below b_min contribute < 2^(emax - kPrecision + 1 + b_min),
    // so choose the largest b_min with that value <= eb.
    const double log2eb = std::log2(eb);
    const int b = static_cast<int>(
        std::floor(log2eb - (emax - kPrecision + 1)));
    if (b < 0) return 0;
    if (b > kPrecision - 1) return kPrecision;  // nothing to code
    return b;
  }

  static void encode_block(std::span<const double> block, double eb,
                           BitWriter& bw, ByteWriter& sw) {
    double max_abs = 0.0;
    for (const double x : block) max_abs = std::max(max_abs, std::fabs(x));
    if (max_abs == 0.0 || max_abs <= eb) {
      sw.u8(0);  // zero block (or entirely below the bound)
      return;
    }
    sw.u8(1);
    int emax;
    std::frexp(max_abs, &emax);  // max_abs = f * 2^emax, f in [0.5, 1)
    sw.svarint(emax);

    // Fixed point: q = round(x * 2^(kPrecision - emax)), |q| < 2^kPrecision.
    const double scale = std::ldexp(1.0, kPrecision - emax);
    std::uint64_t mag[kBlock];
    bool neg[kBlock];
    for (std::size_t i = 0; i < block.size(); ++i) {
      const double s = block[i] * scale;
      const auto q = static_cast<std::int64_t>(std::llround(s));
      neg[i] = q < 0;
      mag[i] = static_cast<std::uint64_t>(neg[i] ? -q : q);
      // |s| can round up to exactly 2^kPrecision; clamp so the top set bit
      // stays inside the coded planes (costs at most one fixed-point unit).
      constexpr std::uint64_t kMaxMag = (std::uint64_t{1} << kPrecision) - 1;
      if (mag[i] > kMaxMag) mag[i] = kMaxMag;
    }

    const int b_min = min_plane(emax, eb);
    std::uint64_t significant = 0;  // bitmap over block positions
    for (int b = kPrecision - 1; b >= b_min; --b) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        const bool bit = (mag[i] >> b) & 1;
        if ((significant >> i) & 1) {
          bw.write_bit(bit);  // refinement
        } else {
          bw.write_bit(bit);  // significance
          if (bit) {
            significant |= std::uint64_t{1} << i;
            bw.write_bit(neg[i]);
          }
        }
      }
    }
  }

  static void decode_block(std::span<double> block, double eb, BitReader& br,
                           ByteReader& side) {
    const std::uint8_t flag = side.u8();
    if (flag == 0) {
      for (auto& x : block) x = 0.0;
      return;
    }
    if (flag != 1) throw CorruptData("bpc: bad block flag");
    const auto emax = static_cast<int>(side.svarint());
    if (emax < -2000 || emax > 2000)
      throw CorruptData("bpc: implausible block exponent");

    const int b_min = min_plane(emax, eb);
    std::uint64_t mag[kBlock] = {};
    bool neg[kBlock] = {};
    std::uint64_t significant = 0;
    for (int b = kPrecision - 1; b >= b_min; --b) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        const bool bit = br.read_bit();
        if (bit) {
          mag[i] |= std::uint64_t{1} << b;
          if (!((significant >> i) & 1)) {
            significant |= std::uint64_t{1} << i;
            neg[i] = br.read_bit();
          }
        }
      }
    }

    const double inv_scale = std::ldexp(1.0, emax - kPrecision);
    // Mid-tread reconstruction: add half of the uncoded tail to significant
    // values so truncation error is centered.
    const double round_up =
        b_min > 0 ? std::ldexp(1.0, b_min - 1) : 0.0;
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (mag[i] == 0) {
        block[i] = 0.0;
        continue;
      }
      const double m = static_cast<double>(mag[i]) + round_up;
      block[i] = (neg[i] ? -m : m) * inv_scale;
    }
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Compressor> make_bpc() {
  return std::make_unique<BpcCompressor>();
}
}  // namespace detail

}  // namespace memq::compress
