// Runtime-dispatched SIMD kernels for the codec hot loops: grid
// quantization, grid dequantization, plane split/merge, and max|x|.
//
// Contract: every kernel's output is byte-identical across dispatch levels
// (test-enforced). That works because the only arithmetic involved —
// IEEE-754 division, multiplication, round-to-nearest-even, and exact
// int64<->double conversion of |q| < 2^51 — is exactly rounded, so scalar
// and vector lanes produce the same bits. Dispatch is decided per call
// from memq::simd::active() (see common/cpu_features.hpp).
#pragma once

#include <cstddef>
#include <cstdint>

namespace memq::compress::simd_kernels {

/// q[i] = roundeven(x[i] / 2eb); flags[i] = kGridQuantizable/kGridInRange
/// bits (quantizer.hpp). Matches grid_quantize_one element-wise.
void quantize_grid(const double* x, std::size_t n, double eb, std::int64_t* q,
                   std::uint8_t* flags);

/// out[i] = eb2 * (double)q[i]. Requires |q[i]| <= 2^51.
void scale_grid(const std::int64_t* q, std::size_t n, double eb2,
                double* out);

/// max over |x[i]| (0.0 for n == 0).
double max_abs(const double* x, std::size_t n);

/// Deinterleaves n complex values ([re,im] pairs, 2n doubles) into planes.
void split_interleaved(const double* interleaved, std::size_t n, double* re,
                       double* im);

/// Inverse of split_interleaved.
void merge_interleaved(const double* re, const double* im, std::size_t n,
                       double* interleaved);

}  // namespace memq::compress::simd_kernels
