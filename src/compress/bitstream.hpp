// Bit-granular writer/reader on top of ByteBuffer, LSB-first within bytes.
// Used by the Huffman coder, the Gorilla codec and the bit-plane codec.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "compress/byte_buffer.hpp"

namespace memq::compress {

namespace detail {
constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}
}  // namespace detail

class BitWriter {
 public:
  explicit BitWriter(ByteBuffer& out) : out_(out) {}

  /// Appends the low `n` bits of `bits` (n in [0, 64]), LSB first.
  void write(std::uint64_t bits, unsigned n) {
    MEMQ_ASSERT(n <= 64);
    bits &= detail::low_mask(n);
    // Invariant between calls: fill_ < 8, so a <=56-bit chunk always fits
    // in the 64-bit accumulator.
    while (n > 0) {
      const unsigned take = std::min(n, 56u);
      acc_ |= (bits & detail::low_mask(take)) << fill_;
      fill_ += take;
      while (fill_ >= 8) {
        out_.push_back(static_cast<std::uint8_t>(acc_));
        acc_ >>= 8;
        fill_ -= 8;
      }
      bits >>= take;
      n -= take;
    }
  }

  void write_bit(bool b) { write(b ? 1 : 0, 1); }

  /// Pads to a byte boundary with zero bits.
  void flush() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      fill_ = 0;
    }
  }

  std::size_t bits_written() const noexcept { return out_.size() * 8 + fill_; }

 private:
  ByteBuffer& out_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Reads `n` bits (n in [0, 64]), LSB first. Throws CorruptData past the end.
  std::uint64_t read(unsigned n) {
    MEMQ_ASSERT(n <= 64);
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < n) {
      if (fill_ == 0) refill();
      const unsigned take = std::min(n - got, fill_);
      out |= (acc_ & detail::low_mask(take)) << got;
      acc_ = take >= 64 ? 0 : acc_ >> take;  // >>64 would be UB
      fill_ -= take;
      got += take;
    }
    return out;
  }

  bool read_bit() { return read(1) != 0; }

  /// Discards buffered bits up to the next byte boundary.
  void align() {
    const unsigned drop = fill_ % 8;
    acc_ >>= drop;
    fill_ -= drop;
  }

  std::size_t bits_consumed() const noexcept { return pos_ * 8 - fill_; }

 private:
  void refill() {
    while (fill_ <= 56 && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
    if (fill_ == 0)
      throw CorruptData("bit stream truncated at bit " +
                        std::to_string(bits_consumed()));
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

}  // namespace memq::compress
