// Bit-granular writer/reader on top of ByteBuffer, LSB-first within bytes.
// Used by the Huffman coder, the Gorilla codec and the bit-plane codec.
//
// Hot-path shape: the writer accumulates up to 63 bits and appends whole
// 64-bit words; the reader refills up to 8 bytes per bounds check and
// exposes peek/consume so table-driven decoders (Huffman LUT) pay one
// bounds check per symbol instead of one per bit. Byte output/consumption
// is identical to the historical per-byte loops — the bit->byte mapping is
// position-determined, so batching changes speed, never bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "compress/byte_buffer.hpp"

namespace memq::compress {

namespace detail {
constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}
}  // namespace detail

class BitWriter {
 public:
  explicit BitWriter(ByteBuffer& out) : out_(out) {}

  /// Appends the low `n` bits of `bits` (n in [0, 64]), LSB first.
  void write(std::uint64_t bits, unsigned n) {
    MEMQ_ASSERT(n <= 64);
    bits &= detail::low_mask(n);
    // Invariant between calls: fill_ < 64.
    if (fill_ + n < 64) {
      acc_ |= bits << fill_;
      fill_ += n;
      return;
    }
    const unsigned take = 64 - fill_;  // take <= n, since fill_ + n >= 64
    acc_ |= take >= 64 ? bits : (bits & detail::low_mask(take)) << fill_;
    flush_word();
    acc_ = take >= 64 ? 0 : bits >> take;
    fill_ = n - take;
  }

  void write_bit(bool b) { write(b ? 1 : 0, 1); }

  /// Pads to a byte boundary with zero bits.
  void flush() {
    while (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      fill_ = fill_ > 8 ? fill_ - 8 : 0;
    }
    acc_ = 0;
  }

  /// Pre-sizes the output for ~`n` more bits (one amortized allocation when
  /// the encoder knows its size up front).
  void reserve_bits(std::size_t n) { out_.reserve(out_.size() + n / 8 + 8); }

  std::size_t bits_written() const noexcept { return out_.size() * 8 + fill_; }

 private:
  void flush_word() {
    const std::size_t at = out_.size();
    out_.resize(at + 8);
    std::uint8_t* p = out_.data() + at;
    std::uint64_t a = acc_;
    for (int b = 0; b < 8; ++b) {  // folds to one store on little-endian
      p[b] = static_cast<std::uint8_t>(a);
      a >>= 8;
    }
  }

  ByteBuffer& out_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Reads `n` bits (n in [0, 64]), LSB first. Throws CorruptData past the end.
  std::uint64_t read(unsigned n) {
    MEMQ_ASSERT(n <= 64);
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < n) {
      if (fill_ == 0) refill();
      const unsigned take = std::min(n - got, fill_);
      out |= (acc_ & detail::low_mask(take)) << got;
      acc_ = take >= 64 ? 0 : acc_ >> take;  // >>64 would be UB
      fill_ -= take;
      got += take;
    }
    return out;
  }

  bool read_bit() { return read(1) != 0; }

  /// Ensures >= n buffered bits when the stream still has them; returns
  /// whether it succeeded. Never throws — callers fall back to the
  /// bit-by-bit path (which reports truncation) when this returns false.
  bool prefetch(unsigned n) {
    MEMQ_ASSERT(n <= 56);
    if (fill_ < n) refill_soft();
    return fill_ >= n;
  }

  /// Next `n` buffered bits without consuming. Requires prefetch(n) == true.
  std::uint64_t peek(unsigned n) const noexcept {
    return acc_ & detail::low_mask(n);
  }

  /// Drops `n` buffered bits. Requires n <= buffered bits.
  void consume(unsigned n) {
    MEMQ_ASSERT(n <= fill_);
    acc_ >>= n;
    fill_ -= n;
  }

  /// Discards buffered bits up to the next byte boundary.
  void align() {
    const unsigned drop = fill_ % 8;
    acc_ >>= drop;
    fill_ -= drop;
  }

  std::size_t bits_consumed() const noexcept { return pos_ * 8 - fill_; }

 private:
  void refill_soft() noexcept {
    const std::size_t avail = data_.size() - pos_;
    if (avail >= 8 && fill_ < 56) {
      // Bulk path: one unaligned 8-byte load (the shift-OR folds to a
      // single little-endian load), keep as many whole bytes as fit.
      const std::uint8_t* p = data_.data() + pos_;
      std::uint64_t w = 0;
      for (unsigned b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(p[b]) << (8 * b);
      const unsigned take = (64 - fill_) >> 3;  // bytes, 1..8
      acc_ |= (w & detail::low_mask(8 * take)) << fill_;
      pos_ += take;
      fill_ += 8 * take;
      return;
    }
    while (fill_ <= 56 && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
  }

  void refill() {
    refill_soft();
    if (fill_ == 0)
      throw CorruptData("bit stream truncated at bit " +
                        std::to_string(bits_consumed()));
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

}  // namespace memq::compress
