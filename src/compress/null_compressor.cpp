// Passthrough "compressor": raw little-endian doubles. The control arm of
// every compression experiment, and the storage codec when compression is
// disabled in the engine config.
#include <cstring>

#include "compress/compressor.hpp"

namespace memq::compress {

namespace {

class NullCompressor final : public Compressor {
 public:
  std::string name() const override { return "null"; }
  bool lossless() const override { return true; }

  void compress(std::span<const double> in, double /*eb_abs*/,
                ByteBuffer& out) const override {
    ByteWriter w(out);
    w.varint(in.size());
    const std::size_t offset = out.size();
    out.resize(offset + in.size() * sizeof(double));
    std::memcpy(out.data() + offset, in.data(), in.size() * sizeof(double));
  }

  void decompress(std::span<const std::uint8_t> in,
                  std::span<double> out) const override {
    ByteReader r(in);
    const std::uint64_t n = r.varint();
    if (n != out.size())
      throw CorruptData("null codec count mismatch: stored " +
                        std::to_string(n) + ", expected " +
                        std::to_string(out.size()));
    const auto payload = r.bytes(n * sizeof(double));
    std::memcpy(out.data(), payload.data(), payload.size());
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Compressor> make_null() {
  return std::make_unique<NullCompressor>();
}
}  // namespace detail

}  // namespace memq::compress
