#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/cpu_features.hpp"
#include "common/error.hpp"

namespace memq::compress {
namespace {

/// Reverses the low `len` bits of `code`. The bitstream is LSB-first, so
/// emitting the reversed code with one write() puts the MSB of the
/// canonical code on the wire first — identical bits to the per-bit loop.
std::uint64_t reverse_bits(std::uint64_t code, unsigned len) noexcept {
  std::uint64_t rev = 0;
  for (unsigned i = 0; i < len; ++i) rev |= ((code >> i) & 1) << (len - 1 - i);
  return rev;
}

constexpr std::uint64_t kEntryCodeMask = (std::uint64_t{1} << 56) - 1;

/// Computes optimal code lengths for the nonzero-count symbols using the
/// standard heap construction. Returns lengths parallel to `counts`.
std::vector<std::uint8_t> code_lengths(std::span<const std::uint64_t> counts) {
  struct Node {
    std::uint64_t weight;
    std::int32_t left;   // node index or ~symbol for leaves
    std::int32_t right;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, std::int32_t>;  // (weight, node)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    nodes.push_back({counts[s], ~static_cast<std::int32_t>(s), 0});
    heap.emplace(counts[s], static_cast<std::int32_t>(nodes.size() - 1));
  }
  MEMQ_CHECK(!heap.empty(), "Huffman build with all-zero counts");

  std::vector<std::uint8_t> lengths(counts.size(), 0);
  if (heap.size() == 1) {
    // Single distinct symbol: give it a 1-bit code.
    const auto leaf = nodes[static_cast<std::size_t>(heap.top().second)];
    lengths[static_cast<std::uint32_t>(~leaf.left)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b});
    heap.emplace(wa + wb, static_cast<std::int32_t>(nodes.size() - 1));
  }

  // Iterative depth assignment from the root.
  std::vector<std::pair<std::int32_t, std::uint8_t>> stack;
  stack.emplace_back(heap.top().second, 0);
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    // Leaves carry ~symbol in `left`; internal nodes have left >= 0.
    if (n.left < 0) {
      lengths[static_cast<std::uint32_t>(~n.left)] = depth == 0 ? 1 : depth;
      continue;
    }
    stack.emplace_back(n.left, static_cast<std::uint8_t>(depth + 1));
    stack.emplace_back(n.right, static_cast<std::uint8_t>(depth + 1));
  }
  return lengths;
}

}  // namespace

HuffmanCode HuffmanCode::from_counts(std::span<const std::uint64_t> counts) {
  MEMQ_CHECK(!counts.empty(), "empty alphabet");
  std::vector<std::uint64_t> scaled(counts.begin(), counts.end());
  HuffmanCode hc;
  for (;;) {
    hc.lengths_ = code_lengths(scaled);
    const unsigned max_len =
        *std::max_element(hc.lengths_.begin(), hc.lengths_.end());
    if (max_len <= kMaxCodeLen) break;
    // Flatten the distribution and retry; terminates because counts converge
    // to all-equal (=> balanced tree, depth ceil(log2(alphabet)) < kMaxCodeLen
    // for any alphabet that fits in memory).
    for (auto& c : scaled)
      if (c > 0) c = (c + 1) / 2;
  }
  hc.build_tables();
  return hc;
}

void HuffmanCode::build_tables() {
  max_len_ = 0;
  for (const auto len : lengths_) max_len_ = std::max<unsigned>(max_len_, len);
  MEMQ_CHECK(max_len_ > 0 && max_len_ <= kMaxCodeLen,
             "invalid max code length " << max_len_);

  count_by_len_.assign(max_len_ + 1, 0);
  for (const auto len : lengths_)
    if (len > 0) ++count_by_len_[len];

  // Kraft check so corrupted tables can't send the decoder out of bounds.
  std::uint64_t kraft = 0;
  for (unsigned l = 1; l <= max_len_; ++l)
    kraft += static_cast<std::uint64_t>(count_by_len_[l])
             << (max_len_ - l);
  MEMQ_CHECK(kraft <= (std::uint64_t{1} << max_len_),
             "code lengths violate the Kraft inequality");

  // Canonical first codes per length.
  first_code_.assign(max_len_ + 2, 0);
  std::uint64_t code = 0;
  for (unsigned l = 1; l <= max_len_; ++l) {
    code = (code + count_by_len_[l - 1]) << 1;
    first_code_[l] = code;
  }

  // Symbols sorted by (length, symbol); first_index_[l] points at the block
  // of symbols with code length l.
  first_index_.assign(max_len_ + 2, 0);
  for (unsigned l = 1; l <= max_len_; ++l)
    first_index_[l + 1] = first_index_[l] + count_by_len_[l];
  sorted_symbols_.assign(first_index_[max_len_ + 1], 0);
  std::vector<std::uint32_t> cursor(first_index_.begin(), first_index_.end());
  for (std::uint32_t s = 0; s < lengths_.size(); ++s)
    if (lengths_[s] > 0) sorted_symbols_[cursor[lengths_[s]]++] = s;

  // Per-symbol canonical codes for the encoder.
  codes_.assign(lengths_.size(), 0);
  std::vector<std::uint64_t> next(first_code_.begin(), first_code_.end());
  for (unsigned l = 1; l <= max_len_; ++l) {
    for (std::uint32_t i = first_index_[l]; i < first_index_[l + 1]; ++i)
      codes_[sorted_symbols_[i]] = next[l]++;
  }

  // Packed encoder entries: bit-reversed code + length in one u64, so the
  // encode hot loop is a table load and a single BitWriter::write.
  enc_entry_.assign(lengths_.size(), 0);
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    const unsigned len = lengths_[s];
    if (len == 0) continue;
    enc_entry_[s] =
        reverse_bits(codes_[s], len) | (static_cast<std::uint64_t>(len) << 56);
  }

  // Decoder LUT over the next kLutBits stream bits: every code of length
  // <= kLutBits owns all entries whose low bits match its reversed code.
  const unsigned lut_len = std::min(max_len_, kLutBits);
  lut_.assign(std::size_t{1} << kLutBits, 0);
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    const unsigned len = lengths_[s];
    if (len == 0 || len > lut_len) continue;
    const std::uint64_t rev = reverse_bits(codes_[s], len);
    const std::uint32_t entry = (s << 6) | len;
    for (std::uint64_t hi = 0; hi < (std::uint64_t{1} << (kLutBits - len));
         ++hi)
      lut_[rev | (hi << len)] = entry;
  }
}

void HuffmanCode::serialize(ByteWriter& w) const {
  w.varint(lengths_.size());
  // RLE: (length byte, run varint) pairs; long zero runs are the common case.
  std::size_t i = 0;
  while (i < lengths_.size()) {
    std::size_t j = i;
    while (j < lengths_.size() && lengths_[j] == lengths_[i]) ++j;
    w.u8(lengths_[i]);
    w.varint(j - i);
    i = j;
  }
}

HuffmanCode HuffmanCode::deserialize(ByteReader& r) {
  const std::uint64_t n = r.varint();
  MEMQ_CHECK(n > 0 && n <= (std::uint64_t{1} << 24),
             "implausible Huffman alphabet size " << n);
  HuffmanCode hc;
  hc.lengths_.reserve(n);
  while (hc.lengths_.size() < n) {
    const std::uint8_t len = r.u8();
    if (len > kMaxCodeLen) throw CorruptData("Huffman code length too large");
    const std::uint64_t run = r.varint();
    if (hc.lengths_.size() + run > n)
      throw CorruptData("Huffman length RLE overruns alphabet");
    hc.lengths_.insert(hc.lengths_.end(), run, len);
  }
  hc.build_tables();
  return hc;
}

void HuffmanCode::encode(BitWriter& bw, std::uint32_t symbol) const {
  MEMQ_CHECK(symbol < enc_entry_.size() && enc_entry_[symbol] != 0,
             "encoding symbol " << symbol << " with no Huffman code");
  const std::uint64_t e = enc_entry_[symbol];
  // Reversed-code emission == MSB-first per-bit emission on the LSB-first
  // stream; one write instead of `len` write_bit calls.
  bw.write(e & kEntryCodeMask, static_cast<unsigned>(e >> 56));
}

#if defined(__x86_64__)
__attribute__((target("avx2"))) static void encode_all_avx2(
    BitWriter& bw, std::span<const std::uint32_t> tokens,
    const std::uint64_t* entries, std::size_t alphabet) {
  // Gather 4 packed entries per iteration; emission stays sequential (the
  // bitstream is inherently serial), so bits are identical to the scalar
  // loop — the gather only batches the table lookups.
  std::size_t i = 0;
  alignas(32) std::uint64_t lane[4];
  for (; i + 4 <= tokens.size(); i += 4) {
    const std::uint32_t t0 = tokens[i], t1 = tokens[i + 1];
    const std::uint32_t t2 = tokens[i + 2], t3 = tokens[i + 3];
    if ((t0 >= alphabet) | (t1 >= alphabet) | (t2 >= alphabet) |
        (t3 >= alphabet))
      break;  // fall through to the checked scalar tail
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(tokens.data() + i));
    const __m256i e = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(entries), idx, 8);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), e);
    for (int k = 0; k < 4; ++k) {
      MEMQ_CHECK(lane[k] != 0, "encoding symbol " << tokens[i + k]
                                                  << " with no Huffman code");
      bw.write(lane[k] & kEntryCodeMask, static_cast<unsigned>(lane[k] >> 56));
    }
  }
  for (; i < tokens.size(); ++i) {
    const std::uint32_t t = tokens[i];
    MEMQ_CHECK(t < alphabet && entries[t] != 0,
               "encoding symbol " << t << " with no Huffman code");
    bw.write(entries[t] & kEntryCodeMask,
             static_cast<unsigned>(entries[t] >> 56));
  }
}
#endif

void HuffmanCode::encode_all(BitWriter& bw,
                             std::span<const std::uint32_t> tokens) const {
#if defined(__x86_64__)
  if (simd::active() == simd::IsaLevel::kAvx2) {
    encode_all_avx2(bw, tokens, enc_entry_.data(), enc_entry_.size());
    return;
  }
#endif
  for (const std::uint32_t t : tokens) encode(bw, t);
}

std::uint32_t HuffmanCode::decode(BitReader& br) const {
  if (br.prefetch(kLutBits)) {
    const std::uint32_t e = lut_[br.peek(kLutBits)];
    if (e != 0) {
      br.consume(e & 63);
      return e >> 6;
    }
  }
  // Long code, or fewer than kLutBits left in the stream.
  return decode_slow(br);
}

std::uint32_t HuffmanCode::decode_slow(BitReader& br) const {
  std::uint64_t code = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    code = (code << 1) | (br.read_bit() ? 1 : 0);
    if (count_by_len_[len] == 0) continue;
    const std::uint64_t first = first_code_[len];
    if (code >= first && code - first < count_by_len_[len])
      return sorted_symbols_[first_index_[len] +
                             static_cast<std::uint32_t>(code - first)];
  }
  throw CorruptData("invalid Huffman code word");
}

double HuffmanCode::mean_code_length(
    std::span<const std::uint64_t> counts) const {
  std::uint64_t total = 0, bits = 0;
  for (std::uint32_t s = 0; s < counts.size() && s < lengths_.size(); ++s) {
    total += counts[s];
    bits += counts[s] * lengths_[s];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(bits) / static_cast<double>(total);
}

}  // namespace memq::compress
