// Lossless XOR compressor for doubles in the style of Facebook's Gorilla
// (Pelkonen et al., VLDB 2015).
//
// State-vector amplitudes evolve smoothly under many circuits, so consecutive
// values share exponent and high mantissa bits; XOR-with-previous then has
// long leading/trailing zero runs. This is the lossless arm of the qubit-
// extension experiment (E2): it shows how much of the paper's claim needs
// *lossy* compression.
#include <bit>

#include "compress/bitstream.hpp"
#include "compress/compressor.hpp"

namespace memq::compress {

namespace {

std::uint64_t to_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

class GorillaCompressor final : public Compressor {
 public:
  std::string name() const override { return "gorilla"; }
  bool lossless() const override { return true; }

  void compress(std::span<const double> in, double /*eb_abs*/,
                ByteBuffer& out) const override {
    ByteWriter w(out);
    w.varint(in.size());
    if (in.empty()) return;

    ByteBuffer bits;
    BitWriter bw(bits);
    std::uint64_t prev = to_bits(in[0]);
    bw.write(prev, 64);
    unsigned win_lz = 65, win_len = 0;  // invalid window sentinel

    for (std::size_t i = 1; i < in.size(); ++i) {
      const std::uint64_t cur = to_bits(in[i]);
      const std::uint64_t x = cur ^ prev;
      prev = cur;
      if (x == 0) {
        bw.write_bit(false);
        continue;
      }
      bw.write_bit(true);
      unsigned lz = static_cast<unsigned>(std::countl_zero(x));
      const unsigned tz = static_cast<unsigned>(std::countr_zero(x));
      if (lz > 31) lz = 31;  // lz field is 5 bits
      const unsigned len = 64 - lz - tz;
      if (win_lz <= 31 && lz >= win_lz && 64 - win_lz - win_len <= tz) {
        // Fits the previous window: reuse it (control bit 0).
        bw.write_bit(false);
        bw.write(x >> (64 - win_lz - win_len), win_len);
      } else {
        bw.write_bit(true);
        bw.write(lz, 5);
        bw.write(len - 1, 6);  // len in [1,64]
        bw.write(x >> tz, len);
        win_lz = lz;
        win_len = len;
      }
    }
    bw.flush();
    w.varint(bits.size());
    w.bytes(bits);
  }

  void decompress(std::span<const std::uint8_t> in,
                  std::span<double> out) const override {
    ByteReader r(in);
    const std::uint64_t n = r.varint();
    if (n != out.size())
      throw CorruptData("gorilla count mismatch: stored " + std::to_string(n));
    if (n == 0) return;
    const std::uint64_t payload_len = r.varint();
    BitReader br(r.bytes(payload_len));

    std::uint64_t prev = br.read(64);
    out[0] = from_bits(prev);
    unsigned win_lz = 0, win_len = 0;
    bool win_valid = false;
    for (std::size_t i = 1; i < n; ++i) {
      if (!br.read_bit()) {
        out[i] = from_bits(prev);
        continue;
      }
      if (br.read_bit()) {
        win_lz = static_cast<unsigned>(br.read(5));
        win_len = static_cast<unsigned>(br.read(6)) + 1;
        win_valid = true;
      } else if (!win_valid) {
        throw CorruptData("gorilla: window reuse before any window");
      }
      if (win_lz + win_len > 64)
        throw CorruptData("gorilla: invalid window geometry");
      const std::uint64_t meaningful = br.read(win_len);
      prev ^= meaningful << (64 - win_lz - win_len);
      out[i] = from_bits(prev);
    }
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Compressor> make_gorilla() {
  return std::make_unique<GorillaCompressor>();
}
}  // namespace detail

}  // namespace memq::compress
