#include "compress/dictionary.hpp"

#include "common/error.hpp"
#include "common/hash.hpp"

namespace memq::compress {

using common::fnv1a64;

SzqDict SzqDict::build(std::span<const std::uint64_t> counts) {
  // +1 smoothing: every alphabet symbol gets a nonzero count, hence a code.
  // Later chunks can therefore always be encoded against this table, no
  // matter how their distribution differs from the training sample; poor
  // fits are handled by the per-chunk escape, not by missing codes.
  std::vector<std::uint64_t> smoothed(counts.begin(), counts.end());
  for (auto& c : smoothed) c += 1;
  HuffmanCode code = HuffmanCode::from_counts(smoothed);
  ByteBuffer table;
  ByteWriter w(table);
  code.serialize(w);
  return SzqDict(std::move(code), fnv1a64(table));
}

void SzqDict::serialize(ByteWriter& w) const {
  w.u64(id_);
  code_.serialize(w);
}

SzqDict SzqDict::deserialize(ByteReader& r) {
  const std::uint64_t stored_id = r.u64();
  HuffmanCode code = HuffmanCode::deserialize(r);
  ByteBuffer table;
  ByteWriter w(table);
  code.serialize(w);
  if (fnv1a64(table) != stored_id)
    throw CorruptData("szq dictionary id does not match its table");
  return SzqDict(std::move(code), stored_id);
}

void DictContext::observe(std::span<const std::uint64_t> counts,
                          std::uint64_t tokens) {
  std::lock_guard lock(mu_);
  if (dict_) return;
  if (counts_.size() < counts.size()) counts_.resize(counts.size(), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) counts_[i] += counts[i];
  tokens_seen_ += tokens;
  ++chunks_seen_;
  if (chunks_seen_ >= kTrainChunks && tokens_seen_ >= kTrainTokens) {
    build_locked();
  }
}

std::shared_ptr<const SzqDict> DictContext::dict() const {
  std::lock_guard lock(mu_);
  return dict_;
}

void DictContext::train_now() {
  std::lock_guard lock(mu_);
  if (dict_ || chunks_seen_ == 0) return;
  build_locked();
}

void DictContext::install(std::shared_ptr<const SzqDict> dict) {
  std::lock_guard lock(mu_);
  dict_ = std::move(dict);
}

std::uint64_t DictContext::chunks_observed() const {
  std::lock_guard lock(mu_);
  return chunks_seen_;
}

void DictContext::build_locked() {
  dict_ = std::make_shared<const SzqDict>(SzqDict::build(counts_));
  counts_.clear();
  counts_.shrink_to_fit();
}

}  // namespace memq::compress
