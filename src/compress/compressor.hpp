// Abstract compressor interface + registry.
//
// The paper stresses that MEMQSim is "adaptable to accommodate various
// compression algorithms"; this is that seam. Compressors operate on flat
// double arrays (the chunk codec splits complex amplitudes into re/im
// planes). All implementations are stateless and thread-safe: the pipeline
// calls them concurrently from CPU workers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "compress/byte_buffer.hpp"

namespace memq::compress {

class DictContext;  // dictionary.hpp — run-level shared entropy tables

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Registry name ("szq", "gorilla", "bpc", "null").
  virtual std::string name() const = 0;

  /// True if decompression is bit-exact regardless of the error bound.
  virtual bool lossless() const = 0;

  /// Compresses `in` with pointwise absolute error bound `eb_abs` and
  /// appends the encoded form to `out`. Lossless codecs ignore `eb_abs`.
  /// Lossy codecs require eb_abs > 0.
  virtual void compress(std::span<const double> in, double eb_abs,
                        ByteBuffer& out) const = 0;

  /// Inverse of compress(); `out.size()` must equal the original count
  /// (callers know it from their own headers). Throws CorruptData on
  /// malformed input.
  virtual void decompress(std::span<const std::uint8_t> in,
                          std::span<double> out) const = 0;

  /// Dictionary-aware variants. `dict` carries run-level shared entropy
  /// tables (see dictionary.hpp); codecs that support them (szq) consult
  /// and train it, everything else forwards to the plain overloads. A
  /// stream encoded with a dictionary requires the same dictionary (by id)
  /// to decode; CorruptData otherwise.
  virtual void compress(std::span<const double> in, double eb_abs,
                        ByteBuffer& out, DictContext* dict) const {
    (void)dict;
    compress(in, eb_abs, out);
  }
  virtual void decompress(std::span<const std::uint8_t> in,
                          std::span<double> out, DictContext* dict) const {
    (void)dict;
    decompress(in, out);
  }
};

/// Creates a compressor by registry name; throws InvalidArgument for
/// unknown names.
std::unique_ptr<Compressor> make_compressor(const std::string& name);

/// All registered names, in registration order.
std::vector<std::string> compressor_names();

}  // namespace memq::compress
