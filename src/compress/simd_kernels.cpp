#include "compress/simd_kernels.hpp"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/cpu_features.hpp"
#include "compress/quantizer.hpp"

namespace memq::compress::simd_kernels {

namespace {

// ------------------------------------------------------------- scalar ----

void quantize_grid_scalar(const double* x, std::size_t n, double eb,
                          std::int64_t* q, std::uint8_t* flags) {
  for (std::size_t i = 0; i < n; ++i) grid_quantize_one(x[i], eb, q[i], flags[i]);
}

void scale_grid_scalar(const std::int64_t* q, std::size_t n, double eb2,
                       double* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = eb2 * static_cast<double>(q[i]);
}

double max_abs_scalar(const double* x, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

void split_scalar(const double* in, std::size_t n, double* re, double* im) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = in[2 * i];
    im[i] = in[2 * i + 1];
  }
}

void merge_scalar(const double* re, const double* im, std::size_t n,
                  double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[2 * i] = re[i];
    out[2 * i + 1] = im[i];
  }
}

#if defined(__x86_64__)

// int64 <-> double magic constant: 2^52 + 2^51. Adding it to an integral
// double r with |r| < 2^51 lands in [2^52, 2^53), where the mantissa IS
// r + 2^51 in two's-complement-compatible form, so subtracting the
// constant's bit pattern (0x4338...) yields r as int64 — and the reverse
// gives an exact int64 -> double conversion (AVX2 has neither direction).
constexpr double kMagic = 6755399441055744.0;
constexpr long long kMagicBits = 0x4338000000000000LL;

// --------------------------------------------------------------- AVX2 ----

__attribute__((target("avx2"))) void quantize_grid_avx2(
    const double* x, std::size_t n, double eb, std::int64_t* q,
    std::uint8_t* flags) {
  const double eb2 = 2.0 * eb;
  const __m256d veb2 = _mm256_set1_pd(eb2);
  const __m256d veb = _mm256_set1_pd(eb);
  const __m256d vlim = _mm256_set1_pd(kGridLimit);
  const __m256d vabs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d vmagic = _mm256_set1_pd(kMagic);
  const __m256i vmagic_bits = _mm256_set1_epi64x(kMagicBits);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vs = _mm256_div_pd(vx, veb2);
    const __m256d vin =
        _mm256_cmp_pd(_mm256_and_pd(vs, vabs_mask), vlim, _CMP_LT_OQ);
    const __m256d vr = _mm256_round_pd(
        vs, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    // (int64)vr via the magic trick; garbage on out-of-range lanes, which
    // the vin mask zeroes — matching the scalar q = 0 convention.
    __m256i vq = _mm256_sub_epi64(
        _mm256_castpd_si256(_mm256_add_pd(vr, vmagic)), vmagic_bits);
    vq = _mm256_and_si256(vq, _mm256_castpd_si256(vin));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), vq);
    const __m256d verr =
        _mm256_and_pd(_mm256_sub_pd(_mm256_mul_pd(veb2, vr), vx), vabs_mask);
    const __m256d vok =
        _mm256_and_pd(vin, _mm256_cmp_pd(verr, veb, _CMP_LE_OQ));
    const int min = _mm256_movemask_pd(vin);
    const int mok = _mm256_movemask_pd(vok);
    for (int l = 0; l < 4; ++l)
      flags[i + l] = static_cast<std::uint8_t>((((min >> l) & 1) << 1) |
                                               ((mok >> l) & 1));
  }
  for (; i < n; ++i) grid_quantize_one(x[i], eb, q[i], flags[i]);
}

__attribute__((target("avx2"))) void scale_grid_avx2(const std::int64_t* q,
                                                     std::size_t n,
                                                     double eb2, double* out) {
  const __m256d veb2 = _mm256_set1_pd(eb2);
  const __m256d vmagic = _mm256_set1_pd(kMagic);
  const __m256i vmagic_bits = _mm256_set1_epi64x(kMagicBits);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    const __m256d vd = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_add_epi64(vq, vmagic_bits)), vmagic);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(veb2, vd));
  }
  for (; i < n; ++i) out[i] = eb2 * static_cast<double>(q[i]);
}

__attribute__((target("avx2"))) double max_abs_avx2(const double* x,
                                                    std::size_t n) {
  const __m256d vabs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  __m256d vmax = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vmax = _mm256_max_pd(vmax,
                         _mm256_and_pd(_mm256_loadu_pd(x + i), vabs_mask));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, vmax);
  double m = std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
  for (; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

__attribute__((target("avx2"))) void split_avx2(const double* in,
                                                std::size_t n, double* re,
                                                double* im) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a0 = _mm256_loadu_pd(in + 2 * i);      // r0 i0 r1 i1
    const __m256d a1 = _mm256_loadu_pd(in + 2 * i + 4);  // r2 i2 r3 i3
    const __m256d t0 = _mm256_permute2f128_pd(a0, a1, 0x20);  // r0 i0 r2 i2
    const __m256d t1 = _mm256_permute2f128_pd(a0, a1, 0x31);  // r1 i1 r3 i3
    _mm256_storeu_pd(re + i, _mm256_unpacklo_pd(t0, t1));
    _mm256_storeu_pd(im + i, _mm256_unpackhi_pd(t0, t1));
  }
  for (; i < n; ++i) {
    re[i] = in[2 * i];
    im[i] = in[2 * i + 1];
  }
}

__attribute__((target("avx2"))) void merge_avx2(const double* re,
                                                const double* im,
                                                std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vr = _mm256_loadu_pd(re + i);
    const __m256d vi = _mm256_loadu_pd(im + i);
    const __m256d t0 = _mm256_unpacklo_pd(vr, vi);  // r0 i0 r2 i2
    const __m256d t1 = _mm256_unpackhi_pd(vr, vi);  // r1 i1 r3 i3
    _mm256_storeu_pd(out + 2 * i, _mm256_permute2f128_pd(t0, t1, 0x20));
    _mm256_storeu_pd(out + 2 * i + 4, _mm256_permute2f128_pd(t0, t1, 0x31));
  }
  for (; i < n; ++i) {
    out[2 * i] = re[i];
    out[2 * i + 1] = im[i];
  }
}

// --------------------------------------------------------------- SSE2 ----

void quantize_grid_sse2(const double* x, std::size_t n, double eb,
                        std::int64_t* q, std::uint8_t* flags) {
  const double eb2 = 2.0 * eb;
  const __m128d veb2 = _mm_set1_pd(eb2);
  const __m128d veb = _mm_set1_pd(eb);
  const __m128d vlim = _mm_set1_pd(kGridLimit);
  const __m128d vabs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m128d vsign_mask = _mm_castsi128_pd(_mm_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL)));
  const __m128d vround = _mm_set1_pd(4503599627370496.0);  // 2^52
  const __m128d vmagic = _mm_set1_pd(kMagic);
  const __m128i vmagic_bits = _mm_set1_epi64x(kMagicBits);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vx = _mm_loadu_pd(x + i);
    const __m128d vs = _mm_div_pd(vx, veb2);
    const __m128d vin = _mm_cmplt_pd(_mm_and_pd(vs, vabs_mask), vlim);
    // Round-to-nearest-even via the signed 2^52 add/sub trick (exact for
    // |vs| < 2^51, the only lanes whose result is used).
    const __m128d vsigned_round =
        _mm_or_pd(vround, _mm_and_pd(vs, vsign_mask));
    const __m128d vr =
        _mm_sub_pd(_mm_add_pd(vs, vsigned_round), vsigned_round);
    __m128i vq = _mm_sub_epi64(_mm_castpd_si128(_mm_add_pd(vr, vmagic)),
                               vmagic_bits);
    vq = _mm_and_si128(vq, _mm_castpd_si128(vin));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i), vq);
    const __m128d verr =
        _mm_and_pd(_mm_sub_pd(_mm_mul_pd(veb2, vr), vx), vabs_mask);
    const __m128d vok = _mm_and_pd(vin, _mm_cmple_pd(verr, veb));
    const int min = _mm_movemask_pd(vin);
    const int mok = _mm_movemask_pd(vok);
    for (int l = 0; l < 2; ++l)
      flags[i + l] = static_cast<std::uint8_t>((((min >> l) & 1) << 1) |
                                               ((mok >> l) & 1));
  }
  for (; i < n; ++i) grid_quantize_one(x[i], eb, q[i], flags[i]);
}

void scale_grid_sse2(const std::int64_t* q, std::size_t n, double eb2,
                     double* out) {
  const __m128d veb2 = _mm_set1_pd(eb2);
  const __m128d vmagic = _mm_set1_pd(kMagic);
  const __m128i vmagic_bits = _mm_set1_epi64x(kMagicBits);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
    const __m128d vd = _mm_sub_pd(
        _mm_castsi128_pd(_mm_add_epi64(vq, vmagic_bits)), vmagic);
    _mm_storeu_pd(out + i, _mm_mul_pd(veb2, vd));
  }
  for (; i < n; ++i) out[i] = eb2 * static_cast<double>(q[i]);
}

double max_abs_sse2(const double* x, std::size_t n) {
  const __m128d vabs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  __m128d vmax = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vmax = _mm_max_pd(vmax, _mm_and_pd(_mm_loadu_pd(x + i), vabs_mask));
  alignas(16) double lane[2];
  _mm_store_pd(lane, vmax);
  double m = std::max(lane[0], lane[1]);
  for (; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

void split_sse2(const double* in, std::size_t n, double* re, double* im) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d a0 = _mm_loadu_pd(in + 2 * i);      // r0 i0
    const __m128d a1 = _mm_loadu_pd(in + 2 * i + 2);  // r1 i1
    _mm_storeu_pd(re + i, _mm_unpacklo_pd(a0, a1));
    _mm_storeu_pd(im + i, _mm_unpackhi_pd(a0, a1));
  }
  for (; i < n; ++i) {
    re[i] = in[2 * i];
    im[i] = in[2 * i + 1];
  }
}

void merge_sse2(const double* re, const double* im, std::size_t n,
                double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vr = _mm_loadu_pd(re + i);
    const __m128d vi = _mm_loadu_pd(im + i);
    _mm_storeu_pd(out + 2 * i, _mm_unpacklo_pd(vr, vi));
    _mm_storeu_pd(out + 2 * i + 2, _mm_unpackhi_pd(vr, vi));
  }
  for (; i < n; ++i) {
    out[2 * i] = re[i];
    out[2 * i + 1] = im[i];
  }
}

#endif  // __x86_64__

}  // namespace

void quantize_grid(const double* x, std::size_t n, double eb, std::int64_t* q,
                   std::uint8_t* flags) {
#if defined(__x86_64__)
  switch (simd::active()) {
    case simd::IsaLevel::kAvx2: return quantize_grid_avx2(x, n, eb, q, flags);
    case simd::IsaLevel::kSse2: return quantize_grid_sse2(x, n, eb, q, flags);
    case simd::IsaLevel::kScalar: break;
  }
#endif
  quantize_grid_scalar(x, n, eb, q, flags);
}

void scale_grid(const std::int64_t* q, std::size_t n, double eb2,
                double* out) {
#if defined(__x86_64__)
  switch (simd::active()) {
    case simd::IsaLevel::kAvx2: return scale_grid_avx2(q, n, eb2, out);
    case simd::IsaLevel::kSse2: return scale_grid_sse2(q, n, eb2, out);
    case simd::IsaLevel::kScalar: break;
  }
#endif
  scale_grid_scalar(q, n, eb2, out);
}

double max_abs(const double* x, std::size_t n) {
#if defined(__x86_64__)
  switch (simd::active()) {
    case simd::IsaLevel::kAvx2: return max_abs_avx2(x, n);
    case simd::IsaLevel::kSse2: return max_abs_sse2(x, n);
    case simd::IsaLevel::kScalar: break;
  }
#endif
  return max_abs_scalar(x, n);
}

void split_interleaved(const double* interleaved, std::size_t n, double* re,
                       double* im) {
#if defined(__x86_64__)
  switch (simd::active()) {
    case simd::IsaLevel::kAvx2: return split_avx2(interleaved, n, re, im);
    case simd::IsaLevel::kSse2: return split_sse2(interleaved, n, re, im);
    case simd::IsaLevel::kScalar: break;
  }
#endif
  split_scalar(interleaved, n, re, im);
}

void merge_interleaved(const double* re, const double* im, std::size_t n,
                       double* interleaved) {
#if defined(__x86_64__)
  switch (simd::active()) {
    case simd::IsaLevel::kAvx2: return merge_avx2(re, im, n, interleaved);
    case simd::IsaLevel::kSse2: return merge_sse2(re, im, n, interleaved);
    case simd::IsaLevel::kScalar: break;
  }
#endif
  merge_scalar(re, im, n, interleaved);
}

}  // namespace memq::compress::simd_kernels
