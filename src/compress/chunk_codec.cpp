#include "compress/chunk_codec.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/hash.hpp"
#include "compress/dictionary.hpp"
#include "compress/simd_kernels.hpp"

namespace memq::compress {

using common::fnv1a64;

namespace {

constexpr std::uint32_t kMagic = 0x4D51434Bu;  // "MQCK"
constexpr std::uint8_t kVersion = 1;

constexpr std::uint8_t kFlagZeroChunk = 1u << 0;
constexpr std::uint8_t kFlagChecksum = 1u << 1;
constexpr std::uint8_t kFlagConstChunk = 1u << 2;

// True when every amplitude equals the first one bitwise. The constant tag
// round-trips exactly, so classification must be bitwise too — comparing
// with == would tag -0.0 chunks as constant 0.0 and change stored bits.
bool all_amps_equal(std::span<const amp_t> amps) noexcept {
  const auto* flat = reinterpret_cast<const std::uint64_t*>(amps.data());
  const std::uint64_t re = flat[0], im = flat[1];
  for (std::size_t k = 1; k < amps.size(); ++k)
    if (flat[2 * k] != re || flat[2 * k + 1] != im) return false;
  return true;
}

}  // namespace

ChunkCodec::ChunkCodec(const ChunkCodecConfig& config)
    : config_(config), compressor_(make_compressor(config.compressor)) {
  if (!compressor_->lossless())
    MEMQ_CHECK(config_.bound > 0.0,
               "lossy compressor '" << config_.compressor
                                    << "' needs a positive bound");
}

void ChunkCodec::encode(std::span<const amp_t> amps, ByteBuffer& out) {
  out.clear();
  ByteWriter w(out);
  w.u32(kMagic);
  w.u8(kVersion);
  w.varint(amps.size());

  // amp_t is std::complex<double>, guaranteed array-compatible with
  // double[2] — treat the chunk as 2n contiguous doubles for the kernels.
  const auto* flat = reinterpret_cast<const double*>(amps.data());
  const double max_abs = simd_kernels::max_abs(flat, 2 * amps.size());

  std::uint8_t flags = config_.checksum ? kFlagChecksum : 0;
  if (max_abs == 0.0) {
    flags |= kFlagZeroChunk;
    w.u8(flags);
    if (config_.checksum) w.u64(fnv1a64({out.data(), out.size()}));
    return;
  }
  // Constant chunk: store the one repeated amplitude as a 16-byte tag in
  // place of a codec stream. Like the zero path this is always on (not
  // gated by --dedup): the tag decodes bit-exactly where a lossy codec
  // would not, so gating it would make the two arms diverge.
  if (amps.size() > 1 && all_amps_equal(amps)) {
    flags |= kFlagConstChunk;
    w.u8(flags);
    w.f64(amps[0].real());
    w.f64(amps[0].imag());
    if (config_.checksum) w.u64(fnv1a64({out.data(), out.size()}));
    return;
  }
  w.u8(flags);

  double eb_abs = config_.bound;
  if (config_.mode == ErrorMode::kValueRangeRelative) eb_abs *= max_abs;
  w.f64(eb_abs);

  re_.resize(amps.size());
  im_.resize(amps.size());
  simd_kernels::split_interleaved(flat, amps.size(), re_.data(), im_.data());

  ByteBuffer plane;
  for (const auto* src : {&re_, &im_}) {
    plane.clear();
    compressor_->compress(*src, eb_abs, plane, config_.dict.get());
    w.varint(plane.size());
    w.bytes(plane);
  }

  if (config_.checksum) w.u64(fnv1a64({out.data(), out.size()}));
}

void ChunkCodec::decode(std::span<const std::uint8_t> data,
                        std::span<amp_t> amps) {
  // The injected failure takes the same path as a real flipped bit caught
  // by the checksum below: compressed state is the only copy, so there is
  // nothing to recover from — the typed error surfaces to the coordinator.
  if (MEMQ_FAULT("codec.decode.corrupt"))
    throw CorruptData("chunk: checksum mismatch (injected)");
  ByteReader r(data);
  if (r.u32() != kMagic) throw CorruptData("chunk: bad magic");
  if (r.u8() != kVersion) throw CorruptData("chunk: unsupported version");
  const std::uint64_t n = r.varint();
  if (n != amps.size())
    throw CorruptData("chunk: count mismatch: stored " + std::to_string(n) +
                      ", expected " + std::to_string(amps.size()));
  const std::uint8_t flags = r.u8();

  if (flags & kFlagChecksum) {
    if (data.size() < 8) throw CorruptData("chunk: too short for checksum");
    const std::uint64_t stored =
        ByteReader(data.subspan(data.size() - 8)).u64();
    const std::uint64_t computed = fnv1a64(data.first(data.size() - 8));
    if (stored != computed) throw CorruptData("chunk: checksum mismatch");
  }

  if (flags & kFlagZeroChunk) {
    std::fill(amps.begin(), amps.end(), amp_t{0.0, 0.0});
    return;
  }

  if (flags & kFlagConstChunk) {
    const double re = r.f64(), im = r.f64();
    std::fill(amps.begin(), amps.end(), amp_t{re, im});
    return;
  }

  (void)r.f64();  // eb_abs: informational; each codec re-reads its own copy

  re_.resize(amps.size());
  im_.resize(amps.size());
  for (auto* dst : {&re_, &im_}) {
    const std::uint64_t len = r.varint();
    const auto payload = r.bytes(len);
    compressor_->decompress(payload, *dst, config_.dict.get());
  }
  simd_kernels::merge_interleaved(re_.data(), im_.data(), amps.size(),
                                  reinterpret_cast<double*>(amps.data()));
}

std::uint64_t ChunkCodec::stored_count(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw CorruptData("chunk: bad magic");
  if (r.u8() != kVersion) throw CorruptData("chunk: unsupported version");
  return r.varint();
}

bool ChunkCodec::is_zero_chunk(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw CorruptData("chunk: bad magic");
  if (r.u8() != kVersion) throw CorruptData("chunk: unsupported version");
  (void)r.varint();
  return (r.u8() & kFlagZeroChunk) != 0;
}

bool ChunkCodec::is_constant_chunk(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw CorruptData("chunk: bad magic");
  if (r.u8() != kVersion) throw CorruptData("chunk: unsupported version");
  (void)r.varint();
  return (r.u8() & (kFlagZeroChunk | kFlagConstChunk)) != 0;
}

void ChunkCodec::verify(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw CorruptData("chunk: bad magic");
  if (r.u8() != kVersion) throw CorruptData("chunk: unsupported version");
  (void)r.varint();
  const std::uint8_t flags = r.u8();
  if ((flags & kFlagChecksum) == 0) return;
  if (data.size() < 8) throw CorruptData("chunk: too short for checksum");
  const std::uint64_t stored = ByteReader(data.subspan(data.size() - 8)).u64();
  if (stored != fnv1a64(data.first(data.size() - 8)))
    throw CorruptData("chunk: checksum mismatch");
}

}  // namespace memq::compress
