// LZH: general-purpose lossless byte compressor (LZ77 hash-chain matcher +
// canonical Huffman over a deflate-style literal/length alphabet).
//
// Role in MEMQSim: the "bring your own compressor" demonstration — unlike
// SZQ/BPC it knows nothing about doubles, so it shows the chunk codec's
// modularity and serves as the dictionary-coding arm of the compressor
// ablation (state planes with repeating byte patterns, e.g. sparse states,
// compress well; high-entropy mantissas do not).
//
// Format per block (single block per buffer):
//   varint n_values | varint n_bytes | huffman table (lit/len alphabet) |
//   huffman table (distance alphabet) | varint bitstream length | tokens
// Token stream: symbols 0..255 = literal bytes; 256 = end-of-block;
// 257+k = match of base length with extra bits, deflate-style, followed by
// a distance symbol + extra bits.
#include <algorithm>
#include <cstring>
#include <iterator>
#include <vector>

#include "common/error.hpp"
#include "compress/bitstream.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"

namespace memq::compress {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;
// Largest distance the code table can express: 24577 + (2^13 - 1) = 32768.
constexpr std::size_t kWindow = 1 << 15;
constexpr std::size_t kHashBits = 15;
constexpr std::uint32_t kEndOfBlock = 256;

// Length codes: 29 deflate-style buckets starting at symbol 257.
struct LenCode {
  std::uint32_t base;
  unsigned extra;
};
constexpr LenCode kLenCodes[] = {
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},
    {9, 0},   {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1},
    {19, 2},  {23, 2},  {27, 2},  {31, 2},  {35, 3},  {43, 3},
    {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0}};
constexpr std::size_t kNumLenCodes = std::size(kLenCodes);
constexpr std::size_t kLitLenAlphabet = 257 + kNumLenCodes;

// Distance codes: 30 deflate buckets.
constexpr LenCode kDistCodes[] = {
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},    {7, 1},
    {9, 2},     {13, 2},    {17, 3},    {25, 3},    {33, 4},   {49, 4},
    {65, 5},    {97, 5},    {129, 6},   {193, 6},   {257, 7},  {385, 7},
    {513, 8},   {769, 8},   {1025, 9},  {1537, 9},  {2049, 10},
    {3073, 10}, {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12},
    {16385, 13}, {24577, 13}};
constexpr std::size_t kDistAlphabet = std::size(kDistCodes);

std::uint32_t length_symbol(std::size_t len) {
  for (std::size_t i = kNumLenCodes; i-- > 0;)
    if (len >= kLenCodes[i].base) return static_cast<std::uint32_t>(i);
  return 0;
}

std::uint32_t distance_symbol(std::size_t dist) {
  for (std::size_t i = kDistAlphabet; i-- > 0;)
    if (dist >= kDistCodes[i].base) return static_cast<std::uint32_t>(i);
  return 0;
}

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Token {
  bool is_match;
  std::uint8_t literal;
  std::uint32_t length;    // match only
  std::uint32_t distance;  // match only
};

std::vector<Token> tokenize(std::span<const std::uint8_t> in) {
  std::vector<Token> tokens;
  tokens.reserve(in.size() / 2);
  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
  std::vector<std::int64_t> prev(in.size(), -1);

  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t best_len = 0, best_dist = 0;
    if (i + kMinMatch <= in.size()) {
      const std::uint32_t h = hash4(&in[i]);
      const std::int64_t first = head[h];
      std::int64_t cand = first;
      int chain = 32;  // bounded effort
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const auto c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t cap = std::min(kMaxMatch, in.size() - i);
        while (len < cap && in[c + len] == in[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len >= 64) break;  // good enough
        }
        cand = prev[c];
      }
      prev[i] = first;
      head[h] = static_cast<std::int64_t>(i);
    }
    if (best_len >= kMinMatch) {
      tokens.push_back({true, 0, static_cast<std::uint32_t>(best_len),
                        static_cast<std::uint32_t>(best_dist)});
      // Insert hash entries for the skipped positions (cheap variant: only
      // every other position to bound the cost).
      for (std::size_t k = 1; k < best_len && i + k + 4 <= in.size();
           k += 2) {
        const std::uint32_t h = hash4(&in[i + k]);
        prev[i + k] = head[h];
        head[h] = static_cast<std::int64_t>(i + k);
      }
      i += best_len;
    } else {
      tokens.push_back({false, in[i], 0, 0});
      ++i;
    }
  }
  return tokens;
}

class LzhCompressor final : public Compressor {
 public:
  std::string name() const override { return "lzh"; }
  bool lossless() const override { return true; }

  void compress(std::span<const double> in, double /*eb*/,
                ByteBuffer& out) const override {
    ByteWriter w(out);
    w.varint(in.size());
    if (in.empty()) return;
    const auto bytes = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(in.data()),
        in.size() * sizeof(double));

    const std::vector<Token> tokens = tokenize(bytes);

    std::vector<std::uint64_t> lit_counts(kLitLenAlphabet, 0);
    std::vector<std::uint64_t> dist_counts(kDistAlphabet, 0);
    for (const Token& t : tokens) {
      if (t.is_match) {
        ++lit_counts[257 + length_symbol(t.length)];
        ++dist_counts[distance_symbol(t.distance)];
      } else {
        ++lit_counts[t.literal];
      }
    }
    ++lit_counts[kEndOfBlock];
    // The distance table must be constructible even with no matches.
    if (tokens.empty() ||
        std::none_of(tokens.begin(), tokens.end(),
                     [](const Token& t) { return t.is_match; }))
      ++dist_counts[0];

    const HuffmanCode lit_code = HuffmanCode::from_counts(lit_counts);
    const HuffmanCode dist_code = HuffmanCode::from_counts(dist_counts);
    lit_code.serialize(w);
    dist_code.serialize(w);

    ByteBuffer bits;
    BitWriter bw(bits);
    for (const Token& t : tokens) {
      if (t.is_match) {
        const std::uint32_t ls = length_symbol(t.length);
        lit_code.encode(bw, 257 + ls);
        bw.write(t.length - kLenCodes[ls].base, kLenCodes[ls].extra);
        const std::uint32_t ds = distance_symbol(t.distance);
        dist_code.encode(bw, ds);
        bw.write(t.distance - kDistCodes[ds].base, kDistCodes[ds].extra);
      } else {
        lit_code.encode(bw, t.literal);
      }
    }
    lit_code.encode(bw, kEndOfBlock);
    bw.flush();
    w.varint(bits.size());
    w.bytes(bits);
  }

  void decompress(std::span<const std::uint8_t> in,
                  std::span<double> out) const override {
    ByteReader r(in);
    const std::uint64_t n = r.varint();
    if (n != out.size())
      throw CorruptData("lzh count mismatch: stored " + std::to_string(n));
    if (n == 0) return;
    const std::size_t total_bytes = out.size() * sizeof(double);

    const HuffmanCode lit_code = HuffmanCode::deserialize(r);
    const HuffmanCode dist_code = HuffmanCode::deserialize(r);
    const std::uint64_t bit_len = r.varint();
    BitReader br(r.bytes(bit_len));

    std::vector<std::uint8_t> bytes;
    bytes.reserve(total_bytes);
    for (;;) {
      const std::uint32_t sym = lit_code.decode(br);
      if (sym == kEndOfBlock) break;
      if (sym < 256) {
        bytes.push_back(static_cast<std::uint8_t>(sym));
      } else {
        const std::uint32_t ls = sym - 257;
        if (ls >= kNumLenCodes) throw CorruptData("lzh: bad length symbol");
        const std::size_t len =
            kLenCodes[ls].base + br.read(kLenCodes[ls].extra);
        const std::uint32_t ds = dist_code.decode(br);
        if (ds >= kDistAlphabet) throw CorruptData("lzh: bad dist symbol");
        const std::size_t dist =
            kDistCodes[ds].base + br.read(kDistCodes[ds].extra);
        if (dist == 0 || dist > bytes.size())
          throw CorruptData("lzh: distance before start of stream");
        const std::size_t start = bytes.size() - dist;
        for (std::size_t k = 0; k < len; ++k)
          bytes.push_back(bytes[start + k]);  // overlapping copies OK
      }
      if (bytes.size() > total_bytes)
        throw CorruptData("lzh: decoded stream too long");
    }
    if (bytes.size() != total_bytes)
      throw CorruptData("lzh: decoded stream too short");
    std::memcpy(out.data(), bytes.data(), total_bytes);
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Compressor> make_lzh() {
  return std::make_unique<LzhCompressor>();
}
}  // namespace detail

}  // namespace memq::compress
