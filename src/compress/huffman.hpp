// Canonical Huffman coding over a dense u32 symbol alphabet.
//
// This is the entropy stage of the SZQ lossy compressor (quantization codes
// are extremely skewed — near-predicted values dominate — which is where the
// compression ratio comes from, exactly as in SZ).
//
// Codes are canonical: assigned by (length, symbol) order, so only the code
// lengths are serialized. Code bits are written MSB-first so the decoder can
// do incremental canonical decoding (first_code/offset per length).
//
// Hot paths: the encoder keeps a per-symbol packed entry (bit-reversed code
// + length) so each symbol is one BitWriter::write call; the decoder peeks
// kLutBits of the stream into a lookup table covering every code of that
// length or shorter, falling back to the canonical bit-by-bit walk for the
// rare long codes (and near the end of the stream). Both paths emit/accept
// exactly the same bits as the historical per-bit loops.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitstream.hpp"
#include "compress/byte_buffer.hpp"

namespace memq::compress {

class HuffmanCode {
 public:
  /// Longest admissible code. Counts are rescaled until respected.
  static constexpr unsigned kMaxCodeLen = 48;

  /// Decoder LUT covers codes up to this many bits (one table probe per
  /// symbol). 11 bits = 16 KiB of entries, sized for L1.
  static constexpr unsigned kLutBits = 11;

  /// Builds an optimal (length-limited) code from symbol frequencies.
  /// Symbols with zero count get no code. At least one nonzero count required.
  static HuffmanCode from_counts(std::span<const std::uint64_t> counts);

  /// Writes the code-length table (RLE over lengths, varint runs).
  void serialize(ByteWriter& w) const;

  /// Reads a table written by serialize().
  static HuffmanCode deserialize(ByteReader& r);

  /// Emits the code of `symbol`; throws if the symbol had zero count.
  void encode(BitWriter& bw, std::uint32_t symbol) const;

  /// Emits every symbol of `tokens` in order — same bits as calling
  /// encode() per symbol, batched (SIMD table gather where available).
  void encode_all(BitWriter& bw, std::span<const std::uint32_t> tokens) const;

  /// Decodes one symbol.
  std::uint32_t decode(BitReader& br) const;

  std::size_t alphabet_size() const noexcept { return lengths_.size(); }
  unsigned length_of(std::uint32_t symbol) const {
    return symbol < lengths_.size() ? lengths_[symbol] : 0;
  }

  /// Expected bits/symbol under `counts` — used by tests and by the SZQ
  /// encoder to predict output size.
  double mean_code_length(std::span<const std::uint64_t> counts) const;

 private:
  void build_tables();
  std::uint32_t decode_slow(BitReader& br) const;

  std::vector<std::uint8_t> lengths_;        // per symbol, 0 = unused
  std::vector<std::uint64_t> codes_;         // canonical, MSB-first semantics
  // Encoder fast path: per symbol, bit-reversed code | length << 56
  // (0 = symbol has no code).
  std::vector<std::uint64_t> enc_entry_;
  // Decoder fast path: indexed by the next kLutBits stream bits (LSB-first);
  // entry = symbol << 6 | length, 0 = no code of length <= kLutBits here.
  std::vector<std::uint32_t> lut_;
  // Decoder tables indexed by code length.
  std::vector<std::uint64_t> first_code_;    // first canonical code of length L
  std::vector<std::uint32_t> first_index_;   // index into sorted_symbols_
  std::vector<std::uint32_t> count_by_len_;  // #codes of length L
  std::vector<std::uint32_t> sorted_symbols_;
  unsigned max_len_ = 0;
};

}  // namespace memq::compress
