// Run-level shared Huffman dictionary for the SZQ codec.
//
// Per-chunk self-describing Huffman tables pay twice: serialized table
// bytes in every chunk and a fresh table *build* per encode. Real circuits
// produce strongly repeating symbol distributions across chunks (cross-
// chunk redundancy, cf. Mera), so one trained table per run amortizes
// both. The DictContext is shared (via shared_ptr in ChunkCodecConfig) by
// every per-worker ChunkCodec of a run:
//
//   * training: the first few chunk encodes contribute their symbol counts
//     (which the encoder computes anyway); once enough tokens are seen the
//     dictionary is built — with +1 smoothing over the whole alphabet, so
//     every symbol has a code and later chunks can never fall outside it;
//   * steady state: encoders reference the dictionary by id (u64 FNV of
//     the serialized table) instead of embedding a table, and skip the
//     per-chunk Huffman build entirely;
//   * escape: a chunk whose distribution fits the shared table poorly
//     (estimated shared bits >> its own entropy) falls back to the
//     self-describing format — a per-chunk flag in the szq stream;
//   * checkpoints: ChunkStore::save embeds the dictionary after the blobs,
//     restore installs it, so dictionary-referencing blobs stay decodable.
//
// Thread contract: observe()/dict()/install() are thread-safe (one mutex;
// called at chunk granularity). Decoded amplitudes are identical with the
// dictionary on or off — only the encoded bytes differ.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "compress/byte_buffer.hpp"
#include "compress/huffman.hpp"

namespace memq::compress {

/// An immutable trained dictionary: a Huffman code covering the full SZQ
/// alphabet plus its content id.
class SzqDict {
 public:
  /// Builds from accumulated symbol counts (+1 smoothing applied here).
  static SzqDict build(std::span<const std::uint64_t> counts);

  const HuffmanCode& code() const noexcept { return code_; }
  /// FNV-1a of the serialized table — what encoded streams reference.
  std::uint64_t id() const noexcept { return id_; }

  void serialize(ByteWriter& w) const;
  static SzqDict deserialize(ByteReader& r);

 private:
  SzqDict(HuffmanCode code, std::uint64_t id)
      : code_(std::move(code)), id_(id) {}

  HuffmanCode code_;
  std::uint64_t id_;
};

/// Mutable run-level training state + the built dictionary once ready.
class DictContext {
 public:
  /// Training thresholds: build once this many chunks AND tokens have been
  /// observed (small runs may never train — they just keep self tables).
  static constexpr std::uint64_t kTrainChunks = 4;
  static constexpr std::uint64_t kTrainTokens = 1u << 18;

  /// Encoder hook: accumulates one chunk's symbol counts. Builds the
  /// dictionary when the thresholds are crossed. No-op once trained.
  void observe(std::span<const std::uint64_t> counts, std::uint64_t tokens);

  /// The trained dictionary, or nullptr while still sampling.
  std::shared_ptr<const SzqDict> dict() const;

  /// Forces a build from whatever has been observed so far (benchmarks,
  /// tests). Requires at least one observed chunk. No-op once trained.
  void train_now();

  /// Installs an externally built dictionary (checkpoint restore).
  void install(std::shared_ptr<const SzqDict> dict);

  std::uint64_t chunks_observed() const;

 private:
  void build_locked();

  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t tokens_seen_ = 0;
  std::uint64_t chunks_seen_ = 0;
  std::shared_ptr<const SzqDict> dict_;
};

}  // namespace memq::compress
