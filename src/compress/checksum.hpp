// Compatibility alias: FNV-1a moved to common/hash.hpp so that core/ (blob
// dedup) and compress/ (chunk framing, dictionary ids) share one definition.
// Existing includes of compress/checksum.hpp keep working unchanged.
#pragma once

#include "common/hash.hpp"

namespace memq::compress {

using common::kFnvOffset;
using common::kFnvPrime;
using common::fnv1a64;

}  // namespace memq::compress
