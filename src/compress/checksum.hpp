// FNV-1a 64-bit checksum, used by the chunk codec to detect corrupted
// compressed chunks before feeding them to a decoder.
#pragma once

#include <cstdint>
#include <span>

namespace memq::compress {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace memq::compress
