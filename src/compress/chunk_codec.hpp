// Codec for one state-vector chunk: complex amplitudes <-> compressed bytes.
//
// This is the unit of the paper's offline stage ("each data chunk of the
// state vector is compressed independently and stored in CPU memory with
// such compressed format"). Responsibilities beyond the raw compressor:
//   * split amplitudes into re/im planes (each is smooth on its own),
//   * resolve a value-range-relative bound to the absolute bound the
//     compressor needs, per chunk,
//   * fast-path all-zero chunks (ubiquitous early in GHZ/Grover circuits),
//   * frame the payload with a header + FNV checksum so corruption is
//     detected, not silently decoded.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "compress/byte_buffer.hpp"
#include "compress/compressor.hpp"

namespace memq::compress {

class DictContext;  // dictionary.hpp

/// How the configured bound is interpreted.
enum class ErrorMode : std::uint8_t {
  kAbsolute = 0,           ///< bound is the absolute per-value error
  kValueRangeRelative = 1, ///< bound is relative to the chunk's max |value|
};

/// Shared-dictionary policy for codecs that support one (szq).
enum class DictMode : std::uint8_t {
  kOff = 0,    ///< per-chunk self-describing entropy tables only
  kTrain = 1,  ///< train one table per run from the first chunks, share it
};

struct ChunkCodecConfig {
  std::string compressor = "szq";
  ErrorMode mode = ErrorMode::kValueRangeRelative;
  double bound = 1e-5;
  bool checksum = true;
  DictMode dict_mode = DictMode::kOff;
  /// Run-level dictionary state, shared by every per-worker ChunkCodec of
  /// a run. Created by the engine when dict_mode == kTrain; null otherwise.
  std::shared_ptr<DictContext> dict;
};

/// Encodes/decodes chunks. Holds scratch planes, so NOT thread-safe: the
/// pipeline gives each worker its own ChunkCodec.
class ChunkCodec {
 public:
  explicit ChunkCodec(const ChunkCodecConfig& config);

  /// Compresses `amps`, replacing the contents of `out`.
  void encode(std::span<const amp_t> amps, ByteBuffer& out);

  /// Decompresses into `amps` (must be sized to the original count).
  /// Throws CorruptData on framing/checksum/codec errors.
  void decode(std::span<const std::uint8_t> data, std::span<amp_t> amps);

  /// Number of amplitudes stored in an encoded chunk (header peek).
  static std::uint64_t stored_count(std::span<const std::uint8_t> data);

  /// True if the chunk was encoded through the all-zero fast path
  /// (header peek; no decompression).
  static bool is_zero_chunk(std::span<const std::uint8_t> data);

  /// True if the chunk decodes as a `fill` — all-zero or all-one-value
  /// (constant tag). Such chunks bypass the codec payload, the CodecPool,
  /// and modeled H2D transfer. Header peek; no decompression.
  static bool is_constant_chunk(std::span<const std::uint8_t> data);

  /// Validates framing and (when present) the checksum without decoding
  /// the payload; throws CorruptData on any mismatch. Used by checkpoint
  /// restore to reject rotten blobs early.
  static void verify(std::span<const std::uint8_t> data);

  const ChunkCodecConfig& config() const noexcept { return config_; }
  const Compressor& compressor() const noexcept { return *compressor_; }
  /// The run-level dictionary state, or null when dictionaries are off.
  DictContext* dict_context() const noexcept { return config_.dict.get(); }

 private:
  ChunkCodecConfig config_;
  std::unique_ptr<Compressor> compressor_;
  std::vector<double> re_, im_;  // scratch planes
};

}  // namespace memq::compress
