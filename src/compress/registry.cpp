// Compressor factory registry — the "various compression algorithms" seam.
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "compress/compressor.hpp"

namespace memq::compress {

namespace detail {
std::unique_ptr<Compressor> make_null();
std::unique_ptr<Compressor> make_gorilla();
std::unique_ptr<Compressor> make_szq();
std::unique_ptr<Compressor> make_bpc();
std::unique_ptr<Compressor> make_lzh();
}  // namespace detail

namespace {

using Factory = std::unique_ptr<Compressor> (*)();

constexpr std::pair<const char*, Factory> kRegistry[] = {
    {"szq", detail::make_szq},
    {"bpc", detail::make_bpc},
    {"gorilla", detail::make_gorilla},
    {"lzh", detail::make_lzh},
    {"null", detail::make_null},
};

}  // namespace

std::unique_ptr<Compressor> make_compressor(const std::string& name) {
  for (const auto& [reg_name, factory] : kRegistry)
    if (name == reg_name) return factory();
  MEMQ_THROW(InvalidArgument, "unknown compressor '" << name
                                                     << "'; known: szq, bpc, "
                                                        "gorilla, lzh, null");
}

std::vector<std::string> compressor_names() {
  std::vector<std::string> names;
  for (const auto& [reg_name, factory] : kRegistry) names.emplace_back(reg_name);
  return names;
}

}  // namespace memq::compress
