// Error-bounded linear-scaling quantizer + the two 1-D predictors, the core
// of the SZQ lossy compressor (same scheme as SZ 2.x's 1D pipeline:
// prediction, quantization with radius-limited codes, exceptions for
// unpredictable values).
#pragma once

#include <cmath>
#include <cstdint>

namespace memq::compress {

/// Quantization codes live in [0, 2*kRadius); code kRadius means
/// "prediction was exact (within eb)". Two extra symbols follow the code
/// range in the entropy alphabet.
inline constexpr std::int64_t kQuantRadius = 1 << 15;
inline constexpr std::uint32_t kSymZero =
    static_cast<std::uint32_t>(kQuantRadius);
inline constexpr std::uint32_t kSymException = 2 * kQuantRadius;      // 65536
inline constexpr std::uint32_t kSymZeroRun = 2 * kQuantRadius + 1;    // 65537
inline constexpr std::size_t kSzqAlphabet = 2 * kQuantRadius + 2;

struct QuantResult {
  std::uint32_t symbol;  ///< kSymException, or code in [0, 2*kQuantRadius)
  double reconstructed;  ///< decoder-side value (== input for exceptions)
};

/// Quantizes `x` against prediction `pred` with absolute bound `eb`.
/// Guarantees |reconstructed - x| <= eb, falling back to an exception
/// (exact storage) when the code would not fit the radius or when rounding
/// would break the bound.
inline QuantResult quantize(double x, double pred, double eb) noexcept {
  const double diff = x - pred;
  const double scaled = diff / (2.0 * eb);
  if (std::fabs(scaled) < static_cast<double>(kQuantRadius) - 1.0) {
    const auto q = static_cast<std::int64_t>(std::llround(scaled));
    const double recon = pred + 2.0 * eb * static_cast<double>(q);
    if (std::fabs(recon - x) <= eb) {
      return {static_cast<std::uint32_t>(q + kQuantRadius), recon};
    }
  }
  return {kSymException, x};
}

/// Inverse mapping for a non-exception symbol.
inline double dequantize(std::uint32_t symbol, double pred,
                         double eb) noexcept {
  const auto q = static_cast<std::int64_t>(symbol) - kQuantRadius;
  return pred + 2.0 * eb * static_cast<double>(q);
}

enum class PredictorKind : std::uint8_t {
  kLorenzo = 0,  ///< pred = previous reconstructed value
  kLinear = 1,   ///< pred = 2*r[i-1] - r[i-2]
};

/// Predicts the next value from up to two reconstructed predecessors.
/// `have` is how many predecessors exist (0, 1, or >= 2).
inline double predict(PredictorKind kind, double r1, double r2,
                      int have) noexcept {
  if (have == 0) return 0.0;
  if (kind == PredictorKind::kLorenzo || have == 1) return r1;
  return 2.0 * r1 - r2;
}

}  // namespace memq::compress
