// Error-bounded linear-scaling quantizer + the two 1-D predictors, the core
// of the SZQ lossy compressor (same scheme as SZ 2.x's 1D pipeline:
// prediction, quantization with radius-limited codes, exceptions for
// unpredictable values).
#pragma once

#include <cmath>
#include <cstdint>

namespace memq::compress {

/// Quantization codes live in [0, 2*kRadius); code kRadius means
/// "prediction was exact (within eb)". Two extra symbols follow the code
/// range in the entropy alphabet.
inline constexpr std::int64_t kQuantRadius = 1 << 15;
inline constexpr std::uint32_t kSymZero =
    static_cast<std::uint32_t>(kQuantRadius);
inline constexpr std::uint32_t kSymException = 2 * kQuantRadius;      // 65536
inline constexpr std::uint32_t kSymZeroRun = 2 * kQuantRadius + 1;    // 65537
inline constexpr std::size_t kSzqAlphabet = 2 * kQuantRadius + 2;

struct QuantResult {
  std::uint32_t symbol;  ///< kSymException, or code in [0, 2*kQuantRadius)
  double reconstructed;  ///< decoder-side value (== input for exceptions)
};

/// Quantizes `x` against prediction `pred` with absolute bound `eb`.
/// Guarantees |reconstructed - x| <= eb, falling back to an exception
/// (exact storage) when the code would not fit the radius or when rounding
/// would break the bound.
inline QuantResult quantize(double x, double pred, double eb) noexcept {
  const double diff = x - pred;
  const double scaled = diff / (2.0 * eb);
  if (std::fabs(scaled) < static_cast<double>(kQuantRadius) - 1.0) {
    const auto q = static_cast<std::int64_t>(std::llround(scaled));
    const double recon = pred + 2.0 * eb * static_cast<double>(q);
    if (std::fabs(recon - x) <= eb) {
      return {static_cast<std::uint32_t>(q + kQuantRadius), recon};
    }
  }
  return {kSymException, x};
}

/// Inverse mapping for a non-exception symbol.
inline double dequantize(std::uint32_t symbol, double pred,
                         double eb) noexcept {
  const auto q = static_cast<std::int64_t>(symbol) - kQuantRadius;
  return pred + 2.0 * eb * static_cast<double>(q);
}

// ---- decoupled grid quantization (the vectorizable SZQ v2 pipeline) -----
//
// Instead of quantizing each value against the *reconstructed* prediction
// (a sequential float recurrence), v2 snaps every value independently to a
// global grid q = roundeven(x / 2eb) and predicts in integer space (cuSZ's
// "decoupled" trick). The per-element pass has no loop-carried dependence,
// so it vectorizes; |2eb*q - x| <= eb still holds for every grid-quantized
// value, so the error bound is unchanged.

/// Grid indices must stay below 2^51 so (double)q is exact and the SIMD
/// int64<->double magic-number conversion is valid.
inline constexpr double kGridLimit = 2251799813685248.0;  // 2^51

/// Flag bits produced by the grid-quantize pass (one byte per element).
inline constexpr std::uint8_t kGridQuantizable = 1u << 0;  ///< emit a symbol
inline constexpr std::uint8_t kGridInRange = 1u << 1;      ///< q is valid

/// Scalar reference for one element; the SIMD kernels in simd_kernels.cpp
/// compute exactly this (IEEE division, round-to-nearest-even, IEEE
/// multiply), which is what makes scalar and SIMD streams byte-identical.
inline void grid_quantize_one(double x, double eb, std::int64_t& q,
                              std::uint8_t& flags) noexcept {
  const double eb2 = 2.0 * eb;
  const double scaled = x / eb2;
  const bool in_range = std::fabs(scaled) < kGridLimit;  // NaN/inf -> false
  double r = 0.0;
  q = 0;
  if (in_range) {
    r = std::nearbyint(scaled);  // round-to-nearest-even, like the SIMD path
    q = static_cast<std::int64_t>(r);
  }
  const bool ok = in_range && std::fabs(eb2 * r - x) <= eb;
  flags = static_cast<std::uint8_t>(
      (in_range ? kGridInRange : 0) | (ok ? kGridQuantizable : 0));
}

/// Decoder-side grid index of an exception value: the integer history both
/// sides continue predicting from. Must match the encoder's q for the same
/// x bit-for-bit (it does: same division and rounding).
inline std::int64_t grid_base(double x, double eb) noexcept {
  const double scaled = x / (2.0 * eb);
  if (!(std::fabs(scaled) < kGridLimit)) return 0;
  return static_cast<std::int64_t>(std::nearbyint(scaled));
}

enum class PredictorKind : std::uint8_t {
  kLorenzo = 0,  ///< pred = previous reconstructed value
  kLinear = 1,   ///< pred = 2*r[i-1] - r[i-2]
};

/// Predicts the next value from up to two reconstructed predecessors.
/// `have` is how many predecessors exist (0, 1, or >= 2).
inline double predict(PredictorKind kind, double r1, double r2,
                      int have) noexcept {
  if (have == 0) return 0.0;
  if (kind == PredictorKind::kLorenzo || have == 1) return r1;
  return 2.0 * r1 - r2;
}

/// Integer-space predictor for the v2 pipeline. History values are grid
/// indices with |p| <= 2^51 (enforced by encoder and decoder), so the
/// linear form never overflows int64.
inline std::int64_t predict_grid(PredictorKind kind, std::int64_t p1,
                                 std::int64_t p2, int have) noexcept {
  if (have == 0) return 0;
  if (kind == PredictorKind::kLorenzo || have == 1) return p1;
  return 2 * p1 - p2;
}

}  // namespace memq::compress
