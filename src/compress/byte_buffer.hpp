// Growable byte buffer plus bounds-checked little-endian reader/writer.
//
// All compressed-chunk payloads are built and parsed through these; the
// reader throws CorruptData instead of reading past the end, which is what
// turns a truncated chunk into a detected failure rather than UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace memq::compress {

using ByteBuffer = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  explicit ByteWriter(ByteBuffer& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// LEB128 unsigned varint.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  /// ZigZag-encoded signed varint.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::size_t size() const noexcept { return out_.size(); }

 private:
  ByteBuffer& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data)
      : data_(data), pos_(0) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    const auto lo = u8();
    const auto hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = u8();
      if (shift == 63 && (byte & 0x7E) != 0)
        throw CorruptData("varint overflows 64 bits");
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) throw CorruptData("varint too long");
    }
  }

  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t pos() const noexcept { return pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n)
      throw CorruptData("byte stream truncated: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(data_.size() - pos_));
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_;
};

}  // namespace memq::compress
