// Common simulation-engine interface.
//
// Three implementations share it (the paper's comparison set):
//   DenseEngine  — uncompressed SV-Sim/QuEST-style backend (memory baseline)
//   WuEngine     — prior work [6]: full-state compression, compress/
//                  decompress around every gate, CPU only
//   MemQSimEngine — the paper's contribution: chunked compression + staged
//                  streaming through the (simulated) GPU with pipelining
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "circuit/circuit.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "core/stage_report.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

namespace memq::core {

struct EngineTelemetry {
  /// Real (wall-clock) CPU seconds by phase: "decompress", "recompress",
  /// "cpu_apply", "offline_init", ...
  PhaseTimers cpu_phases;

  /// Modeled accelerator time (virtual; see DESIGN.md hardware substitution).
  double device_busy_seconds = 0.0;
  /// Modeled end-to-end time: host clock including CPU work and sync waits.
  double modeled_total_seconds = 0.0;
  /// Real wall-clock of run() including all modeling bookkeeping.
  double wall_seconds = 0.0;

  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t h2d_calls = 0;
  std::uint64_t d2h_calls = 0;
  std::uint64_t kernel_launches = 0;

  /// Peak bytes of state storage on the host (compressed store + working
  /// buffers for MemQSim/Wu; the dense vector for DenseEngine).
  std::uint64_t peak_host_state_bytes = 0;
  std::uint64_t peak_device_bytes = 0;

  /// Peak decompressed amplitude bytes simultaneously resident in online-
  /// pipeline buffers — the bounded in-flight window of the parallel codec
  /// path (compressed engines only; bounded by
  /// (pipeline_depth + codec_threads) work items).
  std::uint64_t peak_inflight_bytes = 0;

  std::uint64_t chunk_loads = 0;
  std::uint64_t chunk_stores = 0;
  std::uint64_t zero_chunks_skipped = 0;

  /// Raw amplitude bytes pushed through the codec: loads/stores times the
  /// chunk's uncompressed size. Divided by the matching cpu_phases seconds
  /// they give the codec's effective MB/s (reported in the telemetry JSON
  /// and the --stage-report table).
  std::uint64_t codec_decode_bytes = 0;
  std::uint64_t codec_encode_bytes = 0;

  /// Chunk-cache counters (all zero when cache_budget_bytes == 0; see
  /// core/chunk_cache.hpp).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_clean_evictions = 0;  ///< evictions without encode
  std::uint64_t cache_writebacks = 0;       ///< deferred encodes paid
  /// Raw amplitude bytes whose codec pass the cache avoided.
  std::uint64_t cache_codec_bytes_avoided = 0;
  std::uint64_t peak_cache_resident_bytes = 0;

  /// Blob-backend spill counters (zero for StoreBackend::kRam; see
  /// core/blob_store.hpp).
  std::uint64_t spill_writes = 0;  ///< blobs written to the backing file
  std::uint64_t spill_reads = 0;   ///< blobs read back from the file
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t spill_bytes_read = 0;
  /// Peak compressed bytes resident in host RAM — equals the peak
  /// compressed footprint for the RAM backend, is capped by
  /// host_blob_budget_bytes for the file backend. With dedup on this is
  /// the *physical* (post-dedup) footprint.
  std::uint64_t peak_resident_blob_bytes = 0;

  /// Redundancy-aware storage counters (all zero with --dedup off; see
  /// core/blob_store.hpp DedupBlobStore and DESIGN.md §5h).
  std::uint64_t dedup_hits = 0;  ///< stores coalesced onto an existing blob
  std::uint64_t dedup_bytes_saved = 0;  ///< compressed bytes not re-stored
  std::uint64_t cow_breaks = 0;  ///< divergent writes that split a share
  /// Constant-chunk fast path (always on, independent of dedup): stores
  /// that collapsed to a ~16-byte tag and loads served by a fill that
  /// bypassed the codec.
  std::uint64_t constant_chunks_stored = 0;
  std::uint64_t constant_chunks_materialized = 0;
  /// Cache loads served by copying another cached chunk with the same
  /// physical blob (dedup on + cache only).
  std::uint64_t cache_alias_hits = 0;
  /// Codec invocations skipped by the store's redundancy memo (dedup only):
  /// encodes reused from a byte-identical recent store plus decodes reused
  /// from a recent load of the same physical content.
  std::uint64_t codec_memo_hits = 0;

  /// Fault-injection + recovery counters (see common/faultpoint.hpp).
  /// faults_injected is process-global fires since the last fault::arm();
  /// io_retries counts transient spill I/O and cache write-back retries;
  /// degraded_to_ram is 1 once a persistent spill failure switched the
  /// file backend to RAM residency.
  std::uint64_t faults_injected = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t degraded_to_ram = 0;

  std::size_t stages_local = 0;
  std::size_t stages_pair = 0;
  std::size_t stages_permute = 0;
  std::size_t stages_measure = 0;

  /// Wall seconds the coordinator spent blocked on the codec pipeline —
  /// waiting for a decode it needs next, or for the bounded write-back
  /// window to drain. High values mean the in-flight window (not the
  /// modeled device) is the bottleneck.
  double pipeline_stall_seconds = 0.0;

  /// Compressed-store compression ratio at the end of the run.
  double final_compression_ratio = 0.0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;
  virtual qubit_t n_qubits() const = 0;

  /// Resets to |0..0> and clears telemetry.
  virtual void reset() = 0;

  /// Replaces the state with an arbitrary amplitude vector (2^n entries;
  /// callers are responsible for normalization). The compressed engines
  /// chunk + compress it on ingest — the offline stage of paper Figure 2
  /// for a caller-supplied initial state.
  virtual void load_dense(std::span<const amp_t> amplitudes) = 0;

  /// Executes the circuit (appending to the current state).
  virtual void run(const circuit::Circuit& circuit) = 0;

  /// One amplitude of the current state.
  virtual amp_t amplitude(index_t i) = 0;

  /// Sum |a_i|^2.
  virtual double norm() = 0;

  /// Full-register measurement samples (state is not collapsed).
  virtual std::map<index_t, std::uint64_t> sample_counts(std::size_t shots) = 0;

  /// Materializes the dense state (tests / small n only).
  virtual sv::StateVector to_dense() = 0;

  /// <psi| P |psi> for a Pauli string ("IXYZ", index 0 = qubit 0).
  /// Computed chunk-wise on the compressed engines — the full dense state
  /// is never materialized.
  virtual double expectation(const sv::PauliString& pauli) = 0;

  /// Measurement distribution of a qubit subset (marginal over the rest):
  /// entry b = P(qubits read out as bit pattern b, qubits[0] = LSB).
  /// Chunk-wise; at most 20 qubits may be requested.
  virtual std::vector<double> marginal_probabilities(
      const std::vector<qubit_t>& qubits) = 0;

  /// Writes the current state (compressed form where applicable) to a
  /// checkpoint file; restore with load_state on an engine of the same
  /// width. Long simulations resume without replaying the circuit.
  virtual void save_state(const std::string& path) = 0;
  virtual void load_state(const std::string& path) = 0;

  virtual const EngineTelemetry& telemetry() const = 0;

  /// Per-stage metrics of the last run(), or nullptr for engines without a
  /// stage plan (dense, wu).
  virtual const StageReport* stage_report() const { return nullptr; }
};

enum class EngineKind : std::uint8_t { kDense, kWu, kMemQSim };

/// Factory over the three engines (config is ignored where not applicable).
std::unique_ptr<Engine> make_engine(EngineKind kind, qubit_t n_qubits,
                                    const EngineConfig& config = {});

const char* engine_kind_name(EngineKind kind) noexcept;

}  // namespace memq::core
