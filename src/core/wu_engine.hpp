// Prior-work baseline in the style of Wu et al. [6] ("Full-state quantum
// circuit simulation by using data compression", SC'19), as characterized by
// the paper's introduction: the whole compressed state is decompressed and
// recompressed around EVERY gate, on the CPU, with no locality grouping and
// no accelerator. MEMQSim's stage partitioning and pipelining are exactly
// the fixes for this engine's overheads, so it is the E6 comparison arm.
#pragma once

#include "core/compressed_base.hpp"

namespace memq::core {

class WuEngine final : public CompressedEngineBase {
 public:
  WuEngine(qubit_t n_qubits, const EngineConfig& config);

  std::string name() const override { return "wu-baseline"; }
  void run(const circuit::Circuit& circuit) override;

 private:
  void charge_cpu(double seconds) override;
  void apply_unitary_gate(const circuit::Gate& gate);
};

}  // namespace memq::core
