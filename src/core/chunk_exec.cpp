#include "core/chunk_exec.hpp"

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "core/chunk_cache.hpp"
#include "core/chunk_store.hpp"
#include "sv/kernels.hpp"

namespace memq::core {

using circuit::Gate;
using circuit::GateKind;

bool is_chunk_local(const Gate& gate, qubit_t chunk_qubits) {
  if (gate.is_barrier()) return true;
  if (gate.is_nonunitary()) return false;  // measurement is a global flow
  if (gate.is_diagonal()) return true;     // any target: per-chunk scalar
  for (const qubit_t t : gate.targets)
    if (t >= chunk_qubits) return false;
  return true;
}

namespace {

/// Splits controls into a local bit mask and a chunk-index condition.
/// Returns false if impossible (never: masks always constructible).
struct SplitControls {
  index_t local_mask = 0;   // over chunk-local bits
  index_t chunk_mask = 0;   // over chunk-index bits (control q -> bit q - c)
};

SplitControls split_controls(const Gate& gate, qubit_t c) {
  SplitControls out;
  for (const qubit_t q : gate.controls) {
    if (q < c)
      out.local_mask |= index_t{1} << q;
    else
      out.chunk_mask |= index_t{1} << (q - c);
  }
  return out;
}

}  // namespace

bool apply_gate_to_chunk(std::span<amp_t> chunk, index_t chunk_index,
                         qubit_t chunk_qubits, const Gate& gate) {
  if (gate.is_barrier() || gate.kind == GateKind::kI) return false;
  MEMQ_CHECK(is_chunk_local(gate, chunk_qubits),
             "gate " << gate.to_string() << " is not chunk-local at c="
                     << chunk_qubits);
  MEMQ_CHECK(chunk.size() == (index_t{1} << chunk_qubits),
             "chunk buffer size mismatch");

  const auto [local_mask, chunk_mask] = split_controls(gate, chunk_qubits);
  if ((chunk_index & chunk_mask) != chunk_mask) return false;

  // Diagonal gate with a high target: the target bit is fixed per chunk, so
  // the whole (control-satisfying part of the) chunk scales by d0 or d1.
  const qubit_t t0 = gate.targets.at(0);
  if (gate.is_diagonal() && t0 >= chunk_qubits) {
    const circuit::Mat2 m = gate.matrix1q();
    const amp_t d =
        bits::test(chunk_index, t0 - chunk_qubits) ? m[3] : m[0];
    if (d == amp_t{1.0, 0.0}) return false;
    if (local_mask == 0) {
      for (amp_t& a : chunk) a *= d;
    } else {
      for (index_t i = 0; i < chunk.size(); ++i)
        if ((i & local_mask) == local_mask) chunk[i] *= d;
    }
    return true;
  }

  if (gate.kind == GateKind::kSwap) {
    sv::apply_swap(chunk, gate.targets[0], gate.targets[1], local_mask);
    return true;
  }
  if (gate.kind == GateKind::kX) {
    sv::apply_x(chunk, t0, local_mask);
    return true;
  }
  if (gate.is_diagonal()) {
    const circuit::Mat2 m = gate.matrix1q();
    sv::apply_diagonal1(chunk, t0, m[0], m[3], local_mask);
    return true;
  }
  sv::apply_matrix1(chunk, t0, gate.matrix1q(), local_mask);
  return true;
}

bool apply_gate_to_pair(std::span<amp_t> pair, index_t chunk_lo,
                        qubit_t chunk_qubits, qubit_t pair_qubit,
                        const Gate& gate) {
  if (gate.is_barrier() || gate.kind == GateKind::kI) return false;
  MEMQ_CHECK(pair.size() == (index_t{1} << (chunk_qubits + 1)),
             "pair buffer size mismatch");
  MEMQ_CHECK(pair_qubit >= chunk_qubits, "pair qubit must be non-local");
  MEMQ_CHECK(!bits::test(chunk_lo, pair_qubit - chunk_qubits),
             "chunk_lo must have the pair bit clear");

  // Resolve controls: local ones keep their bit; the pair qubit maps to bit
  // c; other high controls test against the chunk index.
  index_t local_mask = 0;
  index_t chunk_mask = 0;
  for (const qubit_t q : gate.controls) {
    if (q < chunk_qubits)
      local_mask |= index_t{1} << q;
    else if (q == pair_qubit)
      local_mask |= index_t{1} << chunk_qubits;
    else
      chunk_mask |= index_t{1} << (q - chunk_qubits);
  }
  if ((chunk_lo & chunk_mask) != chunk_mask) return false;

  // Diagonal gate on a high qubit other than the pair qubit: that bit is
  // constant across both chunks of the pair, so the gate is a scalar here.
  const qubit_t raw_target = gate.targets.at(0);
  if (gate.is_diagonal() && raw_target >= chunk_qubits &&
      raw_target != pair_qubit) {
    const circuit::Mat2 m = gate.matrix1q();
    const amp_t d =
        bits::test(chunk_lo, raw_target - chunk_qubits) ? m[3] : m[0];
    if (d == amp_t{1.0, 0.0}) return false;
    if (local_mask == 0) {
      for (amp_t& a : pair) a *= d;
    } else {
      for (index_t i = 0; i < pair.size(); ++i)
        if ((i & local_mask) == local_mask) pair[i] *= d;
    }
    return true;
  }

  // Remap targets: local stay, pair qubit -> bit c.
  const auto local_of = [&](qubit_t q) -> qubit_t {
    if (q < chunk_qubits) return q;
    MEMQ_CHECK(q == pair_qubit, "gate " << gate.to_string()
                                        << " touches a second high qubit "
                                        << q);
    return chunk_qubits;
  };

  if (gate.kind == GateKind::kSwap) {
    sv::apply_swap(pair, local_of(gate.targets[0]), local_of(gate.targets[1]),
                   local_mask);
    return true;
  }
  const qubit_t t = local_of(gate.targets.at(0));
  if (gate.kind == GateKind::kX) {
    sv::apply_x(pair, t, local_mask);
    return true;
  }
  if (gate.is_diagonal()) {
    const circuit::Mat2 m = gate.matrix1q();
    sv::apply_diagonal1(pair, t, m[0], m[3], local_mask);
    return true;
  }
  sv::apply_matrix1(pair, t, gate.matrix1q(), local_mask);
  return true;
}

void apply_chunk_permutation(ChunkStore& store, const circuit::Gate& gate,
                             ChunkCache* cache, index_t window_base,
                             index_t window_count) {
  const qubit_t c = store.chunk_qubits();
  // The bit arithmetic runs on WINDOW-LOCAL chunk indices so a batch member
  // occupying [base, base + count) permutes exactly as a standalone state of
  // `count` chunks would; 0/0 covers the whole store (historical behavior).
  const index_t count = window_count != 0 ? window_count : store.n_chunks();
  MEMQ_CHECK(window_base + count <= store.n_chunks(),
             "permutation window out of range");
  index_t cmask = 0;
  for (const qubit_t ctrl : gate.controls) {
    MEMQ_CHECK(ctrl >= c, "permutation gate has a local control");
    cmask |= index_t{1} << (ctrl - c);
  }
  const auto swap_pair = [&](index_t ci, index_t cj) {
    // The cache is notified first: on_swap drains any write-back still in
    // flight for either slot before the blobs move underneath it.
    if (cache != nullptr) cache->on_swap(ci, cj);
    store.swap_chunks(ci, cj);
  };
  if (gate.kind == GateKind::kX) {
    const qubit_t q = gate.targets.at(0);
    MEMQ_CHECK(q >= c, "permutation X must target a high qubit");
    const qubit_t bit = q - c;
    for (index_t li = 0; li < count; ++li) {
      if (bits::test(li, bit)) continue;
      if ((li & cmask) != cmask) continue;
      swap_pair(window_base + li, window_base + bits::set(li, bit));
    }
    return;
  }
  if (gate.kind == GateKind::kSwap) {
    const qubit_t a = gate.targets.at(0), b = gate.targets.at(1);
    MEMQ_CHECK(a >= c && b >= c, "permutation swap must be on high qubits");
    const qubit_t ba = a - c, bb = b - c;
    for (index_t li = 0; li < count; ++li) {
      if (!bits::test(li, ba) || bits::test(li, bb)) continue;
      if ((li & cmask) != cmask) continue;
      swap_pair(window_base + li, window_base + bits::set(bits::clear(li, ba), bb));
    }
    return;
  }
  MEMQ_THROW(InvalidArgument,
             "gate " << gate.to_string() << " is not a chunk permutation");
}

}  // namespace memq::core
