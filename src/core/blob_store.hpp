// Pluggable persistence layer for compressed chunk blobs — the bottom of
// the storage hierarchy. ChunkStore owns the codec and the accounting;
// where the bytes actually live is this interface's problem:
//
//   * RamBlobStore  — every blob in a host vector (the historical path,
//                     byte-for-byte: `inplace_slot` lets the codec encode
//                     straight into the stored buffer with no copy).
//   * FileBlobStore — blobs past a host-RAM budget spill to an unlinked
//                     backing file (write-behind: stores stay resident and
//                     spill only on LRU eviction; reads promote spilled
//                     blobs back when they fit). The budget is a hard cap
//                     on resident compressed bytes, so states whose
//                     *compressed* form exceeds RAM remain simulable.
//
// Threading contract (matches ChunkStore::{load,store}_with): concurrent
// calls are safe for DISTINCT blobs; FileBlobStore serializes internally
// with one mutex (file offsets and the LRU index are shared state), so
// callers get safety for the price of contention, never corruption.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "compress/byte_buffer.hpp"

namespace memq::core {

/// How FileBlobStore moves bytes to/from its backing file.
enum class SpillIo : std::uint8_t {
  kAuto = 0,   ///< mmap unless the MEMQ_SPILL_IO env var says otherwise
  kMmap = 1,   ///< mmap'd regions (falls back to pread/pwrite on map failure)
  kPread = 2,  ///< classic pread/pwrite only
};

class BlobStore {
 public:
  /// Spill / residency counters (all zero for backends that never spill).
  struct Stats {
    std::uint64_t spill_writes = 0;        ///< blobs written to backing file
    std::uint64_t spill_reads = 0;         ///< blobs read back from the file
    std::uint64_t spill_bytes_written = 0;
    std::uint64_t spill_bytes_read = 0;
    std::uint64_t resident_bytes = 0;      ///< compressed bytes in host RAM
    std::uint64_t peak_resident_bytes = 0;
    std::uint64_t file_bytes = 0;          ///< backing-file high-water mark
    std::uint64_t io_retries = 0;          ///< transient spill I/O retries
    std::uint64_t degraded_to_ram = 0;     ///< 1 after persistent spill failure
    std::uint64_t dedup_hits = 0;          ///< writes coalesced onto a shared copy
    std::uint64_t dedup_bytes_saved = 0;   ///< compressed bytes not stored twice
    std::uint64_t cow_breaks = 0;          ///< shared blobs split by divergent writes
  };

  /// content_id() value for backends without content tracking: never equal
  /// to another blob's id, so callers never alias.
  static constexpr std::uint64_t kNoContentId = ~std::uint64_t{0};

  virtual ~BlobStore() = default;

  virtual const char* name() const noexcept = 0;

  /// Sets the blob count (called once by ChunkStore; existing contents are
  /// discarded).
  virtual void resize(index_t n_blobs) = 0;

  /// Returns blob `i`'s bytes. `scratch` is caller-owned storage the
  /// backend may fill and return when the blob is not directly addressable
  /// (spilled); RAM backends return a reference to the stored buffer and
  /// leave `scratch` untouched. The reference is valid until the next
  /// write/swap of blob `i` (or the next read through the same scratch).
  virtual const compress::ByteBuffer& read(index_t i,
                                           compress::ByteBuffer& scratch) = 0;

  /// Replaces blob `i`.
  virtual void write(index_t i, compress::ByteBuffer&& blob) = 0;

  /// Direct mutable storage of blob `i` for in-place encoding, or nullptr
  /// when the backend cannot expose one (spilling backends). Callers that
  /// get a slot must finish mutating it before any other call for blob `i`.
  virtual compress::ByteBuffer* inplace_slot(index_t /*i*/) { return nullptr; }

  /// Current compressed size of blob `i` in bytes.
  virtual std::uint64_t size(index_t i) const = 0;

  /// True if blob `i` holds the codec's all-zero fast-path encoding.
  /// Backends answer from metadata — never from a disk read.
  virtual bool is_zero(index_t i) const = 0;

  /// True if blob `i` decodes as a fill (all-zero or constant-tagged).
  /// Backends answer from metadata — never from a disk read.
  virtual bool is_constant(index_t i) const { return is_zero(i); }

  /// Opaque id equal for two blobs iff they are byte-verified to share one
  /// physical copy right now. kNoContentId when the backend does not dedup
  /// (or the blob was never written) — callers must then never alias. Ids
  /// are never reused within a store's lifetime, so a remembered id can
  /// never silently alias different content written later.
  virtual std::uint64_t content_id(index_t /*i*/) const { return kNoContentId; }

  /// True when content_id() actually tracks content (dedup backends) —
  /// callers use this to gate redundancy-aware shortcuts up the stack.
  virtual bool content_addressed() const noexcept { return false; }

  /// Drops blob `i` back to its never-written state, releasing its bytes
  /// (and any spill-file region) for reuse. Idempotent.
  virtual void free_blob(index_t /*i*/) {}

  /// Exchanges blobs `i` and `j` without touching their bytes.
  virtual void swap(index_t i, index_t j) = 0;

  /// Flushes any buffered backend state to its medium (checkpoint barrier).
  /// No-op for backends without one.
  virtual void sync() {}

  /// True when the backend enforces a residency budget (its
  /// stats().peak_resident_bytes is the honest host-RAM peak; backends
  /// without one keep everything resident by definition).
  virtual bool tracks_residency() const noexcept { return false; }

  virtual Stats stats() const { return {}; }
};

/// Historical backend: every blob lives in host RAM, encode happens
/// in place. Must stay byte-for-byte equivalent to the pre-BlobStore
/// ChunkStore (tests assert bit-exact amplitudes and unchanged counters).
class RamBlobStore final : public BlobStore {
 public:
  const char* name() const noexcept override { return "ram"; }
  void resize(index_t n_blobs) override;
  const compress::ByteBuffer& read(index_t i,
                                   compress::ByteBuffer& scratch) override;
  void write(index_t i, compress::ByteBuffer&& blob) override;
  compress::ByteBuffer* inplace_slot(index_t i) override;
  std::uint64_t size(index_t i) const override;
  bool is_zero(index_t i) const override;
  bool is_constant(index_t i) const override;
  void free_blob(index_t i) override;
  void swap(index_t i, index_t j) override;

 private:
  std::vector<compress::ByteBuffer> blobs_;
};

/// Disk-spilling backend: keeps at most `budget_bytes` of compressed blobs
/// resident (hard cap), spilling least-recently-used blobs to an unlinked
/// temporary file. Write-behind: a stored blob stays resident and dirty
/// until eviction forces the file write; a spilled blob read back while it
/// fits is promoted resident-clean (its disk copy stays valid, so the next
/// eviction is free). Blobs larger than the whole budget spill immediately.
class FileBlobStore final : public BlobStore {
 public:
  /// `budget_bytes` = 0 keeps nothing resident (every access hits the file).
  /// `io` selects the spill transport; kAuto consults MEMQ_SPILL_IO
  /// ("mmap" or "pread") and defaults to mmap.
  explicit FileBlobStore(std::uint64_t budget_bytes,
                         SpillIo io = SpillIo::kAuto);
  ~FileBlobStore() override;

  FileBlobStore(const FileBlobStore&) = delete;
  FileBlobStore& operator=(const FileBlobStore&) = delete;

  const char* name() const noexcept override { return "file"; }
  void resize(index_t n_blobs) override;
  const compress::ByteBuffer& read(index_t i,
                                   compress::ByteBuffer& scratch) override;
  void write(index_t i, compress::ByteBuffer&& blob) override;
  std::uint64_t size(index_t i) const override;
  bool is_zero(index_t i) const override;
  bool is_constant(index_t i) const override;
  void free_blob(index_t i) override;
  void swap(index_t i, index_t j) override;
  void sync() override;
  bool tracks_residency() const noexcept override { return true; }
  Stats stats() const override;

  /// True while spill I/O goes through the mmap'd window (false before the
  /// first spill, after a map failure, or in pread mode).
  bool using_mmap() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_ != nullptr && !mmap_failed_;
  }

  std::uint64_t budget_bytes() const noexcept { return budget_; }
  /// Backing-file path (for error messages; the inode is already unlinked).
  const std::string& path() const noexcept { return path_; }
  /// True once a persistent spill failure switched the store to keeping
  /// every blob resident (the budget is no longer enforced).
  bool degraded() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return degraded_;
  }

 private:
  struct Entry {
    compress::ByteBuffer ram;     ///< resident bytes (empty when spilled)
    std::uint64_t bytes = 0;      ///< current blob size
    std::uint64_t file_off = 0;   ///< backing-file region start
    std::uint64_t file_cap = 0;   ///< backing-file region capacity (0 = none)
    std::uint64_t lru = 0;        ///< tick of last touch (resident only)
    bool resident = false;
    bool on_disk = false;         ///< file region holds the CURRENT bytes
    bool zero = false;            ///< codec zero-chunk fast path
    bool constant = false;        ///< codec zero/constant fill fast path
  };

  void touch_locked(index_t i);
  /// Evicts LRU residents (never blob `keep`) until `need` more bytes fit.
  void make_room_locked(std::uint64_t need, index_t keep);
  /// Writes entry `i` to its file region (allocating one if needed) unless
  /// its disk copy is already current, then drops the resident bytes.
  void evict_locked(index_t i);
  /// Ensures entry has a file region of >= entry.bytes capacity.
  void ensure_region_locked(Entry& e);
  void admit_locked(index_t i, compress::ByteBuffer&& bytes);
  /// Switches to RAM residency after a persistent spill failure (warns once,
  /// sets stats().degraded_to_ram; later writes stop spilling).
  void degrade_locked(const std::string& why);
  void pwrite_fully(const void* data, std::uint64_t n, std::uint64_t off);
  void pread_fully(void* data, std::uint64_t n, std::uint64_t off);
  /// Grows the mmap window to cover [0, need_end). Returns false when mmap
  /// is off / has failed — the caller uses pread/pwrite instead.
  bool ensure_mapped_locked(std::uint64_t need_end);
  /// memcpy into/out of the window, with the same fault sites and
  /// transient-retry behavior as the pread/pwrite pair (so the PR 5 fault
  /// plane exercises both transports identically).
  void mmap_write(const void* data, std::uint64_t n, std::uint64_t off);
  void mmap_read(void* data, std::uint64_t n, std::uint64_t off);
  /// One-way switch to pread/pwrite after a map/grow failure (warns once).
  void mmap_fail_locked(const std::string& why);

  const std::uint64_t budget_;
  const SpillIo io_;
  // Per-instance metrics cells (common/metrics.hpp); stats() assembles the
  // Stats struct from them, so the virtual interface is unchanged.
  metrics::Counter& spill_writes_;
  metrics::Counter& spill_reads_;
  metrics::Counter& spill_bytes_written_;
  metrics::Counter& spill_bytes_read_;
  metrics::Counter& io_retries_;
  metrics::Counter& degraded_c_;
  metrics::Gauge& resident_g_;
  metrics::Gauge& file_bytes_g_;
  metrics::Histogram& spill_read_ns_;
  metrics::Histogram& spill_write_ns_;
  std::string path_;
  bool degraded_ = false;
  bool mmap_failed_ = false;
  char* map_ = nullptr;           ///< mmap window over [0, map_len_)
  std::uint64_t map_len_ = 0;
  bool map_dirty_ = false;        ///< window written since last sync()
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::map<std::uint64_t, index_t> lru_order_;  ///< tick -> blob index
  /// Free backing-file regions, capacity -> offset (best fit on realloc).
  std::multimap<std::uint64_t, std::uint64_t> free_regions_;
  std::uint64_t file_end_ = 0;
  std::uint64_t lru_tick_ = 0;
};

/// Content-hashed dedup wrapper over any inner backend: logical blob
/// indices map onto refcounted physical slots of the inner store, so N
/// identical blobs (ubiquitous early in GHZ/QFT circuits) occupy ONE
/// physical copy in RAM and in the spill file. A write is FNV-1a hashed
/// and — on an index match — byte-compared against the candidate before
/// sharing, so a hash collision can never alias amplitudes. Divergent
/// writes to a shared slot copy-on-write: the writer detaches onto a fresh
/// physical slot (`cow_breaks`), everyone else keeps the original.
///
/// `inplace_slot` is deliberately unsupported (returns nullptr): an
/// in-place encode would mutate a possibly-shared physical buffer before
/// the wrapper could hash it. ChunkStore's encode-to-temp path handles
/// this with identical byte accounting.
class DedupBlobStore final : public BlobStore {
 public:
  explicit DedupBlobStore(std::unique_ptr<BlobStore> inner);

  const char* name() const noexcept override { return name_.c_str(); }
  void resize(index_t n_blobs) override;
  const compress::ByteBuffer& read(index_t i,
                                   compress::ByteBuffer& scratch) override;
  void write(index_t i, compress::ByteBuffer&& blob) override;
  std::uint64_t size(index_t i) const override;
  bool is_zero(index_t i) const override;
  bool is_constant(index_t i) const override;
  std::uint64_t content_id(index_t i) const override;
  bool content_addressed() const noexcept override { return true; }
  void free_blob(index_t i) override;
  void swap(index_t i, index_t j) override;
  void sync() override { inner_->sync(); }
  /// Always true: physical (deduped) bytes are the honest residency story
  /// even over a RAM inner store.
  bool tracks_residency() const noexcept override { return true; }
  Stats stats() const override;

  BlobStore& inner() noexcept { return *inner_; }
  /// Number of physical slots currently holding at least one logical blob.
  index_t physical_blobs() const;
  /// Refcount of the physical slot behind logical blob `i` (0 = unmapped).
  std::uint64_t refcount(index_t i) const;

 private:
  static constexpr index_t kUnmapped = ~index_t{0};

  struct PhysMeta {
    std::uint64_t refcount = 0;
    std::uint64_t hash = 0;
    std::uint64_t bytes = 0;
    std::uint64_t token = 0;  ///< content_id; unique per content fill, never reused
    bool zero = false;
    bool constant = false;
  };

  index_t alloc_phys_locked();
  /// Drops one reference; at zero, frees the inner blob (returning any
  /// spill region exactly once), unindexes the hash, and recycles the slot.
  void release_phys_locked(index_t p);
  /// Physical slot holding byte-identical content, or kUnmapped.
  index_t find_match_locked(std::uint64_t hash,
                            const compress::ByteBuffer& blob);

  std::unique_ptr<BlobStore> inner_;
  std::string name_;
  mutable std::mutex mutex_;
  std::vector<index_t> logical_;   ///< logical index -> physical slot
  std::vector<PhysMeta> phys_;
  std::unordered_multimap<std::uint64_t, index_t> by_hash_;  ///< hash -> phys
  std::vector<index_t> free_phys_;
  index_t next_phys_ = 0;
  /// Monotonic content-token source. Deliberately NOT reset by resize():
  /// tokens must stay unique for the store's whole lifetime so memoized
  /// ids up the stack (ChunkCache aliasing, ChunkStore codec memo) can
  /// never match recycled slots holding new content.
  std::uint64_t next_token_ = 0;
  compress::ByteBuffer cmp_scratch_;  ///< verify-on-match read buffer
  // Per-instance metrics cells: dedup counters plus the physical (deduped)
  // byte footprint with its high-water mark.
  metrics::Counter& dedup_hits_;
  metrics::Counter& dedup_bytes_saved_;
  metrics::Counter& cow_breaks_;
  metrics::Gauge& physical_g_;
};

}  // namespace memq::core
