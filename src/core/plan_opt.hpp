// Locality-aware plan optimizer (DESIGN.md §5i): turns the one-shot greedy
// cut of core/partitioner.cpp into a three-phase offline pipeline —
//
//   (1) gate dependency DAG (circuit/gate_dag.hpp) over the
//       physical-coordinate circuit, after the same mixed-swap lowering the
//       partitioner applies;
//   (2) list scheduling over the DAG's ready antichain, preferring gates
//       that EXTEND the current stage's kind: local runs swallow commuting
//       local gates hoisted across pair stages, pair stages on the same
//       pair qubit merge, permute stages sink until nothing else is ready
//       (they cost no codec work but flush the running stage), fences sink
//       likewise; the next pair qubit is chosen by a one-stage rollout
//       (how many ready + unlocked gates one stage on that qubit absorbs);
//   (3) a stage-fusion + reorder pass that swaps adjacent commuting stages
//       when the Belady cache forecast (chunk_cache.hpp's
//       forecast_plan_cost, the exact admission/eviction rules the online
//       cache applies) predicts fewer misses under the configured
//       --cache-budget, then re-partitions so newly adjacent mergeable
//       stages fuse.
//
// The result flows through the existing StagePlan interface with its
// predicted PlanCost attached; --plan-opt off bypasses all of this and
// reproduces the legacy partition() plan byte-for-byte (test-enforced).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "core/chunk_cache.hpp"
#include "core/partitioner.hpp"

namespace memq::core {

struct PlanOptOptions {
  qubit_t chunk_qubits = 16;
  /// Cache budget the Belady forecast scores against (0 = cache off).
  std::uint64_t cache_budget_bytes = 0;
  /// Raw bytes of one decompressed chunk (2^chunk_qubits amplitudes).
  std::uint64_t chunk_raw_bytes = 0;
  /// Number of chunk slots in the state (2^(n - chunk_qubits)).
  index_t n_chunks = 0;
};

/// Applies the partitioner's mixed-locality SWAP lowering (SWAP touching
/// one high qubit, or with local controls, becomes CX·CX·CX) as a
/// standalone pass, so the DAG and scheduler see the gates the stages will
/// actually contain. Pure-permute and pure-local swaps pass through.
circuit::Circuit lower_mixed_swaps(const circuit::Circuit& circuit,
                                   qubit_t chunk_qubits);

/// Phase 2: DAG-legal reorder of `circuit` (already lowered) maximizing
/// stage extension. Returns the scheduled gate order; partition() of it
/// yields the stages the schedule intended.
circuit::Circuit schedule_locality(const circuit::Circuit& circuit,
                                   qubit_t chunk_qubits);

/// The chunk-access stream `plan` induces, as consumed by
/// ChunkCache::set_plan and forecast_plan_cost (kPermute -> kNone, kPair ->
/// kPair with the pair-bit mask, kLocal/kMeasure -> kEvery).
std::vector<StageAccess> plan_accesses(const StagePlan& plan,
                                       qubit_t chunk_qubits);

/// Predicted cost of executing `plan` under `opt`'s cache budget.
PlanCost estimate_plan_cost(const StagePlan& plan, const PlanOptOptions& opt);

/// Full pipeline: lower -> DAG-schedule -> partition -> cache-aware stage
/// reorder/fusion -> cost estimate. `circuit` must already be in physical
/// coordinates (layout-mapped, swaps elided/fused as configured).
StagePlan build_optimized_plan(const circuit::Circuit& circuit,
                               const PlanOptOptions& opt);

}  // namespace memq::core
