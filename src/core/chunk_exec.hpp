// Applying circuit gates to chunk buffers — the code that runs inside the
// simulated device's kernels AND on CPU co-execution workers.
//
// Chunk addressing: with chunk size 2^c, amplitude index = (chunk << c) |
// local. A gate is *chunk-local* when all its targets are < c (controls may
// be anywhere: control bits >= c are constant within a chunk and resolve to
// a go/no-go per chunk). Diagonal gates are local for ANY target since a
// high target only selects a per-chunk scalar.
#pragma once

#include <span>

#include "circuit/gate.hpp"
#include "common/types.hpp"

namespace memq::core {

/// True if the gate can be applied one chunk at a time.
bool is_chunk_local(const circuit::Gate& gate, qubit_t chunk_qubits);

/// Applies a chunk-local gate to the amplitudes of chunk `chunk_index`.
/// Returns false when the gate was skipped because a control bit >= c is
/// not satisfied by this chunk (the buffer is untouched).
bool apply_gate_to_chunk(std::span<amp_t> chunk, index_t chunk_index,
                         qubit_t chunk_qubits, const circuit::Gate& gate);

/// Applies a gate with exactly one target qubit >= c to a *pair buffer*
/// [chunk_lo | chunk_hi] of 2^(c+1) amplitudes, where chunk_hi = chunk_lo
/// with chunk-bit (pair_qubit - c) set. Local targets stay at their bit,
/// the pair qubit maps to bit c. Returns false if skipped by high controls.
bool apply_gate_to_pair(std::span<amp_t> pair, index_t chunk_lo,
                        qubit_t chunk_qubits, qubit_t pair_qubit,
                        const circuit::Gate& gate);

class ChunkStore;
class ChunkCache;

/// Executes a pure chunk-permutation gate (X or SWAP on high qubits with no
/// local controls) directly on the compressed store — zero codec work.
/// When a chunk cache is active, pass it so cached entries follow their
/// blobs through the permutation. An optional window [base, base + count)
/// scopes the permutation to one batch member's chunk span: the gate's
/// chunk-bit arithmetic runs on window-local indices, so the member behaves
/// exactly like a standalone state of `count` chunks. count == 0 = whole
/// store.
void apply_chunk_permutation(ChunkStore& store, const circuit::Gate& gate,
                             ChunkCache* cache = nullptr,
                             index_t window_base = 0,
                             index_t window_count = 0);

}  // namespace memq::core
