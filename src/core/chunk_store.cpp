#include "core/chunk_store.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/trace.hpp"
#include "compress/dictionary.hpp"

namespace memq::core {

ChunkStore::ChunkStore(qubit_t n_qubits, qubit_t chunk_qubits,
                       const compress::ChunkCodecConfig& codec_config,
                       std::unique_ptr<BlobStore> blob_store)
    : n_qubits_(n_qubits),
      chunk_qubits_(chunk_qubits),
      codec_(codec_config),
      blob_store_(blob_store != nullptr ? std::move(blob_store)
                                        : std::make_unique<RamBlobStore>()),
      bytes_g_(metrics::Registry::global().gauge("store.compressed_bytes")),
      loads_(metrics::Registry::global().counter("store.chunk_loads")),
      stores_(metrics::Registry::global().counter("store.chunk_stores")),
      constant_stores_(metrics::Registry::global().counter(
          "store.constant_chunks_stored")),
      constant_loads_(metrics::Registry::global().counter(
          "store.constant_chunks_materialized")),
      memo_hits_(metrics::Registry::global().counter("store.codec_memo_hits")),
      clones_(metrics::Registry::global().counter("store.chunk_clones")),
      decode_bytes_(metrics::Registry::global().counter("codec.decode_bytes")),
      encode_bytes_(metrics::Registry::global().counter("codec.encode_bytes")),
      decode_ns_(metrics::Registry::global().histogram("codec.decode_ns")),
      encode_ns_(metrics::Registry::global().histogram("codec.encode_ns")) {
  MEMQ_CHECK(chunk_qubits >= 1 && chunk_qubits <= n_qubits,
             "chunk_qubits " << chunk_qubits << " must be in [1, " << n_qubits
                             << "]");
  MEMQ_CHECK(n_qubits - chunk_qubits <= 30,
             "too many chunks: lower n_qubits or raise chunk_qubits");
  blob_store_->resize(n_chunks());
  init_basis(0);
}

void ChunkStore::init_basis(index_t basis) {
  MEMQ_CHECK(basis < dim_of(n_qubits_), "basis state out of range");
  std::uint64_t total = 0;
  std::vector<amp_t> scratch(chunk_amps(), amp_t{0, 0});

  // All chunks are zero except the one containing `basis`; encode the zero
  // chunk once and share the encoding cost (each blob stores its own copy).
  compress::ByteBuffer zero_blob;
  codec_.encode(scratch, zero_blob);

  const index_t hot_chunk = basis >> chunk_qubits_;
  for (index_t i = 0; i < n_chunks(); ++i) {
    if (i == hot_chunk) continue;
    total += zero_blob.size();
    blob_store_->write(i, compress::ByteBuffer(zero_blob));
  }
  scratch[basis & (chunk_amps() - 1)] = amp_t{1, 0};
  compress::ByteBuffer hot_blob;
  codec_.encode(scratch, hot_blob);
  total += hot_blob.size();
  blob_store_->write(hot_chunk, std::move(hot_blob));
  bytes_g_.set(total);
}

void ChunkStore::account_store(std::int64_t delta_bytes) {
  bytes_g_.add(delta_bytes);
  stores_.add();
  // Raw amplitude bytes through a store — ticked for EVERY store (memo
  // reuse included) so the counter stays exactly stores() * chunk size,
  // matching the historical telemetry derivation.
  encode_bytes_.add(chunk_raw_bytes());
}

void ChunkStore::load(index_t i, std::span<amp_t> out) {
  load_with(codec_, i, out);
}

void ChunkStore::store(index_t i, std::span<const amp_t> in) {
  store_with(codec_, i, in);
}

void ChunkStore::load_with(compress::ChunkCodec& codec, index_t i,
                           std::span<amp_t> out) {
  MEMQ_CHECK(i < n_chunks(), "chunk index out of range");
  MEMQ_CHECK(out.size() == chunk_amps(), "load span size mismatch");
  MEMQ_TRACE_SCOPE("codec", "decode", trace::arg("chunk", std::uint64_t{i}));
  // Redundancy memo: a recent decode of the same physical content (token
  // equality is byte-verified sharing, and tokens are never reused) makes
  // this load a copy. The token is stable across the unlocked window — the
  // pipeline never stores a chunk while also loading it.
  const std::uint64_t token = blob_store_->content_addressed()
                                  ? blob_store_->content_id(i)
                                  : BlobStore::kNoContentId;
  if (token != BlobStore::kNoContentId) {
    std::lock_guard<std::mutex> lock(memo_.mutex);
    for (const CodecMemo::Decoded& e : memo_.decoded) {
      if (e.token != token) continue;
      std::copy(e.amps.begin(), e.amps.end(), out.begin());
      // Counter only, no trace instant: memo hits depend on worker
      // interleaving, and trace span content must stay deterministic
      // across codec thread counts (PR 4 contract, test-enforced).
      memo_hits_.add();
      loads_.add();
      decode_bytes_.add(chunk_raw_bytes());
      return;
    }
  }
  compress::ByteBuffer scratch;  // untouched by the RAM backend
  const compress::ByteBuffer& blob = blob_store_->read(i, scratch);
  const bool constant = compress::ChunkCodec::is_constant_chunk(blob);
  if (constant) {
    constant_loads_.add();
    MEMQ_TRACE_INSTANT("codec", "const_fill",
                       trace::arg("chunk", std::uint64_t{i}));
  }
  {
    metrics::ScopedTimer timer(decode_ns_);
    codec.decode(blob, out);
  }
  loads_.add();
  decode_bytes_.add(chunk_raw_bytes());
  if (token != BlobStore::kNoContentId && !constant) {
    // Constant fills are cheaper than the memo copy — don't let them
    // churn the entries real decodes want.
    std::lock_guard<std::mutex> lock(memo_.mutex);
    CodecMemo::Decoded& e = memo_.decoded[memo_.decoded_next];
    memo_.decoded_next = (memo_.decoded_next + 1) % CodecMemo::kWays;
    e.token = token;
    e.amps.assign(out.begin(), out.end());
  }
}

void ChunkStore::store_with(compress::ChunkCodec& codec, index_t i,
                            std::span<const amp_t> in) {
  MEMQ_CHECK(i < n_chunks(), "chunk index out of range");
  MEMQ_CHECK(in.size() == chunk_amps(), "store span size mismatch");
  MEMQ_TRACE_SCOPE("codec", "encode", trace::arg("chunk", std::uint64_t{i}));
  if (compress::ByteBuffer* slot = blob_store_->inplace_slot(i)) {
    // RAM backend: encode straight into the stored buffer (historical path).
    const std::int64_t before = static_cast<std::int64_t>(slot->size());
    {
      metrics::ScopedTimer timer(encode_ns_);
      codec.encode(in, *slot);
    }
    if (compress::ChunkCodec::is_constant_chunk(*slot))
      constant_stores_.add();
    account_store(static_cast<std::int64_t>(slot->size()) - before);
    return;
  }
  const std::int64_t before = static_cast<std::int64_t>(blob_store_->size(i));
  // Redundancy memo: when the backend dedups anyway, a store whose raw
  // amplitudes byte-match a recent one can reuse that encode's blob —
  // encode is deterministic, so these are exactly the bytes a fresh encode
  // would produce (bit-identity with the memo off), and the backend's own
  // hash+verify still runs on them.
  // Fill chunks (all amplitudes bitwise equal — a one-memcmp check) skip
  // the memo entirely: their encode is already a tag, cheaper than a hash.
  const bool addressed =
      blob_store_->content_addressed() &&
      !(in.size() > 1 &&
        std::memcmp(in.data(), in.data() + 1,
                    (in.size() - 1) * sizeof(amp_t)) == 0);
  const std::uint64_t raw_hash =
      addressed
          ? common::fnv1a64_words(
                {reinterpret_cast<const std::uint8_t*>(in.data()),
                 in.size() * sizeof(amp_t)})
          : 0;
  if (addressed) {
    std::unique_lock<std::mutex> lock(memo_.mutex);
    for (const CodecMemo::Encoded& e : memo_.encoded) {
      if (e.raw_hash != raw_hash || e.raw.size() != in.size()) continue;
      // Bitwise, not value, equality: -0.0 == +0.0 as doubles but the two
      // need not encode to the same blob, and the memo guarantees the
      // exact bytes a fresh encode would produce.
      if (std::memcmp(in.data(), e.raw.data(),
                      in.size() * sizeof(amp_t)) != 0)
        continue;
      compress::ByteBuffer blob = e.blob;  // copy: write() consumes it
      lock.unlock();
      // Counter only, no trace instant — see the decode-side note.
      memo_hits_.add();
      const std::int64_t after = static_cast<std::int64_t>(blob.size());
      if (compress::ChunkCodec::is_constant_chunk(blob))
        constant_stores_.add();
      blob_store_->write(i, std::move(blob));
      account_store(after - before);
      return;
    }
  }
  compress::ByteBuffer blob;
  {
    metrics::ScopedTimer timer(encode_ns_);
    codec.encode(in, blob);
  }
  const std::int64_t after = static_cast<std::int64_t>(blob.size());
  const bool constant = compress::ChunkCodec::is_constant_chunk(blob);
  if (constant) constant_stores_.add();
  if (addressed && !constant) {
    std::lock_guard<std::mutex> lock(memo_.mutex);
    CodecMemo::Encoded& e = memo_.encoded[memo_.encoded_next];
    memo_.encoded_next = (memo_.encoded_next + 1) % CodecMemo::kWays;
    e.raw_hash = raw_hash;
    e.raw.assign(in.begin(), in.end());
    e.blob = blob;
  }
  blob_store_->write(i, std::move(blob));
  account_store(after - before);
}

void ChunkStore::swap_chunks(index_t i, index_t j) {
  MEMQ_CHECK(i < n_chunks() && j < n_chunks(), "chunk index out of range");
  blob_store_->swap(i, j);
}

void ChunkStore::clone_chunk(index_t src, index_t dst) {
  MEMQ_CHECK(src < n_chunks() && dst < n_chunks(),
             "chunk index out of range");
  if (src == dst) return;
  compress::ByteBuffer scratch;
  const compress::ByteBuffer& blob = blob_store_->read(src, scratch);
  compress::ByteBuffer copy(blob);
  const std::int64_t before = static_cast<std::int64_t>(blob_store_->size(dst));
  const std::int64_t after = static_cast<std::int64_t>(copy.size());
  blob_store_->write(dst, std::move(copy));
  bytes_g_.add(after - before);
  clones_.add();
}

bool ChunkStore::is_zero_chunk(index_t i) const {
  MEMQ_CHECK(i < n_chunks(), "chunk index out of range");
  return blob_store_->is_zero(i);
}

bool ChunkStore::is_constant_chunk(index_t i) const {
  MEMQ_CHECK(i < n_chunks(), "chunk index out of range");
  return blob_store_->is_constant(i);
}

std::uint64_t ChunkStore::content_id(index_t i) const {
  MEMQ_CHECK(i < n_chunks(), "chunk index out of range");
  return blob_store_->content_id(i);
}

std::uint64_t ChunkStore::peak_resident_bytes() const {
  return blob_store_->tracks_residency()
             ? blob_store_->stats().peak_resident_bytes
             : peak_compressed_bytes();
}

namespace {
// "02": adds the shared-dictionary section after the blobs.
constexpr char kCheckpointMagic[8] = {'M', 'Q', 'C', 'K', 'P', 'T', '0', '2'};
}  // namespace

void ChunkStore::save(std::ostream& out) const {
  // Checkpoint barrier: flush any mmap'd spill pages so the backing file
  // and the blobs we are about to stream agree.
  blob_store_->sync();
  out.write(kCheckpointMagic, sizeof kCheckpointMagic);
  compress::ByteBuffer header;
  compress::ByteWriter w(header);
  w.u32(n_qubits_);
  w.u32(chunk_qubits_);
  const std::string& codec_name = codec_.config().compressor;
  w.varint(codec_name.size());
  w.bytes({reinterpret_cast<const std::uint8_t*>(codec_name.data()),
           codec_name.size()});
  w.varint(n_chunks());
  for (index_t i = 0; i < n_chunks(); ++i) w.varint(blob_store_->size(i));
  const std::uint64_t header_len = header.size();
  out.write(reinterpret_cast<const char*>(&header_len), sizeof header_len);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  compress::ByteBuffer scratch;
  for (index_t i = 0; i < n_chunks(); ++i) {
    const compress::ByteBuffer& blob = blob_store_->read(i, scratch);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }

  // Shared-dictionary section: blobs encoded against the run's trained
  // dictionary reference it by id only, so the dictionary itself must
  // travel with the checkpoint or they are undecodable after restore.
  compress::ByteBuffer dict_section;
  {
    compress::ByteWriter dw(dict_section);
    std::shared_ptr<const compress::SzqDict> dict;
    if (const auto* ctx = codec_.dict_context()) dict = ctx->dict();
    dw.u8(dict ? 1 : 0);
    if (dict) dict->serialize(dw);
  }
  const std::uint64_t dict_len = dict_section.size();
  out.write(reinterpret_cast<const char*>(&dict_len), sizeof dict_len);
  out.write(reinterpret_cast<const char*>(dict_section.data()),
            static_cast<std::streamsize>(dict_section.size()));
  MEMQ_CHECK(out.good(), "checkpoint write failed");
}

void ChunkStore::restore(std::istream& in) {
  char magic[sizeof kCheckpointMagic];
  in.read(magic, sizeof magic);
  if (!in.good() || !std::equal(std::begin(magic), std::end(magic),
                                std::begin(kCheckpointMagic)))
    throw CorruptData("checkpoint: bad magic");

  std::uint64_t header_len = 0;
  in.read(reinterpret_cast<char*>(&header_len), sizeof header_len);
  if (!in.good() || header_len > (1ull << 32))
    throw CorruptData("checkpoint: bad header length");
  std::vector<std::uint8_t> header(header_len);
  in.read(reinterpret_cast<char*>(header.data()),
          static_cast<std::streamsize>(header_len));
  if (!in.good()) throw CorruptData("checkpoint: truncated header");

  compress::ByteReader r(header);
  const std::uint32_t n_q = r.u32();
  const std::uint32_t c_q = r.u32();
  MEMQ_CHECK(n_q == n_qubits_ && c_q == chunk_qubits_,
             "checkpoint geometry (" << n_q << "/" << c_q
                                     << ") does not match store ("
                                     << n_qubits_ << "/" << chunk_qubits_
                                     << ")");
  const std::uint64_t name_len = r.varint();
  const auto name_bytes = r.bytes(name_len);
  const std::string codec_name(
      reinterpret_cast<const char*>(name_bytes.data()), name_bytes.size());
  MEMQ_CHECK(codec_name == codec_.config().compressor,
             "checkpoint codec '" << codec_name << "' does not match store '"
                                  << codec_.config().compressor << "'");
  const std::uint64_t count = r.varint();
  if (count != n_chunks()) throw CorruptData("checkpoint: chunk count");
  std::vector<std::uint64_t> lengths(count);
  for (auto& len : lengths) len = r.varint();

  // Read + validate every blob before committing any of them, so a
  // truncated checkpoint never leaves a half-restored state.
  std::vector<compress::ByteBuffer> blobs(count);
  std::uint64_t total = 0;
  for (index_t i = 0; i < count; ++i) {
    blobs[i].resize(lengths[i]);
    in.read(reinterpret_cast<char*>(blobs[i].data()),
            static_cast<std::streamsize>(lengths[i]));
    if (!in.good()) throw CorruptData("checkpoint: truncated blob");
    // Validate framing + checksum before committing.
    if (compress::ChunkCodec::stored_count(blobs[i]) != chunk_amps())
      throw CorruptData("checkpoint: blob has wrong amplitude count");
    compress::ChunkCodec::verify(blobs[i]);
    total += blobs[i].size();
  }
  std::uint64_t dict_len = 0;
  in.read(reinterpret_cast<char*>(&dict_len), sizeof dict_len);
  if (!in.good() || dict_len > (1ull << 24))
    throw CorruptData("checkpoint: bad dictionary section length");
  std::vector<std::uint8_t> dict_section(dict_len);
  in.read(reinterpret_cast<char*>(dict_section.data()),
          static_cast<std::streamsize>(dict_len));
  if (!in.good()) throw CorruptData("checkpoint: truncated dictionary");
  compress::ByteReader dr(dict_section);
  if (dr.u8() != 0) {
    auto* ctx = codec_.dict_context();
    MEMQ_CHECK(ctx != nullptr,
               "checkpoint carries a shared codec dictionary but this run "
               "has dictionaries off — restore with --codec-dict=train");
    ctx->install(std::make_shared<const compress::SzqDict>(
        compress::SzqDict::deserialize(dr)));
  }

  for (index_t i = 0; i < count; ++i)
    blob_store_->write(i, std::move(blobs[i]));
  bytes_g_.set(total);
}

}  // namespace memq::core
