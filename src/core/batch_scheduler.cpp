#include "core/batch_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/timer.hpp"

namespace memq::core {

using circuit::Circuit;
using circuit::Gate;

namespace {

bool stage_equal(const Stage& a, const Stage& b) {
  return a.kind == b.kind && a.pair_qubit == b.pair_qubit &&
         a.gates == b.gates;
}

/// The windowed cache-plan entry a stage induces — plan_accesses()'s kind
/// mapping plus the member window, so the Belady clock sees exactly which
/// member's slots each execution touches.
StageAccess access_for(const Stage& stage, qubit_t chunk_qubits, index_t base,
                       index_t span) {
  StageAccess a;
  a.base = base;
  a.count = span;
  switch (stage.kind) {
    case StageKind::kPermute:
      a.kind = StageAccess::Kind::kNone;
      break;
    case StageKind::kPair:
      a.kind = StageAccess::Kind::kPair;
      a.pair_mask = index_t{1} << (stage.pair_qubit - chunk_qubits);
      break;
    case StageKind::kLocal:
    case StageKind::kMeasure:
      a.kind = StageAccess::Kind::kEvery;
      break;
  }
  return a;
}

}  // namespace

BatchScheduler::BatchScheduler(qubit_t member_qubits,
                               const EngineConfig& config)
    : member_qubits_(member_qubits), k_(config.batch_size), config_(config) {
  MEMQ_CHECK(k_ >= 1, "batch size must be >= 1");
  MEMQ_CHECK(!config.optimize_layout && !config.elide_swaps,
             "batch mode requires the identity layout: disable "
             "optimize_layout and elide_swaps");
  // Member windows must span at least one whole chunk.
  config_.chunk_qubits = std::min<qubit_t>(config.chunk_qubits, member_qubits);
  index_qubits_ = static_cast<qubit_t>(std::bit_width(k_ - 1));
  span_ = index_t{1} << (member_qubits_ - config_.chunk_qubits);
  engine_ = std::make_unique<MemQSimEngine>(
      static_cast<qubit_t>(member_qubits_ + index_qubits_), config_);
  aborted_.assign(k_, false);
}

std::vector<Circuit> BatchScheduler::expand_members(
    const Circuit& base, const EngineConfig& config,
    const circuit::NoiseModel& noise) {
  const std::uint32_t k = config.batch_size;
  std::vector<Circuit> members;
  members.reserve(k);
  switch (config.batch_mode) {
    case BatchMode::kCircuits:
    case BatchMode::kShots:
      // K identical members; shots mode draws per-member samples with seed
      // config.seed + m after the (fully shared) execution.
      members.assign(k, base);
      break;
    case BatchMode::kSweep:
      // Rotation-parameter sweep: member m scales every parametrized angle
      // by (m + 1) / K, so member K-1 is the base circuit and the members
      // share exactly the non-parametrized prefix of the plan.
      for (std::uint32_t m = 0; m < k; ++m) {
        Circuit variant(base.n_qubits());
        const double scale =
            static_cast<double>(m + 1) / static_cast<double>(k);
        for (const Gate& g : base.gates()) {
          Gate v = g;
          for (double& p : v.params) p *= scale;
          variant.append(std::move(v));
        }
        members.push_back(std::move(variant));
      }
      break;
    case BatchMode::kTrajectories:
      for (std::uint32_t m = 0; m < k; ++m)
        members.push_back(
            circuit::sample_noisy_trajectory(base, noise, config.seed + m));
      break;
  }
  return members;
}

void BatchScheduler::build_script(const std::vector<std::uint32_t>& group,
                                  std::size_t depth) {
  const std::uint32_t rep = group.front();
  const std::vector<Stage>& rep_stages = plans_[rep].stages;

  // Advance while every member still has a stage here and agrees on it.
  const auto all_share = [&](std::size_t s) {
    for (const std::uint32_t m : group) {
      const std::vector<Stage>& st = plans_[m].stages;
      if (s >= st.size() || !stage_equal(st[s], rep_stages[s])) return false;
    }
    return true;
  };
  std::size_t d = depth;
  while (d < rep_stages.size() && all_share(d)) {
    Op op;
    op.kind = Op::Kind::kStage;
    op.member = rep;
    op.stage_index = d;
    op.group_size = static_cast<std::uint32_t>(group.size());
    op.access_index = accesses_.size();
    accesses_.push_back(access_for(rep_stages[d], config_.chunk_qubits,
                                   member_base(rep), span_));
    script_.push_back(op);
    ++d;
  }

  // Partition: members whose plan ends at d are done; the rest subgroup by
  // their (pairwise-equal) stage d, preserving member order.
  std::vector<std::uint32_t> done;
  std::vector<std::vector<std::uint32_t>> subgroups;
  for (const std::uint32_t m : group) {
    if (plans_[m].stages.size() == d) {
      done.push_back(m);
      continue;
    }
    bool placed = false;
    for (std::vector<std::uint32_t>& sg : subgroups) {
      if (stage_equal(plans_[m].stages[d], plans_[sg.front()].stages[d])) {
        sg.push_back(m);
        placed = true;
        break;
      }
    }
    if (!placed) subgroups.push_back({m});
  }

  // The shared-prefix state lives in the rep's window. Fan it out to every
  // other destination BEFORE the rep's own subgroup mutates it: finished
  // members first, then each diverging subgroup's new representative.
  const auto clone_to = [&](std::uint32_t dst) {
    Op op;
    op.kind = Op::Kind::kClone;
    op.member = rep;
    op.dst = dst;
    script_.push_back(op);
  };
  for (const std::uint32_t m : done)
    if (m != rep) clone_to(m);
  for (const std::vector<std::uint32_t>& sg : subgroups)
    if (sg.front() != rep) clone_to(sg.front());

  for (const std::vector<std::uint32_t>& sg : subgroups) build_script(sg, d);
}

void BatchScheduler::run(const std::vector<Circuit>& members) {
  MEMQ_CHECK(members.size() == k_,
             "batch expects " << k_ << " members, got " << members.size());
  for (const Circuit& c : members) {
    MEMQ_CHECK(c.n_qubits() == member_qubits_,
               "every batch member must have " << member_qubits_
                                               << " qubits, got "
                                               << c.n_qubits());
    MEMQ_CHECK(!c.has_nonunitary(),
               "batch members must be unitary (no measure/reset) — sampling "
               "happens per member window after the run");
  }

  plans_.clear();
  plans_.reserve(k_);
  for (const Circuit& c : members) plans_.push_back(engine_->plan_for(c));

  script_.clear();
  accesses_.clear();
  std::vector<std::uint32_t> root(k_);
  std::iota(root.begin(), root.end(), 0u);
  build_script(root, 0);

  engine_->reset();  // member 0's window holds |0..0>, the rest are zero
  std::fill(aborted_.begin(), aborted_.end(), false);
  stats_ = BatchStats{};
  stats_.members = k_;
  stats_.padded_members = std::uint32_t{1} << index_qubits_;
  stats_.member_index_qubits = index_qubits_;
  for (const StagePlan& p : plans_)
    stats_.total_member_stages += p.stages.size();

  const ChunkStore& store = engine_->pager().store();
  const std::uint64_t loads0 = store.loads();
  const std::uint64_t stores0 = store.stores();
  WallTimer wall;

  if (engine_->pager().cache_enabled()) engine_->install_batch_plan(accesses_);
  for (const Op& op : script_) {
    if (op.kind == Op::Kind::kClone) {
      // Clone sources are always fork-point reps (group size > 1), and the
      // abort site only fires on size-1 groups — a source is never stale.
      engine_->fanout_chunks(member_base(op.member), member_base(op.dst),
                             span_);
      stats_.clone_chunks += span_;
      continue;
    }
    if (aborted_[op.member]) continue;
    // Injected member failure: provably member-local. Fires only while the
    // executing group is this one member, whose window no sibling shares.
    if (op.group_size == 1 && MEMQ_FAULT("batch.member.abort")) {
      aborted_[op.member] = true;
      continue;
    }
    engine_->run_stage_window(plans_[op.member].stages[op.stage_index],
                              member_base(op.member), span_, op.access_index);
    ++stats_.executed_stages;
    if (op.group_size > 1) ++stats_.shared_stages;
  }
  engine_->clear_batch_plan();
  engine_->sync_devices();

  stats_.wall_seconds = wall.seconds();
  stats_.chunk_loads = store.loads() - loads0;
  stats_.chunk_stores = store.stores() - stores0;
  if (stats_.wall_seconds > 0.0) {
    stats_.circuits_per_second =
        static_cast<double>(k_) / stats_.wall_seconds;
    const double member_state_mb =
        static_cast<double>((index_t{1} << member_qubits_) * sizeof(amp_t)) /
        (1024.0 * 1024.0);
    stats_.amortized_mb_per_s =
        static_cast<double>(stats_.total_member_stages) * member_state_mb /
        stats_.wall_seconds;
  }
  ran_ = true;
}

void BatchScheduler::check_member(std::uint32_t m) const {
  MEMQ_CHECK(ran_, "query before run()");
  MEMQ_CHECK(m < k_, "member " << m << " out of range (batch of " << k_
                               << ")");
}

double BatchScheduler::member_norm(std::uint32_t m) {
  check_member(m);
  return engine_->norm_window(member_base(m), span_);
}

std::map<index_t, std::uint64_t> BatchScheduler::member_counts(
    std::uint32_t m, std::size_t shots) {
  return member_counts(m, shots, config_.seed + m);
}

std::map<index_t, std::uint64_t> BatchScheduler::member_counts(
    std::uint32_t m, std::size_t shots, std::uint64_t seed) {
  check_member(m);
  Prng rng(seed);
  return engine_->sample_counts_window(shots, member_base(m), span_, rng);
}

sv::StateVector BatchScheduler::member_dense(std::uint32_t m) {
  check_member(m);
  return engine_->to_dense_window(member_base(m), span_);
}

double BatchScheduler::member_expectation(std::uint32_t m,
                                          const sv::PauliString& pauli) {
  check_member(m);
  return engine_->expectation_window(pauli, member_base(m), span_);
}

std::vector<std::map<index_t, std::uint64_t>> run_batch_serial(
    EngineKind kind, qubit_t member_qubits, const EngineConfig& config,
    const std::vector<Circuit>& members, std::size_t shots) {
  std::vector<std::map<index_t, std::uint64_t>> out;
  out.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    EngineConfig cfg = config;
    cfg.batch_size = 1;
    // Mirrors BatchScheduler::member_counts' per-member sampling seed.
    cfg.seed = config.seed + m;
    const std::unique_ptr<Engine> eng =
        make_engine(kind, member_qubits, cfg);
    eng->run(members[m]);
    out.push_back(eng->sample_counts(shots));
  }
  return out;
}

}  // namespace memq::core
