// Budgeted write-back cache of *decompressed* chunks, layered between the
// engines and ChunkStore — the answer to paper challenge 2 (compression
// *frequency*): a stage that reloads a chunk the previous stage just wrote
// should not pay a lossy encode/decode round trip for it.
//
//   * Hits skip decode entirely; the cached amplitudes are served as-is.
//   * Stores are absorbed into the cache (entry marked dirty); the encode is
//     deferred until the entry is evicted or flush() is called. A chunk that
//     is rewritten k times while resident pays ONE encode instead of k.
//   * Clean evictions skip recompression altogether — the blob is still
//     accurate.
//   * Eviction is Belady-style (farthest next use) when the engine installs
//     a stage-access plan from the offline partitioner, falling back to LRU
//     for sweeps with no plan (norm, sampling, observables...). The
//     offline/online split mirrors the paper's architecture: the partitioner
//     knows the full stage sequence, so next-use distances are exact up to
//     dynamic zero-chunk skips (handled by lazy recomputation).
//
// Budget accounting: every resident entry charges chunk_raw_bytes to the
// budget AND to the shared InFlightLedger, so peak_inflight_bytes /
// peak_host_state_bytes stay honest. resident_bytes() never exceeds
// budget_bytes(); a budget smaller than one chunk degenerates to
// pass-through (every access goes straight to the store).
//
// Semantics note (documented in DESIGN.md §5c and asserted by
// tests/test_chunk_cache.cpp): with a lossy codec, cache hits AVOID lossy
// round trips, so results may differ from — be at least as accurate as —
// the cache-off path. Bit-identical results are only guaranteed with the
// Null codec. Results never depend on codec_threads: all cache decisions
// (hit/miss/evict) are taken on the coordinator thread in access order.
//
// Threading contract: all public methods are coordinator-only. Dirty
// write-backs fan out through the shared CodecPool (bounded backlog) when
// one is available; a pending-write-back guard drains the backlog before
// any operation that would read or rewrite a blob still being encoded.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "core/codec_pool.hpp"
#include "core/stage_report.hpp"

namespace memq::core {

class ChunkStore;

/// Counters surfaced through EngineTelemetry.
struct ChunkCacheStats {
  std::uint64_t hits = 0;             ///< loads served from the cache
  std::uint64_t misses = 0;           ///< loads that had to decode
  std::uint64_t alias_hits = 0;       ///< misses served by copying a resident
                                      ///< entry of a dedup-shared blob
  std::uint64_t evictions = 0;        ///< entries displaced by the budget
  std::uint64_t writebacks = 0;       ///< deferred encodes actually paid
  std::uint64_t clean_evictions = 0;  ///< evictions that skipped the encode
  std::uint64_t stores_absorbed = 0;  ///< store() calls deferred in-cache
  std::uint64_t peak_resident_bytes = 0;
  std::uint64_t writeback_retries = 0;  ///< failed write-backs re-submitted
                                        ///< from the resident copy

  /// Raw amplitude bytes whose codec pass was avoided: every hit skips one
  /// decode; absorbed stores minus eventual write-backs are skipped encodes.
  std::uint64_t codec_bytes_avoided(std::uint64_t chunk_raw_bytes) const {
    const std::uint64_t skipped_encodes =
        stores_absorbed > writebacks ? stores_absorbed - writebacks : 0;
    return (hits + skipped_encodes) * chunk_raw_bytes;
  }
};

/// One stage of the offline next-use schedule: which chunk slots the stage
/// touches and at which position of its in-order sweep.
struct StageAccess {
  enum class Kind : std::uint8_t {
    kEvery,  ///< local/measure stage: slot i accessed at position i
    kPair,   ///< pair stage: slots i and i|pair_mask accessed together at
             ///< position (i & ~pair_mask)
    kNone,   ///< permute stage: no codec access at all
  };
  Kind kind = Kind::kEvery;
  index_t pair_mask = 0;  ///< kPair only: high bit of the partner chunk
  /// Optional slot window (batch mode): the stage touches only slots in
  /// [base, base + count), and positions are window-relative — slot s sweeps
  /// at position (s - base) for kEvery, ((s - base) & ~pair_mask) for kPair
  /// (pair_mask is expressed in window-local bits). count == 0 means the
  /// whole store, which reproduces the historical schedule byte-for-byte.
  index_t base = 0;
  index_t count = 0;
};

/// Replays `plan`'s chunk-access stream (kEvery: load+store of every slot
/// in ascending order; kPair: load lo, load hi, store lo, store hi per
/// pair; kNone: nothing) through the same Belady admission and eviction
/// rules ChunkCache applies online, and returns the predicted cost. This is
/// what the plan optimizer scores candidate stage orders with, and what
/// --stage-report prints as "planned" next to the run's actuals. The
/// forecast assumes every chunk is nonzero (dense upper bound) and models
/// the access stream unpipelined; with a budget below one chunk it
/// degenerates to the exact cache-less count. Streams longer than an
/// internal cap skip the replay and report the cache-less analytic bound
/// with PlanCost::exact = false.
PlanCost forecast_plan_cost(const std::vector<StageAccess>& plan,
                            index_t n_chunks, std::uint64_t chunk_raw_bytes,
                            std::uint64_t budget_bytes);

class ChunkCache {
 public:
  /// `pool` may be null (serial mode: write-backs encode synchronously).
  ChunkCache(ChunkStore& store, CodecPool* pool, BufferPool& buffers,
             InFlightLedger& ledger, std::uint64_t budget_bytes);
  /// Flushes dirty entries (best effort — errors are swallowed, as in the
  /// reader/writer destructors). Engines flush explicitly before save().
  ~ChunkCache();

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  std::uint64_t budget_bytes() const noexcept { return budget_bytes_; }
  std::uint64_t resident_bytes() const noexcept {
    return resident_g_.value();
  }

  /// Installs the offline stage-access schedule (Belady mode). Stage titles
  /// index into `plan`; call begin_stage() before each stage's accesses.
  void set_plan(std::vector<StageAccess> plan);
  void begin_stage(std::size_t stage_index);
  /// Drops back to LRU mode (plan exhausted / plan-less sweeps).
  void clear_plan();
  bool has_plan() const noexcept { return !plan_.empty(); }

  /// Reads chunk `i` into `out` (chunk_amps amplitudes), decoding and
  /// inserting on a miss.
  void load(index_t i, std::span<amp_t> out);

  /// Accepts `in` as the new contents of chunk `i`; the encode is deferred
  /// (write-back). Falls through to an immediate store when the budget
  /// cannot hold even one chunk.
  void store(index_t i, std::span<const amp_t> in);

  /// Cache-aware zero query: a dirty entry means the blob is stale, so the
  /// chunk must be treated as possibly nonzero. Never drains the write-back
  /// backlog (a pending slot conservatively reports false).
  bool is_zero(index_t i) const;

  /// Cache-aware fill query, same conservatism as is_zero(): true only when
  /// the blob's zero/constant tag is authoritative for the current contents.
  bool is_constant(index_t i) const;

  /// True if the cached copy of `i` exists and is dirty (blob stale).
  bool dirty(index_t i) const;

  /// Discards the entry for `i` (no write-back) — callers that are about to
  /// overwrite the chunk in the store directly use this to keep the cache
  /// coherent (e.g. measurement writing zero chunks).
  void drop(index_t i);

  /// Mirrors ChunkStore::swap_chunks so cached entries follow their blobs
  /// through compressed-form permutation stages.
  void on_swap(index_t i, index_t j);

  /// Writes every dirty entry back (entries stay resident, now clean) and
  /// joins the write-back backlog. Required before ChunkStore::save().
  void flush();

  /// Drops everything without write-back (state reset / restore / load_dense
  /// overwrite). Joins the backlog first so no stale encode lands later.
  void invalidate();

  /// Counters since construction or the last reset_stats(), assembled from
  /// this instance's registry cells (by value — the cells are live).
  ChunkCacheStats stats() const noexcept;
  /// Re-baselines the counters (cells stay monotone for the process-wide
  /// registry; only this instance's view restarts from zero) and restarts
  /// the residency high-water mark from the current resident bytes.
  void reset_stats() noexcept;

  /// Codec seconds accumulated inside the cache since the last call:
  /// decode = synchronous miss decodes, encode = write-back encodes (summed
  /// across workers in pool mode), wait = coordinator seconds blocked on
  /// the write-back backlog. Engines drain this into the phase breakdown
  /// and the modeled clock.
  struct Timings {
    double decode_seconds = 0.0;
    double encode_seconds = 0.0;
    double wait_seconds = 0.0;
  };
  Timings take_timings();

 private:
  struct Entry {
    std::vector<amp_t> data;
    bool dirty = false;
    /// Provenance: true iff `data` came out of ChunkCodec::decode (miss
    /// decode or alias copy of one). Only such entries may serve dedup
    /// alias hits — a store()-inserted entry holds PRE-codec amplitudes,
    /// which a lossy codec would not reproduce, so copying it would break
    /// bit-identity with the dedup-off path.
    bool from_decode = false;
    std::uint64_t last_use = 0;  ///< LRU tick
    std::uint64_t next_use = 0;  ///< Belady: next scheduled access time
  };

  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  bool plan_active() const noexcept {
    return !plan_.empty() && stage_ < plan_.size();
  }
  /// Position of slot in a stage's sweep, or nullopt if untouched.
  static std::optional<index_t> position_in(const StageAccess& stage,
                                            index_t slot);
  /// First scheduled access of `slot` strictly after `from_time`.
  std::uint64_t next_use_of(index_t slot, std::uint64_t from_time) const;
  /// Advances the Belady clock to the access of `slot` in the current stage.
  void touch(index_t slot, Entry& entry);
  /// Advances the Belady clock to `slot`'s position in the current stage.
  void advance_clock(index_t slot);
  /// Belady admission filter: false when caching `slot` would evict an
  /// entry that is needed sooner than `slot` itself.
  bool worth_inserting(index_t slot);
  /// Drains the write-back backlog if `i` still has an encode in flight.
  void guard_slot(index_t i);
  /// Evicts victims until `extra_bytes` more fit in the budget.
  void evict_to_fit(std::uint64_t extra_bytes);
  /// Inserts a copy of `data` (caller guarantees it fits after eviction).
  void insert(index_t i, std::span<const amp_t> data, bool dirty,
              bool from_decode);
  /// Serves a miss of `i` by copying a clean decode-derived entry of a
  /// blob-store-verified identical chunk. False when no such entry exists.
  bool try_alias_load(index_t i, std::span<amp_t> out);
  void writeback(index_t slot, std::vector<amp_t> buf);

  ChunkStore& store_;
  BufferPool& buffers_;
  InFlightLedger& ledger_;
  std::uint64_t budget_bytes_;
  std::uint64_t chunk_raw_bytes_;

  std::unordered_map<index_t, Entry> entries_;

  // Deferred write-backs ride the same bounded-backlog writer the engines
  // use; `pending_wb_` over-approximates the slots still in flight.
  ChunkWriter writer_;
  std::unordered_set<index_t> pending_wb_;

  // Belady schedule + clock.
  std::vector<StageAccess> plan_;
  std::size_t stage_ = 0;
  std::uint64_t width_ = 0;  ///< positions per stage (= n_chunks)
  std::uint64_t now_ = 0;    ///< stage_ * width_ + current position
  std::uint64_t lru_tick_ = 0;

  // Per-instance metrics cells (common/metrics.hpp); stats() subtracts
  // `base_` so reset_stats() re-baselines without breaking monotonicity.
  metrics::Counter& hits_;
  metrics::Counter& misses_;
  metrics::Counter& alias_hits_;
  metrics::Counter& evictions_;
  metrics::Counter& writebacks_;
  metrics::Counter& clean_evictions_;
  metrics::Counter& stores_absorbed_;
  metrics::Counter& writeback_retries_;
  metrics::Gauge& resident_g_;
  ChunkCacheStats base_;
  double decode_seconds_ = 0.0;
  double encode_taken_ = 0.0;  ///< writer encode seconds already reported
  double wait_taken_ = 0.0;    ///< writer wait seconds already reported
};

/// Streams a job list through the cache when one is enabled, else through a
/// plain ChunkReader — the single read path for engine stages and sweeps.
/// Items come out in job order either way.
class CachedReader {
 public:
  CachedReader(ChunkStore& store, CodecPool* pool, BufferPool& buffers,
               InFlightLedger& ledger, ChunkCache* cache,
               std::vector<ChunkJob> jobs, std::size_t window);

  std::optional<ChunkReader::Item> next();
  void recycle(std::vector<amp_t> buf);

  /// Decode/wait seconds of the underlying ChunkReader (zero in cache mode —
  /// cache codec time is reported through ChunkCache::take_timings()).
  double decode_seconds() const noexcept {
    return reader_ ? reader_->decode_seconds() : 0.0;
  }
  double wait_seconds() const noexcept {
    return reader_ ? reader_->wait_seconds() : 0.0;
  }

 private:
  ChunkStore& store_;
  BufferPool& buffers_;
  InFlightLedger& ledger_;
  ChunkCache* cache_;
  std::optional<ChunkReader> reader_;  ///< engaged iff cache_ == nullptr
  std::vector<ChunkJob> jobs_;         ///< cache mode only
  std::size_t next_job_ = 0;
};

/// Scoped plan for a plan-less sweep: installs a one-stage ascending kEvery
/// schedule so eviction during the sweep stays next-use-aware (slots already
/// swept become immediately evictable; upcoming residents survive) instead
/// of LRU, which evicts residents moments before a cyclic scan reaches them.
/// No-op when the cache is off or a run plan is already active — a plan
/// installed by an enclosing scope (an engine run, or another member's guard
/// in a batch) is never clobbered; the inner guard simply rides it.
/// The optional window restricts the one-stage plan to slots
/// [base, base + count) — batch-member sweeps use it so slots belonging to
/// sibling members carry no scheduled next use (they evict first).
class SweepPlanGuard {
 public:
  explicit SweepPlanGuard(ChunkCache* cache, index_t base = 0,
                          index_t count = 0)
      : cache_(cache != nullptr && !cache->has_plan() ? cache : nullptr) {
    if (cache_ != nullptr) {
      cache_->set_plan({StageAccess{StageAccess::Kind::kEvery, 0, base,
                                    count}});
      cache_->begin_stage(0);
    }
  }
  ~SweepPlanGuard() {
    if (cache_ != nullptr) cache_->clear_plan();
  }
  SweepPlanGuard(const SweepPlanGuard&) = delete;
  SweepPlanGuard& operator=(const SweepPlanGuard&) = delete;

 private:
  ChunkCache* cache_;
};

/// Write-side twin of CachedReader: routes modified buffers into the cache
/// (deferred encode) when one is enabled, else into a bounded ChunkWriter.
class CachedWriter {
 public:
  CachedWriter(ChunkStore& store, CodecPool* pool, BufferPool& buffers,
               InFlightLedger& ledger, ChunkCache* cache,
               std::size_t max_pending);

  /// Returns synchronous encode seconds (serial direct mode only; zero in
  /// cache and pool modes).
  double put(const ChunkJob& job, std::vector<amp_t> buf);
  void drain();

  double encode_seconds() const noexcept {
    return writer_ ? writer_->encode_seconds() : 0.0;
  }
  double wait_seconds() const noexcept {
    return writer_ ? writer_->wait_seconds() : 0.0;
  }

 private:
  ChunkStore& store_;
  BufferPool& buffers_;
  InFlightLedger& ledger_;
  ChunkCache* cache_;
  std::optional<ChunkWriter> writer_;  ///< engaged iff cache_ == nullptr
};

}  // namespace memq::core
