// Offline stage: partitions the input circuit into chunk-compatible stages
// (paper Figure 2, "Offline stage ... partitions the input circuit").
//
// Stage kinds, in decreasing order of data-locality luck:
//   kLocal   — a maximal run of chunk-local gates (all targets < c, or
//              diagonal). One decompress/recompress cycle per chunk serves
//              the WHOLE run: this is the fix for prior work's per-gate
//              compression churn (the paper's complaint (1) about [6]).
//   kPair    — a run of gates sharing one high target qubit q (plus any
//              interleaved local gates, which are absorbed): processed on
//              chunk pairs (i, i | 2^(q-c)).
//   kPermute — X/SWAP purely on high qubits: executed as a permutation of
//              *compressed* chunks; no codec work at all.
//   kMeasure — measure/reset: a global two-pass flow owned by the engine.
//
// SWAPs touching one high qubit (or with local controls) are pre-lowered to
// three CXs so every pair stage has a single well-defined pair qubit.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "core/stage_report.hpp"

namespace memq::core {

enum class StageKind : std::uint8_t { kLocal, kPair, kPermute, kMeasure };

struct Stage {
  StageKind kind = StageKind::kLocal;
  std::vector<circuit::Gate> gates;
  qubit_t pair_qubit = 0;  ///< kPair only
};

struct PartitionStats {
  std::size_t local_stages = 0;
  std::size_t pair_stages = 0;
  std::size_t permute_stages = 0;
  std::size_t measure_stages = 0;
  std::size_t gates_in_local = 0;
  std::size_t gates_in_pair = 0;
  /// Mean gates executed per decompress/recompress cycle — the locality
  /// metric of experiment E5 (higher = fewer codec passes per gate).
  double gates_per_codec_pass() const;
};

struct StagePlan {
  std::vector<Stage> stages;
  PartitionStats stats;
  /// Predicted data-movement cost under the configured cache budget; filled
  /// by the plan optimizer (core/plan_opt.hpp), all-zero from partition().
  PlanCost cost;
};

/// Builds the stage plan for `circuit` at chunk granularity 2^chunk_qubits.
StagePlan partition(const circuit::Circuit& circuit, qubit_t chunk_qubits);

/// True for gates a permute stage executes on compressed chunks: X with a
/// high (>= chunk_qubits) target, or SWAP with both targets high, in either
/// case with every control high as well.
bool is_pure_permute(const circuit::Gate& gate, qubit_t chunk_qubits);

/// The unique target >= chunk_qubits of a non-local gate (valid after
/// mixed-swap lowering; checks there is exactly one).
qubit_t pair_high_target(const circuit::Gate& gate, qubit_t chunk_qubits);

const char* stage_kind_name(StageKind kind) noexcept;

}  // namespace memq::core
