#include "core/codec_pool.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/chunk_store.hpp"

namespace memq::core {

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

std::vector<amp_t> BufferPool::get(std::size_t n_amps) {
  std::vector<amp_t> buf;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  buf.resize(n_amps);
  return buf;
}

void BufferPool::put(std::vector<amp_t> buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(buf));
}

void BufferPool::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.clear();
}

// ---------------------------------------------------------------------------
// CodecPool
// ---------------------------------------------------------------------------

CodecPool::CodecPool(const compress::ChunkCodecConfig& config,
                     std::size_t n_threads)
    : config_(config), pool_(n_threads, "codec") {}

CodecPool::CodecHandle CodecPool::lease() {
  std::unique_ptr<compress::ChunkCodec> codec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!codecs_.empty()) {
      codec = std::move(codecs_.back());
      codecs_.pop_back();
    }
  }
  if (!codec) codec = std::make_unique<compress::ChunkCodec>(config_);
  return CodecHandle(codec.release(), CodecReturner{this});
}

void CodecPool::recycle(compress::ChunkCodec* codec) {
  std::lock_guard<std::mutex> lock(mutex_);
  codecs_.push_back(std::unique_ptr<compress::ChunkCodec>(codec));
}

// ---------------------------------------------------------------------------
// ChunkReader
// ---------------------------------------------------------------------------

ChunkReader::ChunkReader(ChunkStore& store, CodecPool* pool,
                         BufferPool& buffers, InFlightLedger& ledger,
                         std::vector<ChunkJob> jobs, std::size_t window)
    : store_(store),
      pool_(pool),
      buffers_(buffers),
      ledger_(ledger),
      jobs_(std::move(jobs)),
      window_(pool != nullptr ? std::max<std::size_t>(window, 1) : 0) {
  refill();
}

ChunkReader::~ChunkReader() {
  // Outstanding decode tasks hold raw pointers into pending_ buffers; wait
  // them out (swallowing errors) before the buffers die.
  for (Pending& p : pending_) {
    if (!p.done.valid()) continue;
    try {
      (void)p.done.get();
    } catch (...) {
    }
    ledger_.release(p.buf.size() * kAmpBytes);
    buffers_.put(std::move(p.buf));
  }
}

void ChunkReader::refill() {
  if (pool_ == nullptr) return;
  const std::size_t half = store_.chunk_amps();
  while (next_job_ < jobs_.size() && pending_.size() < window_) {
    Pending p;
    p.job = jobs_[next_job_++];
    const std::size_t amps = half * (p.job.has_b ? 2 : 1);
    p.buf = buffers_.get(amps);
    ledger_.acquire(amps * kAmpBytes);
    amp_t* data = p.buf.data();
    const ChunkJob job = p.job;
    if (store_.is_constant_chunk(job.a) &&
        (!job.has_b || store_.is_constant_chunk(job.b))) {
      // Zero/constant-tagged chunks materialize as a fill — too cheap to be
      // worth a pool dispatch. Decode inline on the coordinator and park a
      // pre-satisfied future so next() is none the wiser.
      WallTimer t;
      auto codec = pool_->lease();
      store_.load_with(*codec, job.a, {data, half});
      if (job.has_b) store_.load_with(*codec, job.b, {data + half, half});
      std::promise<double> ready;
      ready.set_value(t.seconds());
      p.done = ready.get_future();
      pending_.push_back(std::move(p));
      continue;
    }
    ChunkStore* store = &store_;
    CodecPool* pool = pool_;
    p.done = pool_->submit([store, pool, job, data, half]() -> double {
      WallTimer t;
      auto codec = pool->lease();
      store->load_with(*codec, job.a, {data, half});
      if (job.has_b) store->load_with(*codec, job.b, {data + half, half});
      return t.seconds();
    });
    pending_.push_back(std::move(p));
  }
}

std::optional<ChunkReader::Item> ChunkReader::next() {
  const std::size_t half = store_.chunk_amps();
  if (pool_ == nullptr) {
    if (next_job_ >= jobs_.size()) return std::nullopt;
    Item item;
    item.job = jobs_[next_job_++];
    const std::size_t amps = half * (item.job.has_b ? 2 : 1);
    item.buf = buffers_.get(amps);
    ledger_.acquire(amps * kAmpBytes);
    WallTimer t;
    store_.load(item.job.a, std::span<amp_t>(item.buf).first(half));
    if (item.job.has_b)
      store_.load(item.job.b, std::span<amp_t>(item.buf).subspan(half, half));
    item.decode_seconds = t.seconds();
    decode_seconds_ += item.decode_seconds;
    return item;
  }

  refill();
  if (pending_.empty()) return std::nullopt;
  Pending p = std::move(pending_.front());
  pending_.pop_front();
  WallTimer wait;
  double dt;
  {
    MEMQ_TRACE_SCOPE("stall", "wait_decode",
                     trace::arg("chunk", std::uint64_t{p.job.a}));
    dt = p.done.get();  // rethrows decode failures
  }
  wait_seconds_ += wait.seconds();
  decode_seconds_ += dt;
  refill();  // keep workers fed while the coordinator consumes this item
  Item item;
  item.job = p.job;
  item.buf = std::move(p.buf);
  return item;
}

void ChunkReader::recycle(std::vector<amp_t> buf) {
  ledger_.release(buf.size() * kAmpBytes);
  buffers_.put(std::move(buf));
}

// ---------------------------------------------------------------------------
// ChunkWriter
// ---------------------------------------------------------------------------

ChunkWriter::ChunkWriter(ChunkStore& store, CodecPool* pool,
                         BufferPool& buffers, InFlightLedger& ledger,
                         std::size_t max_pending)
    : store_(store),
      pool_(pool),
      buffers_(buffers),
      ledger_(ledger),
      max_pending_(max_pending) {}

ChunkWriter::~ChunkWriter() {
  for (auto& fut : pending_) {
    if (!fut.valid()) continue;
    try {
      (void)fut.get();
    } catch (...) {
    }
  }
}

double ChunkWriter::put(const ChunkJob& job, std::vector<amp_t> buf) {
  const std::size_t half = store_.chunk_amps();
  if (pool_ == nullptr) {
    WallTimer t;
    store_.store(job.a, std::span<const amp_t>(buf).first(half));
    if (job.has_b)
      store_.store(job.b, std::span<const amp_t>(buf).subspan(half, half));
    const double dt = t.seconds();
    encode_seconds_ += dt;
    ledger_.release(buf.size() * kAmpBytes);
    buffers_.put(std::move(buf));
    return dt;
  }

  while (pending_.size() > max_pending_) reap_one();
  ChunkStore* store = &store_;
  CodecPool* pool = pool_;
  BufferPool* buffers = &buffers_;
  InFlightLedger* ledger = &ledger_;
  pending_.push_back(pool_->submit(
      [store, pool, buffers, ledger, job, half, b = std::move(buf)]() mutable
      -> double {
        WallTimer t;
        {
          auto codec = pool->lease();
          store->store_with(*codec, job.a,
                            std::span<const amp_t>(b).first(half));
          if (job.has_b)
            store->store_with(*codec, job.b,
                              std::span<const amp_t>(b).subspan(half, half));
        }
        const double dt = t.seconds();
        ledger->release(b.size() * kAmpBytes);
        buffers->put(std::move(b));
        return dt;
      }));
  return 0.0;
}

void ChunkWriter::reap_one() {
  WallTimer wait;
  std::future<double> fut = std::move(pending_.front());
  pending_.pop_front();
  double dt;
  {
    MEMQ_TRACE_SCOPE("stall", "wait_encode");
    dt = fut.get();  // rethrows encode failures
  }
  wait_seconds_ += wait.seconds();
  encode_seconds_ += dt;
}

void ChunkWriter::drain() {
  while (!pending_.empty()) reap_one();
}

}  // namespace memq::core
