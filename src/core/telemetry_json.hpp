// Canonical telemetry-JSON serializer — the ONE place the document schema
// lives. The CLI (`memq run --telemetry-json`) and the benches both emit
// through this writer, so a schema bump is a single-line change here and the
// two surfaces can never drift apart.
//
// Schema history:
//   6 — flat counter document + plan forecast + stage_report rows
//   7 — adds the "metrics" section: run-window latency percentiles
//       (codec encode/decode, lease wait, spill I/O, stage wall time) from
//       the common/metrics.hpp histograms, keyed by histogram name. The
//       section is present only when metrics timing was armed during the
//       run (see metrics::arm_timing); every schema-6 field is unchanged.
//   8 — adds the "batch" section (core/batch_scheduler.hpp): member count,
//       widening, shared vs total member stages, fan-out clone chunks,
//       measured codec passes, circuits/sec and amortized MB/s. Present
//       only for `memq run --batch K` runs; every schema-7 field is
//       unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "core/engine.hpp"
#include "core/stage_report.hpp"

namespace memq::core {

struct BatchStats;

/// Bump when the telemetry JSON document shape changes. Asserted by CI.
inline constexpr int kTelemetrySchemaVersion = 8;

/// One stage-report row as a compact JSON object (no trailing newline).
void stage_row_json(std::ostream& os, const StageRow& r, const char* indent);

/// Write the full telemetry document.
///
/// `head_fields` is a pre-rendered block of caller-specific configuration
/// lines — each formatted as `  "key": value,\n` — spliced in right after
/// schema_version, so the CLI can record engine/codec/backend settings the
/// serializer has no business knowing about. Pass "" for none.
/// `rep` may be null (engines without a stage plan).
/// `batch` may be null (non-batch runs); when set, the schema-8 "batch"
/// section is emitted from it.
void write_telemetry_json(std::ostream& os, const EngineTelemetry& t,
                          const StageReport* rep,
                          const std::string& head_fields, bool faults_armed,
                          const BatchStats* batch = nullptr);

}  // namespace memq::core
