#include "core/qubit_layout.hpp"

#include <algorithm>
#include <numeric>

#include "common/bit_ops.hpp"
#include "common/error.hpp"

namespace memq::core {

QubitLayout::QubitLayout(qubit_t n) : physical_of_(n), logical_of_(n) {
  std::iota(physical_of_.begin(), physical_of_.end(), 0);
  std::iota(logical_of_.begin(), logical_of_.end(), 0);
}

QubitLayout QubitLayout::optimize(const circuit::Circuit& circuit,
                                  qubit_t chunk_qubits) {
  const qubit_t n = circuit.n_qubits();
  QubitLayout layout(n);
  if (chunk_qubits >= n) return layout;  // everything is local anyway

  // Heat = how often a qubit appears as a non-diagonal target (the only
  // role that forces pair processing at chunk granularity).
  std::vector<std::uint64_t> heat(n, 0);
  for (const circuit::Gate& g : circuit.gates()) {
    if (g.is_barrier() || g.is_diagonal()) continue;
    for (const qubit_t t : g.targets) ++heat[t];
  }

  // Hottest logical qubits take the lowest physical positions; ties keep
  // the natural order (stable sort) for determinism.
  std::vector<qubit_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](qubit_t a, qubit_t b) { return heat[a] > heat[b]; });

  for (qubit_t pos = 0; pos < n; ++pos) {
    layout.physical_of_[order[pos]] = pos;
    layout.logical_of_[pos] = order[pos];
  }
  layout.identity_ = true;
  for (qubit_t q = 0; q < n; ++q)
    if (layout.physical_of_[q] != q) layout.identity_ = false;
  return layout;
}

QubitLayout QubitLayout::from_mapping(
    const std::vector<qubit_t>& physical_of) {
  const auto n = static_cast<qubit_t>(physical_of.size());
  MEMQ_CHECK(n >= 1, "empty layout mapping");
  QubitLayout layout(n);
  std::vector<bool> seen(n, false);
  for (qubit_t q = 0; q < n; ++q) {
    const qubit_t p = physical_of[q];
    MEMQ_CHECK(p < n && !seen[p], "layout mapping is not a permutation");
    seen[p] = true;
    layout.physical_of_[q] = p;
    layout.logical_of_[p] = q;
    if (p != q) layout.identity_ = false;
  }
  return layout;
}

circuit::Circuit QubitLayout::map_circuit(
    const circuit::Circuit& circuit) const {
  MEMQ_CHECK(circuit.n_qubits() == n_qubits(), "layout width mismatch");
  if (identity_) return circuit;
  circuit::Circuit mapped(n_qubits());
  for (circuit::Gate g : circuit.gates()) {
    for (qubit_t& t : g.targets) t = physical_of_[t];
    for (qubit_t& c : g.controls) c = physical_of_[c];
    mapped.append(std::move(g));
  }
  return mapped;
}

index_t QubitLayout::to_physical(index_t logical_index) const {
  if (identity_) return logical_index;
  index_t out = 0;
  for (qubit_t q = 0; q < n_qubits(); ++q)
    if (bits::test(logical_index, q)) out = bits::set(out, physical_of_[q]);
  return out;
}

circuit::Circuit elide_swaps(const circuit::Circuit& circuit,
                             QubitLayout& layout) {
  const qubit_t n = circuit.n_qubits();
  MEMQ_CHECK(layout.n_qubits() == n, "layout width mismatch");
  // pos[q] = physical position where the data of declared wire q lives.
  std::vector<qubit_t> pos(n);
  std::iota(pos.begin(), pos.end(), 0);
  circuit::Circuit out(n);
  bool any = false;
  for (circuit::Gate g : circuit.gates()) {
    if (g.kind == circuit::GateKind::kSwap && g.controls.empty()) {
      std::swap(pos[g.targets[0]], pos[g.targets[1]]);
      any = true;
      continue;
    }
    for (qubit_t& t : g.targets) t = pos[t];
    for (qubit_t& c : g.controls) c = pos[c];
    out.append(std::move(g));
  }
  if (any) {
    std::vector<qubit_t> physical_of(n);
    for (qubit_t l = 0; l < n; ++l) physical_of[l] = pos[layout.physical(l)];
    layout = QubitLayout::from_mapping(physical_of);
  }
  return out;
}

index_t QubitLayout::to_logical(index_t physical_index) const {
  if (identity_) return physical_index;
  index_t out = 0;
  for (qubit_t q = 0; q < n_qubits(); ++q)
    if (bits::test(physical_index, q)) out = bits::set(out, logical_of_[q]);
  return out;
}

}  // namespace memq::core
