// The storage plane of the compressed engines: one object owning the
// ChunkStore, the write-back ChunkCache, and the CodecPool wiring, so that
// every chunk access — timed or untimed, cached or direct, serial or
// pooled — flows through a single API. Engines never touch the store, the
// cache, or the pool directly; they hold leases.
//
//   * acquire_read / acquire_write / acquire_write_pair + release —
//     single-chunk (or pair) access with the historical timing model:
//     decompress/recompress seconds land in the phase breakdown and the
//     modeled clock is charged dt / cpu_codec_workers (serial) or through
//     the cache's measured timings.
//   * open_read(jobs)  — ordered bulk sweep (decode-ahead window).
//   * open_stage(jobs) — the online-stage read-modify-write stream with the
//     split reader-window / writer-backlog bound.
//   * collapse / ingest_dense / export_dense / permute / checkpoint —
//     the remaining whole-state operations, each encapsulating its
//     cache-coherence rules (drop-before-zero, invalidate-before-restore,
//     flush-before-save).
//
// Lease exclusivity: at most one live lease per chunk (pairs claim both
// chunks). A second acquire of a leased chunk throws InvalidArgument —
// concurrent same-chunk access was never legal; now it is checked.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/metrics.hpp"
#include "core/chunk_cache.hpp"
#include "core/chunk_store.hpp"
#include "core/codec_pool.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"

namespace memq::circuit {
struct Gate;
}  // namespace memq::circuit

namespace memq::core {

class StatePager {
 public:
  /// `telemetry` and the config outlive the pager (the owning engine holds
  /// both); `charge_cpu` forwards modeled seconds to the engine's timeline.
  StatePager(qubit_t n_qubits, const EngineConfig& config,
             EngineTelemetry& telemetry,
             std::function<void(double)> charge_cpu);
  ~StatePager();

  StatePager(const StatePager&) = delete;
  StatePager& operator=(const StatePager&) = delete;

  // ---- geometry / queries -----------------------------------------------
  qubit_t n_qubits() const noexcept { return store_.n_qubits(); }
  qubit_t chunk_qubits() const noexcept { return store_.chunk_qubits(); }
  index_t n_chunks() const noexcept { return store_.n_chunks(); }
  index_t chunk_amps() const noexcept { return store_.chunk_amps(); }
  std::uint64_t compressed_bytes() const noexcept {
    return store_.compressed_bytes();
  }
  const ChunkStore& store() const noexcept { return store_; }
  /// Resolved codec worker count (1 in serial mode).
  std::size_t codec_workers() const noexcept {
    return codec_pool_ ? codec_pool_->workers() : 1;
  }
  bool cache_enabled() const noexcept { return cache_ != nullptr; }

  /// Cache-aware zero query: a dirty cached chunk must never be skipped as
  /// zero from its (stale) blob.
  bool is_zero(index_t i) const {
    return cache_ ? cache_->is_zero(i) : store_.is_zero_chunk(i);
  }
  /// Cache-aware fill query: true when chunk `i` materializes as a fill
  /// (zero or constant tag) — same dirty/pending conservatism as is_zero().
  /// Engines use it to skip modeled H2D transfer for constant chunks.
  bool is_constant(index_t i) const {
    return cache_ ? cache_->is_constant(i) : store_.is_constant_chunk(i);
  }
  /// Jobs for every non-zero chunk, in chunk order.
  std::vector<ChunkJob> nonzero_jobs() const;

  // ---- leases -----------------------------------------------------------
  class Lease {
   public:
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&&) noexcept = default;
    /// The decompressed amplitudes: one chunk, or [a | b] for a pair.
    std::span<amp_t> amps() noexcept { return buf_; }
    std::span<const amp_t> amps() const noexcept { return buf_; }
    const ChunkJob& job() const noexcept { return job_; }
    index_t chunk() const noexcept { return job_.a; }

   private:
    friend class StatePager;
    Lease() = default;
    ChunkJob job_{};
    std::vector<amp_t> buf_;
    bool writable_ = false;
    bool tracked_ = false;  ///< claimed in the exclusivity set
  };

  /// Timed single-chunk loads. Exclusive: a second lease on a live chunk
  /// throws InvalidArgument. Release every lease (release() or the stream's
  /// release) before the next whole-state operation.
  Lease acquire_read(index_t i);
  Lease acquire_write(index_t i);
  /// Co-loads chunks `lo` and `hi` into one buffer ([lo | hi]).
  Lease acquire_write_pair(index_t lo, index_t hi);

  /// Ends the lease; with `modified`, stores the buffer back (timed).
  void release(Lease lease, bool modified);

  /// Untimed read of chunk `i` (historical amplitude()/sample-tail path:
  /// no phase seconds, no modeled charge — the loads counter still ticks).
  void peek(index_t i, std::span<amp_t> out);

  // ---- bulk sweeps ------------------------------------------------------
  /// One ordered pass over `jobs`: decompression fans out across the codec
  /// pool (bounded decode-ahead) while `fn` consumes every chunk on the
  /// calling thread in job order, so reductions are deterministic for any
  /// codec_threads. With `timed`, decompress seconds land in telemetry and
  /// the modeled clock is charged (measured parallel wait in pool mode,
  /// dt / cpu_codec_workers in serial mode).
  /// `window_base`/`window_count` scope the sweep's plan guard to a chunk
  /// window (batch-member queries): slots outside it carry no scheduled
  /// next use, so sibling members' residents evict first. 0/0 = whole store.
  void sweep(std::vector<ChunkJob> jobs,
             const std::function<void(const ChunkJob&, std::span<amp_t>)>& fn,
             bool timed = false, index_t window_base = 0,
             index_t window_count = 0);

  /// Incremental read-only stream over `jobs` (the sweep, inverted for
  /// callers that interleave other work — the sample-counts CDF walk).
  /// Untimed like the historical pass-2: cache timings are harvested on
  /// destruction; plain-reader decode seconds are discarded.
  class ReadStream {
   public:
    ReadStream(ReadStream&&) noexcept;
    ~ReadStream();
    std::optional<Lease> next();
    void recycle(Lease lease);

   private:
    friend class StatePager;
    struct Impl;
    explicit ReadStream(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
  };
  ReadStream open_read(std::vector<ChunkJob> jobs, index_t window_base = 0,
                       index_t window_count = 0);

  /// The online-stage read-modify-write stream: leases come out in job
  /// order with the split decode-ahead window; release() routes modified
  /// buffers back through the bounded writer. finish() drains the writer,
  /// settles all timing accounts, and refreshes footprint telemetry.
  class StageStream {
   public:
    StageStream(StageStream&&) noexcept;
    ~StageStream();
    std::optional<Lease> next();
    void release(Lease lease, bool modified);
    void finish();

   private:
    friend class StatePager;
    struct Impl;
    explicit StageStream(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
  };
  StageStream open_stage(std::vector<ChunkJob> jobs);

  // ---- whole-state operations -------------------------------------------
  /// Measurement pass 2: overwrites `zero_jobs` chunks with zeros (bypassing
  /// the cache so the zero-chunk fast path survives) and rewrites
  /// `scale_jobs` chunks through `fn`. Timed like the historical path.
  void collapse(const std::vector<ChunkJob>& zero_jobs,
                std::vector<ChunkJob> scale_jobs,
                const std::function<void(const ChunkJob&, std::span<amp_t>)>& fn);

  /// Replaces the whole state from a dense amplitude vector (physical chunk
  /// order). Invalidate-then-store: the cache never shadows the new state.
  void ingest_dense(std::span<const amp_t> amplitudes);

  /// Decompresses the whole state into `amps` in physical chunk order
  /// (2^n amplitudes). Untimed, parallel across the pool when cache-less.
  void export_dense(std::span<amp_t> amps);

  /// Compressed-form chunk permutation (blob pointers move; the cache
  /// follows its blobs). Untimed — callers own the "permute" phase timer.
  /// With a window, the permutation's chunk-bit arithmetic runs on
  /// window-local indices and only slots in [base, base + count) move —
  /// the batch scheduler permutes one member's span without disturbing
  /// siblings. 0/0 = whole store (historical behavior).
  void permute(const circuit::Gate& gate, index_t window_base = 0,
               index_t window_count = 0);

  /// Batch fan-out: replaces chunks [dst_base, dst_base + count) with
  /// blob-level copies of [src_base, src_base + count) — one read of each
  /// source blob serves the member copy with NO codec pass (over a dedup
  /// backend the copies refcount-share the source's physical slots until a
  /// divergent write CoW-splits them). Flushes dirty cache residents first
  /// so the source blobs are authoritative, and drops destination residents
  /// so the cache never shadows the cloned state. Both windows must be
  /// lease-free and disjoint.
  void fanout(index_t src_base, index_t dst_base, index_t count);

  /// Resets to |0...0> and clears all pipeline state (not the telemetry —
  /// the engine owns that).
  void reset();

  // ---- cache plan forwarding (no-ops when the cache is off) -------------
  void set_plan(std::vector<StageAccess> plan);
  void begin_stage(std::size_t stage_index);
  void clear_plan();

  // ---- checkpointing ----------------------------------------------------
  /// Flushes dirty cache residents, then writes the store checkpoint.
  void checkpoint_to(std::ostream& out);
  /// Invalidates the cache and restores the store checkpoint.
  void restore_from(std::istream& in);

  // ---- telemetry --------------------------------------------------------
  /// Drains codec seconds accumulated inside the cache (miss decodes,
  /// write-back encodes) into the phase breakdown and the modeled clock.
  void harvest_cache_timings();
  /// Publishes footprint / counter / spill telemetry into the engine's
  /// EngineTelemetry.
  void refresh_telemetry();

 private:
  Lease acquire(ChunkJob job, bool writable);
  void claim(const ChunkJob& job);
  void unclaim(const ChunkJob& job);
  void load_timed(index_t i, std::span<amp_t> out);
  void store_timed(index_t i, std::span<const amp_t> in);
  ChunkCache* cache() noexcept { return cache_.get(); }
  CodecPool* codec_pool() noexcept { return codec_pool_.get(); }
  /// Decode-ahead window for read-only sweeps (<= workers + 1 buffers
  /// resident).
  std::size_t reader_window() const noexcept {
    return codec_workers() > 1 ? codec_workers() : 0;
  }
  /// Reader-window / writer-backlog split for read-modify-write loops,
  /// sized so window + writer-resident <= codec_threads and a device stage
  /// of pipeline depth D keeps <= D + codec_threads items in flight.
  std::size_t split_reader_window() const noexcept;
  std::size_t split_writer_backlog() const noexcept;

  const EngineConfig& config_;
  EngineTelemetry& telemetry_;
  std::function<void(double)> charge_cpu_;

  ChunkStore store_;
  std::unique_ptr<CodecPool> codec_pool_;
  BufferPool buffers_;
  InFlightLedger inflight_;
  /// Declared after the pool/buffers/ledger it borrows so destruction
  /// order is safe.
  std::unique_ptr<ChunkCache> cache_;

  std::unordered_set<index_t> leased_;

  /// Wall-clock lease-acquire latency (claim + buffer + timed loads),
  /// recorded only while metrics timing is armed.
  metrics::Histogram& lease_wait_ns_;
};

}  // namespace memq::core
