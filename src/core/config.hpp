// MEMQSim engine configuration (the paper's tuning axes).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "compress/chunk_codec.hpp"
#include "device/copy_engine.hpp"
#include "device/device.hpp"

namespace memq::core {

/// How a batch's K member circuits are derived from the CLI input
/// (core/batch_scheduler.hpp expands them; --batch-mode selects).
enum class BatchMode : std::uint8_t {
  kCircuits,      ///< K distinct caller-supplied circuits
  kShots,         ///< one circuit, K repeated-shot sampling members
  kSweep,         ///< one circuit, K rotation-parameter variants
  kTrajectories,  ///< one circuit, K seeded noise trajectories
};

/// Where compressed chunk blobs live (core/blob_store.hpp).
enum class StoreBackend : std::uint8_t {
  kRam,   ///< everything in host RAM (historical behavior, default)
  kFile,  ///< spill past host_blob_budget_bytes to an unlinked temp file
};

struct EngineConfig {
  /// log2 of amplitudes per chunk — the compression granularity of
  /// challenge (2). 2^16 amps = 1 MiB raw per chunk.
  qubit_t chunk_qubits = 16;

  /// Compression codec + error bound (offline stage).
  compress::ChunkCodecConfig codec;

  /// Simulated accelerator parameters (applies to every device).
  device::DeviceConfig device;

  /// Number of accelerators to shard work across (the paper's outlook of
  /// plugging into multi-GPU backends like SV-Sim). Chunks stream to
  /// devices round-robin from host memory; device timelines run in
  /// parallel against one host clock.
  std::uint32_t device_count = 1;

  /// Transfer strategy for chunk upload/download (Table 1's subject).
  /// StagedBuffer is the paper's winner and our default.
  device::TransferStrategy strategy = device::TransferStrategy::kStagedBuffer;

  /// Device-side chunk slots (2 = double buffering so H2D(k+1) overlaps
  /// kernel(k), as in paper Figure 1).
  std::uint32_t device_slots = 2;

  /// Overlap CPU (de)compression with device work. Off = fully serialized
  /// phases (the ablation arm of experiment E3).
  bool pipelined = true;

  /// Fraction of chunks updated by "idle CPU cores" instead of the device
  /// (paper step 5). 0 disables CPU co-execution.
  double cpu_offload_fraction = 0.0;

  /// Real codec worker threads for the online stage. 1 = serial (the
  /// historical single-threaded path), 0 = hardware_concurrency, N > 1 =
  /// fan (de)compression out across N threads with a bounded in-flight
  /// window of decompressed chunks (paper §2 step 5: "the CPU leverages
  /// idle cores to decompress the data chunks"). Results are bit-identical
  /// across thread counts; only wall time and the charged-time model
  /// change.
  std::uint32_t codec_threads = 1;

  /// Byte budget for the write-back cache of decompressed chunks that sits
  /// between the engines and the compressed store (core/chunk_cache.hpp).
  /// 0 = off (the historical path: every touched chunk pays a decode +
  /// encode round trip per stage). With a budget, hot chunks are served
  /// decompressed and dirty chunks encode only on eviction/flush; eviction
  /// is Belady (farthest next use from the offline stage plan) with an LRU
  /// fallback. Resident bytes are charged to the in-flight ledger, so the
  /// footprint telemetry includes the cache. Note: with a lossy codec,
  /// cache hits skip lossy round trips, so results can differ from (be at
  /// least as accurate as) budget 0; bit-identical only with the Null
  /// codec.
  std::uint64_t cache_budget_bytes = 0;

  /// Persistence backend for the compressed blobs. kRam is byte-for-byte
  /// the historical path; kFile keeps at most host_blob_budget_bytes of
  /// compressed data resident (hard cap) and spills the rest to an unlinked
  /// temporary file — states whose *compressed* form exceeds host RAM stay
  /// simulable, at the price of spill I/O (counted in telemetry).
  StoreBackend store_backend = StoreBackend::kRam;

  /// Resident-compressed-bytes budget for StoreBackend::kFile (ignored for
  /// kRam). 0 keeps nothing resident: every blob access goes to the file.
  std::uint64_t host_blob_budget_bytes = 0;

  /// Content-hashed chunk deduplication (core/blob_store.hpp's
  /// DedupBlobStore): byte-identical compressed blobs share one physical
  /// copy (in RAM and in the spill file) under refcounts, with copy-on-
  /// write on divergent overwrite. Amplitudes are bit-identical with dedup
  /// on or off — only the physical footprint, spill traffic, and the dedup
  /// telemetry counters change. Default on; --dedup off restores the
  /// one-blob-per-chunk layout.
  bool dedup = true;

  /// CPU-side parallelism *model* used when codec_threads == 1: codec and
  /// CPU-apply work is measured on the host but charged to the modeled
  /// timeline as measured_seconds / cpu_codec_workers, simulating a
  /// multi-core CPU. Set to 1 to charge raw single-core time. With
  /// codec_threads > 1 the engines stop using this divisor for codec work
  /// and instead charge the coordinator's measured parallel wall time
  /// (real overlap, no accounting fiction).
  double cpu_codec_workers = 8.0;

  /// Offline optimization: merge adjacent uncontrolled 1q gates into single
  /// fused unitaries before partitioning (fewer kernels per stage; see
  /// bench_fusion for the ablation).
  bool fuse_single_qubit_runs = false;

  /// Offline optimization: remap logical qubits so the hottest non-diagonal
  /// targets live in the chunk-local range (fewer pair stages; see
  /// bench_layout). Decided from the first circuit run on a fresh state;
  /// queries and samples are translated back transparently.
  bool optimize_layout = false;

  /// Offline optimization: elide uncontrolled SWAP gates by renaming wires
  /// instead of moving amplitudes, folding the permutation into the qubit
  /// layout (kills e.g. the QFT bit-reversal tail). MemQSim engine only;
  /// the Wu engine stays faithful to the paper's gate-by-gate schedule.
  bool elide_swaps = false;

  /// Offline optimization: locality-aware plan optimizer (core/plan_opt.hpp)
  /// — gate-DAG re-scheduling + stage fusion co-designed with the Belady
  /// cache plan. Gates are reordered only along provably-commuting DAG
  /// edges, so amplitudes match the as-written circuit up to floating-point
  /// reassociation. Off reproduces the legacy one-shot greedy partition
  /// byte-for-byte (test-enforced).
  bool plan_opt = true;

  /// PRNG seed for measurement sampling.
  std::uint64_t seed = 20231112;

  /// Batched throughput mode (--batch K): number of independent member
  /// circuits executed together by core/batch_scheduler.hpp. 1 = batching
  /// off (the plain run() path). The scheduler widens one MemQSim engine
  /// over ceil(log2(K)) member-index qubits and executes shared stage
  /// prefixes once per decompressed chunk, fanning the state out to member
  /// windows only where their plans diverge.
  std::uint32_t batch_size = 1;

  /// How the K members are derived (--batch-mode). Ignored when
  /// batch_size == 1.
  BatchMode batch_mode = BatchMode::kShots;
};

}  // namespace memq::core
