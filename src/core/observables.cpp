#include "core/observables.hpp"

#include "common/error.hpp"

namespace memq::core {

PauliSum PauliSum::tfim_chain(qubit_t n, double j_coupling, double field) {
  MEMQ_CHECK(n >= 2, "TFIM chain needs at least two sites");
  PauliSum h;
  for (qubit_t q = 0; q + 1 < n; ++q) {
    std::string ops(n, 'I');
    ops[q] = 'Z';
    ops[q + 1] = 'Z';
    h.terms.push_back({-j_coupling, std::move(ops)});
  }
  for (qubit_t q = 0; q < n; ++q) {
    std::string ops(n, 'I');
    ops[q] = 'X';
    h.terms.push_back({-field, std::move(ops)});
  }
  return h;
}

PauliSum PauliSum::maxcut(
    qubit_t n, const std::vector<std::pair<qubit_t, qubit_t>>& edges) {
  PauliSum h;
  // sum (1 - ZZ)/2 = |E|/2 * I - 1/2 sum ZZ.
  h.terms.push_back(
      {0.5 * static_cast<double>(edges.size()), std::string(n, 'I')});
  for (const auto& [a, b] : edges) {
    MEMQ_CHECK(a < n && b < n && a != b, "bad edge (" << a << "," << b << ")");
    std::string ops(n, 'I');
    ops[a] = 'Z';
    ops[b] = 'Z';
    h.terms.push_back({-0.5, std::move(ops)});
  }
  return h;
}

double expectation(Engine& engine, const PauliSum& hamiltonian) {
  double total = 0.0;
  for (const PauliTerm& term : hamiltonian.terms) {
    if (term.coefficient == 0.0) continue;
    total += term.coefficient * engine.expectation({term.ops});
  }
  return total;
}

}  // namespace memq::core
