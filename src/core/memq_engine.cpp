#include "core/memq_engine.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#include "circuit/transpile.hpp"
#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "common/trace.hpp"
#include "core/chunk_exec.hpp"
#include "core/plan_opt.hpp"

namespace memq::core {

using circuit::Gate;
using circuit::GateKind;

/// Absolute counter/clock values at a stage boundary; rows are differences
/// of consecutive snaps, so per-stage counters telescope to the run total.
/// Pipeline counters come from one registry snapshot (common/metrics.hpp) —
/// the same cells every other surface reads — so the stage report cannot
/// drift from the CLI summary or telemetry JSON. Modeled-device counters and
/// the seconds-type clocks live outside the registry and ride alongside.
struct MemQSimEngine::MetricsSnap {
  metrics::Snapshot regs;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t kernel_launches = 0;
  double decompress = 0.0;
  double recompress = 0.0;
  double cpu_apply = 0.0;
  double stall = 0.0;
  double modeled = 0.0;
  double device_busy = 0.0;
  double kernel_busy = 0.0;

  static StageRow delta(const MetricsSnap& from, const MetricsSnap& to,
                        std::size_t device_count) {
    StageRow r;
    const auto d = [&](const char* name) {
      return to.regs.counter_delta(from.regs, name);
    };
    r.chunk_loads = d("store.chunk_loads");
    r.chunk_stores = d("store.chunk_stores");
    r.codec_decode_bytes = d("codec.decode_bytes");
    r.codec_encode_bytes = d("codec.encode_bytes");
    r.cache_hits = d("cache.hits");
    r.cache_misses = d("cache.misses");
    r.cache_evictions = d("cache.evictions");
    r.cache_writebacks = d("cache.writebacks");
    r.spill_writes = d("blob.spill_writes");
    r.spill_reads = d("blob.spill_reads");
    r.zero_chunks_skipped = d("engine.zero_chunks_skipped");
    r.h2d_bytes = to.h2d_bytes - from.h2d_bytes;
    r.d2h_bytes = to.d2h_bytes - from.d2h_bytes;
    r.kernel_launches = to.kernel_launches - from.kernel_launches;
    r.decompress_seconds = to.decompress - from.decompress;
    r.recompress_seconds = to.recompress - from.recompress;
    r.cpu_apply_seconds = to.cpu_apply - from.cpu_apply;
    r.stall_seconds = to.stall - from.stall;
    r.modeled_seconds = to.modeled - from.modeled;
    r.device_busy_seconds = to.device_busy - from.device_busy;
    r.kernel_busy_seconds = to.kernel_busy - from.kernel_busy;
    r.device_idle_seconds =
        std::max(0.0, r.modeled_seconds * static_cast<double>(device_count) -
                          r.kernel_busy_seconds);
    return r;
  }
};

MemQSimEngine::MetricsSnap MemQSimEngine::take_metrics_snap() {
  pager_.refresh_telemetry();
  collect_device_telemetry();
  telemetry_.zero_chunks_skipped = zero_skips_.value() - zero_skips_base_;
  MetricsSnap s;
  s.regs = metrics::Registry::global().snapshot();
  s.h2d_bytes = telemetry_.h2d_bytes;
  s.d2h_bytes = telemetry_.d2h_bytes;
  s.kernel_launches = telemetry_.kernel_launches;
  s.decompress = telemetry_.cpu_phases.get("decompress");
  s.recompress = telemetry_.cpu_phases.get("recompress");
  s.cpu_apply = telemetry_.cpu_phases.get("cpu_apply");
  s.stall = telemetry_.pipeline_stall_seconds;
  s.modeled = telemetry_.modeled_total_seconds;
  s.device_busy = telemetry_.device_busy_seconds;
  for (const DeviceContext& ctx : devices_)
    s.kernel_busy += ctx.compute->busy_seconds();
  return s;
}

MemQSimEngine::MemQSimEngine(qubit_t n_qubits, const EngineConfig& config)
    : CompressedEngineBase(n_qubits, config),
      clock_(std::make_shared<device::HostClock>()),
      zero_skips_(
          metrics::Registry::global().counter("engine.zero_chunks_skipped")),
      stage_ns_(metrics::Registry::global().histogram("engine.stage_ns")),
      predicted_passes_g_(
          metrics::Registry::global().gauge("plan.predicted_codec_passes")) {
  MEMQ_CHECK(config.device_slots >= 1, "need at least one device slot");
  MEMQ_CHECK(config.device_count >= 1, "need at least one device");
  const std::uint64_t pair_bytes = chunk_amps() * 2 * kAmpBytes;
  const bool staged =
      config.strategy == device::TransferStrategy::kStagedBuffer;
  const std::uint64_t per_slot = pair_bytes * (staged ? 2 : 1);
  MEMQ_CHECK(per_slot * config.device_slots <= config.device.memory_bytes,
             "device memory too small: "
                 << config.device_slots << " slots x " << per_slot
                 << " B needed, have " << config.device.memory_bytes
                 << " B — lower chunk_qubits or device_slots");

  devices_.resize(config.device_count);
  for (std::uint32_t d = 0; d < config.device_count; ++d) {
    DeviceContext& ctx = devices_[d];
    const std::string tag = "dev" + std::to_string(d);
    ctx.device = std::make_unique<device::SimDevice>(config.device, clock_);
    ctx.h2d = std::make_unique<device::Stream>(*ctx.device, tag + ":h2d");
    ctx.compute =
        std::make_unique<device::Stream>(*ctx.device, tag + ":compute");
    ctx.d2h = std::make_unique<device::Stream>(*ctx.device, tag + ":d2h");
    ctx.copy =
        std::make_unique<device::CopyEngine>(*ctx.device, config.strategy);
    ctx.slots.resize(config.device_slots);
    for (std::uint32_t s = 0; s < config.device_slots; ++s) {
      ctx.slots[s].state =
          ctx.device->alloc(pair_bytes, tag + ":slot" + std::to_string(s));
      if (staged)
        ctx.slots[s].staging =
            ctx.device->alloc(pair_bytes, tag + ":staging" + std::to_string(s));
    }
  }
  collect_device_telemetry();
}

void MemQSimEngine::reset() {
  CompressedEngineBase::reset();
  zero_skips_base_ = zero_skips_.value();
  clock_->reset();
  for (DeviceContext& ctx : devices_) {
    ctx.device->reset_stats();
    ctx.h2d->reset_clock();
    ctx.compute->reset_clock();
    ctx.d2h->reset_clock();
    for (auto& slot : ctx.slots) slot.free_at = {0.0};
    ctx.next_slot = 0;
  }
  next_device_ = 0;
  work_items_ = 0;
  plan_.reset();
  report_ = StageReport{};
}

void MemQSimEngine::charge_cpu(double seconds) { clock_->advance(seconds); }

void MemQSimEngine::run(const circuit::Circuit& circuit) {
  MEMQ_CHECK(circuit.n_qubits() == n_qubits(), "circuit width mismatch");
  WallTimer wall;
  // Layout is chosen once, from the first circuit on the fresh |0..0>
  // state (which is invariant under qubit relabeling).
  const bool fresh_layout_choice =
      config_.optimize_layout && state_is_fresh_ && layout_.is_identity();
  {
    ScopedPhase offline(telemetry_.cpu_phases, "offline_partition");
    if (fresh_layout_choice)
      layout_ = QubitLayout::optimize(circuit, chunk_qubits());
    // Swap elision runs strictly BEFORE partitioning on every path, so a
    // SWAP the layout can elide is never lowered to three CXs first.
    const auto prepare = [&] {
      circuit::Circuit mapped = layout_.map_circuit(circuit);
      if (config_.elide_swaps) mapped = elide_swaps(mapped, layout_);
      if (config_.fuse_single_qubit_runs)
        mapped = circuit::fuse_1q_runs(mapped);
      return mapped;
    };
    const PlanOptOptions opt{
        chunk_qubits(), config_.cache_budget_bytes,
        (index_t{1} << chunk_qubits()) * sizeof(amp_t), n_chunks()};
    if (config_.plan_opt) {
      plan_ = build_optimized_plan(prepare(), opt);
      // Layout/schedule co-convergence: re-rank target hotness on the
      // circuit the schedule actually executes. Heat is order-invariant,
      // so a refinement round only differs when swap elision rewired or
      // fusion merged targets; one round converges. Sound only while the
      // state is the relabeling-invariant fresh |0..0> (same condition as
      // the initial layout choice).
      if (fresh_layout_choice &&
          (config_.elide_swaps || config_.fuse_single_qubit_runs)) {
        circuit::Circuit scheduled(circuit.n_qubits());
        for (const Stage& s : plan_->stages)
          for (const Gate& g : s.gates) scheduled.append(g);
        const QubitLayout refine =
            QubitLayout::optimize(scheduled, chunk_qubits());
        if (!refine.is_identity()) {
          std::vector<qubit_t> composed(circuit.n_qubits());
          for (qubit_t l = 0; l < circuit.n_qubits(); ++l)
            composed[l] = refine.physical(layout_.physical(l));
          layout_ = QubitLayout::from_mapping(composed);
          plan_ = build_optimized_plan(prepare(), opt);
        }
      }
    } else {
      // Legacy arm: the pre-plan-opt pipeline, gate for gate. Only the
      // cost forecast (plan metadata) is new.
      plan_ = partition(prepare(), chunk_qubits());
      plan_->cost = estimate_plan_cost(*plan_, opt);
    }
  }
  charge_cpu(telemetry_.cpu_phases.get("offline_partition"));
  state_is_fresh_ = false;

  if (pager_.cache_enabled()) {
    // Hand the offline stage schedule to the cache so eviction can be
    // Belady-optimal: per stage, which slots are touched and at which sweep
    // position (pairs share the position of their low chunk).
    pager_.set_plan(plan_accesses(*plan_, chunk_qubits()));
  }

  report_ = StageReport{};
  report_.planned = plan_->cost;
  // Publish the forecast so the metrics sampler's --progress line can show
  // actual vs predicted codec passes without reaching into the engine.
  predicted_passes_g_.set(
      static_cast<std::uint64_t>(plan_->cost.codec_passes()));
  report_.plan_optimized = config_.plan_opt;
  report_.plan_gates_per_codec_pass = plan_->stats.gates_per_codec_pass();
  report_.plan_local_stages = plan_->stats.local_stages;
  report_.plan_pair_stages = plan_->stats.pair_stages;
  report_.plan_permute_stages = plan_->stats.permute_stages;
  report_.plan_measure_stages = plan_->stats.measure_stages;
  report_.rows.reserve(plan_->stages.size());
  const MetricsSnap first_snap = take_metrics_snap();
  MetricsSnap prev_snap = first_snap;

  for (std::size_t si = 0; si < plan_->stages.size(); ++si) {
    const Stage& stage = plan_->stages[si];
    pager_.begin_stage(si);
    {
      MEMQ_TRACE_SCOPE("stage", stage_kind_name(stage.kind),
                       trace::arg("stage", std::uint64_t{si}) + "," +
                           trace::arg("gates", stage.gates.size()));
      metrics::ScopedTimer stage_timer(stage_ns_);
      switch (stage.kind) {
        case StageKind::kLocal:
          ++telemetry_.stages_local;
          run_local_stage(stage);
          break;
        case StageKind::kPair:
          ++telemetry_.stages_pair;
          run_pair_stage(stage);
          break;
        case StageKind::kPermute:
          ++telemetry_.stages_permute;
          run_permute_stage(stage);
          break;
        case StageKind::kMeasure: {
          ++telemetry_.stages_measure;
          const Gate& g = stage.gates.at(0);
          const bool outcome = measure_qubit(g.targets.at(0));
          if (g.kind == GateKind::kReset && outcome) {
            const Gate fix = Gate::x(g.targets[0]);
            if (g.targets[0] >= chunk_qubits()) {
              run_permute_stage({StageKind::kPermute, {fix}, 0});
            } else {
              run_local_stage({StageKind::kLocal, {fix}, 0});
            }
          }
          break;
        }
      }
    }
    MetricsSnap now_snap = take_metrics_snap();
    StageRow row = MetricsSnap::delta(prev_snap, now_snap, devices_.size());
    row.index = si;
    row.kind = stage_kind_name(stage.kind);
    row.gates = stage.gates.size();
    report_.rows.push_back(row);
    prev_snap = now_snap;
  }

  pager_.clear_plan();  // back to LRU for post-run sweeps

  sync_devices();  // drain every device before reporting
  telemetry_.wall_seconds += wall.seconds();
  collect_device_telemetry();
  refresh_footprint_telemetry();
  const MetricsSnap last_snap = take_metrics_snap();
  report_.total = MetricsSnap::delta(first_snap, last_snap, devices_.size());
  report_.total.kind = "total";
  report_.total.gates = circuit.size();
  for (const auto& [name, hist] : last_snap.regs.histograms) {
    metrics::HistogramSnapshot h = hist;
    const auto it = first_snap.regs.histograms.find(name);
    if (it != first_snap.regs.histograms.end()) h = h.minus(it->second);
    if (h.count == 0) continue;  // timing disarmed or site never hit
    StageReport::LatencySummary& l = report_.latency[name];
    l.count = h.count;
    l.p50_ns = h.percentile(0.50);
    l.p95_ns = h.percentile(0.95);
    l.p99_ns = h.percentile(0.99);
    l.max_ns = h.max;
    l.mean_ns = static_cast<double>(h.sum) / static_cast<double>(h.count);
  }
}

StagePlan MemQSimEngine::plan_for(const circuit::Circuit& circuit) {
  MEMQ_CHECK(circuit.n_qubits() >= chunk_qubits() &&
                 circuit.n_qubits() <= n_qubits(),
             "member circuit width " << circuit.n_qubits()
                                     << " out of range for a "
                                     << n_qubits() << "-qubit batch engine");
  MEMQ_CHECK(!config_.optimize_layout && !config_.elide_swaps,
             "batch planning requires the identity layout "
             "(disable optimize_layout / elide_swaps)");
  // Mirrors run()'s prepare(): with the identity layout and swap elision
  // off, the only transform left is 1q-run fusion — so a serial engine with
  // the same config schedules this exact stage sequence.
  circuit::Circuit mapped = circuit;
  if (config_.fuse_single_qubit_runs) mapped = circuit::fuse_1q_runs(mapped);
  const index_t span = index_t{1} << (circuit.n_qubits() - chunk_qubits());
  const PlanOptOptions opt{chunk_qubits(), config_.cache_budget_bytes,
                           (index_t{1} << chunk_qubits()) * sizeof(amp_t),
                           span};
  if (config_.plan_opt) return build_optimized_plan(mapped, opt);
  StagePlan plan = partition(mapped, chunk_qubits());
  plan.cost = estimate_plan_cost(plan, opt);
  return plan;
}

void MemQSimEngine::run_stage_window(const Stage& stage, index_t base,
                                     index_t span, std::size_t access_index) {
  state_is_fresh_ = false;
  pager_.begin_stage(access_index);
  metrics::ScopedTimer stage_timer(stage_ns_);
  switch (stage.kind) {
    case StageKind::kLocal:
      ++telemetry_.stages_local;
      run_local_stage(stage, base, span);
      break;
    case StageKind::kPair:
      ++telemetry_.stages_pair;
      run_pair_stage(stage, base, span);
      break;
    case StageKind::kPermute:
      ++telemetry_.stages_permute;
      run_permute_stage(stage, base, span);
      break;
    case StageKind::kMeasure:
      MEMQ_THROW(InvalidArgument,
                 "measure stages are not batchable (the scheduler rejects "
                 "measure/reset circuits up front)");
  }
}

void MemQSimEngine::sync_devices() {
  for (DeviceContext& ctx : devices_) {
    ctx.device->sync_host(*ctx.d2h);
    ctx.device->sync_host(*ctx.compute);
  }
}

void MemQSimEngine::run_permute_stage(const Stage& stage, index_t base,
                                      index_t span) {
  // Compressed-form permutation: only blob pointers move.
  WallTimer t;
  pager_.permute(stage.gates.at(0), base, span);
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("permute", dt);
  charge_cpu(dt / config_.cpu_codec_workers);
}

bool MemQSimEngine::cpu_apply(std::span<amp_t> buf, const Stage& stage,
                              index_t chunk_lo) {
  WallTimer t;
  bool modified = false;
  for (const Gate& g : stage.gates) {
    if (stage.kind == StageKind::kPair)
      modified |= apply_gate_to_pair(buf, chunk_lo, chunk_qubits(),
                                     stage.pair_qubit, g);
    else
      modified |= apply_gate_to_chunk(buf, chunk_lo, chunk_qubits(), g);
  }
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("cpu_apply", dt);
  charge_cpu(dt / config_.cpu_codec_workers);
  return modified;
}

std::pair<bool, device::Event> MemQSimEngine::device_round_trip(
    std::span<amp_t> host_buf, const Stage& stage, index_t chunk_lo,
    bool constant_src) {
  DeviceContext& ctx = devices_[next_device_];
  next_device_ = (next_device_ + 1) % devices_.size();
  Slot& slot = ctx.slots[ctx.next_slot];
  ctx.next_slot = (ctx.next_slot + 1) % ctx.slots.size();

  // The slot must be free: its previous occupant's download must have
  // completed before we overwrite the device buffer.
  ctx.h2d->wait(slot.free_at);

  if (constant_src) {
    // The source chunk(s) are a constant tag: the device materializes the
    // fill itself instead of pulling the full amplitudes over the modeled
    // PCIe link. Charged as a data-movement kernel on the compute stream;
    // no h2d bytes or copy calls are counted. (The real memcpy still runs —
    // the simulated device computes real results.)
    amp_t* dst = slot.state.view<amp_t>().data();
    const amp_t* src = host_buf.data();
    const std::size_t n = host_buf.size();
    ctx.compute->wait(ctx.h2d->record());  // slot-reuse ordering
    ctx.compute->launch(
        "const_fill", n,
        [dst, src, n] { std::memcpy(dst, src, n * sizeof(amp_t)); },
        ctx.device->config().scatter_kernel_throughput);
  } else {
    ctx.copy->upload(*ctx.h2d, slot.state, {host_buf.data(), host_buf.size()},
                     {}, slot.staging.valid() ? &slot.staging : nullptr);
    ctx.compute->wait(ctx.h2d->record());
  }

  // Launch one kernel per gate (paper step 3), operating in device memory.
  bool modified = false;
  auto dev_amps = slot.state.view<amp_t>().first(host_buf.size());
  const qubit_t c = chunk_qubits();
  for (const Gate& g : stage.gates) {
    bool* modified_ptr = &modified;
    ctx.compute->launch(
        g.base_name(), host_buf.size(),
        [&, modified_ptr] {
          if (stage.kind == StageKind::kPair)
            *modified_ptr |=
                apply_gate_to_pair(dev_amps, chunk_lo, c, stage.pair_qubit, g);
          else
            *modified_ptr |= apply_gate_to_chunk(dev_amps, chunk_lo, c, g);
        });
  }
  ctx.d2h->wait(ctx.compute->record());

  ctx.copy->download(*ctx.d2h, host_buf, slot.state, {},
                     slot.staging.valid() ? &slot.staging : nullptr);
  const device::Event done = ctx.d2h->record();
  slot.free_at = done;
  return {modified, done};
}

namespace {

/// Round-robin CPU-offload selector (paper step 5).
struct OffloadPicker {
  double fraction;
  double accum = 0.0;
  bool pick() {
    if (fraction <= 0.0) return false;
    accum += fraction;
    if (accum >= 1.0) {
      accum -= 1.0;
      return true;
    }
    return false;
  }
};

}  // namespace

void MemQSimEngine::run_stream_stage(const Stage& stage,
                                     std::vector<ChunkJob> jobs,
                                     index_t base) {
  struct InFlight {
    StatePager::Lease lease;
    device::Event done;
    bool modified;
  };
  std::deque<InFlight> in_flight;
  OffloadPicker offload{config_.cpu_offload_fraction};

  // The stage stream owns the split decode-ahead window / writer backlog
  // (reader window + writer-resident buffers <= codec_threads work items);
  // together with the device deque the stage keeps <= pipeline_depth +
  // codec_threads decompressed items in flight. All codec timing — serial
  // per-item charges, pool-mode coordinator waits, cache timings — is
  // settled by the stream itself.
  StatePager::StageStream io = pager_.open_stage(std::move(jobs));

  const auto complete_front = [&] {
    InFlight item = std::move(in_flight.front());
    in_flight.pop_front();
    clock_->sync_until(item.done.time);
    io.release(std::move(item.lease), item.modified);
  };

  while (auto lease = io.next()) {
    ++work_items_;
    // Kernels index chunks member-locally: a batch member's window behaves
    // bit-identically to a standalone state (base = 0 on the serial path).
    const index_t chunk_lo = lease->chunk() - base;

    if (offload.pick()) {
      // Step (5): this work item is updated by idle CPU cores.
      const bool modified = cpu_apply(lease->amps(), stage, chunk_lo);
      io.release(std::move(*lease), modified);
      continue;
    }

    // Constant-tagged chunks skip the modeled H2D transfer (the device
    // fills them from the ~16-byte tag). Gated on config.dedup so --dedup
    // off reproduces the historical transfer model exactly.
    const ChunkJob& job = lease->job();
    const bool constant_src =
        config_.dedup && pager_.is_constant(job.a) &&
        (!job.has_b || pager_.is_constant(job.b));

    const auto [modified, done] =
        device_round_trip(lease->amps(), stage, chunk_lo, constant_src);
    in_flight.push_back({std::move(*lease), done, modified});

    if (!config_.pipelined) {
      complete_front();  // serialize every phase
    } else if (in_flight.size() >= pipeline_depth()) {
      complete_front();  // bounded pipeline depth
    }
  }
  while (!in_flight.empty()) complete_front();
  io.finish();
}

void MemQSimEngine::run_local_stage(const Stage& stage, index_t base,
                                    index_t span) {
  const index_t count = span != 0 ? span : n_chunks();
  std::vector<ChunkJob> jobs;
  for (index_t li = 0; li < count; ++li) {
    const index_t ci = base + li;
    if (chunk_is_zero(ci)) {
      zero_skips_.add();
      continue;  // unitary gates keep the zero subspace zero
    }
    jobs.push_back({ci, 0, false});
  }
  run_stream_stage(stage, std::move(jobs), base);
}

void MemQSimEngine::run_pair_stage(const Stage& stage, index_t base,
                                   index_t span) {
  const index_t count = span != 0 ? span : n_chunks();
  const qubit_t pair_bit = stage.pair_qubit - chunk_qubits();
  std::vector<ChunkJob> jobs;
  // Pairing runs on member-local indices: the pair bit is a bit of the
  // member's own chunk address, never of the member-index qubits above it.
  for (index_t li = 0; li < count; ++li) {
    if (bits::test(li, pair_bit)) continue;
    const index_t ci = base + li;
    const index_t cj = base + bits::set(li, pair_bit);
    if (chunk_is_zero(ci) && chunk_is_zero(cj)) {
      zero_skips_.add();
      continue;
    }
    jobs.push_back({ci, cj, true});
  }
  run_stream_stage(stage, std::move(jobs), base);
}

void MemQSimEngine::collect_device_telemetry() {
  telemetry_.h2d_bytes = 0;
  telemetry_.d2h_bytes = 0;
  telemetry_.h2d_calls = 0;
  telemetry_.d2h_calls = 0;
  telemetry_.kernel_launches = 0;
  telemetry_.peak_device_bytes = 0;
  telemetry_.device_busy_seconds = 0.0;
  for (const DeviceContext& ctx : devices_) {
    const auto& st = ctx.device->stats();
    telemetry_.h2d_bytes += st.h2d_bytes;
    telemetry_.d2h_bytes += st.d2h_bytes;
    telemetry_.h2d_calls += st.h2d_calls;
    telemetry_.d2h_calls += st.d2h_calls;
    telemetry_.kernel_launches += st.kernel_launches;
    telemetry_.peak_device_bytes += st.peak_bytes;
    telemetry_.device_busy_seconds += ctx.h2d->busy_seconds() +
                                      ctx.compute->busy_seconds() +
                                      ctx.d2h->busy_seconds();
  }
  telemetry_.modeled_total_seconds = clock_->now();
}

}  // namespace memq::core
