#include "core/partitioner.hpp"



#include "common/error.hpp"
#include "core/chunk_exec.hpp"

namespace memq::core {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

qubit_t pair_high_target(const Gate& g, qubit_t c) {
  qubit_t q = 0;
  int count = 0;
  for (const qubit_t t : g.targets)
    if (t >= c) {
      q = t;
      ++count;
    }
  MEMQ_CHECK(count == 1, "gate " << g.to_string() << " has " << count
                                 << " high targets after lowering");
  return q;
}

bool is_pure_permute(const Gate& g, qubit_t c) {
  if (g.kind == GateKind::kX) {
    if (g.targets[0] < c) return false;
    for (const qubit_t ctrl : g.controls)
      if (ctrl < c) return false;
    return true;
  }
  if (g.kind == GateKind::kSwap) {
    if (g.targets[0] < c || g.targets[1] < c) return false;
    for (const qubit_t ctrl : g.controls)
      if (ctrl < c) return false;
    return true;
  }
  return false;
}

namespace {

class Builder {
 public:
  explicit Builder(qubit_t c) : c_(c) {}

  void add(const Gate& g) {
    if (g.is_barrier()) return;
    if (g.is_nonunitary()) {
      flush();
      plan_.stages.push_back({StageKind::kMeasure, {g}, 0});
      ++plan_.stats.measure_stages;
      return;
    }
    if (is_pure_permute(g, c_)) {
      flush();
      plan_.stages.push_back({StageKind::kPermute, {g}, 0});
      ++plan_.stats.permute_stages;
      return;
    }
    if (g.kind == GateKind::kSwap &&
        (g.targets[0] >= c_ || g.targets[1] >= c_)) {
      // Mixed-locality (or locally-controlled) swap: lower to three CXs,
      // each of which the cases below can place.
      const qubit_t a = g.targets[0], b = g.targets[1];
      Gate cx_ab{GateKind::kX, {b}, g.controls, {}};
      cx_ab.controls.push_back(a);
      Gate cx_ba{GateKind::kX, {a}, g.controls, {}};
      cx_ba.controls.push_back(b);
      add(cx_ab);
      add(cx_ba);
      add(cx_ab);
      return;
    }
    if (is_chunk_local(g, c_)) {
      if (!has_current_) open(StageKind::kLocal, 0);
      current_.gates.push_back(g);
      return;
    }
    // Pair gate.
    const qubit_t q = pair_high_target(g, c_);
    if (has_current_ && current_.kind == StageKind::kPair &&
        current_.pair_qubit == q) {
      current_.gates.push_back(g);
    } else if (has_current_ && current_.kind == StageKind::kLocal) {
      // Absorb the pending local run into this pair stage: those gates run
      // on the pair buffers, saving one decompress cycle.
      current_.kind = StageKind::kPair;
      current_.pair_qubit = q;
      current_.gates.push_back(g);
    } else {
      flush();
      open(StageKind::kPair, q);
      current_.gates.push_back(g);
    }
  }

  StagePlan finish() {
    flush();
    return std::move(plan_);
  }

 private:
  void open(StageKind kind, qubit_t pair_qubit) {
    current_.kind = kind;
    current_.pair_qubit = pair_qubit;
    current_.gates.clear();
    has_current_ = true;
  }

  void flush() {
    if (!has_current_) return;
    if (current_.kind == StageKind::kLocal) {
      ++plan_.stats.local_stages;
      plan_.stats.gates_in_local += current_.gates.size();
    } else {
      ++plan_.stats.pair_stages;
      plan_.stats.gates_in_pair += current_.gates.size();
    }
    plan_.stages.push_back(std::move(current_));
    current_ = Stage{};
    has_current_ = false;
  }

  qubit_t c_;
  StagePlan plan_;
  Stage current_;
  bool has_current_ = false;
};

}  // namespace

double PartitionStats::gates_per_codec_pass() const {
  const double passes =
      static_cast<double>(local_stages) + 2.0 * static_cast<double>(pair_stages);
  if (passes == 0.0) return 0.0;
  return static_cast<double>(gates_in_local + gates_in_pair) / passes;
}

StagePlan partition(const Circuit& circuit, qubit_t chunk_qubits) {
  MEMQ_CHECK(chunk_qubits >= 1 && chunk_qubits <= circuit.n_qubits(),
             "chunk_qubits out of range");
  Builder builder(chunk_qubits);
  for (const Gate& g : circuit.gates()) builder.add(g);
  return builder.finish();
}

const char* stage_kind_name(StageKind kind) noexcept {
  switch (kind) {
    case StageKind::kLocal: return "local";
    case StageKind::kPair: return "pair";
    case StageKind::kPermute: return "permute";
    case StageKind::kMeasure: return "measure";
  }
  return "?";
}

}  // namespace memq::core
