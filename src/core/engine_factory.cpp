#include "core/dense_engine.hpp"
#include "core/memq_engine.hpp"
#include "core/wu_engine.hpp"

namespace memq::core {

std::unique_ptr<Engine> make_engine(EngineKind kind, qubit_t n_qubits,
                                    const EngineConfig& config) {
  switch (kind) {
    case EngineKind::kDense:
      return std::make_unique<DenseEngine>(n_qubits, config);
    case EngineKind::kWu:
      return std::make_unique<WuEngine>(n_qubits, config);
    case EngineKind::kMemQSim:
      return std::make_unique<MemQSimEngine>(n_qubits, config);
  }
  MEMQ_THROW(InvalidArgument, "unknown engine kind");
}

const char* engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kDense: return "dense";
    case EngineKind::kWu: return "wu-baseline";
    case EngineKind::kMemQSim: return "memqsim";
  }
  return "?";
}

}  // namespace memq::core
