// Shared machinery of the two compressed-state engines (MemQSim and the
// Wu-style prior-work baseline): chunked compressed storage, state queries,
// and the global measurement flow.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/prng.hpp"
#include "core/chunk_cache.hpp"
#include "core/chunk_store.hpp"
#include "core/codec_pool.hpp"
#include "core/engine.hpp"
#include "core/qubit_layout.hpp"

namespace memq::core {

class CompressedEngineBase : public Engine {
 public:
  CompressedEngineBase(qubit_t n_qubits, const EngineConfig& config);

  qubit_t n_qubits() const override { return store_.n_qubits(); }
  void reset() override;
  void load_dense(std::span<const amp_t> amplitudes) override;
  amp_t amplitude(index_t i) override;
  double norm() override;
  std::map<index_t, std::uint64_t> sample_counts(std::size_t shots) override;
  sv::StateVector to_dense() override;
  double expectation(const sv::PauliString& pauli) override;
  std::vector<double> marginal_probabilities(
      const std::vector<qubit_t>& qubits) override;
  void save_state(const std::string& path) override;
  void load_state(const std::string& path) override;
  const EngineTelemetry& telemetry() const override { return telemetry_; }

  /// Compressed footprint right now (benches poll this mid-run).
  std::uint64_t compressed_bytes() const { return store_.compressed_bytes(); }
  const ChunkStore& store() const { return store_; }

 protected:
  /// Loads chunk i into the scratch buffer with decompress timing.
  std::span<amp_t> load_chunk_timed(index_t i, std::vector<amp_t>& buf);
  /// Stores the buffer back with recompress timing.
  void store_chunk_timed(index_t i, std::span<const amp_t> buf);

  /// The shared codec worker pool, or nullptr when codec_threads resolves
  /// to 1 (serial mode — the historical single-threaded path).
  CodecPool* codec_pool() noexcept { return codec_pool_.get(); }
  /// The write-back chunk cache, or nullptr when cache_budget_bytes == 0.
  ChunkCache* cache() noexcept { return cache_.get(); }
  /// Cache-aware zero query: a dirty cached chunk must never be skipped as
  /// zero from its (stale) blob.
  bool chunk_is_zero(index_t i) const {
    return cache_ ? cache_->is_zero(i) : store_.is_zero_chunk(i);
  }
  /// Drains codec seconds accumulated inside the cache (miss decodes,
  /// write-back encodes) into the phase breakdown and the modeled clock.
  void harvest_cache_timings();
  /// Resolved codec worker count (1 in serial mode).
  std::size_t codec_workers() const noexcept {
    return codec_pool_ ? codec_pool_->workers() : 1;
  }
  /// Decode-ahead window for read-only sweeps (<= workers + 1 buffers
  /// resident).
  std::size_t reader_window() const noexcept { return codec_workers() > 1 ? codec_workers() : 0; }
  /// Reader-window / writer-backlog split for read-modify-write loops,
  /// sized so window + writer-resident <= codec_threads and a device stage
  /// of pipeline depth D keeps <= D + codec_threads items in flight.
  std::size_t split_reader_window() const noexcept;
  std::size_t split_writer_backlog() const noexcept;

  /// One ordered pass over `jobs`: decompression fans out across the codec
  /// pool (bounded decode-ahead) while `fn` consumes every chunk on the
  /// calling thread in job order, so reductions are deterministic for any
  /// codec_threads. With `timed`, decompress seconds land in telemetry and
  /// the modeled clock is charged (measured parallel wait in pool mode,
  /// dt / cpu_codec_workers in serial mode).
  void sweep_chunks(std::vector<ChunkJob> jobs,
                    const std::function<void(const ChunkJob&, std::span<amp_t>)>& fn,
                    bool timed = false);

  /// Jobs for every non-zero chunk, in chunk order.
  std::vector<ChunkJob> nonzero_chunk_jobs() const;

  /// Measures qubit q across the chunked state: returns the outcome and
  /// collapses + renormalizes. Used for measure and reset gates.
  bool measure_qubit(qubit_t q);

  /// Hook: charge `seconds` of CPU time to the engine's modeled timeline
  /// (MemQSim forwards to the device host clock; Wu accumulates directly).
  virtual void charge_cpu(double seconds) = 0;

  void refresh_footprint_telemetry();

  EngineConfig config_;
  ChunkStore store_;
  Prng rng_;
  EngineTelemetry telemetry_;
  std::vector<amp_t> scratch_;  // one chunk

  /// Parallel-pipeline state: worker pool (null in serial mode), reusable
  /// amplitude buffers, and the decompressed-bytes ledger behind the
  /// bounded in-flight window telemetry.
  std::unique_ptr<CodecPool> codec_pool_;
  BufferPool buffers_;
  InFlightLedger inflight_;

  /// Budgeted write-back cache of decompressed chunks (null when
  /// config.cache_budget_bytes == 0 — the historical path). Declared after
  /// the pool/buffers/ledger it borrows so destruction order is safe.
  std::unique_ptr<ChunkCache> cache_;

  /// Logical-to-physical qubit mapping (identity unless the derived engine
  /// installs an optimized layout). All public queries translate through it;
  /// circuits must be pre-mapped by the engine before execution.
  QubitLayout layout_;
  /// True until the first run()/load_state(); layout changes are only legal
  /// while the state is still |0...0> (which is layout-invariant).
  bool state_is_fresh_ = true;
};

}  // namespace memq::core
