// Shared machinery of the two compressed-state engines (MemQSim and the
// Wu-style prior-work baseline): state queries and the global measurement
// flow, on top of the StatePager storage plane (which owns the chunk
// store, cache, and codec pool — see core/state_pager.hpp).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/prng.hpp"
#include "core/engine.hpp"
#include "core/qubit_layout.hpp"
#include "core/state_pager.hpp"

namespace memq::core {

class CompressedEngineBase : public Engine {
 public:
  CompressedEngineBase(qubit_t n_qubits, const EngineConfig& config);

  qubit_t n_qubits() const override { return pager_.n_qubits(); }
  void reset() override;
  void load_dense(std::span<const amp_t> amplitudes) override;
  amp_t amplitude(index_t i) override;
  double norm() override;
  std::map<index_t, std::uint64_t> sample_counts(std::size_t shots) override;
  sv::StateVector to_dense() override;
  double expectation(const sv::PauliString& pauli) override;
  std::vector<double> marginal_probabilities(
      const std::vector<qubit_t>& qubits) override;
  void save_state(const std::string& path) override;
  void load_state(const std::string& path) override;
  const EngineTelemetry& telemetry() const override { return telemetry_; }

  // ---- batch-member window queries (core/batch_scheduler.hpp) -----------
  // Each treats chunks [base_chunk, base_chunk + span) as a standalone
  // member state of log2(span) + chunk_qubits qubits. The whole-state
  // queries are the base_chunk = 0, span = n_chunks() specialization of
  // these (norm() and sample_counts() literally delegate), so a batch
  // member whose chunks byte-match a serial engine's produces bit-identical
  // query results. They require an identity qubit layout (the batch
  // scheduler rejects layout optimizations).
  double norm_window(index_t base_chunk, index_t span);
  std::map<index_t, std::uint64_t> sample_counts_window(std::size_t shots,
                                                        index_t base_chunk,
                                                        index_t span,
                                                        Prng& rng);
  sv::StateVector to_dense_window(index_t base_chunk, index_t span);
  double expectation_window(const sv::PauliString& pauli, index_t base_chunk,
                            index_t span);

  /// Compressed footprint right now (benches poll this mid-run).
  std::uint64_t compressed_bytes() const { return pager_.compressed_bytes(); }
  const ChunkStore& store() const { return pager_.store(); }
  /// The storage plane (benches / tests inspect counters through it).
  const StatePager& pager() const { return pager_; }

 protected:
  /// Cache-aware zero query (see StatePager::is_zero).
  bool chunk_is_zero(index_t i) const { return pager_.is_zero(i); }
  qubit_t chunk_qubits() const noexcept { return pager_.chunk_qubits(); }
  index_t n_chunks() const noexcept { return pager_.n_chunks(); }
  index_t chunk_amps() const noexcept { return pager_.chunk_amps(); }

  /// Jobs for every non-zero chunk in [base_chunk, base_chunk + span), in
  /// chunk order — the window twin of StatePager::nonzero_jobs().
  std::vector<ChunkJob> nonzero_jobs_window(index_t base_chunk,
                                            index_t span) const;

  /// Measures qubit q across the chunked state: returns the outcome and
  /// collapses + renormalizes. Used for measure and reset gates.
  bool measure_qubit(qubit_t q);

  /// Hook: charge `seconds` of CPU time to the engine's modeled timeline
  /// (MemQSim forwards to the device host clock; Wu accumulates directly).
  virtual void charge_cpu(double seconds) = 0;

  void refresh_footprint_telemetry() { pager_.refresh_telemetry(); }

  EngineConfig config_;
  Prng rng_;
  EngineTelemetry telemetry_;
  /// The storage plane: every chunk access flows through its leases,
  /// sweeps, and streams. Declared after telemetry_ (it publishes into it).
  StatePager pager_;

  /// Logical-to-physical qubit mapping (identity unless the derived engine
  /// installs an optimized layout). All public queries translate through it;
  /// circuits must be pre-mapped by the engine before execution.
  QubitLayout layout_;
  /// True until the first run()/load_state(); layout changes are only legal
  /// while the state is still |0...0> (which is layout-invariant).
  bool state_is_fresh_ = true;
};

}  // namespace memq::core
