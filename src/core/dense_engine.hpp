// Uncompressed dense backend behind the Engine interface — the memory
// baseline every compression claim is measured against.
#pragma once

#include "core/engine.hpp"
#include "sv/simulator.hpp"

namespace memq::core {

class DenseEngine final : public Engine {
 public:
  DenseEngine(qubit_t n_qubits, const EngineConfig& config);

  std::string name() const override { return "dense"; }
  qubit_t n_qubits() const override { return sim_.n_qubits(); }
  void reset() override;
  void load_dense(std::span<const amp_t> amplitudes) override;
  void run(const circuit::Circuit& circuit) override;
  amp_t amplitude(index_t i) override { return sim_.state().amplitude(i); }
  double norm() override { return sim_.state().norm(); }
  std::map<index_t, std::uint64_t> sample_counts(std::size_t shots) override {
    return sim_.sample_counts(shots);
  }
  sv::StateVector to_dense() override;
  double expectation(const sv::PauliString& pauli) override {
    return sim_.expectation(pauli);
  }
  std::vector<double> marginal_probabilities(
      const std::vector<qubit_t>& qubits) override;
  void save_state(const std::string& path) override;
  void load_state(const std::string& path) override;
  const EngineTelemetry& telemetry() const override { return telemetry_; }

 private:
  sv::Simulator sim_;
  EngineTelemetry telemetry_;
};

}  // namespace memq::core
