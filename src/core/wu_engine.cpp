#include "core/wu_engine.hpp"

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "core/chunk_exec.hpp"

namespace memq::core {

using circuit::Gate;
using circuit::GateKind;

WuEngine::WuEngine(qubit_t n_qubits, const EngineConfig& config)
    : CompressedEngineBase(n_qubits, config) {}

void WuEngine::charge_cpu(double seconds) {
  telemetry_.modeled_total_seconds += seconds;
}

void WuEngine::run(const circuit::Circuit& circuit) {
  MEMQ_CHECK(circuit.n_qubits() == n_qubits(), "circuit width mismatch");
  WallTimer wall;
  state_is_fresh_ = false;  // layout stays identity: [6] has no remapping
  for (const Gate& g : circuit.gates()) {
    if (g.is_barrier()) continue;
    if (g.is_nonunitary()) {
      const bool outcome = measure_qubit(g.targets.at(0));
      ++telemetry_.stages_measure;
      if (g.kind == GateKind::kReset && outcome)
        apply_unitary_gate(Gate::x(g.targets[0]));
      continue;
    }
    if (g.kind == GateKind::kSwap &&
        (g.targets[0] >= store_.chunk_qubits() ||
         g.targets[1] >= store_.chunk_qubits()) &&
        !(g.targets[0] >= store_.chunk_qubits() &&
          g.targets[1] >= store_.chunk_qubits() &&
          [&] {
            for (const qubit_t ctrl : g.controls)
              if (ctrl < store_.chunk_qubits()) return false;
            return true;
          }())) {
      // Mixed-locality swap: three CXs, as in the MemQSim partitioner.
      const qubit_t a = g.targets[0], b = g.targets[1];
      Gate cx_ab{GateKind::kX, {b}, g.controls, {}};
      cx_ab.controls.push_back(a);
      Gate cx_ba{GateKind::kX, {a}, g.controls, {}};
      cx_ba.controls.push_back(b);
      apply_unitary_gate(cx_ab);
      apply_unitary_gate(cx_ba);
      apply_unitary_gate(cx_ab);
      continue;
    }
    apply_unitary_gate(g);
  }
  telemetry_.wall_seconds += wall.seconds();
  refresh_footprint_telemetry();
}

void WuEngine::apply_unitary_gate(const Gate& g) {
  const qubit_t c = store_.chunk_qubits();

  if (is_chunk_local(g, c)) {
    // Wu-style: every gate pays a full decompress + recompress sweep.
    ++telemetry_.stages_local;
    for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
      // The all-zero fast path: a zero chunk stays zero under any masked
      // single-target unitary.
      if (chunk_is_zero(ci)) {
        ++telemetry_.zero_chunks_skipped;
        continue;
      }
      (void)load_chunk_timed(ci, scratch_);
      WallTimer t;
      const bool touched = apply_gate_to_chunk(scratch_, ci, c, g);
      const double dt = t.seconds();
      telemetry_.cpu_phases.add("cpu_apply", dt);
      charge_cpu(dt / config_.cpu_codec_workers);
      if (touched) store_chunk_timed(ci, scratch_);
    }
    refresh_footprint_telemetry();
    return;
  }

  // Pure chunk permutation?
  const auto all_high_controls = [&] {
    for (const qubit_t ctrl : g.controls)
      if (ctrl < c) return false;
    return true;
  };
  if (((g.kind == GateKind::kX && g.targets[0] >= c) ||
       (g.kind == GateKind::kSwap && g.targets[0] >= c &&
        g.targets[1] >= c)) &&
      all_high_controls()) {
    ++telemetry_.stages_permute;
    apply_chunk_permutation(store_, g, cache());
    return;
  }

  // Pair gate on the single high target.
  ++telemetry_.stages_pair;
  qubit_t q = 0;
  for (const qubit_t t : g.targets)
    if (t >= c) q = t;
  const qubit_t pair_bit = q - c;
  pair_buf_.resize(store_.chunk_amps() * 2);
  const auto lo_half = std::span<amp_t>(pair_buf_).first(store_.chunk_amps());
  const auto hi_half = std::span<amp_t>(pair_buf_).last(store_.chunk_amps());
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    if (bits::test(ci, pair_bit)) continue;
    const index_t cj = bits::set(ci, pair_bit);
    if (chunk_is_zero(ci) && chunk_is_zero(cj)) {
      ++telemetry_.zero_chunks_skipped;
      continue;
    }
    (void)load_chunk_timed(ci, scratch_);
    std::copy(scratch_.begin(), scratch_.end(), lo_half.begin());
    (void)load_chunk_timed(cj, scratch_);
    std::copy(scratch_.begin(), scratch_.end(), hi_half.begin());
    WallTimer t;
    const bool touched = apply_gate_to_pair(pair_buf_, ci, c, q, g);
    const double dt = t.seconds();
    telemetry_.cpu_phases.add("cpu_apply", dt);
    charge_cpu(dt / config_.cpu_codec_workers);
    if (touched) {
      store_chunk_timed(ci, lo_half);
      store_chunk_timed(cj, hi_half);
    }
  }
  refresh_footprint_telemetry();
}

}  // namespace memq::core
