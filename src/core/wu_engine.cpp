#include "core/wu_engine.hpp"

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "core/chunk_exec.hpp"
#include "core/plan_opt.hpp"

namespace memq::core {

using circuit::Gate;
using circuit::GateKind;

WuEngine::WuEngine(qubit_t n_qubits, const EngineConfig& config)
    : CompressedEngineBase(n_qubits, config) {}

void WuEngine::charge_cpu(double seconds) {
  telemetry_.modeled_total_seconds += seconds;
}

void WuEngine::run(const circuit::Circuit& circuit) {
  MEMQ_CHECK(circuit.n_qubits() == n_qubits(), "circuit width mismatch");
  WallTimer wall;
  state_is_fresh_ = false;  // layout stays identity: [6] has no remapping
  if (config_.plan_opt) {
    // Consume the locality-optimized plan through the shared StagePlan
    // interface. Wu still pays its per-gate full-state codec sweep (that is
    // the baseline being modeled) but executes the gates in the scheduled
    // order, the same commutation-sound reorder MemQSim runs.
    const PlanOptOptions opt{chunk_qubits(), config_.cache_budget_bytes,
                             (index_t{1} << chunk_qubits()) * sizeof(amp_t),
                             n_chunks()};
    const StagePlan plan = build_optimized_plan(circuit, opt);
    for (const Stage& stage : plan.stages) {
      if (stage.kind == StageKind::kMeasure) {
        const Gate& g = stage.gates.at(0);
        const bool outcome = measure_qubit(g.targets.at(0));
        ++telemetry_.stages_measure;
        if (g.kind == GateKind::kReset && outcome)
          apply_unitary_gate(Gate::x(g.targets[0]));
        continue;
      }
      for (const Gate& g : stage.gates) apply_unitary_gate(g);
    }
    telemetry_.wall_seconds += wall.seconds();
    refresh_footprint_telemetry();
    return;
  }
  for (const Gate& g : circuit.gates()) {
    if (g.is_barrier()) continue;
    if (g.is_nonunitary()) {
      const bool outcome = measure_qubit(g.targets.at(0));
      ++telemetry_.stages_measure;
      if (g.kind == GateKind::kReset && outcome)
        apply_unitary_gate(Gate::x(g.targets[0]));
      continue;
    }
    if (g.kind == GateKind::kSwap &&
        (g.targets[0] >= chunk_qubits() || g.targets[1] >= chunk_qubits()) &&
        !(g.targets[0] >= chunk_qubits() && g.targets[1] >= chunk_qubits() &&
          [&] {
            for (const qubit_t ctrl : g.controls)
              if (ctrl < chunk_qubits()) return false;
            return true;
          }())) {
      // Mixed-locality swap: three CXs, as in the MemQSim partitioner.
      const qubit_t a = g.targets[0], b = g.targets[1];
      Gate cx_ab{GateKind::kX, {b}, g.controls, {}};
      cx_ab.controls.push_back(a);
      Gate cx_ba{GateKind::kX, {a}, g.controls, {}};
      cx_ba.controls.push_back(b);
      apply_unitary_gate(cx_ab);
      apply_unitary_gate(cx_ba);
      apply_unitary_gate(cx_ab);
      continue;
    }
    apply_unitary_gate(g);
  }
  telemetry_.wall_seconds += wall.seconds();
  refresh_footprint_telemetry();
}

void WuEngine::apply_unitary_gate(const Gate& g) {
  const qubit_t c = chunk_qubits();

  if (is_chunk_local(g, c)) {
    // Wu-style: every gate pays a full decompress + recompress sweep.
    ++telemetry_.stages_local;
    for (index_t ci = 0; ci < n_chunks(); ++ci) {
      // The all-zero fast path: a zero chunk stays zero under any masked
      // single-target unitary.
      if (chunk_is_zero(ci)) {
        ++telemetry_.zero_chunks_skipped;
        continue;
      }
      StatePager::Lease lease = pager_.acquire_write(ci);
      WallTimer t;
      const bool touched = apply_gate_to_chunk(lease.amps(), ci, c, g);
      const double dt = t.seconds();
      telemetry_.cpu_phases.add("cpu_apply", dt);
      charge_cpu(dt / config_.cpu_codec_workers);
      pager_.release(std::move(lease), touched);
    }
    refresh_footprint_telemetry();
    return;
  }

  // Pure chunk permutation?
  const auto all_high_controls = [&] {
    for (const qubit_t ctrl : g.controls)
      if (ctrl < c) return false;
    return true;
  };
  if (((g.kind == GateKind::kX && g.targets[0] >= c) ||
       (g.kind == GateKind::kSwap && g.targets[0] >= c &&
        g.targets[1] >= c)) &&
      all_high_controls()) {
    ++telemetry_.stages_permute;
    pager_.permute(g);
    return;
  }

  // Pair gate on the single high target.
  ++telemetry_.stages_pair;
  qubit_t q = 0;
  for (const qubit_t t : g.targets)
    if (t >= c) q = t;
  const qubit_t pair_bit = q - c;
  for (index_t ci = 0; ci < n_chunks(); ++ci) {
    if (bits::test(ci, pair_bit)) continue;
    const index_t cj = bits::set(ci, pair_bit);
    if (chunk_is_zero(ci) && chunk_is_zero(cj)) {
      ++telemetry_.zero_chunks_skipped;
      continue;
    }
    StatePager::Lease lease = pager_.acquire_write_pair(ci, cj);
    WallTimer t;
    const bool touched = apply_gate_to_pair(lease.amps(), ci, c, q, g);
    const double dt = t.seconds();
    telemetry_.cpu_phases.add("cpu_apply", dt);
    charge_cpu(dt / config_.cpu_codec_workers);
    pager_.release(std::move(lease), touched);
  }
  refresh_footprint_telemetry();
}

}  // namespace memq::core
