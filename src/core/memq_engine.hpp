// MEMQSIM: the paper's engine.
//
// Offline stage — the circuit is partitioned into locality stages
// (partitioner.hpp) and the state vector lives chunked + compressed in CPU
// memory (chunk_store.hpp).
//
// Online stage — per stage, chunks stream through the (simulated) GPU(s):
//   (1) decompress chunk(s) into a CPU buffer            [CPU, real time]
//   (2) transfer amplitudes to device memory             [copy stream]
//   (3) launch the gate kernels asynchronously           [compute stream]
//   (4) return updated amplitudes to the CPU buffer      [copy stream]
//   (5) optionally update a fraction of chunks with idle CPU cores
//   (6) re-compress and store back                       [CPU, real time]
// with double-buffered device slots so step (2) of chunk k+1 overlaps step
// (3) of chunk k, and CPU codec work overlaps device work when
// config.pipelined is set (paper Figure 1/2). With device_count > 1, work
// items fan out round-robin across accelerators whose virtual timelines
// advance in parallel against one shared host clock.
#pragma once

#include <memory>
#include <optional>

#include "common/metrics.hpp"
#include "core/compressed_base.hpp"
#include "core/partitioner.hpp"
#include "device/copy_engine.hpp"
#include "device/stream.hpp"

namespace memq::core {

class MemQSimEngine final : public CompressedEngineBase {
 public:
  MemQSimEngine(qubit_t n_qubits, const EngineConfig& config);

  std::string name() const override { return "memqsim"; }
  void run(const circuit::Circuit& circuit) override;
  void reset() override;

  /// Stage plan of the last run() (benches inspect locality stats).
  const std::optional<StagePlan>& last_plan() const { return plan_; }

  /// Per-stage counter deltas + stall accounting of the last run().
  const StageReport* stage_report() const override { return &report_; }

  // ---- batch execution hooks (core/batch_scheduler.hpp) -----------------
  // The batch scheduler widens one engine over member-index qubits and
  // drives it stage-by-stage through these, so every member's execution
  // reuses exactly the serial stage machinery (same jobs, same kernels,
  // same codec passes) — the foundation of the batch-vs-serial bit-identity
  // oracle.

  /// Builds the stage plan run() would execute for `circuit`, which may be
  /// narrower than the engine (member circuits of a widened batch engine).
  /// Requires the batch-legal config subset — no layout optimization, no
  /// swap elision — so the prepared circuit is exactly what a serial engine
  /// with the same config schedules. Pure: no state or telemetry changes.
  StagePlan plan_for(const circuit::Circuit& circuit);

  /// Executes one non-measure stage of a member plan against the chunk
  /// window [base, base + span): advances the cache's plan cursor to
  /// `access_index` (the stage's slot in the installed batch StageAccess
  /// schedule) and dispatches with member-local chunk arithmetic.
  void run_stage_window(const Stage& stage, index_t base, index_t span,
                        std::size_t access_index);

  /// Installs / clears the merged batch StageAccess schedule (one entry per
  /// run_stage_window access_index, windows included) on the cache.
  void install_batch_plan(std::vector<StageAccess> accesses) {
    pager_.set_plan(std::move(accesses));
  }
  void clear_batch_plan() { pager_.clear_plan(); }

  /// Member fan-out: blob-level clone of [src_base, src_base + count) onto
  /// [dst_base, ...) with no codec pass (StatePager::fanout).
  void fanout_chunks(index_t src_base, index_t dst_base, index_t count) {
    pager_.fanout(src_base, dst_base, count);
  }

  /// Drains every modeled device stream (run() does this before reporting;
  /// the batch scheduler calls it once after the last member stage).
  void sync_devices();

 private:
  struct Slot {
    device::DeviceBuffer state;
    device::DeviceBuffer staging;
    device::Event free_at;  // previous occupant fully downloaded
  };

  /// One accelerator: its memory space, streams and buffer slots.
  struct DeviceContext {
    std::unique_ptr<device::SimDevice> device;
    std::unique_ptr<device::Stream> h2d;
    std::unique_ptr<device::Stream> compute;
    std::unique_ptr<device::Stream> d2h;
    std::unique_ptr<device::CopyEngine> copy;
    std::vector<Slot> slots;
    std::size_t next_slot = 0;
  };

  void charge_cpu(double seconds) override;

  /// Stage runners. The optional window [base, base + span) scopes the
  /// stage to one batch member's chunk span; kernels see MEMBER-LOCAL chunk
  /// indices (physical - base), so a member executes bit-identically to a
  /// standalone engine of span chunks. base = 0 / span = 0 is the whole
  /// store — the historical serial path, byte for byte.
  void run_local_stage(const Stage& stage, index_t base = 0, index_t span = 0);
  void run_pair_stage(const Stage& stage, index_t base = 0, index_t span = 0);
  void run_permute_stage(const Stage& stage, index_t base = 0,
                         index_t span = 0);

  /// Shared online-stage loop: streams `jobs` decompress -> device round
  /// trip -> recompress, with codec work fanned across the codec pool
  /// (bounded in-flight window) or run inline in serial mode. `base` is
  /// subtracted from each lease's chunk index before it reaches a kernel.
  void run_stream_stage(const Stage& stage, std::vector<ChunkJob> jobs,
                        index_t base = 0);

  /// Streams one work item (a chunk or a chunk pair, already decompressed
  /// into `host_buf`) through upload -> kernels -> download on the next
  /// device (round-robin). With `constant_src` the upload is replaced by a
  /// modeled device-side fill (the chunk is a ~16-byte constant tag — the
  /// device can materialize it without moving the amplitudes over PCIe).
  /// Returns {modified, completion event}.
  std::pair<bool, device::Event> device_round_trip(std::span<amp_t> host_buf,
                                                   const Stage& stage,
                                                   index_t chunk_lo,
                                                   bool constant_src);

  /// CPU path for step (5).
  bool cpu_apply(std::span<amp_t> buf, const Stage& stage, index_t chunk_lo);

  void collect_device_telemetry();
  std::size_t pipeline_depth() const {
    return devices_.size() * devices_.front().slots.size() + 1;
  }

  /// Counter/clock snapshot for the stage report (telescoped deltas).
  struct MetricsSnap;
  MetricsSnap take_metrics_snap();

  std::shared_ptr<device::HostClock> clock_;
  std::vector<DeviceContext> devices_;
  std::size_t next_device_ = 0;

  std::optional<StagePlan> plan_;
  StageReport report_;
  std::uint64_t work_items_ = 0;  // for cpu-offload round-robin

  // Per-instance metrics cells (common/metrics.hpp). The zero-skip cell is
  // monotone for the sampler; `telemetry_.zero_chunks_skipped` subtracts the
  // baseline captured at reset() so engine telemetry keeps reset semantics.
  metrics::Counter& zero_skips_;
  std::uint64_t zero_skips_base_ = 0;
  metrics::Histogram& stage_ns_;
  metrics::Gauge& predicted_passes_g_;
};

}  // namespace memq::core
