#include "core/state_pager.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/chunk_exec.hpp"

namespace memq::core {

namespace {

std::size_t resolved_codec_threads(const EngineConfig& config) {
  // Cap absurd requests (e.g. a -1 that wrapped to 4 billion on the CLI)
  // before they turn into thread-spawn storms.
  constexpr std::size_t kMaxThreads = 256;
  if (config.codec_threads == 1) return 1;
  if (config.codec_threads != 0)
    return std::min<std::size_t>(config.codec_threads, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxThreads);
}

std::unique_ptr<BlobStore> make_blob_store(const EngineConfig& config) {
  std::unique_ptr<BlobStore> inner;
  switch (config.store_backend) {
    case StoreBackend::kFile:
      inner = std::make_unique<FileBlobStore>(config.host_blob_budget_bytes);
      break;
    case StoreBackend::kRam:
      // Historical in-place RAM path when dedup is off (ChunkStore defaults
      // to RamBlobStore); dedup needs an explicit inner store to wrap.
      if (!config.dedup) return nullptr;
      inner = std::make_unique<RamBlobStore>();
      break;
  }
  if (config.dedup) return std::make_unique<DedupBlobStore>(std::move(inner));
  return inner;
}

}  // namespace

StatePager::StatePager(qubit_t n_qubits, const EngineConfig& config,
                       EngineTelemetry& telemetry,
                       std::function<void(double)> charge_cpu)
    : config_(config),
      telemetry_(telemetry),
      charge_cpu_(std::move(charge_cpu)),
      store_(n_qubits, std::min<qubit_t>(config.chunk_qubits, n_qubits),
             config.codec, make_blob_store(config)),
      lease_wait_ns_(
          metrics::Registry::global().histogram("pager.lease_wait_ns")) {
  const std::size_t threads = resolved_codec_threads(config);
  if (threads > 1)
    codec_pool_ = std::make_unique<CodecPool>(config.codec, threads);
  if (config.cache_budget_bytes > 0)
    cache_ = std::make_unique<ChunkCache>(store_, codec_pool_.get(), buffers_,
                                          inflight_,
                                          config.cache_budget_bytes);
}

StatePager::~StatePager() = default;

void StatePager::reset() {
  MEMQ_CHECK(leased_.empty(), "reset with live leases");
  if (cache_) {
    cache_->invalidate();  // dirty data must not outlive the reset
    cache_->clear_plan();
    cache_->reset_stats();
    (void)cache_->take_timings();
  }
  store_.init_basis(0);
  inflight_.reset();
  buffers_.clear();
}

std::size_t StatePager::split_reader_window() const noexcept {
  const std::size_t workers = codec_workers();
  if (workers <= 1) return 0;
  return std::max<std::size_t>(1, workers / 2);
}

std::size_t StatePager::split_writer_backlog() const noexcept {
  const std::size_t workers = codec_workers();
  if (workers <= 1) return 0;
  const std::size_t window = split_reader_window();
  return workers > window + 1 ? workers - window - 1 : 0;
}

void StatePager::harvest_cache_timings() {
  if (!cache_) return;
  const ChunkCache::Timings t = cache_->take_timings();
  telemetry_.cpu_phases.add("decompress", t.decode_seconds);
  telemetry_.cpu_phases.add("recompress", t.encode_seconds);
  telemetry_.pipeline_stall_seconds += t.wait_seconds;
  // Miss decodes run synchronously on the coordinator, so pool mode charges
  // them in full plus the measured write-back wait; serial mode keeps the
  // modeled multi-core divisor.
  charge_cpu_(codec_pool_
                  ? t.decode_seconds + t.wait_seconds
                  : (t.decode_seconds + t.encode_seconds) /
                        config_.cpu_codec_workers);
}

void StatePager::refresh_telemetry() {
  // Working buffers: the measured in-flight window of the parallel pipeline
  // once it has run, with the historical serial floor (scratch + pair +
  // staging) as the minimum. Only RESIDENT compressed bytes count toward
  // the host peak — spilled blobs live on disk, which is the point.
  const std::uint64_t serial_floor = (store_.chunk_amps() * kAmpBytes) * 4;
  const std::uint64_t working = std::max(serial_floor, inflight_.peak());
  telemetry_.peak_host_state_bytes =
      std::max(telemetry_.peak_host_state_bytes,
               store_.peak_resident_bytes() + working);
  telemetry_.peak_inflight_bytes =
      std::max(telemetry_.peak_inflight_bytes, inflight_.peak());
  telemetry_.final_compression_ratio = store_.compression_ratio();
  telemetry_.chunk_loads = store_.loads();
  telemetry_.chunk_stores = store_.stores();
  telemetry_.codec_decode_bytes = store_.loads() * store_.chunk_raw_bytes();
  telemetry_.codec_encode_bytes = store_.stores() * store_.chunk_raw_bytes();
  if (cache_) {
    const ChunkCacheStats& cs = cache_->stats();
    telemetry_.cache_hits = cs.hits;
    telemetry_.cache_misses = cs.misses;
    telemetry_.cache_evictions = cs.evictions;
    telemetry_.cache_clean_evictions = cs.clean_evictions;
    telemetry_.cache_writebacks = cs.writebacks;
    telemetry_.cache_codec_bytes_avoided =
        cs.codec_bytes_avoided(store_.chunk_raw_bytes());
    telemetry_.peak_cache_resident_bytes = cs.peak_resident_bytes;
  }
  const BlobStore::Stats bs = store_.blob_stats();
  telemetry_.spill_writes = bs.spill_writes;
  telemetry_.spill_reads = bs.spill_reads;
  telemetry_.spill_bytes_written = bs.spill_bytes_written;
  telemetry_.spill_bytes_read = bs.spill_bytes_read;
  telemetry_.peak_resident_blob_bytes = store_.peak_resident_bytes();
  telemetry_.dedup_hits = bs.dedup_hits;
  telemetry_.dedup_bytes_saved = bs.dedup_bytes_saved;
  telemetry_.cow_breaks = bs.cow_breaks;
  telemetry_.constant_chunks_stored = store_.constant_chunks_stored();
  telemetry_.constant_chunks_materialized =
      store_.constant_chunks_materialized();
  if (cache_) telemetry_.cache_alias_hits = cache_->stats().alias_hits;
  telemetry_.codec_memo_hits = store_.codec_memo_hits();
  telemetry_.io_retries =
      bs.io_retries + (cache_ ? cache_->stats().writeback_retries : 0);
  telemetry_.degraded_to_ram = bs.degraded_to_ram;
  telemetry_.faults_injected = fault::total_fires();
}

// ---- leases --------------------------------------------------------------

void StatePager::claim(const ChunkJob& job) {
  MEMQ_CHECK(job.a < n_chunks() && (!job.has_b || job.b < n_chunks()),
             "chunk index out of range");
  if (leased_.count(job.a) || (job.has_b && leased_.count(job.b)))
    MEMQ_THROW(InvalidArgument,
               "chunk " << (leased_.count(job.a) ? job.a : job.b)
                        << " already has a live lease");
  leased_.insert(job.a);
  if (job.has_b) leased_.insert(job.b);
}

void StatePager::unclaim(const ChunkJob& job) {
  leased_.erase(job.a);
  if (job.has_b) leased_.erase(job.b);
}

void StatePager::load_timed(index_t i, std::span<amp_t> out) {
  if (cache_) {
    cache_->load(i, out);
    harvest_cache_timings();
    return;
  }
  WallTimer t;
  store_.load(i, out);
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("decompress", dt);
  charge_cpu_(dt / config_.cpu_codec_workers);
}

void StatePager::store_timed(index_t i, std::span<const amp_t> in) {
  if (cache_) {
    cache_->store(i, in);
    harvest_cache_timings();
    return;
  }
  WallTimer t;
  store_.store(i, in);
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("recompress", dt);
  charge_cpu_(dt / config_.cpu_codec_workers);
}

StatePager::Lease StatePager::acquire(ChunkJob job, bool writable) {
  MEMQ_TRACE_SCOPE("pager", writable ? "acquire_write" : "acquire_read",
                   trace::arg("chunk", job.a));
  metrics::ScopedTimer timer(lease_wait_ns_);
  // Injected before any claim or buffer allocation: an acquisition failure
  // must leave no live lease and no in-flight accounting behind.
  if (MEMQ_FAULT("pager.acquire"))
    MEMQ_THROW(OutOfMemory, "lease acquisition for chunk "
                                << job.a
                                << " failed (injected): working-buffer "
                                   "budget exhausted");
  claim(job);
  Lease lease;
  lease.job_ = job;
  lease.writable_ = writable;
  lease.tracked_ = true;
  const std::size_t half = store_.chunk_amps();
  lease.buf_ = buffers_.get(half * (job.has_b ? 2 : 1));
  const std::span<amp_t> amps(lease.buf_);
  load_timed(job.a, amps.first(half));
  if (job.has_b) load_timed(job.b, amps.subspan(half, half));
  return lease;
}

StatePager::Lease StatePager::acquire_read(index_t i) {
  return acquire({i, 0, false}, /*writable=*/false);
}

StatePager::Lease StatePager::acquire_write(index_t i) {
  return acquire({i, 0, false}, /*writable=*/true);
}

StatePager::Lease StatePager::acquire_write_pair(index_t lo, index_t hi) {
  MEMQ_CHECK(lo != hi, "pair lease needs two distinct chunks");
  return acquire({lo, hi, true}, /*writable=*/true);
}

void StatePager::release(Lease lease, bool modified) {
  MEMQ_TRACE_SCOPE("pager", modified ? "release_modified" : "release",
                   trace::arg("chunk", lease.job_.a));
  if (lease.tracked_) unclaim(lease.job_);
  if (modified) {
    MEMQ_CHECK(lease.writable_, "read lease released as modified");
    const std::size_t half = store_.chunk_amps();
    const std::span<const amp_t> amps(lease.buf_);
    store_timed(lease.job_.a, amps.first(half));
    if (lease.job_.has_b) store_timed(lease.job_.b, amps.subspan(half, half));
  }
  buffers_.put(std::move(lease.buf_));
}

void StatePager::peek(index_t i, std::span<amp_t> out) {
  if (cache_) {
    cache_->load(i, out);
    harvest_cache_timings();
  } else {
    store_.load(i, out);
  }
}

// ---- bulk sweeps ----------------------------------------------------------

std::vector<ChunkJob> StatePager::nonzero_jobs() const {
  std::vector<ChunkJob> jobs;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci)
    if (!is_zero(ci)) jobs.push_back({ci, 0, false});
  return jobs;
}

void StatePager::sweep(
    std::vector<ChunkJob> jobs,
    const std::function<void(const ChunkJob&, std::span<amp_t>)>& fn,
    bool timed, index_t window_base, index_t window_count) {
  SweepPlanGuard sweep_plan(cache(), window_base, window_count);
  CachedReader reader(store_, codec_pool(), buffers_, inflight_, cache(),
                      std::move(jobs), reader_window());
  while (auto item = reader.next()) {
    fn(item->job, std::span<amp_t>(item->buf));
    reader.recycle(std::move(item->buf));
  }
  if (cache_) harvest_cache_timings();
  if (timed) {
    telemetry_.cpu_phases.add("decompress", reader.decode_seconds());
    telemetry_.pipeline_stall_seconds += reader.wait_seconds();
    charge_cpu_(codec_pool_ ? reader.wait_seconds()
                            : reader.decode_seconds() /
                                  config_.cpu_codec_workers);
  }
}

struct StatePager::ReadStream::Impl {
  StatePager* pager;
  SweepPlanGuard plan_guard;
  CachedReader reader;

  Impl(StatePager* p, std::vector<ChunkJob> jobs, index_t window_base,
       index_t window_count)
      : pager(p),
        plan_guard(p->cache(), window_base, window_count),
        reader(p->store_, p->codec_pool(), p->buffers_, p->inflight_,
               p->cache(), std::move(jobs), p->reader_window()) {}
};

StatePager::ReadStream::ReadStream(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
StatePager::ReadStream::ReadStream(ReadStream&&) noexcept = default;

StatePager::ReadStream::~ReadStream() {
  if (impl_ && impl_->pager->cache_enabled())
    impl_->pager->harvest_cache_timings();
}

std::optional<StatePager::Lease> StatePager::ReadStream::next() {
  MEMQ_TRACE_SCOPE("pager", "read_next");
  // Consumer-visible lease wait: time blocked on the decode-ahead window.
  metrics::ScopedTimer timer(impl_->pager->lease_wait_ns_);
  auto item = impl_->reader.next();
  if (!item) return std::nullopt;
  Lease lease;
  lease.job_ = item->job;
  lease.buf_ = std::move(item->buf);
  return lease;
}

void StatePager::ReadStream::recycle(Lease lease) {
  impl_->reader.recycle(std::move(lease.buf_));
}

StatePager::ReadStream StatePager::open_read(std::vector<ChunkJob> jobs,
                                             index_t window_base,
                                             index_t window_count) {
  return ReadStream(std::make_unique<ReadStream::Impl>(
      this, std::move(jobs), window_base, window_count));
}

struct StatePager::StageStream::Impl {
  StatePager* pager;
  CachedReader reader;
  CachedWriter writer;
  bool serial;
  bool finished = false;

  Impl(StatePager* p, std::vector<ChunkJob> jobs)
      : pager(p),
        reader(p->store_, p->codec_pool(), p->buffers_, p->inflight_,
               p->cache(), std::move(jobs), p->split_reader_window()),
        writer(p->store_, p->codec_pool(), p->buffers_, p->inflight_,
               p->cache(), p->split_writer_backlog()),
        serial(p->codec_pool_ == nullptr) {}
};

StatePager::StageStream::StageStream(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
StatePager::StageStream::StageStream(StageStream&&) noexcept = default;
StatePager::StageStream::~StageStream() = default;

std::optional<StatePager::Lease> StatePager::StageStream::next() {
  MEMQ_TRACE_SCOPE("pager", "stage_next");
  metrics::ScopedTimer timer(impl_->pager->lease_wait_ns_);
  if (MEMQ_FAULT("pager.acquire"))
    MEMQ_THROW(OutOfMemory, "stage-stream lease acquisition failed "
                            "(injected): working-buffer budget exhausted");
  auto item = impl_->reader.next();
  if (!item) return std::nullopt;
  if (impl_->serial) {
    StatePager& pager = *impl_->pager;
    pager.telemetry_.cpu_phases.add("decompress", item->decode_seconds);
    pager.charge_cpu_(item->decode_seconds / pager.config_.cpu_codec_workers);
  }
  Lease lease;
  lease.job_ = item->job;
  lease.buf_ = std::move(item->buf);
  lease.writable_ = true;
  return lease;
}

void StatePager::StageStream::release(Lease lease, bool modified) {
  MEMQ_TRACE_SCOPE("pager", modified ? "stage_release_modified"
                                     : "stage_release",
                   trace::arg("chunk", lease.job_.a));
  if (!modified) {
    impl_->reader.recycle(std::move(lease.buf_));
    return;
  }
  const double dt = impl_->writer.put(lease.job_, std::move(lease.buf_));
  if (impl_->serial) {
    // Historical serial accounting: charge each recompress as it happens
    // so modeled CPU/device interleaving is unchanged.
    StatePager& pager = *impl_->pager;
    pager.telemetry_.cpu_phases.add("recompress", dt);
    pager.charge_cpu_(dt / pager.config_.cpu_codec_workers);
  }
}

void StatePager::StageStream::finish() {
  MEMQ_CHECK(!impl_->finished, "StageStream finished twice");
  impl_->finished = true;
  StatePager& pager = *impl_->pager;
  impl_->writer.drain();
  if (!impl_->serial) {
    // Parallel mode: codec seconds are summed across workers for the phase
    // breakdown, but the modeled clock is only charged the coordinator's
    // measured blocked time — decompression genuinely overlapped device
    // work, so no per-item fiction is needed.
    pager.telemetry_.cpu_phases.add("decompress",
                                    impl_->reader.decode_seconds());
    pager.telemetry_.cpu_phases.add("recompress",
                                    impl_->writer.encode_seconds());
    pager.telemetry_.pipeline_stall_seconds +=
        impl_->reader.wait_seconds() + impl_->writer.wait_seconds();
    pager.charge_cpu_(impl_->reader.wait_seconds() +
                      impl_->writer.wait_seconds());
  }
  pager.harvest_cache_timings();
  pager.refresh_telemetry();
}

StatePager::StageStream StatePager::open_stage(std::vector<ChunkJob> jobs) {
  return StageStream(
      std::make_unique<StageStream::Impl>(this, std::move(jobs)));
}

// ---- whole-state operations ----------------------------------------------

void StatePager::collapse(
    const std::vector<ChunkJob>& zero_jobs, std::vector<ChunkJob> scale_jobs,
    const std::function<void(const ChunkJob&, std::span<amp_t>)>& fn) {
  if (cache_) {
    // Zeroed chunks bypass the cache (storing zeros through it would defeat
    // the zero-chunk fast path): drop any cached copy, then store directly.
    WallTimer zt;
    std::vector<amp_t> zeros(store_.chunk_amps(), amp_t{0, 0});
    for (const ChunkJob& job : zero_jobs) {
      cache_->drop(job.a);
      store_.store(job.a, zeros);
    }
    const double zdt = zt.seconds();
    telemetry_.cpu_phases.add("recompress", zdt);
    charge_cpu_(codec_pool_ ? zdt : zdt / config_.cpu_codec_workers);
    CachedReader reader(store_, codec_pool(), buffers_, inflight_, cache(),
                        std::move(scale_jobs), split_reader_window());
    CachedWriter writer(store_, codec_pool(), buffers_, inflight_, cache(),
                        split_writer_backlog());
    while (auto item = reader.next()) {
      fn(item->job, std::span<amp_t>(item->buf));
      writer.put(item->job, std::move(item->buf));
    }
    writer.drain();
    harvest_cache_timings();
  } else {
    ChunkWriter writer(store_, codec_pool(), buffers_, inflight_,
                       split_writer_backlog());
    for (const ChunkJob& job : zero_jobs) {
      std::vector<amp_t> zeros = buffers_.get(store_.chunk_amps());
      std::fill(zeros.begin(), zeros.end(), amp_t{0, 0});
      inflight_.acquire(zeros.size() * kAmpBytes);
      writer.put(job, std::move(zeros));
    }
    ChunkReader reader(store_, codec_pool(), buffers_, inflight_,
                       std::move(scale_jobs), split_reader_window());
    while (auto item = reader.next()) {
      fn(item->job, std::span<amp_t>(item->buf));
      writer.put(item->job, std::move(item->buf));
    }
    writer.drain();
    telemetry_.cpu_phases.add("decompress", reader.decode_seconds());
    telemetry_.cpu_phases.add("recompress", writer.encode_seconds());
    telemetry_.pipeline_stall_seconds +=
        reader.wait_seconds() + writer.wait_seconds();
    charge_cpu_(codec_pool_
                    ? reader.wait_seconds() + writer.wait_seconds()
                    : (reader.decode_seconds() + writer.encode_seconds()) /
                          config_.cpu_codec_workers);
  }
  refresh_telemetry();
}

void StatePager::ingest_dense(std::span<const amp_t> amplitudes) {
  // The new state supersedes everything cached; drop (not write back) so
  // the direct stores below are the only source of truth.
  if (cache_) cache_->invalidate();
  {
    ChunkWriter writer(store_, codec_pool(), buffers_, inflight_,
                       codec_workers() > 1 ? codec_workers() - 1 : 0);
    for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
      std::vector<amp_t> buf = buffers_.get(store_.chunk_amps());
      const auto src = amplitudes.subspan(ci << store_.chunk_qubits(),
                                          store_.chunk_amps());
      std::copy(src.begin(), src.end(), buf.begin());
      inflight_.acquire(buf.size() * kAmpBytes);
      writer.put({ci, 0, false}, std::move(buf));
    }
    writer.drain();
    telemetry_.cpu_phases.add("recompress", writer.encode_seconds());
    telemetry_.pipeline_stall_seconds += writer.wait_seconds();
    charge_cpu_(codec_pool_ ? writer.wait_seconds()
                            : writer.encode_seconds() /
                                  config_.cpu_codec_workers);
  }
  refresh_telemetry();
}

void StatePager::export_dense(std::span<amp_t> amps) {
  MEMQ_CHECK(amps.size() == dim_of(n_qubits()), "export span size mismatch");
  const qubit_t c = store_.chunk_qubits();
  if (cache_) {
    // Cached copies may be dirtier (fresher) than the blobs, so the dense
    // view must come through the cache — sequentially, on the coordinator.
    SweepPlanGuard sweep_plan(cache_.get());
    for (index_t ci = 0; ci < store_.n_chunks(); ++ci)
      cache_->load(ci, amps.subspan(ci << c, store_.chunk_amps()));
    harvest_cache_timings();
    return;
  }
  if (codec_pool_) {
    // Every chunk decodes straight into its slice of the dense vector —
    // disjoint destinations, so a plain parallel_for is safe.
    CodecPool* pool = codec_pool_.get();
    ChunkStore* store = &store_;
    codec_pool_->threads().parallel_for(
        store_.n_chunks(), [amps, c, pool, store](std::size_t ci) {
          auto codec = pool->lease();
          store->load_with(*codec, ci,
                           amps.subspan(index_t{ci} << c,
                                        store->chunk_amps()));
        });
  } else {
    for (index_t ci = 0; ci < store_.n_chunks(); ++ci)
      store_.load(ci, amps.subspan(ci << c, store_.chunk_amps()));
  }
}

void StatePager::permute(const circuit::Gate& gate, index_t window_base,
                         index_t window_count) {
  apply_chunk_permutation(store_, gate, cache(), window_base, window_count);
}

void StatePager::fanout(index_t src_base, index_t dst_base, index_t count) {
  MEMQ_CHECK(count > 0 && src_base + count <= store_.n_chunks() &&
                 dst_base + count <= store_.n_chunks(),
             "fanout window out of range");
  MEMQ_CHECK(src_base + count <= dst_base || dst_base + count <= src_base,
             "fanout windows overlap");
  for (index_t i = 0; i < count; ++i) {
    MEMQ_CHECK(leased_.count(src_base + i) == 0 &&
                   leased_.count(dst_base + i) == 0,
               "fanout over a live lease");
  }
  if (cache_) {
    // Source blobs must reflect dirty residents before their bytes are
    // copied; destination residents would shadow the clones.
    cache_->flush();
    harvest_cache_timings();
    for (index_t i = 0; i < count; ++i) cache_->drop(dst_base + i);
  }
  for (index_t i = 0; i < count; ++i)
    store_.clone_chunk(src_base + i, dst_base + i);
}

// ---- cache plan forwarding ------------------------------------------------

void StatePager::set_plan(std::vector<StageAccess> plan) {
  if (cache_) cache_->set_plan(std::move(plan));
}

void StatePager::begin_stage(std::size_t stage_index) {
  if (cache_) cache_->begin_stage(stage_index);
}

void StatePager::clear_plan() {
  if (cache_) cache_->clear_plan();
}

// ---- checkpointing --------------------------------------------------------

void StatePager::checkpoint_to(std::ostream& out) {
  // Dirty cached chunks exist only in RAM until flushed; the checkpoint
  // must see them.
  if (cache_) {
    cache_->flush();
    harvest_cache_timings();
  }
  store_.save(out);
}

void StatePager::restore_from(std::istream& in) {
  if (cache_) cache_->invalidate();  // restored blobs replace cached data
  store_.restore(in);
}

}  // namespace memq::core
