// Weighted Pauli-sum observables (Hamiltonians) evaluated on any Engine —
// the quantity variational workloads (VQE/QAOA) loop over.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"

namespace memq::core {

struct PauliTerm {
  double coefficient = 0.0;
  std::string ops;  ///< "IXYZ" string, index 0 = qubit 0
};

/// H = sum_k c_k P_k.
struct PauliSum {
  std::vector<PauliTerm> terms;

  /// Transverse-field Ising model on a chain (open boundary):
  /// H = -J sum ZZ - h sum X.
  static PauliSum tfim_chain(qubit_t n, double j_coupling, double field);

  /// MaxCut cost observable sum_edges (1 - Z_a Z_b)/2 (constant folded in).
  static PauliSum maxcut(
      qubit_t n, const std::vector<std::pair<qubit_t, qubit_t>>& edges);
};

/// <psi| H |psi> on the engine's current state (chunk-wise; the dense state
/// is never materialized).
double expectation(Engine& engine, const PauliSum& hamiltonian);

}  // namespace memq::core
