// Per-stage metrics report: one row per offline-plan stage with the DELTAS
// of the run counters (chunk loads/stores, cache hits/misses/evictions/
// write-backs, spill I/O, device traffic) plus stall accounting — wall
// seconds the coordinator spent blocked on the codec pipeline, and modeled
// seconds the device(s) sat idle waiting for chunks.
//
// Rows are built by telescoping counter snapshots (each stage's "before" is
// the previous stage's "after"), so per-stage counter deltas sum EXACTLY to
// the whole-run delta in `total`. Seconds-type fields outside the stage loop
// (offline partitioning, the final device drain) belong to `total` only, so
// for those the row sum is a lower bound.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memq::core {

/// Offline prediction of a stage plan's data-movement cost under the
/// configured cache budget — computed by replaying the plan's chunk-access
/// stream through the exact Belady admission/eviction rules of
/// core/chunk_cache.cpp (see forecast_plan_cost there). The forecast assumes
/// every chunk is nonzero, so loads/misses are a dense upper bound on the
/// run's actuals (zero-chunk skips only remove work).
struct PlanCost {
  std::uint64_t chunk_loads = 0;   ///< chunk load ops the plan will issue
  std::uint64_t chunk_stores = 0;  ///< chunk store ops the plan will issue
  std::uint64_t cache_hits = 0;    ///< loads predicted to be served in-cache
  std::uint64_t cache_misses = 0;  ///< loads predicted to pay a decode
  std::uint64_t codec_encodes = 0; ///< stores predicted to pay an encode
                                   ///< (write-backs + pass-throughs + flush)
  std::uint64_t h2d_bytes = 0;     ///< modeled upload traffic (raw bytes)
  /// False when the access stream exceeded the forecast cap and the
  /// cache-less analytic bound was reported instead.
  bool exact = true;
  /// Predicted codec invocations (decodes + encodes).
  double codec_passes() const {
    return static_cast<double>(cache_misses + codec_encodes);
  }
};

struct StageRow {
  std::size_t index = 0;       ///< position in the stage plan
  const char* kind = "";       ///< "local" | "pair" | "permute" | "measure"
  std::size_t gates = 0;

  // ---- counter deltas (telescoped; rows sum exactly to `total`) ----------
  std::uint64_t chunk_loads = 0;
  std::uint64_t chunk_stores = 0;
  /// Raw amplitude bytes through the codec this stage (loads/stores times
  /// the chunk's uncompressed size; with decompress/recompress_seconds
  /// these give per-stage codec MB/s).
  std::uint64_t codec_decode_bytes = 0;
  std::uint64_t codec_encode_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_writebacks = 0;
  std::uint64_t spill_writes = 0;
  std::uint64_t spill_reads = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t zero_chunks_skipped = 0;

  // ---- seconds deltas ----------------------------------------------------
  double decompress_seconds = 0.0;  ///< real codec decode (summed workers)
  double recompress_seconds = 0.0;  ///< real codec encode (summed workers)
  double cpu_apply_seconds = 0.0;   ///< real CPU gate application
  double stall_seconds = 0.0;       ///< coordinator blocked on the pipeline
  double modeled_seconds = 0.0;     ///< modeled host-clock advance
  double device_busy_seconds = 0.0; ///< modeled busy, all streams/devices
  double kernel_busy_seconds = 0.0; ///< modeled busy, compute streams only
  /// Modeled seconds of compute capacity left idle during this stage:
  /// max(0, modeled_seconds * device_count - kernel_busy_seconds). High
  /// values with high stall_seconds mean the codec pipeline starved the
  /// device.
  double device_idle_seconds = 0.0;
};

struct StageReport {
  std::vector<StageRow> rows;
  /// Whole-run delta (first snapshot to after the final device drain);
  /// kind is "total".
  StageRow total;

  /// Offline prediction for this run's plan (planned-vs-actual in
  /// --stage-report / telemetry). All-zero for engines without a plan.
  PlanCost planned;
  /// True when the locality-aware plan optimizer produced the stage plan
  /// (--plan-opt on); false reproduces the legacy greedy cut.
  bool plan_optimized = false;
  /// Stage-kind census of the executed plan (PartitionStats, surfaced).
  std::uint64_t plan_local_stages = 0;
  std::uint64_t plan_pair_stages = 0;
  std::uint64_t plan_permute_stages = 0;
  std::uint64_t plan_measure_stages = 0;
  /// PartitionStats::gates_per_codec_pass() of the executed plan.
  double plan_gates_per_codec_pass = 0.0;

  /// Latency distribution of one hot-path histogram over the run window
  /// (percentiles are bucket-upper-edge bounds from common/metrics.hpp).
  struct LatencySummary {
    std::uint64_t count = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p95_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t max_ns = 0;
    double mean_ns = 0.0;
  };
  /// Run-window latency summaries keyed by histogram name (codec.decode_ns,
  /// codec.encode_ns, pager.lease_wait_ns, spill.read_ns, spill.write_ns,
  /// engine.stage_ns). Populated only for histograms that recorded samples —
  /// empty when metrics timing was never armed (see metrics::arm_timing).
  std::map<std::string, LatencySummary> latency;
};

}  // namespace memq::core
