// Parallel chunk-codec runtime — the real online-stage pipeline of paper
// §2 step 5 ("the CPU leverages idle cores to decompress the data chunks").
//
// Three pieces:
//   * CodecPool   — a ThreadPool plus a free-list of ChunkCodec instances
//                   (the codec holds scratch planes and is NOT thread-safe,
//                   so every concurrent task leases its own) and a shared
//                   free-list of decompressed-amplitude buffers.
//   * ChunkReader — streams a fixed job list of chunks in order, decoding up
//                   to `window` jobs ahead on the pool. The consumer always
//                   sees chunks in job order, so reductions stay
//                   deterministic for any thread count.
//   * ChunkWriter — fans recompress+store work out to the pool with a
//                   bounded backlog.
//
// The bounded in-flight window (paper challenge 2 — compression granularity
// vs. footprint spikes): every decompressed buffer is accounted in an
// InFlightLedger from decode-submit until recompress-complete or recycle.
// A stage that uses a reader with window W, a device pipeline of depth D and
// a writer with backlog P keeps at most W + D + P + 1 items resident; the
// engines size W and P so the total stays <= pipeline_depth + codec_threads
// work items (see memq_engine.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "compress/chunk_codec.hpp"

namespace memq::core {

class ChunkStore;

/// Ledger of decompressed amplitude bytes resident in pipeline buffers,
/// backed by an `inflight.bytes` gauge cell in the metrics registry. Feeds
/// the `peak_inflight_bytes` telemetry so the paper's memory-footprint
/// guarantee stays observable under concurrency.
class InFlightLedger {
 public:
  InFlightLedger()
      : g_(metrics::Registry::global().gauge("inflight.bytes")) {}

  void acquire(std::uint64_t bytes) noexcept {
    g_.add(static_cast<std::int64_t>(bytes));
  }
  void release(std::uint64_t bytes) noexcept {
    g_.sub(static_cast<std::int64_t>(bytes));
  }
  std::uint64_t current() const noexcept { return g_.value(); }
  std::uint64_t peak() const noexcept { return g_.peak(); }
  void reset() noexcept {
    g_.set(0);
    g_.reset_peak();
  }

 private:
  metrics::Gauge& g_;
};

/// Mutex-guarded free-list of amplitude buffers so the pipeline reuses a
/// fixed working set instead of churning MiB-sized allocations per chunk.
class BufferPool {
 public:
  std::vector<amp_t> get(std::size_t n_amps);
  void put(std::vector<amp_t> buf);
  void clear();

 private:
  std::mutex mutex_;
  std::vector<std::vector<amp_t>> free_;
};

/// Codec worker threads + leased per-task ChunkCodec instances.
class CodecPool {
 public:
  CodecPool(const compress::ChunkCodecConfig& config, std::size_t n_threads);

  std::size_t workers() const noexcept { return pool_.size(); }
  ThreadPool& threads() noexcept { return pool_; }

  template <typename F>
  auto submit(F&& f) {
    return pool_.submit(std::forward<F>(f));
  }

  struct CodecReturner {
    CodecPool* pool;
    void operator()(compress::ChunkCodec* codec) const {
      if (codec != nullptr) pool->recycle(codec);
    }
  };
  using CodecHandle = std::unique_ptr<compress::ChunkCodec, CodecReturner>;

  /// Borrows a codec for the calling task (creates one on first use per
  /// concurrency level); returned to the free-list when the handle dies.
  CodecHandle lease();

 private:
  void recycle(compress::ChunkCodec* codec);

  compress::ChunkCodecConfig config_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<compress::ChunkCodec>> codecs_;
  ThreadPool pool_;
};

/// One unit of chunk work: a single chunk `a`, or a co-loaded pair [a | b]
/// (pair-stage partner or Pauli-expectation partner) when `has_b` is set.
struct ChunkJob {
  index_t a = 0;
  index_t b = 0;
  bool has_b = false;
};

/// Ordered streaming decompressor over a fixed job list. With a pool,
/// decodes up to `window` jobs ahead; without one (serial mode) each next()
/// decodes synchronously. Items are always delivered in job order.
class ChunkReader {
 public:
  ChunkReader(ChunkStore& store, CodecPool* pool, BufferPool& buffers,
              InFlightLedger& ledger, std::vector<ChunkJob> jobs,
              std::size_t window);
  ~ChunkReader();

  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  struct Item {
    ChunkJob job;
    std::vector<amp_t> buf;  ///< owned; size = chunk_amps * (has_b ? 2 : 1)
    /// Serial mode: seconds this next() spent decoding (0 in pool mode,
    /// where decode time lands in decode_seconds() instead).
    double decode_seconds = 0.0;
  };

  /// Next job in order, or nullopt when exhausted. Throws (CorruptData...)
  /// if the decode failed. Pass consumed buffers back via recycle() — or
  /// hand them to a ChunkWriter — to keep the in-flight window bounded.
  std::optional<Item> next();

  /// Returns a consumed buffer to the pool and releases its in-flight bytes.
  void recycle(std::vector<amp_t> buf);

  /// Total codec seconds measured inside decode tasks (sum over workers).
  double decode_seconds() const noexcept { return decode_seconds_; }
  /// Seconds the coordinator spent blocked waiting for decodes (pool mode).
  double wait_seconds() const noexcept { return wait_seconds_; }

 private:
  struct Pending {
    ChunkJob job;
    std::vector<amp_t> buf;
    std::future<double> done;
  };

  void refill();

  ChunkStore& store_;
  CodecPool* pool_;
  BufferPool& buffers_;
  InFlightLedger& ledger_;
  std::vector<ChunkJob> jobs_;
  std::size_t next_job_ = 0;
  std::size_t window_;
  std::deque<Pending> pending_;
  double decode_seconds_ = 0.0;
  double wait_seconds_ = 0.0;
};

/// Parallel recompress+store with a bounded backlog: put() hands the buffer
/// to the pool and returns immediately; beyond `max_pending` queued stores
/// the oldest is reaped first. Serial mode stores synchronously.
class ChunkWriter {
 public:
  ChunkWriter(ChunkStore& store, CodecPool* pool, BufferPool& buffers,
              InFlightLedger& ledger, std::size_t max_pending);
  ~ChunkWriter();

  ChunkWriter(const ChunkWriter&) = delete;
  ChunkWriter& operator=(const ChunkWriter&) = delete;

  /// Encodes `buf` back into the store as job.a (and job.b from the second
  /// half when job.has_b). Returns the synchronous encode seconds in serial
  /// mode, 0.0 in pool mode.
  double put(const ChunkJob& job, std::vector<amp_t> buf);

  /// Waits until every queued store has landed; rethrows the first error.
  void drain();

  /// Total codec seconds measured inside encode tasks (or synchronously).
  double encode_seconds() const noexcept { return encode_seconds_; }
  /// Seconds the coordinator spent blocked on backlog/drain (pool mode).
  double wait_seconds() const noexcept { return wait_seconds_; }

 private:
  void reap_one();

  ChunkStore& store_;
  CodecPool* pool_;
  BufferPool& buffers_;
  InFlightLedger& ledger_;
  std::size_t max_pending_;
  std::deque<std::future<double>> pending_;
  double encode_seconds_ = 0.0;
  double wait_seconds_ = 0.0;
};

}  // namespace memq::core
