// Compressed chunk container — the paper's offline-stage data structure:
// "each data chunk of the state vector is compressed independently and
// stored in CPU memory with such compressed format."
//
// Since PR 3 the blob bytes themselves live behind the pluggable BlobStore
// interface (core/blob_store.hpp): RAM by default (the historical path,
// byte-for-byte), or a disk-spilling file backend with a resident-bytes
// budget. ChunkStore keeps the codec, the geometry, and the accounting.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "compress/chunk_codec.hpp"
#include "core/blob_store.hpp"

namespace memq::core {

class ChunkStore {
 public:
  /// `blob_store` defaults to RamBlobStore (historical behavior).
  ChunkStore(qubit_t n_qubits, qubit_t chunk_qubits,
             const compress::ChunkCodecConfig& codec_config,
             std::unique_ptr<BlobStore> blob_store = nullptr);

  qubit_t n_qubits() const noexcept { return n_qubits_; }
  qubit_t chunk_qubits() const noexcept { return chunk_qubits_; }
  index_t n_chunks() const noexcept { return index_t{1} << (n_qubits_ - chunk_qubits_); }
  index_t chunk_amps() const noexcept { return index_t{1} << chunk_qubits_; }
  std::uint64_t chunk_raw_bytes() const noexcept {
    return chunk_amps() * kAmpBytes;
  }

  /// Re-initializes every chunk to the |basis> computational state.
  void init_basis(index_t basis);

  /// Decompresses chunk `i` into `out` (must be chunk_amps() long).
  /// Uses the store's internal codec — single-threaded callers only.
  void load(index_t i, std::span<amp_t> out);

  /// Compresses `in` as the new contents of chunk `i`.
  /// Uses the store's internal codec — single-threaded callers only.
  void store(index_t i, std::span<const amp_t> in);

  /// Thread-safe variants for the parallel pipeline: safe to call
  /// concurrently for DISTINCT chunks (concurrent load_with of the SAME
  /// chunk is also fine — decoding does not mutate the blob). The caller
  /// supplies a worker-local codec (ChunkCodec holds scratch planes); byte
  /// and load/store counters are atomic, and spilling backends serialize
  /// file access internally.
  void load_with(compress::ChunkCodec& codec, index_t i, std::span<amp_t> out);
  void store_with(compress::ChunkCodec& codec, index_t i,
                  std::span<const amp_t> in);

  /// Swaps two chunks without decompressing (chunk-permutation stages).
  void swap_chunks(index_t i, index_t j);

  /// Replaces chunk `dst` with a byte-for-byte copy of chunk `src`'s blob —
  /// no codec pass on either side. Over a dedup backend the write hashes the
  /// bytes and refcount-shares `src`'s physical slot, so a batch fan-out of
  /// K identical prefixes costs one physical copy (PR 7 CoW splits them on
  /// the first divergent store). Counted in clones(), not loads()/stores().
  void clone_chunk(index_t src, index_t dst);

  /// Chunks copied at blob level by clone_chunk (batch fan-out traffic).
  std::uint64_t clones() const noexcept { return clones_.value(); }

  /// True if chunk `i` was stored as the all-zero fast path.
  bool is_zero_chunk(index_t i) const;

  /// True if chunk `i` materializes as a fill (all-zero or constant tag):
  /// its decode bypasses the compressor and is cheap enough to run inline.
  bool is_constant_chunk(index_t i) const;

  /// Blob-store content id of chunk `i`: equal for two chunks iff the
  /// backend byte-verified them onto one shared physical copy
  /// (BlobStore::kNoContentId when the backend does not dedup).
  std::uint64_t content_id(index_t i) const;

  /// Current total compressed footprint.
  std::uint64_t compressed_bytes() const noexcept { return bytes_g_.value(); }
  /// Largest footprint ever held.
  std::uint64_t peak_compressed_bytes() const noexcept {
    return bytes_g_.peak();
  }
  /// Largest compressed footprint ever resident in host RAM: equal to
  /// peak_compressed_bytes() for the RAM backend, capped by the blob budget
  /// for spilling backends. This is what peak_host_state_bytes charges.
  std::uint64_t peak_resident_bytes() const;
  /// Raw (uncompressed) state size, for ratio reporting.
  std::uint64_t raw_bytes() const noexcept {
    return n_chunks() * chunk_raw_bytes();
  }
  double compression_ratio() const noexcept {
    const std::uint64_t total = compressed_bytes();
    return total == 0 ? 0.0
                      : static_cast<double>(raw_bytes()) /
                            static_cast<double>(total);
  }

  std::uint64_t loads() const noexcept { return loads_.value(); }
  std::uint64_t stores() const noexcept { return stores_.value(); }
  /// Chunks stored through the zero/constant fill fast path.
  std::uint64_t constant_chunks_stored() const noexcept {
    return constant_stores_.value();
  }
  /// Chunks materialized (decoded) through the fill fast path.
  std::uint64_t constant_chunks_materialized() const noexcept {
    return constant_loads_.value();
  }
  /// Codec invocations skipped by the redundancy memo (content-addressed
  /// backends only): encodes reused from a byte-identical recent store
  /// plus decodes reused from a recent load of the same physical content.
  std::uint64_t codec_memo_hits() const noexcept {
    return memo_hits_.value();
  }

  const compress::ChunkCodecConfig& codec_config() const noexcept {
    return codec_.config();
  }

  /// The persistence backend (spill telemetry, backend name).
  const BlobStore& blob_store() const noexcept { return *blob_store_; }
  BlobStore::Stats blob_stats() const { return blob_store_->stats(); }

  /// Writes the compressed state (geometry header + every blob) to a
  /// checkpoint stream.
  void save(std::ostream& out) const;

  /// Restores a checkpoint written by save(); geometry and codec must match
  /// this store's configuration (throws CorruptData / InvalidArgument).
  void restore(std::istream& in);

 private:
  void account_store(std::int64_t delta_bytes);

  /// Last-K codec results, active only over content-addressed blob stores.
  /// Encode side: a store whose raw amplitudes byte-match a memoized entry
  /// reuses its encoded blob (encode is deterministic, so the bytes are
  /// what a fresh encode would produce — bit-identity holds with the memo
  /// on or off). Decode side: a load whose content token matches a
  /// memoized decode copies the amplitudes instead of re-decoding; tokens
  /// are never reused (BlobStore contract), so a match is always current.
  struct CodecMemo {
    struct Decoded {
      std::uint64_t token = BlobStore::kNoContentId;
      std::vector<amp_t> amps;
    };
    struct Encoded {
      std::uint64_t raw_hash = 0;
      std::vector<amp_t> raw;
      compress::ByteBuffer blob;
    };
    static constexpr std::size_t kWays = 4;
    std::mutex mutex;
    std::array<Decoded, kWays> decoded;
    std::array<Encoded, kWays> encoded;
    std::size_t decoded_next = 0;  ///< round-robin replacement cursor
    std::size_t encoded_next = 0;
  };

  qubit_t n_qubits_;
  qubit_t chunk_qubits_;
  compress::ChunkCodec codec_;
  std::unique_ptr<BlobStore> blob_store_;
  // Per-instance metrics cells (common/metrics.hpp): this store's exact
  // counts, aggregated by name into the process-wide registry snapshot.
  metrics::Gauge& bytes_g_;
  metrics::Counter& loads_;
  metrics::Counter& stores_;
  metrics::Counter& constant_stores_;
  metrics::Counter& constant_loads_;
  metrics::Counter& memo_hits_;
  metrics::Counter& clones_;
  metrics::Counter& decode_bytes_;
  metrics::Counter& encode_bytes_;
  metrics::Histogram& decode_ns_;
  metrics::Histogram& encode_ns_;
  CodecMemo memo_;
};

}  // namespace memq::core
