// Compressed chunk container — the paper's offline-stage data structure:
// "each data chunk of the state vector is compressed independently and
// stored in CPU memory with such compressed format."
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hpp"
#include "compress/chunk_codec.hpp"

namespace memq::core {

class ChunkStore {
 public:
  ChunkStore(qubit_t n_qubits, qubit_t chunk_qubits,
             const compress::ChunkCodecConfig& codec_config);

  qubit_t n_qubits() const noexcept { return n_qubits_; }
  qubit_t chunk_qubits() const noexcept { return chunk_qubits_; }
  index_t n_chunks() const noexcept { return index_t{1} << (n_qubits_ - chunk_qubits_); }
  index_t chunk_amps() const noexcept { return index_t{1} << chunk_qubits_; }
  std::uint64_t chunk_raw_bytes() const noexcept {
    return chunk_amps() * kAmpBytes;
  }

  /// Re-initializes every chunk to the |basis> computational state.
  void init_basis(index_t basis);

  /// Decompresses chunk `i` into `out` (must be chunk_amps() long).
  void load(index_t i, std::span<amp_t> out);

  /// Compresses `in` as the new contents of chunk `i`.
  void store(index_t i, std::span<const amp_t> in);

  /// Swaps two chunks without decompressing (chunk-permutation stages).
  void swap_chunks(index_t i, index_t j);

  /// True if chunk `i` was stored as the all-zero fast path.
  bool is_zero_chunk(index_t i) const;

  /// Current total compressed footprint.
  std::uint64_t compressed_bytes() const noexcept { return total_bytes_; }
  /// Largest footprint ever held.
  std::uint64_t peak_compressed_bytes() const noexcept { return peak_bytes_; }
  /// Raw (uncompressed) state size, for ratio reporting.
  std::uint64_t raw_bytes() const noexcept {
    return n_chunks() * chunk_raw_bytes();
  }
  double compression_ratio() const noexcept {
    return total_bytes_ == 0
               ? 0.0
               : static_cast<double>(raw_bytes()) /
                     static_cast<double>(total_bytes_);
  }

  std::uint64_t loads() const noexcept { return loads_; }
  std::uint64_t stores() const noexcept { return stores_; }

  const compress::ChunkCodecConfig& codec_config() const noexcept {
    return codec_.config();
  }

  /// Writes the compressed state (geometry header + every blob) to a
  /// checkpoint stream.
  void save(std::ostream& out) const;

  /// Restores a checkpoint written by save(); geometry and codec must match
  /// this store's configuration (throws CorruptData / InvalidArgument).
  void restore(std::istream& in);

 private:
  qubit_t n_qubits_;
  qubit_t chunk_qubits_;
  compress::ChunkCodec codec_;
  std::vector<compress::ByteBuffer> blobs_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace memq::core
