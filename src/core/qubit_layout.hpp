// Qubit layout optimization (challenge 3, the remapping answer).
//
// Chunk-local qubits are cheap (no pair loads, no extra traffic); high
// qubits are not. But which circuit qubits are "hot" is workload-dependent
// (e.g. Bernstein–Vazirani hammers its ancilla — the HIGHEST qubit). A
// layout maps logical circuit qubits to physical state-vector positions so
// the hottest non-diagonal targets sit in the low, chunk-local range —
// the same trick SV-Sim/HyQuas-class simulators use to cut communication.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"

namespace memq::core {

/// A bijection logical qubit -> physical position.
class QubitLayout {
 public:
  /// Identity layout on n qubits.
  explicit QubitLayout(qubit_t n);

  /// Heuristic layout for `circuit` with chunk size 2^chunk_qubits: qubits
  /// ranked by non-diagonal target activity; the hottest fill the local
  /// positions first. Diagonal-only and control-only qubits are cold (they
  /// never force pair stages).
  static QubitLayout optimize(const circuit::Circuit& circuit,
                              qubit_t chunk_qubits);

  /// Layout from an explicit logical->physical mapping (must be a
  /// permutation); used by checkpoint restore.
  static QubitLayout from_mapping(const std::vector<qubit_t>& physical_of);

  qubit_t n_qubits() const noexcept {
    return static_cast<qubit_t>(physical_of_.size());
  }
  bool is_identity() const noexcept { return identity_; }

  qubit_t physical(qubit_t logical) const { return physical_of_.at(logical); }
  qubit_t logical(qubit_t physical) const { return logical_of_.at(physical); }

  /// Rewrites every gate's qubits into physical positions.
  circuit::Circuit map_circuit(const circuit::Circuit& circuit) const;

  /// Basis-state index translation: logical amplitude index -> physical.
  index_t to_physical(index_t logical_index) const;
  index_t to_logical(index_t physical_index) const;

 private:
  std::vector<qubit_t> physical_of_;  // logical -> physical
  std::vector<qubit_t> logical_of_;   // physical -> logical
  bool identity_ = true;
};

/// Drops every uncontrolled SWAP from `circuit` (already in physical
/// coordinates) and re-routes the gates after it through the accumulated
/// relabeling instead — a SWAP in a chunked state vector is pure data
/// movement, so skipping it and renaming the wires is free. The relabeling
/// is folded into `layout` so index translation (amplitudes, sampling,
/// to_dense, checkpoints) keeps resolving to the right physical positions.
circuit::Circuit elide_swaps(const circuit::Circuit& circuit,
                             QubitLayout& layout);

}  // namespace memq::core
