#include "core/blob_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/trace.hpp"
#include "compress/chunk_codec.hpp"

namespace memq::core {

// ---------------------------------------------------------------- RAM ----

void RamBlobStore::resize(index_t n_blobs) {
  blobs_.assign(n_blobs, {});
}

const compress::ByteBuffer& RamBlobStore::read(index_t i,
                                               compress::ByteBuffer&) {
  return blobs_[i];
}

void RamBlobStore::write(index_t i, compress::ByteBuffer&& blob) {
  blobs_[i] = std::move(blob);
}

compress::ByteBuffer* RamBlobStore::inplace_slot(index_t i) {
  return &blobs_[i];
}

std::uint64_t RamBlobStore::size(index_t i) const { return blobs_[i].size(); }

bool RamBlobStore::is_zero(index_t i) const {
  return compress::ChunkCodec::is_zero_chunk(blobs_[i]);
}

void RamBlobStore::swap(index_t i, index_t j) {
  std::swap(blobs_[i], blobs_[j]);
}

// --------------------------------------------------------------- file ----

namespace {
/// File regions are rounded up so small blob-size jitter (lossy codecs
/// re-encode to slightly different lengths) reuses the region in place
/// instead of fragmenting the file.
constexpr std::uint64_t kRegionAlign = 512;

std::uint64_t round_region(std::uint64_t bytes) {
  return (bytes + kRegionAlign - 1) / kRegionAlign * kRegionAlign;
}
}  // namespace

FileBlobStore::FileBlobStore(std::uint64_t budget_bytes)
    : budget_(budget_bytes) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  path += "/memq-spill-XXXXXX";
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  fd_ = ::mkstemp(buf.data());
  MEMQ_CHECK(fd_ >= 0, "cannot create spill file under '"
                           << path << "': " << std::strerror(errno));
  // Unlink immediately: the file lives exactly as long as this process
  // holds the descriptor — no cleanup path, no leftover temp files.
  ::unlink(buf.data());
}

FileBlobStore::~FileBlobStore() {
  if (fd_ >= 0) ::close(fd_);
}

void FileBlobStore::resize(index_t n_blobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.assign(n_blobs, Entry{});
  lru_order_.clear();
  free_regions_.clear();
  file_end_ = 0;
  stats_.resident_bytes = 0;
}

void FileBlobStore::pwrite_fully(const void* data, std::uint64_t n,
                                 std::uint64_t off) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd_, p, n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      MEMQ_THROW(Error, "spill-file write failed: " << std::strerror(errno));
    }
    p += w;
    off += static_cast<std::uint64_t>(w);
    n -= static_cast<std::uint64_t>(w);
  }
}

void FileBlobStore::pread_fully(void* data, std::uint64_t n,
                                std::uint64_t off) const {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::pread(fd_, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      MEMQ_THROW(Error, "spill-file read failed: " << std::strerror(errno));
    }
    MEMQ_CHECK(r != 0, "spill file truncated");
    p += r;
    off += static_cast<std::uint64_t>(r);
    n -= static_cast<std::uint64_t>(r);
  }
}

void FileBlobStore::touch_locked(index_t i) {
  Entry& e = entries_[i];
  lru_order_.erase(e.lru);
  e.lru = ++lru_tick_;
  lru_order_.emplace(e.lru, i);
}

void FileBlobStore::ensure_region_locked(Entry& e) {
  if (e.file_cap >= e.bytes) return;
  if (e.file_cap > 0) free_regions_.emplace(e.file_cap, e.file_off);
  const std::uint64_t need = round_region(e.bytes);
  const auto it = free_regions_.lower_bound(need);
  if (it != free_regions_.end()) {
    e.file_cap = it->first;
    e.file_off = it->second;
    free_regions_.erase(it);
  } else {
    e.file_off = file_end_;
    e.file_cap = need;
    file_end_ += need;
    stats_.file_bytes = std::max(stats_.file_bytes, file_end_);
  }
}

void FileBlobStore::evict_locked(index_t i) {
  Entry& e = entries_[i];
  if (!e.on_disk) {
    MEMQ_TRACE_SCOPE("spill", "write",
                     trace::arg("blob", std::uint64_t{i}) + "," +
                         trace::arg("bytes", e.bytes));
    ensure_region_locked(e);
    pwrite_fully(e.ram.data(), e.bytes, e.file_off);
    e.on_disk = true;
    ++stats_.spill_writes;
    stats_.spill_bytes_written += e.bytes;
  }
  lru_order_.erase(e.lru);
  stats_.resident_bytes -= e.bytes;
  e.resident = false;
  e.ram = compress::ByteBuffer{};  // actually free the capacity
}

void FileBlobStore::make_room_locked(std::uint64_t need, index_t keep) {
  while (stats_.resident_bytes + need > budget_ && !lru_order_.empty()) {
    const auto oldest = lru_order_.begin();
    if (oldest->second == keep) {
      // `keep` is being rewritten; its old bytes are gone already, so the
      // only way it heads the LRU is as the sole resident — nothing to do.
      if (lru_order_.size() == 1) break;
      evict_locked(std::next(oldest)->second);
      continue;
    }
    evict_locked(oldest->second);
  }
}

void FileBlobStore::admit_locked(index_t i, compress::ByteBuffer&& bytes) {
  Entry& e = entries_[i];
  e.ram = std::move(bytes);
  e.resident = true;
  e.lru = ++lru_tick_;
  lru_order_.emplace(e.lru, i);
  stats_.resident_bytes += e.bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
}

const compress::ByteBuffer& FileBlobStore::read(index_t i,
                                                compress::ByteBuffer& scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[i];
  if (e.resident) {
    touch_locked(i);
    // Copy out: the resident buffer may be evicted (freed) by a concurrent
    // write to a different blob the moment the lock drops.
    scratch = e.ram;
    return scratch;
  }
  MEMQ_CHECK(e.on_disk, "blob " << i << " read before first write");
  {
    MEMQ_TRACE_SCOPE("spill", "read",
                     trace::arg("blob", std::uint64_t{i}) + "," +
                         trace::arg("bytes", e.bytes));
    scratch.resize(e.bytes);
    pread_fully(scratch.data(), e.bytes, e.file_off);
  }
  ++stats_.spill_reads;
  stats_.spill_bytes_read += e.bytes;
  if (e.bytes <= budget_ && budget_ > 0) {
    // Promote resident-clean: the disk copy stays current, so a later
    // eviction of this blob costs nothing.
    make_room_locked(e.bytes, i);
    admit_locked(i, compress::ByteBuffer(scratch));
  }
  return scratch;
}

void FileBlobStore::write(index_t i, compress::ByteBuffer&& blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[i];
  const bool zero = compress::ChunkCodec::is_zero_chunk(blob);
  if (e.resident) {
    lru_order_.erase(e.lru);
    stats_.resident_bytes -= e.bytes;
    e.resident = false;
    e.ram = compress::ByteBuffer{};
  }
  e.bytes = blob.size();
  e.zero = zero;
  e.on_disk = false;  // any disk copy is now stale (region stays reserved)
  if (e.bytes <= budget_ && budget_ > 0) {
    make_room_locked(e.bytes, i);
    admit_locked(i, std::move(blob));
  } else {
    // Oversized (or zero-budget): spill straight through.
    MEMQ_TRACE_SCOPE("spill", "write",
                     trace::arg("blob", std::uint64_t{i}) + "," +
                         trace::arg("bytes", e.bytes));
    ensure_region_locked(e);
    pwrite_fully(blob.data(), e.bytes, e.file_off);
    e.on_disk = true;
    ++stats_.spill_writes;
    stats_.spill_bytes_written += e.bytes;
  }
}

std::uint64_t FileBlobStore::size(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_[i].bytes;
}

bool FileBlobStore::is_zero(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_[i].zero;
}

void FileBlobStore::swap(index_t i, index_t j) {
  if (i == j) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::swap(entries_[i], entries_[j]);
  // LRU ticks travelled with the entries; repoint them at the new indices.
  if (entries_[i].resident) lru_order_[entries_[i].lru] = i;
  if (entries_[j].resident) lru_order_[entries_[j].lru] = j;
}

BlobStore::Stats FileBlobStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace memq::core
