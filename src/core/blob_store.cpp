#include "core/blob_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/trace.hpp"
#include "compress/chunk_codec.hpp"

namespace memq::core {

// ---------------------------------------------------------------- RAM ----

void RamBlobStore::resize(index_t n_blobs) {
  blobs_.assign(n_blobs, {});
}

const compress::ByteBuffer& RamBlobStore::read(index_t i,
                                               compress::ByteBuffer&) {
  return blobs_[i];
}

void RamBlobStore::write(index_t i, compress::ByteBuffer&& blob) {
  blobs_[i] = std::move(blob);
}

compress::ByteBuffer* RamBlobStore::inplace_slot(index_t i) {
  return &blobs_[i];
}

std::uint64_t RamBlobStore::size(index_t i) const { return blobs_[i].size(); }

bool RamBlobStore::is_zero(index_t i) const {
  return compress::ChunkCodec::is_zero_chunk(blobs_[i]);
}

bool RamBlobStore::is_constant(index_t i) const {
  return compress::ChunkCodec::is_constant_chunk(blobs_[i]);
}

void RamBlobStore::free_blob(index_t i) {
  blobs_[i] = compress::ByteBuffer{};
}

void RamBlobStore::swap(index_t i, index_t j) {
  std::swap(blobs_[i], blobs_[j]);
}

// --------------------------------------------------------------- file ----

namespace {
/// File regions are rounded up so small blob-size jitter (lossy codecs
/// re-encode to slightly different lengths) reuses the region in place
/// instead of fragmenting the file.
constexpr std::uint64_t kRegionAlign = 512;

std::uint64_t round_region(std::uint64_t bytes) {
  return (bytes + kRegionAlign - 1) / kRegionAlign * kRegionAlign;
}

/// Spill I/O errors worth retrying: the device may recover. ENOSPC is not
/// here on purpose — a full disk stays full, so it degrades immediately.
bool transient_io_errno(int err) { return err == EIO || err == EAGAIN; }

constexpr int kMaxIoRetries = 3;

void retry_backoff(int attempt) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1 << (attempt - 1)));
}

/// The mmap window grows in whole multiples of this (few mremap-equivalent
/// events, and posix_fallocate keeps every mapped page backed by real
/// blocks so a full disk surfaces as a clean error instead of SIGBUS).
constexpr std::uint64_t kMapGrowQuantum = std::uint64_t{1} << 20;  // 1 MiB

SpillIo resolve_spill_io(SpillIo io) {
  if (io != SpillIo::kAuto) return io;
  const char* env = std::getenv("MEMQ_SPILL_IO");
  if (env != nullptr && std::string(env) == "pread") return SpillIo::kPread;
  return SpillIo::kMmap;
}
}  // namespace

FileBlobStore::FileBlobStore(std::uint64_t budget_bytes, SpillIo io)
    : budget_(budget_bytes),
      io_(resolve_spill_io(io)),
      spill_writes_(metrics::Registry::global().counter("blob.spill_writes")),
      spill_reads_(metrics::Registry::global().counter("blob.spill_reads")),
      spill_bytes_written_(
          metrics::Registry::global().counter("blob.spill_bytes_written")),
      spill_bytes_read_(
          metrics::Registry::global().counter("blob.spill_bytes_read")),
      io_retries_(metrics::Registry::global().counter("blob.io_retries")),
      degraded_c_(
          metrics::Registry::global().counter("blob.degraded_to_ram")),
      resident_g_(metrics::Registry::global().gauge("blob.resident_bytes")),
      file_bytes_g_(metrics::Registry::global().gauge("blob.file_bytes")),
      spill_read_ns_(metrics::Registry::global().histogram("spill.read_ns")),
      spill_write_ns_(
          metrics::Registry::global().histogram("spill.write_ns")) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  path += "/memq-spill-XXXXXX";
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  fd_ = ::mkstemp(buf.data());
  MEMQ_CHECK(fd_ >= 0, "cannot create spill file under '"
                           << path << "': " << std::strerror(errno));
  path_ = buf.data();  // kept for error messages after the unlink below
  // Unlink immediately: the file lives exactly as long as this process
  // holds the descriptor — no cleanup path, no leftover temp files.
  ::unlink(buf.data());
}

FileBlobStore::~FileBlobStore() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
  if (fd_ >= 0) ::close(fd_);
}

void FileBlobStore::mmap_fail_locked(const std::string& why) {
  if (mmap_failed_) return;
  mmap_failed_ = true;
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
  MEMQ_LOG_WARN << "FileBlobStore: mmap spill I/O on '" << path_
                << "' failed (" << why
                << "); falling back to pread/pwrite for this store";
  MEMQ_TRACE_INSTANT("fault", "blob.mmap.fallback", trace::arg("why", why));
}

bool FileBlobStore::ensure_mapped_locked(std::uint64_t need_end) {
  if (io_ == SpillIo::kPread || mmap_failed_) return false;
  if (need_end <= map_len_) return true;
  std::uint64_t new_len =
      std::max((need_end + kMapGrowQuantum - 1) / kMapGrowQuantum *
                   kMapGrowQuantum,
               2 * map_len_);
  if (MEMQ_FAULT("blob.mmap.map")) {
    mmap_fail_locked("injected map failure");
    return false;
  }
  // Pre-allocate the blocks: with every mapped page backed, ENOSPC shows up
  // here as an error code, never later as SIGBUS inside a memcpy.
  int rc = ::posix_fallocate(fd_, 0, static_cast<off_t>(new_len));
  if (rc == EOPNOTSUPP || rc == EINVAL) {
    // Filesystem without fallocate: extend sparsely instead. (Accepts the
    // theoretical late-ENOSPC page fault; spill files live on tmpfs or
    // local scratch in practice.)
    rc = ::ftruncate(fd_, static_cast<off_t>(new_len)) == 0 ? 0 : errno;
  }
  if (rc != 0) {
    mmap_fail_locked(std::string("allocate: ") + std::strerror(rc));
    return false;
  }
  void* m = ::mmap(nullptr, new_len, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                   0);
  if (m == MAP_FAILED) {
    mmap_fail_locked(std::string("mmap: ") + std::strerror(errno));
    return false;
  }
  if (map_ != nullptr) ::munmap(map_, map_len_);
  map_ = static_cast<char*>(m);
  map_len_ = new_len;
  // Blob access order is LRU-driven, not sequential — tell readahead so.
  ::madvise(map_, map_len_, MADV_RANDOM);
  return true;
}

void FileBlobStore::mmap_write(const void* data, std::uint64_t n,
                               std::uint64_t off) {
  int attempts = 0;
  for (;;) {
    if (MEMQ_FAULT("blob.write.enospc"))
      MEMQ_THROW_IO("spill-mmap write failed: '"
                        << path_ << "' offset " << off << ", " << n
                        << " bytes: " << std::strerror(ENOSPC),
                    ENOSPC);
    if (MEMQ_FAULT("blob.write.eio")) {
      if (attempts < kMaxIoRetries) {
        ++attempts;
        io_retries_.add();
        MEMQ_TRACE_INSTANT("fault", "blob.write.retry",
                           trace::arg("attempt", std::uint64_t(attempts)));
        retry_backoff(attempts);
        continue;
      }
      MEMQ_THROW_IO("spill-mmap write failed: '"
                        << path_ << "' offset " << off << ", " << n
                        << " bytes: " << std::strerror(EIO),
                    EIO);
    }
    std::memcpy(map_ + off, data, n);
    map_dirty_ = true;
    return;
  }
}

void FileBlobStore::mmap_read(void* data, std::uint64_t n,
                              std::uint64_t off) {
  int attempts = 0;
  for (;;) {
    if (MEMQ_FAULT("blob.read.eio") || MEMQ_FAULT("blob.read.short")) {
      if (attempts < kMaxIoRetries) {
        ++attempts;
        io_retries_.add();
        MEMQ_TRACE_INSTANT("fault", "blob.read.retry",
                           trace::arg("attempt", std::uint64_t(attempts)));
        retry_backoff(attempts);
        continue;
      }
      MEMQ_THROW_IO("spill-mmap read failed: '"
                        << path_ << "' offset " << off << ", " << n
                        << " bytes: " << std::strerror(EIO),
                    EIO);
    }
    std::memcpy(data, map_ + off, n);
    return;
  }
}

void FileBlobStore::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_ == nullptr || !map_dirty_) return;
  // Best-effort durability barrier for checkpoints: the spill file is
  // scratch (already unlinked), so a failed msync costs nothing but the
  // page-cache hint — warn, don't throw.
  if (::msync(map_, map_len_, MS_SYNC) != 0) {
    MEMQ_LOG_WARN << "FileBlobStore: msync('" << path_
                  << "') failed: " << std::strerror(errno);
  }
  map_dirty_ = false;
}

void FileBlobStore::resize(index_t n_blobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.assign(n_blobs, Entry{});
  lru_order_.clear();
  free_regions_.clear();
  file_end_ = 0;
  resident_g_.set(0);
}

void FileBlobStore::pwrite_fully(const void* data, std::uint64_t n,
                                 std::uint64_t off) {
  const char* p = static_cast<const char*>(data);
  const std::uint64_t total = n;
  const std::uint64_t base = off;
  int attempts = 0;
  while (n > 0) {
    ssize_t w;
    if (MEMQ_FAULT("blob.write.enospc")) {
      w = -1;
      errno = ENOSPC;
    } else if (MEMQ_FAULT("blob.write.eio")) {
      w = -1;
      errno = EIO;
    } else {
      w = ::pwrite(fd_, p, n, static_cast<off_t>(off));
    }
    if (w < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (transient_io_errno(err) && attempts < kMaxIoRetries) {
        ++attempts;
        io_retries_.add();
        MEMQ_TRACE_INSTANT("fault", "blob.write.retry",
                           trace::arg("attempt", std::uint64_t(attempts)));
        retry_backoff(attempts);
        continue;
      }
      MEMQ_THROW_IO("spill-file write failed: '"
                              << path_ << "' offset " << off << ", " << n
                              << " of " << total << " bytes (region at "
                              << base << "): " << std::strerror(err),
                 err);
    }
    p += w;
    off += static_cast<std::uint64_t>(w);
    n -= static_cast<std::uint64_t>(w);
  }
}

void FileBlobStore::pread_fully(void* data, std::uint64_t n,
                                std::uint64_t off) {
  char* p = static_cast<char*>(data);
  const std::uint64_t total = n;
  const std::uint64_t base = off;
  int attempts = 0;
  while (n > 0) {
    ssize_t r;
    if (MEMQ_FAULT("blob.read.eio")) {
      r = -1;
      errno = EIO;
    } else if (MEMQ_FAULT("blob.read.short")) {
      r = 0;  // premature EOF, as if the file were truncated under us
    } else {
      r = ::pread(fd_, p, n, static_cast<off_t>(off));
    }
    if (r < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (transient_io_errno(err) && attempts < kMaxIoRetries) {
        ++attempts;
        io_retries_.add();
        MEMQ_TRACE_INSTANT("fault", "blob.read.retry",
                           trace::arg("attempt", std::uint64_t(attempts)));
        retry_backoff(attempts);
        continue;
      }
      MEMQ_THROW_IO("spill-file read failed: '"
                              << path_ << "' offset " << off << ", " << n
                              << " of " << total << " bytes (region at "
                              << base << "): " << std::strerror(err),
                 err);
    }
    if (r == 0) {
      // Premature EOF. Retry like a transient error (the injection harness
      // proves the path); a genuinely truncated file exhausts the retries
      // and surfaces with full context.
      if (attempts < kMaxIoRetries) {
        ++attempts;
        io_retries_.add();
        MEMQ_TRACE_INSTANT("fault", "blob.read.retry",
                           trace::arg("attempt", std::uint64_t(attempts)));
        retry_backoff(attempts);
        continue;
      }
      MEMQ_THROW_IO("spill-file read truncated: '"
                              << path_ << "' offset " << off << ", " << n
                              << " of " << total << " bytes (region at "
                              << base << ") past EOF",
                 0);
    }
    p += r;
    off += static_cast<std::uint64_t>(r);
    n -= static_cast<std::uint64_t>(r);
  }
}

void FileBlobStore::touch_locked(index_t i) {
  Entry& e = entries_[i];
  lru_order_.erase(e.lru);
  e.lru = ++lru_tick_;
  lru_order_.emplace(e.lru, i);
}

void FileBlobStore::degrade_locked(const std::string& why) {
  if (degraded_) return;
  degraded_ = true;
  degraded_c_.add();
  MEMQ_LOG_WARN << "FileBlobStore: spill to '" << path_
                << "' failing persistently (" << why
                << "); degrading to RAM residency — the " << budget_
                << "-byte blob budget is no longer enforced";
  MEMQ_TRACE_INSTANT("fault", "blob.degraded_to_ram", trace::arg("why", why));
}

void FileBlobStore::ensure_region_locked(Entry& e) {
  if (e.file_cap >= e.bytes) return;
  // The fault check must come before any bookkeeping mutation: throwing
  // after the old region moved to the free list would leave the entry
  // pointing at a region another blob may reuse.
  if (MEMQ_FAULT("blob.allocate"))
    MEMQ_THROW_IO("spill-file region allocation failed: '"
                            << path_ << "' growing to "
                            << file_end_ + round_region(e.bytes)
                            << " bytes: " << std::strerror(ENOSPC),
               ENOSPC);
  if (e.file_cap > 0) free_regions_.emplace(e.file_cap, e.file_off);
  const std::uint64_t need = round_region(e.bytes);
  const auto it = free_regions_.lower_bound(need);
  if (it != free_regions_.end()) {
    e.file_cap = it->first;
    e.file_off = it->second;
    free_regions_.erase(it);
  } else {
    e.file_off = file_end_;
    e.file_cap = need;
    file_end_ += need;
    if (file_end_ > file_bytes_g_.value()) file_bytes_g_.set(file_end_);
  }
}

void FileBlobStore::evict_locked(index_t i) {
  Entry& e = entries_[i];
  if (!e.on_disk) {
    MEMQ_TRACE_SCOPE("spill", "write",
                     trace::arg("blob", std::uint64_t{i}) + "," +
                         trace::arg("bytes", e.bytes));
    metrics::ScopedTimer timer(spill_write_ns_);
    try {
      ensure_region_locked(e);
      if (ensure_mapped_locked(e.file_off + e.file_cap))
        mmap_write(e.ram.data(), e.bytes, e.file_off);
      else
        pwrite_fully(e.ram.data(), e.bytes, e.file_off);
    } catch (const IoError& err) {
      // The resident copy is the only current one — dropping it would lose
      // state. Keep the blob resident (over budget) and stop spilling.
      degrade_locked(err.what());
      return;
    }
    e.on_disk = true;
    spill_writes_.add();
    spill_bytes_written_.add(e.bytes);
  }
  lru_order_.erase(e.lru);
  resident_g_.sub(static_cast<std::int64_t>(e.bytes));
  e.resident = false;
  e.ram = compress::ByteBuffer{};  // actually free the capacity
}

void FileBlobStore::make_room_locked(std::uint64_t need, index_t keep) {
  while (!degraded_ && resident_g_.value() + need > budget_ &&
         !lru_order_.empty()) {
    const auto oldest = lru_order_.begin();
    if (oldest->second == keep) {
      // `keep` is being rewritten; its old bytes are gone already, so the
      // only way it heads the LRU is as the sole resident — nothing to do.
      if (lru_order_.size() == 1) break;
      evict_locked(std::next(oldest)->second);
      continue;
    }
    evict_locked(oldest->second);
  }
}

void FileBlobStore::admit_locked(index_t i, compress::ByteBuffer&& bytes) {
  Entry& e = entries_[i];
  e.ram = std::move(bytes);
  e.resident = true;
  e.lru = ++lru_tick_;
  lru_order_.emplace(e.lru, i);
  resident_g_.add(static_cast<std::int64_t>(e.bytes));
}

const compress::ByteBuffer& FileBlobStore::read(index_t i,
                                                compress::ByteBuffer& scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[i];
  if (e.resident) {
    touch_locked(i);
    // Copy out: the resident buffer may be evicted (freed) by a concurrent
    // write to a different blob the moment the lock drops.
    scratch = e.ram;
    return scratch;
  }
  MEMQ_CHECK(e.on_disk, "blob " << i << " read before first write");
  {
    MEMQ_TRACE_SCOPE("spill", "read",
                     trace::arg("blob", std::uint64_t{i}) + "," +
                         trace::arg("bytes", e.bytes));
    metrics::ScopedTimer timer(spill_read_ns_);
    scratch.resize(e.bytes);
    // A mapped window always covers every allocated region (it only grows),
    // but after a mid-run map failure later regions exist only on disk —
    // MAP_SHARED over the same fd keeps the two views coherent either way.
    if (map_ != nullptr && !mmap_failed_ &&
        e.file_off + e.bytes <= map_len_)
      mmap_read(scratch.data(), e.bytes, e.file_off);
    else
      pread_fully(scratch.data(), e.bytes, e.file_off);
  }
  spill_reads_.add();
  spill_bytes_read_.add(e.bytes);
  if (degraded_ || (e.bytes <= budget_ && budget_ > 0)) {
    // Promote resident-clean: the disk copy stays current, so a later
    // eviction of this blob costs nothing. In degraded mode everything
    // promotes — the file is failing, so stop depending on it.
    make_room_locked(e.bytes, i);
    admit_locked(i, compress::ByteBuffer(scratch));
  }
  return scratch;
}

void FileBlobStore::write(index_t i, compress::ByteBuffer&& blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[i];
  const bool zero = compress::ChunkCodec::is_zero_chunk(blob);
  const bool constant = compress::ChunkCodec::is_constant_chunk(blob);
  if (e.resident) {
    lru_order_.erase(e.lru);
    resident_g_.sub(static_cast<std::int64_t>(e.bytes));
    e.resident = false;
    e.ram = compress::ByteBuffer{};
  }
  e.bytes = blob.size();
  e.zero = zero;
  e.constant = constant;
  e.on_disk = false;  // any disk copy is now stale (region stays reserved)
  if (degraded_ || (e.bytes <= budget_ && budget_ > 0)) {
    make_room_locked(e.bytes, i);
    admit_locked(i, std::move(blob));
  } else {
    // Oversized (or zero-budget): spill straight through.
    MEMQ_TRACE_SCOPE("spill", "write",
                     trace::arg("blob", std::uint64_t{i}) + "," +
                         trace::arg("bytes", e.bytes));
    metrics::ScopedTimer timer(spill_write_ns_);
    try {
      ensure_region_locked(e);
      if (ensure_mapped_locked(e.file_off + e.file_cap))
        mmap_write(blob.data(), e.bytes, e.file_off);
      else
        pwrite_fully(blob.data(), e.bytes, e.file_off);
    } catch (const IoError& err) {
      // `blob` is the only current copy; losing it here would silently
      // corrupt the state. Keep it resident and degrade instead.
      degrade_locked(err.what());
      admit_locked(i, std::move(blob));
      return;
    }
    e.on_disk = true;
    spill_writes_.add();
    spill_bytes_written_.add(e.bytes);
  }
}

std::uint64_t FileBlobStore::size(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_[i].bytes;
}

bool FileBlobStore::is_zero(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_[i].zero;
}

bool FileBlobStore::is_constant(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_[i].constant;
}

void FileBlobStore::free_blob(index_t i) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[i];
  if (e.resident) {
    lru_order_.erase(e.lru);
    resident_g_.sub(static_cast<std::int64_t>(e.bytes));
  }
  // Return the file region to the best-fit free list EXACTLY once: the
  // reset below clears file_cap, so a repeated free (or a later write) can
  // never re-donate the same region and hand one offset to two blobs.
  if (e.file_cap > 0) free_regions_.emplace(e.file_cap, e.file_off);
  e = Entry{};
}

void FileBlobStore::swap(index_t i, index_t j) {
  if (i == j) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::swap(entries_[i], entries_[j]);
  // LRU ticks travelled with the entries; repoint them at the new indices.
  if (entries_[i].resident) lru_order_[entries_[i].lru] = i;
  if (entries_[j].resident) lru_order_[entries_[j].lru] = j;
}

BlobStore::Stats FileBlobStore::stats() const {
  Stats s;
  s.spill_writes = spill_writes_.value();
  s.spill_reads = spill_reads_.value();
  s.spill_bytes_written = spill_bytes_written_.value();
  s.spill_bytes_read = spill_bytes_read_.value();
  s.resident_bytes = resident_g_.value();
  s.peak_resident_bytes = resident_g_.peak();
  s.file_bytes = file_bytes_g_.value();
  s.io_retries = io_retries_.value();
  s.degraded_to_ram = degraded_c_.value();
  return s;
}

// -------------------------------------------------------------- dedup ----

DedupBlobStore::DedupBlobStore(std::unique_ptr<BlobStore> inner)
    : inner_(std::move(inner)),
      name_(std::string("dedup+") + inner_->name()),
      dedup_hits_(metrics::Registry::global().counter("blob.dedup_hits")),
      dedup_bytes_saved_(
          metrics::Registry::global().counter("blob.dedup_bytes_saved")),
      cow_breaks_(metrics::Registry::global().counter("blob.cow_breaks")),
      physical_g_(metrics::Registry::global().gauge("blob.physical_bytes")) {}

void DedupBlobStore::resize(index_t n_blobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Every live physical slot is held by >= 1 logical blob and a write only
  // allocates while its own logical slot is detached, so physical demand
  // never exceeds the logical count: the inner store can be sized 1:1.
  inner_->resize(n_blobs);
  logical_.assign(n_blobs, kUnmapped);
  phys_.assign(n_blobs, PhysMeta{});
  by_hash_.clear();
  free_phys_.clear();
  next_phys_ = 0;
  physical_g_.set(0);
}

index_t DedupBlobStore::alloc_phys_locked() {
  if (!free_phys_.empty()) {
    const index_t p = free_phys_.back();
    free_phys_.pop_back();
    return p;
  }
  MEMQ_CHECK(next_phys_ < static_cast<index_t>(phys_.size()),
             "dedup: physical slots exhausted");
  return next_phys_++;
}

void DedupBlobStore::release_phys_locked(index_t p) {
  PhysMeta& m = phys_[p];
  if (--m.refcount > 0) return;
  const auto [lo, hi] = by_hash_.equal_range(m.hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == p) {
      by_hash_.erase(it);
      break;
    }
  }
  physical_g_.sub(static_cast<std::int64_t>(m.bytes));
  inner_->free_blob(p);
  m = PhysMeta{};
  free_phys_.push_back(p);
}

index_t DedupBlobStore::find_match_locked(
    std::uint64_t hash, const compress::ByteBuffer& blob) {
  const auto [lo, hi] = by_hash_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    const index_t p = it->second;
    if (phys_[p].bytes != blob.size()) continue;
    // Mandatory verify-on-match: a 64-bit hash equality alone must never
    // alias amplitudes — the candidate's actual bytes decide.
    const compress::ByteBuffer& have = inner_->read(p, cmp_scratch_);
    if (std::equal(have.begin(), have.end(), blob.begin())) return p;
  }
  return kUnmapped;
}

const compress::ByteBuffer& DedupBlobStore::read(
    index_t i, compress::ByteBuffer& scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t p = logical_[i];
  MEMQ_CHECK(p != kUnmapped, "blob " << i << " read before first write");
  return inner_->read(p, scratch);
}

void DedupBlobStore::write(index_t i, compress::ByteBuffer&& blob) {
  const std::uint64_t hash = common::fnv1a64(blob);
  const bool zero = compress::ChunkCodec::is_zero_chunk(blob);
  const bool constant = compress::ChunkCodec::is_constant_chunk(blob);
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t old = logical_[i];
  const index_t match = find_match_locked(hash, blob);
  if (match != kUnmapped) {
    if (match != old) {
      dedup_hits_.add();
      dedup_bytes_saved_.add(blob.size());
      MEMQ_TRACE_INSTANT("spill", "dedup.hit",
                         trace::arg("blob", std::uint64_t{i}) + "," +
                             trace::arg("bytes", std::uint64_t{blob.size()}));
      ++phys_[match].refcount;
      logical_[i] = match;
      if (old != kUnmapped) release_phys_locked(old);
    }
    return;  // identical content already stored: nothing physical to do
  }
  if (old != kUnmapped && phys_[old].refcount == 1) {
    // Exclusive owner: overwrite the physical slot in place.
    PhysMeta& m = phys_[old];
    const auto [lo, hi] = by_hash_.equal_range(m.hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == old) {
        by_hash_.erase(it);
        break;
      }
    }
    physical_g_.add(static_cast<std::int64_t>(blob.size()) -
                    static_cast<std::int64_t>(m.bytes));
    m = PhysMeta{1, hash, blob.size(), ++next_token_, zero, constant};
    by_hash_.emplace(hash, old);
    inner_->write(old, std::move(blob));
    return;
  }
  if (old != kUnmapped) {
    // Divergent write to a shared slot: copy-on-write break. The other
    // holders keep the original; this writer moves to a fresh slot.
    cow_breaks_.add();
    MEMQ_TRACE_INSTANT("spill", "dedup.cow",
                       trace::arg("blob", std::uint64_t{i}));
    --phys_[old].refcount;
  }
  const index_t p = alloc_phys_locked();
  physical_g_.add(static_cast<std::int64_t>(blob.size()));
  phys_[p] = PhysMeta{1, hash, blob.size(), ++next_token_, zero, constant};
  by_hash_.emplace(hash, p);
  logical_[i] = p;
  inner_->write(p, std::move(blob));
}

std::uint64_t DedupBlobStore::size(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t p = logical_[i];
  return p == kUnmapped ? 0 : phys_[p].bytes;
}

bool DedupBlobStore::is_zero(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t p = logical_[i];
  return p != kUnmapped && phys_[p].zero;
}

bool DedupBlobStore::is_constant(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t p = logical_[i];
  return p != kUnmapped && (phys_[p].zero || phys_[p].constant);
}

std::uint64_t DedupBlobStore::content_id(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t p = logical_[i];
  // The slot's fill token IS the id: two logical blobs report the same id
  // iff they were byte-verified onto one copy, so equality is
  // collision-proof (unlike exposing the raw hash) — and tokens are never
  // reused, so a stale remembered id can never match recycled content.
  return p == kUnmapped ? kNoContentId : phys_[p].token;
}

void DedupBlobStore::free_blob(index_t i) {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t p = logical_[i];
  if (p == kUnmapped) return;
  logical_[i] = kUnmapped;
  release_phys_locked(p);
}

void DedupBlobStore::swap(index_t i, index_t j) {
  if (i == j) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::swap(logical_[i], logical_[j]);  // O(1): bytes never move
}

index_t DedupBlobStore::physical_blobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_phys_ - static_cast<index_t>(free_phys_.size());
}

std::uint64_t DedupBlobStore::refcount(index_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t p = logical_[i];
  return p == kUnmapped ? 0 : phys_[p].refcount;
}

BlobStore::Stats DedupBlobStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = inner_->stats();
  s.dedup_hits = dedup_hits_.value();
  s.dedup_bytes_saved = dedup_bytes_saved_.value();
  s.cow_breaks = cow_breaks_.value();
  if (!inner_->tracks_residency()) {
    // RAM inner store keeps every physical byte resident: report the
    // deduped physical footprint as the honest residency numbers.
    s.resident_bytes = physical_g_.value();
    s.peak_resident_bytes = physical_g_.peak();
  }
  return s;
}

}  // namespace memq::core
