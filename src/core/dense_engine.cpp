#include "core/dense_engine.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace memq::core {

DenseEngine::DenseEngine(qubit_t n_qubits, const EngineConfig& config)
    : sim_(n_qubits, config.seed) {
  telemetry_.peak_host_state_bytes = state_bytes(n_qubits);
  telemetry_.final_compression_ratio = 1.0;
}

void DenseEngine::reset() {
  sim_.reset();
  const auto peak = telemetry_.peak_host_state_bytes;
  telemetry_ = {};
  telemetry_.peak_host_state_bytes = peak;
  telemetry_.final_compression_ratio = 1.0;
}

void DenseEngine::load_dense(std::span<const amp_t> amplitudes) {
  MEMQ_CHECK(amplitudes.size() == sim_.state().dim(),
             "load_dense needs " << sim_.state().dim() << " amplitudes");
  std::copy(amplitudes.begin(), amplitudes.end(),
            sim_.state().amplitudes().begin());
}

void DenseEngine::run(const circuit::Circuit& circuit) {
  WallTimer timer;
  sim_.run(circuit);
  const double dt = timer.seconds();
  telemetry_.wall_seconds += dt;
  telemetry_.modeled_total_seconds += dt;  // dense runs on the real CPU
  telemetry_.cpu_phases.add("cpu_apply", dt);
}

std::vector<double> DenseEngine::marginal_probabilities(
    const std::vector<qubit_t>& qubits) {
  MEMQ_CHECK(!qubits.empty() && qubits.size() <= 20,
             "marginal over 1..20 qubits, got " << qubits.size());
  for (const qubit_t q : qubits)
    MEMQ_CHECK(q < sim_.n_qubits(), "qubit " << q << " out of range");
  std::vector<double> marginal(std::size_t{1} << qubits.size(), 0.0);
  const auto amps = sim_.state().amplitudes();
  for (index_t i = 0; i < amps.size(); ++i) {
    const double p = std::norm(amps[i]);
    if (p == 0.0) continue;
    index_t key = 0;
    for (std::size_t k = 0; k < qubits.size(); ++k)
      if ((i >> qubits[k]) & 1) key |= index_t{1} << k;
    marginal[key] += p;
  }
  return marginal;
}

void DenseEngine::save_state(const std::string& path) {
  // Same temp-file + rename protocol as the compressed engines: a failure
  // mid-save never destroys a previous checkpoint at `path`.
  AtomicFileWriter writer(path);
  std::ofstream& out = writer.stream();
  static constexpr char kMagic[8] = {'M', 'Q', 'D', 'N', 'S', 'E', '0', '1'};
  out.write(kMagic, sizeof kMagic);
  const std::uint64_t n = sim_.n_qubits();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  const auto amps = sim_.state().amplitudes();
  out.write(reinterpret_cast<const char*>(amps.data()),
            static_cast<std::streamsize>(amps.size() * sizeof(amp_t)));
  MEMQ_CHECK(out.good(), "checkpoint write failed");
  writer.commit();
}

void DenseEngine::load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEMQ_CHECK(static_cast<bool>(in), "cannot open checkpoint '" << path
                                                               << "'");
  if (MEMQ_FAULT("checkpoint.load"))
    throw CorruptData("dense checkpoint '" + path +
                      "': corrupt stream (injected)");
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in.good() || std::memcmp(magic, "MQDNSE01", 8) != 0)
    throw CorruptData("dense checkpoint: bad magic");
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  MEMQ_CHECK(n == sim_.n_qubits(), "checkpoint width " << n
                                                       << " != engine width "
                                                       << sim_.n_qubits());
  auto amps = sim_.state().amplitudes();
  in.read(reinterpret_cast<char*>(amps.data()),
          static_cast<std::streamsize>(amps.size() * sizeof(amp_t)));
  if (!in.good()) throw CorruptData("dense checkpoint: truncated");
}

sv::StateVector DenseEngine::to_dense() {
  sv::StateVector copy(sim_.n_qubits());
  std::copy(sim_.state().amplitudes().begin(), sim_.state().amplitudes().end(),
            copy.amplitudes().begin());
  return copy;
}

}  // namespace memq::core
