#include "core/telemetry_json.hpp"

#include <ostream>

#include "core/batch_scheduler.hpp"

namespace memq::core {

void stage_row_json(std::ostream& os, const StageRow& r, const char* indent) {
  os << indent << "{\"index\": " << r.index << ", \"kind\": \"" << r.kind
     << "\", \"gates\": " << r.gates
     << ", \"chunk_loads\": " << r.chunk_loads
     << ", \"chunk_stores\": " << r.chunk_stores
     << ", \"codec_decode_bytes\": " << r.codec_decode_bytes
     << ", \"codec_encode_bytes\": " << r.codec_encode_bytes
     << ", \"cache_hits\": " << r.cache_hits
     << ", \"cache_misses\": " << r.cache_misses
     << ", \"cache_evictions\": " << r.cache_evictions
     << ", \"cache_writebacks\": " << r.cache_writebacks
     << ", \"spill_writes\": " << r.spill_writes
     << ", \"spill_reads\": " << r.spill_reads
     << ", \"h2d_bytes\": " << r.h2d_bytes
     << ", \"d2h_bytes\": " << r.d2h_bytes
     << ", \"kernel_launches\": " << r.kernel_launches
     << ", \"zero_chunks_skipped\": " << r.zero_chunks_skipped
     << ", \"decompress_seconds\": " << r.decompress_seconds
     << ", \"recompress_seconds\": " << r.recompress_seconds
     << ", \"cpu_apply_seconds\": " << r.cpu_apply_seconds
     << ", \"stall_seconds\": " << r.stall_seconds
     << ", \"modeled_seconds\": " << r.modeled_seconds
     << ", \"device_busy_seconds\": " << r.device_busy_seconds
     << ", \"kernel_busy_seconds\": " << r.kernel_busy_seconds
     << ", \"device_idle_seconds\": " << r.device_idle_seconds << "}";
}

void write_telemetry_json(std::ostream& os, const EngineTelemetry& t,
                          const StageReport* rep,
                          const std::string& head_fields, bool faults_armed,
                          const BatchStats* batch) {
  const double dec_s = t.cpu_phases.get("decompress");
  const double enc_s = t.cpu_phases.get("recompress");
  os << "{\n"
     << "  \"schema_version\": " << kTelemetrySchemaVersion << ",\n"
     << head_fields
     << "  \"modeled_total_seconds\": " << t.modeled_total_seconds << ",\n"
     << "  \"device_busy_seconds\": " << t.device_busy_seconds << ",\n"
     << "  \"pipeline_stall_seconds\": " << t.pipeline_stall_seconds << ",\n"
     << "  \"peak_host_state_bytes\": " << t.peak_host_state_bytes << ",\n"
     << "  \"peak_resident_blob_bytes\": " << t.peak_resident_blob_bytes
     << ",\n"
     << "  \"final_compression_ratio\": " << t.final_compression_ratio
     << ",\n"
     << "  \"chunk_loads\": " << t.chunk_loads << ",\n"
     << "  \"chunk_stores\": " << t.chunk_stores << ",\n"
     << "  \"codec_decode_bytes\": " << t.codec_decode_bytes << ",\n"
     << "  \"codec_encode_bytes\": " << t.codec_encode_bytes << ",\n"
     << "  \"codec_decode_bytes_per_sec\": "
     << (dec_s > 0.0 ? static_cast<double>(t.codec_decode_bytes) / dec_s
                     : 0.0)
     << ",\n"
     << "  \"codec_encode_bytes_per_sec\": "
     << (enc_s > 0.0 ? static_cast<double>(t.codec_encode_bytes) / enc_s
                     : 0.0)
     << ",\n"
     << "  \"zero_chunks_skipped\": " << t.zero_chunks_skipped << ",\n"
     << "  \"cache_hits\": " << t.cache_hits << ",\n"
     << "  \"cache_misses\": " << t.cache_misses << ",\n"
     << "  \"cache_evictions\": " << t.cache_evictions << ",\n"
     << "  \"cache_writebacks\": " << t.cache_writebacks << ",\n"
     << "  \"spill_writes\": " << t.spill_writes << ",\n"
     << "  \"spill_reads\": " << t.spill_reads << ",\n"
     << "  \"spill_bytes_written\": " << t.spill_bytes_written << ",\n"
     << "  \"spill_bytes_read\": " << t.spill_bytes_read << ",\n"
     << "  \"dedup_hits\": " << t.dedup_hits << ",\n"
     << "  \"dedup_bytes_saved\": " << t.dedup_bytes_saved << ",\n"
     << "  \"cow_breaks\": " << t.cow_breaks << ",\n"
     << "  \"constant_chunks_stored\": " << t.constant_chunks_stored << ",\n"
     << "  \"constant_chunks_materialized\": "
     << t.constant_chunks_materialized << ",\n"
     << "  \"cache_alias_hits\": " << t.cache_alias_hits << ",\n"
     << "  \"codec_memo_hits\": " << t.codec_memo_hits << ",\n"
     << "  \"faults_armed\": " << (faults_armed ? "true" : "false") << ",\n"
     << "  \"faults_injected\": " << t.faults_injected << ",\n"
     << "  \"io_retries\": " << t.io_retries << ",\n"
     << "  \"degraded_to_ram\": " << t.degraded_to_ram << ",\n";
  if (rep != nullptr) {
    const PlanCost& pc = rep->planned;
    os << "  \"plan\": {\"optimized\": "
       << (rep->plan_optimized ? "true" : "false")
       << ", \"exact\": " << (pc.exact ? "true" : "false")
       << ", \"chunk_loads\": " << pc.chunk_loads
       << ", \"chunk_stores\": " << pc.chunk_stores
       << ", \"cache_hits\": " << pc.cache_hits
       << ", \"cache_misses\": " << pc.cache_misses
       << ", \"codec_encodes\": " << pc.codec_encodes
       << ", \"h2d_bytes\": " << pc.h2d_bytes
       << ", \"codec_passes\": " << pc.codec_passes()
       << ", \"local_stages\": " << rep->plan_local_stages
       << ", \"pair_stages\": " << rep->plan_pair_stages
       << ", \"permute_stages\": " << rep->plan_permute_stages
       << ", \"measure_stages\": " << rep->plan_measure_stages
       << ", \"gates_per_codec_pass\": " << rep->plan_gates_per_codec_pass
       << "},\n";
  }
  // Schema 8: batched-throughput-mode stats, present only for --batch runs.
  if (batch != nullptr) {
    os << "  \"batch\": {\"members\": " << batch->members
       << ", \"padded_members\": " << batch->padded_members
       << ", \"member_index_qubits\": "
       << static_cast<unsigned>(batch->member_index_qubits)
       << ", \"total_member_stages\": " << batch->total_member_stages
       << ", \"executed_stages\": " << batch->executed_stages
       << ", \"shared_stages\": " << batch->shared_stages
       << ", \"clone_chunks\": " << batch->clone_chunks
       << ", \"chunk_loads\": " << batch->chunk_loads
       << ", \"chunk_stores\": " << batch->chunk_stores
       << ", \"wall_seconds\": " << batch->wall_seconds
       << ", \"circuits_per_second\": " << batch->circuits_per_second
       << ", \"amortized_mb_per_s\": " << batch->amortized_mb_per_s
       << "},\n";
  }
  // Schema 7: run-window latency percentiles, keyed by histogram name.
  // Empty (and the key omitted) when metrics timing was never armed.
  if (rep != nullptr && !rep->latency.empty()) {
    os << "  \"metrics\": {";
    bool first = true;
    for (const auto& [name, l] : rep->latency) {
      os << (first ? "\n" : ",\n") << "    \"" << name
         << "\": {\"count\": " << l.count << ", \"p50_ns\": " << l.p50_ns
         << ", \"p95_ns\": " << l.p95_ns << ", \"p99_ns\": " << l.p99_ns
         << ", \"max_ns\": " << l.max_ns << ", \"mean_ns\": " << l.mean_ns
         << "}";
      first = false;
    }
    os << "\n  },\n";
  }
  os << "  \"cpu_phases\": {";
  bool first_phase = true;
  for (const auto& [phase, seconds] : t.cpu_phases.totals()) {
    os << (first_phase ? "" : ", ") << "\"" << phase << "\": " << seconds;
    first_phase = false;
  }
  os << "}";
  if (rep != nullptr) {
    os << ",\n  \"stage_report\": {\n    \"rows\": [\n";
    for (std::size_t i = 0; i < rep->rows.size(); ++i) {
      stage_row_json(os, rep->rows[i], "      ");
      os << (i + 1 < rep->rows.size() ? ",\n" : "\n");
    }
    os << "    ],\n    \"total\":\n";
    stage_row_json(os, rep->total, "      ");
    os << "\n  }";
  }
  os << "\n}\n";
}

}  // namespace memq::core
