#include "core/plan_opt.hpp"

#include <algorithm>
#include <set>

#include "circuit/gate_dag.hpp"
#include "common/error.hpp"
#include "core/chunk_exec.hpp"

namespace memq::core {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateDag;
using circuit::GateKind;

circuit::Circuit lower_mixed_swaps(const Circuit& circuit,
                                   qubit_t chunk_qubits) {
  Circuit out(circuit.n_qubits());
  for (const Gate& g : circuit.gates()) {
    if (g.kind == GateKind::kSwap &&
        (g.targets[0] >= chunk_qubits || g.targets[1] >= chunk_qubits) &&
        !is_pure_permute(g, chunk_qubits)) {
      // Same three-CX expansion the partitioner applies, so the stages of
      // the scheduled order match what Builder would have produced.
      const qubit_t a = g.targets[0], b = g.targets[1];
      Gate cx_ab{GateKind::kX, {b}, g.controls, {}};
      cx_ab.controls.push_back(a);
      Gate cx_ba{GateKind::kX, {a}, g.controls, {}};
      cx_ba.controls.push_back(b);
      out.append(cx_ab);
      out.append(cx_ba);
      out.append(cx_ab);
      continue;
    }
    out.append(g);
  }
  return out;
}

namespace {

enum class NodeCls : std::uint8_t { kFence, kPermute, kLocal, kPair };

/// Past this size the one-stage rollout falls back to a ready-count score
/// (the rollout copies the indegree array per candidate).
constexpr std::size_t kRolloutCap = 20000;

}  // namespace

circuit::Circuit schedule_locality(const Circuit& circuit,
                                   qubit_t chunk_qubits) {
  const GateDag dag = circuit::build_gate_dag(circuit);
  const std::size_t n = dag.size();

  std::vector<NodeCls> cls(n);
  std::vector<qubit_t> pairq(n, 0);
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = dag.nodes[i].gate;
    indeg[i] = dag.nodes[i].preds.size();
    if (g.is_nonunitary()) {
      cls[i] = NodeCls::kFence;
    } else if (is_pure_permute(g, chunk_qubits)) {
      cls[i] = NodeCls::kPermute;
    } else if (is_chunk_local(g, chunk_qubits)) {
      cls[i] = NodeCls::kLocal;
    } else {
      cls[i] = NodeCls::kPair;
      pairq[i] = pair_high_target(g, chunk_qubits);
    }
  }

  std::set<std::size_t> ready;  // ordered by node index: deterministic picks
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.insert(i);

  Circuit out(circuit.n_qubits());
  enum class Cur : std::uint8_t { kNone, kLocal, kPair };
  Cur cur = Cur::kNone;
  qubit_t cur_q = 0;

  const auto emit = [&](std::size_t i) {
    out.append(dag.nodes[i].gate);
    ready.erase(i);
    for (const std::size_t s : dag.nodes[i].succs)
      if (--indeg[s] == 0) ready.insert(s);
    switch (cls[i]) {
      case NodeCls::kLocal:
        // Joins the running stage whatever its kind (Builder absorbs local
        // gates into pair stages); opens a local stage from nothing.
        if (cur == Cur::kNone) cur = Cur::kLocal;
        break;
      case NodeCls::kPair:
        cur = Cur::kPair;
        cur_q = pairq[i];
        break;
      case NodeCls::kPermute:
      case NodeCls::kFence:
        cur = Cur::kNone;  // flushes the running stage
        break;
    }
  };

  // How many gates one stage on pair qubit `q` would absorb from here:
  // every ready (and transitively unlocked) local or pair-q gate.
  const auto rollout = [&](qubit_t q) -> std::size_t {
    if (n > kRolloutCap) {
      std::size_t count = 0;
      for (const std::size_t i : ready)
        if (cls[i] == NodeCls::kLocal ||
            (cls[i] == NodeCls::kPair && pairq[i] == q))
          ++count;
      return count;
    }
    std::vector<std::size_t> indeg2 = indeg;
    std::vector<std::size_t> work(ready.begin(), ready.end());
    std::size_t count = 0;
    for (std::size_t k = 0; k < work.size(); ++k) {
      const std::size_t i = work[k];
      if (cls[i] != NodeCls::kLocal &&
          (cls[i] != NodeCls::kPair || pairq[i] != q))
        continue;
      ++count;
      for (const std::size_t s : dag.nodes[i].succs)
        if (--indeg2[s] == 0) work.push_back(s);
    }
    return count;
  };

  while (!ready.empty()) {
    // 1. Extend the current pair stage: the earliest ready gate that joins
    //    it (a local, or a pair gate on the same qubit).
    if (cur == Cur::kPair) {
      bool extended = false;
      for (const std::size_t i : ready) {
        if (cls[i] == NodeCls::kLocal ||
            (cls[i] == NodeCls::kPair && pairq[i] == cur_q)) {
          emit(i);
          extended = true;
          break;
        }
      }
      if (extended) continue;
    }
    // 2. Locals are always free to go: they extend a local run or are
    //    absorbed by whatever pair stage they end up adjacent to.
    {
      bool emitted = false;
      for (const std::size_t i : ready) {
        if (cls[i] == NodeCls::kLocal) {
          emit(i);
          emitted = true;
          break;
        }
      }
      if (emitted) continue;
    }
    // 3. Open the pair stage that absorbs the most work (one-stage
    //    rollout); ties go to the earliest ready gate.
    {
      std::size_t best_node = n;
      std::size_t best_score = 0;
      std::set<qubit_t> seen;
      for (const std::size_t i : ready) {
        if (cls[i] != NodeCls::kPair) continue;
        if (!seen.insert(pairq[i]).second) continue;  // first ready of q
        const std::size_t score = rollout(pairq[i]);
        if (best_node == n || score > best_score) {
          best_node = i;
          best_score = score;
        }
      }
      if (best_node != n) {
        emit(best_node);
        continue;
      }
    }
    // 4. Permutes sink: emitted only when no codec-bearing gate is ready
    //    (they cost nothing but flush the running stage).
    // 5. Fences last of all.
    {
      std::size_t fence = n;
      bool emitted = false;
      for (const std::size_t i : ready) {
        if (cls[i] == NodeCls::kPermute) {
          emit(i);
          emitted = true;
          break;
        }
        if (cls[i] == NodeCls::kFence && fence == n) fence = i;
      }
      if (emitted) continue;
      MEMQ_CHECK(fence != n, "plan-opt scheduler stalled with "
                                 << ready.size() << " ready gates");
      emit(fence);
    }
  }
  MEMQ_CHECK(out.size() == n, "plan-opt scheduler dropped gates: " << out.size()
                                                                   << "/" << n);
  return out;
}

std::vector<StageAccess> plan_accesses(const StagePlan& plan,
                                       qubit_t chunk_qubits) {
  std::vector<StageAccess> accesses;
  accesses.reserve(plan.stages.size());
  for (const Stage& stage : plan.stages) {
    StageAccess a;
    switch (stage.kind) {
      case StageKind::kPermute:
        a.kind = StageAccess::Kind::kNone;
        break;
      case StageKind::kPair:
        a.kind = StageAccess::Kind::kPair;
        a.pair_mask = index_t{1} << (stage.pair_qubit - chunk_qubits);
        break;
      case StageKind::kLocal:
      case StageKind::kMeasure:
        a.kind = StageAccess::Kind::kEvery;
        break;
    }
    accesses.push_back(a);
  }
  return accesses;
}

PlanCost estimate_plan_cost(const StagePlan& plan, const PlanOptOptions& opt) {
  return forecast_plan_cost(plan_accesses(plan, opt.chunk_qubits),
                            opt.n_chunks, opt.chunk_raw_bytes,
                            opt.cache_budget_bytes);
}

namespace {

/// Adjacent-stage local search: swap commuting neighbors when the Belady
/// forecast predicts fewer codec passes. Returns true if anything moved.
bool reorder_stages_for_cache(StagePlan& plan, const PlanOptOptions& opt) {
  if (opt.chunk_raw_bytes == 0 ||
      opt.cache_budget_bytes < opt.chunk_raw_bytes)
    return false;  // no cache: stage order does not change codec cost
  if (opt.n_chunks == 0 || opt.n_chunks > 4096) return false;
  if (plan.stages.size() < 3 || plan.stages.size() > 64) return false;

  const auto stages_commute = [](const Stage& a, const Stage& b) {
    if (a.kind == StageKind::kMeasure || b.kind == StageKind::kMeasure)
      return false;
    for (const Gate& ga : a.gates)
      for (const Gate& gb : b.gates)
        if (!circuit::gates_commute(ga, gb)) return false;
    return true;
  };

  bool moved = false;
  double best = estimate_plan_cost(plan, opt).codec_passes();
  for (int sweep = 0; sweep < 2; ++sweep) {
    bool improved = false;
    for (std::size_t i = 0; i + 1 < plan.stages.size(); ++i) {
      if (!stages_commute(plan.stages[i], plan.stages[i + 1])) continue;
      std::swap(plan.stages[i], plan.stages[i + 1]);
      const double cand = estimate_plan_cost(plan, opt).codec_passes();
      if (cand < best) {
        best = cand;
        improved = true;
        moved = true;
      } else {
        std::swap(plan.stages[i], plan.stages[i + 1]);
      }
    }
    if (!improved) break;
  }
  return moved;
}

}  // namespace

StagePlan build_optimized_plan(const Circuit& circuit,
                               const PlanOptOptions& opt) {
  const Circuit lowered = lower_mixed_swaps(circuit, opt.chunk_qubits);
  const Circuit scheduled = schedule_locality(lowered, opt.chunk_qubits);
  StagePlan plan = partition(scheduled, opt.chunk_qubits);
  if (reorder_stages_for_cache(plan, opt)) {
    // Re-partition the reordered gate sequence so stages the swap made
    // adjacent (same pair qubit, local next to local) fuse.
    Circuit flat(circuit.n_qubits());
    for (const Stage& stage : plan.stages)
      for (const Gate& g : stage.gates) flat.append(g);
    plan = partition(flat, opt.chunk_qubits);
  }
  plan.cost = estimate_plan_cost(plan, opt);
  return plan;
}

}  // namespace memq::core
