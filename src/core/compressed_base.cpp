#include "core/compressed_base.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/atomic_file.hpp"
#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "compress/dictionary.hpp"
#include "sv/kernels.hpp"

namespace memq::core {

namespace {
/// Attaches the run-level shared-dictionary context while the config is
/// copied into the engine: it must exist before the pager clones
/// per-worker ChunkCodecs from config_.codec, and every clone must share
/// the same instance.
EngineConfig with_dict(EngineConfig config) {
  if (config.codec.dict_mode == compress::DictMode::kTrain &&
      config.codec.dict == nullptr)
    config.codec.dict = std::make_shared<compress::DictContext>();
  return config;
}
}  // namespace

CompressedEngineBase::CompressedEngineBase(qubit_t n_qubits,
                                           const EngineConfig& config)
    : config_(with_dict(config)),
      rng_(config.seed),
      pager_(n_qubits, config_, telemetry_,
             [this](double seconds) { charge_cpu(seconds); }),
      layout_(n_qubits) {
  refresh_footprint_telemetry();
}

void CompressedEngineBase::reset() {
  pager_.reset();
  telemetry_ = {};
  rng_ = Prng(config_.seed);
  layout_ = QubitLayout(n_qubits());
  state_is_fresh_ = true;
  refresh_footprint_telemetry();
}

amp_t CompressedEngineBase::amplitude(index_t i) {
  MEMQ_CHECK(i < dim_of(n_qubits()), "amplitude index out of range");
  const index_t phys = layout_.to_physical(i);
  const index_t chunk = phys >> pager_.chunk_qubits();
  if (chunk_is_zero(chunk)) return amp_t{0, 0};
  std::vector<amp_t> buf(pager_.chunk_amps());
  pager_.peek(chunk, buf);
  return buf[phys & (pager_.chunk_amps() - 1)];
}

std::vector<ChunkJob> CompressedEngineBase::nonzero_jobs_window(
    index_t base_chunk, index_t span) const {
  std::vector<ChunkJob> jobs;
  for (index_t ci = base_chunk; ci < base_chunk + span; ++ci)
    if (!chunk_is_zero(ci)) jobs.push_back({ci, 0, false});
  return jobs;
}

double CompressedEngineBase::norm() {
  return norm_window(0, pager_.n_chunks());
}

double CompressedEngineBase::norm_window(index_t base_chunk, index_t span) {
  double s = 0.0;
  pager_.sweep(nonzero_jobs_window(base_chunk, span),
               [&](const ChunkJob&, std::span<amp_t> amps) {
                 double chunk_sum = 0.0;
                 for (const amp_t& a : amps) chunk_sum += std::norm(a);
                 s += chunk_sum;
               },
               /*timed=*/false, base_chunk, span);
  return s;
}

std::map<index_t, std::uint64_t> CompressedEngineBase::sample_counts(
    std::size_t shots) {
  return sample_counts_window(shots, 0, pager_.n_chunks(), rng_);
}

std::map<index_t, std::uint64_t> CompressedEngineBase::sample_counts_window(
    std::size_t shots, index_t base_chunk, index_t span, Prng& rng) {
  std::vector<double> u(shots);
  for (auto& x : u) x = rng.uniform();
  std::sort(u.begin(), u.end());

  // Pass 1 — the only full sweep: per-chunk norms (compressed amplitudes do
  // not sum to exactly 1, so the CDF is rescaled by the true total).
  const std::vector<ChunkJob> jobs = nonzero_jobs_window(base_chunk, span);
  std::vector<double> chunk_norm;
  chunk_norm.reserve(jobs.size());
  double total = 0.0;
  pager_.sweep(
      jobs,
      [&](const ChunkJob&, std::span<amp_t> amps) {
        double chunk_sum = 0.0;
        for (const amp_t& a : amps) chunk_sum += std::norm(a);
        chunk_norm.push_back(chunk_sum);
        total += chunk_sum;
      },
      /*timed=*/false, base_chunk, span);
  MEMQ_CHECK(total > 0.0, "sampling from the zero state");

  // Plan which chunks actually contain sample thresholds: only those get a
  // second decompression. Planner and walk advance the cumulative scale by
  // one chunk-width add per chunk, so they agree exactly (and the result is
  // independent of codec_threads).
  std::vector<std::size_t> needed_k;
  {
    double cum = 0.0;
    std::size_t next = 0;
    for (std::size_t k = 0; k < jobs.size() && next < shots; ++k) {
      const double end = cum + chunk_norm[k] / total;
      if (chunk_norm[k] > 0.0 && u[next] < end) {
        needed_k.push_back(k);
        while (next < shots && u[next] < end) ++next;
      }
      cum = end;
    }
  }
  std::vector<ChunkJob> needed_jobs;
  needed_jobs.reserve(needed_k.size());
  for (const std::size_t k : needed_k) needed_jobs.push_back(jobs[k]);

  // Pass 2 — the CDF walk over the planned chunks only.
  std::map<index_t, std::uint64_t> counts;
  std::size_t next = 0;
  {
    StatePager::ReadStream reader =
        pager_.open_read(std::move(needed_jobs), base_chunk, span);
    double cum = 0.0;
    std::size_t ni = 0;
    for (std::size_t k = 0; k < jobs.size() && next < shots; ++k) {
      const double end = cum + chunk_norm[k] / total;
      if (ni < needed_k.size() && needed_k[ni] == k) {
        ++ni;
        auto lease = reader.next();
        MEMQ_CHECK(lease.has_value(), "sample walk out of planned chunks");
        const std::span<const amp_t> amps = lease->amps();
        const index_t base = (jobs[k].a - base_chunk)
                             << pager_.chunk_qubits();
        double local = cum;
        index_t last_nonzero = base;
        for (index_t j = 0; j < amps.size() && next < shots; ++j) {
          const double p = std::norm(amps[j]) / total;
          if (p > 0) last_nonzero = base + j;
          local += p;
          while (next < shots && u[next] < local) {
            ++counts[layout_.to_logical(base + j)];
            ++next;
          }
        }
        // Rounding gap between the per-amplitude sum and the chunk width:
        // samples landing there belong to this chunk's tail.
        while (next < shots && u[next] < end) {
          ++counts[layout_.to_logical(last_nonzero)];
          ++next;
        }
        reader.recycle(std::move(*lease));
      }
      cum = end;
    }
  }

  // Lossy-drift tail (u beyond the accumulated CDF): attribute leftover
  // shots to the last nonzero amplitude of the state.
  if (next < shots) {
    std::size_t k_last = jobs.size();
    for (std::size_t k = jobs.size(); k-- > 0;)
      if (chunk_norm[k] > 0.0) {
        k_last = k;
        break;
      }
    MEMQ_CHECK(k_last < jobs.size(), "no probability mass to sample");
    std::vector<amp_t> buf(pager_.chunk_amps());
    pager_.peek(jobs[k_last].a, buf);
    const index_t base = (jobs[k_last].a - base_chunk)
                         << pager_.chunk_qubits();
    index_t last_nonzero = base;
    for (index_t j = 0; j < buf.size(); ++j)
      if (std::norm(buf[j]) > 0) last_nonzero = base + j;
    counts[layout_.to_logical(last_nonzero)] += shots - next;
  }
  return counts;
}

sv::StateVector CompressedEngineBase::to_dense() {
  MEMQ_CHECK(n_qubits() <= 28, "to_dense beyond 28 qubits");
  sv::StateVector out(n_qubits());
  auto amps = out.amplitudes();
  const qubit_t c = pager_.chunk_qubits();
  if (layout_.is_identity()) {
    pager_.export_dense(amps);
    return out;
  }
  std::vector<ChunkJob> jobs;
  jobs.reserve(pager_.n_chunks());
  for (index_t ci = 0; ci < pager_.n_chunks(); ++ci)
    jobs.push_back({ci, 0, false});
  pager_.sweep(jobs, [&](const ChunkJob& job, std::span<amp_t> chunk) {
    const index_t base = job.a << c;
    for (index_t j = 0; j < chunk.size(); ++j)
      amps[layout_.to_logical(base + j)] = chunk[j];
  });
  return out;
}

sv::StateVector CompressedEngineBase::to_dense_window(index_t base_chunk,
                                                      index_t span) {
  MEMQ_CHECK(span > 0 && (span & (span - 1)) == 0 &&
                 base_chunk + span <= pager_.n_chunks(),
             "to_dense_window needs a power-of-two span inside the store");
  MEMQ_CHECK(layout_.is_identity(),
             "to_dense_window requires an identity qubit layout");
  const qubit_t c = pager_.chunk_qubits();
  const auto member_qubits =
      static_cast<qubit_t>(c + std::countr_zero(span));
  MEMQ_CHECK(member_qubits <= 28, "to_dense_window beyond 28 qubits");
  sv::StateVector out(member_qubits);
  auto amps = out.amplitudes();
  std::fill(amps.begin(), amps.end(), amp_t{0, 0});
  pager_.sweep(
      nonzero_jobs_window(base_chunk, span),
      [&](const ChunkJob& job, std::span<amp_t> chunk) {
        const index_t base = (job.a - base_chunk) << c;
        std::copy(chunk.begin(), chunk.end(), amps.begin() + base);
      },
      /*timed=*/false, base_chunk, span);
  return out;
}

double CompressedEngineBase::expectation(const sv::PauliString& pauli_in) {
  MEMQ_CHECK(pauli_in.ops.size() == n_qubits(),
             "Pauli string length " << pauli_in.ops.size()
                                    << " != qubit count " << n_qubits());
  // Translate the logical string into physical positions.
  sv::PauliString pauli = pauli_in;
  if (!layout_.is_identity()) {
    for (qubit_t q = 0; q < n_qubits(); ++q)
      pauli.ops[layout_.physical(q)] = pauli_in.ops[q];
  }
  return expectation_window(pauli, 0, pager_.n_chunks());
}

double CompressedEngineBase::expectation_window(const sv::PauliString& pauli,
                                                index_t base_chunk,
                                                index_t span) {
  const qubit_t c = pager_.chunk_qubits();
  const auto member_qubits =
      static_cast<qubit_t>(c + std::countr_zero(span));
  MEMQ_CHECK(span > 0 && (span & (span - 1)) == 0 &&
                 base_chunk + span <= pager_.n_chunks(),
             "expectation_window needs a power-of-two span inside the store");
  MEMQ_CHECK(pauli.ops.size() == member_qubits,
             "Pauli string length " << pauli.ops.size()
                                    << " != member qubit count "
                                    << member_qubits);
  // P|b> = i^{nY} (-1)^{popcount(b & (Y|Z))} |b ^ (X|Y)>, so
  // <P> = sum_i conj(psi_i) * phase(i ^ xmask) * psi_{i ^ xmask},
  // evaluated chunk against partner chunk (the X/Y pattern on high qubits
  // selects the partner; low bits permute within the chunk).
  index_t xmask = 0, yzmask = 0;
  int n_y = 0;
  for (qubit_t q = 0; q < member_qubits; ++q) {
    switch (pauli.ops[q]) {
      case 'I':
        break;
      case 'X':
        xmask |= index_t{1} << q;
        break;
      case 'Y':
        xmask |= index_t{1} << q;
        yzmask |= index_t{1} << q;
        ++n_y;
        break;
      case 'Z':
        yzmask |= index_t{1} << q;
        break;
      default:
        MEMQ_THROW(InvalidArgument,
                   "bad Pauli character '" << pauli.ops[q] << "'");
    }
  }
  static constexpr amp_t kIPowers[4] = {
      {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const amp_t y_phase = kIPowers[n_y % 4];

  const index_t x_high = xmask >> c;
  const index_t x_low = xmask & (pager_.chunk_amps() - 1);
  const index_t half = pager_.chunk_amps();

  // Chunk + partner co-load as one pair job; the reduction runs on the
  // coordinator in chunk order (deterministic for any codec_threads).
  // Partner selection runs on window-local chunk indices, so a member span
  // behaves exactly like a standalone state of member_qubits qubits.
  std::vector<ChunkJob> jobs;
  for (index_t li = 0; li < span; ++li) {
    const index_t ci = base_chunk + li;
    const index_t cj = base_chunk + (li ^ x_high);
    if (chunk_is_zero(ci) || chunk_is_zero(cj)) continue;
    jobs.push_back({ci, cj, cj != ci});
  }
  amp_t total{0, 0};
  pager_.sweep(
      jobs,
      [&](const ChunkJob& job, std::span<amp_t> amps) {
        const std::span<const amp_t> self =
            std::span<const amp_t>(amps).first(half);
        const std::span<const amp_t> other =
            job.has_b ? std::span<const amp_t>(amps).subspan(half, half)
                      : self;
        const index_t base = (job.a - base_chunk) << c;
        amp_t chunk_sum{0, 0};
        for (index_t l = 0; l < self.size(); ++l) {
          const index_t j = (base | l) ^ xmask;
          const amp_t value = other[l ^ x_low];
          const double sign = bits::popcount(j & yzmask) & 1 ? -1.0 : 1.0;
          chunk_sum += std::conj(self[l]) * (sign * value);
        }
        total += chunk_sum;
      },
      /*timed=*/false, base_chunk, span);
  total *= y_phase;
  // Hermitian observable: the imaginary part is numerical noise.
  return total.real();
}

void CompressedEngineBase::load_dense(std::span<const amp_t> amplitudes) {
  MEMQ_CHECK(amplitudes.size() == dim_of(n_qubits()),
             "load_dense needs " << dim_of(n_qubits()) << " amplitudes, got "
                                 << amplitudes.size());
  layout_ = QubitLayout(n_qubits());  // caller data is in logical order
  state_is_fresh_ = false;
  pager_.ingest_dense(amplitudes);
}

std::vector<double> CompressedEngineBase::marginal_probabilities(
    const std::vector<qubit_t>& qubits) {
  MEMQ_CHECK(!qubits.empty() && qubits.size() <= 20,
             "marginal over 1..20 qubits, got " << qubits.size());
  for (const qubit_t q : qubits)
    MEMQ_CHECK(q < n_qubits(), "qubit " << q << " out of range");
  // Map requested logical qubits to physical bit positions once.
  std::vector<qubit_t> phys(qubits.size());
  for (std::size_t k = 0; k < qubits.size(); ++k)
    phys[k] = layout_.physical(qubits[k]);

  const qubit_t c = pager_.chunk_qubits();
  std::vector<double> marginal(std::size_t{1} << qubits.size(), 0.0);
  double total = 0.0;
  pager_.sweep(pager_.nonzero_jobs(),
               [&](const ChunkJob& job, std::span<amp_t> amps) {
                 const index_t base = job.a << c;
                 for (index_t l = 0; l < amps.size(); ++l) {
                   const double p = std::norm(amps[l]);
                   if (p == 0.0) continue;
                   const index_t global = base | l;
                   index_t key = 0;
                   for (std::size_t k = 0; k < phys.size(); ++k)
                     if (bits::test(global, phys[k])) key |= index_t{1} << k;
                   marginal[key] += p;
                   total += p;
                 }
               });
  MEMQ_CHECK(total > 0.0, "marginal of the zero state");
  for (double& p : marginal) p /= total;  // fold out lossy norm drift
  return marginal;
}

namespace {
/// Versioned checkpoint envelope (since format version 2). Files written by
/// the unversioned seed format start directly with the u32 qubit count, so
/// the magic doubles as the format sniff: no plausible qubit count collides
/// with these bytes.
constexpr char kStateMagic[8] = {'M', 'E', 'M', 'Q', 'S', 'T', 'A', 'T'};
constexpr std::uint32_t kStateVersion = 2;
}  // namespace

void CompressedEngineBase::save_state(const std::string& path) {
  // Temp-file + rename: a failure anywhere below (including the injected
  // checkpoint.save fault at commit) leaves any previous checkpoint at
  // `path` intact.
  AtomicFileWriter writer(path);
  std::ofstream& out = writer.stream();
  out.write(kStateMagic, sizeof kStateMagic);
  const std::uint32_t version = kStateVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  // Layout section precedes the store so restored states keep their qubit
  // mapping (chunks are stored in physical order).
  const std::uint32_t n = n_qubits();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  for (qubit_t q = 0; q < n; ++q) {
    const std::uint32_t p = layout_.physical(q);
    out.write(reinterpret_cast<const char*>(&p), sizeof p);
  }
  pager_.checkpoint_to(out);
  MEMQ_CHECK(out.good(), "checkpoint write failed");
  writer.commit();
}

void CompressedEngineBase::load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEMQ_CHECK(static_cast<bool>(in), "cannot open checkpoint '" << path
                                                               << "'");
  // Injected before any header parse: a corrupt checkpoint surfaces as
  // CorruptData with the in-memory state untouched (restore_from replaces
  // it only after the whole stream validates).
  if (MEMQ_FAULT("checkpoint.load"))
    throw CorruptData("checkpoint '" + path +
                      "': corrupt stream (injected)");
  char magic[sizeof kStateMagic];
  in.read(magic, sizeof magic);
  std::uint32_t n = 0;
  if (in.good() && std::memcmp(magic, kStateMagic, sizeof kStateMagic) == 0) {
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char*>(&version), sizeof version);
    if (!in.good()) throw CorruptData("checkpoint: truncated version header");
    if (version != kStateVersion)
      throw CorruptData("checkpoint format version " +
                        std::to_string(version) + " is not supported (this "
                        "build reads version " +
                        std::to_string(kStateVersion) +
                        " and the unversioned seed format)");
    in.read(reinterpret_cast<char*>(&n), sizeof n);
    if (!in.good() || n != n_qubits())
      throw CorruptData("checkpoint: qubit-count header mismatch");
  } else {
    // Legacy (pre-version-header) checkpoint: the stream starts with the
    // u32 qubit count. Rewind and parse it as before.
    in.clear();
    in.seekg(0);
    in.read(reinterpret_cast<char*>(&n), sizeof n);
    if (!in.good() || n != n_qubits())
      throw CorruptData("checkpoint: qubit-count header mismatch");
  }
  std::vector<qubit_t> physical_of(n);
  for (auto& p : physical_of) {
    in.read(reinterpret_cast<char*>(&p), sizeof p);
    if (!in.good() || p >= n) throw CorruptData("checkpoint: bad layout");
  }
  pager_.restore_from(in);
  QubitLayout restored(n);
  bool identity = true;
  for (qubit_t q = 0; q < n; ++q)
    if (physical_of[q] != q) identity = false;
  if (!identity) {
    // Rebuild through the optimize-style constructor path: install mapping.
    restored = QubitLayout::from_mapping(physical_of);
  }
  layout_ = restored;
  state_is_fresh_ = false;
  refresh_footprint_telemetry();
}

bool CompressedEngineBase::measure_qubit(qubit_t q) {
  MEMQ_CHECK(q < n_qubits(), "measured qubit out of range");
  const qubit_t c = pager_.chunk_qubits();

  // Pass 1: P(q = 1), from per-chunk partials accumulated in chunk order on
  // the coordinator — the outcome is identical for any codec_threads.
  double p1 = 0.0, total = 0.0;
  pager_.sweep(
      pager_.nonzero_jobs(),
      [&](const ChunkJob& job, std::span<amp_t> amps) {
        double chunk_norm = 0.0, chunk_one = 0.0;
        if (q >= c) {
          for (const amp_t& a : amps) chunk_norm += std::norm(a);
          if (bits::test(job.a, q - c)) chunk_one = chunk_norm;
        } else {
          const index_t bit = index_t{1} << q;
          for (index_t j = 0; j < amps.size(); ++j) {
            const double p = std::norm(amps[j]);
            chunk_norm += p;
            if (j & bit) chunk_one += p;
          }
        }
        total += chunk_norm;
        p1 += chunk_one;
      },
      /*timed=*/true);
  MEMQ_CHECK(total > 0.0, "measuring the zero state");
  p1 /= total;

  const bool outcome = rng_.uniform() < p1;
  const double p = outcome ? p1 : 1.0 - p1;
  MEMQ_CHECK(p > 1e-300, "measurement hit a zero-probability branch");
  const double scale = 1.0 / std::sqrt(p * total);

  // Pass 2: collapse + renormalize (the true norm folds into the scale so
  // lossy drift does not accumulate across measurements). Chunks on the
  // discarded side are overwritten with zeros; kept chunks are rescaled.
  std::vector<ChunkJob> zero_jobs, scale_jobs;
  for (index_t ci = 0; ci < pager_.n_chunks(); ++ci) {
    if (q >= c && bits::test(ci, q - c) != outcome) {
      if (!chunk_is_zero(ci)) zero_jobs.push_back({ci, 0, false});
      continue;
    }
    if (chunk_is_zero(ci)) continue;
    scale_jobs.push_back({ci, 0, false});
  }
  pager_.collapse(zero_jobs, std::move(scale_jobs),
                  [&](const ChunkJob&, std::span<amp_t> amps) {
                    if (q >= c) {
                      for (amp_t& a : amps) a *= scale;
                    } else {
                      sv::collapse(amps, q, outcome, scale);
                    }
                  });
  return outcome;
}

}  // namespace memq::core
