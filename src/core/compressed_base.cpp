#include "core/compressed_base.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <thread>

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "sv/kernels.hpp"

namespace memq::core {

namespace {

std::size_t resolved_codec_threads(const EngineConfig& config) {
  // Cap absurd requests (e.g. a -1 that wrapped to 4 billion on the CLI)
  // before they turn into thread-spawn storms.
  constexpr std::size_t kMaxThreads = 256;
  if (config.codec_threads == 1) return 1;
  if (config.codec_threads != 0)
    return std::min<std::size_t>(config.codec_threads, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxThreads);
}

}  // namespace

CompressedEngineBase::CompressedEngineBase(qubit_t n_qubits,
                                           const EngineConfig& config)
    : config_(config),
      store_(n_qubits, std::min<qubit_t>(config.chunk_qubits, n_qubits),
             config.codec),
      rng_(config.seed),
      scratch_(store_.chunk_amps()),
      layout_(n_qubits) {
  const std::size_t threads = resolved_codec_threads(config);
  if (threads > 1)
    codec_pool_ = std::make_unique<CodecPool>(config.codec, threads);
  if (config.cache_budget_bytes > 0)
    cache_ = std::make_unique<ChunkCache>(store_, codec_pool_.get(), buffers_,
                                          inflight_,
                                          config.cache_budget_bytes);
  refresh_footprint_telemetry();
}

void CompressedEngineBase::reset() {
  if (cache_) {
    cache_->invalidate();  // dirty data must not outlive the reset
    cache_->clear_plan();
    cache_->reset_stats();
    (void)cache_->take_timings();
  }
  store_.init_basis(0);
  telemetry_ = {};
  rng_ = Prng(config_.seed);
  layout_ = QubitLayout(n_qubits());
  state_is_fresh_ = true;
  inflight_.reset();
  buffers_.clear();
  refresh_footprint_telemetry();
}

std::size_t CompressedEngineBase::split_reader_window() const noexcept {
  const std::size_t workers = codec_workers();
  if (workers <= 1) return 0;
  return std::max<std::size_t>(1, workers / 2);
}

std::size_t CompressedEngineBase::split_writer_backlog() const noexcept {
  const std::size_t workers = codec_workers();
  if (workers <= 1) return 0;
  const std::size_t window = split_reader_window();
  return workers > window + 1 ? workers - window - 1 : 0;
}

void CompressedEngineBase::refresh_footprint_telemetry() {
  // Working buffers: the measured in-flight window of the parallel pipeline
  // once it has run, with the historical serial floor (scratch + pair +
  // staging) as the minimum.
  const std::uint64_t serial_floor = (store_.chunk_amps() * kAmpBytes) * 4;
  const std::uint64_t working = std::max(serial_floor, inflight_.peak());
  telemetry_.peak_host_state_bytes =
      std::max(telemetry_.peak_host_state_bytes,
               store_.peak_compressed_bytes() + working);
  telemetry_.peak_inflight_bytes =
      std::max(telemetry_.peak_inflight_bytes, inflight_.peak());
  telemetry_.final_compression_ratio = store_.compression_ratio();
  telemetry_.chunk_loads = store_.loads();
  telemetry_.chunk_stores = store_.stores();
  if (cache_) {
    const ChunkCacheStats& cs = cache_->stats();
    telemetry_.cache_hits = cs.hits;
    telemetry_.cache_misses = cs.misses;
    telemetry_.cache_evictions = cs.evictions;
    telemetry_.cache_clean_evictions = cs.clean_evictions;
    telemetry_.cache_writebacks = cs.writebacks;
    telemetry_.cache_codec_bytes_avoided =
        cs.codec_bytes_avoided(store_.chunk_raw_bytes());
    telemetry_.peak_cache_resident_bytes = cs.peak_resident_bytes;
  }
}

void CompressedEngineBase::harvest_cache_timings() {
  if (!cache_) return;
  const ChunkCache::Timings t = cache_->take_timings();
  telemetry_.cpu_phases.add("decompress", t.decode_seconds);
  telemetry_.cpu_phases.add("recompress", t.encode_seconds);
  // Miss decodes run synchronously on the coordinator, so pool mode charges
  // them in full plus the measured write-back wait; serial mode keeps the
  // modeled multi-core divisor.
  charge_cpu(codec_pool_
                 ? t.decode_seconds + t.wait_seconds
                 : (t.decode_seconds + t.encode_seconds) /
                       config_.cpu_codec_workers);
}

std::span<amp_t> CompressedEngineBase::load_chunk_timed(
    index_t i, std::vector<amp_t>& buf) {
  buf.resize(store_.chunk_amps());
  if (cache_) {
    cache_->load(i, buf);
    harvest_cache_timings();
    return buf;
  }
  WallTimer t;
  store_.load(i, buf);
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("decompress", dt);
  charge_cpu(dt / config_.cpu_codec_workers);
  return buf;
}

void CompressedEngineBase::store_chunk_timed(index_t i,
                                             std::span<const amp_t> buf) {
  if (cache_) {
    cache_->store(i, buf);
    harvest_cache_timings();
    return;
  }
  WallTimer t;
  store_.store(i, buf);
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("recompress", dt);
  charge_cpu(dt / config_.cpu_codec_workers);
}

std::vector<ChunkJob> CompressedEngineBase::nonzero_chunk_jobs() const {
  std::vector<ChunkJob> jobs;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci)
    if (!chunk_is_zero(ci)) jobs.push_back({ci, 0, false});
  return jobs;
}

void CompressedEngineBase::sweep_chunks(
    std::vector<ChunkJob> jobs,
    const std::function<void(const ChunkJob&, std::span<amp_t>)>& fn,
    bool timed) {
  SweepPlanGuard sweep_plan(cache());
  CachedReader reader(store_, codec_pool(), buffers_, inflight_, cache(),
                      std::move(jobs), reader_window());
  while (auto item = reader.next()) {
    fn(item->job, std::span<amp_t>(item->buf));
    reader.recycle(std::move(item->buf));
  }
  if (cache_) harvest_cache_timings();
  if (timed) {
    telemetry_.cpu_phases.add("decompress", reader.decode_seconds());
    charge_cpu(codec_pool_ ? reader.wait_seconds()
                           : reader.decode_seconds() /
                                 config_.cpu_codec_workers);
  }
}

amp_t CompressedEngineBase::amplitude(index_t i) {
  MEMQ_CHECK(i < dim_of(n_qubits()), "amplitude index out of range");
  const index_t phys = layout_.to_physical(i);
  const index_t chunk = phys >> store_.chunk_qubits();
  if (chunk_is_zero(chunk)) return amp_t{0, 0};
  if (cache_) {
    cache_->load(chunk, scratch_);
    harvest_cache_timings();
  } else {
    store_.load(chunk, scratch_);
  }
  return scratch_[phys & (store_.chunk_amps() - 1)];
}

double CompressedEngineBase::norm() {
  double s = 0.0;
  sweep_chunks(nonzero_chunk_jobs(),
               [&](const ChunkJob&, std::span<amp_t> amps) {
                 double chunk_sum = 0.0;
                 for (const amp_t& a : amps) chunk_sum += std::norm(a);
                 s += chunk_sum;
               });
  return s;
}

std::map<index_t, std::uint64_t> CompressedEngineBase::sample_counts(
    std::size_t shots) {
  std::vector<double> u(shots);
  for (auto& x : u) x = rng_.uniform();
  std::sort(u.begin(), u.end());

  // Pass 1 — the only full sweep: per-chunk norms (compressed amplitudes do
  // not sum to exactly 1, so the CDF is rescaled by the true total).
  const std::vector<ChunkJob> jobs = nonzero_chunk_jobs();
  std::vector<double> chunk_norm;
  chunk_norm.reserve(jobs.size());
  double total = 0.0;
  sweep_chunks(jobs, [&](const ChunkJob&, std::span<amp_t> amps) {
    double chunk_sum = 0.0;
    for (const amp_t& a : amps) chunk_sum += std::norm(a);
    chunk_norm.push_back(chunk_sum);
    total += chunk_sum;
  });
  MEMQ_CHECK(total > 0.0, "sampling from the zero state");

  // Plan which chunks actually contain sample thresholds: only those get a
  // second decompression. Planner and walk advance the cumulative scale by
  // one chunk-width add per chunk, so they agree exactly (and the result is
  // independent of codec_threads).
  std::vector<std::size_t> needed_k;
  {
    double cum = 0.0;
    std::size_t next = 0;
    for (std::size_t k = 0; k < jobs.size() && next < shots; ++k) {
      const double end = cum + chunk_norm[k] / total;
      if (chunk_norm[k] > 0.0 && u[next] < end) {
        needed_k.push_back(k);
        while (next < shots && u[next] < end) ++next;
      }
      cum = end;
    }
  }
  std::vector<ChunkJob> needed_jobs;
  needed_jobs.reserve(needed_k.size());
  for (const std::size_t k : needed_k) needed_jobs.push_back(jobs[k]);

  // Pass 2 — the CDF walk over the planned chunks only.
  std::map<index_t, std::uint64_t> counts;
  std::size_t next = 0;
  {
    SweepPlanGuard sweep_plan(cache());
    CachedReader reader(store_, codec_pool(), buffers_, inflight_, cache(),
                        std::move(needed_jobs), reader_window());
    double cum = 0.0;
    std::size_t ni = 0;
    for (std::size_t k = 0; k < jobs.size() && next < shots; ++k) {
      const double end = cum + chunk_norm[k] / total;
      if (ni < needed_k.size() && needed_k[ni] == k) {
        ++ni;
        auto item = reader.next();
        MEMQ_CHECK(item.has_value(), "sample walk out of planned chunks");
        const std::span<const amp_t> amps(item->buf);
        const index_t base = jobs[k].a << store_.chunk_qubits();
        double local = cum;
        index_t last_nonzero = base;
        for (index_t j = 0; j < amps.size() && next < shots; ++j) {
          const double p = std::norm(amps[j]) / total;
          if (p > 0) last_nonzero = base + j;
          local += p;
          while (next < shots && u[next] < local) {
            ++counts[layout_.to_logical(base + j)];
            ++next;
          }
        }
        // Rounding gap between the per-amplitude sum and the chunk width:
        // samples landing there belong to this chunk's tail.
        while (next < shots && u[next] < end) {
          ++counts[layout_.to_logical(last_nonzero)];
          ++next;
        }
        reader.recycle(std::move(item->buf));
      }
      cum = end;
    }
  }
  if (cache_) harvest_cache_timings();

  // Lossy-drift tail (u beyond the accumulated CDF): attribute leftover
  // shots to the last nonzero amplitude of the state.
  if (next < shots) {
    std::size_t k_last = jobs.size();
    for (std::size_t k = jobs.size(); k-- > 0;)
      if (chunk_norm[k] > 0.0) {
        k_last = k;
        break;
      }
    MEMQ_CHECK(k_last < jobs.size(), "no probability mass to sample");
    if (cache_) {
      cache_->load(jobs[k_last].a, scratch_);
      harvest_cache_timings();
    } else {
      store_.load(jobs[k_last].a, scratch_);
    }
    const index_t base = jobs[k_last].a << store_.chunk_qubits();
    index_t last_nonzero = base;
    for (index_t j = 0; j < scratch_.size(); ++j)
      if (std::norm(scratch_[j]) > 0) last_nonzero = base + j;
    counts[layout_.to_logical(last_nonzero)] += shots - next;
  }
  return counts;
}

sv::StateVector CompressedEngineBase::to_dense() {
  MEMQ_CHECK(n_qubits() <= 28, "to_dense beyond 28 qubits");
  sv::StateVector out(n_qubits());
  auto amps = out.amplitudes();
  const qubit_t c = store_.chunk_qubits();
  if (layout_.is_identity()) {
    if (cache_) {
      // Cached copies may be dirtier (fresher) than the blobs, so the dense
      // view must come through the cache — sequentially, on the coordinator.
      SweepPlanGuard sweep_plan(cache_.get());
      for (index_t ci = 0; ci < store_.n_chunks(); ++ci)
        cache_->load(ci, amps.subspan(ci << c, store_.chunk_amps()));
      harvest_cache_timings();
      return out;
    }
    if (codec_pool_) {
      // Every chunk decodes straight into its slice of the dense vector —
      // disjoint destinations, so a plain parallel_for is safe.
      CodecPool* pool = codec_pool_.get();
      ChunkStore* store = &store_;
      codec_pool_->threads().parallel_for(
          store_.n_chunks(), [amps, c, pool, store](std::size_t ci) {
            auto codec = pool->lease();
            store->load_with(*codec, ci,
                             amps.subspan(index_t{ci} << c,
                                          store->chunk_amps()));
          });
    } else {
      for (index_t ci = 0; ci < store_.n_chunks(); ++ci)
        store_.load(ci, amps.subspan(ci << c, store_.chunk_amps()));
    }
    return out;
  }
  std::vector<ChunkJob> jobs;
  jobs.reserve(store_.n_chunks());
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci)
    jobs.push_back({ci, 0, false});
  sweep_chunks(jobs, [&](const ChunkJob& job, std::span<amp_t> chunk) {
    const index_t base = job.a << c;
    for (index_t j = 0; j < chunk.size(); ++j)
      amps[layout_.to_logical(base + j)] = chunk[j];
  });
  return out;
}

double CompressedEngineBase::expectation(const sv::PauliString& pauli_in) {
  MEMQ_CHECK(pauli_in.ops.size() == n_qubits(),
             "Pauli string length " << pauli_in.ops.size()
                                    << " != qubit count " << n_qubits());
  // Translate the logical string into physical positions.
  sv::PauliString pauli = pauli_in;
  if (!layout_.is_identity()) {
    for (qubit_t q = 0; q < n_qubits(); ++q)
      pauli.ops[layout_.physical(q)] = pauli_in.ops[q];
  }
  // P|b> = i^{nY} (-1)^{popcount(b & (Y|Z))} |b ^ (X|Y)>, so
  // <P> = sum_i conj(psi_i) * phase(i ^ xmask) * psi_{i ^ xmask},
  // evaluated chunk against partner chunk (the X/Y pattern on high qubits
  // selects the partner; low bits permute within the chunk).
  index_t xmask = 0, yzmask = 0;
  int n_y = 0;
  for (qubit_t q = 0; q < n_qubits(); ++q) {
    switch (pauli.ops[q]) {
      case 'I':
        break;
      case 'X':
        xmask |= index_t{1} << q;
        break;
      case 'Y':
        xmask |= index_t{1} << q;
        yzmask |= index_t{1} << q;
        ++n_y;
        break;
      case 'Z':
        yzmask |= index_t{1} << q;
        break;
      default:
        MEMQ_THROW(InvalidArgument,
                   "bad Pauli character '" << pauli.ops[q] << "'");
    }
  }
  static constexpr amp_t kIPowers[4] = {
      {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const amp_t y_phase = kIPowers[n_y % 4];

  const qubit_t c = store_.chunk_qubits();
  const index_t x_high = xmask >> c;
  const index_t x_low = xmask & (store_.chunk_amps() - 1);
  const index_t half = store_.chunk_amps();

  // Chunk + partner co-load as one pair job; the reduction runs on the
  // coordinator in chunk order (deterministic for any codec_threads).
  std::vector<ChunkJob> jobs;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    const index_t cj = ci ^ x_high;
    if (chunk_is_zero(ci) || chunk_is_zero(cj)) continue;
    jobs.push_back({ci, cj, cj != ci});
  }
  amp_t total{0, 0};
  sweep_chunks(jobs, [&](const ChunkJob& job, std::span<amp_t> amps) {
    const std::span<const amp_t> self =
        std::span<const amp_t>(amps).first(half);
    const std::span<const amp_t> other =
        job.has_b ? std::span<const amp_t>(amps).subspan(half, half) : self;
    const index_t base = job.a << c;
    amp_t chunk_sum{0, 0};
    for (index_t l = 0; l < self.size(); ++l) {
      const index_t j = (base | l) ^ xmask;
      const amp_t value = other[l ^ x_low];
      const double sign = bits::popcount(j & yzmask) & 1 ? -1.0 : 1.0;
      chunk_sum += std::conj(self[l]) * (sign * value);
    }
    total += chunk_sum;
  });
  total *= y_phase;
  // Hermitian observable: the imaginary part is numerical noise.
  return total.real();
}

void CompressedEngineBase::load_dense(std::span<const amp_t> amplitudes) {
  MEMQ_CHECK(amplitudes.size() == dim_of(n_qubits()),
             "load_dense needs " << dim_of(n_qubits()) << " amplitudes, got "
                                 << amplitudes.size());
  layout_ = QubitLayout(n_qubits());  // caller data is in logical order
  state_is_fresh_ = false;
  // The new state supersedes everything cached; drop (not write back) so
  // the direct stores below are the only source of truth.
  if (cache_) cache_->invalidate();
  {
    ChunkWriter writer(store_, codec_pool(), buffers_, inflight_,
                       codec_workers() > 1 ? codec_workers() - 1 : 0);
    for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
      std::vector<amp_t> buf = buffers_.get(store_.chunk_amps());
      const auto src = amplitudes.subspan(ci << store_.chunk_qubits(),
                                          store_.chunk_amps());
      std::copy(src.begin(), src.end(), buf.begin());
      inflight_.acquire(buf.size() * kAmpBytes);
      writer.put({ci, 0, false}, std::move(buf));
    }
    writer.drain();
    telemetry_.cpu_phases.add("recompress", writer.encode_seconds());
    charge_cpu(codec_pool_ ? writer.wait_seconds()
                           : writer.encode_seconds() /
                                 config_.cpu_codec_workers);
  }
  refresh_footprint_telemetry();
}

std::vector<double> CompressedEngineBase::marginal_probabilities(
    const std::vector<qubit_t>& qubits) {
  MEMQ_CHECK(!qubits.empty() && qubits.size() <= 20,
             "marginal over 1..20 qubits, got " << qubits.size());
  for (const qubit_t q : qubits)
    MEMQ_CHECK(q < n_qubits(), "qubit " << q << " out of range");
  // Map requested logical qubits to physical bit positions once.
  std::vector<qubit_t> phys(qubits.size());
  for (std::size_t k = 0; k < qubits.size(); ++k)
    phys[k] = layout_.physical(qubits[k]);

  const qubit_t c = store_.chunk_qubits();
  std::vector<double> marginal(std::size_t{1} << qubits.size(), 0.0);
  double total = 0.0;
  sweep_chunks(nonzero_chunk_jobs(),
               [&](const ChunkJob& job, std::span<amp_t> amps) {
                 const index_t base = job.a << c;
                 for (index_t l = 0; l < amps.size(); ++l) {
                   const double p = std::norm(amps[l]);
                   if (p == 0.0) continue;
                   const index_t global = base | l;
                   index_t key = 0;
                   for (std::size_t k = 0; k < phys.size(); ++k)
                     if (bits::test(global, phys[k])) key |= index_t{1} << k;
                   marginal[key] += p;
                   total += p;
                 }
               });
  MEMQ_CHECK(total > 0.0, "marginal of the zero state");
  for (double& p : marginal) p /= total;  // fold out lossy norm drift
  return marginal;
}

void CompressedEngineBase::save_state(const std::string& path) {
  // Dirty cached chunks exist only in RAM until flushed; the checkpoint
  // must see them.
  if (cache_) {
    cache_->flush();
    harvest_cache_timings();
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MEMQ_CHECK(static_cast<bool>(out), "cannot open checkpoint '" << path
                                                                << "'");
  // Layout section precedes the store so restored states keep their qubit
  // mapping (chunks are stored in physical order).
  const std::uint32_t n = n_qubits();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  for (qubit_t q = 0; q < n; ++q) {
    const std::uint32_t p = layout_.physical(q);
    out.write(reinterpret_cast<const char*>(&p), sizeof p);
  }
  store_.save(out);
}

void CompressedEngineBase::load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEMQ_CHECK(static_cast<bool>(in), "cannot open checkpoint '" << path
                                                               << "'");
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (!in.good() || n != n_qubits())
    throw CorruptData("checkpoint: qubit-count header mismatch");
  std::vector<qubit_t> physical_of(n);
  for (auto& p : physical_of) {
    in.read(reinterpret_cast<char*>(&p), sizeof p);
    if (!in.good() || p >= n) throw CorruptData("checkpoint: bad layout");
  }
  if (cache_) cache_->invalidate();  // restored blobs replace cached data
  store_.restore(in);
  QubitLayout restored(n);
  bool identity = true;
  for (qubit_t q = 0; q < n; ++q)
    if (physical_of[q] != q) identity = false;
  if (!identity) {
    // Rebuild through the optimize-style constructor path: install mapping.
    restored = QubitLayout::from_mapping(physical_of);
  }
  layout_ = restored;
  state_is_fresh_ = false;
  refresh_footprint_telemetry();
}

bool CompressedEngineBase::measure_qubit(qubit_t q) {
  MEMQ_CHECK(q < n_qubits(), "measured qubit out of range");
  const qubit_t c = store_.chunk_qubits();

  // Pass 1: P(q = 1), from per-chunk partials accumulated in chunk order on
  // the coordinator — the outcome is identical for any codec_threads.
  double p1 = 0.0, total = 0.0;
  sweep_chunks(
      nonzero_chunk_jobs(),
      [&](const ChunkJob& job, std::span<amp_t> amps) {
        double chunk_norm = 0.0, chunk_one = 0.0;
        if (q >= c) {
          for (const amp_t& a : amps) chunk_norm += std::norm(a);
          if (bits::test(job.a, q - c)) chunk_one = chunk_norm;
        } else {
          const index_t bit = index_t{1} << q;
          for (index_t j = 0; j < amps.size(); ++j) {
            const double p = std::norm(amps[j]);
            chunk_norm += p;
            if (j & bit) chunk_one += p;
          }
        }
        total += chunk_norm;
        p1 += chunk_one;
      },
      /*timed=*/true);
  MEMQ_CHECK(total > 0.0, "measuring the zero state");
  p1 /= total;

  const bool outcome = rng_.uniform() < p1;
  const double p = outcome ? p1 : 1.0 - p1;
  MEMQ_CHECK(p > 1e-300, "measurement hit a zero-probability branch");
  const double scale = 1.0 / std::sqrt(p * total);

  // Pass 2: collapse + renormalize (the true norm folds into the scale so
  // lossy drift does not accumulate across measurements). Chunks on the
  // discarded side are overwritten with zeros; kept chunks are rescaled.
  std::vector<ChunkJob> zero_jobs, scale_jobs;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    if (q >= c && bits::test(ci, q - c) != outcome) {
      if (!chunk_is_zero(ci)) zero_jobs.push_back({ci, 0, false});
      continue;
    }
    if (chunk_is_zero(ci)) continue;
    scale_jobs.push_back({ci, 0, false});
  }
  if (cache_) {
    // Zeroed chunks bypass the cache (storing zeros through it would defeat
    // the zero-chunk fast path): drop any cached copy, then store directly.
    WallTimer zt;
    for (const ChunkJob& job : zero_jobs) {
      cache_->drop(job.a);
      std::fill(scratch_.begin(), scratch_.end(), amp_t{0, 0});
      store_.store(job.a, scratch_);
    }
    const double zdt = zt.seconds();
    telemetry_.cpu_phases.add("recompress", zdt);
    charge_cpu(codec_pool_ ? zdt : zdt / config_.cpu_codec_workers);
    CachedReader reader(store_, codec_pool(), buffers_, inflight_, cache(),
                        std::move(scale_jobs), split_reader_window());
    CachedWriter writer(store_, codec_pool(), buffers_, inflight_, cache(),
                        split_writer_backlog());
    while (auto item = reader.next()) {
      if (q >= c) {
        for (amp_t& a : item->buf) a *= scale;
      } else {
        sv::collapse(item->buf, q, outcome, scale);
      }
      writer.put(item->job, std::move(item->buf));
    }
    writer.drain();
    harvest_cache_timings();
  } else {
    ChunkWriter writer(store_, codec_pool(), buffers_, inflight_,
                       split_writer_backlog());
    for (const ChunkJob& job : zero_jobs) {
      std::vector<amp_t> zeros = buffers_.get(store_.chunk_amps());
      std::fill(zeros.begin(), zeros.end(), amp_t{0, 0});
      inflight_.acquire(zeros.size() * kAmpBytes);
      writer.put(job, std::move(zeros));
    }
    ChunkReader reader(store_, codec_pool(), buffers_, inflight_,
                       std::move(scale_jobs), split_reader_window());
    while (auto item = reader.next()) {
      if (q >= c) {
        for (amp_t& a : item->buf) a *= scale;
      } else {
        sv::collapse(item->buf, q, outcome, scale);
      }
      writer.put(item->job, std::move(item->buf));
    }
    writer.drain();
    telemetry_.cpu_phases.add("decompress", reader.decode_seconds());
    telemetry_.cpu_phases.add("recompress", writer.encode_seconds());
    charge_cpu(codec_pool_
                   ? reader.wait_seconds() + writer.wait_seconds()
                   : (reader.decode_seconds() + writer.encode_seconds()) /
                         config_.cpu_codec_workers);
  }
  refresh_footprint_telemetry();
  return outcome;
}

}  // namespace memq::core
