#include "core/compressed_base.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "sv/kernels.hpp"

namespace memq::core {

CompressedEngineBase::CompressedEngineBase(qubit_t n_qubits,
                                           const EngineConfig& config)
    : config_(config),
      store_(n_qubits, std::min<qubit_t>(config.chunk_qubits, n_qubits),
             config.codec),
      rng_(config.seed),
      scratch_(store_.chunk_amps()),
      layout_(n_qubits) {
  refresh_footprint_telemetry();
}

void CompressedEngineBase::reset() {
  store_.init_basis(0);
  telemetry_ = {};
  rng_ = Prng(config_.seed);
  layout_ = QubitLayout(n_qubits());
  state_is_fresh_ = true;
  refresh_footprint_telemetry();
}

void CompressedEngineBase::refresh_footprint_telemetry() {
  const std::uint64_t working =
      (store_.chunk_amps() * kAmpBytes) * 4;  // scratch + pair + staging
  telemetry_.peak_host_state_bytes =
      std::max(telemetry_.peak_host_state_bytes,
               store_.peak_compressed_bytes() + working);
  telemetry_.final_compression_ratio = store_.compression_ratio();
  telemetry_.chunk_loads = store_.loads();
  telemetry_.chunk_stores = store_.stores();
}

std::span<amp_t> CompressedEngineBase::load_chunk_timed(
    index_t i, std::vector<amp_t>& buf) {
  buf.resize(store_.chunk_amps());
  WallTimer t;
  store_.load(i, buf);
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("decompress", dt);
  charge_cpu(dt / config_.cpu_codec_workers);
  return buf;
}

void CompressedEngineBase::store_chunk_timed(index_t i,
                                             std::span<const amp_t> buf) {
  WallTimer t;
  store_.store(i, buf);
  const double dt = t.seconds();
  telemetry_.cpu_phases.add("recompress", dt);
  charge_cpu(dt / config_.cpu_codec_workers);
}

amp_t CompressedEngineBase::amplitude(index_t i) {
  MEMQ_CHECK(i < dim_of(n_qubits()), "amplitude index out of range");
  const index_t phys = layout_.to_physical(i);
  const index_t chunk = phys >> store_.chunk_qubits();
  if (store_.is_zero_chunk(chunk)) return amp_t{0, 0};
  store_.load(chunk, scratch_);
  return scratch_[phys & (store_.chunk_amps() - 1)];
}

double CompressedEngineBase::norm() {
  double s = 0.0;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    if (store_.is_zero_chunk(ci)) continue;
    store_.load(ci, scratch_);
    for (const amp_t& a : scratch_) s += std::norm(a);
  }
  return s;
}

std::map<index_t, std::uint64_t> CompressedEngineBase::sample_counts(
    std::size_t shots) {
  std::vector<double> u(shots);
  for (auto& x : u) x = rng_.uniform();
  std::sort(u.begin(), u.end());

  // One pass over chunks in index order = one pass over the CDF. Compressed
  // amplitudes do not sum to exactly 1, so rescale by the true norm.
  const double total = norm();
  MEMQ_CHECK(total > 0.0, "sampling from the zero state");
  std::map<index_t, std::uint64_t> counts;
  double cumulative = 0.0;
  std::size_t next = 0;
  index_t last_nonzero = 0;
  for (index_t ci = 0; ci < store_.n_chunks() && next < shots; ++ci) {
    if (store_.is_zero_chunk(ci)) continue;
    store_.load(ci, scratch_);
    const index_t base = ci << store_.chunk_qubits();
    for (index_t j = 0; j < scratch_.size() && next < shots; ++j) {
      const double p = std::norm(scratch_[j]) / total;
      if (p > 0) last_nonzero = base + j;
      cumulative += p;
      while (next < shots && u[next] < cumulative) {
        ++counts[layout_.to_logical(base + j)];
        ++next;
      }
    }
  }
  if (next < shots) counts[layout_.to_logical(last_nonzero)] += shots - next;
  return counts;
}

sv::StateVector CompressedEngineBase::to_dense() {
  MEMQ_CHECK(n_qubits() <= 28, "to_dense beyond 28 qubits");
  sv::StateVector out(n_qubits());
  auto amps = out.amplitudes();
  if (layout_.is_identity()) {
    for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
      const auto slice =
          amps.subspan(ci << store_.chunk_qubits(), store_.chunk_amps());
      store_.load(ci, slice);
    }
    return out;
  }
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    store_.load(ci, scratch_);
    const index_t base = ci << store_.chunk_qubits();
    for (index_t j = 0; j < scratch_.size(); ++j)
      amps[layout_.to_logical(base + j)] = scratch_[j];
  }
  return out;
}

double CompressedEngineBase::expectation(const sv::PauliString& pauli_in) {
  MEMQ_CHECK(pauli_in.ops.size() == n_qubits(),
             "Pauli string length " << pauli_in.ops.size()
                                    << " != qubit count " << n_qubits());
  // Translate the logical string into physical positions.
  sv::PauliString pauli = pauli_in;
  if (!layout_.is_identity()) {
    for (qubit_t q = 0; q < n_qubits(); ++q)
      pauli.ops[layout_.physical(q)] = pauli_in.ops[q];
  }
  // P|b> = i^{nY} (-1)^{popcount(b & (Y|Z))} |b ^ (X|Y)>, so
  // <P> = sum_i conj(psi_i) * phase(i ^ xmask) * psi_{i ^ xmask},
  // evaluated chunk against partner chunk (the X/Y pattern on high qubits
  // selects the partner; low bits permute within the chunk).
  index_t xmask = 0, yzmask = 0;
  int n_y = 0;
  for (qubit_t q = 0; q < n_qubits(); ++q) {
    switch (pauli.ops[q]) {
      case 'I':
        break;
      case 'X':
        xmask |= index_t{1} << q;
        break;
      case 'Y':
        xmask |= index_t{1} << q;
        yzmask |= index_t{1} << q;
        ++n_y;
        break;
      case 'Z':
        yzmask |= index_t{1} << q;
        break;
      default:
        MEMQ_THROW(InvalidArgument,
                   "bad Pauli character '" << pauli.ops[q] << "'");
    }
  }
  static constexpr amp_t kIPowers[4] = {
      {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const amp_t y_phase = kIPowers[n_y % 4];

  const qubit_t c = store_.chunk_qubits();
  const index_t x_high = xmask >> c;
  const index_t x_low = xmask & (store_.chunk_amps() - 1);

  std::vector<amp_t> partner(store_.chunk_amps());
  amp_t total{0, 0};
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    const index_t cj = ci ^ x_high;
    if (store_.is_zero_chunk(ci) || store_.is_zero_chunk(cj)) continue;
    store_.load(ci, scratch_);
    const std::vector<amp_t>* other = &scratch_;
    if (cj != ci) {
      store_.load(cj, partner);
      other = &partner;
    }
    const index_t base = ci << c;
    amp_t chunk_sum{0, 0};
    for (index_t l = 0; l < scratch_.size(); ++l) {
      const index_t j = (base | l) ^ xmask;
      const amp_t value = (*other)[l ^ x_low];
      const double sign = bits::popcount(j & yzmask) & 1 ? -1.0 : 1.0;
      chunk_sum += std::conj(scratch_[l]) * (sign * value);
    }
    total += chunk_sum;
  }
  total *= y_phase;
  // Hermitian observable: the imaginary part is numerical noise.
  return total.real();
}

void CompressedEngineBase::load_dense(std::span<const amp_t> amplitudes) {
  MEMQ_CHECK(amplitudes.size() == dim_of(n_qubits()),
             "load_dense needs " << dim_of(n_qubits()) << " amplitudes, got "
                                 << amplitudes.size());
  layout_ = QubitLayout(n_qubits());  // caller data is in logical order
  state_is_fresh_ = false;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    WallTimer t;
    store_.store(ci, amplitudes.subspan(ci << store_.chunk_qubits(),
                                        store_.chunk_amps()));
    const double dt = t.seconds();
    telemetry_.cpu_phases.add("recompress", dt);
    charge_cpu(dt / config_.cpu_codec_workers);
  }
  refresh_footprint_telemetry();
}

std::vector<double> CompressedEngineBase::marginal_probabilities(
    const std::vector<qubit_t>& qubits) {
  MEMQ_CHECK(!qubits.empty() && qubits.size() <= 20,
             "marginal over 1..20 qubits, got " << qubits.size());
  for (const qubit_t q : qubits)
    MEMQ_CHECK(q < n_qubits(), "qubit " << q << " out of range");
  // Map requested logical qubits to physical bit positions once.
  std::vector<qubit_t> phys(qubits.size());
  for (std::size_t k = 0; k < qubits.size(); ++k)
    phys[k] = layout_.physical(qubits[k]);

  const qubit_t c = store_.chunk_qubits();
  std::vector<double> marginal(std::size_t{1} << qubits.size(), 0.0);
  double total = 0.0;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    if (store_.is_zero_chunk(ci)) continue;
    store_.load(ci, scratch_);
    const index_t base = ci << c;
    for (index_t l = 0; l < scratch_.size(); ++l) {
      const double p = std::norm(scratch_[l]);
      if (p == 0.0) continue;
      const index_t global = base | l;
      index_t key = 0;
      for (std::size_t k = 0; k < phys.size(); ++k)
        if (bits::test(global, phys[k])) key |= index_t{1} << k;
      marginal[key] += p;
      total += p;
    }
  }
  MEMQ_CHECK(total > 0.0, "marginal of the zero state");
  for (double& p : marginal) p /= total;  // fold out lossy norm drift
  return marginal;
}

void CompressedEngineBase::save_state(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MEMQ_CHECK(static_cast<bool>(out), "cannot open checkpoint '" << path
                                                                << "'");
  // Layout section precedes the store so restored states keep their qubit
  // mapping (chunks are stored in physical order).
  const std::uint32_t n = n_qubits();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  for (qubit_t q = 0; q < n; ++q) {
    const std::uint32_t p = layout_.physical(q);
    out.write(reinterpret_cast<const char*>(&p), sizeof p);
  }
  store_.save(out);
}

void CompressedEngineBase::load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEMQ_CHECK(static_cast<bool>(in), "cannot open checkpoint '" << path
                                                               << "'");
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (!in.good() || n != n_qubits())
    throw CorruptData("checkpoint: qubit-count header mismatch");
  std::vector<qubit_t> physical_of(n);
  for (auto& p : physical_of) {
    in.read(reinterpret_cast<char*>(&p), sizeof p);
    if (!in.good() || p >= n) throw CorruptData("checkpoint: bad layout");
  }
  store_.restore(in);
  QubitLayout restored(n);
  bool identity = true;
  for (qubit_t q = 0; q < n; ++q)
    if (physical_of[q] != q) identity = false;
  if (!identity) {
    // Rebuild through the optimize-style constructor path: install mapping.
    restored = QubitLayout::from_mapping(physical_of);
  }
  layout_ = restored;
  state_is_fresh_ = false;
  refresh_footprint_telemetry();
}

bool CompressedEngineBase::measure_qubit(qubit_t q) {
  MEMQ_CHECK(q < n_qubits(), "measured qubit out of range");
  const qubit_t c = store_.chunk_qubits();

  // Pass 1: P(q = 1).
  double p1 = 0.0, total = 0.0;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    if (store_.is_zero_chunk(ci)) continue;
    (void)load_chunk_timed(ci, scratch_);
    double chunk_norm = 0.0, chunk_one = 0.0;
    if (q >= c) {
      for (const amp_t& a : scratch_) chunk_norm += std::norm(a);
      if (bits::test(ci, q - c)) chunk_one = chunk_norm;
    } else {
      const index_t bit = index_t{1} << q;
      for (index_t j = 0; j < scratch_.size(); ++j) {
        const double p = std::norm(scratch_[j]);
        chunk_norm += p;
        if (j & bit) chunk_one += p;
      }
    }
    total += chunk_norm;
    p1 += chunk_one;
  }
  MEMQ_CHECK(total > 0.0, "measuring the zero state");
  p1 /= total;

  const bool outcome = rng_.uniform() < p1;
  const double p = outcome ? p1 : 1.0 - p1;
  MEMQ_CHECK(p > 1e-300, "measurement hit a zero-probability branch");
  const double scale = 1.0 / std::sqrt(p * total);

  // Pass 2: collapse + renormalize (the true norm folds into the scale so
  // lossy drift does not accumulate across measurements).
  std::vector<amp_t> zeros;
  for (index_t ci = 0; ci < store_.n_chunks(); ++ci) {
    if (q >= c && bits::test(ci, q - c) != outcome) {
      if (!store_.is_zero_chunk(ci)) {
        zeros.assign(store_.chunk_amps(), amp_t{0, 0});
        store_chunk_timed(ci, zeros);
      }
      continue;
    }
    if (store_.is_zero_chunk(ci)) continue;
    (void)load_chunk_timed(ci, scratch_);
    if (q >= c) {
      for (amp_t& a : scratch_) a *= scale;
    } else {
      sv::collapse(scratch_, q, outcome, scale);
    }
    store_chunk_timed(ci, scratch_);
  }
  refresh_footprint_telemetry();
  return outcome;
}

}  // namespace memq::core
