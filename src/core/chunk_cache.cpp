#include "core/chunk_cache.hpp"

#include <algorithm>
#include <cerrno>
#include <iterator>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/chunk_store.hpp"

namespace memq::core {

ChunkCache::ChunkCache(ChunkStore& store, CodecPool* pool, BufferPool& buffers,
                       InFlightLedger& ledger, std::uint64_t budget_bytes)
    : store_(store),
      buffers_(buffers),
      ledger_(ledger),
      budget_bytes_(budget_bytes),
      chunk_raw_bytes_(store.chunk_raw_bytes()),
      writer_(store, pool, buffers, ledger,
              pool != nullptr ? pool->workers() : 0),
      hits_(metrics::Registry::global().counter("cache.hits")),
      misses_(metrics::Registry::global().counter("cache.misses")),
      alias_hits_(metrics::Registry::global().counter("cache.alias_hits")),
      evictions_(metrics::Registry::global().counter("cache.evictions")),
      writebacks_(metrics::Registry::global().counter("cache.writebacks")),
      clean_evictions_(
          metrics::Registry::global().counter("cache.clean_evictions")),
      stores_absorbed_(
          metrics::Registry::global().counter("cache.stores_absorbed")),
      writeback_retries_(
          metrics::Registry::global().counter("cache.writeback_retries")),
      resident_g_(metrics::Registry::global().gauge("cache.resident_bytes")) {}

ChunkCacheStats ChunkCache::stats() const noexcept {
  ChunkCacheStats s;
  s.hits = hits_.value() - base_.hits;
  s.misses = misses_.value() - base_.misses;
  s.alias_hits = alias_hits_.value() - base_.alias_hits;
  s.evictions = evictions_.value() - base_.evictions;
  s.writebacks = writebacks_.value() - base_.writebacks;
  s.clean_evictions = clean_evictions_.value() - base_.clean_evictions;
  s.stores_absorbed = stores_absorbed_.value() - base_.stores_absorbed;
  s.writeback_retries = writeback_retries_.value() - base_.writeback_retries;
  s.peak_resident_bytes = resident_g_.peak();
  return s;
}

void ChunkCache::reset_stats() noexcept {
  base_.hits = hits_.value();
  base_.misses = misses_.value();
  base_.alias_hits = alias_hits_.value();
  base_.evictions = evictions_.value();
  base_.writebacks = writebacks_.value();
  base_.clean_evictions = clean_evictions_.value();
  base_.stores_absorbed = stores_absorbed_.value();
  base_.writeback_retries = writeback_retries_.value();
  resident_g_.reset_peak();
}

ChunkCache::~ChunkCache() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best effort; engines flush explicitly where the
    // result matters (save_state) and can surface the error there.
  }
}

std::optional<index_t> ChunkCache::position_in(const StageAccess& stage,
                                               index_t slot) {
  if (stage.count != 0 &&
      (slot < stage.base || slot >= stage.base + stage.count))
    return std::nullopt;  // windowed stage: slots outside are untouched
  const index_t local = slot - stage.base;
  switch (stage.kind) {
    case StageAccess::Kind::kEvery:
      return local;
    case StageAccess::Kind::kPair:
      return local & ~stage.pair_mask;
    case StageAccess::Kind::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

std::uint64_t ChunkCache::next_use_of(index_t slot,
                                      std::uint64_t from_time) const {
  if (!plan_active()) return kNever;
  for (std::size_t s = static_cast<std::size_t>(from_time / width_);
       s < plan_.size(); ++s) {
    const std::optional<index_t> pos = position_in(plan_[s], slot);
    if (!pos) continue;
    const std::uint64_t t = s * width_ + *pos;
    if (t > from_time) return t;
  }
  return kNever;
}

void ChunkCache::touch(index_t slot, Entry& entry) {
  entry.last_use = ++lru_tick_;
  if (plan_active()) {
    const std::optional<index_t> pos = position_in(plan_[stage_], slot);
    if (pos) now_ = std::max(now_, stage_ * width_ + *pos);
    entry.next_use = next_use_of(slot, now_);
  }
}

void ChunkCache::advance_clock(index_t slot) {
  if (!plan_active()) return;
  const std::optional<index_t> pos = position_in(plan_[stage_], slot);
  if (pos) now_ = std::max(now_, stage_ * width_ + *pos);
}

bool ChunkCache::worth_inserting(index_t slot) {
  if (!plan_active()) return true;  // LRU mode: always cache
  if (resident_g_.value() + chunk_raw_bytes_ <= budget_bytes_) return true;
  // Belady admits a chunk only when some resident is needed strictly later
  // than the chunk's own next scheduled access — otherwise the eviction it
  // forces discards a sooner-needed entry (or, at the end of the plan,
  // churns a dirty entry through the codec for nothing).
  const std::uint64_t incoming = next_use_of(slot, now_);
  for (auto& [s, e] : entries_) {
    if (e.next_use <= now_) e.next_use = next_use_of(s, now_);
    if (e.next_use > incoming) return true;
  }
  return false;
}

void ChunkCache::guard_slot(index_t i) {
  if (pending_wb_.empty() || pending_wb_.count(i) == 0) return;
  writer_.drain();
  pending_wb_.clear();
}

void ChunkCache::writeback(index_t slot, std::vector<amp_t> buf) {
  // Injected write-back failures are recoverable by construction: `buf`
  // still holds the amplitudes and the store's previous blob stays intact
  // (blob replacement is atomic at blob granularity), so a retry simply
  // re-submits from the clean resident copy.
  constexpr int kMaxWritebackRetries = 3;
  for (int attempt = 1; MEMQ_FAULT("cache.writeback"); ++attempt) {
    writeback_retries_.add();
    MEMQ_TRACE_INSTANT("fault", "cache.writeback.retry",
                       trace::arg("attempt", std::uint64_t(attempt)));
    if (attempt >= kMaxWritebackRetries) {
      // Persistent failure: undo this write-back's accounting so the
      // typed error surfaces without leaking ledger bytes, leaving the
      // previous blob as the store's (stale but uncorrupted) contents.
      ledger_.release(chunk_raw_bytes_);
      buffers_.put(std::move(buf));
      MEMQ_THROW_IO("cache write-back of chunk "
                              << slot << " failed after "
                              << kMaxWritebackRetries
                              << " attempts (injected); previous blob kept",
                 EIO);
    }
  }
  writer_.put({slot, 0, false}, std::move(buf));
  pending_wb_.insert(slot);
}

void ChunkCache::evict_to_fit(std::uint64_t extra_bytes) {
  while (!entries_.empty() &&
         resident_g_.value() + extra_bytes > budget_bytes_) {
    auto victim = entries_.end();
    if (plan_active()) {
      // Belady: evict the farthest next use. Entries whose memoized next
      // use is in the past (a scheduled access was skipped, e.g. a zero
      // chunk) are lazily recomputed from the current clock.
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.next_use <= now_)
          it->second.next_use = next_use_of(it->first, now_);
        if (victim == entries_.end() ||
            it->second.next_use > victim->second.next_use ||
            (it->second.next_use == victim->second.next_use &&
             it->first > victim->first))
          victim = it;
      }
    } else {
      // LRU fallback for plan-less sweeps.
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (victim == entries_.end() ||
            it->second.last_use < victim->second.last_use)
          victim = it;
      }
    }
    const index_t slot = victim->first;
    Entry entry = std::move(victim->second);
    entries_.erase(victim);
    resident_g_.sub(static_cast<std::int64_t>(chunk_raw_bytes_));
    evictions_.add();
    MEMQ_TRACE_INSTANT("cache", "evict",
                       trace::arg("chunk", std::uint64_t{slot}) + "," +
                           trace::arg("next_use", entry.next_use));
    if (entry.dirty) {
      guard_slot(slot);
      writebacks_.add();
      MEMQ_TRACE_INSTANT("cache", "writeback",
                         trace::arg("chunk", std::uint64_t{slot}));
      writeback(slot, std::move(entry.data));  // releases the ledger bytes
    } else {
      clean_evictions_.add();
      ledger_.release(chunk_raw_bytes_);
      buffers_.put(std::move(entry.data));
    }
    MEMQ_TRACE_COUNTER("cache_resident_bytes",
                       static_cast<double>(resident_g_.value()));
  }
}

void ChunkCache::insert(index_t i, std::span<const amp_t> data, bool dirty,
                        bool from_decode) {
  Entry entry;
  entry.data = buffers_.get(store_.chunk_amps());
  std::copy(data.begin(), data.end(), entry.data.begin());
  entry.dirty = dirty;
  entry.from_decode = from_decode;
  ledger_.acquire(chunk_raw_bytes_);
  resident_g_.add(static_cast<std::int64_t>(chunk_raw_bytes_));
  auto [it, inserted] = entries_.emplace(i, std::move(entry));
  MEMQ_ASSERT(inserted);
  (void)inserted;
  touch(i, it->second);
}

void ChunkCache::load(index_t i, std::span<amp_t> out) {
  MEMQ_CHECK(out.size() == store_.chunk_amps(), "cache load span mismatch");
  const auto it = entries_.find(i);
  if (it != entries_.end()) {
    std::copy(it->second.data.begin(), it->second.data.end(), out.begin());
    touch(i, it->second);
    hits_.add();
    MEMQ_TRACE_INSTANT("cache", "hit",
                       trace::arg("chunk", std::uint64_t{i}) + "," +
                           trace::arg("next_use", it->second.next_use));
    return;
  }
  guard_slot(i);
  if (try_alias_load(i, out)) return;
  MEMQ_TRACE_INSTANT("cache", "miss", trace::arg("chunk", std::uint64_t{i}));
  WallTimer t;
  store_.load(i, out);
  decode_seconds_ += t.seconds();
  misses_.add();
  advance_clock(i);  // pass-throughs must still move the Belady clock
  if (budget_bytes_ >= chunk_raw_bytes_ && worth_inserting(i)) {
    evict_to_fit(chunk_raw_bytes_);
    insert(i, out, /*dirty=*/false, /*from_decode=*/true);
  }
}

bool ChunkCache::try_alias_load(index_t i, std::span<amp_t> out) {
  const std::uint64_t cid = store_.content_id(i);
  if (cid == BlobStore::kNoContentId) return false;
  index_t source = 0;
  bool found = false;
  for (const auto& [slot, e] : entries_) {
    // Eligible sources hold exactly decode(blob bytes): clean, no encode in
    // flight, and decode-derived (see Entry::from_decode). Since the blob
    // store byte-verified slot and i onto one physical copy, copying the
    // entry is bit-identical to decoding blob i.
    if (e.dirty || !e.from_decode) continue;
    if (!pending_wb_.empty() && pending_wb_.count(slot) != 0) continue;
    if (store_.content_id(slot) != cid) continue;
    std::copy(e.data.begin(), e.data.end(), out.begin());
    source = slot;
    found = true;
    break;
  }
  if (!found) return false;
  alias_hits_.add();
  MEMQ_TRACE_INSTANT("cache", "alias_hit",
                     trace::arg("chunk", std::uint64_t{i}) + "," +
                         trace::arg("source", std::uint64_t{source}));
  advance_clock(i);
  if (budget_bytes_ >= chunk_raw_bytes_ && worth_inserting(i)) {
    evict_to_fit(chunk_raw_bytes_);
    insert(i, out, /*dirty=*/false, /*from_decode=*/true);
  }
  return true;
}

void ChunkCache::store(index_t i, std::span<const amp_t> in) {
  MEMQ_CHECK(in.size() == store_.chunk_amps(), "cache store span mismatch");
  const auto it = entries_.find(i);
  if (it != entries_.end()) {
    std::copy(in.begin(), in.end(), it->second.data.begin());
    it->second.dirty = true;
    it->second.from_decode = false;  // pre-codec amplitudes from here on
    touch(i, it->second);
    stores_absorbed_.add();
    return;
  }
  guard_slot(i);
  advance_clock(i);
  if (budget_bytes_ >= chunk_raw_bytes_ && worth_inserting(i)) {
    evict_to_fit(chunk_raw_bytes_);
    insert(i, in, /*dirty=*/true, /*from_decode=*/false);
    stores_absorbed_.add();
    return;
  }
  // Not cacheable (budget below one chunk, or Belady declined the slot):
  // encode immediately — still through the bounded writer so pool mode
  // overlaps the encode.
  std::vector<amp_t> buf = buffers_.get(store_.chunk_amps());
  std::copy(in.begin(), in.end(), buf.begin());
  ledger_.acquire(chunk_raw_bytes_);
  writeback(i, std::move(buf));
}

bool ChunkCache::is_zero(index_t i) const {
  const auto it = entries_.find(i);
  if (it != entries_.end() && it->second.dirty) return false;
  // A slot with an encode still in flight has unknown blob state; treat as
  // possibly nonzero rather than racing the write-back worker.
  if (!pending_wb_.empty() && pending_wb_.count(i) != 0) return false;
  return store_.is_zero_chunk(i);
}

bool ChunkCache::is_constant(index_t i) const {
  const auto it = entries_.find(i);
  if (it != entries_.end() && it->second.dirty) return false;
  if (!pending_wb_.empty() && pending_wb_.count(i) != 0) return false;
  return store_.is_constant_chunk(i);
}

bool ChunkCache::dirty(index_t i) const {
  const auto it = entries_.find(i);
  return it != entries_.end() && it->second.dirty;
}

void ChunkCache::drop(index_t i) {
  guard_slot(i);
  const auto it = entries_.find(i);
  if (it == entries_.end()) return;
  ledger_.release(chunk_raw_bytes_);
  resident_g_.sub(static_cast<std::int64_t>(chunk_raw_bytes_));
  buffers_.put(std::move(it->second.data));
  entries_.erase(it);
}

void ChunkCache::on_swap(index_t i, index_t j) {
  if (i == j) return;
  guard_slot(i);
  guard_slot(j);
  auto ni = entries_.extract(i);
  auto nj = entries_.extract(j);
  if (ni) {
    ni.key() = j;
    entries_.insert(std::move(ni));
  }
  if (nj) {
    nj.key() = i;
    entries_.insert(std::move(nj));
  }
  if (plan_active()) {
    if (auto it = entries_.find(j); it != entries_.end() && ni)
      it->second.next_use = next_use_of(j, now_);
    if (auto it = entries_.find(i); it != entries_.end() && nj)
      it->second.next_use = next_use_of(i, now_);
  }
}

void ChunkCache::flush() {
  for (auto& [slot, entry] : entries_) {
    if (!entry.dirty) continue;
    std::vector<amp_t> buf = buffers_.get(store_.chunk_amps());
    std::copy(entry.data.begin(), entry.data.end(), buf.begin());
    ledger_.acquire(chunk_raw_bytes_);
    writebacks_.add();
    writeback(slot, std::move(buf));
    entry.dirty = false;
  }
  writer_.drain();
  pending_wb_.clear();
}

void ChunkCache::invalidate() {
  writer_.drain();
  pending_wb_.clear();
  for (auto& [slot, entry] : entries_) {
    ledger_.release(chunk_raw_bytes_);
    buffers_.put(std::move(entry.data));
  }
  entries_.clear();
  resident_g_.set(0);
}

void ChunkCache::set_plan(std::vector<StageAccess> plan) {
  plan_ = std::move(plan);
  stage_ = 0;
  width_ = store_.n_chunks();
  now_ = 0;
  // Memoized distances refer to the previous plan's clock; mark them stale
  // so the next eviction scan recomputes against the new schedule.
  for (auto& [slot, entry] : entries_) entry.next_use = 0;
}

void ChunkCache::begin_stage(std::size_t stage_index) {
  stage_ = stage_index;
  if (!plan_.empty()) now_ = std::max(now_, stage_index * width_);
}

void ChunkCache::clear_plan() {
  plan_.clear();
  stage_ = 0;
}

ChunkCache::Timings ChunkCache::take_timings() {
  Timings t;
  t.decode_seconds = decode_seconds_;
  decode_seconds_ = 0.0;
  t.encode_seconds = writer_.encode_seconds() - encode_taken_;
  encode_taken_ = writer_.encode_seconds();
  t.wait_seconds = writer_.wait_seconds() - wait_taken_;
  wait_taken_ = writer_.wait_seconds();
  return t;
}

// ---------------------------------------------------------------------------
// CachedReader / CachedWriter
// ---------------------------------------------------------------------------

CachedReader::CachedReader(ChunkStore& store, CodecPool* pool,
                           BufferPool& buffers, InFlightLedger& ledger,
                           ChunkCache* cache, std::vector<ChunkJob> jobs,
                           std::size_t window)
    : store_(store), buffers_(buffers), ledger_(ledger), cache_(cache) {
  if (cache_ == nullptr) {
    reader_.emplace(store, pool, buffers, ledger, std::move(jobs), window);
  } else {
    jobs_ = std::move(jobs);
  }
}

std::optional<ChunkReader::Item> CachedReader::next() {
  if (reader_) return reader_->next();
  if (next_job_ >= jobs_.size()) return std::nullopt;
  const std::size_t half = store_.chunk_amps();
  ChunkReader::Item item;
  item.job = jobs_[next_job_++];
  const std::size_t amps = half * (item.job.has_b ? 2 : 1);
  item.buf = buffers_.get(amps);
  ledger_.acquire(amps * kAmpBytes);
  cache_->load(item.job.a, std::span<amp_t>(item.buf).first(half));
  if (item.job.has_b)
    cache_->load(item.job.b, std::span<amp_t>(item.buf).subspan(half, half));
  return item;
}

void CachedReader::recycle(std::vector<amp_t> buf) {
  if (reader_) {
    reader_->recycle(std::move(buf));
    return;
  }
  ledger_.release(buf.size() * kAmpBytes);
  buffers_.put(std::move(buf));
}

CachedWriter::CachedWriter(ChunkStore& store, CodecPool* pool,
                           BufferPool& buffers, InFlightLedger& ledger,
                           ChunkCache* cache, std::size_t max_pending)
    : store_(store), buffers_(buffers), ledger_(ledger), cache_(cache) {
  if (cache_ == nullptr)
    writer_.emplace(store, pool, buffers, ledger, max_pending);
}

double CachedWriter::put(const ChunkJob& job, std::vector<amp_t> buf) {
  if (writer_) return writer_->put(job, std::move(buf));
  const std::size_t half = store_.chunk_amps();
  cache_->store(job.a, std::span<const amp_t>(buf).first(half));
  if (job.has_b)
    cache_->store(job.b, std::span<const amp_t>(buf).subspan(half, half));
  ledger_.release(buf.size() * kAmpBytes);
  buffers_.put(std::move(buf));
  return 0.0;
}

void CachedWriter::drain() {
  if (writer_) writer_->drain();
}

PlanCost forecast_plan_cost(const std::vector<StageAccess>& plan,
                            index_t n_chunks, std::uint64_t chunk_raw_bytes,
                            std::uint64_t budget_bytes) {
  PlanCost cost;
  const auto stage_count = [n_chunks](const StageAccess& stage) -> index_t {
    return stage.count != 0 ? stage.count : n_chunks;
  };
  for (const StageAccess& stage : plan) {
    if (stage.kind == StageAccess::Kind::kNone) continue;
    cost.chunk_loads += stage_count(stage);
    cost.chunk_stores += stage_count(stage);
  }
  cost.h2d_bytes = cost.chunk_loads * chunk_raw_bytes;

  const bool cache_on =
      chunk_raw_bytes > 0 && budget_bytes >= chunk_raw_bytes;
  // Replaying very long access streams is not worth the planning time; past
  // the cap, report the cache-less analytic bound and say so.
  constexpr std::uint64_t kReplayCap = 1ull << 23;
  const bool replay = cache_on && cost.chunk_loads <= kReplayCap;
  if (!cache_on || !replay) {
    cost.cache_misses = cost.chunk_loads;
    cost.codec_encodes = cost.chunk_stores;
    cost.exact = !cache_on;
    return cost;
  }
  cost.chunk_loads = 0;
  cost.chunk_stores = 0;
  cost.h2d_bytes = 0;

  // Per-slot sorted access times (time = stage * n_chunks + sweep position,
  // exactly the ChunkCache clock).
  const std::uint64_t width = n_chunks;
  std::vector<std::vector<std::uint64_t>> times(n_chunks);
  for (std::size_t s = 0; s < plan.size(); ++s) {
    const StageAccess& stage = plan[s];
    if (stage.kind == StageAccess::Kind::kNone) continue;
    const index_t sc = stage_count(stage);
    for (index_t local = 0; local < sc; ++local) {
      const index_t pos = stage.kind == StageAccess::Kind::kPair
                              ? (local & ~stage.pair_mask)
                              : local;
      times[stage.base + local].push_back(s * width + pos);
    }
  }

  struct Resident {
    bool dirty = false;
  };
  std::unordered_map<index_t, Resident> resident;
  std::vector<std::size_t> cursor(n_chunks, 0);
  const std::uint64_t capacity = budget_bytes / chunk_raw_bytes;
  std::uint64_t now = 0;

  constexpr std::uint64_t kNoUse = std::numeric_limits<std::uint64_t>::max();
  const auto next_use = [&](index_t slot) -> std::uint64_t {
    std::size_t& c = cursor[slot];
    while (c < times[slot].size() && times[slot][c] <= now) ++c;
    return c < times[slot].size() ? times[slot][c] : kNoUse;
  };
  // Mirrors ChunkCache::worth_inserting / evict_to_fit: admit when the
  // cache has room, or when some resident's next use is strictly farther
  // than the incoming slot's; evict the farthest next use, ties broken
  // toward the larger slot index.
  const auto worth = [&](index_t slot) {
    if (resident.size() < capacity) return true;
    const std::uint64_t incoming = next_use(slot);
    for (const auto& [rslot, r] : resident)
      if (next_use(rslot) > incoming) return true;
    return false;
  };
  const auto evict_to_fit = [&] {
    while (resident.size() >= capacity && !resident.empty()) {
      auto victim = resident.begin();
      std::uint64_t victim_next = next_use(victim->first);
      for (auto it = std::next(resident.begin()); it != resident.end(); ++it) {
        const std::uint64_t nu = next_use(it->first);
        if (nu > victim_next ||
            (nu == victim_next && it->first > victim->first)) {
          victim = it;
          victim_next = nu;
        }
      }
      if (victim->second.dirty) ++cost.codec_encodes;
      resident.erase(victim);
    }
  };
  const auto load = [&](index_t slot, std::uint64_t t) {
    now = std::max(now, t);
    ++cost.chunk_loads;
    cost.h2d_bytes += chunk_raw_bytes;
    if (resident.count(slot) != 0) {
      ++cost.cache_hits;
      return;
    }
    ++cost.cache_misses;
    if (worth(slot)) {
      evict_to_fit();
      resident.emplace(slot, Resident{false});
    }
  };
  const auto store = [&](index_t slot, std::uint64_t t) {
    now = std::max(now, t);
    ++cost.chunk_stores;
    const auto it = resident.find(slot);
    if (it != resident.end()) {
      it->second.dirty = true;
      return;
    }
    if (worth(slot)) {
      evict_to_fit();
      resident.emplace(slot, Resident{true});
      return;
    }
    ++cost.codec_encodes;
  };

  for (std::size_t s = 0; s < plan.size(); ++s) {
    const StageAccess& stage = plan[s];
    const index_t sc = stage_count(stage);
    switch (stage.kind) {
      case StageAccess::Kind::kNone:
        break;
      case StageAccess::Kind::kEvery:
        for (index_t local = 0; local < sc; ++local) {
          load(stage.base + local, s * width + local);
          store(stage.base + local, s * width + local);
        }
        break;
      case StageAccess::Kind::kPair:
        for (index_t local = 0; local < sc; ++local) {
          if ((local & stage.pair_mask) != 0) continue;
          const index_t i = stage.base + local;
          const index_t j = stage.base + (local | stage.pair_mask);
          const std::uint64_t t = s * width + local;
          load(i, t);
          load(j, t);
          store(i, t);
          store(j, t);
        }
        break;
    }
  }
  for (const auto& [slot, r] : resident)
    if (r.dirty) ++cost.codec_encodes;  // end-of-run flush
  return cost;
}

}  // namespace memq::core
