// Batched throughput mode: K independent member circuits per codec pass.
//
// The throughput workloads of the paper's setting — parameter sweeps,
// repeated-shot sampling, seeded noise trajectories — run MANY cheap,
// near-identical circuits. Executing them one engine at a time decompresses
// the same chunks K times; executing them together amortizes every codec
// pass across the members that still agree on the schedule.
//
// Mechanism: ONE MemQSim engine widened over B = ceil(log2(K)) member-index
// qubits above the member register. Member m owns the physical chunk window
// [m * span, (m + 1) * span), span = 2^(member_qubits - chunk_qubits) — so a
// member window is bit-for-bit a standalone state of member_qubits qubits,
// and every stage executes through the unmodified serial stage machinery
// with window-local chunk arithmetic (memq_engine.hpp batch hooks).
//
// Shared prefixes execute ONCE: the per-member stage plans are folded into a
// fork tree — while every member of a group agrees on the next stage, the
// group's representative window executes it alone; where plans diverge (or
// end), the representative's window fans out to the subgroup representatives
// as blob-level clones with no codec pass (StatePager::fanout). Over the
// dedup backend the clones refcount-share physical chunks until a divergent
// write CoW-splits them, so identical member prefixes cost one physical copy.
//
// Determinism / the differential oracle: the fork tree, the clone order and
// the member windows are all functions of the plans alone, so a batch run is
// deterministic, and each member's final chunks match its own serial run
// byte-for-byte whenever the codec round-trip count per chunk matches (always
// for lossless codecs; for lossy codecs when the cache is off — a cache
// would let the serial run skip lossy round trips the fan-out forces).
// tests/test_differential.cpp pins this as the batch-vs-serial oracle.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "circuit/noise.hpp"
#include "core/memq_engine.hpp"

namespace memq::core {

/// What the batch run did, for telemetry (schema 8 "batch" block) and the
/// bench's sublinearity assertions.
struct BatchStats {
  std::uint32_t members = 0;         ///< K
  std::uint32_t padded_members = 0;  ///< 2^ceil(log2 K) windows allocated
  qubit_t member_index_qubits = 0;   ///< B, the widening
  /// Sum of the K member plan lengths — the stage executions a no-sharing
  /// serial schedule performs.
  std::size_t total_member_stages = 0;
  /// Stage executions actually performed (shared prefixes counted once).
  std::size_t executed_stages = 0;
  /// Executions that served more than one member.
  std::size_t shared_stages = 0;
  /// Chunks fanned out by blob-level clone (no codec pass).
  std::uint64_t clone_chunks = 0;
  /// Measured chunk codec passes over the batch run.
  std::uint64_t chunk_loads = 0;
  std::uint64_t chunk_stores = 0;
  double wall_seconds = 0.0;
  /// K / wall_seconds.
  double circuits_per_second = 0.0;
  /// Logical member-state megabytes a no-sharing schedule would stream
  /// through the codec (total_member_stages * member state bytes), per wall
  /// second of THIS run — the amortization headline.
  double amortized_mb_per_s = 0.0;
};

/// Plans and executes one batch of K member circuits on a single widened
/// MemQSim engine. Construction fixes K (config.batch_size) and the member
/// register width; run() takes the expanded members. Requires the identity
/// layout (rejects optimize_layout / elide_swaps) and unitary-only members
/// (no measure/reset — sampling happens per member window after the run).
class BatchScheduler {
 public:
  BatchScheduler(qubit_t member_qubits, const EngineConfig& config);

  /// Expands the CLI's one base circuit into config.batch_size members per
  /// config.batch_mode: kShots/kCircuits = K copies (kCircuits callers
  /// normally pass their own distinct list to run() instead), kSweep =
  /// rotation params of member m scaled by (m + 1) / K, kTrajectories =
  /// circuit::sample_noisy_trajectory with seed config.seed + m.
  static std::vector<circuit::Circuit> expand_members(
      const circuit::Circuit& base, const EngineConfig& config,
      const circuit::NoiseModel& noise);

  /// Executes all members (size must equal config.batch_size): builds the
  /// per-member plans, folds them into the fork-tree script, installs the
  /// merged windowed Belady plan, and drives the engine through it.
  void run(const std::vector<circuit::Circuit>& members);

  // ---- geometry ---------------------------------------------------------
  std::uint32_t members() const noexcept { return k_; }
  qubit_t member_qubits() const noexcept { return member_qubits_; }
  index_t member_span() const noexcept { return span_; }
  index_t member_base(std::uint32_t m) const noexcept { return m * span_; }

  // ---- per-member results (after run()) ---------------------------------
  /// True when fault site batch.member.abort fired while this member was
  /// executing alone; its window is stale but every sibling is unaffected.
  bool member_aborted(std::uint32_t m) const { return aborted_.at(m); }

  double member_norm(std::uint32_t m);
  /// Samples with a fresh Prng(config.seed + m) — exactly the generator a
  /// serial engine constructed with seed + m uses for its first
  /// sample_counts(), so counts are bit-identical to that serial run.
  std::map<index_t, std::uint64_t> member_counts(std::uint32_t m,
                                                 std::size_t shots);
  std::map<index_t, std::uint64_t> member_counts(std::uint32_t m,
                                                 std::size_t shots,
                                                 std::uint64_t seed);
  sv::StateVector member_dense(std::uint32_t m);
  double member_expectation(std::uint32_t m, const sv::PauliString& pauli);

  const BatchStats& stats() const noexcept { return stats_; }
  MemQSimEngine& engine() noexcept { return *engine_; }
  const MemQSimEngine& engine() const noexcept { return *engine_; }

 private:
  /// One step of the pre-built execution script. kStage ops carry the
  /// representative member whose window executes and the number of members
  /// that execution serves; kClone ops fan the source member's window out
  /// to a diverging (or finished) member's window.
  struct Op {
    enum class Kind : std::uint8_t { kStage, kClone };
    Kind kind = Kind::kStage;
    std::uint32_t member = 0;      ///< kStage: rep; kClone: source member
    std::size_t stage_index = 0;   ///< kStage: index into the rep's plan
    std::uint32_t group_size = 1;  ///< kStage: members served
    std::size_t access_index = 0;  ///< kStage: slot in the batch cache plan
    std::uint32_t dst = 0;         ///< kClone: destination member
  };

  /// Folds `group` (members sharing their plan prefix up to `depth`) into
  /// script_/accesses_: shared stages first, then the fan-out clones, then
  /// the subgroups in ascending first-member order (deterministic).
  void build_script(const std::vector<std::uint32_t>& group,
                    std::size_t depth);
  void check_member(std::uint32_t m) const;

  qubit_t member_qubits_ = 0;
  std::uint32_t k_ = 1;
  qubit_t index_qubits_ = 0;  ///< B = ceil(log2 k_)
  index_t span_ = 1;
  EngineConfig config_;  ///< adjusted copy (chunk_qubits clamped to member)
  std::unique_ptr<MemQSimEngine> engine_;

  std::vector<StagePlan> plans_;
  std::vector<Op> script_;
  std::vector<StageAccess> accesses_;
  std::vector<bool> aborted_;
  BatchStats stats_;
  bool ran_ = false;
};

/// The no-sharing baseline and differential oracle arm: each member runs on
/// its own fresh engine of `kind` (Wu's batch story — the prior-work engine
/// has no fan-out machinery, its batch IS this loop) with seed
/// config.seed + m, returning each member's sample counts. Bit-identical
/// reference for BatchScheduler::member_counts under the oracle's codec
/// conditions.
std::vector<std::map<index_t, std::uint64_t>> run_batch_serial(
    EngineKind kind, qubit_t member_qubits, const EngineConfig& config,
    const std::vector<circuit::Circuit>& members, std::size_t shots);

}  // namespace memq::core
