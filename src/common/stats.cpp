#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace memq {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  MEMQ_CHECK(!sample.empty(), "percentile of empty sample");
  MEMQ_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double chi_squared(const std::vector<std::uint64_t>& observed,
                   const std::vector<double>& expected_p) {
  MEMQ_CHECK(observed.size() == expected_p.size(),
             "chi_squared size mismatch: " << observed.size() << " vs "
                                           << expected_p.size());
  std::uint64_t total = 0;
  for (const auto o : observed) total += o;
  MEMQ_CHECK(total > 0, "chi_squared with zero total count");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_p[i] * static_cast<double>(total);
    if (expected < 1e-12) continue;  // amplitude ~0: skip degenerate bins
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double chi_squared_critical(std::size_t dof, double alpha) {
  MEMQ_CHECK(dof > 0, "chi_squared_critical needs dof > 0");
  MEMQ_CHECK(alpha > 0.0 && alpha < 1.0, "alpha out of range");
  // Inverse normal CDF via Acklam's rational approximation.
  const auto inv_norm = [](double p) {
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425, phigh = 1 - plow;
    double q, r;
    if (p < plow) {
      q = std::sqrt(-2 * std::log(p));
      return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
             ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= phigh) {
      q = p - 0.5;
      r = q * q;
      return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
              a[5]) *
             q /
             (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
    }
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  };
  const double z = inv_norm(1.0 - alpha);
  const double k = static_cast<double>(dof);
  // Wilson–Hilferty: chi2 ~ k * (1 - 2/(9k) + z*sqrt(2/(9k)))^3.
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

}  // namespace memq
