// Wall-clock timing plus named phase accumulators.
//
// The pipeline engine accounts every second of the online stage to one of
// {decompress, h2d, kernel, d2h, cpu_update, recompress, ...}; PhaseTimers is
// that ledger.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace memq {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or last restart().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates seconds per named phase. NOT thread-safe.
///
/// Threading contract (audited): every add() on an engine's
/// EngineTelemetry::cpu_phases happens on the coordinator thread. Codec-pool
/// workers never call add() — they time their own encode/decode and return
/// the seconds through a std::future<double> (codec_pool.cpp), which the
/// coordinator reaps (ChunkReader::next / ChunkWriter::reap_one, both
/// coordinator-only) and accumulates here. future::get() synchronizes-with
/// the worker's promise fulfillment, so the measured values are also
/// race-free. Workers that need private timing keep their own PhaseTimers
/// and merge() on the coordinator at the end.
class PhaseTimers {
 public:
  void add(const std::string& phase, double seconds) {
    totals_[phase] += seconds;
  }

  void merge(const PhaseTimers& other) {
    for (const auto& [k, v] : other.totals_) totals_[k] += v;
  }

  double get(const std::string& phase) const {
    const auto it = totals_.find(phase);
    return it == totals_.end() ? 0.0 : it->second;
  }

  double total() const {
    double s = 0.0;
    for (const auto& [k, v] : totals_) s += v;
    return s;
  }

  const std::map<std::string, double>& totals() const { return totals_; }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

/// RAII: adds the scope's duration to a PhaseTimers entry on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string phase)
      : timers_(timers), phase_(std::move(phase)) {}
  ~ScopedPhase() { timers_.add(phase_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  std::string phase_;
  WallTimer timer_;
};

}  // namespace memq
