// Bit-manipulation helpers used by the gate kernels and the chunk addressing
// scheme. All operate on 64-bit amplitude indices.
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"

namespace memq::bits {

/// True iff bit `b` of `x` is set.
constexpr bool test(index_t x, qubit_t b) noexcept {
  return (x >> b) & index_t{1};
}

/// `x` with bit `b` set.
constexpr index_t set(index_t x, qubit_t b) noexcept {
  return x | (index_t{1} << b);
}

/// `x` with bit `b` cleared.
constexpr index_t clear(index_t x, qubit_t b) noexcept {
  return x & ~(index_t{1} << b);
}

/// `x` with bit `b` flipped.
constexpr index_t flip(index_t x, qubit_t b) noexcept {
  return x ^ (index_t{1} << b);
}

/// Inserts a zero bit at position `b`, shifting bits >= b up by one.
/// Maps a (n-1)-bit loop counter to the index of the amplitude whose bit `b`
/// is 0 — the standard state-vector kernel enumeration trick.
constexpr index_t insert_zero(index_t x, qubit_t b) noexcept {
  const index_t low_mask = (index_t{1} << b) - 1;
  return ((x & ~low_mask) << 1) | (x & low_mask);
}

/// Inserts two zero bits at positions b_lo < b_hi (post-insertion positions).
constexpr index_t insert_two_zeros(index_t x, qubit_t b_lo,
                                   qubit_t b_hi) noexcept {
  return insert_zero(insert_zero(x, b_lo), b_hi);
}

/// Number of set bits.
constexpr int popcount(index_t x) noexcept { return std::popcount(x); }

/// True iff x is a power of two (and nonzero).
constexpr bool is_pow2(index_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x > 0.
constexpr qubit_t log2_floor(index_t x) noexcept {
  return static_cast<qubit_t>(63 - std::countl_zero(x));
}

/// Ceil division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Reverses the lowest `n` bits of x (used by the QFT workload builder).
constexpr index_t reverse_low_bits(index_t x, qubit_t n) noexcept {
  index_t r = 0;
  for (qubit_t i = 0; i < n; ++i)
    if (test(x, i)) r = set(r, n - 1 - i);
  return r;
}

}  // namespace memq::bits
