// Runtime CPU-feature detection and SIMD dispatch control for the codec
// hot loops (compress/simd_kernels.*). One process-global ISA level:
//
//   active() = min(detected(), forced level)
//
// where the forced level comes from force() (the `--no-simd` escape hatch,
// tests pinning a lane) or the MEMQ_SIMD environment variable
// ("scalar"/"off", "sse2", "avx2") read on first use. Every vectorized
// kernel has a scalar fallback that is byte-identical by construction
// (test-enforced in tests/test_simd_codec.cpp), so the level only changes
// speed, never output.
#pragma once

#include <cstdint>

namespace memq::simd {

enum class IsaLevel : std::uint8_t {
  kScalar = 0,  ///< portable C++ paths only
  kSse2 = 1,    ///< 2-wide double kernels (baseline on x86-64)
  kAvx2 = 2,    ///< 4-wide double kernels
};

/// Highest level this CPU supports (cached cpuid probe).
IsaLevel detected() noexcept;

/// The level kernels dispatch on: detection capped by force()/MEMQ_SIMD.
IsaLevel active() noexcept;

/// Pins active() to `level` (clamped to detected()), overriding MEMQ_SIMD.
/// Coordinator-only, like fault::arm — call while no codec work is in
/// flight.
void force(IsaLevel level) noexcept;

/// Removes the force() pin; MEMQ_SIMD (if set) applies again as a cap.
void clear_force() noexcept;

/// "scalar" | "sse2" | "avx2".
const char* name(IsaLevel level) noexcept;

}  // namespace memq::simd
