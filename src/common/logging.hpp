// Minimal leveled logger. Global level, thread-safe, writes to stderr.
#pragma once

#include <sstream>
#include <string>

namespace memq::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold (default: kWarn; MEMQ_LOG env overrides —
/// the env contract is unchanged: debug|info|warn|error|off).
void set_level(Level level) noexcept;
Level level() noexcept;

/// Emits one line "[memq level +T.TTTs Tnn] message" to stderr if `lvl` >=
/// threshold: T.TTT is a monotonic timestamp (seconds since the process's
/// first log line) and nn is the stable short id of the emitting thread
/// (trace::thread_id — the same ids the tracer uses for its tracks), so
/// interleaved worker logs are attributable.
void write(Level lvl, const std::string& message);

namespace detail {
struct LineStream {
  Level lvl;
  std::ostringstream os;
  explicit LineStream(Level l) : lvl(l) {}
  ~LineStream() { write(lvl, os.str()); }
  template <typename T>
  LineStream& operator<<(const T& v) {
    os << v;
    return *this;
  }
};
}  // namespace detail

}  // namespace memq::log

#define MEMQ_LOG_DEBUG ::memq::log::detail::LineStream(::memq::log::Level::kDebug)
#define MEMQ_LOG_INFO ::memq::log::detail::LineStream(::memq::log::Level::kInfo)
#define MEMQ_LOG_WARN ::memq::log::detail::LineStream(::memq::log::Level::kWarn)
#define MEMQ_LOG_ERROR ::memq::log::detail::LineStream(::memq::log::Level::kError)
