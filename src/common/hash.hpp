// FNV-1a 64-bit hashing, shared across layers: the chunk codec frames
// compressed chunks with it, the dictionary derives stable ids from it, and
// the blob store content-hashes blobs for dedup. Lives in common/ so core/
// does not reach into compress/ for hashing.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace memq::common {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a folded over 8-byte words (tail handled byte-wise): ~8x fewer
/// dependent multiplies than the byte-at-a-time stream, for hot in-memory
/// keys over large buffers. NOT the standard FNV-1a byte stream — never
/// use it in a persisted format.
inline std::uint64_t fnv1a64_words(std::span<const std::uint8_t> data,
                                   std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data.data() + i, 8);
    h ^= w;
    h *= kFnvPrime;
  }
  for (; i < data.size(); ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace memq::common
