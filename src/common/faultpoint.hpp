// Deterministic fault-injection plane — the storage-plane counterpart of
// the tracer (common/trace.hpp): named fault points are compiled into the
// fallible sites of the hot path (blob-store I/O, codec decode, cache
// write-back, lease acquisition, checkpoint save/load) and cost ONE relaxed
// atomic load each while disarmed. Armed via `memq --faults SPEC` or the
// MEMQ_FAULTS environment variable, every point follows a seeded schedule,
// so a failing run is a reproducer line, not a flake.
//
// SPEC grammar (comma-separated entries):
//   site            fire once, on the first hit
//   site@N          fire once, on the Nth hit (1-based)
//   site%K          fire on every Kth hit
//   site~P          fire with probability P per hit (deterministic: the
//                   decision is a hash of seed, site and hit index, so a
//                   given seed always fires on the same hit numbers)
//   seed=S          PRNG seed for ~P schedules (default 0)
// e.g.  --faults 'blob.read.eio@3,codec.decode.corrupt%5,seed=7'
//
// Site names must come from known_sites() — a typo in a spec is an
// InvalidArgument at arm() time, never a silently-never-firing schedule.
//
// Threading contract: arm()/disarm() are coordinator-only (call them while
// no engine is running, like trace::start/stop). should_fire() is
// thread-safe and may be called from codec-pool workers; when armed, every
// hit is serialized on one mutex — fault runs measure correctness, not
// throughput. Each fire emits a trace instant (cat "fault") when tracing is
// on, so schedules are auditable in Perfetto next to the recovery they
// triggered.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace memq::fault {

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// The per-macro-site branch: one relaxed atomic load.
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// One catalogued fault point.
struct SiteInfo {
  const char* name;         ///< spec name, e.g. "blob.read.eio"
  const char* description;  ///< what fails and how it is handled
};

/// Every fault point compiled into the binary, with its documented
/// failure + recovery contract. Tests iterate this to build fault matrices.
const std::vector<SiteInfo>& known_sites();

/// Parses `spec` and arms the listed schedules (replacing any previous
/// ones). Throws InvalidArgument on unknown sites or malformed schedules.
void arm(const std::string& spec);

/// Clears all schedules and counters; fault points go back to the single
/// relaxed-load disabled path.
void disarm();

/// Arms from the MEMQ_FAULTS environment variable if set and not already
/// armed. Returns true if the plane is (now) armed.
bool init_from_env();

/// Records a hit on `site` and returns true when its armed schedule says
/// this hit fails. Sites without an armed schedule count hits but never
/// fire. Call only when armed() (the MEMQ_FAULT macro guards).
bool should_fire(const char* site);

/// Counters since arm() (zero for unknown sites).
std::uint64_t hits(const std::string& site);
std::uint64_t fires(const std::string& site);
/// Total fires across all sites since arm().
std::uint64_t total_fires();

/// One "site fired F of H hits [schedule]" line per armed site (for the
/// CLI's end-of-run fault summary).
std::vector<std::string> summary();

}  // namespace memq::fault

/// The site macro: disarmed cost is the single relaxed load in armed().
#define MEMQ_FAULT(site) \
  (::memq::fault::armed() && ::memq::fault::should_fire(site))
