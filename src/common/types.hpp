// Core scalar and index types shared across all MEMQSim modules.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace memq {

/// Real scalar used for amplitudes. The paper's state vectors are double
/// precision (as in SV-Sim and QuEST's default build).
using real_t = double;

/// A single state-vector amplitude.
using amp_t = std::complex<real_t>;

/// Index into a state vector; 2^n amplitudes for n qubits, so 64-bit.
using index_t = std::uint64_t;

/// Qubit label, 0-based; qubit 0 is the least-significant bit of the index.
using qubit_t = std::uint32_t;

inline constexpr std::size_t kAmpBytes = sizeof(amp_t);

/// Number of amplitudes of an n-qubit register.
constexpr index_t dim_of(qubit_t n_qubits) noexcept {
  return index_t{1} << n_qubits;
}

/// Bytes occupied by a dense n-qubit state vector.
constexpr std::uint64_t state_bytes(qubit_t n_qubits) noexcept {
  return dim_of(n_qubits) * kAmpBytes;
}

inline constexpr real_t kPi = 3.14159265358979323846264338327950288;

}  // namespace memq
