#include "common/format.hpp"

#include <cmath>
#include <cstdio>

namespace memq {

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0)
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  else
    std::snprintf(buf, sizeof buf, "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0)
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  else if (abs >= 1e-3)
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  else if (abs >= 1e-6)
    std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
  else
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  return buf;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string format_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

}  // namespace memq
