// Streaming statistics and simple histogram utilities used by the test suite
// (measurement-distribution chi-squared checks) and the bench reporters.
#pragma once

#include <cstdint>
#include <vector>

namespace memq {

/// Welford's online mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation). `p` in [0,100].
/// Sorts a copy; fine for bench-sized samples.
double percentile(std::vector<double> sample, double p);

/// Pearson chi-squared statistic of observed counts vs expected probabilities.
/// `expected_p` must sum to ~1 and have the same length as `observed`.
double chi_squared(const std::vector<std::uint64_t>& observed,
                   const std::vector<double>& expected_p);

/// Upper critical value of the chi-squared distribution via the
/// Wilson–Hilferty normal approximation — good enough for test thresholds.
double chi_squared_critical(std::size_t dof, double alpha);

}  // namespace memq
