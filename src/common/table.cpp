#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace memq {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MEMQ_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MEMQ_CHECK(cells.size() == headers_.size(),
             "row has " << cells.size() << " cells, expected "
                        << headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const std::size_t pad = width[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace memq
