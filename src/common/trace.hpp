// Pipeline tracer — Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) across the whole hot path, so the paper's overlap claims
// (decompress / H2D / kernel / D2H pipelined, Figure 1/2) are literally
// visible instead of inferred from end-of-run aggregates.
//
// Two clock domains, rendered as two "processes":
//   * pid 0 — real OS threads on the wall clock (microseconds since
//     trace::start()): codec decode/encode spans, pager stream items,
//     cache instants, coordinator stall spans.
//   * pid 1 — virtual "modeled device" lanes on the modeled clock from
//     device/stream (dev0:h2d / dev0:compute / dev0:d2h ...): every copy and
//     kernel is a complete ('X') event at its modeled start/duration, so the
//     hardware-substitution timeline gets real tracks.
//
// Cost model: tracing is OFF by default and every macro site is a single
// relaxed atomic load when disabled. When enabled, each thread appends to
// its own buffer under a per-thread mutex that only stop() ever contends
// (the global mutex is taken on first-event registration and at flush),
// and events are written out once, at stop().
//
// Threading contract: start() and stop() are coordinator-only. Prefer
// stopping after instrumented engines are destroyed (their pools join);
// if a worker is still inside a span at stop() — e.g. an async cache
// write-back — the flush snapshots its buffer safely and closes the open
// span with a synthetic E at the stop timestamp, so tracks stay balanced.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>

namespace memq::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The per-macro-site branch: one relaxed atomic load.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Starts capturing; events buffer in memory until stop() writes `path`.
/// Throws InvalidArgument if already capturing.
void start(const std::string& path);

/// Flushes every thread buffer to the path given to start() and disables
/// capture. No-op when not capturing. Returns the number of events written.
std::size_t stop();

/// Starts capturing iff the MEMQ_TRACE environment variable names a file
/// and capture is not already on. Returns true if capture is (now) on.
bool init_from_env();

/// Events recorded since start() (coordinator-only; used by tests).
std::size_t event_count();

// ---- thread identity (shared with common/logging) -------------------------

/// Stable short id of the calling thread: 0, 1, 2... in order of first use
/// (NOT the opaque std::thread::id hash). Never recycled.
int thread_id() noexcept;

/// Names the calling thread's track (and log prefix attribution). Safe to
/// call whether or not capture is on.
void set_thread_name(const std::string& name);

// ---- event emission (call only when enabled(); macros guard) --------------

/// `args` is a JSON object *fragment* without braces, e.g. produced by
/// arg("chunk", i) + "," + arg("bytes", n). Empty = no args.
void begin(const char* cat, const char* name, std::string args = {});
void end();
void instant(const char* cat, const char* name, std::string args = {});
void counter(const char* name, double value);

/// Registers (once) and returns the virtual-lane id for `name` ("dev0:h2d").
int lane(const std::string& name);

/// Complete event on a modeled-device lane: `start_s`/`dur_s` are modeled
/// seconds on the virtual clock (lane timestamps are monotonic per lane
/// because stream ops are issued in order).
void lane_span(int lane_id, const char* name, double start_s, double dur_s,
               std::string args = {});

// ---- args helpers ----------------------------------------------------------

namespace detail {
std::string arg_uint(const char* key, unsigned long long value);
std::string arg_int(const char* key, long long value);
}  // namespace detail

std::string arg(const char* key, double value);
std::string arg(const char* key, const std::string& value);  ///< escapes

/// One overload for every integer width/signedness (avoids the
/// uint64_t-vs-unsigned-long aliasing trap across LP64/LLP64).
template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
std::string arg(const char* key, T value) {
  if constexpr (std::is_signed_v<T>)
    return detail::arg_int(key, static_cast<long long>(value));
  else
    return detail::arg_uint(key, static_cast<unsigned long long>(value));
}

/// RAII span on the calling thread's track. The `armed` snapshot is taken
/// at construction so the E always pairs its B; if a stop() races the
/// scope, the flush drops the late E and synthesizes one at the stop
/// timestamp instead.
class Scope {
 public:
  Scope(const char* cat, const char* name, std::string args = {})
      : armed_(enabled()) {
    if (armed_) begin(cat, name, std::move(args));
  }
  ~Scope() {
    if (armed_) end();
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  bool armed_;
};

}  // namespace memq::trace

// Macro sites: the args expression is evaluated ONLY when tracing is on, so
// disabled-mode cost is the single relaxed load inside enabled().
#define MEMQ_TRACE_CONCAT_(a, b) a##b
#define MEMQ_TRACE_CONCAT(a, b) MEMQ_TRACE_CONCAT_(a, b)

#define MEMQ_TRACE_SCOPE(cat, name, ...)                              \
  ::memq::trace::Scope MEMQ_TRACE_CONCAT(memq_trace_scope_, __LINE__)( \
      (cat), (name),                                                   \
      ::memq::trace::enabled() ? ::std::string{__VA_ARGS__}            \
                               : ::std::string{})

#define MEMQ_TRACE_INSTANT(cat, name, ...)                          \
  do {                                                              \
    if (::memq::trace::enabled())                                   \
      ::memq::trace::instant((cat), (name), ::std::string{__VA_ARGS__}); \
  } while (0)

#define MEMQ_TRACE_COUNTER(name, value)                \
  do {                                                 \
    if (::memq::trace::enabled())                      \
      ::memq::trace::counter((name), static_cast<double>(value)); \
  } while (0)
