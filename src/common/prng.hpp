// Deterministic, fast pseudo-random generation (xoshiro256++), plus helpers
// for the distributions the tests and workload generators need.
//
// We avoid std::mt19937/std::uniform_real_distribution in library code so
// results are reproducible across standard libraries.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace memq {

/// xoshiro256++ 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() noexcept;

  // UniformRandomBitGenerator interface so <algorithm> shuffles accept it.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (caches the second deviate).
  double normal() noexcept;

  /// Random amplitude with normally distributed re/im parts.
  amp_t normal_amp() noexcept;

  /// Jump to a statistically independent substream (xoshiro jump function);
  /// used to give each pipeline worker its own generator.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace memq
