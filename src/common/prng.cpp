#include "common/prng.hpp"

#include <cmath>

namespace memq {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Prng::Prng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Prng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Prng::uniform() noexcept {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Prng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method (128-bit multiply-shift).
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Prng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

amp_t Prng::normal_amp() noexcept { return amp_t{normal(), normal()}; }

void Prng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
      0x39ABDC4529B1661Cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next_u64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  has_cached_normal_ = false;
}

}  // namespace memq
