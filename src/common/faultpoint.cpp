#include "common/faultpoint.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace memq::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

// The central catalog: adding a fault point to the code without listing it
// here leaves MEMQ_FAULT unable to match any armed schedule, and the
// matrix test (tests/test_fault_injection.cpp) iterates this list — keep
// both in sync.
const std::vector<SiteInfo>& catalog() {
  static const std::vector<SiteInfo>* sites = new std::vector<SiteInfo>{
      {"blob.read.eio",
       "transient EIO from a spill-file pread (recovered by bounded retry "
       "with backoff; persistent failure surfaces as IoError)"},
      {"blob.read.short",
       "premature EOF from a spill-file pread (retried, then surfaced as "
       "IoError naming path/offset/length)"},
      {"blob.write.eio",
       "transient EIO from a spill-file pwrite (recovered by bounded retry "
       "with backoff; persistent failure degrades the store to RAM)"},
      {"blob.write.enospc",
       "ENOSPC from a spill-file pwrite (not retried; the store degrades to "
       "RAM residency and stops spilling)"},
      {"blob.allocate",
       "ENOSPC growing the spill file (not retried; the store degrades to "
       "RAM residency and stops spilling)"},
      {"blob.mmap.map",
       "failure mapping/growing the spill file's mmap window (not retried; "
       "the store falls back to pread/pwrite spill I/O permanently)"},
      {"codec.decode.corrupt",
       "checksum mismatch decoding a chunk blob (surfaced as CorruptData — "
       "compressed state is the only copy, nothing to recover from)"},
      {"cache.writeback",
       "failure of a deferred cache write-back (retried from the "
       "still-resident amplitudes; persistent failure surfaces as IoError "
       "with the previous blob intact)"},
      {"pager.acquire",
       "lease-buffer allocation failure under budget pressure (surfaced as "
       "OutOfMemory before any state is touched)"},
      {"checkpoint.save",
       "write failure mid checkpoint save (the temp-file + rename protocol "
       "keeps the previous checkpoint; surfaced as IoError)"},
      {"checkpoint.load",
       "read corruption on checkpoint load (surfaced as CorruptData; the "
       "in-memory state is replaced only after the stream validates)"},
      {"batch.member.abort",
       "one batch member aborts at a stage boundary while executing alone "
       "(post-divergence); the member is flagged and skipped, sibling "
       "members' disjoint chunk windows complete bit-identically to their "
       "serial runs"},
  };
  return *sites;
}

enum class Mode : std::uint8_t { kNth, kEveryK, kProb };

struct Schedule {
  Mode mode = Mode::kNth;
  std::uint64_t n = 1;  ///< kNth / kEveryK parameter
  double p = 0.0;       ///< kProb parameter
  std::string text;     ///< original spec fragment, for summary()
};

struct SiteState {
  const Schedule* schedule = nullptr;  ///< null: count hits, never fire
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<Schedule> schedules;       ///< owned storage for SiteState refs
  std::vector<SiteState> sites;          ///< parallel to catalog()
  std::uint64_t seed = 0;
  std::uint64_t total_fires = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

int site_index(const char* name) {
  const auto& sites = catalog();
  for (std::size_t i = 0; i < sites.size(); ++i)
    if (std::strcmp(sites[i].name, name) == 0) return static_cast<int>(i);
  return -1;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (; *s != '\0'; ++s) h = (h ^ static_cast<std::uint8_t>(*s)) *
                              0x100000001B3ull;
  return h;
}

std::uint64_t parse_count(const std::string& entry, const std::string& text) {
  if (text.empty())
    MEMQ_THROW(InvalidArgument, "fault spec '" << entry
                                               << "': missing count");
  for (const char c : text)
    if (!std::isdigit(static_cast<unsigned char>(c)))
      MEMQ_THROW(InvalidArgument, "fault spec '" << entry << "': '" << text
                                                 << "' is not a count");
  const std::uint64_t v = std::strtoull(text.c_str(), nullptr, 10);
  if (v == 0)
    MEMQ_THROW(InvalidArgument, "fault spec '" << entry
                                               << "': count must be >= 1");
  return v;
}

}  // namespace

const std::vector<SiteInfo>& known_sites() { return catalog(); }

void arm(const std::string& spec) {
  // Parse into a fresh registry image first so a bad spec leaves the plane
  // disarmed rather than half-armed.
  std::vector<Schedule> schedules;
  std::vector<int> site_of;  // parallel to schedules
  std::uint64_t seed = 0;
  std::size_t begin = 0;
  bool any = false;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace.
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.front())))
      entry.erase(entry.begin());
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.back())))
      entry.pop_back();
    if (entry.empty()) continue;
    if (entry.rfind("seed=", 0) == 0) {
      seed = parse_count(entry, entry.substr(5));
      continue;
    }
    Schedule s;
    std::string name = entry;
    const std::size_t sep = entry.find_first_of("@%~");
    if (sep != std::string::npos) {
      name = entry.substr(0, sep);
      const std::string param = entry.substr(sep + 1);
      switch (entry[sep]) {
        case '@':
          s.mode = Mode::kNth;
          s.n = parse_count(entry, param);
          break;
        case '%':
          s.mode = Mode::kEveryK;
          s.n = parse_count(entry, param);
          break;
        case '~': {
          s.mode = Mode::kProb;
          char* param_end = nullptr;
          s.p = std::strtod(param.c_str(), &param_end);
          if (param.empty() || param_end != param.c_str() + param.size() ||
              s.p < 0.0 || s.p > 1.0)
            MEMQ_THROW(InvalidArgument,
                       "fault spec '" << entry
                                      << "': probability must be in [0, 1]");
          break;
        }
      }
    }
    const int idx = site_index(name.c_str());
    if (idx < 0) {
      std::string known;
      for (const SiteInfo& info : catalog())
        known += std::string(known.empty() ? "" : ", ") + info.name;
      MEMQ_THROW(InvalidArgument, "unknown fault point '"
                                      << name << "' (known: " << known
                                      << ")");
    }
    s.text = entry;
    schedules.push_back(std::move(s));
    site_of.push_back(idx);
    any = true;
  }
  if (!any)
    MEMQ_THROW(InvalidArgument,
               "fault spec '" << spec << "' names no fault points");

  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.schedules = std::move(schedules);
  r.sites.assign(catalog().size(), SiteState{});
  for (std::size_t k = 0; k < r.schedules.size(); ++k)
    r.sites[static_cast<std::size_t>(site_of[k])].schedule = &r.schedules[k];
  r.seed = seed;
  r.total_fires = 0;
  detail::g_armed.store(true, std::memory_order_release);
}

void disarm() {
  Registry& r = registry();
  detail::g_armed.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(r.mutex);
  r.schedules.clear();
  r.sites.clear();
  r.total_fires = 0;
}

bool init_from_env() {
  if (armed()) return true;
  const char* env = std::getenv("MEMQ_FAULTS");
  if (env == nullptr || env[0] == '\0') return false;
  arm(env);
  return true;
}

bool should_fire(const char* site) {
  const int idx = site_index(site);
  MEMQ_CHECK(idx >= 0, "fault point '" << site << "' is not in the catalog");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.sites.empty()) return false;  // raced a disarm; nothing armed
  SiteState& state = r.sites[static_cast<std::size_t>(idx)];
  const std::uint64_t hit = ++state.hits;  // 1-based
  const Schedule* s = state.schedule;
  if (s == nullptr) return false;
  bool fire = false;
  switch (s->mode) {
    case Mode::kNth:
      fire = hit == s->n;
      break;
    case Mode::kEveryK:
      fire = hit % s->n == 0;
      break;
    case Mode::kProb:
      fire = static_cast<double>(splitmix64(r.seed ^ fnv1a(site) ^ hit)) <
             s->p * 18446744073709551616.0;  // 2^64
      break;
  }
  if (fire) {
    ++state.fires;
    ++r.total_fires;
    // Monotone registry twin of the resettable per-campaign counter above:
    // the sampler needs a never-decreasing process-wide fire count.
    static metrics::Counter& fires =
        metrics::Registry::global().counter("fault.fires");
    fires.add();
    MEMQ_TRACE_INSTANT("fault", site, trace::arg("hit", hit));
  }
  return fire;
}

std::uint64_t hits(const std::string& site) {
  const int idx = site_index(site.c_str());
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (idx < 0 || r.sites.empty()) return 0;
  return r.sites[static_cast<std::size_t>(idx)].hits;
}

std::uint64_t fires(const std::string& site) {
  const int idx = site_index(site.c_str());
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (idx < 0 || r.sites.empty()) return 0;
  return r.sites[static_cast<std::size_t>(idx)].fires;
}

std::uint64_t total_fires() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.total_fires;
}

std::vector<std::string> summary() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    const SiteState& s = r.sites[i];
    if (s.schedule == nullptr) continue;
    lines.push_back(std::string(catalog()[i].name) + " fired " +
                    std::to_string(s.fires) + " of " +
                    std::to_string(s.hits) + " hits [" + s.schedule->text +
                    "]");
  }
  return lines;
}

}  // namespace memq::fault
