// Atomic file replacement for checkpoints: bytes stream into `<path>.tmp`
// and only a successful commit() renames the temp file over `<path>`, so a
// failure at any point — including the injected `checkpoint.save` fault —
// leaves the previous file at `<path>` untouched. Without a commit, the
// destructor removes the temp file.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace memq {

class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path)
      : path_(path), tmp_(path + ".tmp"),
        out_(tmp_, std::ios::binary | std::ios::trunc) {
    MEMQ_CHECK(static_cast<bool>(out_),
               "cannot open checkpoint temp file '" << tmp_ << "'");
  }

  ~AtomicFileWriter() {
    if (!committed_) {
      out_.close();
      std::remove(tmp_.c_str());
    }
  }

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stream to write the new contents into.
  std::ofstream& stream() { return out_; }

  /// Flushes, validates, and renames the temp file over the target. Throws
  /// IoError (temp file removed, previous target intact) on any failure.
  void commit() {
    if (MEMQ_FAULT("checkpoint.save"))
      MEMQ_THROW_IO("checkpoint write to '"
                              << tmp_ << "' failed (injected): "
                              << std::strerror(EIO) << "; previous '" << path_
                              << "' kept",
                 EIO);
    out_.flush();
    if (!out_.good())
      MEMQ_THROW_IO("checkpoint write to '" << tmp_
                                                  << "' failed; previous '"
                                                  << path_ << "' kept",
                 0);
    out_.close();
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      const int err = errno;
      MEMQ_THROW_IO("cannot rename checkpoint '"
                              << tmp_ << "' over '" << path_
                              << "': " << std::strerror(err),
                 err);
    }
    committed_ = true;
  }

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  bool committed_ = false;
};

}  // namespace memq
