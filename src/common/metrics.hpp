// Unified metrics plane — the counter/latency counterpart of the tracer
// (common/trace.hpp) and the fault plane (common/faultpoint.hpp): every
// telemetry number surfaced by the CLI summary, `--stage-report` and the
// telemetry JSON is owned by ONE process-wide registry of typed instruments
// instead of ad-hoc atomics scattered through the storage plane.
//
// Instruments:
//   Counter    monotone event count; one relaxed fetch_add per tick.
//   Gauge      signed level (bytes resident, bytes in flight) with a
//              CAS-maintained high-water mark; relaxed hot path.
//   Histogram  fixed 64-bucket power-of-two latency histogram (bucket b
//              covers [2^b, 2^(b+1)) ns); record() is three relaxed RMWs
//              plus a CAS max — no allocation, no lock. Snapshots are
//              bucket-wise subtractable, so per-run and per-stage deltas
//              keep exact counts and conservative percentile bounds.
//
// Ownership model: registry cells are PER-INSTANCE. Each call to
// Registry::counter(name) returns a NEW cell registered under that name;
// components keep the returned reference for their own exact accessors
// (tests that assert per-instance counts stay precise), while
// Registry::snapshot() aggregates cells BY NAME (counters/gauges sum), so
// the process view stays consistent when engines are created sequentially.
// Cells live in deques and are never invalidated or freed — a reference
// taken at construction is valid for the process lifetime (same leak-on-
// purpose discipline as the trace and fault registries).
//
// Cost discipline: counters and gauges always tick (they replace atomics
// that always ticked before). Latency histograms additionally need a clock
// read, so every timed site is guarded by timing_enabled() — one relaxed
// atomic load; disarmed runs never touch the clock. The CLI arms timing
// when any metrics consumer is active (--stage-report, --telemetry-json,
// --metrics-*, --progress).
//
// Threading contract: instrument hot paths (add/sub/set/record) are
// thread-safe and may be called from codec-pool workers. Registry
// registration and snapshot() take one mutex and are coordinator-rate
// operations (construction, sampler ticks, end of run).
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace memq::metrics {

namespace detail {
extern std::atomic<bool> g_timing;
}  // namespace detail

/// The per-timed-site branch: one relaxed atomic load.
inline bool timing_enabled() noexcept {
  return detail::g_timing.load(std::memory_order_relaxed);
}

/// Arms/disarms the latency clocks (coordinator-only, like trace::start).
void arm_timing() noexcept;
void disarm_timing() noexcept;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A level with a high-water mark. `add` takes a signed delta (stored with
/// wrap-around unsigned arithmetic, like the atomics it replaces); `set`
/// overwrites the level. Both raise the peak; `set(0)` does NOT reset the
/// peak (matches FileBlobStore::resize, which zeroes residency but keeps
/// the watermark). reset_peak() restarts the watermark from the CURRENT
/// level (matches reset_stats semantics where entries may still be
/// resident).
class Gauge {
 public:
  void add(std::int64_t delta) noexcept {
    const std::uint64_t now =
        v_.fetch_add(static_cast<std::uint64_t>(delta),
                     std::memory_order_relaxed) +
        static_cast<std::uint64_t>(delta);
    raise_peak(now);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  void set(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    raise_peak(v);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset_peak() noexcept {
    peak_.store(v_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  void raise_peak(std::uint64_t now) noexcept {
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::uint64_t> v_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Point-in-time copy of one histogram; subtractable for run/stage deltas.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;  ///< process-lifetime max (not delta-exact)
  std::uint64_t buckets[kBuckets] = {};

  /// Upper-bound estimate of the q-quantile (q in [0,1]): the inclusive
  /// upper edge of the bucket where the cumulative count crosses
  /// ceil(q * count), clamped by the observed max. Zero when empty.
  std::uint64_t percentile(double q) const noexcept;
  /// Bucket-wise self minus `earlier` (counts are monotone, so this is
  /// exact for count/sum/buckets; max keeps the later lifetime max).
  HistogramSnapshot minus(const HistogramSnapshot& earlier) const noexcept;
};

class Histogram {
 public:
  /// Bucket index for value v: 0 covers {0, 1}; bucket b >= 1 covers
  /// [2^b, 2^(b+1)).
  static std::size_t bucket_of(std::uint64_t v) noexcept {
    return v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v)) - 1;
  }
  /// Inclusive upper edge of bucket b (UINT64_MAX for the last bucket).
  static std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b + 1 >= HistogramSnapshot::kBuckets
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << (b + 1)) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (v > m && !max_.compare_exchange_weak(m, v,
                                                std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    // Load count first: a racing record() bumps its bucket before count_,
    // so buckets can only be >= the count we report, never behind it.
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b)
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> buckets_[HistogramSnapshot::kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII nanosecond timer into a histogram. Decides at CONSTRUCTION whether
/// timing is armed; disarmed instances never read the clock (near-zero
/// cost), and a site stays internally consistent if arm state flips
/// mid-scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(timing_enabled() ? &h : nullptr) {
    if (h_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr)
      h_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct GaugeSnapshot {
  std::uint64_t value = 0;
  std::uint64_t peak = 0;
};

/// Name-aggregated point-in-time view of every registered cell. std::map
/// keys give deterministic iteration order for JSON/prom emission.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name (0 when absent).
  std::uint64_t counter(const std::string& name) const noexcept {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  /// Counter delta vs an earlier snapshot (0-floored by monotonicity).
  std::uint64_t counter_delta(const Snapshot& earlier,
                              const std::string& name) const noexcept {
    return counter(name) - earlier.counter(name);
  }
};

class Registry {
 public:
  /// The process-wide registry (leaked singleton, usable during exit).
  static Registry& global();

  /// Each call registers and returns a NEW cell under `name` (per-instance
  /// ownership; see file header). References stay valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Aggregates all cells by name: counters and gauge values/peaks sum,
  /// histogram counts/sums/buckets sum (max takes the max).
  Snapshot snapshot() const;

 private:
  struct Impl;
  Impl* impl_;  // leaked with the registry
  Registry();
};

// ---------------------------------------------------------------------------
// Sampler — background time-series thread (JSONL + Prometheus + progress)
// ---------------------------------------------------------------------------

/// Writes one Prometheus text-exposition dump of `snap` (counters, gauges
/// with `_peak`, histograms with cumulative `_bucket{le=...}`/`_sum`/
/// `_count`). Metric names are prefixed `memq_` with '.' mapped to '_'.
void write_prometheus(std::ostream& out, const Snapshot& snap);

struct SamplerOptions {
  std::chrono::milliseconds interval{250};
  std::string jsonl_path;  ///< per-tick JSONL snapshots ("" = off)
  std::string prom_path;   ///< rewritten-in-place prom text ("" = off)
  bool progress = false;   ///< live \r progress line on stderr
};

/// Periodic snapshot emitter. start() captures a baseline snapshot (all
/// deltas in the progress line are vs this baseline, so the sampled window
/// must not contain counter resets — the CLI brackets exactly the engine
/// run). stop() takes a final sample, joins the thread, and finishes the
/// progress line; safe to call twice.
class Sampler {
 public:
  Sampler() = default;
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void start(SamplerOptions opts);
  void stop();
  bool running() const noexcept { return impl_ != nullptr; }

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace memq::metrics
