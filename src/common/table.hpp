// ASCII table rendering for the benchmark harness — every bench binary prints
// paper-shaped tables through this.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace memq {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column alignment (left for the first
  /// column, right for the rest — the usual numeric-table convention).
  void print(std::ostream& os) const;

  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace memq
