#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace memq::log {
namespace {

Level initial_level() {
  const char* env = std::getenv("MEMQ_LOG");
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "off") == 0) return Level::kOff;
  return Level::kWarn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;

const char* name_of(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info ";
    case Level::kWarn: return "warn ";
    case Level::kError: return "error";
    default: return "?";
  }
}

}  // namespace

void set_level(Level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void write(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[memq %s] %s\n", name_of(lvl), message.c_str());
}

}  // namespace memq::log
