#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/trace.hpp"

namespace memq::log {
namespace {

Level initial_level() {
  const char* env = std::getenv("MEMQ_LOG");
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "off") == 0) return Level::kOff;
  return Level::kWarn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;

const char* name_of(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info ";
    case Level::kWarn: return "warn ";
    case Level::kError: return "error";
    default: return "?";
  }
}

/// Monotonic seconds since the first log line of the process. Interleaved
/// worker output stays orderable even when stderr buffering reorders lines.
double uptime_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

}  // namespace

void set_level(Level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void write(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < g_level.load(std::memory_order_relaxed)) return;
  // Stable short thread ids (shared with the tracer's track ids), not raw
  // std::thread::id hashes — worker lines stay attributable across a run.
  const int tid = trace::thread_id();
  const double t = uptime_seconds();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[memq %s +%.3fs T%02d] %s\n", name_of(lvl), t, tid,
               message.c_str());
}

}  // namespace memq::log
