// Error types and checking macros.
//
// Library code throws subclasses of memq::Error; MEMQ_CHECK is for conditions
// that can be triggered by user input (always on), MEMQ_ASSERT for internal
// invariants (compiled out in NDEBUG builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace memq {

/// Base class of all MEMQSim exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user input: bad qubit index, malformed QASM, bad config value...
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A memory budget or device capacity would be exceeded.
class OutOfMemory : public Error {
 public:
  explicit OutOfMemory(const std::string& what) : Error(what) {}
};

/// Corrupted compressed data (failed checksum, truncated stream...).
class CorruptData : public Error {
 public:
  explicit CorruptData(const std::string& what) : Error(what) {}
};

/// QASM syntax or semantic error; carries source location.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int col)
      : Error(what + " (line " + std::to_string(line) + ", col " +
              std::to_string(col) + ")"),
        line_(line),
        col_(col) {}
  int line() const noexcept { return line_; }
  int col() const noexcept { return col_; }

 private:
  int line_;
  int col_;
};

/// Misuse of the simulated device API (use-after-free, wrong stream...).
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

/// A host I/O operation (spill file, checkpoint) failed after any retries;
/// carries the errno so callers can distinguish transient from persistent.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what, int code = 0)
      : Error(what), code_(code) {}
  int code() const noexcept { return code_; }

 private:
  int code_;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "MEMQ_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace memq

#define MEMQ_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond))                                                          \
      ::memq::detail::throw_check_failure(#cond, __FILE__, __LINE__,      \
                                          (std::ostringstream{} << msg)  \
                                              .str());                    \
  } while (0)

#define MEMQ_THROW(ExcType, msg)                                \
  do {                                                          \
    throw ExcType((std::ostringstream{} << msg).str());         \
  } while (0)

/// IoError variant carrying the errno: callers classify transient vs
/// persistent failures from code().
#define MEMQ_THROW_IO(msg, err)                                           \
  do {                                                                    \
    throw ::memq::IoError((std::ostringstream{} << msg).str(), (err));    \
  } while (0)

#ifdef NDEBUG
#define MEMQ_ASSERT(cond) ((void)0)
#else
#define MEMQ_ASSERT(cond) MEMQ_CHECK(cond, "internal invariant")
#endif
