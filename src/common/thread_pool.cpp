#include "common/thread_pool.hpp"

#include <atomic>

#include "common/trace.hpp"

namespace memq {

ThreadPool::ThreadPool(std::size_t n_threads, const std::string& name_prefix) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this, i, name_prefix] {
      if (!name_prefix.empty())
        trace::set_thread_name(name_prefix + "-" + std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr error;
  // Exceptions must not escape drain: the worker copies reference this
  // frame's locals, so every future has to be waited before returning.
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        f(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mutex);
          if (!error) error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // stop the other workers
        return;
      }
    }
  };
  std::vector<std::future<void>> futs;
  const std::size_t helpers = std::min(workers_.size(), n);
  futs.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) futs.push_back(submit(drain));
  drain();  // the caller works too
  for (auto& fut : futs) fut.get();  // drain never throws
  if (error) std::rethrow_exception(error);
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace memq
