// Cache-line/SIMD-aligned heap buffer with RAII ownership.
//
// The dense state vector and the staging buffers use 64-byte alignment so the
// OpenMP gate kernels vectorize and so the simulated device's "pinned" host
// buffers resemble cudaHostAlloc allocations.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace memq {

template <typename T>
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count) { reset(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocates to hold `count` elements; contents are NOT preserved and
  /// NOT initialized (callers overwrite in full).
  void reset(std::size_t count) {
    release();
    if (count == 0) return;
    const std::size_t bytes =
        ((count * sizeof(T) + kAlignment - 1) / kAlignment) * kAlignment;
    void* p = std::aligned_alloc(kAlignment, bytes);
    if (p == nullptr)
      MEMQ_THROW(OutOfMemory, "aligned_alloc of " << bytes << " bytes failed");
    data_ = static_cast<T*>(p);
    count_ = count;
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return count_; }
  std::size_t bytes() const noexcept { return count_ * sizeof(T); }
  bool empty() const noexcept { return count_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + count_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + count_; }

 private:
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace memq
