// Fixed-size thread pool with futures.
//
// Backs (a) the simulated device's stream workers and (b) the pipeline's
// CPU-side co-execution ("the CPU leverages idle cores to decompress the data
// chunks and perform updates", paper §2 step 5).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace memq {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (>=1; 0 means hardware_concurrency). A
  /// non-empty `name_prefix` names each worker "<prefix>-<i>" for the
  /// tracer's tracks and the log line thread ids.
  explicit ThreadPool(std::size_t n_threads = 0,
                      const std::string& name_prefix = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs f(i) for i in [0, n) across the pool and waits for completion.
  /// The calling thread participates, so this works even with 1 worker.
  /// If f throws, iteration stops early (remaining indices may be skipped),
  /// every helper is still joined, and the first exception is rethrown.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  /// Blocks until the queue is empty and all workers idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace memq
