#include "common/metrics.hpp"

#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <thread>
#include <tuple>
#include <utility>

#include "common/error.hpp"

namespace memq::metrics {

namespace detail {
std::atomic<bool> g_timing{false};
}  // namespace detail

void arm_timing() noexcept {
  detail::g_timing.store(true, std::memory_order_relaxed);
}
void disarm_timing() noexcept {
  detail::g_timing.store(false, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

std::uint64_t HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; ceil without <cmath>.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      const std::uint64_t upper = Histogram::bucket_upper(b);
      return max != 0 && max < upper ? max : upper;
    }
  }
  return max;  // racing snapshot: count ran ahead of the bucket loads
}

HistogramSnapshot HistogramSnapshot::minus(
    const HistogramSnapshot& earlier) const noexcept {
  HistogramSnapshot d;
  d.count = count - earlier.count;
  d.sum = sum - earlier.sum;
  d.max = max;  // high-water mark: keep the later lifetime max
  for (std::size_t b = 0; b < kBuckets; ++b)
    d.buckets[b] = buckets[b] - earlier.buckets[b];
  return d;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // Deques: cell addresses are stable across registration, never freed.
  std::deque<std::pair<std::string, Counter>> counters;
  std::deque<std::pair<std::string, Gauge>> gauges;
  std::deque<std::pair<std::string, Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl()) {}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->counters.emplace_back(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple());
  return impl_->counters.back().second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->gauges.emplace_back(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple());
  return impl_->gauges.back().second;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->histograms.emplace_back(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple());
  return impl_->histograms.back().second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Snapshot s;
  for (const auto& [name, cell] : impl_->counters)
    s.counters[name] += cell.value();
  for (const auto& [name, cell] : impl_->gauges) {
    GaugeSnapshot& g = s.gauges[name];
    g.value += cell.value();
    g.peak += cell.peak();
  }
  for (const auto& [name, cell] : impl_->histograms) {
    const HistogramSnapshot h = cell.snapshot();
    auto [it, fresh] = s.histograms.try_emplace(name, h);
    if (!fresh) {
      HistogramSnapshot& agg = it->second;
      agg.count += h.count;
      agg.sum += h.sum;
      if (h.max > agg.max) agg.max = h.max;
      for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b)
        agg.buckets[b] += h.buckets[b];
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

namespace {

std::string prom_name(const std::string& dotted) {
  std::string out = "memq_";
  for (const char c : dotted) out += c == '.' ? '_' : c;
  return out;
}

}  // namespace

void write_prometheus(std::ostream& out, const Snapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, g] : snap.gauges) {
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " gauge\n" << n << " " << g.value << "\n";
    out << "# TYPE " << n << "_peak gauge\n"
        << n << "_peak " << g.peak << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " histogram\n";
    std::size_t top = 0;  // highest nonzero bucket, for compact output
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b)
      if (h.buckets[b] != 0) top = b;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b <= top; ++b) {
      cum += h.buckets[b];
      out << n << "_bucket{le=\"" << Histogram::bucket_upper(b) << "\"} "
          << cum << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << n << "_sum " << h.sum << "\n";
    out << n << "_count " << h.count << "\n";
  }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

namespace {

void write_jsonl_sample(std::ostream& out, std::uint64_t t_ms,
                        std::uint64_t wall_ms, const Snapshot& snap) {
  out << "{\"t_ms\": " << t_ms << ", \"wall_ms\": " << wall_ms
      << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << v;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : snap.gauges) {
    out << (first ? "" : ", ") << "\"" << name << "\": {\"value\": "
        << g.value << ", \"peak\": " << g.peak << "}";
    first = false;
  }
  out << "}, \"hists\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "" : ", ") << "\"" << name << "\": {\"count\": "
        << h.count << ", \"sum\": " << h.sum << ", \"max\": " << h.max
        << ", \"p50\": " << h.percentile(0.50) << ", \"p95\": "
        << h.percentile(0.95) << ", \"p99\": " << h.percentile(0.99)
        << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;  // sparse: [index, count] pairs
      out << (bfirst ? "" : ", ") << "[" << b << ", " << h.buckets[b] << "]";
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << "}}\n";
}

}  // namespace

struct Sampler::Impl {
  SamplerOptions opts;
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;

  std::ofstream jsonl;
  Snapshot baseline;
  Snapshot prev;
  std::chrono::steady_clock::time_point t_start;
  std::chrono::steady_clock::time_point t_prev;

  void run() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      cv.wait_for(lock, opts.interval);
      if (stopping) break;
      sample(false);
    }
  }

  // Called with `mutex` held (from run()) or after the thread joined.
  void sample(bool final_tick) {
    const auto now = std::chrono::steady_clock::now();
    const Snapshot snap = Registry::global().snapshot();
    const std::uint64_t t_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - t_start)
            .count());
    if (jsonl.is_open()) {
      const std::uint64_t wall_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      write_jsonl_sample(jsonl, t_ms, wall_ms, snap);
      jsonl.flush();
    }
    if (!opts.prom_path.empty()) {
      std::ofstream prom(opts.prom_path, std::ios::trunc);
      if (prom) write_prometheus(prom, snap);
    }
    if (opts.progress) emit_progress(snap, now, final_tick);
    prev = snap;
    t_prev = now;
  }

  void emit_progress(const Snapshot& snap,
                     std::chrono::steady_clock::time_point now,
                     bool final_tick) {
    const std::uint64_t actual =
        snap.counter_delta(baseline, "store.chunk_loads") +
        snap.counter_delta(baseline, "store.chunk_stores");
    std::uint64_t predicted = 0;
    if (const auto it = snap.gauges.find("plan.predicted_codec_passes");
        it != snap.gauges.end())
      predicted = it->second.value;
    const double elapsed =
        std::chrono::duration<double>(now - t_start).count();
    const double tick =
        std::chrono::duration<double>(now - t_prev).count();
    const std::uint64_t tick_bytes =
        snap.counter_delta(prev, "codec.decode_bytes") +
        snap.counter_delta(prev, "codec.encode_bytes");
    const double mbps =
        tick > 1e-9 ? static_cast<double>(tick_bytes) / tick / 1e6 : 0.0;

    char line[192];
    if (predicted > 0) {
      const double frac =
          static_cast<double>(actual) / static_cast<double>(predicted);
      const double eta =
          actual > 0 && frac < 1.0 ? elapsed * (1.0 / frac - 1.0) : 0.0;
      std::snprintf(line, sizeof(line),
                    "[progress] codec passes %" PRIu64 "/%" PRIu64
                    " (%3.0f%%) | %7.1f MB/s | elapsed %6.1fs | eta %6.1fs",
                    actual, predicted, 100.0 * (frac < 1.0 ? frac : 1.0),
                    mbps, elapsed, eta);
    } else {
      std::snprintf(line, sizeof(line),
                    "[progress] codec passes %" PRIu64
                    " | %7.1f MB/s | elapsed %6.1fs",
                    actual, mbps, elapsed);
    }
    std::fprintf(stderr, "\r%-100s", line);
    if (final_tick) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }
};

Sampler::~Sampler() { stop(); }

void Sampler::start(SamplerOptions opts) {
  MEMQ_CHECK(impl_ == nullptr, "metrics sampler already running");
  impl_ = new Impl();
  impl_->opts = std::move(opts);
  if (!impl_->opts.jsonl_path.empty()) {
    impl_->jsonl.open(impl_->opts.jsonl_path, std::ios::trunc);
    MEMQ_CHECK(impl_->jsonl.is_open(), "cannot open metrics JSONL file '"
                                           << impl_->opts.jsonl_path << "'");
  }
  impl_->baseline = Registry::global().snapshot();
  impl_->prev = impl_->baseline;
  impl_->t_start = std::chrono::steady_clock::now();
  impl_->t_prev = impl_->t_start;
  impl_->thread = std::thread([impl = impl_] { impl->run(); });
}

void Sampler::stop() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  impl_->sample(true);  // final tick: last JSONL line + prom + progress \n
  delete impl_;
  impl_ = nullptr;
}

}  // namespace memq::metrics
