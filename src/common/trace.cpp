#include "common/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace memq::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using clock_type = std::chrono::steady_clock;

struct Event {
  char ph;           // 'B', 'E', 'i', 'X', 'C'
  const char* cat;   // static string literals only
  std::string name;  // empty for 'E'
  double ts_us;      // wall us (pid 0) or modeled us (pid 1)
  double dur_us;     // 'X' only
  int pid;
  int tid;           // thread id (pid 0) or lane id (pid 1)
  std::string args;  // JSON object fragment, no braces
};

struct ThreadBuffer {
  std::mutex mutex;  // uncontended except when stop() snapshots the buffer
  std::vector<Event> events;
  int tid = 0;
  std::uint64_t gen = 0;

  void push(Event e) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back(std::move(e));
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::unordered_map<int, std::string> thread_names;
  std::vector<std::string> lanes;  // lane id -> name (persists across runs)
  std::string path;
  clock_type::time_point epoch;
  std::atomic<std::uint64_t> gen{0};
  std::atomic<int> next_thread_id{0};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

int assign_thread_id() noexcept {
  return registry().next_thread_id.fetch_add(1, std::memory_order_relaxed);
}

/// The calling thread's buffer for the current capture generation. The
/// registry keeps a shared_ptr so buffers outlive their threads (codec pool
/// workers die with the engine, before stop()).
ThreadBuffer& buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf;
  Registry& r = registry();
  const std::uint64_t gen = r.gen.load(std::memory_order_acquire);
  if (!buf || buf->gen != gen) {
    buf = std::make_shared<ThreadBuffer>();
    buf->tid = thread_id();
    buf->gen = gen;
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(buf);
  }
  return *buf;
}

double wall_us() noexcept {
  return std::chrono::duration<double, std::micro>(clock_type::now() -
                                                   registry().epoch)
      .count();
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void write_meta(std::FILE* f, int pid, int tid, const char* kind,
                const std::string& value) {
  std::string esc;
  json_escape_into(esc, value);
  std::fprintf(f,
               "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
               "\"args\":{\"name\":\"%s\"}},\n",
               pid, tid, kind, esc.c_str());
}

void write_event(std::FILE* f, const Event& e, bool last) {
  std::string name;
  json_escape_into(name, e.name);
  std::fprintf(f, "{\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f", e.ph,
               e.pid, e.tid, e.ts_us);
  if (e.ph == 'X') std::fprintf(f, ",\"dur\":%.3f", e.dur_us);
  if (e.ph != 'E') {
    std::fprintf(f, ",\"cat\":\"%s\",\"name\":\"%s\"", e.cat, name.c_str());
  }
  if (e.ph == 'i') std::fprintf(f, ",\"s\":\"t\"");  // thread-scoped instant
  if (!e.args.empty()) std::fprintf(f, ",\"args\":{%s}", e.args.c_str());
  std::fprintf(f, "}%s\n", last ? "" : ",");
}

}  // namespace

int thread_id() noexcept {
  thread_local int id = assign_thread_id();
  return id;
}

void set_thread_name(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.thread_names[thread_id()] = name;
}

void start(const std::string& path) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    if (detail::g_enabled.load(std::memory_order_relaxed))
      throw std::invalid_argument("trace::start while already capturing");
    std::FILE* probe = std::fopen(path.c_str(), "w");  // fail before the
    if (probe == nullptr)                              // run, not at flush
      throw std::runtime_error("trace: cannot write '" + path + "'");
    std::fclose(probe);
    r.path = path;
    r.buffers.clear();
    r.epoch = clock_type::now();
  }
  r.gen.fetch_add(1, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

bool init_from_env() {
  if (enabled()) return true;
  const char* env = std::getenv("MEMQ_TRACE");
  if (env == nullptr || env[0] == '\0') return false;
  start(env);
  return true;
}

std::size_t event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t n = 0;
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::size_t stop() {
  Registry& r = registry();
  if (!detail::g_enabled.exchange(false, std::memory_order_acq_rel)) return 0;

  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::unordered_map<int, std::string> thread_names;
  std::vector<std::string> lanes;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    buffers.swap(r.buffers);
    thread_names = r.thread_names;
    lanes = r.lanes;
    path = r.path;
  }

  // Snapshot each buffer under its own mutex: a thread that was inside an
  // armed scope when capture went off (e.g. an async cache write-back still
  // encoding) may race one last append, which must not tear the flush. Any
  // span still open after the snapshot gets a synthetic E at the stop
  // timestamp so every track stays B/E-balanced.
  const double stop_ts = wall_us();
  std::vector<std::vector<Event>> snapshots;
  snapshots.reserve(buffers.size());
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    snapshots.push_back(std::move(buf->events));
  }
  for (std::size_t b = 0; b < snapshots.size(); ++b) {
    long depth = 0;  // one thread per buffer, so depth is per-track
    for (const Event& e : snapshots[b]) {
      if (e.ph == 'B') ++depth;
      if (e.ph == 'E') --depth;
    }
    for (; depth > 0; --depth)
      snapshots[b].push_back(Event{'E', "", std::string{}, stop_ts, 0.0, 0,
                                   buffers[b]->tid, {}});
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("trace: cannot write '" + path + "'");
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");

  write_meta(f, 0, 0, "process_name", "host (wall clock)");
  write_meta(f, 1, 0, "process_name", "modeled device (virtual clock)");
  for (const auto& buf : buffers) {
    const auto it = thread_names.find(buf->tid);
    write_meta(f, 0, buf->tid, "thread_name",
               it != thread_names.end()
                   ? it->second
                   : "thread-" + std::to_string(buf->tid));
  }
  for (std::size_t i = 0; i < lanes.size(); ++i)
    write_meta(f, 1, static_cast<int>(i), "thread_name", lanes[i]);

  std::size_t total = 0;
  for (const auto& events : snapshots) total += events.size();
  std::size_t written = 0;
  for (const auto& events : snapshots)
    for (const Event& e : events) write_event(f, e, ++written == total);
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return total;
}

void begin(const char* cat, const char* name, std::string args) {
  buffer().push(
      Event{'B', cat, name, wall_us(), 0.0, 0, thread_id(), std::move(args)});
}

void end() {
  buffer().push(
      Event{'E', "", std::string{}, wall_us(), 0.0, 0, thread_id(), {}});
}

void instant(const char* cat, const char* name, std::string args) {
  buffer().push(
      Event{'i', cat, name, wall_us(), 0.0, 0, thread_id(), std::move(args)});
}

void counter(const char* name, double value) {
  buffer().push(Event{'C', "counter", name, wall_us(), 0.0, 0, thread_id(),
                      arg("value", value)});
}

int lane(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (std::size_t i = 0; i < r.lanes.size(); ++i)
    if (r.lanes[i] == name) return static_cast<int>(i);
  r.lanes.push_back(name);
  return static_cast<int>(r.lanes.size() - 1);
}

void lane_span(int lane_id, const char* name, double start_s, double dur_s,
               std::string args) {
  buffer().push(Event{'X', "device", name, start_s * 1e6, dur_s * 1e6, 1,
                      lane_id, std::move(args)});
}

namespace detail {

std::string arg_uint(const char* key, unsigned long long value) {
  return "\"" + std::string(key) + "\":" + std::to_string(value);
}

std::string arg_int(const char* key, long long value) {
  return "\"" + std::string(key) + "\":" + std::to_string(value);
}

}  // namespace detail

std::string arg(const char* key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return "\"" + std::string(key) + "\":" + buf;
}

std::string arg(const char* key, const std::string& value) {
  std::string out = "\"" + std::string(key) + "\":\"";
  json_escape_into(out, value);
  out += '"';
  return out;
}

}  // namespace memq::trace
