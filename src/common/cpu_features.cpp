#include "common/cpu_features.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

namespace memq::simd {

namespace {

IsaLevel probe() noexcept {
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
  return IsaLevel::kSse2;  // architectural baseline on x86-64
#else
  return IsaLevel::kScalar;
#endif
}

constexpr int kNoForce = -1;

/// Forced cap, or kNoForce. The env var is folded in once at first use.
std::atomic<int> g_force{kNoForce};

int env_cap() noexcept {
  const char* v = std::getenv("MEMQ_SIMD");
  if (v == nullptr || *v == '\0') return kNoForce;
  if (std::strcmp(v, "scalar") == 0 || std::strcmp(v, "off") == 0)
    return static_cast<int>(IsaLevel::kScalar);
  if (std::strcmp(v, "sse2") == 0) return static_cast<int>(IsaLevel::kSse2);
  if (std::strcmp(v, "avx2") == 0) return static_cast<int>(IsaLevel::kAvx2);
  MEMQ_LOG_WARN << "MEMQ_SIMD='" << v
                << "' not recognized (want scalar|sse2|avx2); ignoring";
  return kNoForce;
}

/// -2 = unread sentinel so the env var is parsed exactly once.
std::atomic<int> g_env{-2};

int env_cap_cached() noexcept {
  int c = g_env.load(std::memory_order_relaxed);
  if (c == -2) {
    c = env_cap();
    g_env.store(c, std::memory_order_relaxed);
  }
  return c;
}

}  // namespace

IsaLevel detected() noexcept {
  static const IsaLevel level = probe();
  return level;
}

IsaLevel active() noexcept {
  const int det = static_cast<int>(detected());
  // An explicit force() wins outright (tests pin lanes past an env cap);
  // otherwise MEMQ_SIMD caps detection. Either way, never above detected.
  const int forced = g_force.load(std::memory_order_relaxed);
  if (forced != kNoForce) return static_cast<IsaLevel>(std::min(forced, det));
  const int env = env_cap_cached();
  if (env != kNoForce) return static_cast<IsaLevel>(std::min(env, det));
  return static_cast<IsaLevel>(det);
}

void force(IsaLevel level) noexcept {
  g_force.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_force() noexcept {
  g_force.store(kNoForce, std::memory_order_relaxed);
}

const char* name(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kSse2: return "sse2";
    case IsaLevel::kAvx2: return "avx2";
  }
  return "?";
}

}  // namespace memq::simd
