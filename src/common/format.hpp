// Human-readable formatting of byte counts, durations and ratios for the
// bench reporters and telemetry dumps.
#pragma once

#include <cstdint>
#include <string>

namespace memq {

/// "1.50 GiB", "512 B", ...
std::string human_bytes(std::uint64_t bytes);

/// "1.23 s", "45.6 ms", "789 us", ...
std::string human_seconds(double seconds);

/// Fixed-point with `digits` decimals, e.g. format_fixed(1.0345, 2) == "1.03".
std::string format_fixed(double value, int digits);

/// Scientific with `digits` significant decimals, e.g. "1.0e-04".
std::string format_sci(double value, int digits);

}  // namespace memq
