// Unit tests for the locality-aware plan optimizer (core/plan_opt.hpp):
// the plan-opt-off identity guarantee, the hoist/merge/sink scheduling
// wins, the Belady cost forecast, and the elide-before-partition ordering.
#include "core/plan_opt.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "core/engine.hpp"
#include "core/memq_engine.hpp"
#include "core/partitioner.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

PlanOptOptions opts_for(qubit_t chunk_qubits, qubit_t n,
                        std::uint64_t cache_chunks = 0) {
  PlanOptOptions opt;
  opt.chunk_qubits = chunk_qubits;
  opt.chunk_raw_bytes = sizeof(amp_t) << chunk_qubits;
  opt.n_chunks = index_t{1} << (n - chunk_qubits);
  opt.cache_budget_bytes = cache_chunks * opt.chunk_raw_bytes;
  return opt;
}

std::size_t total_gates(const StagePlan& plan) {
  std::size_t n = 0;
  for (const Stage& s : plan.stages) n += s.gates.size();
  return n;
}

bool plans_identical(const StagePlan& a, const StagePlan& b) {
  if (a.stages.size() != b.stages.size()) return false;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    const Stage &sa = a.stages[i], &sb = b.stages[i];
    if (sa.kind != sb.kind || sa.pair_qubit != sb.pair_qubit ||
        sa.gates.size() != sb.gates.size())
      return false;
    for (std::size_t g = 0; g < sa.gates.size(); ++g) {
      const Gate &ga = sa.gates[g], &gb = sb.gates[g];
      if (ga.kind != gb.kind || ga.targets != gb.targets ||
          ga.controls != gb.controls || ga.params != gb.params)
        return false;
    }
  }
  return true;
}

// --- plan-opt off: the legacy plan, gate for gate --------------------------

TEST(PlanOptOff, EngineReproducesLegacyPartitionExactly) {
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    Prng rng(seed);
    const qubit_t n = static_cast<qubit_t>(5 + rng.uniform_index(5));
    const qubit_t chunk = static_cast<qubit_t>(
        2 + rng.uniform_index(static_cast<std::uint64_t>(n - 2)));
    const Circuit circ = circuit::make_random_circuit(n, 4, seed, true);

    EngineConfig cfg;
    cfg.chunk_qubits = chunk;
    cfg.plan_opt = false;
    MemQSimEngine engine(n, cfg);
    engine.run(circ);
    ASSERT_TRUE(engine.last_plan().has_value());

    const StagePlan legacy = partition(circ, chunk);
    EXPECT_TRUE(plans_identical(*engine.last_plan(), legacy))
        << "seed=" << seed << ": --plan-opt off must match the legacy plan";
  }
}

// --- scheduling wins -------------------------------------------------------

TEST(PlanOpt, HoistsCommutingLocalsAcrossPairStages) {
  // Written order: h(5) x(0) h(6) x(1) h(5) -> legacy gives pair(5),
  // pair(6), pair(5) = 3 pair stages (locals absorbed). The DAG lets both
  // h(5)s merge: 2 pair stages.
  Circuit c(8);
  c.h(5).x(0).h(6).x(1).h(5);
  const StagePlan legacy = partition(c, 4);
  const StagePlan opt = build_optimized_plan(c, opts_for(4, 8));
  EXPECT_EQ(legacy.stats.pair_stages, 3u);
  EXPECT_EQ(opt.stats.pair_stages, 2u);
  EXPECT_EQ(total_gates(opt), 5u);
}

TEST(PlanOpt, MergesSameQubitPairStages) {
  Circuit c(8);
  c.h(6).h(5).h(6);
  const StagePlan legacy = partition(c, 4);
  const StagePlan opt = build_optimized_plan(c, opts_for(4, 8));
  EXPECT_EQ(legacy.stats.pair_stages, 3u);
  EXPECT_EQ(opt.stats.pair_stages, 2u);
}

TEST(PlanOpt, PermutesSinkBelowLocals) {
  // x(7) is a pure permutation; legacy splits h(0) | permute | h(1) into
  // three stages, the scheduler keeps the locals together.
  Circuit c(8);
  c.h(0).x(7).h(1);
  const StagePlan legacy = partition(c, 4);
  const StagePlan opt = build_optimized_plan(c, opts_for(4, 8));
  EXPECT_EQ(legacy.stages.size(), 3u);
  EXPECT_EQ(opt.stages.size(), 2u);
  EXPECT_EQ(opt.stats.local_stages, 1u);
  EXPECT_EQ(opt.stats.permute_stages, 1u);
}

TEST(PlanOpt, GroupsIndependentPairWork) {
  // h(5) h(6) rx(5) rx(6): all independent; one stage per pair qubit
  // instead of four.
  Circuit c(8);
  c.h(5).h(6).rx(5, 0.3).rx(6, 0.4);
  const StagePlan legacy = partition(c, 4);
  const StagePlan opt = build_optimized_plan(c, opts_for(4, 8));
  EXPECT_EQ(legacy.stats.pair_stages, 4u);
  EXPECT_EQ(opt.stats.pair_stages, 2u);
}

TEST(PlanOpt, QftNeedsFewerPairStages) {
  // The QFT's cp gates are diagonal on both wires, so the bit-reversal
  // tail's lowered CXs hoist into the per-qubit pair stages.
  const qubit_t n = 10, chunk = 5;
  const Circuit qft = circuit::make_qft(n);
  const StagePlan legacy = partition(qft, chunk);
  const StagePlan opt = build_optimized_plan(qft, opts_for(chunk, n));
  EXPECT_LT(opt.stats.pair_stages, legacy.stats.pair_stages);
  EXPECT_GT(opt.stats.gates_per_codec_pass(),
            legacy.stats.gates_per_codec_pass());
  EXPECT_EQ(total_gates(opt), total_gates(legacy));
}

TEST(PlanOpt, MeasurementsStayOrdered) {
  Circuit c(8);
  c.h(5).measure(0).h(5);
  const StagePlan opt = build_optimized_plan(c, opts_for(4, 8));
  // The fence keeps three stages: pair, measure, pair.
  ASSERT_EQ(opt.stages.size(), 3u);
  EXPECT_EQ(opt.stages[1].kind, StageKind::kMeasure);
}

// --- stats guards ----------------------------------------------------------

TEST(PartitionStats, GatesPerCodecPassGuardsZeroStages) {
  PartitionStats empty{};
  EXPECT_EQ(empty.gates_per_codec_pass(), 0.0);
  const StagePlan plan = partition(Circuit(4), 2);
  EXPECT_EQ(plan.stats.gates_per_codec_pass(), 0.0);
}

// --- cost forecast ---------------------------------------------------------

TEST(PlanCostForecast, CachelessCountsAreExact) {
  // 3 pair stages on 8 chunks, no cache: every stage decodes and
  // re-encodes all 8 chunks (4 pairs x 2 loads / 2 stores each).
  Circuit c(8);
  c.h(6).h(7).h(6);  // alternating pair qubits: no stage merging
  const StagePlan plan = partition(c, 5);  // 8 chunks
  ASSERT_EQ(plan.stages.size(), 3u);
  const PlanCost cost = estimate_plan_cost(plan, opts_for(5, 8, 0));
  EXPECT_TRUE(cost.exact);
  EXPECT_EQ(cost.chunk_loads, 24u);
  EXPECT_EQ(cost.chunk_stores, 24u);
  EXPECT_EQ(cost.cache_hits, 0u);
  EXPECT_EQ(cost.cache_misses, 24u);
  EXPECT_EQ(cost.codec_encodes, 24u);
}

TEST(PlanCostForecast, FullCacheBudgetElidesRepeatPasses) {
  Circuit c(8);
  c.h(6).h(7).h(6);
  const StagePlan plan = partition(c, 5);
  const PlanCost cold = estimate_plan_cost(plan, opts_for(5, 8, 0));
  const PlanCost warm = estimate_plan_cost(plan, opts_for(5, 8, 8));
  EXPECT_TRUE(warm.exact);
  // All 8 chunks fit: each misses once, then hits; dirty flush at the end.
  EXPECT_EQ(warm.cache_misses, 8u);
  EXPECT_EQ(warm.cache_hits, 16u);
  EXPECT_EQ(warm.codec_encodes, 8u);
  EXPECT_LT(warm.codec_passes(), cold.codec_passes());
}

TEST(PlanCostForecast, PartialBudgetLandsBetween) {
  const Circuit qft = circuit::make_qft(10);
  const StagePlan plan = partition(qft, 5);
  const double cold =
      estimate_plan_cost(plan, opts_for(5, 10, 0)).codec_passes();
  const double half =
      estimate_plan_cost(plan, opts_for(5, 10, 16)).codec_passes();
  const double full =
      estimate_plan_cost(plan, opts_for(5, 10, 32)).codec_passes();
  EXPECT_LE(full, half);
  EXPECT_LE(half, cold);
  EXPECT_LT(full, cold);
}

TEST(PlanOpt, OptimizedPlanForecastNoWorseOnQft) {
  const qubit_t n = 10, chunk = 5;
  const Circuit qft = circuit::make_qft(n);
  for (const std::uint64_t cache_chunks : {0ull, 8ull, 32ull}) {
    const PlanOptOptions opt = opts_for(chunk, n, cache_chunks);
    StagePlan legacy = partition(qft, chunk);
    legacy.cost = estimate_plan_cost(legacy, opt);
    const StagePlan optimized = build_optimized_plan(qft, opt);
    EXPECT_LE(optimized.cost.codec_passes(), legacy.cost.codec_passes())
        << "cache_chunks=" << cache_chunks;
  }
}

// --- swap elision ordering -------------------------------------------------

TEST(ElideSwaps, RunsBeforePartitionOnEveryPath) {
  // A QFT ends in uncontrolled SWAPs. With elision on, they must be folded
  // into the layout BEFORE partitioning — so no stage may contain a swap
  // lowered to CXs or a swap-driven permute stage.
  const qubit_t n = 8, chunk = 4;
  const Circuit qft = circuit::make_qft(n);
  for (const bool plan_opt : {false, true}) {
    EngineConfig cfg;
    cfg.chunk_qubits = chunk;
    cfg.elide_swaps = true;
    cfg.plan_opt = plan_opt;
    MemQSimEngine engine(n, cfg);
    engine.run(qft);
    ASSERT_TRUE(engine.last_plan().has_value());
    for (const Stage& stage : engine.last_plan()->stages)
      for (const Gate& g : stage.gates)
        EXPECT_NE(g.kind, GateKind::kSwap)
            << "plan_opt=" << plan_opt
            << ": swap survived into the partition";
  }
}

}  // namespace
}  // namespace memq::core
