#include "core/chunk_store.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace memq::core {
namespace {

compress::ChunkCodecConfig default_codec() {
  compress::ChunkCodecConfig cfg;
  cfg.bound = 1e-6;
  return cfg;
}

TEST(ChunkStore, GeometryAndInit) {
  ChunkStore store(10, 6, default_codec());
  EXPECT_EQ(store.n_chunks(), 16u);
  EXPECT_EQ(store.chunk_amps(), 64u);
  EXPECT_EQ(store.chunk_raw_bytes(), 1024u);
  EXPECT_EQ(store.raw_bytes(), 16384u);

  std::vector<amp_t> buf(64);
  store.load(0, buf);
  EXPECT_EQ(buf[0], (amp_t{1, 0}));
  for (index_t i = 1; i < 64; ++i) EXPECT_EQ(buf[i], (amp_t{0, 0}));
  for (index_t c = 1; c < 16; ++c) EXPECT_TRUE(store.is_zero_chunk(c));
  EXPECT_FALSE(store.is_zero_chunk(0));
}

TEST(ChunkStore, InitNonzeroBasis) {
  ChunkStore store(8, 4, default_codec());
  store.init_basis(200);  // chunk 12, local 8
  std::vector<amp_t> buf(16);
  store.load(12, buf);
  EXPECT_EQ(buf[8], (amp_t{1, 0}));
  EXPECT_TRUE(store.is_zero_chunk(0));
}

TEST(ChunkStore, StoreLoadRoundTrip) {
  ChunkStore store(8, 4, default_codec());
  Prng rng(5);
  std::vector<amp_t> in(16), out(16);
  for (auto& a : in) a = rng.normal_amp() * 0.1;
  store.store(3, in);
  store.load(3, out);
  for (index_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(out[i].real(), in[i].real(), 1e-6);
    EXPECT_NEAR(out[i].imag(), in[i].imag(), 1e-6);
  }
  EXPECT_EQ(store.loads(), 1u);
  EXPECT_EQ(store.stores(), 1u);
}

TEST(ChunkStore, SwapChunks) {
  ChunkStore store(8, 4, default_codec());
  std::vector<amp_t> a(16, amp_t{0.5, 0});
  store.store(2, a);
  EXPECT_FALSE(store.is_zero_chunk(2));
  EXPECT_TRUE(store.is_zero_chunk(7));
  store.swap_chunks(2, 7);
  EXPECT_TRUE(store.is_zero_chunk(2));
  EXPECT_FALSE(store.is_zero_chunk(7));
  std::vector<amp_t> out(16);
  store.load(7, out);
  EXPECT_NEAR(out[0].real(), 0.5, 1e-6);
}

TEST(ChunkStore, FootprintShrinksWithSparsity) {
  ChunkStore store(12, 6, default_codec());
  // Fresh basis state: everything is zero chunks -> tiny footprint.
  const auto sparse_bytes = store.compressed_bytes();
  EXPECT_LT(sparse_bytes, store.raw_bytes() / 10);

  // Smooth (QFT-like) chunk contents compress well; white noise would not,
  // which the compressor benches quantify separately.
  std::vector<amp_t> dense(64);
  for (index_t c = 0; c < store.n_chunks(); ++c) {
    for (index_t j = 0; j < 64; ++j) {
      const double t = 0.01 * static_cast<double>(c * 64 + j);
      dense[j] = amp_t{0.1 * std::sin(t), 0.1 * std::cos(t)};
    }
    store.store(c, dense);
  }
  EXPECT_GT(store.compressed_bytes(), sparse_bytes);
  EXPECT_GE(store.peak_compressed_bytes(), store.compressed_bytes());
  EXPECT_GT(store.compression_ratio(), 1.5);
}

TEST(ChunkStore, RejectsBadGeometry) {
  EXPECT_THROW(ChunkStore(4, 0, default_codec()), Error);
  EXPECT_THROW(ChunkStore(4, 5, default_codec()), Error);
}

TEST(ChunkStore, RejectsBadIndices) {
  ChunkStore store(6, 3, default_codec());
  std::vector<amp_t> buf(8);
  EXPECT_THROW(store.load(8, buf), Error);
  EXPECT_THROW(store.store(8, buf), Error);
  std::vector<amp_t> wrong(4);
  EXPECT_THROW(store.load(0, wrong), Error);
  EXPECT_THROW(store.init_basis(64), Error);
}

TEST(ChunkStore, FullWidthChunk) {
  // chunk_qubits == n_qubits: a single chunk holding the whole state.
  ChunkStore store(5, 5, default_codec());
  EXPECT_EQ(store.n_chunks(), 1u);
  std::vector<amp_t> buf(32);
  store.load(0, buf);
  EXPECT_EQ(buf[0], (amp_t{1, 0}));
}

}  // namespace
}  // namespace memq::core
