// Qubit-layout optimization: mapping mechanics, heuristic behaviour, and
// full-engine equivalence with every query translated back to logical space.
#include "core/qubit_layout.hpp"

#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/partitioner.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(QubitLayout, IdentityByDefault) {
  QubitLayout layout(5);
  EXPECT_TRUE(layout.is_identity());
  for (qubit_t q = 0; q < 5; ++q) {
    EXPECT_EQ(layout.physical(q), q);
    EXPECT_EQ(layout.logical(q), q);
  }
  EXPECT_EQ(layout.to_physical(0b10110), 0b10110u);
}

TEST(QubitLayout, FromMappingValidates) {
  EXPECT_NO_THROW(QubitLayout::from_mapping({2, 0, 1}));
  EXPECT_THROW(QubitLayout::from_mapping({0, 0, 1}), Error);
  EXPECT_THROW(QubitLayout::from_mapping({0, 3, 1}), Error);
  EXPECT_THROW(QubitLayout::from_mapping({}), Error);
}

TEST(QubitLayout, IndexTranslationRoundTrips) {
  const QubitLayout layout = QubitLayout::from_mapping({3, 1, 0, 2});
  EXPECT_FALSE(layout.is_identity());
  for (index_t i = 0; i < 16; ++i) {
    EXPECT_EQ(layout.to_logical(layout.to_physical(i)), i);
    EXPECT_EQ(layout.to_physical(layout.to_logical(i)), i);
  }
  // logical bit 0 -> physical bit 3.
  EXPECT_EQ(layout.to_physical(0b0001), 0b1000u);
  EXPECT_EQ(layout.to_physical(0b0010), 0b0010u);
}

TEST(QubitLayout, MapCircuitRewritesQubits) {
  const QubitLayout layout = QubitLayout::from_mapping({2, 0, 1});
  Circuit c(3);
  c.h(0).cx(0, 1).ccx(0, 1, 2);
  const Circuit mapped = layout.map_circuit(c);
  EXPECT_EQ(mapped[0].targets[0], 2u);
  EXPECT_EQ(mapped[1].controls[0], 2u);
  EXPECT_EQ(mapped[1].targets[0], 0u);
  EXPECT_EQ(mapped[2].targets[0], 1u);
}

TEST(QubitLayout, OptimizeMovesHotTargetsLow) {
  // BV hammers the ancilla (highest qubit) with CX targets: the heuristic
  // must give it a local (low) physical slot.
  constexpr qubit_t n = 9;  // 8 data + ancilla (qubit 8)
  const Circuit bv = circuit::make_bernstein_vazirani(8, 0xA7);
  const QubitLayout layout = QubitLayout::optimize(bv, 4);
  EXPECT_LT(layout.physical(8), 4u);
  EXPECT_EQ(layout.n_qubits(), n);
}

TEST(QubitLayout, OptimizeReducesPairStages) {
  // Activity concentrated on two HIGH qubits: unmapped, every alternation
  // opens a new pair stage; mapped, both live in the local range and the
  // whole circuit is one local stage.
  constexpr qubit_t c = 4;
  Circuit hot(8);
  for (int i = 0; i < 25; ++i) {
    hot.h(6);
    hot.h(7);
  }
  const auto plain = partition(hot, c);
  const QubitLayout layout = QubitLayout::optimize(hot, c);
  EXPECT_LT(layout.physical(6), c);
  EXPECT_LT(layout.physical(7), c);
  const auto mapped = partition(layout.map_circuit(hot), c);
  EXPECT_GE(plain.stats.pair_stages, 50u);
  EXPECT_EQ(mapped.stats.pair_stages, 0u);
  EXPECT_EQ(mapped.stats.local_stages, 1u);
}

TEST(QubitLayout, FullChunkMeansIdentity) {
  const Circuit c = circuit::make_qft(5);
  EXPECT_TRUE(QubitLayout::optimize(c, 5).is_identity());
}

// ---------------------------------------------------------------------------
// Engine integration: every query must be layout-transparent.
// ---------------------------------------------------------------------------

EngineConfig layout_cfg(bool optimize) {
  EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.bound = 1e-9;
  cfg.optimize_layout = optimize;
  return cfg;
}

TEST(LayoutEngine, StateMatchesDenseOracle) {
  for (const char* name : {"bv", "qft", "random", "grover"}) {
    const Circuit c = circuit::make_workload(name, 8, 3);
    auto opt = make_engine(EngineKind::kMemQSim, c.n_qubits(),
                           layout_cfg(true));
    auto dense =
        make_engine(EngineKind::kDense, c.n_qubits(), layout_cfg(false));
    opt->run(c);
    dense->run(c);
    EXPECT_LT(opt->to_dense().max_abs_diff(dense->to_dense()), 1e-5) << name;
  }
}

TEST(LayoutEngine, AmplitudeQueriesTranslated) {
  const Circuit bv = circuit::make_bernstein_vazirani(7, 0x55);
  auto engine =
      make_engine(EngineKind::kMemQSim, bv.n_qubits(), layout_cfg(true));
  engine->run(bv);
  // Data register reads the secret; ancilla (qubit 7) is in |->.
  for (qubit_t q = 0; q < 7; ++q) {
    std::string z(bv.n_qubits(), 'I');
    z[q] = 'Z';
    const double expected = ((0x55 >> q) & 1) ? -1.0 : 1.0;
    EXPECT_NEAR(engine->expectation({z}), expected, 1e-6) << "qubit " << q;
  }
}

TEST(LayoutEngine, SamplingTranslated) {
  const Circuit ghz = circuit::make_ghz(8);
  // Force a non-trivial layout by prepending a hot gate on qubit 7.
  Circuit c(8);
  c.h(7).h(7);  // identity overall, but heats qubit 7
  c.append(ghz);
  auto engine = make_engine(EngineKind::kMemQSim, 8, layout_cfg(true));
  engine->run(c);
  const auto counts = engine->sample_counts(500);
  std::uint64_t total = 0;
  for (const auto& [basis, cnt] : counts) {
    EXPECT_TRUE(basis == 0 || basis == dim_of(8) - 1) << basis;
    total += cnt;
  }
  EXPECT_EQ(total, 500u);
}

TEST(LayoutEngine, SecondRunReusesLayout) {
  const Circuit half1 = circuit::make_qft(8);
  auto engine = make_engine(EngineKind::kMemQSim, 8, layout_cfg(true));
  engine->run(half1);
  engine->run(half1.inverse());
  EXPECT_NEAR(std::abs(engine->amplitude(0)), 1.0, 1e-5);
}

// ---------------------------------------------------------------------------
// SWAP elision: uncontrolled swaps become wire renames folded into the layout.
// ---------------------------------------------------------------------------

TEST(SwapElision, RewritesGatesAndFoldsPermutation) {
  Circuit c(4);
  c.h(0).swap(0, 3).cx(0, 1).swap(1, 2).h(2);
  QubitLayout layout(4);
  const Circuit out = elide_swaps(c, layout);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].targets[0], 0u);   // h(0) before any swap
  EXPECT_EQ(out[1].controls[0], 3u);  // cx control 0 now lives at 3
  EXPECT_EQ(out[1].targets[0], 1u);
  EXPECT_EQ(out[2].targets[0], 1u);   // h(2): wire 2's data lives at 1
  // Final homes: 0->3, 1->2, 2->1, 3->0.
  EXPECT_EQ(layout.physical(0), 3u);
  EXPECT_EQ(layout.physical(1), 2u);
  EXPECT_EQ(layout.physical(2), 1u);
  EXPECT_EQ(layout.physical(3), 0u);
}

TEST(SwapElision, ControlledSwapIsNotElided) {
  Circuit c(3);
  c.h(0);
  c.append(Gate::swap(1, 2).with_controls({0}));
  QubitLayout layout(3);
  const Circuit out = elide_swaps(c, layout);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(layout.is_identity());
}

TEST(SwapElision, EngineMatchesDenseOracle) {
  auto cfg = layout_cfg(false);
  cfg.elide_swaps = true;
  for (const char* name : {"qft", "random", "grover"}) {
    const Circuit c = circuit::make_workload(name, 8, 11);
    auto elided = make_engine(EngineKind::kMemQSim, c.n_qubits(), cfg);
    auto dense =
        make_engine(EngineKind::kDense, c.n_qubits(), layout_cfg(false));
    elided->run(c);
    dense->run(c);
    EXPECT_LT(elided->to_dense().max_abs_diff(dense->to_dense()), 1e-5)
        << name;
  }
}

TEST(SwapElision, KillsTheQftBitReversalTraffic) {
  const Circuit qft = circuit::make_qft(8);
  auto cfg = layout_cfg(false);
  auto plain = make_engine(EngineKind::kMemQSim, 8, cfg);
  cfg.elide_swaps = true;
  auto elided = make_engine(EngineKind::kMemQSim, 8, cfg);
  plain->run(qft);
  elided->run(qft);
  EXPECT_LT(elided->telemetry().chunk_stores,
            plain->telemetry().chunk_stores);
  EXPECT_EQ(elided->telemetry().stages_permute, 0u);
}

TEST(SwapElision, ComposesWithOptimizedLayoutAndSecondRun) {
  auto cfg = layout_cfg(true);
  cfg.elide_swaps = true;
  const Circuit qft = circuit::make_qft(8);
  auto engine = make_engine(EngineKind::kMemQSim, 8, cfg);
  engine->run(qft);
  engine->run(qft.inverse());
  EXPECT_NEAR(std::abs(engine->amplitude(0)), 1.0, 1e-5);
}

TEST(SwapElision, CheckpointRoundTripsFoldedLayout) {
  auto cfg = layout_cfg(false);
  cfg.elide_swaps = true;
  const Circuit qft = circuit::make_qft(7);
  auto engine = make_engine(EngineKind::kMemQSim, 7, cfg);
  engine->run(qft);
  const auto before = engine->to_dense();
  const std::string path = "/tmp/memq_elide_ckpt.bin";
  engine->save_state(path);
  auto fresh = make_engine(EngineKind::kMemQSim, 7, layout_cfg(false));
  fresh->load_state(path);
  EXPECT_LT(fresh->to_dense().max_abs_diff(before), 1e-12);
  std::remove(path.c_str());
}

TEST(LayoutEngine, CheckpointPreservesLayout) {
  const Circuit bv = circuit::make_bernstein_vazirani(7, 0x2B);
  auto engine =
      make_engine(EngineKind::kMemQSim, bv.n_qubits(), layout_cfg(true));
  engine->run(bv);
  const auto before = engine->to_dense();
  const std::string path = "/tmp/memq_layout_ckpt.bin";
  engine->save_state(path);

  auto fresh =
      make_engine(EngineKind::kMemQSim, bv.n_qubits(), layout_cfg(true));
  fresh->load_state(path);
  EXPECT_LT(fresh->to_dense().max_abs_diff(before), 1e-12);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memq::core
