// Deeper engine property tests: measurement alignment across engines,
// multi-run accumulation, slot-count invariance, and codec idempotency.
#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "core/engine.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;
using circuit::Gate;

EngineConfig cfg_of(qubit_t chunk, std::uint64_t seed = 555) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk;
  cfg.codec.bound = 1e-9;
  cfg.seed = seed;
  return cfg;
}

TEST(EngineProperties, MidCircuitMeasurementsAlignAcrossEngines) {
  // All engines draw measurement outcomes from the same PRNG sequence, so
  // equal seeds give equal trajectories — states must then agree.
  Circuit c(6);
  c.h(0).h(3).cx(0, 1).measure(1).h(5).cx(3, 4).measure(4).ry(2, 0.7);
  c.measure(5);
  for (const std::uint64_t seed : {1ull, 2ull, 99ull}) {
    auto dense = make_engine(EngineKind::kDense, 6, cfg_of(3, seed));
    auto memq = make_engine(EngineKind::kMemQSim, 6, cfg_of(3, seed));
    auto wu = make_engine(EngineKind::kWu, 6, cfg_of(3, seed));
    dense->run(c);
    memq->run(c);
    wu->run(c);
    EXPECT_LT(memq->to_dense().max_abs_diff(dense->to_dense()), 1e-5)
        << "seed " << seed;
    EXPECT_LT(wu->to_dense().max_abs_diff(dense->to_dense()), 1e-5)
        << "seed " << seed;
  }
}

TEST(EngineProperties, RepeatedRunsAccumulate) {
  // run() appends: three QFT quarters equal one full circuit.
  const Circuit full = circuit::make_random_circuit(7, 9, 21);
  Circuit third1(7), third2(7), third3(7);
  for (std::size_t i = 0; i < full.size(); ++i) {
    (i < full.size() / 3       ? third1
     : i < 2 * full.size() / 3 ? third2
                               : third3)
        .append(full[i]);
  }
  auto split = make_engine(EngineKind::kMemQSim, 7, cfg_of(3));
  split->run(third1);
  split->run(third2);
  split->run(third3);
  auto whole = make_engine(EngineKind::kMemQSim, 7, cfg_of(3));
  whole->run(full);
  EXPECT_LT(split->to_dense().max_abs_diff(whole->to_dense()), 1e-6);
}

TEST(EngineProperties, SlotCountDoesNotChangeResults) {
  const Circuit c = circuit::make_random_circuit(7, 6, 31);
  sv::StateVector reference(7);
  bool first = true;
  for (const std::uint32_t slots : {1u, 2u, 4u}) {
    EngineConfig cfg = cfg_of(3);
    cfg.device_slots = slots;
    auto engine = make_engine(EngineKind::kMemQSim, 7, cfg);
    engine->run(c);
    if (first) {
      reference = engine->to_dense();
      first = false;
    } else {
      EXPECT_LT(engine->to_dense().max_abs_diff(reference), 1e-12)
          << slots << " slots";
    }
  }
}

TEST(EngineProperties, FullCpuOffloadNeverTouchesDevice) {
  EngineConfig cfg = cfg_of(3);
  cfg.cpu_offload_fraction = 1.0;
  auto engine = make_engine(EngineKind::kMemQSim, 7, cfg);
  engine->run(circuit::make_qft(7));
  EXPECT_EQ(engine->telemetry().kernel_launches, 0u);
  EXPECT_EQ(engine->telemetry().h2d_bytes, 0u);
  auto dense = make_engine(EngineKind::kDense, 7, cfg);
  dense->run(circuit::make_qft(7));
  EXPECT_LT(engine->to_dense().max_abs_diff(dense->to_dense()), 1e-5);
}

TEST(EngineProperties, RecompressionIsIdempotentOnFixedPoint) {
  // Running an empty circuit repeatedly must not erode the state: lossy
  // codecs reconstruct a state they just produced within the same bound,
  // and the zero-diff path skips recompression entirely.
  EngineConfig cfg = cfg_of(3);
  cfg.codec.bound = 1e-4;  // coarse on purpose
  auto engine = make_engine(EngineKind::kMemQSim, 6, cfg);
  engine->run(circuit::make_w_state(6));
  const auto snapshot = engine->to_dense();
  const auto stores_before = engine->telemetry().chunk_stores;
  for (int i = 0; i < 5; ++i) {
    // Identity gates sweep every chunk through the load path but must not
    // mark anything dirty, so no recompression happens and nothing erodes.
    Circuit idle(6);
    idle.i(0).i(5);
    engine->run(idle);
  }
  EXPECT_LT(engine->to_dense().max_abs_diff(snapshot), 1e-12);
  EXPECT_EQ(engine->telemetry().chunk_stores, stores_before);
}

TEST(EngineProperties, DeepDiagonalCircuitsAreCodecFree) {
  // A circuit of only diagonal gates on high qubits compiles to scalar
  // chunk updates: no pair stages, no device traffic beyond local stages.
  Circuit c(10);
  for (int rep = 0; rep < 20; ++rep)
    for (qubit_t q = 5; q < 10; ++q) c.rz(q, 0.01 * (rep + 1));
  EngineConfig cfg = cfg_of(5);
  auto engine = make_engine(EngineKind::kMemQSim, 10, cfg);
  engine->run(c);
  const auto& t = engine->telemetry();
  EXPECT_EQ(t.stages_pair, 0u);
  EXPECT_EQ(t.stages_permute, 0u);
  auto dense = make_engine(EngineKind::kDense, 10, cfg);
  dense->run(c);
  EXPECT_LT(engine->to_dense().max_abs_diff(dense->to_dense()), 1e-5);
}

TEST(EngineProperties, NormDriftStaysWithinBoundBudget) {
  // After a deep run at bound b, |norm - 1| is far below stores * b.
  EngineConfig cfg = cfg_of(4);
  cfg.codec.bound = 1e-6;
  auto engine = make_engine(EngineKind::kMemQSim, 8, cfg);
  engine->run(circuit::make_random_circuit(8, 16, 3));
  const double drift = std::fabs(engine->norm() - 1.0);
  const double budget =
      static_cast<double>(engine->telemetry().chunk_stores) * 1e-6;
  EXPECT_LT(drift, budget + 1e-9);
}

}  // namespace
}  // namespace memq::core
