#include "common/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace memq {
namespace {

TEST(Prng, Deterministic) {
  Prng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, SeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(3);
  RunningStats st;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    st.add(u);
  }
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
  EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.01);
}

TEST(Prng, UniformRange) {
  Prng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Prng, UniformIndexUnbiased) {
  Prng rng(5);
  constexpr std::uint64_t n = 7;
  std::vector<std::uint64_t> counts(n, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(n)];
  const std::vector<double> expected(n, 1.0 / static_cast<double>(n));
  const double stat = chi_squared(counts, expected);
  EXPECT_LT(stat, chi_squared_critical(n - 1, 0.001));
}

TEST(Prng, UniformIndexEdgeCases) {
  Prng rng(6);
  EXPECT_EQ(rng.uniform_index(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Prng, NormalMoments) {
  Prng rng(7);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Prng, JumpDecorrelates) {
  Prng a(42);
  Prng b(42);
  b.jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Prng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  Prng rng(9);
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
}

}  // namespace
}  // namespace memq
