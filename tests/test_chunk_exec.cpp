// Chunked gate application vs. the dense kernels: splitting a state into
// chunks, applying through the chunk/pair paths, and reassembling must agree
// with applying the gate to the whole vector.
#include "core/chunk_exec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "core/chunk_store.hpp"
#include "sv/kernels.hpp"

namespace memq::core {
namespace {

using circuit::Gate;

constexpr qubit_t kN = 7;
constexpr qubit_t kC = 3;  // 16 chunks of 8 amps

std::vector<amp_t> random_state(std::uint64_t seed) {
  Prng rng(seed);
  std::vector<amp_t> v(dim_of(kN));
  for (auto& a : v) a = rng.normal_amp();
  return v;
}

/// Applies `gate` chunk-wise (local + pair + permute dispatch) and compares
/// against the dense kernel result.
void check_gate(const Gate& gate, std::uint64_t seed) {
  auto dense = random_state(seed);
  auto chunked = dense;

  const index_t chunk_amps = index_t{1} << kC;
  const index_t n_chunks = index_t{1} << (kN - kC);

  if (is_chunk_local(gate, kC)) {
    for (index_t ci = 0; ci < n_chunks; ++ci) {
      const auto span =
          std::span<amp_t>(chunked).subspan(ci * chunk_amps, chunk_amps);
      apply_gate_to_chunk(span, ci, kC, gate);
    }
  } else {
    qubit_t q = 0;
    for (const qubit_t t : gate.targets)
      if (t >= kC) q = t;
    const qubit_t bit = q - kC;
    std::vector<amp_t> pair(2 * chunk_amps);
    for (index_t ci = 0; ci < n_chunks; ++ci) {
      if (bits::test(ci, bit)) continue;
      const index_t cj = bits::set(ci, bit);
      std::copy_n(chunked.begin() + ci * chunk_amps, chunk_amps, pair.begin());
      std::copy_n(chunked.begin() + cj * chunk_amps, chunk_amps,
                  pair.begin() + chunk_amps);
      apply_gate_to_pair(pair, ci, kC, q, gate);
      std::copy_n(pair.begin(), chunk_amps, chunked.begin() + ci * chunk_amps);
      std::copy_n(pair.begin() + chunk_amps, chunk_amps,
                  chunked.begin() + cj * chunk_amps);
    }
  }

  sv::apply_gate(dense, gate);
  for (index_t i = 0; i < dense.size(); ++i)
    ASSERT_LT(std::abs(dense[i] - chunked[i]), 1e-12)
        << gate.to_string() << " at index " << i;
}

TEST(ChunkExec, LocalGatesMatchDense) {
  int seed = 100;
  for (qubit_t t = 0; t < kC; ++t) {
    check_gate(Gate::h(t), seed++);
    check_gate(Gate::u3(t, 0.3, 0.9, 1.7), seed++);
    check_gate(Gate::x(t), seed++);
  }
  check_gate(Gate::swap(0, 2), seed++);
}

TEST(ChunkExec, DiagonalHighTargetIsLocal) {
  int seed = 200;
  for (qubit_t t = kC; t < kN; ++t) {
    EXPECT_TRUE(is_chunk_local(Gate::rz(t, 0.7), kC));
    check_gate(Gate::rz(t, 0.7), seed++);
    check_gate(Gate::t(t), seed++);
    check_gate(Gate::phase(t, -1.1), seed++);
  }
}

TEST(ChunkExec, LocalGateWithHighControls) {
  int seed = 300;
  check_gate(Gate::x(1).with_controls({5}), seed++);
  check_gate(Gate::h(0).with_controls({4, 6}), seed++);
  check_gate(Gate::ry(2, 0.4).with_controls({3, 1}), seed++);  // mixed
}

TEST(ChunkExec, PairGatesMatchDense) {
  int seed = 400;
  for (qubit_t t = kC; t < kN; ++t) {
    check_gate(Gate::h(t), seed++);
    check_gate(Gate::u3(t, 1.2, 0.1, 2.2), seed++);
    check_gate(Gate::ry(t, -0.8), seed++);
  }
}

TEST(ChunkExec, PairGateWithControls) {
  int seed = 500;
  check_gate(Gate::h(5).with_controls({1}), seed++);       // local control
  check_gate(Gate::h(5).with_controls({6}), seed++);       // high control
  check_gate(Gate::h(5).with_controls({1, 6}), seed++);    // both
  check_gate(Gate::x(4).with_controls({0, 6}), seed++);
}

TEST(ChunkExec, MixedSwapThroughPairPath) {
  // swap(local, high) has one high target: handled by the pair machinery.
  int seed = 600;
  check_gate(Gate::swap(1, 5), seed++);
  check_gate(Gate::swap(2, 6).with_controls({0}), seed++);
}

TEST(ChunkExec, DiagonalOnOtherHighQubitInsidePairStage) {
  // A diagonal gate on high qubit q' applied through the *pair* path with
  // pair_qubit != q' (the absorbed-local-gate case).
  auto dense = random_state(700);
  auto chunked = dense;
  const index_t chunk_amps = index_t{1} << kC;
  const index_t n_chunks = index_t{1} << (kN - kC);
  const qubit_t pair_q = 5;
  const Gate diag = Gate::rz(6, 0.9);

  std::vector<amp_t> pair(2 * chunk_amps);
  for (index_t ci = 0; ci < n_chunks; ++ci) {
    if (bits::test(ci, pair_q - kC)) continue;
    const index_t cj = bits::set(ci, pair_q - kC);
    std::copy_n(chunked.begin() + ci * chunk_amps, chunk_amps, pair.begin());
    std::copy_n(chunked.begin() + cj * chunk_amps, chunk_amps,
                pair.begin() + chunk_amps);
    apply_gate_to_pair(pair, ci, kC, pair_q, diag);
    std::copy_n(pair.begin(), chunk_amps, chunked.begin() + ci * chunk_amps);
    std::copy_n(pair.begin() + chunk_amps, chunk_amps,
                chunked.begin() + cj * chunk_amps);
  }
  sv::apply_gate(dense, diag);
  for (index_t i = 0; i < dense.size(); ++i)
    ASSERT_LT(std::abs(dense[i] - chunked[i]), 1e-12) << i;
}

TEST(ChunkExec, SkippedGateReturnsFalse) {
  std::vector<amp_t> chunk(1 << kC, amp_t{0.1, 0});
  // Control on high qubit 6 unsatisfied for chunk 0.
  EXPECT_FALSE(apply_gate_to_chunk(chunk, 0, kC, Gate::x(0).with_controls({6})));
  for (const auto& a : chunk) EXPECT_EQ(a, (amp_t{0.1, 0}));
  // Satisfied for a chunk whose bit (6 - kC) is set.
  EXPECT_TRUE(apply_gate_to_chunk(chunk, index_t{1} << (6 - kC), kC,
                                  Gate::x(0).with_controls({6})));
}

TEST(ChunkExec, RejectsMisuse) {
  std::vector<amp_t> chunk(1 << kC);
  EXPECT_THROW(apply_gate_to_chunk(chunk, 0, kC, Gate::h(kC)), Error);
  EXPECT_THROW(apply_gate_to_chunk(chunk, 0, kC, Gate::measure(0)), Error);
  std::vector<amp_t> pair(2 << kC);
  // chunk_lo with the pair bit set is a caller bug.
  EXPECT_THROW(
      apply_gate_to_pair(pair, index_t{1} << (5 - kC), kC, 5, Gate::h(5)),
      Error);
}

TEST(ChunkExec, PermutationX) {
  compress::ChunkCodecConfig codec;
  codec.compressor = "gorilla";  // lossless so equality is exact
  ChunkStore store(kN, kC, codec);
  auto dense = random_state(800);
  const index_t chunk_amps = store.chunk_amps();
  for (index_t ci = 0; ci < store.n_chunks(); ++ci)
    store.store(ci, std::span<const amp_t>(dense).subspan(ci * chunk_amps,
                                                          chunk_amps));

  const Gate gate = Gate::x(5).with_controls({6});
  apply_chunk_permutation(store, gate);
  sv::apply_gate(dense, gate);

  std::vector<amp_t> buf(chunk_amps);
  for (index_t ci = 0; ci < store.n_chunks(); ++ci) {
    store.load(ci, buf);
    for (index_t j = 0; j < chunk_amps; ++j)
      ASSERT_EQ(buf[j], dense[ci * chunk_amps + j]) << ci << ":" << j;
  }
}

TEST(ChunkExec, PermutationSwap) {
  compress::ChunkCodecConfig codec;
  codec.compressor = "gorilla";
  ChunkStore store(kN, kC, codec);
  auto dense = random_state(900);
  const index_t chunk_amps = store.chunk_amps();
  for (index_t ci = 0; ci < store.n_chunks(); ++ci)
    store.store(ci, std::span<const amp_t>(dense).subspan(ci * chunk_amps,
                                                          chunk_amps));

  const Gate gate = Gate::swap(4, 6);
  apply_chunk_permutation(store, gate);
  sv::apply_gate(dense, gate);

  std::vector<amp_t> buf(chunk_amps);
  for (index_t ci = 0; ci < store.n_chunks(); ++ci) {
    store.load(ci, buf);
    for (index_t j = 0; j < chunk_amps; ++j)
      ASSERT_EQ(buf[j], dense[ci * chunk_amps + j]) << ci << ":" << j;
  }
}

TEST(ChunkExec, PermutationRejectsLocalControls) {
  compress::ChunkCodecConfig codec;
  ChunkStore store(kN, kC, codec);
  EXPECT_THROW(
      apply_chunk_permutation(store, Gate::x(5).with_controls({0})), Error);
  EXPECT_THROW(apply_chunk_permutation(store, Gate::h(5)), Error);
}

}  // namespace
}  // namespace memq::core
