// End-to-end engine equivalence: MemQSim (chunked, compressed, streamed
// through the simulated device) and the Wu-style baseline must reproduce the
// dense oracle's state up to the configured compression error, across
// workloads x chunk sizes x transfer strategies x codecs.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/workloads.hpp"
#include "common/stats.hpp"
#include "core/memq_engine.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

EngineConfig tight_config(qubit_t chunk_qubits) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.bound = 1e-8;
  return cfg;
}

double run_and_compare(EngineKind kind, const Circuit& c,
                       const EngineConfig& cfg) {
  auto engine = make_engine(kind, c.n_qubits(), cfg);
  engine->run(c);
  auto dense = make_engine(EngineKind::kDense, c.n_qubits(), cfg);
  dense->run(c);
  const sv::StateVector a = engine->to_dense();
  const sv::StateVector b = dense->to_dense();
  return a.max_abs_diff(b);
}

// ---------------------------------------------------------------------------
// Property sweep
// ---------------------------------------------------------------------------

using Param = std::tuple<EngineKind, std::string, qubit_t>;

class EngineEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(EngineEquivalence, MatchesDenseOracle) {
  const auto& [kind, workload, chunk_qubits] = GetParam();
  const Circuit c = circuit::make_workload(workload, 8, 5);
  EngineConfig cfg = tight_config(chunk_qubits);
  // Non-unitary workloads would need aligned RNG draws; none in this list.
  const double err = run_and_compare(kind, c, cfg);
  // Per-store error <= bound * max|amp| <= 1e-8, accumulated over stages.
  EXPECT_LT(err, 1e-4) << workload << " chunk=" << chunk_qubits;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalence,
    ::testing::Combine(
        ::testing::Values(EngineKind::kMemQSim, EngineKind::kWu),
        ::testing::Values("ghz", "qft", "grover", "bv", "qaoa", "random", "w",
                          "qpe"),
        ::testing::Values(qubit_t{3}, qubit_t{5}, qubit_t{7})),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::string(engine_kind_name(std::get<0>(info.param))) +
                         "_" + std::get<1>(info.param) + "_c" +
                         std::to_string(std::get<2>(info.param));
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

class StrategySweep
    : public ::testing::TestWithParam<device::TransferStrategy> {};

TEST_P(StrategySweep, MemQSimCorrectUnderEveryTransferStrategy) {
  EngineConfig cfg = tight_config(4);
  cfg.strategy = GetParam();
  const Circuit c = circuit::make_random_circuit(7, 6, 11);
  EXPECT_LT(run_and_compare(EngineKind::kMemQSim, c, cfg), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(All, StrategySweep,
                         ::testing::Values(
                             device::TransferStrategy::kSync,
                             device::TransferStrategy::kAsyncPerElement,
                             device::TransferStrategy::kStagedBuffer),
                         [](const auto& info) {
                           std::string n = device::strategy_name(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

class CodecSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecSweep, MemQSimCorrectUnderEveryCompressor) {
  EngineConfig cfg = tight_config(4);
  cfg.codec.compressor = GetParam();
  const Circuit c = circuit::make_qft(7);
  EXPECT_LT(run_and_compare(EngineKind::kMemQSim, c, cfg), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(All, CodecSweep,
                         ::testing::Values("szq", "bpc", "gorilla", "null"));

// ---------------------------------------------------------------------------
// Pipeline / offload / config variants
// ---------------------------------------------------------------------------

TEST(MemQSim, UnpipelinedMatchesPipelined) {
  const Circuit c = circuit::make_random_circuit(7, 8, 13);
  EngineConfig on = tight_config(4);
  EngineConfig off = tight_config(4);
  off.pipelined = false;
  auto e1 = make_engine(EngineKind::kMemQSim, 7, on);
  auto e2 = make_engine(EngineKind::kMemQSim, 7, off);
  e1->run(c);
  e2->run(c);
  EXPECT_LT(e1->to_dense().max_abs_diff(e2->to_dense()), 1e-9);
  // Modeled time = real CPU charges (noisy) + host waits on the device
  // (deterministic). Pipelining must not increase the wait component.
  const auto wait_of = [](const Engine& e) {
    return std::max(0.0, e.telemetry().modeled_total_seconds -
                             e.telemetry().cpu_phases.total());
  };
  EXPECT_LE(wait_of(*e1), wait_of(*e2) + 1e-4);
}

TEST(MemQSim, CpuOffloadFractionCorrect) {
  const Circuit c = circuit::make_random_circuit(7, 6, 17);
  for (const double f : {0.25, 0.5, 1.0}) {
    EngineConfig cfg = tight_config(3);
    cfg.cpu_offload_fraction = f;
    EXPECT_LT(run_and_compare(EngineKind::kMemQSim, c, cfg), 1e-4) << f;
  }
}

TEST(MemQSim, SingleSlotStillCorrect) {
  EngineConfig cfg = tight_config(4);
  cfg.device_slots = 1;
  const Circuit c = circuit::make_qft(6);
  EXPECT_LT(run_and_compare(EngineKind::kMemQSim, c, cfg), 1e-4);
}

TEST(MemQSim, LooseBoundDegradesGracefully) {
  const Circuit c = circuit::make_qft(8);
  EngineConfig loose = tight_config(4);
  loose.codec.bound = 1e-3;
  EngineConfig tight = tight_config(4);
  const double err_loose = run_and_compare(EngineKind::kMemQSim, c, loose);
  const double err_tight = run_and_compare(EngineKind::kMemQSim, c, tight);
  EXPECT_LT(err_tight, err_loose + 1e-12);
  EXPECT_LT(err_loose, 0.05);  // still a usable state
}

TEST(MemQSim, DeviceTooSmallThrows) {
  EngineConfig cfg = tight_config(10);
  cfg.device.memory_bytes = 1 << 10;  // 1 KiB device cannot hold a pair
  EXPECT_THROW(make_engine(EngineKind::kMemQSim, 12, cfg), Error);
}

// ---------------------------------------------------------------------------
// Measurement and sampling through the engines
// ---------------------------------------------------------------------------

TEST(Engines, MeasurementCollapsesGhzConsistently) {
  for (const EngineKind kind : {EngineKind::kMemQSim, EngineKind::kWu}) {
    EngineConfig cfg = tight_config(3);
    auto engine = make_engine(kind, 6, cfg);
    Circuit c(6);
    c.append(circuit::make_ghz(6));
    c.measure(0);
    engine->run(c);
    // All qubits must agree post-collapse: amplitudes live in |0..0> or
    // |1..1> only.
    const auto dense = engine->to_dense();
    double p_ends = std::norm(dense.amplitude(0)) +
                    std::norm(dense.amplitude(dim_of(6) - 1));
    EXPECT_NEAR(p_ends, 1.0, 1e-6) << engine_kind_name(kind);
    EXPECT_NEAR(engine->norm(), 1.0, 1e-6);
  }
}

TEST(Engines, ResetGateZeroesQubit) {
  for (const EngineKind kind : {EngineKind::kMemQSim, EngineKind::kWu}) {
    EngineConfig cfg = tight_config(3);
    auto engine = make_engine(kind, 5, cfg);
    Circuit c(5);
    c.h(0).h(4);
    c.append(circuit::Gate::reset(4));  // high qubit reset
    c.append(circuit::Gate::reset(0));  // local qubit reset
    engine->run(c);
    const auto dense = engine->to_dense();
    for (index_t i = 0; i < dim_of(5); ++i) {
      if ((i & 1) || (i >> 4))
        EXPECT_LT(std::abs(dense.amplitude(i)), 1e-6);
    }
  }
}

TEST(Engines, SamplingMatchesDistribution) {
  EngineConfig cfg = tight_config(3);
  auto engine = make_engine(EngineKind::kMemQSim, 3, cfg);
  Circuit c(3);
  c.h(0).h(1).h(2);
  engine->run(c);
  const auto counts = engine->sample_counts(16000);
  std::vector<std::uint64_t> observed(8, 0);
  for (const auto& [k, v] : counts) observed[k] = v;
  const std::vector<double> expected(8, 0.125);
  EXPECT_LT(chi_squared(observed, expected), chi_squared_critical(7, 0.001));
}

TEST(Engines, AmplitudeAndNormQueries) {
  EngineConfig cfg = tight_config(3);
  auto engine = make_engine(EngineKind::kMemQSim, 6, cfg);
  engine->run(circuit::make_ghz(6));
  EXPECT_NEAR(engine->norm(), 1.0, 1e-6);
  EXPECT_NEAR(std::abs(engine->amplitude(0)), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::abs(engine->amplitude(dim_of(6) - 1)), 1.0 / std::sqrt(2.0),
              1e-6);
  EXPECT_LT(std::abs(engine->amplitude(5)), 1e-6);
}

TEST(Engines, ResetRestoresInitialState) {
  EngineConfig cfg = tight_config(3);
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg);
  engine->run(circuit::make_random_circuit(5, 5, 3));
  engine->reset();
  EXPECT_NEAR(std::abs(engine->amplitude(0)), 1.0, 1e-9);
  EXPECT_NEAR(engine->norm(), 1.0, 1e-9);
  EXPECT_EQ(engine->telemetry().kernel_launches, 0u);
}

// ---------------------------------------------------------------------------
// Telemetry honesty
// ---------------------------------------------------------------------------

TEST(Telemetry, MemQSimReportsDeviceTraffic) {
  EngineConfig cfg = tight_config(4);
  auto engine = make_engine(EngineKind::kMemQSim, 8, cfg);
  engine->run(circuit::make_qft(8));
  const auto& t = engine->telemetry();
  EXPECT_GT(t.h2d_bytes, 0u);
  EXPECT_GT(t.d2h_bytes, 0u);
  EXPECT_GT(t.kernel_launches, 0u);
  EXPECT_GT(t.device_busy_seconds, 0.0);
  EXPECT_GT(t.modeled_total_seconds, 0.0);
  // CPU charges enter the modeled clock scaled by the worker model.
  EXPECT_GE(t.modeled_total_seconds * 8.0 + 1e-9,
            t.cpu_phases.get("decompress"));
  EXPECT_GT(t.stages_local + t.stages_pair + t.stages_permute, 0u);
  EXPECT_GT(t.peak_device_bytes, 0u);
  EXPECT_GT(t.final_compression_ratio, 0.0);
}

TEST(Telemetry, WuUsesNoDevice) {
  EngineConfig cfg = tight_config(4);
  auto engine = make_engine(EngineKind::kWu, 8, cfg);
  engine->run(circuit::make_qft(8));
  const auto& t = engine->telemetry();
  EXPECT_EQ(t.h2d_bytes, 0u);
  EXPECT_EQ(t.kernel_launches, 0u);
  EXPECT_GT(t.cpu_phases.get("decompress"), 0.0);
  EXPECT_GT(t.modeled_total_seconds, 0.0);
}

TEST(Telemetry, CompressedEnginesUseLessPeakStateMemoryOnSparseStates) {
  // GHZ keeps the state 2-sparse: the compressed store must be far below
  // the dense 2^n x 16 B footprint.
  constexpr qubit_t n = 14;
  EngineConfig cfg = tight_config(8);
  auto memq = make_engine(EngineKind::kMemQSim, n, cfg);
  memq->run(circuit::make_ghz(n));
  auto dense = make_engine(EngineKind::kDense, n, cfg);
  dense->run(circuit::make_ghz(n));
  EXPECT_LT(memq->telemetry().peak_host_state_bytes,
            dense->telemetry().peak_host_state_bytes / 2);
}

TEST(Telemetry, ZeroChunksAreSkipped) {
  EngineConfig cfg = tight_config(4);
  auto engine = make_engine(EngineKind::kMemQSim, 10, cfg);
  engine->run(circuit::make_ghz(10));  // state stays extremely sparse
  EXPECT_GT(engine->telemetry().zero_chunks_skipped, 0u);
}

TEST(Telemetry, WallSecondsPopulated) {
  EngineConfig cfg = tight_config(3);
  for (const EngineKind kind :
       {EngineKind::kDense, EngineKind::kWu, EngineKind::kMemQSim}) {
    auto engine = make_engine(kind, 6, cfg);
    engine->run(circuit::make_qft(6));
    EXPECT_GT(engine->telemetry().wall_seconds, 0.0)
        << engine_kind_name(kind);
  }
}

}  // namespace
}  // namespace memq::core
