#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace memq {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i)
    futs.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, WaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i)
    (void)pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, SizeReportsWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace memq
