// Gate kernels vs. an independent brute-force oracle that expands the full
// 2^n x 2^n operator action index-by-index.
#include "sv/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace memq::sv {
namespace {

using circuit::Gate;
using circuit::Mat2;

std::vector<amp_t> random_amps(qubit_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<amp_t> v(dim_of(n));
  for (auto& a : v) a = rng.normal_amp();
  return v;
}

/// Oracle: applies a controlled 1q matrix by direct enumeration, written
/// independently of the kernel's insert_zero trick.
std::vector<amp_t> oracle_matrix1(const std::vector<amp_t>& in, qubit_t target,
                                  const Mat2& m, index_t cmask) {
  std::vector<amp_t> out = in;
  const index_t bit = index_t{1} << target;
  for (index_t i = 0; i < in.size(); ++i) {
    if ((i & bit) != 0) continue;      // visit each pair once, from the 0 side
    if ((i & cmask) != cmask) continue;
    const index_t j = i | bit;
    out[i] = m[0] * in[i] + m[1] * in[j];
    out[j] = m[2] * in[i] + m[3] * in[j];
  }
  return out;
}

std::vector<amp_t> oracle_swap(const std::vector<amp_t>& in, qubit_t a,
                               qubit_t b, index_t cmask) {
  std::vector<amp_t> out = in;
  for (index_t i = 0; i < in.size(); ++i) {
    if ((i & cmask) != cmask) continue;
    index_t j = i;
    const bool ba = bits::test(i, a), bb = bits::test(i, b);
    j = ba ? bits::set(j, b) : bits::clear(j, b);
    j = bb ? bits::set(j, a) : bits::clear(j, a);
    out[j] = in[i];
  }
  return out;
}

void expect_close(const std::vector<amp_t>& a, const std::vector<amp_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (index_t i = 0; i < a.size(); ++i)
    ASSERT_LT(std::abs(a[i] - b[i]), 1e-12) << "index " << i;
}

TEST(Kernels, Matrix1MatchesOracleEveryTarget) {
  constexpr qubit_t n = 6;
  const Mat2 m = Gate::u3(0, 0.9, 1.7, -0.4).matrix1q();
  for (qubit_t t = 0; t < n; ++t) {
    auto amps = random_amps(n, 10 + t);
    const auto expected = oracle_matrix1(amps, t, m, 0);
    apply_matrix1(amps, t, m);
    expect_close(amps, expected);
  }
}

TEST(Kernels, ControlledMatrix1MatchesOracle) {
  constexpr qubit_t n = 6;
  const Mat2 m = Gate::ry(0, 1.1).matrix1q();
  Prng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const qubit_t t = static_cast<qubit_t>(rng.uniform_index(n));
    index_t cmask = 0;
    for (qubit_t q = 0; q < n; ++q)
      if (q != t && rng.uniform() < 0.3) cmask |= index_t{1} << q;
    auto amps = random_amps(n, 100 + trial);
    const auto expected = oracle_matrix1(amps, t, m, cmask);
    apply_matrix1(amps, t, m, cmask);
    expect_close(amps, expected);
  }
}

TEST(Kernels, XSpecializationMatchesGeneric) {
  constexpr qubit_t n = 5;
  const Mat2 xm = Gate::x(0).matrix1q();
  for (qubit_t t = 0; t < n; ++t) {
    auto a = random_amps(n, 20 + t);
    auto b = a;
    apply_x(a, t, index_t{1} << ((t + 1) % n));
    apply_matrix1(b, t, xm, index_t{1} << ((t + 1) % n));
    expect_close(a, b);
  }
}

TEST(Kernels, DiagonalSpecializationMatchesGeneric) {
  constexpr qubit_t n = 5;
  const Mat2 m = Gate::rz(0, 0.77).matrix1q();
  for (qubit_t t = 0; t < n; ++t) {
    auto a = random_amps(n, 30 + t);
    auto b = a;
    apply_diagonal1(a, t, m[0], m[3]);
    apply_matrix1(b, t, m);
    expect_close(a, b);
  }
}

TEST(Kernels, SwapMatchesOracleAllPairs) {
  constexpr qubit_t n = 5;
  for (qubit_t a = 0; a < n; ++a)
    for (qubit_t b = 0; b < n; ++b) {
      if (a == b) continue;
      auto amps = random_amps(n, 40 + a * 8 + b);
      const auto expected = oracle_swap(amps, a, b, 0);
      apply_swap(amps, a, b);
      expect_close(amps, expected);
    }
}

TEST(Kernels, ControlledSwapMatchesOracle) {
  constexpr qubit_t n = 5;
  auto amps = random_amps(n, 50);
  const index_t cmask = index_t{1} << 4;
  const auto expected = oracle_swap(amps, 1, 3, cmask);
  apply_swap(amps, 1, 3, cmask);
  expect_close(amps, expected);
}

TEST(Kernels, Matrix2SwapMatrixMatchesSwapKernel) {
  constexpr qubit_t n = 5;
  const auto m = Gate::swap(0, 1).matrix2q();
  for (qubit_t a = 0; a < n; ++a)
    for (qubit_t b = 0; b < n; ++b) {
      if (a == b) continue;
      auto x = random_amps(n, 60 + a * 8 + b);
      auto y = x;
      apply_matrix2(x, a, b, m);
      apply_swap(y, a, b);
      expect_close(x, y);
    }
}

TEST(Kernels, Matrix2CxMatchesControlledX) {
  constexpr qubit_t n = 4;
  // CX with control = second target (q_hi), target = first (q_lo):
  // basis |t c>: flips t when c = 1 -> rows 2<->3 of the 4x4.
  circuit::Mat4 cx{};
  cx[0 * 4 + 0] = 1;
  cx[1 * 4 + 1] = 1;
  cx[2 * 4 + 3] = 1;
  cx[3 * 4 + 2] = 1;
  auto a = random_amps(n, 70);
  auto b = a;
  apply_matrix2(a, /*q_lo=*/0, /*q_hi=*/2, cx);
  apply_x(b, 0, index_t{1} << 2);
  expect_close(a, b);
}

TEST(Kernels, ApplyGateDispatchesEveryKind) {
  constexpr qubit_t n = 4;
  const Gate gates[] = {Gate::i(0),          Gate::x(1),
                        Gate::y(2),          Gate::z(3),
                        Gate::h(0),          Gate::s(1),
                        Gate::sdg(2),        Gate::t(3),
                        Gate::tdg(0),        Gate::sx(1),
                        Gate::rx(2, 0.3),    Gate::ry(3, 0.5),
                        Gate::rz(0, 0.7),    Gate::phase(1, 0.9),
                        Gate::u3(2, 1, 2, 3), Gate::swap(0, 3),
                        Gate::cx(0, 1),      Gate::ccx(0, 1, 2),
                        Gate::cswap(3, 0, 1)};
  auto amps = random_amps(n, 80);
  double norm_before = 0;
  for (const auto& a : amps) norm_before += std::norm(a);
  for (const Gate& g : gates) apply_gate(amps, g);
  double norm_after = 0;
  for (const auto& a : amps) norm_after += std::norm(a);
  EXPECT_NEAR(norm_after, norm_before, 1e-9);
}

TEST(Kernels, ApplyGateMappedRelabelsQubits) {
  // A 3-qubit gate sequence executed with qubits permuted through the map
  // must equal direct execution after permuting the data the same way.
  constexpr qubit_t n = 3;
  const std::vector<qubit_t> local_of = {2, 0, 1};  // circuit q -> local bit
  auto direct = random_amps(n, 90);

  // Build permuted copy: local index j collects direct index i where bits map.
  std::vector<amp_t> mapped(direct.size());
  for (index_t i = 0; i < direct.size(); ++i) {
    index_t j = 0;
    for (qubit_t q = 0; q < n; ++q)
      if (bits::test(i, q)) j = bits::set(j, local_of[q]);
    mapped[j] = direct[i];
  }

  const Gate g = Gate::cx(0, 2);
  apply_gate(direct, g);
  apply_gate_mapped(mapped, g, local_of);

  for (index_t i = 0; i < direct.size(); ++i) {
    index_t j = 0;
    for (qubit_t q = 0; q < n; ++q)
      if (bits::test(i, q)) j = bits::set(j, local_of[q]);
    ASSERT_LT(std::abs(mapped[j] - direct[i]), 1e-12);
  }
}

TEST(Kernels, ProbabilityAndCollapse) {
  constexpr qubit_t n = 4;
  auto amps = random_amps(n, 95);
  double total = 0;
  for (auto& a : amps) total += std::norm(a);
  const double inv = 1.0 / std::sqrt(total);
  for (auto& a : amps) a *= inv;

  const double p1 = probability_one(amps, 2);
  EXPECT_GT(p1, 0.0);
  EXPECT_LT(p1, 1.0);
  collapse(amps, 2, true, 1.0 / std::sqrt(p1));
  double norm_after = 0;
  for (const auto& a : amps) norm_after += std::norm(a);
  EXPECT_NEAR(norm_after, 1.0, 1e-12);
  EXPECT_NEAR(probability_one(amps, 2), 1.0, 1e-12);
}

TEST(Kernels, RejectsMisuse) {
  std::vector<amp_t> amps(8);
  EXPECT_THROW(apply_x(amps, 3), Error);
  EXPECT_THROW(apply_swap(amps, 1, 1), Error);
  std::vector<amp_t> not_pow2(7);
  EXPECT_THROW(apply_x(not_pow2, 0), Error);
  EXPECT_THROW(apply_gate(amps, Gate::measure(0)), Error);
}

}  // namespace
}  // namespace memq::sv
