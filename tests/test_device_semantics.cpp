// Fine-grained device-model semantics: host-clock coupling, cross-stream
// and cross-device event ordering, shared clocks, and stat accounting.
#include <gtest/gtest.h>

#include <vector>

#include "device/copy_engine.hpp"

namespace memq::device {
namespace {

DeviceConfig cfg_simple() {
  DeviceConfig cfg;
  cfg.memory_bytes = 1 << 20;
  cfg.h2d_bandwidth = 1e9;
  cfg.d2h_bandwidth = 1e9;
  cfg.sync_copy_overhead = 1e-6;
  cfg.async_copy_overhead_h2d = 1e-6;
  cfg.async_copy_overhead_d2h = 1e-6;
  cfg.kernel_launch_overhead = 1e-6;
  cfg.gate_kernel_throughput = 1e9;
  return cfg;
}

TEST(DeviceSemantics, OperationsCannotStartBeforeEnqueue) {
  // CPU work advances the host clock; a copy enqueued afterwards must start
  // at (or after) the host time even on an idle stream.
  SimDevice dev(cfg_simple());
  Stream s(dev, "s");
  dev.advance_host(5e-3);
  auto buf = dev.alloc(1000);
  std::vector<std::uint8_t> host(1000);
  s.memcpy_h2d_async(buf, 0, host.data(), 1000);
  EXPECT_GE(s.tail(), 5e-3);
}

TEST(DeviceSemantics, InOrderWithinAStream) {
  SimDevice dev(cfg_simple());
  Stream s(dev, "s");
  auto buf = dev.alloc(4096);
  std::vector<std::uint8_t> host(4096);
  s.memcpy_h2d_async(buf, 0, host.data(), 4096);
  const double after_copy = s.tail();
  s.launch("k", 1000, [] {});
  // The kernel starts no earlier than the copy's completion.
  EXPECT_GE(s.tail(), after_copy + 1000 / 1e9);
}

TEST(DeviceSemantics, IndependentStreamsOverlap) {
  SimDevice dev(cfg_simple());
  Stream a(dev, "a"), b(dev, "b");
  a.launch("ka", 1000000, [] {});  // 1 ms
  b.launch("kb", 1000000, [] {});  // 1 ms, overlapping
  // Both finish ~1 ms after their (nearly identical) starts; the sum of
  // tails is far below the serialized 2 ms + overheads.
  EXPECT_LT(std::max(a.tail(), b.tail()), 1.2e-3);
  EXPECT_NEAR(a.busy_seconds(), 1e-3, 1e-6);
  EXPECT_NEAR(b.busy_seconds(), 1e-3, 1e-6);
}

TEST(DeviceSemantics, EventTransfersOrderingOnly) {
  SimDevice dev(cfg_simple());
  Stream a(dev, "a"), b(dev, "b");
  a.launch("slow", 2000000, [] {});  // 2 ms
  const Event e = a.record();
  b.wait(e);
  const double b_start_floor = b.tail();
  b.launch("fast", 1000, [] {});
  EXPECT_GE(b.tail(), b_start_floor + 1e-6);
  // Waiting did not advance the host clock.
  EXPECT_LT(dev.host_time(), 1e-4);
  // Synchronize does.
  b.synchronize();
  EXPECT_GE(dev.host_time(), 2e-3);
}

TEST(DeviceSemantics, SharedClockCouplesDevices) {
  auto clock = std::make_shared<HostClock>();
  SimDevice d1(cfg_simple(), clock);
  SimDevice d2(cfg_simple(), clock);
  d1.advance_host(1e-3);
  EXPECT_DOUBLE_EQ(d2.host_time(), 1e-3);
  // A stream on d2 enqueued now cannot start before the shared host time.
  Stream s2(d2, "s2");
  s2.launch("k", 1000, [] {});
  EXPECT_GE(s2.tail(), 1e-3);
}

TEST(DeviceSemantics, PrivateClocksAreIndependent) {
  SimDevice d1(cfg_simple());
  SimDevice d2(cfg_simple());
  d1.advance_host(1.0);
  EXPECT_DOUBLE_EQ(d2.host_time(), 0.0);
}

TEST(DeviceSemantics, StatsAccumulateExactly) {
  SimDevice dev(cfg_simple());
  Stream s(dev, "s");
  auto buf = dev.alloc(1 << 12);
  std::vector<std::uint8_t> host(1 << 12);
  s.memcpy_h2d_sync(buf, 0, host.data(), 1 << 12);
  s.memcpy_h2d_async(buf, 0, host.data(), 100);
  s.memcpy_d2h_async(host.data(), buf, 0, 200);
  s.launch("k", 10, [] {});
  const auto& st = dev.stats();
  EXPECT_EQ(st.h2d_calls, 2u);
  EXPECT_EQ(st.d2h_calls, 1u);
  EXPECT_EQ(st.h2d_bytes, (1u << 12) + 100u);
  EXPECT_EQ(st.d2h_bytes, 200u);
  EXPECT_EQ(st.kernel_launches, 1u);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().h2d_calls, 0u);
}

TEST(DeviceSemantics, KernelBodyRunsExactlyOnce) {
  SimDevice dev(cfg_simple());
  Stream s(dev, "s");
  int runs = 0;
  s.launch("counter", 1, [&runs] { ++runs; });
  s.launch("counter", 1, [&runs] { ++runs; });
  EXPECT_EQ(runs, 2);
}

TEST(DeviceSemantics, ResetClockPreservesAllocations) {
  SimDevice dev(cfg_simple());
  auto buf = dev.alloc(512);
  dev.advance_host(1.0);
  dev.reset_clock();
  EXPECT_DOUBLE_EQ(dev.host_time(), 0.0);
  EXPECT_EQ(dev.bytes_in_use(), 512u);
  EXPECT_TRUE(buf.valid());
}

TEST(DeviceSemantics, DownloadAfterComputeSeesKernelWrites) {
  // Real-execution semantics: a kernel mutation is visible to the download
  // regardless of the modeled timeline.
  SimDevice dev(cfg_simple());
  Stream s(dev, "s");
  auto buf = dev.alloc(sizeof(double) * 4);
  std::vector<double> host{1, 2, 3, 4};
  s.memcpy_h2d_async(buf, 0, host.data(), sizeof(double) * 4);
  s.launch("double", 4, [&buf] {
    for (auto& x : buf.view<double>()) x *= 2.0;
  });
  std::vector<double> back(4);
  s.memcpy_d2h_async(back.data(), buf, 0, sizeof(double) * 4);
  EXPECT_EQ(back, (std::vector<double>{2, 4, 6, 8}));
}

}  // namespace
}  // namespace memq::device
