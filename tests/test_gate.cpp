#include "circuit/gate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace memq::circuit {
namespace {

const Mat2 kId{amp_t{1, 0}, amp_t{}, amp_t{}, amp_t{1, 0}};

class AllGateKinds : public ::testing::TestWithParam<Gate> {};

TEST_P(AllGateKinds, MatrixIsUnitary) {
  EXPECT_TRUE(mat2_is_unitary(GetParam().matrix1q(), 1e-12))
      << GetParam().to_string();
}

TEST_P(AllGateKinds, InverseMatrixIsDagger) {
  const Gate g = GetParam();
  const Mat2 prod = mat2_mul(g.inverse().matrix1q(), g.matrix1q());
  // Inverse may differ by a global phase only for kinds where we renormalize;
  // for our gate set the inverse is exact.
  EXPECT_TRUE(mat2_approx_equal(prod, kId, 1e-12)) << g.to_string();
}

TEST_P(AllGateKinds, DiagonalFlagMatchesMatrix) {
  const Gate g = GetParam();
  const Mat2 m = g.matrix1q();
  const bool offdiag_zero = std::abs(m[1]) < 1e-15 && std::abs(m[2]) < 1e-15;
  if (g.is_diagonal()) EXPECT_TRUE(offdiag_zero) << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Named, AllGateKinds,
    ::testing::Values(Gate::i(0), Gate::x(0), Gate::y(0), Gate::z(0),
                      Gate::h(0), Gate::s(0), Gate::sdg(0), Gate::t(0),
                      Gate::tdg(0), Gate::sx(0), Gate::rx(0, 0.7),
                      Gate::ry(0, -1.3), Gate::rz(0, 2.9),
                      Gate::phase(0, 0.4), Gate::u3(0, 1.0, 2.0, 3.0)),
    [](const ::testing::TestParamInfo<Gate>& info) {
      std::string n = info.param.base_name();
      return n + "_" + std::to_string(info.index);
    });

TEST(GateAlgebra, KnownIdentities) {
  // S^2 = Z, T^2 = S, H X H = Z, X Y = i Z.
  EXPECT_TRUE(mat2_approx_equal(
      mat2_mul(Gate::s(0).matrix1q(), Gate::s(0).matrix1q()),
      Gate::z(0).matrix1q(), 1e-12));
  EXPECT_TRUE(mat2_approx_equal(
      mat2_mul(Gate::t(0).matrix1q(), Gate::t(0).matrix1q()),
      Gate::s(0).matrix1q(), 1e-12));
  const Mat2 h = Gate::h(0).matrix1q();
  EXPECT_TRUE(mat2_approx_equal(
      mat2_mul(h, mat2_mul(Gate::x(0).matrix1q(), h)),
      Gate::z(0).matrix1q(), 1e-12));
  EXPECT_TRUE(mat2_approx_equal(
      mat2_mul(Gate::sx(0).matrix1q(), Gate::sx(0).matrix1q()),
      Gate::x(0).matrix1q(), 1e-12));
}

TEST(GateAlgebra, RotationsComposeAdditively) {
  const Mat2 a = Gate::rz(0, 0.3).matrix1q();
  const Mat2 b = Gate::rz(0, 0.9).matrix1q();
  EXPECT_TRUE(
      mat2_approx_equal(mat2_mul(a, b), Gate::rz(0, 1.2).matrix1q(), 1e-12));
}

TEST(GateAlgebra, U3CoversNamedGates) {
  // H = e^{i pi/2} u3(pi/2, 0, pi): compare up to that global phase by
  // checking u3 directly against its definition instead.
  const Mat2 u = Gate::u3(0, kPi, 0, kPi).matrix1q();
  EXPECT_TRUE(mat2_approx_equal(u, Gate::x(0).matrix1q(), 1e-12));
}

TEST(Gate, U3InverseAngles) {
  const Gate g = Gate::u3(0, 0.7, 1.1, -0.4);
  const Mat2 prod = mat2_mul(g.inverse().matrix1q(), g.matrix1q());
  EXPECT_TRUE(mat2_approx_equal(prod, kId, 1e-12));
}

TEST(Gate, Unitary1qRoundTrip) {
  const Mat2 m = Gate::u3(0, 0.5, 1.5, 2.5).matrix1q();
  const Gate g = Gate::unitary1q(3, m);
  EXPECT_EQ(g.targets[0], 3u);
  EXPECT_TRUE(mat2_approx_equal(g.matrix1q(), m, 1e-15));
}

TEST(Gate, Unitary1qRejectsNonUnitary) {
  Mat2 bad{amp_t{2, 0}, amp_t{}, amp_t{}, amp_t{1, 0}};
  EXPECT_THROW(Gate::unitary1q(0, bad), Error);
}

TEST(Gate, ControlledFactories) {
  const Gate cx = Gate::cx(2, 5);
  EXPECT_EQ(cx.kind, GateKind::kX);
  EXPECT_EQ(cx.targets, (std::vector<qubit_t>{5}));
  EXPECT_EQ(cx.controls, (std::vector<qubit_t>{2}));

  const Gate ccx = Gate::ccx(0, 1, 2);
  EXPECT_EQ(ccx.controls.size(), 2u);

  const Gate mcz = Gate::mcz({0, 1, 2, 3}, 4);
  EXPECT_EQ(mcz.controls.size(), 4u);
  EXPECT_TRUE(mcz.is_diagonal());
}

TEST(Gate, QubitsAndMaxQubit) {
  const Gate g = Gate::ccx(7, 3, 5);
  const auto qs = g.qubits();
  EXPECT_EQ(qs, (std::vector<qubit_t>{5, 7, 3}));
  EXPECT_EQ(g.max_qubit(), 7u);
}

TEST(Gate, SwapMatrix2q) {
  const Mat4 m = Gate::swap(0, 1).matrix2q();
  // |01> <-> |10>.
  EXPECT_EQ(m[1 * 4 + 2], (amp_t{1, 0}));
  EXPECT_EQ(m[2 * 4 + 1], (amp_t{1, 0}));
  EXPECT_EQ(m[1 * 4 + 1], (amp_t{0, 0}));
}

TEST(Gate, NonUnitaryQueries) {
  EXPECT_TRUE(Gate::measure(0).is_nonunitary());
  EXPECT_TRUE(Gate::reset(0).is_nonunitary());
  EXPECT_FALSE(Gate::x(0).is_nonunitary());
  EXPECT_THROW(Gate::measure(0).inverse(), Error);
  EXPECT_THROW((void)Gate::swap(0, 1).matrix1q(), Error);
  EXPECT_THROW((void)Gate::x(0).matrix2q(), Error);
}

TEST(Gate, ToStringReadable) {
  EXPECT_EQ(Gate::cx(0, 1).to_string(), "cx q0, q1");
  EXPECT_EQ(Gate::ccx(0, 1, 2).to_string(), "ccx q0, q1, q2");
  EXPECT_EQ(Gate::h(3).to_string(), "h q3");
  const std::string rz = Gate::rz(2, 0.5).to_string();
  EXPECT_NE(rz.find("rz(0.5"), std::string::npos);
}

TEST(Gate, WithControls) {
  const Gate g = Gate::ry(4, 0.2).with_controls({1, 2});
  EXPECT_EQ(g.controls, (std::vector<qubit_t>{1, 2}));
  EXPECT_EQ(g.kind, GateKind::kRY);
}

TEST(Mat2Helpers, DaggerAndMul) {
  const Mat2 m = Gate::u3(0, 0.3, 0.6, 0.9).matrix1q();
  EXPECT_TRUE(mat2_approx_equal(mat2_mul(m, mat2_dagger(m)), kId, 1e-12));
  EXPECT_FALSE(mat2_approx_equal(m, kId, 1e-12));
}

}  // namespace
}  // namespace memq::circuit
