#include "sv/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace memq::sv {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(Simulator, BellState) {
  Simulator sim(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sim.run(c);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sim.state().amplitude(0) - amp_t{inv_sqrt2, 0}), 0,
              1e-12);
  EXPECT_NEAR(std::abs(sim.state().amplitude(3) - amp_t{inv_sqrt2, 0}), 0,
              1e-12);
  EXPECT_NEAR(std::abs(sim.state().amplitude(1)), 0, 1e-12);
  EXPECT_NEAR(std::abs(sim.state().amplitude(2)), 0, 1e-12);
}

TEST(Simulator, NormPreservedOnRandomCircuit) {
  Simulator sim(8);
  sim.run(circuit::make_random_circuit(8, 20, 77));
  EXPECT_NEAR(sim.state().norm(), 1.0, 1e-10);
}

TEST(Simulator, CircuitThenInverseIsIdentity) {
  const Circuit c = circuit::make_random_circuit(6, 10, 5);
  Simulator sim(6);
  sim.run(c);
  sim.run(c.inverse());
  EXPECT_NEAR(std::abs(sim.state().amplitude(0)), 1.0, 1e-9);
}

TEST(Simulator, QftOfZeroIsUniform) {
  constexpr qubit_t n = 5;
  Simulator sim(n);
  sim.run(circuit::make_qft(n));
  const double expected = 1.0 / std::sqrt(static_cast<double>(dim_of(n)));
  for (index_t i = 0; i < dim_of(n); ++i) {
    EXPECT_NEAR(sim.state().amplitude(i).real(), expected, 1e-10);
    EXPECT_NEAR(sim.state().amplitude(i).imag(), 0.0, 1e-10);
  }
}

TEST(Simulator, QftThenInverseQft) {
  constexpr qubit_t n = 6;
  Simulator sim(n);
  Circuit prep(n);
  prep.x(1).x(4);  // |010010>
  sim.run(prep);
  sim.run(circuit::make_qft(n));
  sim.run(circuit::make_iqft(n));
  EXPECT_NEAR(std::abs(sim.state().amplitude(0b010010)), 1.0, 1e-9);
}

TEST(Simulator, GhzProbabilities) {
  constexpr qubit_t n = 7;
  Simulator sim(n);
  sim.run(circuit::make_ghz(n));
  const auto p = sim.state().probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[dim_of(n) - 1], 0.5, 1e-12);
  for (index_t i = 1; i + 1 < dim_of(n); ++i) EXPECT_NEAR(p[i], 0.0, 1e-15);
}

TEST(Simulator, MeasurementCollapsesGhz) {
  Simulator sim(5, /*seed=*/42);
  sim.run(circuit::make_ghz(5));
  const bool first = sim.measure(0);
  // After measuring one qubit of GHZ, all qubits agree.
  for (qubit_t q = 1; q < 5; ++q)
    EXPECT_NEAR(sim.state().probability_one(q), first ? 1.0 : 0.0, 1e-12);
  EXPECT_NEAR(sim.state().norm(), 1.0, 1e-12);
}

TEST(Simulator, MeasurementStatisticsUnbiased) {
  // P(1) = sin^2(0.6/2) for ry(0.6).
  const double p1 = std::sin(0.3) * std::sin(0.3);
  int ones = 0;
  constexpr int kTrials = 4000;
  Simulator sim(1, 9);
  Circuit c(1);
  c.ry(0, 0.6);
  for (int i = 0; i < kTrials; ++i) {
    sim.reset();
    sim.run(c);
    if (sim.measure(0)) ++ones;
  }
  const double phat = static_cast<double>(ones) / kTrials;
  EXPECT_NEAR(phat, p1, 5.0 * std::sqrt(p1 * (1 - p1) / kTrials));
}

TEST(Simulator, ResetGateForcesZero) {
  Simulator sim(2, 7);
  Circuit c(2);
  c.h(0).h(1).append(Gate::reset(0));
  sim.run(c);
  EXPECT_NEAR(sim.state().probability_one(0), 0.0, 1e-12);
  EXPECT_NEAR(sim.state().norm(), 1.0, 1e-12);
  EXPECT_EQ(sim.measurement_record().size(), 1u);
}

TEST(Simulator, SampleCountsMatchDistribution) {
  Simulator sim(3, 11);
  Circuit c(3);
  c.h(0).h(1).h(2);
  sim.run(c);
  constexpr std::size_t kShots = 16000;
  const auto counts = sim.sample_counts(kShots);
  std::vector<std::uint64_t> observed(8, 0);
  std::uint64_t total = 0;
  for (const auto& [basis, cnt] : counts) {
    observed[basis] = cnt;
    total += cnt;
  }
  EXPECT_EQ(total, kShots);
  const std::vector<double> expected(8, 0.125);
  EXPECT_LT(chi_squared(observed, expected), chi_squared_critical(7, 0.001));
}

TEST(Simulator, SamplingDoesNotCollapse) {
  Simulator sim(2, 13);
  Circuit c(2);
  c.h(0);
  sim.run(c);
  (void)sim.sample_counts(100);
  EXPECT_NEAR(sim.state().probability_one(0), 0.5, 1e-12);
}

TEST(Simulator, ExpectationValues) {
  Simulator sim(2);
  Circuit c(2);
  c.h(0).cx(0, 1);  // Bell
  sim.run(c);
  EXPECT_NEAR(sim.expectation({"ZZ"}), 1.0, 1e-12);
  EXPECT_NEAR(sim.expectation({"XX"}), 1.0, 1e-12);
  EXPECT_NEAR(sim.expectation({"YY"}), -1.0, 1e-12);
  EXPECT_NEAR(sim.expectation({"ZI"}), 0.0, 1e-12);
  EXPECT_NEAR(sim.expectation({"II"}), 1.0, 1e-12);
}

TEST(Simulator, ExpectationRejectsBadString) {
  Simulator sim(2);
  EXPECT_THROW((void)sim.expectation({"Z"}), Error);
  EXPECT_THROW((void)sim.expectation({"ZQ"}), Error);
}

TEST(Simulator, RunRejectsWrongWidth) {
  Simulator sim(3);
  Circuit c(4);
  EXPECT_THROW(sim.run(c), Error);
}

TEST(Simulator, MeasureGateRecordsOutcome) {
  Simulator sim(1, 21);
  Circuit c(1);
  c.x(0).measure(0);
  sim.run(c);
  ASSERT_EQ(sim.measurement_record().size(), 1u);
  EXPECT_TRUE(sim.measurement_record()[0]);
}

}  // namespace
}  // namespace memq::sv
